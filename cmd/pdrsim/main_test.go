package main

import (
	"strings"
	"testing"

	"repro/internal/platform"
)

func TestSingleSwitchSetting(t *testing.T) {
	if err := realMain(3, 0, 7, 1, ""); err != nil { // 3 → 200 MHz
		t.Fatal(err)
	}
}

func TestHangSetting(t *testing.T) {
	if err := realMain(6, 0, 7, 1, ""); err != nil { // 6 → 310 MHz: no interrupt
		t.Fatal(err)
	}
}

func TestWithHeatGun(t *testing.T) {
	if err := realMain(0, 80, 7, 1, ""); err != nil {
		t.Fatal(err)
	}
}

func TestParallelSweep(t *testing.T) {
	if err := realMain(-1, 0, 7, 4, ""); err != nil {
		t.Fatal(err)
	}
}

// TestSettingDeterministic pins the per-setting transcript: a setting runs
// on its own freshly booted board, so repeated runs (and therefore any
// parallel schedule of the sweep) produce identical text.
func TestSettingDeterministic(t *testing.T) {
	a, err := runSetting(platform.Default(), 3, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runSetting(platform.Default(), 3, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("transcripts differ:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(a, "200 MHz") {
		t.Errorf("transcript missing frequency:\n%s", a)
	}
}

func TestUnknownPlatformRejected(t *testing.T) {
	err := realMain(3, 0, 7, 1, "zedboard-quantum")
	if err == nil || !strings.Contains(err.Error(), "unknown platform") {
		t.Errorf("err = %v", err)
	}
}

func TestOtherPlatformSetting(t *testing.T) {
	// The Fig.-4 flow must replay on a non-default registered platform.
	zybo, ok := platform.Lookup("zybo-z7-10")
	if !ok {
		t.Fatal("zybo-z7-10 not registered")
	}
	out, err := runSetting(zybo, 3, 0, 7) // switch 3 → 180 MHz on the Zybo
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "180 MHz") {
		t.Errorf("zybo transcript missing its switch-3 frequency:\n%s", out)
	}
}

func TestIndentHelper(t *testing.T) {
	got := indent("a\nb")
	if !strings.Contains(got, "| a") || !strings.Contains(got, "| b") {
		t.Errorf("indent = %q", got)
	}
}

func TestSplitLines(t *testing.T) {
	lines := splitLines("x\ny\n")
	if len(lines) != 3 || lines[0] != "x" || lines[1] != "y" || lines[2] != "" {
		t.Errorf("splitLines = %v", lines)
	}
}
