package main

import (
	"strings"
	"testing"
)

func TestSingleSwitchSetting(t *testing.T) {
	if err := realMain(3, 0, 7); err != nil { // 3 → 200 MHz
		t.Fatal(err)
	}
}

func TestHangSetting(t *testing.T) {
	if err := realMain(6, 0, 7); err != nil { // 6 → 310 MHz: no interrupt
		t.Fatal(err)
	}
}

func TestWithHeatGun(t *testing.T) {
	if err := realMain(0, 80, 7); err != nil {
		t.Fatal(err)
	}
}

func TestIndentHelper(t *testing.T) {
	got := indent("a\nb")
	if !strings.Contains(got, "| a") || !strings.Contains(got, "| b") {
		t.Errorf("indent = %q", got)
	}
}

func TestSplitLines(t *testing.T) {
	lines := splitLines("x\ny\n")
	if len(lines) != 3 || lines[0] != "x" || lines[1] != "y" || lines[2] != "" {
		t.Errorf("splitLines = %v", lines)
	}
}
