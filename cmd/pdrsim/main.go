// Command pdrsim replays the paper's bench test flow (Fig. 4) on the
// simulated ZedBoard: boot from SD, select the over-clock frequency with
// the slide switches, push a button to load one of the two bitstreams, and
// read the OLED.
//
// Each switch setting runs on its own freshly booted board (as the paper's
// operators re-ran the flow per frequency), so settings are independent
// work units: -parallel shards them across workers and the transcript is
// merged by setting index, byte-identical to a sequential walk.
//
// Usage:
//
//	pdrsim                 # walk all switch settings (the paper's sweep)
//	pdrsim -parallel 4     # same walk, sharded over 4 workers
//	pdrsim -switches 3     # one setting (3 → 200 MHz per the switch table)
//	pdrsim -heat 100       # heat-gun the die first (Sec. IV-A)
//	pdrsim -platform zc706 # replay the flow on another registered platform
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/board"
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/workpool"
	"repro/internal/zynq"
)

func main() {
	switches := flag.Int("switches", -1, "slide-switch value (-1 = sweep all)")
	heat := flag.Float64("heat", 0, "heat-gun die target in °C (0 = off)")
	seed := flag.Uint64("seed", 7, "simulation seed")
	parallel := flag.Int("parallel", 1, "workers for the switch sweep (0 = one per CPU)")
	plat := flag.String("platform", "", "platform profile to simulate (default zedboard; see pdrbench -list)")
	flag.Parse()

	if err := realMain(*switches, *heat, *seed, *parallel, *plat); err != nil {
		fmt.Fprintln(os.Stderr, "pdrsim:", err)
		os.Exit(1)
	}
}

func realMain(switches int, heat float64, seed uint64, parallel int, plat string) error {
	prof, ok := platform.Lookup(plat)
	if !ok {
		return fmt.Errorf("unknown platform %q (want %s)", plat, platform.NameList())
	}
	settings := []int{switches}
	if switches < 0 {
		settings = settings[:0]
		for i := range prof.IO.SwitchTableMHz {
			settings = append(settings, i)
		}
	}

	transcripts := make([]string, len(settings))
	errs := make([]error, len(settings))
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	workpool.Run(len(settings), parallel, func(i int) {
		transcripts[i], errs[i] = runSetting(prof, settings[i], heat, seed)
	})
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("switches=%d: %w", settings[i], err)
		}
		fmt.Print(transcripts[i])
	}
	return nil
}

// runSetting boots a fresh board of the given platform, optionally heats
// it, selects the switch setting and performs the button-driven load,
// returning the transcript.
func runSetting(prof *platform.Profile, sw int, heat float64, seed uint64) (string, error) {
	p, err := zynq.NewPlatform(zynq.Options{Seed: seed, Profile: prof, FastThermal: true})
	if err != nil {
		return "", err
	}
	b := board.New(p)

	// The SD card carries the application and two partial bitstreams,
	// as in the paper's test flow.
	b.SD.Store("boot.bin", []byte("pdr-app"))
	aspA, err := workload.LibraryASP("fir128")
	if err != nil {
		return "", err
	}
	aspB, err := workload.LibraryASP("sha3")
	if err != nil {
		return "", err
	}
	bsA, err := aspA.Bitstream(p.Device, p.RPs[0])
	if err != nil {
		return "", err
	}
	bsB, err := aspB.Bitstream(p.Device, p.RPs[0])
	if err != nil {
		return "", err
	}
	b.SD.Store("partial_a.bit", bsA.Raw)
	b.SD.Store("partial_b.bit", bsB.Raw)

	if err := b.Boot(); err != nil {
		return "", err
	}
	var out strings.Builder
	fmt.Fprintf(&out, "booted; SD card: %v\n", b.SD.Files())
	ctrl := core.New(p)

	if heat > 0 {
		fmt.Fprintf(&out, "heat gun on, target %.0f °C…\n", heat)
		if _, ok := p.Gun.StabilizeAt(heat, 0.5, 10*sim.Minute); !ok {
			return "", fmt.Errorf("die never reached %.0f °C", heat)
		}
		fmt.Fprintf(&out, "die at %.1f °C\n", p.Die.Sensor())
	}

	b.SetSwitches(uint8(sw))
	freq, err := b.SelectedFrequencyMHz()
	if err != nil {
		return "", err
	}
	if _, err := ctrl.SetFrequencyMHz(freq); err != nil {
		return "", err
	}
	// Push-button A starts the ICAP operation on bitstream A.
	var res core.Result
	var loadErr error
	b.OnButton(board.BtnLoadA, func() {
		res, loadErr = ctrl.Load("RP1", bsA)
	})
	b.Press(board.BtnLoadA)
	p.Kernel.RunFor(2 * sim.Millisecond)
	if loadErr != nil {
		return "", loadErr
	}
	lat := 0.0
	if res.IRQReceived {
		lat = res.LatencyUS
	}
	b.ShowStatus(freq, res.CRCValid, lat)
	fmt.Fprintf(&out, "switches=%d → %3.0f MHz\n%s\n\n", sw, freq, indent(b.OLED.String()))
	return out.String(), nil
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "  | " + line + "\n"
	}
	return out[:len(out)-1]
}

func splitLines(s string) []string {
	var lines []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			lines = append(lines, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	return append(lines, cur)
}
