package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSingleArtefact(t *testing.T) {
	if err := realMain("tableIII", "", 42); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownArtefact(t *testing.T) {
	if err := realMain("tableIX", "", 42); err == nil {
		t.Error("unknown artefact accepted")
	}
}

func TestCSVOutput(t *testing.T) {
	dir := t.TempDir()
	if err := realMain("fig5", dir, 42); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig5.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "frequency_mhz,throughput_mbs\n") {
		t.Errorf("csv = %q…", data[:40])
	}
}

func TestRunnerNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, r := range runners {
		if seen[r.name] {
			t.Errorf("duplicate runner %q", r.name)
		}
		seen[r.name] = true
	}
	if len(runners) < 10 {
		t.Errorf("only %d runners registered", len(runners))
	}
}
