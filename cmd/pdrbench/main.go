// Command pdrbench regenerates every table and figure of the paper's
// evaluation from the simulation and prints them side by side with the
// published numbers.
//
// Usage:
//
//	pdrbench                 # run everything
//	pdrbench -run tableI     # one artefact: tableI fig5 stress fig6
//	                         # tableII tableIII secVI claims crc knee guard
//	pdrbench -csv out/       # also write figure series as CSV files
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/experiments"
)

type runner struct {
	name string
	fn   func(*experiments.Env) (*experiments.Report, error)
}

var runners = []runner{
	{"tableI", experiments.TableI},
	{"fig5", experiments.Fig5},
	{"stress", experiments.TempStress},
	{"fig6", experiments.Fig6},
	{"tableII", experiments.TableII},
	{"tableIII", experiments.TableIII},
	{"secVI", experiments.SecVI},
	{"claims", experiments.LatencyClaims},
	{"crc", experiments.AblationCRC},
	{"knee", experiments.AblationKnee},
	{"guard", experiments.AblationRobustGuard},
	{"contention", experiments.AblationContention},
	{"scrub", experiments.AblationScrub},
}

func main() {
	run := flag.String("run", "all", "artefact to regenerate (all|"+names()+")")
	csvDir := flag.String("csv", "", "directory to write figure CSV series into")
	seed := flag.Uint64("seed", 42, "simulation seed")
	flag.Parse()

	if err := realMain(*run, *csvDir, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "pdrbench:", err)
		os.Exit(1)
	}
}

func names() string {
	out := make([]string, len(runners))
	for i, r := range runners {
		out[i] = r.name
	}
	return strings.Join(out, "|")
}

func realMain(run, csvDir string, seed uint64) error {
	matched := false
	for _, r := range runners {
		if run != "all" && run != r.name {
			continue
		}
		matched = true
		// A fresh environment per artefact keeps them independent, as each
		// paper experiment started from a freshly booted board.
		env, err := experiments.NewEnv(seed)
		if err != nil {
			return err
		}
		rep, err := r.fn(env)
		if err != nil {
			return fmt.Errorf("%s: %w", r.name, err)
		}
		fmt.Println(rep.Render())
		if csvDir != "" {
			for _, s := range rep.Series {
				path := filepath.Join(csvDir, s.Name+".csv")
				if err := os.MkdirAll(csvDir, 0o755); err != nil {
					return err
				}
				if err := os.WriteFile(path, []byte(s.CSV()), 0o644); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", path)
			}
		}
	}
	if !matched {
		return fmt.Errorf("unknown artefact %q (want all|%s)", run, names())
	}
	return nil
}
