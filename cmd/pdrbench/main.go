// Command pdrbench regenerates the tables and figures of the paper's
// evaluation from the simulation via the Campaign API. Scenarios come from
// the experiment registry — adding a registered Scenario needs zero changes
// here.
//
// Usage:
//
//	pdrbench                      # run the full E1–A5 suite sequentially
//	pdrbench -run E1,E3           # a subset, by ID or legacy alias
//	pdrbench -platform zc706      # run on another registered platform
//	pdrbench -parallel 4          # shard the suite over 4 workers
//	                              # (output is byte-identical to -parallel 1)
//	pdrbench -parallel 0          # one worker per CPU
//	pdrbench -fleet-workers 8     # fan each fleet epoch out over 8 goroutines
//	                              # (0 = one per CPU; output is byte-identical)
//	pdrbench -fleet 1,2,4         # reshape the E13 fleet-size axis
//	pdrbench -router affinity     # E13 routing policy
//	pdrbench -chaos-crashes 3     # reshape the E15 fault storm
//	                              # (-chaos-excursions, -chaos-glitches too;
//	                              # 0 = standard storm, negative = none)
//	pdrbench -run E16 -trace-out day.json   # persist the E16 arrival stream
//	pdrbench -run E16 -trace-in day.json    # replay a recorded stream
//	pdrbench -run E16 -scaler predictive    # one autoscaler policy only
//	pdrbench -run E17 -plan-workers 4       # fan the planner's verifying
//	                              # simulations out (output is byte-identical)
//	pdrbench -run E17 -plan-rate 2800 -plan-p99 10 -plan-shed 0.005
//	                              # re-plan for another load/SLO point
//	pdrbench -run E13 -trace-events e13.json  # export request spans and
//	                              # control-plane events as Chrome trace-
//	                              # event JSON (Perfetto-loadable; bytes
//	                              # are identical at any -fleet-workers)
//	pdrbench -run E13 -metrics-out m.json     # sim-time metric series
//	                              # (queue depths, watts, shed; .csv for CSV)
//	pdrbench -pprof localhost:6060            # wall-clock pprof endpoints
//	                              # for the run's duration
//	pdrbench -json                # machine-readable reports
//	pdrbench -md > EXPERIMENTS.md # regenerate the committed artefact file
//	pdrbench -csv out/            # also write figure series as CSV files
//	pdrbench -list                # show the registered scenarios + platforms
//	pdrbench -list -json          # the registry as JSON (golden-tested)
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/pdr"
)

type options struct {
	run             string
	platform        string
	parallel        int
	fleetWorkers    int
	seed            uint64
	jsonOut         bool
	mdOut           bool
	list            bool
	csvDir          string
	fleet           string
	router          string
	chaosCrashes    int
	chaosExcursions int
	chaosGlitches   int
	traceIn         string
	traceOut        string
	scaler          string
	planWorkers     int
	planRate        float64
	planP99         float64
	planShed        float64
	traceEvents     string
	metricsOut      string
	pprofAddr       string
}

func main() {
	var opts options
	flag.StringVar(&opts.run, "run", "all", "comma-separated scenario IDs or aliases (see -list)")
	flag.StringVar(&opts.platform, "platform", "", "platform profile to run on (default zedboard; see -list)")
	flag.IntVar(&opts.parallel, "parallel", 1, "campaign workers (0 = one per CPU)")
	flag.IntVar(&opts.fleetWorkers, "fleet-workers", 1, "goroutines per fleet epoch advance in E13-E16 (0 = one per CPU; output is byte-identical)")
	flag.Uint64Var(&opts.seed, "seed", 42, "simulation seed")
	flag.BoolVar(&opts.jsonOut, "json", false, "emit reports as JSON (with -list: the scenario registry)")
	flag.BoolVar(&opts.mdOut, "md", false, "emit the EXPERIMENTS.md document")
	flag.BoolVar(&opts.list, "list", false, "list registered scenarios and exit")
	flag.StringVar(&opts.csvDir, "csv", "", "directory to write figure CSV series into")
	flag.StringVar(&opts.fleet, "fleet", "", "comma-separated fleet sizes for the scale-out scenario E13 (e.g. 1,2,4)")
	flag.StringVar(&opts.router, "router", "", "routing policy for E13 (round-robin|least-outstanding|weighted|affinity)")
	flag.IntVar(&opts.chaosCrashes, "chaos-crashes", 0, "board outages in the E15 storm (0 = standard, negative = none)")
	flag.IntVar(&opts.chaosExcursions, "chaos-excursions", 0, "thermal excursions in the E15 storm (0 = standard, negative = none)")
	flag.IntVar(&opts.chaosGlitches, "chaos-glitches", 0, "CRC glitch bursts in the E15 storm (0 = standard, negative = none)")
	flag.StringVar(&opts.traceIn, "trace-in", "", "replay the E16 arrival stream from a versioned trace file")
	flag.StringVar(&opts.traceOut, "trace-out", "", "write the E16 arrival stream to a versioned trace file")
	flag.StringVar(&opts.scaler, "scaler", "", "restrict E16 to one autoscaler policy (reactive|predictive)")
	flag.IntVar(&opts.planWorkers, "plan-workers", 1, "goroutines for the E17 planner's verifying simulations (0 = one per CPU; output is byte-identical)")
	flag.Float64Var(&opts.planRate, "plan-rate", 0, "offered load in req/s the E17 planner plans for (0 = 2200)")
	flag.Float64Var(&opts.planP99, "plan-p99", 0, "E17 SLO: p99 sojourn bound in ms (0 = 12)")
	flag.Float64Var(&opts.planShed, "plan-shed", 0, "E17 SLO: maximum shed fraction (0 = 0.01)")
	flag.StringVar(&opts.traceEvents, "trace-events", "", "write the run's spans and events as Chrome trace-event JSON (load in Perfetto / chrome://tracing)")
	flag.StringVar(&opts.metricsOut, "metrics-out", "", "write the run's sim-time metric series (.csv = CSV, otherwise canonical JSON)")
	flag.StringVar(&opts.pprofAddr, "pprof", "", "serve wall-clock profiling at this address (e.g. localhost:6060) for the run's duration")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := realMain(ctx, os.Stdout, opts); err != nil {
		fmt.Fprintln(os.Stderr, "pdrbench:", err)
		os.Exit(1)
	}
}

func realMain(ctx context.Context, w io.Writer, opts options) error {
	if opts.list {
		if opts.jsonOut {
			return listScenariosJSON(w)
		}
		return listScenarios(w)
	}
	copts := []pdr.CampaignOption{
		pdr.WithCampaignSeed(opts.seed),
		pdr.WithWorkers(opts.parallel),
	}
	if opts.fleetWorkers != 1 {
		copts = append(copts, pdr.WithFleetWorkers(opts.fleetWorkers))
	}
	if opts.platform != "" {
		copts = append(copts, pdr.WithBoardVariant(pdr.BoardVariant(opts.platform)))
	}
	if opts.fleet != "" {
		var sizes []int
		for _, s := range strings.Split(opts.fleet, ",") {
			if s = strings.TrimSpace(s); s == "" {
				continue
			}
			n, err := strconv.Atoi(s)
			if err != nil || n < 1 {
				return fmt.Errorf("invalid -fleet size %q (want positive integers)", s)
			}
			sizes = append(sizes, n)
		}
		if len(sizes) == 0 {
			return fmt.Errorf("invalid -fleet %q (want positive integers, e.g. 1,2,4)", opts.fleet)
		}
		copts = append(copts, pdr.WithFleetGrid(sizes...))
	}
	if opts.router != "" {
		valid := false
		for _, name := range pdr.Routers() {
			if name == opts.router {
				valid = true
				break
			}
		}
		if !valid {
			return fmt.Errorf("unknown router %q (want %s)", opts.router, strings.Join(pdr.Routers(), "|"))
		}
		copts = append(copts, pdr.WithFleetRouter(opts.router))
	}
	if opts.chaosCrashes != 0 || opts.chaosExcursions != 0 || opts.chaosGlitches != 0 {
		copts = append(copts, pdr.WithChaosStorm(opts.chaosCrashes, opts.chaosExcursions, opts.chaosGlitches))
	}
	if opts.traceIn != "" {
		copts = append(copts, pdr.WithTraceFile(opts.traceIn))
	}
	if opts.planWorkers != 1 {
		copts = append(copts, pdr.WithPlanWorkers(opts.planWorkers))
	}
	if opts.planRate != 0 {
		if opts.planRate < 0 {
			return fmt.Errorf("invalid -plan-rate %g (want a positive rate)", opts.planRate)
		}
		copts = append(copts, pdr.WithPlanRate(opts.planRate))
	}
	if opts.planP99 != 0 || opts.planShed != 0 {
		if opts.planP99 < 0 || opts.planShed < 0 {
			return fmt.Errorf("invalid SLO -plan-p99 %g / -plan-shed %g (want positive values)", opts.planP99, opts.planShed)
		}
		copts = append(copts, pdr.WithSLO(sim.Duration(opts.planP99*float64(sim.Millisecond)), opts.planShed))
	}
	if opts.scaler != "" {
		valid := false
		for _, name := range pdr.ScalerPolicies() {
			if name == opts.scaler {
				valid = true
				break
			}
		}
		if !valid {
			return fmt.Errorf("unknown scaler %q (want %s)", opts.scaler, strings.Join(pdr.ScalerPolicies(), "|"))
		}
		copts = append(copts, pdr.WithScalerPolicy(pdr.ScalerPolicy(opts.scaler)))
	}
	if opts.traceOut != "" {
		if err := writeTraceOut(opts); err != nil {
			return err
		}
		// The notice goes to stderr so -json/-md stdout stays parseable.
		fmt.Fprintf(os.Stderr, "wrote %s\n", opts.traceOut)
	}
	var tracer *pdr.Tracer
	if opts.traceEvents != "" || opts.metricsOut != "" {
		tracer = pdr.NewTracer()
		copts = append(copts, pdr.WithTracer(tracer))
	}
	if opts.pprofAddr != "" {
		// Listen synchronously so a bad address fails the run, then serve
		// for the run's duration. The pprof endpoints profile wall-clock
		// behaviour (scheduling, allocation) — the simulated clock has its
		// own deterministic exports above.
		ln, err := net.Listen("tcp", opts.pprofAddr)
		if err != nil {
			return fmt.Errorf("-pprof: %w", err)
		}
		defer ln.Close()
		go func() { _ = http.Serve(ln, nil) }()
		fmt.Fprintf(os.Stderr, "pprof: http://%s/debug/pprof/\n", ln.Addr())
	}
	if opts.run != "" && opts.run != "all" {
		var ids []string
		for _, id := range strings.Split(opts.run, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
		copts = append(copts, pdr.WithScenarios(ids...))
	}
	res, err := pdr.NewCampaign(copts...).Run(ctx)
	if err != nil {
		return err
	}

	switch {
	case opts.mdOut:
		if _, err := io.WriteString(w, res.Markdown()); err != nil {
			return err
		}
	case opts.jsonOut:
		out, err := res.JSON()
		if err != nil {
			return err
		}
		if _, err := w.Write(out); err != nil {
			return err
		}
	default:
		if _, err := io.WriteString(w, res.Render()); err != nil {
			return err
		}
	}

	if opts.csvDir != "" {
		if err := os.MkdirAll(opts.csvDir, 0o755); err != nil {
			return err
		}
		for _, rep := range res.Reports {
			for _, s := range rep.Series {
				path := filepath.Join(opts.csvDir, s.Name+".csv")
				if err := os.WriteFile(path, []byte(s.CSV()), 0o644); err != nil {
					return err
				}
				// Notices go to stderr so -json/-md stdout stays parseable.
				fmt.Fprintf(os.Stderr, "wrote %s\n", path)
			}
		}
	}
	if opts.traceEvents != "" {
		if err := os.WriteFile(opts.traceEvents, tracer.Chrome(), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", opts.traceEvents)
	}
	if opts.metricsOut != "" {
		data := tracer.MetricsCSV()
		if !strings.HasSuffix(opts.metricsOut, ".csv") {
			var err error
			if data, err = tracer.MetricsJSON(); err != nil {
				return err
			}
		}
		if err := os.WriteFile(opts.metricsOut, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", opts.metricsOut)
	}
	// The run summary — wall clock and simulation volume per scenario, and
	// the campaign pool's utilization — goes to stderr: it is profiling
	// telemetry, deliberately kept out of the deterministic stdout that
	// -json/-md consumers and the CI byte-diffs read.
	writeSummary(os.Stderr, res)
	return nil
}

// writeSummary renders the per-scenario cost table and the worker pool's
// wall-clock utilization. Sim events are deterministic (a pure function of
// the configuration); wall-clock columns are measurements and vary run to
// run.
func writeSummary(w io.Writer, res *pdr.CampaignResult) {
	fmt.Fprintf(w, "\n%-5s %14s %12s\n", "ID", "sim events", "wall [ms]")
	var events uint64
	var wall float64
	for _, rep := range res.Reports {
		fmt.Fprintf(w, "%-5s %14d %12.1f\n", rep.ID, rep.SimEvents, rep.WallMS)
		events += rep.SimEvents
		wall += rep.WallMS
	}
	fmt.Fprintf(w, "%-5s %14d %12.1f  (%d units on %d workers, %.1f ms elapsed)\n",
		"total", events, wall, res.Units, res.Workers,
		float64(res.Elapsed)/float64(time.Millisecond))
	for i, wc := range res.Pool {
		fmt.Fprintf(w, "worker %d: %d units, %.1f ms busy\n",
			i, wc.Tasks, float64(wc.Busy)/float64(time.Millisecond))
	}
}

// writeTraceOut persists the E16 arrival stream as a versioned trace file:
// the stream a -trace-in flag names (re-exported after the import round
// trip), or the one the campaign seed and platform generate.
func writeTraceOut(opts options) error {
	var tr pdr.Trace
	var err error
	if opts.traceIn != "" {
		data, rerr := os.ReadFile(opts.traceIn)
		if rerr != nil {
			return rerr
		}
		tr, err = pdr.ImportTrace(data)
	} else {
		tr, err = experiments.DiurnalTrace(experiments.Config{Seed: opts.seed, Platform: opts.platform})
	}
	if err != nil {
		return err
	}
	out, err := pdr.ExportTrace(tr)
	if err != nil {
		return err
	}
	return os.WriteFile(opts.traceOut, out, 0o644)
}

// scenarioInfo and platformInfo are the machine-readable registry rows
// `-list -json` emits; field order is stable so the output can be golden-
// tested and diffed.
type scenarioInfo struct {
	ID        string   `json:"id"`
	Aliases   []string `json:"aliases,omitempty"`
	Shards    int      `json:"shards"`
	Platforms []string `json:"platforms,omitempty"`
	Title     string   `json:"title"`
}

type platformInfo struct {
	Name    string `json:"name"`
	Board   string `json:"board"`
	Part    string `json:"part"`
	Variant bool   `json:"variant,omitempty"`
	Summary string `json:"summary"`
}

type listing struct {
	Scenarios []scenarioInfo `json:"scenarios"`
	Platforms []platformInfo `json:"platforms"`
}

// listScenariosJSON emits the registry as one stable JSON document. Shard
// counts and platform spans reflect the default configuration, exactly as
// the table listing does.
func listScenariosJSON(w io.Writer) error {
	cfg := experiments.Config{}
	var out listing
	for _, s := range pdr.Scenarios() {
		info := scenarioInfo{
			ID:      s.ID,
			Aliases: s.Aliases,
			Shards:  s.Shards(cfg),
			Title:   s.Title,
		}
		if s.Platforms != nil {
			info.Platforms = s.Platforms(cfg)
		}
		out.Scenarios = append(out.Scenarios, info)
	}
	for _, p := range pdr.Platforms() {
		out.Platforms = append(out.Platforms, platformInfo{
			Name:    p.Name,
			Board:   p.Board,
			Part:    p.Part,
			Variant: p.Variant,
			Summary: p.Summary,
		})
	}
	enc, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	_, err = w.Write(enc)
	return err
}

func listScenarios(w io.Writer) error {
	// Shard counts and platform spans reflect the default configuration —
	// the same plan a default campaign executes (grid overrides reshape
	// E11's segments, the -platform flag the single-platform scenarios).
	cfg := experiments.Config{}
	fmt.Fprintf(w, "%-4s %-9s %-7s %-26s %s\n", "ID", "alias", "shards", "platforms", "title")
	for _, s := range pdr.Scenarios() {
		alias := ""
		if len(s.Aliases) > 0 {
			alias = s.Aliases[0]
		}
		platforms := "campaign"
		if s.Platforms != nil {
			platforms = strings.Join(s.Platforms(cfg), ",")
		}
		if _, err := fmt.Fprintf(w, "%-4s %-9s %-7d %-26s %s\n", s.ID, alias, s.Shards(cfg), platforms, s.Title); err != nil {
			return err
		}
	}
	fmt.Fprintln(w, "(\"campaign\" = runs on the -platform selection)")
	fmt.Fprintf(w, "\nplatforms (-platform):\n%-22s %-20s %-9s %s\n", "name", "board", "part", "summary")
	for _, p := range pdr.Platforms() {
		name := p.Name
		if p.Variant {
			name += " *"
		}
		if _, err := fmt.Fprintf(w, "%-22s %-20s %-9s %s\n", name, p.Board, p.Part, p.Summary); err != nil {
			return err
		}
	}
	fmt.Fprintln(w, "(* = preset of another board)")
	return nil
}
