package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/workload"
)

func gen(aspName, rpName, out string, compress bool, inspect string) error {
	return realMain(aspName, rpName, out, compress, inspect, false, "", false, "")
}

func TestGenerateAndInspect(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "fir.bit")
	if err := gen("fir128", "RP1", out, false, ""); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(out)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != 528760 {
		t.Errorf("file size = %d, want 528760", info.Size())
	}
	if err := gen("", "", "", false, out); err != nil {
		t.Errorf("inspect: %v", err)
	}
}

func TestGenerateCompressed(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "fir.bitc")
	if err := gen("fir128", "RP2", out, true, ""); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(out)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() >= 528760 {
		t.Errorf("compressed size = %d, want < raw", info.Size())
	}
	if err := gen("", "", "", false, out); err != nil {
		t.Errorf("inspect compressed: %v", err)
	}
}

func TestGenerateAll(t *testing.T) {
	dir := t.TempDir()
	if err := realMain("", "RP1", "", false, "", true, dir, false, ""); err != nil {
		t.Fatal(err)
	}
	for _, a := range workload.Library() {
		if _, err := os.Stat(filepath.Join(dir, a.Name+".bit")); err != nil {
			t.Errorf("missing %s: %v", a.Name, err)
		}
	}
}

func TestListLibrary(t *testing.T) {
	if err := realMain("", "", "", false, "", false, "", true, ""); err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	if err := gen("", "RP1", "", false, ""); err == nil {
		t.Error("missing args accepted")
	}
	if err := gen("ghost", "RP1", "x.bit", false, ""); err == nil {
		t.Error("unknown ASP accepted")
	}
	if err := gen("fir128", "RP9", "x.bit", false, ""); err == nil {
		t.Error("unknown RP accepted")
	}
	if err := gen("", "", "", false, "/nonexistent/file.bit"); err == nil {
		t.Error("missing inspect file accepted")
	}
}

func TestASPNamesListsLibrary(t *testing.T) {
	names := aspNames()
	if !strings.Contains(names, "fir128") || !strings.Contains(names, "sha3") {
		t.Errorf("aspNames = %q", names)
	}
}
