// Command bitgen generates, inspects and compresses the synthetic partial
// bitstreams used throughout the reproduction.
//
// Usage:
//
//	bitgen -asp fir128 -rp RP1 -out fir128.bit         # generate
//	bitgen -asp fir128 -rp RP1 -out fir128.bitc -z     # generate compressed
//	bitgen -all -dir images/                           # the whole library
//	bitgen -list                                       # ASP library table
//	bitgen -inspect fir128.bit                         # decode the header
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/bitstream"
	"repro/internal/fabric"
	"repro/internal/platform"
	"repro/internal/workload"
)

func main() {
	asp := flag.String("asp", "", "ASP name from the workload library")
	rp := flag.String("rp", "RP1", "target reconfigurable partition")
	out := flag.String("out", "", "output file")
	compress := flag.Bool("z", false, "store RLE-compressed")
	inspect := flag.String("inspect", "", "file to decode instead of generating")
	all := flag.Bool("all", false, "generate every library ASP (into -dir)")
	dir := flag.String("dir", ".", "output directory for -all")
	list := flag.Bool("list", false, "print the ASP library and exit")
	plat := flag.String("platform", "", "platform profile the RP geometry comes from (default zedboard)")
	flag.Parse()

	if err := realMain(*asp, *rp, *out, *compress, *inspect, *all, *dir, *list, *plat); err != nil {
		fmt.Fprintln(os.Stderr, "bitgen:", err)
		os.Exit(1)
	}
}

func realMain(aspName, rpName, out string, compress bool, inspect string, all bool, dir string, list bool, plat string) error {
	if list {
		fmt.Printf("%-12s %-6s %-12s %-10s %s\n", "ASP", "fill", "compute", "clock", "mem MB/s")
		for _, a := range workload.Library() {
			fmt.Printf("%-12s %-6.2f %-12s %-10s %.0f\n",
				a.Name, a.FillFraction, a.ComputeTime, fmt.Sprintf("%.0f MHz", a.ClockMHz), a.MemBandwidthMBs)
		}
		return nil
	}
	if inspect != "" {
		return doInspect(inspect)
	}
	if all {
		return doAll(rpName, dir, compress, plat)
	}
	if aspName == "" || out == "" {
		return fmt.Errorf("need -asp and -out (or -all/-list/-inspect); ASPs: %s", aspNames())
	}
	prof, ok := platform.Lookup(plat)
	if !ok {
		return fmt.Errorf("unknown platform %q (want %s)", plat, platform.NameList())
	}
	dev := prof.NewDevice()
	var region *fabric.Region
	for _, r := range prof.RPs(dev) {
		if r.Name == rpName {
			r := r
			region = &r
			break
		}
	}
	if region == nil {
		return fmt.Errorf("unknown RP %q", rpName)
	}
	asp, err := workload.LibraryASP(aspName)
	if err != nil {
		return err
	}
	bs, err := asp.Bitstream(dev, *region)
	if err != nil {
		return err
	}
	data := bs.Raw
	if compress {
		if data, err = bitstream.Compress(bs.Raw); err != nil {
			return err
		}
		fmt.Printf("compressed %d → %d bytes (%.2fx)\n",
			len(bs.Raw), len(data), bitstream.CompressionRatio(bs.Raw, data))
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %s for %s, %d frames, %d bytes on disk\n",
		out, aspName, rpName, bs.Header.Frames, len(data))
	return nil
}

// doAll writes every library ASP's image for the RP into dir, so a whole
// SD card's worth of bitstreams comes from one command.
func doAll(rpName, dir string, compress bool, plat string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, a := range workload.Library() {
		ext := ".bit"
		if compress {
			ext = ".bitc"
		}
		out := filepath.Join(dir, a.Name+ext)
		if err := realMain(a.Name, rpName, out, compress, "", false, "", false, plat); err != nil {
			return fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	return nil
}

func doInspect(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if dec, derr := bitstream.Decompress(data); derr == nil {
		fmt.Printf("compressed image: %d bytes → %d bytes (%.2fx)\n",
			len(data), len(dec), bitstream.CompressionRatio(dec, data))
		data = dec
	}
	h, err := bitstream.ParseHeader(data)
	if err != nil {
		return err
	}
	fmt.Printf("name:      %s\npart:      %s\nframes:    %d\nwords:     %d\nfile size: %d bytes\nfile CRC:  %08x (verified)\n",
		h.Name, h.Part, h.Frames, h.DataWords, len(data), h.FileCRC)
	return nil
}

func aspNames() string {
	out := ""
	for i, a := range workload.Library() {
		if i > 0 {
			out += ", "
		}
		out += a.Name
	}
	return out
}
