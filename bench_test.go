// Package repro_test holds the benchmark harness that regenerates every
// table and figure of the paper (one benchmark per artefact, DESIGN.md §4)
// plus micro-benchmarks of the hot substrate paths. Benchmarks report the
// simulated quantities (throughput, latency, efficiency) as custom metrics
// so `go test -bench` output doubles as the reproduction record.
package repro_test

import (
	"context"
	"strconv"
	"testing"

	"repro/internal/bitstream"
	"repro/internal/experiments"
	"repro/internal/fabric"
	"repro/internal/plan"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/pdr"
)

// benchEnv builds a fresh measurement environment, outside the timed loop:
// callers invoke it from inside the b.N loop (each experiment needs a cold
// platform), so it stops the benchmark clock around construction to keep
// env setup out of the measurement.
func benchEnv(b *testing.B) *experiments.Env {
	b.Helper()
	b.StopTimer()
	env, err := experiments.NewEnv(42)
	if err != nil {
		b.Fatal(err)
	}
	b.StartTimer()
	return env
}

func mustCell(b *testing.B, rep *experiments.Report, row, col int) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(rep.Rows[row][col], 64)
	if err != nil {
		b.Fatalf("cell (%d,%d) = %q: %v", row, col, rep.Rows[row][col], err)
	}
	return v
}

// BenchmarkTableI_FrequencySweep regenerates Table I (E1): the nine-point
// over-clocking sweep. Metrics: throughput at the nominal 100 MHz and at
// the 280 MHz maximum.
func BenchmarkTableI_FrequencySweep(b *testing.B) {
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = experiments.TableI(benchEnv(b))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(mustCell(b, rep, 0, 2), "MB/s@100MHz")
	b.ReportMetric(mustCell(b, rep, 5, 2), "MB/s@280MHz")
}

// benchScenario runs a registered scenario through the canonical
// sequential registry path — the same shards and merge the campaign,
// pdrbench and EXPERIMENTS.md use, so all consumers report one number.
func benchScenario(b *testing.B, id string) *experiments.Report {
	b.Helper()
	return benchFleetScenario(b, id, 0)
}

// benchFleetScenario is benchScenario with the fleet scenarios' epoch
// fan-out width applied (0/1 = the sequential loop). Output is
// byte-identical at every width, so the sub-benchmarks measure pure wall
// clock against one fixed workload.
func benchFleetScenario(b *testing.B, id string, fleetWorkers int) *experiments.Report {
	b.Helper()
	s, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("scenario %s not registered", id)
	}
	cfg := experiments.Config{Seed: 42, FleetWorkers: fleetWorkers}
	rep, err := experiments.RunSequential(context.Background(), s, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return rep
}

// fleetBenchWorkers is the worker axis the fleet-scenario benchmarks sweep
// (recorded in BENCH_parfleet.json).
var fleetBenchWorkers = []int{1, 4, 8}

// BenchmarkFig5_Curve regenerates Fig. 5 (E2): the fine-grained
// throughput-frequency curve with its 200 MHz knee.
func BenchmarkFig5_Curve(b *testing.B) {
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = benchScenario(b, "E2")
	}
	b.ReportMetric(float64(len(rep.Series[0].Points)), "points")
}

// BenchmarkTempStress_Matrix regenerates the Sec. IV-A heat-gun matrix
// (E3): 7 frequencies × 7 temperatures, exactly one failing cell.
func BenchmarkTempStress_Matrix(b *testing.B) {
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = benchScenario(b, "E3")
	}
	fails := 0.0
	for _, row := range rep.Rows {
		for _, c := range row[1:] {
			if c == "FAIL" {
				fails++
			}
		}
	}
	b.ReportMetric(fails, "failing-cells")
}

// BenchmarkFig6_PowerGrid regenerates Fig. 6 (E4): P_PDR over the
// frequency × temperature grid.
func BenchmarkFig6_PowerGrid(b *testing.B) {
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = benchScenario(b, "E4")
	}
	b.ReportMetric(mustCell(b, rep, 0, 1), "W@100MHz/40C")
	b.ReportMetric(mustCell(b, rep, 5, 4), "W@280MHz/100C")
}

// BenchmarkTableII_PowerEfficiency regenerates Table II (E5) and reports
// the knee's performance-per-watt.
func BenchmarkTableII_PowerEfficiency(b *testing.B) {
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = experiments.TableII(benchEnv(b))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(mustCell(b, rep, 3, 3), "MB/J@200MHz")
}

// BenchmarkTableIII_RelatedWork regenerates the related-work comparison
// (E6).
func BenchmarkTableIII_RelatedWork(b *testing.B) {
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = experiments.TableIII(benchEnv(b))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(mustCell(b, rep, 3, 3), "MB/s-thiswork")
	b.ReportMetric(mustCell(b, rep, 2, 3), "MB/s-hkt2011")
}

// BenchmarkSecVI_SRAMPipeline regenerates the proposed-system measurement
// (E7): raw and compressed streaming from the QDR SRAM.
func BenchmarkSecVI_SRAMPipeline(b *testing.B) {
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = experiments.SecVI(benchEnv(b))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(mustCell(b, rep, 0, 3), "MB/s-raw")
	b.ReportMetric(mustCell(b, rep, 1, 3), "MB/s-compressed")
}

// BenchmarkAblation_CRCOverhead (A1): read-back interference on a
// foreground load.
func BenchmarkAblation_CRCOverhead(b *testing.B) {
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = experiments.AblationCRC(benchEnv(b))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(mustCell(b, rep, 1, 1)-mustCell(b, rep, 0, 1), "us-interference")
}

// BenchmarkAblation_KneeDecomposition (A2): what the plateau is made of.
func BenchmarkAblation_KneeDecomposition(b *testing.B) {
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = experiments.AblationKnee(benchEnv(b))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(mustCell(b, rep, 0, 1), "MB/s-calibrated")
	b.ReportMetric(mustCell(b, rep, 2, 1), "MB/s-2xport")
}

// BenchmarkAblation_RobustGuard (A3): the recovery episode's cost.
func BenchmarkAblation_RobustGuard(b *testing.B) {
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = experiments.AblationRobustGuard(benchEnv(b))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(mustCell(b, rep, 1, 2), "us-recovery")
}

// BenchmarkSingleLoad measures one partial reconfiguration end to end at
// each Table I frequency (simulated latency as the metric, wall time as
// the cost of simulating it).
func BenchmarkSingleLoad(b *testing.B) {
	for _, freq := range []float64{100, 200, 280} {
		b.Run(strconv.Itoa(int(freq))+"MHz", func(b *testing.B) {
			sys, err := pdr.NewSystem(pdr.WithSeed(42))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sys.SetFrequencyMHz(freq); err != nil {
				b.Fatal(err)
			}
			var last pdr.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				last, err = sys.LoadASP("RP1", "fir128")
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(last.LatencyUS, "sim-us")
			b.ReportMetric(last.ThroughputMBs, "sim-MB/s")
		})
	}
}

// BenchmarkCampaignSuite runs the full E1–A5 suite through the Campaign
// API at several worker counts. Wall time per op is the headline: on a
// multi-core host the sharded suite should approach (slowest shard +
// scheduling) rather than the sequential sum. The recorded numbers extend
// the perf trajectory in BENCH_campaign.json.
func BenchmarkCampaignSuite(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run("parallel-"+strconv.Itoa(workers), func(b *testing.B) {
			var res *pdr.CampaignResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = pdr.NewCampaign(
					pdr.WithCampaignSeed(42),
					pdr.WithWorkers(workers),
				).Run(context.Background())
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Units), "shards")
			b.ReportMetric(float64(len(res.Reports)), "scenarios")
		})
	}
}

// BenchmarkSaturationSweep regenerates the saturation scenario (E11): the
// open-loop latency-vs-offered-load sweep over every platform board, with
// and without the DRAM bitstream cache. Metrics: the ZedBoard's detected
// saturation knee in both modes (the cache's knee shift is the scenario's
// headline) and the cached p99 at the lowest offered rate.
func BenchmarkSaturationSweep(b *testing.B) {
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = benchScenario(b, "E11")
	}
	series := map[string][]sim.Point{}
	for _, s := range rep.Series {
		series[s.Name] = s.Points
	}
	kneeCache, _ := experiments.SaturationKnee(series["e11_zedboard_cache"])
	kneeNone, _ := experiments.SaturationKnee(series["e11_zedboard_nocache"])
	b.ReportMetric(kneeCache, "knee-cache-req/s")
	b.ReportMetric(kneeNone, "knee-nocache-req/s")
	if pts := series["e11_zedboard_cache"]; len(pts) > 0 {
		b.ReportMetric(pts[0].Y/1000, "p99-ms-cache-lowrate")
	}
}

// BenchmarkSchedPolicies regenerates the policy × cache-budget comparison
// (E12). Metric: the p99 spread between the best and worst policy at the
// thrashing 4-image budget.
func BenchmarkSchedPolicies(b *testing.B) {
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = benchScenario(b, "E12")
	}
	best, worst := 0.0, 0.0
	for _, s := range rep.Series {
		if len(s.Points) == 0 {
			continue
		}
		p99 := s.Points[0].Y
		if best == 0 || p99 < best {
			best = p99
		}
		if p99 > worst {
			worst = p99
		}
	}
	b.ReportMetric(worst/best, "p99-policy-spread")
}

// BenchmarkFleetSweep regenerates the scale-out scenario (E13): goodput and
// p99 versus fleet size at a fixed offered load above the single-board
// knee, homogeneous and mixed fleets, plus the autoscaled points. Metrics:
// the homogeneous fleet's goodput at 1 and 8 boards and the scaling factor
// between them (the scenario's headline).
func BenchmarkFleetSweep(b *testing.B) {
	for _, workers := range fleetBenchWorkers {
		b.Run("workers="+strconv.Itoa(workers), func(b *testing.B) {
			var rep *experiments.Report
			for i := 0; i < b.N; i++ {
				rep = benchFleetScenario(b, "E13", workers)
			}
			series := map[string][]sim.Point{}
			for _, s := range rep.Series {
				series[s.Name] = s.Points
			}
			if pts := series["e13_zedboard_goodput"]; len(pts) > 1 {
				first, last := pts[0], pts[len(pts)-1]
				b.ReportMetric(first.Y, "goodput-1board-req/s")
				b.ReportMetric(last.Y, "goodput-8boards-req/s")
				if first.Y > 0 {
					b.ReportMetric(last.Y/first.Y, "goodput-scaling")
				}
			}
		})
	}
}

// BenchmarkRoutingPolicies regenerates the routing scenario (E14). Metrics:
// bitstream-affinity's cache hit ratio against round-robin's, and the p99
// advantage, under skewed image popularity on cache-constrained boards.
func BenchmarkRoutingPolicies(b *testing.B) {
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = benchScenario(b, "E14")
	}
	series := map[string][]sim.Point{}
	for _, s := range rep.Series {
		series[s.Name] = s.Points
	}
	aff, rr := series["e14_affinity"], series["e14_round-robin"]
	if len(aff) == 2 && len(rr) == 2 {
		b.ReportMetric(100*aff[0].Y, "affinity-hit-%")
		b.ReportMetric(100*rr[0].Y, "roundrobin-hit-%")
		if aff[1].Y > 0 {
			b.ReportMetric(rr[1].Y/aff[1].Y, "p99-advantage")
		}
	}
}

// BenchmarkChaosStorm regenerates the chaos scenario (E15): every routing
// policy serving the same warm fleet through the same seeded fault storm
// with the self-healing machinery on. Metrics: the headline spread between
// affinity (degrades worst — a crash funnels its keys onto one ring
// successor) and least-outstanding (degrades gracefully — queue depth
// already encodes board health), in goodput and p99.
func BenchmarkChaosStorm(b *testing.B) {
	for _, workers := range fleetBenchWorkers {
		b.Run("workers="+strconv.Itoa(workers), func(b *testing.B) {
			var rep *experiments.Report
			for i := 0; i < b.N; i++ {
				rep = benchFleetScenario(b, "E15", workers)
			}
			series := map[string][]sim.Point{}
			for _, s := range rep.Series {
				series[s.Name] = s.Points
			}
			aff, jsq := series["e15_affinity"], series["e15_least-outstanding"]
			if len(aff) == 3 && len(jsq) == 3 {
				b.ReportMetric(100*aff[0].Y, "affinity-avail-%")
				b.ReportMetric(100*jsq[0].Y, "jsq-avail-%")
				b.ReportMetric(aff[1].Y, "affinity-goodput-req/s")
				b.ReportMetric(jsq[1].Y, "jsq-goodput-req/s")
				if aff[2].Y > 0 {
					b.ReportMetric(aff[2].Y/jsq[2].Y, "p99-degradation-ratio")
				}
			}
		})
	}
}

// BenchmarkDiurnal regenerates the diurnal scenario (E16): both scaler
// policies serving the same simulated day — a diurnal base rate with a
// flash crowd that ramps inside one scaler window — on cold six-board
// fleets. Metrics: the flash-window shed fraction per policy (the
// headline: the forecast retargets several boards after one observed
// window while the reactive policy climbs one per window) and the
// goodput each sustains.
func BenchmarkDiurnal(b *testing.B) {
	for _, workers := range fleetBenchWorkers {
		b.Run("workers="+strconv.Itoa(workers), func(b *testing.B) {
			var rep *experiments.Report
			for i := 0; i < b.N; i++ {
				rep = benchFleetScenario(b, "E16", workers)
			}
			series := map[string][]sim.Point{}
			for _, s := range rep.Series {
				series[s.Name] = s.Points
			}
			re, pr := series["e16_reactive"], series["e16_predictive"]
			if len(re) == 4 && len(pr) == 4 {
				b.ReportMetric(100*re[0].Y, "reactive-flash-shed-%")
				b.ReportMetric(100*pr[0].Y, "predictive-flash-shed-%")
				b.ReportMetric(re[1].Y, "reactive-goodput-req/s")
				b.ReportMetric(pr[1].Y, "predictive-goodput-req/s")
				if pr[0].Y > 0 {
					b.ReportMetric(re[0].Y/pr[0].Y, "flash-shed-ratio")
				}
			}
		})
	}
}

// BenchmarkPlanSurrogate measures the planner's tier A: closed-form
// scoring of the full default candidate space. The candidates/sec metric
// is the rate that lets the search evaluate thousands of configurations
// before spending a single fleet simulation.
func BenchmarkPlanSurrogate(b *testing.B) {
	cands := pdr.PlanSpace{}.Enumerate()
	w := pdr.PlanWorkload{Seed: 42, RatePerSec: 2200, Requests: 192, ASPs: plan.DefaultASPs(), Deadline: 20 * sim.Millisecond}
	slo := pdr.PlanSLO{P99: 12 * sim.Millisecond, MaxShed: 0.01}
	sur := plan.NewSurrogate()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range cands {
			if _, err := sur.Score(c, w, slo); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	if perOp > 0 {
		b.ReportMetric(float64(len(cands))/(perOp/1e9), "candidates/s")
	}
}

// BenchmarkPlanSearch measures the end-to-end two-tier plan search (the
// E17 question) cold and with a warm memo cache: the warm run answers from
// cached simulations, so the gap is tier B's entire simulation cost.
func BenchmarkPlanSearch(b *testing.B) {
	opts := pdr.PlanOptions{
		Workload: pdr.PlanWorkload{Seed: 42 ^ 0xE17, RatePerSec: 2200, Requests: 192, Deadline: 20 * sim.Millisecond},
		Workers:  4,
	}
	run := func(b *testing.B, memo *pdr.PlanMemo) *pdr.PlanResult {
		o := opts
		o.Memo = memo
		res, err := pdr.Plan(context.Background(), o)
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	b.Run("memo=cold", func(b *testing.B) {
		var res *pdr.PlanResult
		for i := 0; i < b.N; i++ {
			res = run(b, pdr.NewPlanMemo())
		}
		b.ReportMetric(float64(res.CandidatesScored), "scored")
		b.ReportMetric(float64(res.SimsRun), "sims")
	})
	b.Run("memo=warm", func(b *testing.B) {
		memo := pdr.NewPlanMemo()
		run(b, memo) // prime outside the timed loop
		b.ResetTimer()
		var res *pdr.PlanResult
		for i := 0; i < b.N; i++ {
			res = run(b, memo)
		}
		b.ReportMetric(float64(res.MemoHits), "memo-hits")
		b.ReportMetric(float64(res.SimsRun), "sims")
	})
}

// --- substrate micro-benchmarks ---

func benchFrames(n int) [][]uint32 {
	rng := sim.NewRNG(1)
	frames := make([][]uint32, n)
	for i := range frames {
		f := make([]uint32, fabric.FrameWords)
		for w := range f {
			if rng.Bool(0.5) {
				f[w] = rng.Uint32()
			}
		}
		frames[i] = f
	}
	return frames
}

// BenchmarkBitstreamBuild measures assembling the 529 KB partial bitstream.
func BenchmarkBitstreamBuild(b *testing.B) {
	dev := platform.Default().NewDevice()
	rp := platform.Default().RPs(dev)[0]
	frames := benchFrames(dev.RegionFrames(rp))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bitstream.Build(dev, rp, "bench", frames); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(bitstream.ExpectedSize(1308)))
}

// BenchmarkConfigCRC measures the running configuration CRC over a full
// FDRI payload.
func BenchmarkConfigCRC(b *testing.B) {
	frames := benchFrames(1308)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var crc bitstream.ConfigCRC
		for _, f := range frames {
			crc.UpdateWords(bitstream.RegFDRI, f)
		}
	}
	b.SetBytes(int64(1308 * fabric.FrameWords * 4))
}

// BenchmarkCompress / BenchmarkDecompress measure the Sec.-VI RLE codec on
// a realistic image.
func BenchmarkCompress(b *testing.B) {
	dev := platform.Default().NewDevice()
	rp := platform.Default().RPs(dev)[0]
	asp, err := workload.LibraryASP("fir128")
	if err != nil {
		b.Fatal(err)
	}
	bs, err := asp.Bitstream(dev, rp)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bitstream.Compress(bs.Raw); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(bs.Raw)))
}

func BenchmarkDecompress(b *testing.B) {
	dev := platform.Default().NewDevice()
	rp := platform.Default().RPs(dev)[0]
	asp, err := workload.LibraryASP("fir128")
	if err != nil {
		b.Fatal(err)
	}
	bs, err := asp.Bitstream(dev, rp)
	if err != nil {
		b.Fatal(err)
	}
	comp, err := bitstream.Compress(bs.Raw)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bitstream.Decompress(comp); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(bs.Raw)))
}

// BenchmarkKernelEvents measures the DES kernel's event throughput (the
// simulation's own speed limit).
func BenchmarkKernelEvents(b *testing.B) {
	k := sim.NewKernel()
	count := 0
	var tick func()
	tick = func() {
		count++
		k.Schedule(10*sim.Nanosecond, tick)
	}
	k.Schedule(10*sim.Nanosecond, tick)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Step()
	}
}

// BenchmarkTraceOverhead measures the observability layer's cost on the
// fleet serve path (the same path BenchmarkFleetSweep exercises): "off"
// is the nil-tracer run — the disabled path must stay within 1 % of the
// pre-observability wall clock and add zero allocations per emission
// site (TestDisabledPathZeroAlloc pins the alloc half of that contract)
// — and "on" attaches a full tracer collecting spans, events, and the
// 1 ms metric grid. The simulated outputs are byte-identical either way;
// only wall clock and memory move. Recorded in BENCH_obs.json.
func BenchmarkTraceOverhead(b *testing.B) {
	for _, traced := range []bool{false, true} {
		name := "off"
		if traced {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			var tracer *pdr.Tracer
			if traced {
				tracer = pdr.NewTracer()
			}
			f, err := pdr.NewFleet(pdr.FleetOptions{
				Boards:  []string{"zedboard", "zedboard", "zedboard"},
				Seed:    42,
				Router:  "least-outstanding",
				Prewarm: []string{"fir128", "sha3", "aes-gcm", "fft1k"},
				Tracer:  tracer,
			})
			if err != nil {
				b.Fatal(err)
			}
			stream, err := f.OpenTrace(pdr.ArrivalSpec{
				RatePerSec: 900,
				Deadline:   20 * sim.Millisecond,
			}, 7, 192, []string{"fir128", "sha3", "aes-gcm", "fft1k"})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := f.Serve(stream); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_Contention (A4): reconfiguration throughput under
// competing accelerator memory traffic.
func BenchmarkAblation_Contention(b *testing.B) {
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = experiments.AblationContention(benchEnv(b))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(mustCell(b, rep, 0, 1), "MB/s-idle")
	b.ReportMetric(mustCell(b, rep, 3, 1), "MB/s-400MBs-traffic")
}

// BenchmarkAblation_Scrub (A5): SEU repair versus full reload.
func BenchmarkAblation_Scrub(b *testing.B) {
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = experiments.AblationScrub(benchEnv(b))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(mustCell(b, rep, 0, 3), "us-scrub-1seu")
	b.ReportMetric(mustCell(b, rep, 3, 3), "us-full-reload")
}
