package workpool

import (
	"sync/atomic"
	"testing"
)

func TestRunCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 100} {
		const n = 37
		counts := make([]int64, n)
		Run(n, workers, func(i int) { atomic.AddInt64(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Errorf("workers=%d: unit %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestRunSingleWorkerInOrder(t *testing.T) {
	var order []int
	Run(5, 1, func(i int) { order = append(order, i) })
	for i, got := range order {
		if got != i {
			t.Fatalf("sequential order = %v", order)
		}
	}
}

func TestRunZeroUnits(t *testing.T) {
	Run(0, 4, func(int) { t.Error("fn called for n=0") })
	Run(-1, 4, func(int) { t.Error("fn called for n<0") })
}
