package workpool

import (
	"sync/atomic"
	"testing"
)

func TestRunCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 100} {
		const n = 37
		counts := make([]int64, n)
		Run(n, workers, func(i int) { atomic.AddInt64(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Errorf("workers=%d: unit %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestRunSingleWorkerInOrder(t *testing.T) {
	var order []int
	Run(5, 1, func(i int) { order = append(order, i) })
	for i, got := range order {
		if got != i {
			t.Fatalf("sequential order = %v", order)
		}
	}
}

func TestRunZeroUnits(t *testing.T) {
	Run(0, 4, func(int) { t.Error("fn called for n=0") })
	Run(-1, 4, func(int) { t.Error("fn called for n<0") })
}

func TestRunCountedTallies(t *testing.T) {
	for _, workers := range []int{1, 3} {
		const n = 24
		c := &Counters{}
		counts := make([]int64, n)
		RunCounted(n, workers, c, func(i int) { atomic.AddInt64(&counts[i], 1) })
		for i, got := range counts {
			if got != 1 {
				t.Errorf("workers=%d: unit %d ran %d times", workers, i, got)
			}
		}
		snap := c.Snapshot()
		if len(snap) == 0 || len(snap) > workers {
			t.Fatalf("workers=%d: snapshot has %d workers", workers, len(snap))
		}
		var tasks int64
		for w, wc := range snap {
			tasks += wc.Tasks
			if wc.Tasks > 0 && wc.Busy <= 0 {
				t.Errorf("workers=%d: worker %d claimed %d tasks with no busy time", workers, w, wc.Tasks)
			}
		}
		if tasks != n {
			t.Errorf("workers=%d: task tally = %d, want %d", workers, tasks, n)
		}
	}
}

func TestRunCountedNilCountersIsRun(t *testing.T) {
	const n = 16
	counts := make([]int64, n)
	RunCounted(n, 4, nil, func(i int) { atomic.AddInt64(&counts[i], 1) })
	for i, c := range counts {
		if c != 1 {
			t.Errorf("unit %d ran %d times", i, c)
		}
	}
	var c *Counters
	if snap := c.Snapshot(); snap != nil {
		t.Errorf("nil counters snapshot = %v", snap)
	}
}
