// Package workpool provides the deterministic-merge scheduling idiom the
// campaign runner and the CLI sweeps share: n independent units, claimed
// by index from an atomic counter, with every result written to its own
// caller-owned slot — so the merged output never depends on the schedule.
package workpool

import (
	"sync"
	"sync/atomic"
	"time"
)

// Run executes fn(0), …, fn(n-1) on up to workers goroutines (clamped to
// [1, n]; one worker runs the units in index order on the calling
// goroutine). fn must confine its writes to state owned by its unit index.
// Run returns once every unit has finished.
func Run(n, workers int, fn func(i int)) { RunCounted(n, workers, nil, fn) }

// WorkerCount is one worker's accumulated utilization: how many units
// it claimed and how much wall-clock time it spent running them. The
// gap between Busy and the pool's elapsed wall time is starvation —
// the signal BENCH_parfleet.json could not previously show.
type WorkerCount struct {
	Tasks int64
	Busy  time.Duration
}

// Counters accumulates per-worker utilization across RunCounted calls
// (a fleet calls the pool once per epoch; worker w's tallies sum over
// the whole run). Wall-clock measurements only — these never feed the
// deterministic simulation outputs.
type Counters struct {
	mu      sync.Mutex
	workers []WorkerCount
}

func (c *Counters) add(w int, tasks int64, busy time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.workers) <= w {
		c.workers = append(c.workers, WorkerCount{})
	}
	c.workers[w].Tasks += tasks
	c.workers[w].Busy += busy
}

// Snapshot returns a copy of the per-worker tallies (index = worker).
func (c *Counters) Snapshot() []WorkerCount {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]WorkerCount, len(c.workers))
	copy(out, c.workers)
	return out
}

// RunCounted is Run with optional utilization accounting: when c is
// non-nil, each worker's claimed-unit count and busy wall time are
// added to c under that worker's index. A nil c takes the exact Run
// path — no clock reads, no locking.
func RunCounted(n, workers int, c *Counters, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if c == nil {
			for i := 0; i < n; i++ {
				fn(i)
			}
			return
		}
		start := time.Now()
		for i := 0; i < n; i++ {
			fn(i)
		}
		c.add(0, int64(n), time.Since(start))
		return
	}
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var tasks int64
			var busy time.Duration
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					break
				}
				if c == nil {
					fn(i)
					continue
				}
				t0 := time.Now()
				fn(i)
				busy += time.Since(t0)
				tasks++
			}
			if c != nil && tasks > 0 {
				c.add(w, tasks, busy)
			}
		}(w)
	}
	wg.Wait()
}
