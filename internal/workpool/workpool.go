// Package workpool provides the deterministic-merge scheduling idiom the
// campaign runner and the CLI sweeps share: n independent units, claimed
// by index from an atomic counter, with every result written to its own
// caller-owned slot — so the merged output never depends on the schedule.
package workpool

import (
	"sync"
	"sync/atomic"
)

// Run executes fn(0), …, fn(n-1) on up to workers goroutines (clamped to
// [1, n]; one worker runs the units in index order on the calling
// goroutine). fn must confine its writes to state owned by its unit index.
// Run returns once every unit has finished.
func Run(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
