// Package paperdata records the numbers published in the paper (Tables I–III
// and the Fig. 5/6 observations) so tests and the experiment harness can
// compare simulated results against them with explicit tolerances.
package paperdata

// TableIRow is one row of Table I (throughput vs frequency).
type TableIRow struct {
	FreqMHz float64
	// LatencyUS is 0 for the "N/A no interrupt" rows.
	LatencyUS     float64
	ThroughputMBs float64
	IRQ           bool
	CRCValid      bool
}

// TableI is the published Table I.
var TableI = []TableIRow{
	{FreqMHz: 100, LatencyUS: 1325.60, ThroughputMBs: 399.06, IRQ: true, CRCValid: true},
	{FreqMHz: 140, LatencyUS: 947.40, ThroughputMBs: 558.12, IRQ: true, CRCValid: true},
	{FreqMHz: 180, LatencyUS: 737.50, ThroughputMBs: 716.96, IRQ: true, CRCValid: true},
	{FreqMHz: 200, LatencyUS: 676.30, ThroughputMBs: 781.84, IRQ: true, CRCValid: true},
	{FreqMHz: 240, LatencyUS: 671.90, ThroughputMBs: 786.96, IRQ: true, CRCValid: true},
	{FreqMHz: 280, LatencyUS: 669.20, ThroughputMBs: 790.14, IRQ: true, CRCValid: true},
	{FreqMHz: 310, IRQ: false, CRCValid: true},
	{FreqMHz: 320, IRQ: false, CRCValid: false},
	{FreqMHz: 360, IRQ: false, CRCValid: false},
}

// BitstreamBytes is the transfer size implied by Table I's latency ×
// throughput products (every row multiplies to ≈528,760 bytes). The
// abstract's "1.2 MB" is inconsistent with the table; see EXPERIMENTS.md.
const BitstreamBytes = 528760

// TableIIRow is one row of Table II (power efficiency at 40 °C).
type TableIIRow struct {
	FreqMHz       float64
	PDRWatts      float64
	ThroughputMBs float64
	PpWMBperJ     float64
}

// TableII is the published Table II.
var TableII = []TableIIRow{
	{100, 1.14, 399.06, 351},
	{140, 1.23, 558.12, 453},
	{180, 1.28, 716.96, 560},
	{200, 1.30, 781.84, 599},
	{240, 1.36, 786.96, 577},
	{280, 1.44, 790.14, 550},
}

// TableIIIRow is one row of Table III (related work).
type TableIIIRow struct {
	Design        string
	Platform      string
	FreqMHz       float64
	ThroughputMBs float64
}

// TableIII is the published comparison.
var TableIII = []TableIIIRow{
	{"VF-2012", "Virtex-6", 210, 839},
	{"HP-2011", "Virtex-5", 133, 419},
	{"HKT-2011", "Virtex-5", 550, 2200},
	{"This work", "Zynq-7000", 280, 790},
}

// StressFailFreqMHz / StressFailTempC identify the single failing cell of
// the Sec. IV-A temperature-stress matrix.
const (
	StressFailFreqMHz = 310.0
	StressFailTempC   = 100.0
)

// SecVITheoreticalMBs is the proposed system's stated throughput.
const SecVITheoreticalMBs = 1237.5

// KneeMHz is the most power-efficient frequency (Table II's maximum).
const KneeMHz = 200.0

// BestPpW is the paper's headline efficiency at the knee.
const BestPpW = 599.0
