package paperdata

import (
	"math"
	"testing"
)

func TestTableIInternallyConsistent(t *testing.T) {
	// Each operational row's latency × throughput must multiply out to the
	// same transfer size — the observation the whole calibration rests on.
	for _, row := range TableI {
		if !row.IRQ {
			continue
		}
		size := row.LatencyUS * row.ThroughputMBs // µs · MB/s = bytes
		if math.Abs(size-BitstreamBytes)/BitstreamBytes > 0.001 {
			t.Errorf("%v MHz: latency×throughput = %.0f bytes, want ≈%d",
				row.FreqMHz, size, BitstreamBytes)
		}
	}
}

func TestTableIIConsistentWithTableI(t *testing.T) {
	// Table II's throughput column repeats Table I's; its PpW column must
	// equal throughput/power within rounding.
	tputByFreq := map[float64]float64{}
	for _, row := range TableI {
		tputByFreq[row.FreqMHz] = row.ThroughputMBs
	}
	for _, row := range TableII {
		if got := tputByFreq[row.FreqMHz]; got != row.ThroughputMBs {
			t.Errorf("%v MHz: Table II throughput %v != Table I %v",
				row.FreqMHz, row.ThroughputMBs, got)
		}
		ppw := row.ThroughputMBs / row.PDRWatts
		if math.Abs(ppw-row.PpWMBperJ) > 3.5 {
			t.Errorf("%v MHz: PpW %v inconsistent with %v/%v = %.0f",
				row.FreqMHz, row.PpWMBperJ, row.ThroughputMBs, row.PDRWatts, ppw)
		}
	}
}

func TestTableIFailureTaxonomy(t *testing.T) {
	// Rows must be ordered by frequency with the documented failure order:
	// OK (IRQ+valid) → hang (no IRQ, valid) → corrupt (no IRQ, invalid).
	phase := 0
	last := 0.0
	for _, row := range TableI {
		if row.FreqMHz <= last {
			t.Fatal("rows not frequency-ordered")
		}
		last = row.FreqMHz
		var p int
		switch {
		case row.IRQ && row.CRCValid:
			p = 0
		case !row.IRQ && row.CRCValid:
			p = 1
		case !row.IRQ && !row.CRCValid:
			p = 2
		default:
			t.Fatalf("%v MHz: impossible combination IRQ=%v valid=%v", row.FreqMHz, row.IRQ, row.CRCValid)
		}
		if p < phase {
			t.Errorf("%v MHz: failure phase regressed", row.FreqMHz)
		}
		phase = p
	}
}

func TestKneeIsTableIIMaximum(t *testing.T) {
	best := 0.0
	bestF := 0.0
	for _, row := range TableII {
		if row.PpWMBperJ > best {
			best, bestF = row.PpWMBperJ, row.FreqMHz
		}
	}
	if bestF != KneeMHz || best != BestPpW {
		t.Errorf("knee = %v MHz @ %v MB/J, constants say %v @ %v", bestF, best, KneeMHz, BestPpW)
	}
}
