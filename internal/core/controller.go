// Package core implements the paper's contribution: a dynamic partial
// reconfiguration controller built from standard IP blocks (AXI DMA + ICAP)
// that boosts throughput by over-clocking them beyond specification, made
// robust by a CRC bitstream read-back monitor that detects when the
// over-clock has gone too far.
//
// On top of the raw controller it provides the measurement machinery of the
// paper's evaluation: the frequency Calibrator (Table I / Fig. 5), the
// temperature StressMatrix (Sec. IV-A), the PowerProfiler (Fig. 6 /
// Table II), the power-efficiency Optimizer (the 200 MHz knee), and a
// RobustGuard that recovers from failed over-clocked transfers — the
// operational payoff of having the CRC monitor.
package core

import (
	"fmt"

	"repro/internal/bitstream"
	"repro/internal/crcmon"
	"repro/internal/dma"
	"repro/internal/sim"
	"repro/internal/timing"
	"repro/internal/zynq"
)

// Result describes one partial-reconfiguration attempt, combining what the
// paper's software could observe (latency via interrupt, CRC verdict) with
// the simulation oracle (actual memory state) used by tests.
type Result struct {
	// RP is the targeted partition.
	RP string
	// FreqMHz is the over-clock frequency during the transfer.
	FreqMHz float64
	// TempC is the die temperature at transfer start.
	TempC float64

	// IRQReceived reports whether the completion interrupt arrived. When
	// false, LatencyUS is meaningless (the paper's "N/A no interrupt").
	IRQReceived bool
	// LatencyUS is the C-timer reading: from starting the DMA to the
	// completion handler.
	LatencyUS float64
	// ThroughputMBs is bitstream size / latency (0 when no interrupt).
	ThroughputMBs float64
	// CRCValid is the read-back monitor's verdict.
	CRCValid bool
	// CRCByIRQ reports whether the verdict arrived by interrupt (true) or
	// had to be polled because the monitor's IRQ was lost (false).
	CRCByIRQ bool

	// Outcome is the oracle's timing classification.
	Outcome timing.Outcome
	// DataIntact is the oracle's memory comparison.
	DataIntact bool
}

// Controller drives over-clocked partial reconfiguration on a platform.
type Controller struct {
	p *zynq.Platform

	// LoadTimeoutFactor scales the IRQ wait relative to the expected
	// transfer time; the paper's operators concluded "no interrupt" after a
	// similar grace period.
	LoadTimeoutFactor float64

	loads uint64
}

// New creates a controller. The platform's static design must be configured
// (Board.Boot or Platform.ConfigureStatic) before loads are issued.
func New(p *zynq.Platform) *Controller {
	return &Controller{p: p, LoadTimeoutFactor: 4}
}

// Platform returns the underlying platform.
func (c *Controller) Platform() *zynq.Platform { return c.p }

// Loads returns the number of Load calls.
func (c *Controller) Loads() uint64 { return c.loads }

// SetFrequencyMHz re-programs the over-clock domain through the Clock
// Wizard (costing the MMCM re-lock time) and returns the exact frequency.
func (c *Controller) SetFrequencyMHz(f float64) (float64, error) {
	actual, err := c.p.SetOverclock(sim.Hz(f * 1e6))
	if err != nil {
		return 0, err
	}
	return actual.MHzValue(), nil
}

// stepUntil runs the kernel until cond holds or the simulated deadline
// passes; it reports whether cond held.
func (c *Controller) stepUntil(cond func() bool, timeout sim.Duration) bool {
	deadline := c.p.Kernel.Now().Add(timeout)
	for !cond() {
		next := c.p.Kernel.NextEventTime()
		if next == sim.Never || next > deadline {
			c.p.Kernel.RunUntil(deadline)
			return cond()
		}
		c.p.Kernel.Step()
	}
	return true
}

// Load performs one partial reconfiguration of the named RP and waits for
// both the completion interrupt (or its timeout) and the CRC read-back
// verdict. It mirrors the paper's measurement flow exactly: C-timer around
// the DMA+ICAP transfer, CRC verdict from the background monitor afterwards.
func (c *Controller) Load(rpName string, bs *bitstream.Bitstream) (Result, error) {
	if !c.p.PLConfigured() {
		return Result{}, fmt.Errorf("core: static design not configured")
	}
	rp, err := c.p.RP(rpName)
	if err != nil {
		return Result{}, err
	}
	if want := c.p.Device.RegionFrames(rp); bs.Header.Frames != want {
		return Result{}, fmt.Errorf("core: bitstream has %d frames, RP %s needs %d", bs.Header.Frames, rpName, want)
	}
	mon := c.p.Monitors[rpName]
	c.loads++

	res := Result{
		RP:      rpName,
		FreqMHz: c.p.OverclockDomain.Freq().MHzValue(),
		TempC:   c.p.Die.TempC(),
	}

	// Read-back must not interleave with configuration writes.
	mon.Suspend()
	c.p.ICAP.Reset()

	// Arm the completion interrupt and the timer, then start the DMA.
	irqDone := false
	var latency sim.Duration
	c.p.PS.Handle(zynq.IRQDMADone, func() {
		latency = c.p.PS.TimerStop()
		irqDone = true
	})
	c.p.PS.TimerStart()
	words := bs.Words()
	if err := c.p.DMA.Transfer(words, c.p.ICAP, func(dma.Result) {
		c.p.PS.Raise(zynq.IRQDMADone)
	}); err != nil {
		mon.Resume()
		return Result{}, fmt.Errorf("core: %w", err)
	}

	// Wait for the interrupt, with the operator's timeout.
	expected := sim.FromSeconds(float64(len(words)) / (4e6 * res.FreqMHz))
	timeout := sim.Duration(float64(expected)*c.LoadTimeoutFactor) + sim.Millisecond
	if c.stepUntil(func() bool { return irqDone }, timeout) {
		res.IRQReceived = true
		res.LatencyUS = latency.Microseconds()
		res.ThroughputMBs = float64(bs.Size()) / res.LatencyUS
	} else {
		// Hang: make sure the silent data movement finished before the CRC
		// phase (the oracle needs a settled memory image).
		c.stepUntil(func() bool { return c.p.DMA.Completed() }, timeout)
	}

	// CRC read-back verdict: install the golden reference and let the
	// monitor scan. When the monitor's interrupt is lost (over-clocked
	// control path), poll its status register instead — the paper's
	// "CRC valid / not valid" column was obtained both ways. The bitstream
	// caches its golden CRC, so repeated loads skip the recompute.
	mon.SetGoldenCRC(bs.FrameCRC())
	var verdict *crcmon.Result
	mon.OnResult = func(r crcmon.Result) {
		if verdict == nil {
			v := r
			verdict = &v
		}
	}
	baseline := mon.ScansCompleted()
	mon.Start()
	mon.Resume()
	scanTime := sim.FromSeconds(float64(bs.Header.Frames*101) / (1e6 * res.FreqMHz) * 3)
	gotScan := c.stepUntil(func() bool {
		return verdict != nil || mon.ScansCompleted() > baseline
	}, scanTime+sim.Millisecond)
	mon.OnResult = nil
	mon.Stop() // scan on demand per load; callers may re-Start for background use
	if verdict != nil {
		res.CRCValid = verdict.Valid
		res.CRCByIRQ = true
	} else if gotScan {
		last, ok := mon.Last()
		res.CRCValid = ok && last.Valid
	}

	// Oracle views.
	res.Outcome = c.p.Classify()
	intact, err := c.p.Memory.RegionEqual(rp, bs.Frames)
	if err != nil {
		return Result{}, fmt.Errorf("core: oracle: %w", err)
	}
	res.DataIntact = intact
	return res, nil
}

// waitForIdle drains in-flight work (used between experiment points).
func (c *Controller) waitForIdle() {
	c.stepUntil(func() bool { return !c.p.DMA.Busy() }, 100*sim.Millisecond)
}
