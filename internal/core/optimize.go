package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/bitstream"
	"repro/internal/dma"
	"repro/internal/platform"
)

// Recommendation is the Optimizer's output: the operating point the paper's
// methodology arrives at (Sec. IV-B / VII).
type Recommendation struct {
	// FreqMHz is the chosen over-clock frequency.
	FreqMHz float64
	// ThroughputMBs and PDRWatts are the measured values at that point.
	ThroughputMBs float64
	PDRWatts      float64
	// PpW is the achieved power efficiency.
	PpW float64
	// GuardBandMHz is the robustness ceiling (worst-case temperature,
	// derated) the choice was clipped to.
	GuardBandMHz float64
}

// Optimizer implements the paper's "methodology to achieve the most power
// efficient implementation": sweep the operational frequencies, measure
// throughput and power, pick the maximum performance-per-watt point, and
// clip it to a temperature guard band so the choice stays robust in harsh
// environments.
type Optimizer struct {
	Profiler *PowerProfiler
	// WorstTempC is the hottest die temperature the deployment must
	// tolerate (the paper stresses to 100 °C).
	WorstTempC float64
	// Margin is the relative guard band below the worst-case timing limit.
	Margin float64
}

// Choose runs the measurement sweep at the current temperature and returns
// the most power-efficient robust operating point.
func (o *Optimizer) Choose(freqsMHz []float64) (Recommendation, error) {
	worst := o.WorstTempC
	if worst == 0 {
		worst = 100
	}
	margin := o.Margin
	if margin == 0 {
		margin = 0.10
	}
	guard := o.Profiler.C.p.Timing.GuardBandFreq(worst, margin)
	guardMHz := guard.MHzValue()

	eligible := make([]float64, 0, len(freqsMHz))
	for _, f := range freqsMHz {
		if f <= guardMHz {
			eligible = append(eligible, f)
		}
	}
	if len(eligible) == 0 {
		return Recommendation{}, fmt.Errorf("core: no candidate frequency below guard band %.1f MHz", guardMHz)
	}
	sort.Float64s(eligible)

	points, err := o.Profiler.GridAtCurrent(eligible)
	if err != nil {
		return Recommendation{}, err
	}
	best := Recommendation{GuardBandMHz: guardMHz}
	for _, pt := range points {
		if pt.PpW > best.PpW {
			best.FreqMHz = pt.FreqMHz
			best.ThroughputMBs = pt.ThroughputMBs
			best.PDRWatts = pt.PDRWatts
			best.PpW = pt.PpW
		}
	}
	if best.FreqMHz == 0 {
		return Recommendation{}, fmt.Errorf("core: no operational point found")
	}
	return best, nil
}

// Recovery describes what the RobustGuard did about a failed load.
type Recovery struct {
	// Attempts lists every attempt, the last being the successful one (or
	// the final failure).
	Attempts []Result
	// Recovered reports whether a retry produced a CRC-valid configuration.
	Recovered bool
	// FallbackMHz is the frequency of the final attempt.
	FallbackMHz float64
	// TotalUS is the wall time of the whole episode, the price of the
	// failed over-clock.
	TotalUS float64
}

// RobustGuard wraps Load with the recovery policy the CRC monitor enables:
// if the transfer hangs or verifies invalid, fall back to a safe frequency
// and reload. Without the CRC block (e.g. VF-2012) the failure would go
// undetected.
type RobustGuard struct {
	C *Controller
	// SafeMHz is the fallback frequency (default: the 100 MHz nominal).
	SafeMHz float64
	// MaxRetries bounds recovery attempts (default 2).
	MaxRetries int
}

// Load attempts the reconfiguration at the current frequency and recovers
// on failure.
func (g *RobustGuard) Load(rp string, bs *bitstream.Bitstream) (Recovery, error) {
	safe := g.SafeMHz
	if safe == 0 {
		safe = 100
	}
	retries := g.MaxRetries
	if retries == 0 {
		retries = 2
	}
	start := g.C.p.Kernel.Now()
	var rec Recovery
	res, err := g.C.Load(rp, bs)
	if err != nil {
		return rec, err
	}
	rec.Attempts = append(rec.Attempts, res)
	rec.FallbackMHz = res.FreqMHz
	for attempt := 0; !ok(res) && attempt < retries; attempt++ {
		if _, err := g.C.SetFrequencyMHz(safe); err != nil {
			return rec, err
		}
		res, err = g.C.Load(rp, bs)
		if err != nil {
			return rec, err
		}
		rec.Attempts = append(rec.Attempts, res)
		rec.FallbackMHz = res.FreqMHz
	}
	rec.Recovered = ok(res)
	rec.TotalUS = g.C.p.Kernel.Now().Sub(start).Microseconds()
	return rec, nil
}

// ok is the guard's acceptance predicate: the load completed visibly and
// verified.
func ok(r Result) bool { return r.IRQReceived && r.CRCValid }

// ExpectedLatencyUSOn predicts the configuration latency for a bitstream at
// a frequency on the given platform, from the calibrated analytic model
// (DESIGN.md §2); used for documentation and sanity checks, not by the
// controller itself.
func ExpectedLatencyUSOn(prof *platform.Profile, sizeBytes int, freqMHz float64) float64 {
	words := float64(sizeBytes-bitstream.HeaderBytes) / 4
	streamUS := words / freqMHz // 4 bytes per cycle ⇒ words/f µs
	// Memory side: one DMA burst per refresh-derated port slot plus the CDC
	// handshake in the over-clocked domain.
	bursts := math.Ceil(words * 4 / dma.BurstBytes)
	memUS := bursts * (prof.AnalyticBurstUS() + prof.AXI.CDCSyncCycles/freqMHz)
	if memUS > streamUS {
		streamUS = memUS
	}
	return streamUS + prof.AnalyticFixedUS
}

// ExpectedLatencyUS is ExpectedLatencyUSOn for the default (ZedBoard)
// platform.
func ExpectedLatencyUS(sizeBytes int, freqMHz float64) float64 {
	return ExpectedLatencyUSOn(platform.Default(), sizeBytes, freqMHz)
}
