package core

import (
	"math"
	"testing"

	"repro/internal/power"
)

func TestStressMatrixReproducesSecIVA(t *testing.T) {
	// Sec. IV-A: frequencies up to 310 MHz, die 40–100 °C in 10 °C steps.
	// "All the tests succeeded except the test done at 310 MHz and 100 °C."
	p := newPlatform(t)
	c := New(p)
	cal := &Calibrator{C: c, Bitstream: standardBitstream(t, p, 11)}
	freqs := []float64{100, 200, 280, 310}
	temps := []float64{40, 60, 80, 90, 100}
	cells, err := cal.StressMatrix(freqs, temps)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(freqs)*len(temps) {
		t.Fatalf("cells = %d", len(cells))
	}
	for _, cell := range cells {
		wantPass := !(cell.FreqMHz == 310 && cell.TempC == 100)
		if cell.Passed != wantPass {
			t.Errorf("%v MHz @ %v°C: passed=%v, want %v",
				cell.FreqMHz, cell.TempC, cell.Passed, wantPass)
		}
	}
}

func TestPowerProfilerReproducesTableII(t *testing.T) {
	// Table II: P_PDR and PpW at 40 °C; the maximum efficiency must land at
	// the 200 MHz knee with ≈599 MB/J.
	p := newPlatform(t)
	c := New(p)
	pp := &PowerProfiler{
		C:         c,
		Meter:     power.NewMeter(p.Kernel, p.Power, 100*1000*1000), // 100 µs in ps
		Bitstream: standardBitstream(t, p, 12),
	}
	freqs := []float64{100, 140, 180, 200, 240, 280}
	points, err := pp.Grid(freqs, []float64{40})
	if err != nil {
		t.Fatal(err)
	}
	paper := map[float64]struct{ w, ppw float64 }{
		100: {1.14, 351}, 140: {1.23, 453}, 180: {1.28, 560},
		200: {1.30, 599}, 240: {1.36, 577}, 280: {1.44, 550},
	}
	bestF, bestPpW := 0.0, 0.0
	for _, pt := range points {
		want := paper[pt.FreqMHz]
		if math.Abs(pt.PDRWatts-want.w) > 0.06 {
			t.Errorf("%v MHz: P_PDR %.3f W, paper %.2f", pt.FreqMHz, pt.PDRWatts, want.w)
		}
		if math.Abs(pt.PpW-want.ppw)/want.ppw > 0.05 {
			t.Errorf("%v MHz: PpW %.0f MB/J, paper %.0f", pt.FreqMHz, pt.PpW, want.ppw)
		}
		if pt.PpW > bestPpW {
			bestF, bestPpW = pt.FreqMHz, pt.PpW
		}
	}
	if bestF != 200 {
		t.Errorf("best PpW at %v MHz, want 200 (the knee)", bestF)
	}
}

func TestFig6PowerFamilyShape(t *testing.T) {
	// Fig. 6's two observations: dynamic slope constant across temperature;
	// static offset super-linear in temperature.
	p := newPlatform(t)
	c := New(p)
	pp := &PowerProfiler{
		C:         c,
		Meter:     power.NewMeter(p.Kernel, p.Power, 100*1000*1000),
		Bitstream: standardBitstream(t, p, 13),
	}
	freqs := []float64{100, 280}
	temps := []float64{40, 60, 80, 100}
	points, err := pp.Grid(freqs, temps)
	if err != nil {
		t.Fatal(err)
	}
	byTemp := map[float64]map[float64]float64{}
	for _, pt := range points {
		if byTemp[pt.TempC] == nil {
			byTemp[pt.TempC] = map[float64]float64{}
		}
		byTemp[pt.TempC][pt.FreqMHz] = pt.PDRWatts
	}
	slope40 := (byTemp[40][280] - byTemp[40][100]) / 180
	var offsets []float64
	for _, temp := range temps {
		slope := (byTemp[temp][280] - byTemp[temp][100]) / 180
		if math.Abs(slope-slope40) > 0.25e-3 {
			t.Errorf("slope at %v°C = %v W/MHz, want ≈%v (T-independent)", temp, slope, slope40)
		}
		offsets = append(offsets, byTemp[temp][100])
	}
	// Super-linear static growth: consecutive 20 °C increments grow.
	d1 := offsets[1] - offsets[0]
	d2 := offsets[2] - offsets[1]
	d3 := offsets[3] - offsets[2]
	if !(d3 > d2 && d2 > d1) {
		t.Errorf("static power increments not super-linear: %v %v %v", d1, d2, d3)
	}
}

func TestOptimizerPicksRobustKnee(t *testing.T) {
	p := newPlatform(t)
	c := New(p)
	pp := &PowerProfiler{
		C:         c,
		Meter:     power.NewMeter(p.Kernel, p.Power, 100*1000*1000),
		Bitstream: standardBitstream(t, p, 14),
	}
	opt := &Optimizer{Profiler: pp, WorstTempC: 100, Margin: 0.10}
	rec, err := opt.Choose([]float64{100, 140, 180, 200, 240, 280, 310})
	if err != nil {
		t.Fatal(err)
	}
	if rec.FreqMHz != 200 {
		t.Errorf("recommended %v MHz, want 200", rec.FreqMHz)
	}
	if rec.GuardBandMHz >= 280 {
		t.Errorf("guard band %v MHz should exclude 280+", rec.GuardBandMHz)
	}
	if math.Abs(rec.PpW-599) > 30 {
		t.Errorf("PpW = %v, want ≈599", rec.PpW)
	}
	// Contract: the recommendation stays operational at worst temperature.
	if _, err := c.SetFrequencyMHz(rec.FreqMHz); err != nil {
		t.Fatal(err)
	}
	p.Die.SetTempC(100)
	res, err := c.Load("RP1", pp.Bitstream)
	if err != nil {
		t.Fatal(err)
	}
	if !res.IRQReceived || !res.CRCValid {
		t.Error("recommended point failed at 100 °C")
	}
}

func TestOptimizerRejectsEmptyEligibleSet(t *testing.T) {
	p := newPlatform(t)
	c := New(p)
	pp := &PowerProfiler{C: c, Meter: power.NewMeter(p.Kernel, p.Power, 100*1000*1000), Bitstream: standardBitstream(t, p, 15)}
	opt := &Optimizer{Profiler: pp, WorstTempC: 100, Margin: 0.10}
	if _, err := opt.Choose([]float64{300, 310, 320}); err == nil {
		t.Error("all-over-guard-band set must fail")
	}
}
