package core

import (
	"math"
	"testing"

	"repro/internal/bitstream"
	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/timing"
	"repro/internal/zynq"
)

// paperTableI is the published Table I: frequency → (latency µs, MB/s).
var paperTableI = []struct {
	freqMHz    float64
	latencyUS  float64
	throughput float64
}{
	{100, 1325.60, 399.06},
	{140, 947.40, 558.12},
	{180, 737.50, 716.96},
	{200, 676.30, 781.84},
	{240, 671.90, 786.96},
	{280, 669.20, 790.14},
}

func newPlatform(t *testing.T) *zynq.Platform {
	t.Helper()
	p, err := zynq.NewPlatform(zynq.Options{Seed: 42, FastThermal: true})
	if err != nil {
		t.Fatal(err)
	}
	p.ConfigureStatic()
	return p
}

func standardBitstream(t *testing.T, p *zynq.Platform, seed uint64) *bitstream.Bitstream {
	t.Helper()
	rp := p.RPs[0]
	rng := sim.NewRNG(seed)
	frames := make([][]uint32, p.Device.RegionFrames(rp))
	for i := range frames {
		f := make([]uint32, fabric.FrameWords)
		if !rng.Bool(0.3) {
			used := 40 + rng.Intn(fabric.FrameWords-40)
			for w := 0; w < used; w++ {
				f[w] = rng.Uint32()
			}
		}
		frames[i] = f
	}
	bs, err := bitstream.Build(p.Device, rp, "asp", frames)
	if err != nil {
		t.Fatal(err)
	}
	return bs
}

func TestTableIReproduction(t *testing.T) {
	// The headline integration test: every operational row of Table I must
	// emerge from the simulation within 0.5%.
	p := newPlatform(t)
	c := New(p)
	bs := standardBitstream(t, p, 1)
	if bs.Size() != 528760 {
		t.Fatalf("bitstream size %d, want 528760", bs.Size())
	}
	for _, row := range paperTableI {
		if _, err := c.SetFrequencyMHz(row.freqMHz); err != nil {
			t.Fatal(err)
		}
		res, err := c.Load("RP1", bs)
		if err != nil {
			t.Fatal(err)
		}
		if !res.IRQReceived {
			t.Errorf("%v MHz: no interrupt, want operational", row.freqMHz)
			continue
		}
		if !res.CRCValid {
			t.Errorf("%v MHz: CRC invalid, want valid", row.freqMHz)
		}
		if !res.DataIntact {
			t.Errorf("%v MHz: memory corrupted", row.freqMHz)
		}
		latErr := math.Abs(res.LatencyUS-row.latencyUS) / row.latencyUS
		if latErr > 0.005 {
			t.Errorf("%v MHz: latency %.2f µs, paper %.2f µs (%.2f%% off)",
				row.freqMHz, res.LatencyUS, row.latencyUS, latErr*100)
		}
		tputErr := math.Abs(res.ThroughputMBs-row.throughput) / row.throughput
		if tputErr > 0.005 {
			t.Errorf("%v MHz: throughput %.2f MB/s, paper %.2f (%.2f%% off)",
				row.freqMHz, res.ThroughputMBs, row.throughput, tputErr*100)
		}
	}
}

func TestTableIFailureRows(t *testing.T) {
	// 310 MHz: no interrupt, CRC valid. 320/360 MHz: no interrupt, CRC not
	// valid.
	p := newPlatform(t)
	c := New(p)
	bs := standardBitstream(t, p, 2)
	tests := []struct {
		freqMHz   float64
		wantValid bool
	}{
		{310, true},
		{320, false},
		{360, false},
	}
	for _, tt := range tests {
		if _, err := c.SetFrequencyMHz(tt.freqMHz); err != nil {
			t.Fatal(err)
		}
		res, err := c.Load("RP1", bs)
		if err != nil {
			t.Fatal(err)
		}
		if res.IRQReceived {
			t.Errorf("%v MHz: interrupt received, want hang", tt.freqMHz)
		}
		if res.CRCValid != tt.wantValid {
			t.Errorf("%v MHz: CRC valid = %v, want %v", tt.freqMHz, res.CRCValid, tt.wantValid)
		}
		if res.CRCByIRQ {
			t.Errorf("%v MHz: CRC verdict must come from polling, not IRQ", tt.freqMHz)
		}
		if res.DataIntact != tt.wantValid {
			t.Errorf("%v MHz: oracle DataIntact = %v, want %v", tt.freqMHz, res.DataIntact, tt.wantValid)
		}
	}
}

func TestLoadValidation(t *testing.T) {
	p, err := zynq.NewPlatform(zynq.Options{Seed: 3, FastThermal: true})
	if err != nil {
		t.Fatal(err)
	}
	c := New(p)
	bs := standardBitstream(t, p, 3)
	if _, err := c.Load("RP1", bs); err == nil {
		t.Error("load before static configuration must fail")
	}
	p.ConfigureStatic()
	if _, err := c.Load("RP9", bs); err == nil {
		t.Error("unknown RP must fail")
	}
}

func TestSetFrequencyCostsLockTime(t *testing.T) {
	p := newPlatform(t)
	c := New(p)
	before := p.Kernel.Now()
	got, err := c.SetFrequencyMHz(200)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-200) > 1 {
		t.Errorf("achieved %v MHz", got)
	}
	if p.Kernel.Now().Sub(before) < 100*sim.Microsecond {
		t.Error("frequency change should cost the MMCM lock time")
	}
}

func TestCalibratorSweepShape(t *testing.T) {
	// Fig. 5's shape: linear region then plateau; knee at 200 MHz.
	p := newPlatform(t)
	c := New(p)
	cal := &Calibrator{C: c, Bitstream: standardBitstream(t, p, 4)}
	points, err := cal.Sweep([]float64{100, 140, 180, 200, 240, 280})
	if err != nil {
		t.Fatal(err)
	}
	// Linear region: throughput ≈ 4f within 1%.
	for _, pt := range points[:3] {
		want := 4 * pt.RequestedMHz
		if math.Abs(pt.Result.ThroughputMBs-want)/want > 0.01 {
			t.Errorf("%v MHz: %v MB/s not ≈4f", pt.RequestedMHz, pt.Result.ThroughputMBs)
		}
	}
	// Plateau: 240→280 gains less than 1%.
	gain := points[5].Result.ThroughputMBs / points[4].Result.ThroughputMBs
	if gain > 1.01 {
		t.Errorf("plateau gain 240→280 = %v, want <1%%", gain)
	}
	// Monotone non-decreasing throughout.
	for i := 1; i < len(points); i++ {
		if points[i].Result.ThroughputMBs < points[i-1].Result.ThroughputMBs {
			t.Errorf("throughput decreased at %v MHz", points[i].RequestedMHz)
		}
	}
}

func TestRobustGuardRecoversFromHang(t *testing.T) {
	p := newPlatform(t)
	c := New(p)
	bs := standardBitstream(t, p, 5)
	if _, err := c.SetFrequencyMHz(310); err != nil {
		t.Fatal(err)
	}
	g := &RobustGuard{C: c}
	rec, err := g.Load("RP1", bs)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Recovered {
		t.Fatal("guard failed to recover")
	}
	if len(rec.Attempts) != 2 {
		t.Errorf("attempts = %d, want 2", len(rec.Attempts))
	}
	if rec.FallbackMHz != 100 {
		t.Errorf("fallback = %v MHz, want 100", rec.FallbackMHz)
	}
	final := rec.Attempts[len(rec.Attempts)-1]
	if !final.IRQReceived || !final.CRCValid || !final.DataIntact {
		t.Errorf("final attempt not clean: %+v", final)
	}
}

func TestRobustGuardPassThroughWhenHealthy(t *testing.T) {
	p := newPlatform(t)
	c := New(p)
	bs := standardBitstream(t, p, 6)
	if _, err := c.SetFrequencyMHz(200); err != nil {
		t.Fatal(err)
	}
	g := &RobustGuard{C: c}
	rec, err := g.Load("RP1", bs)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Recovered || len(rec.Attempts) != 1 {
		t.Errorf("healthy load should succeed first try: %+v", rec)
	}
}

func TestExpectedLatencyMatchesPaper(t *testing.T) {
	for _, row := range paperTableI {
		got := ExpectedLatencyUS(528760, row.freqMHz)
		if math.Abs(got-row.latencyUS)/row.latencyUS > 0.01 {
			t.Errorf("ExpectedLatencyUS(%v MHz) = %.1f, paper %.1f", row.freqMHz, got, row.latencyUS)
		}
	}
}

func TestOutcomeOracleConsistency(t *testing.T) {
	p := newPlatform(t)
	c := New(p)
	bs := standardBitstream(t, p, 7)
	for _, f := range []float64{200, 310, 330} {
		if _, err := c.SetFrequencyMHz(f); err != nil {
			t.Fatal(err)
		}
		res, err := c.Load("RP1", bs)
		if err != nil {
			t.Fatal(err)
		}
		switch res.Outcome {
		case timing.OK:
			if !res.IRQReceived || !res.DataIntact {
				t.Errorf("%v MHz: OK outcome but IRQ=%v intact=%v", f, res.IRQReceived, res.DataIntact)
			}
		case timing.Hang:
			if res.IRQReceived || !res.DataIntact {
				t.Errorf("%v MHz: Hang outcome but IRQ=%v intact=%v", f, res.IRQReceived, res.DataIntact)
			}
		case timing.Corrupt:
			if res.IRQReceived || res.DataIntact {
				t.Errorf("%v MHz: Corrupt outcome but IRQ=%v intact=%v", f, res.IRQReceived, res.DataIntact)
			}
		}
	}
}
