package core

import (
	"context"
	"fmt"

	"repro/internal/bitstream"
	"repro/internal/power"
	"repro/internal/sim"
)

// SweepPoint is one row of a frequency sweep (Table I / Fig. 5).
type SweepPoint struct {
	RequestedMHz float64
	Result       Result
}

// Calibrator runs the paper's frequency sweep: for each requested frequency
// it re-programs the Clock Wizard, performs one partial reconfiguration and
// records latency/throughput/CRC.
type Calibrator struct {
	C *Controller
	// RP is the target partition (default RP1).
	RP string
	// Bitstream is the image to load; the paper used two ~529 KB images.
	Bitstream *bitstream.Bitstream
}

// Sweep measures every requested frequency in order at the current die
// temperature.
func (cal *Calibrator) Sweep(freqsMHz []float64) ([]SweepPoint, error) {
	return cal.SweepContext(context.Background(), freqsMHz)
}

// SweepContext is Sweep with cancellation between points: a campaign worker
// can abandon a sweep mid-grid without waiting for the remaining loads.
func (cal *Calibrator) SweepContext(ctx context.Context, freqsMHz []float64) ([]SweepPoint, error) {
	rp := cal.RP
	if rp == "" {
		rp = "RP1"
	}
	out := make([]SweepPoint, 0, len(freqsMHz))
	for _, f := range freqsMHz {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if _, err := cal.C.SetFrequencyMHz(f); err != nil {
			return nil, fmt.Errorf("core: sweep at %v MHz: %w", f, err)
		}
		res, err := cal.C.Load(rp, cal.Bitstream)
		if err != nil {
			return nil, fmt.Errorf("core: sweep at %v MHz: %w", f, err)
		}
		cal.C.waitForIdle()
		out = append(out, SweepPoint{RequestedMHz: f, Result: res})
	}
	return out, nil
}

// StressCell is one cell of the temperature-stress matrix (Sec. IV-A).
type StressCell struct {
	FreqMHz float64
	TempC   float64
	Result  Result
	// Passed means the configuration data survived (CRC valid) — the
	// paper's success criterion for the stress test.
	Passed bool
}

// StressMatrix re-runs the sweep at each die temperature, reproducing the
// heat-gun experiment: the gun servos the die to each target before the
// transfers run.
func (cal *Calibrator) StressMatrix(freqsMHz, tempsC []float64) ([]StressCell, error) {
	return cal.StressMatrixContext(context.Background(), freqsMHz, tempsC)
}

// StressMatrixContext is StressMatrix with cancellation between cells.
func (cal *Calibrator) StressMatrixContext(ctx context.Context, freqsMHz, tempsC []float64) ([]StressCell, error) {
	rp := cal.RP
	if rp == "" {
		rp = "RP1"
	}
	var out []StressCell
	for _, temp := range tempsC {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if _, ok := cal.C.p.Gun.StabilizeAt(temp, 0.5, 10*sim.Minute); !ok {
			return nil, fmt.Errorf("core: heat gun failed to reach %v°C", temp)
		}
		for _, f := range freqsMHz {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if _, err := cal.C.SetFrequencyMHz(f); err != nil {
				return nil, fmt.Errorf("core: stress at %v MHz: %w", f, err)
			}
			res, err := cal.C.Load(rp, cal.Bitstream)
			if err != nil {
				return nil, fmt.Errorf("core: stress at %v MHz/%v°C: %w", f, temp, err)
			}
			cal.C.waitForIdle()
			out = append(out, StressCell{FreqMHz: f, TempC: temp, Result: res, Passed: res.CRCValid})
		}
	}
	cal.C.p.Gun.Off()
	return out, nil
}

// PowerPoint is one Fig. 6 measurement: P_PDR at a frequency/temperature.
type PowerPoint struct {
	FreqMHz float64
	TempC   float64
	// PDRWatts is the baseline-subtracted board reading (P_f^T − P0).
	PDRWatts float64
	// ThroughputMBs is the concurrently measured transfer rate (0 when the
	// point is non-operational).
	ThroughputMBs float64
	// PpW is the paper's power efficiency in MB/J.
	PpW float64
}

// PowerProfiler reproduces the Fig. 6 / Table II measurement: run
// reconfigurations while reading the board's current-sense headers.
type PowerProfiler struct {
	C     *Controller
	Meter *power.Meter
	// RP and Bitstream as in Calibrator.
	RP        string
	Bitstream *bitstream.Bitstream
}

// Grid measures P_PDR over the frequency × temperature grid.
func (pp *PowerProfiler) Grid(freqsMHz, tempsC []float64) ([]PowerPoint, error) {
	return pp.grid(context.Background(), freqsMHz, tempsC, true)
}

// GridContext is Grid with cancellation between cells.
func (pp *PowerProfiler) GridContext(ctx context.Context, freqsMHz, tempsC []float64) ([]PowerPoint, error) {
	return pp.grid(ctx, freqsMHz, tempsC, true)
}

// GridAtCurrent measures the frequencies at whatever temperature the die is
// naturally running at (no heat gun) — what the optimizer's field
// calibration does.
func (pp *PowerProfiler) GridAtCurrent(freqsMHz []float64) ([]PowerPoint, error) {
	return pp.grid(context.Background(), freqsMHz, []float64{pp.C.p.Die.TempC()}, false)
}

func (pp *PowerProfiler) grid(ctx context.Context, freqsMHz, tempsC []float64, useGun bool) ([]PowerPoint, error) {
	rp := pp.RP
	if rp == "" {
		rp = "RP1"
	}
	var out []PowerPoint
	for _, temp := range tempsC {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if useGun {
			if _, ok := pp.C.p.Gun.StabilizeAt(temp, 0.5, 10*sim.Minute); !ok {
				return nil, fmt.Errorf("core: heat gun failed to reach %v°C", temp)
			}
		}
		for _, f := range freqsMHz {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if _, err := pp.C.SetFrequencyMHz(f); err != nil {
				return nil, fmt.Errorf("core: power grid at %v MHz: %w", f, err)
			}
			// Run a transfer while the meter integrates, then read.
			res, err := pp.C.Load(rp, pp.Bitstream)
			if err != nil {
				return nil, fmt.Errorf("core: power grid at %v MHz/%v°C: %w", f, temp, err)
			}
			pp.C.waitForIdle()
			pdr := pp.Meter.ReadPDR()
			pt := PowerPoint{FreqMHz: f, TempC: temp, PDRWatts: pdr}
			if res.IRQReceived {
				pt.ThroughputMBs = res.ThroughputMBs
				pt.PpW = power.PerformancePerWatt(res.ThroughputMBs, pdr)
			}
			out = append(out, pt)
		}
	}
	if useGun {
		pp.C.p.Gun.Off()
	}
	return out, nil
}
