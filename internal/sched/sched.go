// Package sched holds the scheduling substrate of the reconfiguration
// service: per-RP request queues with admission control, pluggable
// dispatch policies arbitrating the single physical ICAP, and a
// DRAM-resident bitstream cache with LRU eviction under a byte budget.
//
// The package is deliberately mechanism-only — it knows nothing about the
// simulated hardware. The hll service engine owns the clock and the
// controller; sched answers "which queued request goes next?" and "is this
// image already staged in DRAM?". Everything here is deterministic: no
// maps are iterated, no wall clock is read, so a schedule is a pure
// function of the request stream.
package sched

import (
	"fmt"

	"repro/internal/sim"
)

// Item is one queued reconfiguration request.
type Item struct {
	// Seq is the arrival sequence number (ties in At break by Seq, keeping
	// every policy a strict total order).
	Seq int
	// At is the absolute simulated arrival time.
	At sim.Time
	// RP and ASP name the target partition and accelerator.
	RP, ASP string
	// Tenant attributes the request ("" = anonymous).
	Tenant string
	// Class names the request's SLO class ("" = unclassed).
	Class string
	// Deadline is the absolute completion deadline (0 = none).
	Deadline sim.Time
}

// Candidate is a dispatchable item with the residency facts a policy may
// use: whether the ASP is already configured in the RP (no ICAP needed),
// whether its image is already staged in DRAM, and how big the image is.
type Candidate struct {
	Item *Item
	// Resident: the ASP is configured in the target RP — serving it costs
	// no reconfiguration at all.
	Resident bool
	// Cached: the partial bitstream is DRAM-resident; a reconfiguration
	// needs only the ICAP transfer, not the backing-store staging.
	Cached bool
	// ImageBytes is the partial bitstream size for the target RP.
	ImageBytes int
}

// cost is the acquisition cost SBF ranks by: nothing for a resident hit,
// the ICAP transfer for a cached image, and a staging multiple for an image
// that must first be fetched from the backing store (the SD card is an
// order of magnitude slower than the configuration port).
func (c Candidate) cost() int {
	switch {
	case c.Resident:
		return 0
	case c.Cached:
		return c.ImageBytes
	default:
		return c.ImageBytes * 10
	}
}

// Policy picks which candidate the service dispatches next. Pick is called
// with at least one candidate and must return a valid index; it must be
// deterministic (same candidates, same answer).
type Policy interface {
	Name() string
	Pick(cands []Candidate) int
}

// fcfs serves strictly in arrival order.
type fcfs struct{}

func (fcfs) Name() string { return "fcfs" }

func (fcfs) Pick(cands []Candidate) int {
	best := 0
	for i := 1; i < len(cands); i++ {
		if earlier(cands[i].Item, cands[best].Item) {
			best = i
		}
	}
	return best
}

// sbf is shortest-bitstream-first: rank by acquisition cost (resident hit <
// cached image < image that must be staged, smaller images first), breaking
// ties in arrival order. On a fabric with uniform RP cuts it degenerates to
// cheapest-acquisition-first.
type sbf struct{}

func (sbf) Name() string { return "sbf" }

func (sbf) Pick(cands []Candidate) int {
	best := 0
	for i := 1; i < len(cands); i++ {
		ci, cb := cands[i].cost(), cands[best].cost()
		if ci < cb || (ci == cb && earlier(cands[i].Item, cands[best].Item)) {
			best = i
		}
	}
	return best
}

// affinity prefers requests whose ASP is already resident (they bypass the
// ICAP entirely), then requests whose image is DRAM-cached, then FCFS — a
// residency/cache-affinity policy that trades strict fairness for fewer
// reconfigurations.
type affinity struct{}

func (affinity) Name() string { return "affinity" }

func (affinity) Pick(cands []Candidate) int {
	rank := func(c Candidate) int {
		switch {
		case c.Resident:
			return 0
		case c.Cached:
			return 1
		default:
			return 2
		}
	}
	best := 0
	for i := 1; i < len(cands); i++ {
		ri, rb := rank(cands[i]), rank(cands[best])
		if ri < rb || (ri == rb && earlier(cands[i].Item, cands[best].Item)) {
			best = i
		}
	}
	return best
}

func earlier(a, b *Item) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	return a.Seq < b.Seq
}

// FCFS, SBF and Affinity are the built-in policies.
func FCFS() Policy     { return fcfs{} }
func SBF() Policy      { return sbf{} }
func Affinity() Policy { return affinity{} }

// PolicyNames lists the built-in policy names in presentation order.
func PolicyNames() []string { return []string{"fcfs", "sbf", "affinity"} }

// PolicyByName resolves a built-in policy.
func PolicyByName(name string) (Policy, error) {
	switch name {
	case "fcfs":
		return fcfs{}, nil
	case "sbf":
		return sbf{}, nil
	case "affinity":
		return affinity{}, nil
	}
	return nil, fmt.Errorf("sched: unknown policy %q (want fcfs|sbf|affinity)", name)
}
