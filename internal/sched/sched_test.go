package sched

import (
	"testing"

	"repro/internal/bitstream"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/workload"
)

func item(seq int, at sim.Time, rp, asp string) *Item {
	return &Item{Seq: seq, At: at, RP: rp, ASP: asp}
}

func TestFCFSPicksEarliestArrival(t *testing.T) {
	cands := []Candidate{
		{Item: item(2, 30, "RP1", "a")},
		{Item: item(0, 10, "RP2", "b")},
		{Item: item(1, 20, "RP3", "c")},
	}
	if got := FCFS().Pick(cands); got != 1 {
		t.Errorf("FCFS picked %d, want 1 (earliest arrival)", got)
	}
	// Equal times break by sequence.
	cands[0].Item.At = 10
	if got := FCFS().Pick(cands); got != 1 {
		t.Errorf("FCFS tie-break picked %d, want 1 (lower seq)", got)
	}
}

func TestSBFRanksByAcquisitionCost(t *testing.T) {
	cands := []Candidate{
		{Item: item(0, 10, "RP1", "a"), ImageBytes: 500},                 // uncached: 5000
		{Item: item(1, 20, "RP2", "b"), ImageBytes: 900, Cached: true},   // 900
		{Item: item(2, 30, "RP3", "c"), ImageBytes: 800, Resident: true}, // 0
	}
	if got := SBF().Pick(cands); got != 2 {
		t.Errorf("SBF picked %d, want 2 (resident hit)", got)
	}
	cands[2].Resident = false // now uncached: 8000
	if got := SBF().Pick(cands); got != 1 {
		t.Errorf("SBF picked %d, want 1 (cached image)", got)
	}
}

func TestAffinityPrefersResidencyThenCache(t *testing.T) {
	cands := []Candidate{
		{Item: item(0, 10, "RP1", "a")},
		{Item: item(1, 20, "RP2", "b"), Cached: true},
		{Item: item(2, 30, "RP3", "c"), Resident: true},
	}
	if got := Affinity().Pick(cands); got != 2 {
		t.Errorf("affinity picked %d, want 2 (resident)", got)
	}
	cands[2].Resident = false
	if got := Affinity().Pick(cands); got != 1 {
		t.Errorf("affinity picked %d, want 1 (cached)", got)
	}
	cands[1].Cached = false
	if got := Affinity().Pick(cands); got != 0 {
		t.Errorf("affinity picked %d, want 0 (FCFS fallback)", got)
	}
}

func TestPolicyByName(t *testing.T) {
	for _, name := range PolicyNames() {
		p, err := PolicyByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name() != name {
			t.Errorf("PolicyByName(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := PolicyByName("lifo"); err == nil {
		t.Error("unknown policy should fail")
	}
}

func TestQueueAdmissionControl(t *testing.T) {
	q := NewQueue(2)
	if !q.Offer(item(0, 1, "RP1", "a")) || !q.Offer(item(1, 2, "RP1", "b")) {
		t.Fatal("offers under cap must be admitted")
	}
	if q.Offer(item(2, 3, "RP1", "c")) {
		t.Error("offer over cap must be shed")
	}
	if q.Len() != 2 {
		t.Errorf("len=%d, want 2 (rejected offer must not enqueue)", q.Len())
	}
	got := q.Remove(1)
	if got.ASP != "b" || q.Len() != 1 {
		t.Errorf("Remove(1) = %+v, len=%d", got, q.Len())
	}
	// Capacity freed: admission works again.
	if !q.Offer(item(3, 4, "RP1", "d")) {
		t.Error("offer after Remove must be admitted")
	}
}

func TestUnboundedQueueNeverSheds(t *testing.T) {
	q := NewQueue(0)
	for i := 0; i < 100; i++ {
		if !q.Offer(item(i, sim.Time(i), "RP1", "a")) {
			t.Fatal("unbounded queue shed a request")
		}
	}
	if q.Len() != 100 {
		t.Errorf("len = %d, want 100", q.Len())
	}
}

// buildImages builds n distinct real bitstreams for cache tests.
func buildImages(t *testing.T, n int) []*bitstream.Bitstream {
	t.Helper()
	prof := platform.Default()
	dev := prof.NewDevice()
	rp := prof.RPs(dev)[0]
	out := make([]*bitstream.Bitstream, n)
	for i := range out {
		asp := workload.ASP{Name: "img", FillFraction: 0.5, Seed: uint64(i + 1)}
		bs, err := asp.Bitstream(dev, rp)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = bs
	}
	return out
}

func TestCacheLRUEvictionUnderBudget(t *testing.T) {
	imgs := buildImages(t, 3)
	size := int64(imgs[0].Size())
	c := NewCache(2 * size) // room for two images
	c.Put("a", imgs[0])
	c.Put("b", imgs[1])
	if _, ok := c.Get("a"); !ok { // touch a: b becomes coldest
		t.Fatal("a must be resident")
	}
	c.Put("c", imgs[2]) // evicts b (LRU)
	if c.Contains("b") {
		t.Error("b should have been evicted")
	}
	if !c.Contains("a") || !c.Contains("c") {
		t.Error("a and c should be resident")
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	if st.ResidentBytes != 2*size || st.PeakBytes != 2*size {
		t.Errorf("resident=%d peak=%d, want %d", st.ResidentBytes, st.PeakBytes, 2*size)
	}
}

func TestCacheDisabledAlwaysMisses(t *testing.T) {
	imgs := buildImages(t, 1)
	c := NewCache(0)
	if c.Enabled() {
		t.Error("budget 0 must disable the cache")
	}
	c.Put("a", imgs[0])
	if _, ok := c.Get("a"); ok {
		t.Error("disabled cache must miss")
	}
	if st := c.Stats(); st.Misses != 1 || st.ResidentBytes != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCacheUnlimitedHoldsEverything(t *testing.T) {
	imgs := buildImages(t, 3)
	c := NewCache(-1)
	c.Put("a", imgs[0])
	c.Put("b", imgs[1])
	c.Put("c", imgs[2])
	for _, k := range []string{"a", "b", "c"} {
		if !c.Contains(k) {
			t.Errorf("%s missing from unlimited cache", k)
		}
	}
	if st := c.Stats(); st.Evictions != 0 {
		t.Errorf("evictions = %d", st.Evictions)
	}
}

func TestCacheHitRatio(t *testing.T) {
	imgs := buildImages(t, 1)
	c := NewCache(-1)
	if got := c.Stats().HitRatio(); got != 0 {
		t.Errorf("fresh cache HitRatio = %v, want 0 (no division by zero)", got)
	}
	c.Get("a") // miss
	c.Put("a", imgs[0])
	c.Get("a") // hit
	c.Get("a") // hit
	if got := c.Stats().HitRatio(); got != 2.0/3.0 {
		t.Errorf("HitRatio = %v, want 2/3", got)
	}

	// The disabled-cache ablation (budget 0): every Get misses, so the
	// ratio must be a clean 0 — both before any lookup and after many.
	off := NewCache(0)
	if got := off.Stats().HitRatio(); got != 0 {
		t.Errorf("disabled cache HitRatio = %v before lookups, want 0", got)
	}
	off.Put("a", imgs[0])
	for i := 0; i < 5; i++ {
		off.Get("a")
	}
	if got := off.Stats().HitRatio(); got != 0 {
		t.Errorf("disabled cache HitRatio = %v, want 0", got)
	}
}

func TestCacheOversizeImageDropped(t *testing.T) {
	imgs := buildImages(t, 1)
	c := NewCache(int64(imgs[0].Size()) - 1)
	c.Put("a", imgs[0])
	if c.Contains("a") {
		t.Error("image larger than the whole budget must not be pinned")
	}
}
