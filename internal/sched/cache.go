package sched

import (
	"repro/internal/bitstream"
)

// Cache is the DRAM-resident bitstream cache: built images are pinned in
// system memory so a later reconfiguration streams them straight through
// the DMA→ICAP path instead of re-staging them from the backing store.
// Eviction is LRU under a byte budget (a service cannot pin unbounded DRAM
// — the budget is derived from the platform profile's memory size).
//
// A zero/nil-safe disabled mode (budget 0) models the no-cache ablation:
// every Get misses and every Put is dropped, so each reconfiguration pays
// the full staging cost.
type Cache struct {
	budget   int64          // <0 unlimited, 0 disabled
	entries  map[string]int // key → index into order
	order    []*cacheEntry  // LRU order: order[0] is coldest
	resident int64

	stats CacheStats
}

type cacheEntry struct {
	key   string
	bs    *bitstream.Bitstream
	bytes int64
}

// CacheStats summarises cache behaviour over a run.
type CacheStats struct {
	// Hits and Misses count Get outcomes.
	Hits, Misses int
	// Evictions counts images dropped to make room under the budget.
	Evictions int
	// ResidentBytes and PeakBytes track DRAM occupancy.
	ResidentBytes, PeakBytes int64
}

// HitRatio is Hits / (Hits + Misses), the fraction of lookups served from
// DRAM. A run with no lookups at all — including the disabled-cache
// ablation before any Get — reports 0, not NaN.
func (s CacheStats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// NewCache builds a cache with the given byte budget: < 0 is unlimited,
// 0 disables caching entirely (the ablation mode).
func NewCache(budgetBytes int64) *Cache {
	return &Cache{budget: budgetBytes, entries: make(map[string]int)}
}

// Enabled reports whether the cache stores anything at all.
func (c *Cache) Enabled() bool { return c.budget != 0 }

// Budget returns the configured byte budget (<0 unlimited, 0 disabled).
func (c *Cache) Budget() int64 { return c.budget }

// Get looks the key up, refreshing its LRU position on a hit.
func (c *Cache) Get(key string) (*bitstream.Bitstream, bool) {
	idx, ok := c.entries[key]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	c.stats.Hits++
	c.touch(idx)
	return c.order[len(c.order)-1].bs, true
}

// Len returns the number of resident images — the cache-residency gauge
// the metrics layer samples alongside ResidentBytes.
func (c *Cache) Len() int { return len(c.order) }

// Contains reports residency without counting a Get or refreshing LRU —
// the read-only view dispatch policies use.
func (c *Cache) Contains(key string) bool {
	_, ok := c.entries[key]
	return ok
}

// Put stages the image, evicting least-recently-used entries until the
// budget holds. An image larger than the whole budget is dropped (it still
// serves the current load from its staging buffer, it just cannot stay).
func (c *Cache) Put(key string, bs *bitstream.Bitstream) {
	if c.budget == 0 {
		return
	}
	if _, ok := c.entries[key]; ok {
		return
	}
	size := int64(bs.Size())
	if c.budget > 0 {
		if size > c.budget {
			return
		}
		for c.resident+size > c.budget && len(c.order) > 0 {
			c.evictColdest()
		}
	}
	c.entries[key] = len(c.order)
	c.order = append(c.order, &cacheEntry{key: key, bs: bs, bytes: size})
	c.resident += size
	c.stats.ResidentBytes = c.resident
	if c.resident > c.stats.PeakBytes {
		c.stats.PeakBytes = c.resident
	}
}

// Clear drops every resident image — what a board crash does to its DRAM
// cache (the warm working set dies with the board). Dropped entries count
// as evictions so the loss is visible in the run's accounting; hit/miss
// history survives, as the counters live in the service, not the DRAM.
func (c *Cache) Clear() {
	c.stats.Evictions += len(c.order)
	c.order = c.order[:0]
	c.entries = make(map[string]int)
	c.resident = 0
	c.stats.ResidentBytes = 0
}

// Stats returns the accumulated statistics.
func (c *Cache) Stats() CacheStats {
	s := c.stats
	s.ResidentBytes = c.resident
	return s
}

// touch moves entry idx to the hottest position.
func (c *Cache) touch(idx int) {
	e := c.order[idx]
	copy(c.order[idx:], c.order[idx+1:])
	c.order[len(c.order)-1] = e
	for i := idx; i < len(c.order); i++ {
		c.entries[c.order[i].key] = i
	}
}

// evictColdest drops the LRU entry.
func (c *Cache) evictColdest() {
	e := c.order[0]
	copy(c.order, c.order[1:])
	c.order = c.order[:len(c.order)-1]
	delete(c.entries, e.key)
	for i := range c.order {
		c.entries[c.order[i].key] = i
	}
	c.resident -= e.bytes
	c.stats.Evictions++
}
