package sched

// Queue is one partition's pending-request queue with admission control: a
// bounded buffer that sheds load once Cap requests wait. Items keep their
// arrival order; policies reorder at dispatch time, not at admission.
// Shedding is reported through Offer's return value — the caller owns the
// accounting (the service tracks global and per-tenant shed counts).
type Queue struct {
	cap   int
	items []*Item
}

// NewQueue builds a queue. cap ≤ 0 means unbounded (no admission control).
func NewQueue(cap int) *Queue { return &Queue{cap: cap} }

// Offer admits the item, or rejects it (returning false) when the queue is
// full — the admission-control decision a saturated service makes instead
// of growing an unbounded backlog.
func (q *Queue) Offer(it *Item) bool {
	if q.cap > 0 && len(q.items) >= q.cap {
		return false
	}
	q.items = append(q.items, it)
	return true
}

// Len returns the number of waiting items.
func (q *Queue) Len() int { return len(q.items) }

// Cap returns the admission-control depth (≤ 0 = unbounded) — the
// denominator an observability layer pairs with Len when a shed event
// asks "was the queue actually full?".
func (q *Queue) Cap() int { return q.cap }

// Items exposes the waiting items in admission order (callers must not
// mutate the slice; Remove invalidates it).
func (q *Queue) Items() []*Item { return q.items }

// Remove takes the i-th waiting item out of the queue and returns it.
func (q *Queue) Remove(i int) *Item {
	it := q.items[i]
	q.items = append(q.items[:i], q.items[i+1:]...)
	return it
}
