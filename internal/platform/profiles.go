package platform

import (
	"repro/internal/clock"
	"repro/internal/dram"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/timing"
)

// sevenSeriesMMCM is the MMCM parameter space shared by the 7-series parts
// modelled here (speed grade -1; faster grades widen the VCO range).
func sevenSeriesMMCM() clock.Limits {
	return clock.Limits{
		VCOMin: 600 * sim.MHz, VCOMax: 1200 * sim.MHz,
		MultMin: 2.0, MultMax: 64.0, MultStep: 0.125,
		DivMin: 1, DivMax: 106,
		OutDivMin: 1.0, OutDivMax: 128.0,
		MaxPFD: 550 * sim.MHz, MinPFD: 10 * sim.MHz,
	}
}

// zedboard is the paper's calibrated setup: every value here is chosen so
// the measured outputs of the simulation land on the published numbers (the
// full derivation is DESIGN.md §2). This is the default profile and must
// reproduce the seed physics bit-identically.
func zedboard() *Profile {
	return &Profile{
		Name:    "zedboard",
		Board:   "Avnet ZedBoard",
		Part:    "xc7z020",
		Summary: "the paper's calibrated Zynq-7020 setup (Table I physics)",
		Fabric: FabricSpec{
			IDCode:  0x03727093, // real 7z020 IDCODE
			Rows:    3,
			Tiles:   6,
			RPTiles: 3, // 39 columns, 1308 frames, 528,760-byte image
		},
		DRAM: dram.Params{
			// 64-bit HP port at ~103 MHz effective beat rate after
			// interconnect arbitration; DDR3 tREFI and effective per-refresh
			// stall derate it to ≈813 MB/s.
			PortBytesPerSec: 824e6,
			SizeBytes:       512 << 20, // 512 MB DDR3
			RefreshInterval: sim.FromMicroseconds(7.8),
			RefreshStall:    97 * sim.Nanosecond,
		},
		AXI: AXIParams{
			LiteWriteLatency: 120 * sim.Nanosecond,
			LiteReadLatency:  120 * sim.Nanosecond,
			CDCSyncCycles:    1.1, // average of the 1–2-cycle synchroniser
		},
		Clock: ClockParams{
			RefClock:   100 * sim.MHz,
			Limits:     sevenSeriesMMCM(),
			LockTime:   100 * sim.Microsecond,
			NominalMHz: 100,
		},
		Timing: timing.Model{
			// Control path meets timing below 300 MHz at 40 °C, data below
			// 315 MHz; derating reproduces the single failing stress cell.
			Control:    timing.Path{Delay40: sim.FromNanoseconds(1e3 / 300.0), TempCoeff: 2.8e-4, VoltCoeff: 0.45},
			Data:       timing.Path{Delay40: sim.FromNanoseconds(1e3 / 315.0), TempCoeff: 2.8e-4, VoltCoeff: 0.45},
			FreezeFreq: 500 * sim.MHz,
			VNom:       1.0,
		},
		Power: power.Params{
			// Calibrated from Table II: slope (1.44−1.14)/(280−100) W/MHz,
			// intercept 1.14 − 100·slope at 40 °C.
			DynPerMHz:        (1.44 - 1.14) / (280 - 100),
			StaticAt40:       1.14 - 100*(1.44-1.14)/(280-100),
			StaticTempCoeff:  0.0067,
			VNom:             1.0,
			BoardBaseline:    2.2,
			PSActive:         1.53,
			MeterResolutionW: 0.01,
		},
		Thermal: ThermalParams{
			// With the ZedBoard heat sink, 5.3 °C/W puts the die at the
			// paper's 40 °C baseline while ~2.8 W runs in a 25 °C room.
			RThermalCPerW: 5.3,
			Tau:           2 * sim.Second,
			Step:          sim.Millisecond,
		},
		PS: PSParams{
			DispatchLatency: 900 * sim.Nanosecond,
			HandlerOverhead: 1000 * sim.Nanosecond,
			PCAPBytesPerSec: 145e6,
		},
		IO: BoardIO{
			SwitchTableMHz: []float64{100, 140, 180, 200, 240, 280, 310, 320, 360},
			SDBytesPerSec:  20e6,
		},
		BootAmbientC:    25,
		AnalyticFixedUS: 3.3,
	}
}

// zedboardSlowThermal is the ZedBoard with the physical 2 s thermal time
// constant forced on (no fast test-friendly shortcut).
func zedboardSlowThermal() *Profile {
	p := zedboard()
	p.Name = "zedboard-slow-thermal"
	p.Summary = "ZedBoard with the physical 2 s thermal time constant"
	p.VariantOf = "zedboard"
	p.SlowThermal = true
	return p
}

// zedboardHot is the ZedBoard deployed in a 45 °C chamber
// (harsh-environment deployments).
func zedboardHot() *Profile {
	p := zedboard()
	p.Name = "zedboard-hot"
	p.Summary = "ZedBoard in a 45 °C chamber (harsh environment)"
	p.VariantOf = "zedboard"
	p.BootAmbientC = 45
	return p
}

// zyboZ710 models a Digilent Zybo Z7-10: the smaller xc7z010 Artix fabric
// (2 rows × 4 tiles) with a narrower 2-tile RP, a slimmer HP-port path that
// plateaus around 550 MB/s (knee near 134 MHz), slightly weaker timing
// closure, no heat sink, and a lighter board power budget.
func zyboZ710() *Profile {
	p := zedboard()
	p.Name = "zybo-z7-10"
	p.Board = "Digilent Zybo Z7-10"
	p.Part = "xc7z010"
	p.Summary = "smaller Artix fabric, 2-tile RPs, ≈550 MB/s memory plateau"
	p.VariantOf = ""
	p.Fabric = FabricSpec{
		IDCode:  0x03722093, // real 7z010 IDCODE
		Rows:    2,
		Tiles:   4,
		RPTiles: 2, // 26 columns, 872 frames, 352,616-byte image
	}
	p.DRAM.PortBytesPerSec = 560e6 // narrower effective HP path
	p.DRAM.SizeBytes = 1 << 30     // 1 GB DDR3L
	p.Timing.Control = timing.Path{Delay40: sim.FromNanoseconds(1e3 / 290.0), TempCoeff: 2.8e-4, VoltCoeff: 0.45}
	p.Timing.Data = timing.Path{Delay40: sim.FromNanoseconds(1e3 / 305.0), TempCoeff: 2.8e-4, VoltCoeff: 0.45}
	p.Power.DynPerMHz = 1.1e-3
	p.Power.StaticAt40 = 0.62
	p.Power.BoardBaseline = 1.35
	p.Thermal.RThermalCPerW = 8.6 // bare die, no heat sink
	p.Thermal.Tau = 1 * sim.Second
	p.IO.SwitchTableMHz = []float64{100, 120, 140, 180, 220, 260, 290, 300, 320}
	return p
}

// zc706 models a Xilinx ZC706 evaluation board: the larger xc7z045 Kintex
// fabric (5 rows × 9 tiles, same 3-tile RP cut so bitstreams are
// size-comparable to the ZedBoard's), a wider HP-port path that lifts the
// memory plateau to ≈990 MB/s and pushes the knee near 240 MHz, a faster
// speed grade (timing closes to ≈335/350 MHz, wider MMCM VCO range), a
// bigger heat sink and a heavier board power budget.
func zc706() *Profile {
	p := zedboard()
	p.Name = "zc706"
	p.Board = "Xilinx ZC706"
	p.Part = "xc7z045"
	p.Summary = "wider HP path (≈990 MB/s plateau, knee ≈240 MHz), -2 speed grade"
	p.VariantOf = ""
	p.Fabric = FabricSpec{
		IDCode:  0x03731093, // real 7z045 IDCODE
		Rows:    5,
		Tiles:   9,
		RPTiles: 3, // same 1308-frame RPs as the ZedBoard
	}
	p.DRAM.PortBytesPerSec = 1000e6
	p.DRAM.SizeBytes = 1 << 30             // 1 GB DDR3 SODIMM
	p.Clock.Limits.VCOMax = 1440 * sim.MHz // -2 speed grade
	p.Timing.Control = timing.Path{Delay40: sim.FromNanoseconds(1e3 / 335.0), TempCoeff: 2.8e-4, VoltCoeff: 0.45}
	p.Timing.Data = timing.Path{Delay40: sim.FromNanoseconds(1e3 / 350.0), TempCoeff: 2.8e-4, VoltCoeff: 0.45}
	p.Timing.FreezeFreq = 600 * sim.MHz
	p.Power.DynPerMHz = 2.6e-3
	p.Power.StaticAt40 = 1.9
	p.Power.BoardBaseline = 9.0
	p.Thermal.RThermalCPerW = 2.9 // large active-cooling-ready sink
	p.Thermal.Tau = 3 * sim.Second
	p.IO.SwitchTableMHz = []float64{100, 140, 180, 220, 240, 260, 280, 310, 340, 360}
	return p
}

func init() {
	Register(zedboard())
	Register(zedboardSlowThermal())
	Register(zedboardHot())
	Register(zyboZ710())
	Register(zc706())
}
