package platform

import (
	"fmt"
	"strings"
)

var (
	registry []*Profile
	byName   = make(map[string]*Profile)
)

// Register adds a profile to the package registry. It panics on a duplicate
// name or an invalid profile — registration happens at init, so a panic is a
// build-time programming error, not a runtime one.
func Register(p *Profile) {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if _, dup := byName[p.Name]; dup {
		panic(fmt.Sprintf("platform: duplicate profile %q", p.Name))
	}
	byName[p.Name] = p
	registry = append(registry, p)
}

// Default returns the paper's calibrated ZedBoard profile.
func Default() *Profile { return byName["zedboard"] }

// Lookup finds a profile by name; "" resolves to the default.
func Lookup(name string) (*Profile, bool) {
	if name == "" {
		return Default(), true
	}
	p, ok := byName[name]
	return p, ok
}

// All returns every registered profile in registration order.
func All() []*Profile {
	out := make([]*Profile, len(registry))
	copy(out, registry)
	return out
}

// Boards returns the profiles that model distinct silicon (presets/variants
// of another board are skipped), in registration order. The cross-platform
// scenarios sweep these.
func Boards() []*Profile {
	var out []*Profile
	for _, p := range registry {
		if p.VariantOf == "" {
			out = append(out, p)
		}
	}
	return out
}

// Names returns the registered profile names in registration order.
func Names() []string {
	out := make([]string, len(registry))
	for i, p := range registry {
		out[i] = p.Name
	}
	return out
}

// NameList renders "zedboard|…" for usage and error strings, so messages
// listing the valid platforms can never drift from the registry.
func NameList() string { return strings.Join(Names(), "|") }
