package platform

import (
	"repro/internal/sim"
	"repro/internal/timing"
)

// SRAMParams describe the Sec.-VI QDR-II+ SRAM part (Cypress
// CY7C2263KV18-class: 36-bit DDR read and write ports at 550 MHz).
type SRAMParams struct {
	ReadBytesPerSec  float64
	WriteBytesPerSec float64
	CapacityBytes    int
}

// SecVISRAM returns the proposed pipeline's SRAM calibration: the paper's
// theoretical 550 MHz · 36 bit / 2 = 1237.5 MB/s on both ports, 72 Mbit.
func SecVISRAM() SRAMParams {
	return SRAMParams{
		ReadBytesPerSec:  1237.5e6,
		WriteBytesPerSec: 1237.5e6,
		CapacityBytes:    9 * 1024 * 1024,
	}
}

// SecVIHMTiming returns the enhanced-hard-macro ICAP timing budget of the
// proposed Sec.-VI environment: the custom interface closes timing at
// 550 MHz (HKT-2011 demonstrated 550 MHz on an older family), with headroom
// before failure.
func SecVIHMTiming() timing.Model {
	return timing.Model{
		Control:    timing.Path{Delay40: sim.FromNanoseconds(1e3 / 580.0), TempCoeff: 2.8e-4, VoltCoeff: 0.45},
		Data:       timing.Path{Delay40: sim.FromNanoseconds(1e3 / 620.0), TempCoeff: 2.8e-4, VoltCoeff: 0.45},
		FreezeFreq: 800 * sim.MHz,
		VNom:       1.0,
	}
}

// SecVIICAPClockMHz is the hard-macro ICAP's dedicated clock.
const SecVIICAPClockMHz = 550
