package platform

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestRegistryContents(t *testing.T) {
	want := []string{"zedboard", "zedboard-slow-thermal", "zedboard-hot", "zybo-z7-10", "zc706"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Names[%d] = %q, want %q", i, got[i], want[i])
		}
		p, ok := Lookup(want[i])
		if !ok || p.Name != want[i] {
			t.Errorf("Lookup(%q) = %v, %v", want[i], p, ok)
		}
	}
	if _, ok := Lookup("zedboard-quantum"); ok {
		t.Error("unknown profile should not resolve")
	}
	if p, ok := Lookup(""); !ok || p.Name != "zedboard" {
		t.Errorf("empty lookup = %v, want default zedboard", p)
	}
	if Default().Name != "zedboard" {
		t.Errorf("Default = %q", Default().Name)
	}
}

func TestBoardsSkipVariants(t *testing.T) {
	boards := Boards()
	if len(boards) != 3 {
		t.Fatalf("Boards = %d profiles, want 3 distinct silicon", len(boards))
	}
	wantParts := map[string]string{"zedboard": "xc7z020", "zybo-z7-10": "xc7z010", "zc706": "xc7z045"}
	for _, b := range boards {
		if b.VariantOf != "" {
			t.Errorf("%s is a variant, must not be a board", b.Name)
		}
		if wantParts[b.Name] != b.Part {
			t.Errorf("%s part = %q, want %q", b.Name, b.Part, wantParts[b.Name])
		}
	}
}

// TestZedBoardReproducesSeedCalibration pins the default profile to the
// calibrated constants DESIGN.md §2 documents — the values every layer read
// from package constants before the platform extraction. If any of these
// drift, the default platform is no longer bit-identical to the seed.
func TestZedBoardReproducesSeedCalibration(t *testing.T) {
	p := Default()
	if p.DRAM.PortBytesPerSec != 824e6 {
		t.Errorf("port rate = %v", p.DRAM.PortBytesPerSec)
	}
	if p.DRAM.RefreshInterval != sim.FromMicroseconds(7.8) || p.DRAM.RefreshStall != 97*sim.Nanosecond {
		t.Errorf("refresh = %v/%v", p.DRAM.RefreshInterval, p.DRAM.RefreshStall)
	}
	if p.AXI.CDCSyncCycles != 1.1 || p.AXI.LiteWriteLatency != 120*sim.Nanosecond {
		t.Errorf("AXI = %+v", p.AXI)
	}
	if p.Clock.LockTime != 100*sim.Microsecond || p.Clock.RefClock != 100*sim.MHz {
		t.Errorf("clock = %+v", p.Clock)
	}
	if p.Timing.Control.Delay40 != sim.FromNanoseconds(1e3/300.0) || p.Timing.Data.Delay40 != sim.FromNanoseconds(1e3/315.0) {
		t.Errorf("timing paths = %+v", p.Timing)
	}
	if math.Abs(p.Power.DynPerMHz-(1.44-1.14)/(280-100)) > 1e-15 || p.Power.BoardBaseline != 2.2 {
		t.Errorf("power = %+v", p.Power)
	}
	if p.Thermal.RThermalCPerW != 5.3 || p.Thermal.Tau != 2*sim.Second {
		t.Errorf("thermal = %+v", p.Thermal)
	}
	if p.PS.PCAPBytesPerSec != 145e6 || p.PS.DispatchLatency != 900*sim.Nanosecond {
		t.Errorf("PS = %+v", p.PS)
	}
	if p.IO.SDBytesPerSec != 20e6 || len(p.IO.SwitchTableMHz) != 9 || p.IO.SwitchTableMHz[3] != 200 {
		t.Errorf("IO = %+v", p.IO)
	}
	if p.BootAmbientC != 25 || p.SlowThermal {
		t.Errorf("boot env = %v/%v", p.BootAmbientC, p.SlowThermal)
	}
	// The analytic model must keep producing E8's documented 0.15727 µs
	// burst slot from the DRAM parameters.
	if got := p.AnalyticBurstUS(); got != 0.15727 {
		t.Errorf("AnalyticBurstUS = %v, want 0.15727", got)
	}
	if p.AnalyticFixedUS != 3.3 {
		t.Errorf("AnalyticFixedUS = %v", p.AnalyticFixedUS)
	}
}

func TestZedBoardGeometry(t *testing.T) {
	p := Default()
	d := p.NewDevice()
	if d.Name != "xc7z020" || d.IDCode != 0x03727093 {
		t.Errorf("device = %s/%#x", d.Name, d.IDCode)
	}
	if d.TotalFrames() != 8100 {
		t.Errorf("TotalFrames = %d, want 8100", d.TotalFrames())
	}
	rps := p.RPs(d)
	if len(rps) != 4 {
		t.Fatalf("RPs = %d, want 4", len(rps))
	}
	for _, rp := range rps {
		if got := d.RegionFrames(rp); got != 1308 {
			t.Errorf("%s frames = %d, want 1308", rp.Name, got)
		}
	}
	names := p.RPNames()
	if len(names) != len(rps) {
		t.Fatalf("RPNames = %v vs %d regions", names, len(rps))
	}
	for i, rp := range rps {
		if names[i] != rp.Name {
			t.Errorf("RPNames[%d] = %q, want %q", i, names[i], rp.Name)
		}
	}
}

func TestNewBoardsGeometry(t *testing.T) {
	zybo, _ := Lookup("zybo-z7-10")
	d := zybo.NewDevice()
	rps := zybo.RPs(d)
	if len(rps) != 3 {
		t.Fatalf("zybo RPs = %d, want 3", len(rps))
	}
	for _, rp := range rps {
		if got := d.RegionFrames(rp); got != 872 {
			t.Errorf("zybo %s frames = %d, want 872", rp.Name, got)
		}
	}
	zc, _ := Lookup("zc706")
	d = zc.NewDevice()
	rps = zc.RPs(d)
	if len(rps) != 7 {
		t.Fatalf("zc706 RPs = %d, want 7", len(rps))
	}
	for _, rp := range rps {
		if got := d.RegionFrames(rp); got != 1308 {
			t.Errorf("zc706 %s frames = %d, want 1308 (same RP cut as zedboard)", rp.Name, got)
		}
	}
	if got := len(zc.RPNames()); got != 7 {
		t.Errorf("zc706 RPNames = %d", got)
	}
}

// TestKneeMovesWithMemoryModel is the cross-platform story in one assertion:
// the predicted stream/memory knee must track each platform's HP-port model.
func TestKneeMovesWithMemoryModel(t *testing.T) {
	zed := Default()
	zybo, _ := Lookup("zybo-z7-10")
	zc, _ := Lookup("zc706")
	kZybo, kZed, kZC := zybo.StreamKneeMHz(), zed.StreamKneeMHz(), zc.StreamKneeMHz()
	if !(kZybo < kZed && kZed < kZC) {
		t.Errorf("knee order: zybo %.1f, zedboard %.1f, zc706 %.1f — want strictly increasing", kZybo, kZed, kZC)
	}
	if math.Abs(kZed-196.5) > 1 {
		t.Errorf("zedboard knee = %.1f MHz, want ≈196.5 (the paper's ≈200 MHz)", kZed)
	}
	// The plateau prediction at 280 MHz must land near Table I's ≈790 MB/s
	// (the analytic model ignores FIFO back-pressure, so it sits ~0.5% high).
	if got := zed.MemoryPlateauMBs(280); math.Abs(got-790) > 6 {
		t.Errorf("zedboard plateau @280 = %.1f MB/s, want ≈790", got)
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	good := zedboard()
	bad := []func(*Profile){
		func(p *Profile) { p.Name = "" },
		func(p *Profile) { p.Fabric.Rows = 0 },
		func(p *Profile) { p.Fabric.RPTiles = p.Fabric.Tiles + 1 },
		func(p *Profile) { p.DRAM.PortBytesPerSec = 0 },
		func(p *Profile) { p.AXI.CDCSyncCycles = 0 },
		func(p *Profile) { p.Clock.RefClock = 0 },
		func(p *Profile) { p.IO.SwitchTableMHz = nil },
		func(p *Profile) { p.Thermal.Tau = 0 },
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("zedboard invalid: %v", err)
	}
	for i, mutate := range bad {
		p := zedboard()
		mutate(p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d should invalidate the profile", i)
		}
	}
}

func TestVariantPresetsDeriveFromZedBoard(t *testing.T) {
	slow, _ := Lookup("zedboard-slow-thermal")
	if !slow.SlowThermal || slow.VariantOf != "zedboard" {
		t.Errorf("slow-thermal preset = %+v", slow)
	}
	if slow.Thermal.Tau != 2*sim.Second {
		t.Errorf("slow-thermal tau = %v", slow.Thermal.Tau)
	}
	hot, _ := Lookup("zedboard-hot")
	if hot.BootAmbientC != 45 || hot.VariantOf != "zedboard" {
		t.Errorf("hot preset = %+v", hot)
	}
	// Presets must not perturb the silicon calibration.
	zed := Default()
	for _, v := range []*Profile{slow, hot} {
		if v.DRAM != zed.DRAM || v.Fabric != zed.Fabric || v.Timing != zed.Timing {
			t.Errorf("%s diverges from zedboard silicon", v.Name)
		}
	}
}
