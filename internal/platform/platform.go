// Package platform centralises every device/board calibration constant of
// the reproduction in one place: a Profile bundles the fabric geometry and
// frame layout, the DRAM/HP-port model, the AXI per-transfer overheads and
// CDC synchroniser cost, the clock-wizard parameter space and lock time, the
// timing-violation critical paths, the power and thermal coefficients, the
// PS latencies and the board I/O (switch table, SD card, power meter).
//
// Profiles are registered by name and selectable everywhere a simulated
// board is built — zynq.Options, experiments.Config, pdr.WithPlatform and
// the -platform flags of pdrbench/pdrsim — so the same physics engine can
// replay the paper's ZedBoard or a differently calibrated part. The default
// profile ("zedboard") reproduces the seed physics bit-identically; no other
// internal package declares a device-calibration constant.
package platform

import (
	"fmt"
	"math"

	"repro/internal/clock"
	"repro/internal/dma"
	"repro/internal/dram"
	"repro/internal/fabric"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/timing"
)

// FabricSpec is the calibrated configuration-plane geometry of a part: how
// many clock-region rows and standard 13-column tiles it has, and how wide
// (in tiles) its reconfigurable partitions are cut.
type FabricSpec struct {
	// IDCode is the JTAG/configuration ID the bitstream loader checks.
	IDCode uint32
	// Rows and Tiles define the frame plane (see fabric.Geometry).
	Rows, Tiles int
	// RPTiles is the reconfigurable-partition span in tiles (3 on the
	// ZedBoard: 39 columns, 1308 frames, the 528,760-byte image of Table I).
	RPTiles int
}

// AXIParams are the calibrated AXI interconnect costs.
type AXIParams struct {
	// LiteWriteLatency / LiteReadLatency are the per-access AXI4-Lite costs
	// through the GP port and interconnect.
	LiteWriteLatency, LiteReadLatency sim.Duration
	// CDCSyncCycles is the per-burst clock-domain-crossing handshake cost in
	// cycles of the over-clocked destination domain.
	CDCSyncCycles float64
}

// ClockParams are the part's clocking resources as the Clock Wizard sees
// them.
type ClockParams struct {
	// RefClock is the PS-supplied reference (FCLK) feeding the MMCM.
	RefClock sim.Hz
	// Limits is the MMCM parameter space for the part and speed grade.
	Limits clock.Limits
	// LockTime is the worst-case MMCM re-lock time per re-programming.
	LockTime sim.Duration
	// NominalMHz is the specified (non-over-clocked) configuration-path
	// frequency the domain starts at.
	NominalMHz float64
}

// ThermalParams describe the board's thermal circuit.
type ThermalParams struct {
	// RThermalCPerW is the junction-to-ambient thermal resistance.
	RThermalCPerW float64
	// Tau is the physical thermal time constant of die + heat sink.
	Tau sim.Duration
	// Step is the integration step of the thermal model.
	Step sim.Duration
}

// PSParams are the processing-system latencies and the PCAP rate.
type PSParams struct {
	// DispatchLatency is GIC + context cost from IRQ assertion to handler
	// entry; HandlerOverhead is the C handler's own work.
	DispatchLatency, HandlerOverhead sim.Duration
	// PCAPBytesPerSec is the effective PCAP rate loading the static design.
	PCAPBytesPerSec float64
}

// BoardIO describes the board peripherals the test flow touches.
type BoardIO struct {
	// SwitchTableMHz maps the slide-switch value to the over-clock
	// frequency — the board's Table-I-equivalent sweep grid.
	SwitchTableMHz []float64
	// SDBytesPerSec is the SD card's streaming rate during boot.
	SDBytesPerSec float64
}

// Profile is one fully calibrated simulated platform.
type Profile struct {
	// Name is the registry key (e.g. "zedboard").
	Name string
	// Board and Part name the hardware (e.g. "Avnet ZedBoard", "xc7z020").
	Board, Part string
	// Summary is a one-line description for listings.
	Summary string
	// VariantOf names the base board this profile is a preset of; "" for a
	// distinct piece of silicon. Boards() returns only the latter.
	VariantOf string

	Fabric  FabricSpec
	DRAM    dram.Params
	AXI     AXIParams
	Clock   ClockParams
	Timing  timing.Model
	Power   power.Params
	Thermal ThermalParams
	PS      PSParams
	IO      BoardIO

	// BootAmbientC is the room temperature the board powers up in.
	BootAmbientC float64
	// SlowThermal forces the physical thermal time constant even where a
	// caller asks for the fast test-friendly build (the
	// "zedboard-slow-thermal" preset).
	SlowThermal bool
	// AnalyticFixedUS is the calibrated fixed per-transfer overhead of the
	// analytic latency model (DMA programming, descriptor fetch/decode, IRQ
	// dispatch) in microseconds.
	AnalyticFixedUS float64
}

// Validate checks the profile for the invariants the construction paths
// assume. Register panics on a profile that fails it.
func (p *Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("platform: profile without a name")
	case p.Fabric.Rows < 1 || p.Fabric.Tiles < 1 || p.Fabric.RPTiles < 1:
		return fmt.Errorf("platform: %s: degenerate fabric %+v", p.Name, p.Fabric)
	case p.Fabric.RPTiles > p.Fabric.Tiles:
		return fmt.Errorf("platform: %s: RP span %d exceeds %d tiles", p.Name, p.Fabric.RPTiles, p.Fabric.Tiles)
	case p.DRAM.PortBytesPerSec <= 0:
		return fmt.Errorf("platform: %s: non-positive HP-port rate", p.Name)
	case p.DRAM.SizeBytes <= 0:
		return fmt.Errorf("platform: %s: non-positive DRAM size", p.Name)
	case p.AXI.CDCSyncCycles <= 0 || p.AXI.LiteWriteLatency <= 0 || p.AXI.LiteReadLatency <= 0:
		return fmt.Errorf("platform: %s: non-positive AXI cost", p.Name)
	case p.Clock.RefClock <= 0 || p.Clock.NominalMHz <= 0 || p.Clock.LockTime <= 0:
		return fmt.Errorf("platform: %s: non-positive clock reference", p.Name)
	case p.Clock.Limits.MultStep <= 0 || p.Clock.Limits.MultMin <= 0 ||
		p.Clock.Limits.MultMax < p.Clock.Limits.MultMin ||
		p.Clock.Limits.DivMin < 1 || p.Clock.Limits.DivMax < p.Clock.Limits.DivMin ||
		p.Clock.Limits.OutDivMin <= 0 || p.Clock.Limits.OutDivMax < p.Clock.Limits.OutDivMin ||
		p.Clock.Limits.VCOMin <= 0 || p.Clock.Limits.VCOMax < p.Clock.Limits.VCOMin ||
		p.Clock.Limits.MinPFD <= 0 || p.Clock.Limits.MaxPFD < p.Clock.Limits.MinPFD:
		return fmt.Errorf("platform: %s: degenerate MMCM limits %+v", p.Name, p.Clock.Limits)
	case len(p.IO.SwitchTableMHz) == 0:
		return fmt.Errorf("platform: %s: empty switch table", p.Name)
	case p.IO.SDBytesPerSec <= 0 || p.PS.PCAPBytesPerSec <= 0:
		return fmt.Errorf("platform: %s: non-positive boot-path rate", p.Name)
	case p.PS.DispatchLatency <= 0 || p.PS.HandlerOverhead <= 0:
		return fmt.Errorf("platform: %s: non-positive PS latency", p.Name)
	case p.Thermal.Tau <= 0 || p.Thermal.Step <= 0 || p.Thermal.RThermalCPerW <= 0:
		return fmt.Errorf("platform: %s: non-positive thermal constants", p.Name)
	}
	return nil
}

// NewDevice builds the part's configuration plane.
func (p *Profile) NewDevice() *fabric.Device {
	return fabric.NewDevice(fabric.Geometry{
		Name:   p.Part,
		IDCode: p.Fabric.IDCode,
		Rows:   p.Fabric.Rows,
		Tiles:  p.Fabric.Tiles,
	})
}

// RPs returns the profile's reconfigurable-partition plan on a device built
// from it.
func (p *Profile) RPs(d *fabric.Device) []fabric.Region {
	return fabric.TiledRPs(d, p.Fabric.RPTiles)
}

// RPNames lists the partition names of the profile's RP plan (RP1…RPn), by
// construction in the plan's order — the single source of truth is
// fabric.TiledRPs, so the names can never drift from the regions.
func (p *Profile) RPNames() []string {
	rps := p.RPs(p.NewDevice())
	out := make([]string, len(rps))
	for i, rp := range rps {
		out[i] = rp.Name
	}
	return out
}

// TimingModel returns a private copy of the part's timing model (callers
// mutate derating state freely without aliasing the registry).
func (p *Profile) TimingModel() *timing.Model {
	m := p.Timing
	return &m
}

// AnalyticBurstUS is the analytic latency model's per-burst memory-side
// slot in microseconds: one DMA burst through the refresh-derated HP port,
// rounded to 5 decimals so the documented calibration stays stable.
func (p *Profile) AnalyticBurstUS() float64 {
	slot := float64(dma.BurstBytes) / p.DRAM.PortBytesPerSec * 1e6
	if p.DRAM.RefreshInterval > 0 {
		slot *= 1 + float64(p.DRAM.RefreshStall)/float64(p.DRAM.RefreshInterval)
	}
	return math.Round(slot*1e5) / 1e5
}

// BitstreamCacheBytes is the DRAM budget the reconfiguration service may
// pin for partial-bitstream images: 2% of system memory. On every
// registered board that comfortably holds the standard library's working
// set (ASPs × RPs); eviction pressure appears only when a deployment pins
// less, which the scheduling scenario (E12) sweeps explicitly.
func (p *Profile) BitstreamCacheBytes() int64 { return p.DRAM.SizeBytes / 50 }

// MemoryPlateauMBs predicts the memory-side throughput ceiling at the given
// over-clock frequency: one BurstBytes burst per (port slot + CDC
// handshake). This is the plateau Table I measures above the knee.
func (p *Profile) MemoryPlateauMBs(freqMHz float64) float64 {
	slotUS := p.AnalyticBurstUS() + p.AXI.CDCSyncCycles/freqMHz
	return float64(dma.BurstBytes) / slotUS
}

// StreamKneeMHz predicts where the stream-side 4·f MB/s line crosses the
// memory-side plateau — the knee frequency of Fig. 5, solved from
// 4f·(slot + cdc/f) = BurstBytes.
func (p *Profile) StreamKneeMHz() float64 {
	return (float64(dma.BurstBytes) - 4*p.AXI.CDCSyncCycles) / (4 * p.AnalyticBurstUS())
}

func (p *Profile) String() string {
	return fmt.Sprintf("%s (%s, %s)", p.Name, p.Board, p.Part)
}
