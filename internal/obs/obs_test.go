package obs

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"repro/internal/sim"
)

// sampleTracer builds a tracer with two fleets covering every record
// shape the exporters handle: spans with and without labels, instants
// with and without sequence numbers, ctl records, named and anonymous
// boards, series/counters/hists.
func sampleTracer() *Tracer {
	tr := New()
	ft := tr.Fleet("E99/00", "sample fleet")
	b0 := ft.Board(0)
	ft.Bind(0, "zedboard", []string{"RP1", "RP2"})
	b0.Span(SpanQueue, TIDRPBase, 0, 0, 250*sim.Microsecond, "")
	b0.Span(SpanCompute, TIDRPBase, 0, 250*sim.Microsecond, 40*sim.Microsecond, "fir128")
	b0.Span(SpanStage, TIDICAP, 1, 300*sim.Microsecond, 2*sim.Millisecond, "fft1k@RP2")
	b0.Span(SpanXfer, TIDICAP, 1, 2300*sim.Microsecond, 471*sim.Microsecond+123*sim.Picosecond, "fft1k@RP2")
	b0.Event(EvShed, TIDLifecycle, 7, sim.Millisecond, "RP1 fir128 q=32/32")
	b0.Event(EvCacheMiss, TIDICAP, 1, 300*sim.Microsecond, "fft1k@RP2")
	b1 := ft.Board(1) // bound late, stays anonymous
	b1.Event(EvCrash, TIDLifecycle, -1, 5*sim.Millisecond, "")
	ctl := ft.Ctl()
	ctl.Event(EvEpoch, CtlTIDEpoch, -1, 0, "")
	ctl.Event(EvScale, CtlTIDScaler, -1, 25*sim.Millisecond, "1->2 shed")
	m := ft.Metrics()
	qd := m.Series("board00.queued", "requests")
	qd.Append(0, 0)
	qd.Append(sim.Millisecond, 3)
	m.Counter("fleet.failovers").Add(2)
	h := m.Hist("fleet.epoch_batch", "arrivals")
	h.Observe(1)
	h.Observe(4)

	// A second fleet keyed to sort before the first: export order must
	// come from the keys, not registration order.
	ft2 := tr.Fleet("E13/00", "first by key")
	ft2.Board(0).Span(SpanRepair, TIDICAP, -1, sim.Microsecond, 9*sim.Microsecond, "scrub")
	return tr
}

func TestChromeRoundTrip(t *testing.T) {
	tr := sampleTracer()
	out := tr.Chrome()
	again, err := ReexportChrome(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, again) {
		t.Errorf("chrome export does not round-trip:\n--- export ---\n%s\n--- re-export ---\n%s", out, again)
	}
	// Key ordering: E13/00 must render before E99/00.
	s := string(out)
	if i, j := strings.Index(s, "E13/00"), strings.Index(s, "E99/00"); i < 0 || j < 0 || i > j {
		t.Errorf("fleets not in sorted key order (E13 at %d, E99 at %d)", i, j)
	}
	for _, want := range []string{
		`"name":"reconfig"`, `"name":"shed"`, `"s":"t"`, `"seq":7`,
		`"detail":"fft1k@RP2"`, `"name":"rp:RP2"`, `"name":"board00 - zedboard"`,
		`"ts":2300.000000,"dur":471.000123`, `"detail":"1-\u003e2 shed"`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("chrome export missing %s", want)
		}
	}
	// Determinism: two exports of the same tracer are identical.
	if !bytes.Equal(out, tr.Chrome()) {
		t.Error("repeated Chrome export differs")
	}
}

func TestChromeRejectsGarbage(t *testing.T) {
	if _, err := ReexportChrome([]byte("{not json")); err == nil {
		t.Error("malformed chrome document accepted")
	}
}

func TestMetricsRoundTrip(t *testing.T) {
	tr := sampleTracer()
	out, err := tr.MetricsJSON()
	if err != nil {
		t.Fatal(err)
	}
	again, err := ReexportMetrics(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, again) {
		t.Errorf("metrics export does not round-trip:\n--- export ---\n%s\n--- re-export ---\n%s", out, again)
	}
	s := string(out)
	for _, want := range []string{`"schema": 1`, `"board00.queued"`, `"fleet.failovers"`, `"fleet.epoch_batch"`, `"p99"`} {
		if !strings.Contains(s, want) {
			t.Errorf("metrics export missing %s", want)
		}
	}
	if bad, err := ReexportMetrics([]byte(`{"schema": 99, "fleets": []}`)); err == nil {
		t.Errorf("future schema accepted: %s", bad)
	}
}

func TestMetricsCSV(t *testing.T) {
	csv := string(sampleTracer().MetricsCSV())
	lines := strings.Split(strings.TrimSuffix(csv, "\n"), "\n")
	if lines[0] != "fleet,series,unit,t_us,value" {
		t.Errorf("csv header = %q", lines[0])
	}
	want := "E99/00,board00.queued,requests,1000,3"
	found := false
	for _, l := range lines[1:] {
		if l == want {
			found = true
		}
	}
	if !found {
		t.Errorf("csv missing row %q in:\n%s", want, csv)
	}
}

func TestPsToUSExactness(t *testing.T) {
	cases := []struct {
		ps   int64
		want string
	}{
		{0, "0.000000"},
		{1, "0.000001"},
		{999_999, "0.999999"},
		{1_000_000, "1.000000"},
		{471_000_123, "471.000123"},
		{-2_500_000, "-2.500000"},
	}
	for _, c := range cases {
		if got := psToUS(c.ps); got != c.want {
			t.Errorf("psToUS(%d) = %q, want %q", c.ps, got, c.want)
		}
		parsed, err := strconv.ParseFloat(psToUS(c.ps), 64)
		if err != nil {
			t.Fatalf("parse %q: %v", psToUS(c.ps), err)
		}
		if back := usToPS(parsed); back != c.ps {
			t.Errorf("round-trip %d -> %q -> %d", c.ps, psToUS(c.ps), back)
		}
	}
}

// TestTickGrid pins the deterministic sampling grid: ticks are exact
// multiples of the cadence regardless of how observation times land.
func TestTickGrid(t *testing.T) {
	m := newMetrics(sim.Millisecond)
	var ticks []sim.Duration
	for _, now := range []sim.Duration{0, 400 * sim.Microsecond, 3500 * sim.Microsecond} {
		for {
			at, ok := m.TickDue(now)
			if !ok {
				break
			}
			ticks = append(ticks, at)
			m.TickDone()
		}
	}
	want := []sim.Duration{0, sim.Millisecond, 2 * sim.Millisecond, 3 * sim.Millisecond}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Errorf("tick %d = %v, want %v", i, ticks[i], want[i])
		}
	}
}

// TestDisabledPathZeroAlloc is the zero-cost-when-off contract: every
// emission and registry method on the nil receivers a disabled tracer
// hands out must allocate nothing. This is the same call pattern the
// fleet's hot path runs per request when no tracer is attached.
func TestDisabledPathZeroAlloc(t *testing.T) {
	var tr *Tracer
	ft := tr.Fleet("k", "l")
	b := ft.Board(0)
	ctl := ft.Ctl()
	m := ft.Metrics()
	series := m.Series("queued", "requests")
	ctr := m.Counter("failovers")
	h := m.Hist("batch", "arrivals")
	allocs := testing.AllocsPerRun(1000, func() {
		b.Span(SpanQueue, TIDRPBase, 1, 0, sim.Microsecond, "")
		b.Event(EvShed, TIDLifecycle, -1, 0, "")
		ctl.Event(EvEpoch, CtlTIDEpoch, -1, 0, "")
		if _, ok := m.TickDue(0); ok {
			m.TickDone()
		}
		series.Append(0, 1)
		ctr.Add(1)
		h.Observe(1)
		_ = b.Records()
	})
	if allocs != 0 {
		t.Errorf("disabled tracer path allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestNilSafety walks every accessor on nil receivers.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if ft := tr.Fleet("a", "b"); ft != nil {
		t.Error("nil tracer returned a fleet")
	}
	var ft *FleetTrace
	if ft.Board(3) != nil || ft.Ctl() != nil || ft.Metrics() != nil {
		t.Error("nil fleet trace returned live handles")
	}
	ft.Bind(0, "x", nil)
	var m *Metrics
	if m.Series("s", "") != nil || m.Counter("c") != nil || m.Hist("h", "") != nil {
		t.Error("nil metrics returned live handles")
	}
	if _, ok := m.TickDue(sim.Minute); ok {
		t.Error("nil metrics reported a due tick")
	}
	m.TickDone()
}

// TestTracerFleetReuse: the same key returns the same trace, and the
// cadence is captured at first registration.
func TestTracerFleetReuse(t *testing.T) {
	tr := New()
	tr.SampleEvery = 5 * sim.Millisecond
	a := tr.Fleet("x", "one")
	if b := tr.Fleet("x", "two"); a != b {
		t.Error("same key produced distinct fleet traces")
	}
	if a.every != 5*sim.Millisecond {
		t.Errorf("fleet cadence = %v, want 5ms", a.every)
	}
}
