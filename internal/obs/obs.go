// Package obs is the deterministic tracing and metrics layer.
//
// Everything in this package is driven by sim-time picoseconds, never
// wall clock, so enabling observability cannot perturb a run's
// byte-identical outputs and the exported artifacts are themselves
// byte-identical at any fleet worker count. The design splits into
// three parts:
//
//   - spans and instant events (Record), buffered per board so parallel
//     board advances never share a buffer; the exporter concatenates
//     boards in index order, realising PR 8's completion-merge pattern
//     at export time instead of per epoch;
//   - a metrics registry (Metrics) of gauges sampled on a deterministic
//     sim-time cadence plus counters and sim.Sample-backed histograms;
//   - exporters: Chrome trace-event JSON loadable in Perfetto
//     (chrome.go) and canonical JSON/CSV time series (metrics.go).
//
// The zero-cost-when-off contract: every emission method is safe on a
// nil receiver and returns immediately, and instrumented call sites
// guard argument construction behind a nil check, so the disabled path
// costs one predictable branch and zero allocations.
package obs

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/sim"
)

// Kind classifies a span or instant event. Export names derive from the
// kind at export time so emission never builds strings.
type Kind uint8

const (
	// Spans (rendered as Chrome "X" complete events).

	// SpanQueue covers admission to dispatch on the request's RP track.
	SpanQueue Kind = iota
	// SpanCompute covers dispatch to completion on the RP track.
	SpanCompute
	// SpanStage covers SD→DRAM bitstream staging on the ICAP track.
	SpanStage
	// SpanXfer covers the ICAP reconfiguration transfer.
	SpanXfer
	// SpanRepair covers a scrub or reload repair on the ICAP track.
	SpanRepair

	// Board-side instants (rendered as Chrome "i" instant events).

	// EvShed marks a request rejected by admission control.
	EvShed
	// EvCacheHit marks a dispatch that found its image resident.
	EvCacheHit
	// EvCacheMiss marks a dispatch that must stage its image.
	EvCacheMiss
	// EvCRCFail marks a reconfiguration rejected by CRC check.
	EvCRCFail
	// EvCRCAlarm marks an injected configuration-memory upset.
	EvCRCAlarm
	// EvDeadlineMiss marks a completion past its deadline.
	EvDeadlineMiss
	// EvCrash marks a board crash (chaos BoardDown).
	EvCrash
	// EvRecover marks a crashed board restarting.
	EvRecover

	// Fleet-control instants, emitted sequentially between epochs.

	// EvEpoch marks the fleet advancing to a new arrival timestamp.
	EvEpoch
	// EvScale marks an autoscaler resize decision.
	EvScale
	// EvFault marks a chaos schedule entry being applied.
	EvFault
	// EvThrottle marks the health monitor halving a board's weight.
	EvThrottle
	// EvUnthrottle marks the health monitor restoring a board.
	EvUnthrottle
	// EvProbeDown marks a health probe ejecting a crashed board.
	EvProbeDown
	// EvProbeUp marks a health probe readmitting a board.
	EvProbeUp
	// EvFailover marks a request routed off its preferred board.
	EvFailover
	// EvUnroutable marks a request with no live board to take it.
	EvUnroutable
	// EvHedge marks a duplicate hedge dispatch.
	EvHedge

	kindCount
)

var kindNames = [kindCount]string{
	SpanQueue:      "queue",
	SpanCompute:    "compute",
	SpanStage:      "stage",
	SpanXfer:       "reconfig",
	SpanRepair:     "repair",
	EvShed:         "shed",
	EvCacheHit:     "cache-hit",
	EvCacheMiss:    "cache-miss",
	EvCRCFail:      "crc-fail",
	EvCRCAlarm:     "crc-alarm",
	EvDeadlineMiss: "deadline-miss",
	EvCrash:        "crash",
	EvRecover:      "recover",
	EvEpoch:        "epoch",
	EvScale:        "scale",
	EvFault:        "fault",
	EvThrottle:     "throttle",
	EvUnthrottle:   "unthrottle",
	EvProbeDown:    "probe-down",
	EvProbeUp:      "probe-up",
	EvFailover:     "failover",
	EvUnroutable:   "unroutable",
	EvHedge:        "hedge",
}

// String returns the kind's export name.
func (k Kind) String() string {
	if k < kindCount {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// IsSpan reports whether the kind carries a duration.
func (k Kind) IsSpan() bool { return k <= SpanRepair }

// Track IDs within a board's trace. Request-level spans live on
// per-RP tracks; ICAP staging/transfer/repair spans share the single
// physical port's resource track, making port contention visible.
const (
	// TIDLifecycle carries board-level instants (crash, recover, shed).
	TIDLifecycle int32 = 0
	// TIDICAP is the board's single reconfiguration port.
	TIDICAP int32 = 1
	// TIDRPBase + i is reconfigurable partition i's track.
	TIDRPBase int32 = 2
)

// Control-plane track IDs within a fleet's ctl trace.
const (
	CtlTIDRouter int32 = iota
	CtlTIDScaler
	CtlTIDChaos
	CtlTIDHealth
	CtlTIDEpoch
	ctlTIDCount
)

var ctlTrackNames = [ctlTIDCount]string{
	CtlTIDRouter: "router",
	CtlTIDScaler: "autoscaler",
	CtlTIDChaos:  "chaos",
	CtlTIDHealth: "health",
	CtlTIDEpoch:  "epochs",
}

// Record is one span or instant event. Times are sim-time picoseconds
// relative to the owning service's session start (Begin), which is also
// the fleet's time origin, so records from different boards share one
// clock and merge without translation.
type Record struct {
	Kind  Kind
	TID   int32
	Seq   int32 // request sequence number, -1 when not request-scoped
	Start sim.Duration
	Dur   sim.Duration // 0 for instants
	Label string       // free-form detail (ASP name, fault kind, ...)
}

// BoardTrace buffers one board's records. Exactly one goroutine — the
// board's — appends during a parallel advance, so no lock is needed;
// ordering across boards is imposed at export by board index.
type BoardTrace struct {
	recs []Record
}

// Span records a closed interval. Safe on a nil receiver.
func (b *BoardTrace) Span(k Kind, tid, seq int32, start, dur sim.Duration, label string) {
	if b == nil {
		return
	}
	b.recs = append(b.recs, Record{Kind: k, TID: tid, Seq: seq, Start: start, Dur: dur, Label: label})
}

// Event records an instant. Safe on a nil receiver.
func (b *BoardTrace) Event(k Kind, tid, seq int32, at sim.Duration, label string) {
	if b == nil {
		return
	}
	b.recs = append(b.recs, Record{Kind: k, TID: tid, Seq: seq, Start: at, Label: label})
}

// Records returns the buffered records in emission order.
func (b *BoardTrace) Records() []Record {
	if b == nil {
		return nil
	}
	return b.recs
}

// boardMeta names a board's tracks for export.
type boardMeta struct {
	name string   // board display name (platform profile)
	rps  []string // reconfigurable partition names, track order
}

// FleetTrace collects one fleet run: per-board span buffers, a
// sequentially-written control-plane buffer, and the metrics registry.
type FleetTrace struct {
	label   string
	every   sim.Duration
	boards  []*BoardTrace
	meta    []boardMeta
	ctl     BoardTrace
	metrics *Metrics
}

// Board returns board i's buffer, growing the fleet as needed. Safe on
// a nil receiver (returns nil, which every emission method accepts).
func (f *FleetTrace) Board(i int) *BoardTrace {
	if f == nil {
		return nil
	}
	for len(f.boards) <= i {
		f.boards = append(f.boards, &BoardTrace{})
		f.meta = append(f.meta, boardMeta{})
	}
	return f.boards[i]
}

// Bind names board i and its RP tracks for export. Safe on nil.
func (f *FleetTrace) Bind(i int, name string, rps []string) {
	if f == nil {
		return
	}
	f.Board(i)
	f.meta[i] = boardMeta{name: name, rps: rps}
}

// Ctl returns the control-plane buffer. Only the fleet's sequential
// inter-epoch code may write to it. Safe on a nil receiver.
func (f *FleetTrace) Ctl() *BoardTrace {
	if f == nil {
		return nil
	}
	return &f.ctl
}

// Metrics returns the fleet's metrics registry. Safe on a nil receiver.
func (f *FleetTrace) Metrics() *Metrics {
	if f == nil {
		return nil
	}
	if f.metrics == nil {
		f.metrics = newMetrics(f.every)
	}
	return f.metrics
}

// Tracer is the top-level collector a caller owns for one campaign or
// serve. Each fleet run registers under a unique key; export iterates
// keys in sorted order, so collection order (which varies with campaign
// parallelism) never reaches the output.
type Tracer struct {
	// SampleEvery is the metrics sampling cadence in sim time
	// (default 1 ms). Set before the first run registers.
	SampleEvery sim.Duration

	mu     sync.Mutex
	fleets map[string]*FleetTrace
}

// New returns an empty tracer with the default 1 ms metrics cadence.
func New() *Tracer { return &Tracer{SampleEvery: sim.Millisecond} }

// Fleet returns (creating if needed) the trace for the given key. The
// key orders fleets in the export; the label names the Perfetto process
// group. Safe on a nil receiver: returns nil, and every FleetTrace
// method accepts a nil receiver in turn.
func (t *Tracer) Fleet(key, label string) *FleetTrace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.fleets == nil {
		t.fleets = make(map[string]*FleetTrace)
	}
	ft, ok := t.fleets[key]
	if !ok {
		every := t.SampleEvery
		if every <= 0 {
			every = sim.Millisecond
		}
		ft = &FleetTrace{label: label, every: every}
		t.fleets[key] = ft
	}
	return ft
}

// keys returns the registered fleet keys in sorted (export) order.
func (t *Tracer) keys() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ks := make([]string, 0, len(t.fleets))
	for k := range t.fleets {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
