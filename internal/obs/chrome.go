package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
)

// Chrome trace-event export. The emitted document loads directly in
// Perfetto (ui.perfetto.dev) or chrome://tracing: each fleet is a
// process, each board a process, and tracks (lifecycle, the ICAP port,
// one per RP) are threads. Timestamps are sim-time microseconds with
// picosecond fractions rendered as exact decimals ("%d.%06d"), so the
// export is a pure function of the record stream — no floats are
// formatted by value — and an import→re-export round-trip reproduces
// the bytes exactly.

// chromeEvent is one line of the canonical export.
type chromeEvent struct {
	ph        string
	pid       int
	tid       int
	hasTS     bool
	tsPS      int64
	hasDur    bool
	durPS     int64
	scope     string // "t" for instants
	name      string
	argName   string // metadata payload (process_name/thread_name)
	hasSeq    bool
	argSeq    int64
	argDetail string
}

// psToUS renders picoseconds as exact decimal microseconds.
func psToUS(ps int64) string {
	neg := ps < 0
	if neg {
		ps = -ps
	}
	s := fmt.Sprintf("%d.%06d", ps/1_000_000, ps%1_000_000)
	if neg {
		return "-" + s
	}
	return s
}

// usToPS parses the value back. Chrome ts values stay far below 2^53
// microseconds, so the float64 round-trip is lossless.
func usToPS(us float64) int64 { return int64(math.Round(us * 1e6)) }

func jsonString(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

func (e chromeEvent) render(buf *bytes.Buffer) {
	buf.WriteString(`{"ph":`)
	buf.WriteString(jsonString(e.ph))
	fmt.Fprintf(buf, `,"pid":%d,"tid":%d`, e.pid, e.tid)
	if e.hasTS {
		buf.WriteString(`,"ts":`)
		buf.WriteString(psToUS(e.tsPS))
	}
	if e.hasDur {
		buf.WriteString(`,"dur":`)
		buf.WriteString(psToUS(e.durPS))
	}
	if e.scope != "" {
		buf.WriteString(`,"s":`)
		buf.WriteString(jsonString(e.scope))
	}
	buf.WriteString(`,"name":`)
	buf.WriteString(jsonString(e.name))
	if e.argName != "" || e.hasSeq || e.argDetail != "" {
		buf.WriteString(`,"args":{`)
		first := true
		if e.argName != "" {
			buf.WriteString(`"name":`)
			buf.WriteString(jsonString(e.argName))
			first = false
		}
		if e.hasSeq {
			if !first {
				buf.WriteByte(',')
			}
			fmt.Fprintf(buf, `"seq":%d`, e.argSeq)
			first = false
		}
		if e.argDetail != "" {
			if !first {
				buf.WriteByte(',')
			}
			buf.WriteString(`"detail":`)
			buf.WriteString(jsonString(e.argDetail))
		}
		buf.WriteByte('}')
	}
	buf.WriteByte('}')
}

func renderEvents(events []chromeEvent) []byte {
	var buf bytes.Buffer
	buf.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")
	for i, e := range events {
		e.render(&buf)
		if i < len(events)-1 {
			buf.WriteByte(',')
		}
		buf.WriteByte('\n')
	}
	buf.WriteString("]}\n")
	return buf.Bytes()
}

func metaEvent(pid, tid int, key, payload string) chromeEvent {
	return chromeEvent{ph: "M", pid: pid, tid: tid, name: key, argName: payload}
}

func recordEvent(pid int, r Record) chromeEvent {
	e := chromeEvent{pid: pid, tid: int(r.TID), name: r.Kind.String(), hasTS: true, tsPS: int64(r.Start)}
	if r.Kind.IsSpan() {
		e.ph = "X"
		e.hasDur = true
		e.durPS = int64(r.Dur)
	} else {
		e.ph = "i"
		e.scope = "t"
	}
	if r.Seq >= 0 {
		e.hasSeq = true
		e.argSeq = int64(r.Seq)
	}
	e.argDetail = r.Label
	return e
}

// pidStride spaces fleet process-ID blocks: fleet k's control plane is
// pid k*pidStride, its boards k*pidStride+1+i.
const pidStride = 64

// Chrome exports every registered fleet as canonical Chrome trace-event
// JSON. Fleets emit in sorted-key order and each fleet's boards in
// index order — the same completion-merge discipline the fleet applies
// to request completions — so the bytes are independent of worker
// count and campaign scheduling.
func (t *Tracer) Chrome() []byte {
	var events []chromeEvent
	for fk, key := range t.keys() {
		ft := t.fleets[key]
		base := fk * pidStride
		label := key
		if ft.label != "" {
			label = key + " - " + ft.label
		}
		events = append(events, metaEvent(base, 0, "process_name", label))
		for tid, name := range ctlTrackNames {
			events = append(events, metaEvent(base, tid, "thread_name", name))
		}
		for _, r := range ft.ctl.Records() {
			events = append(events, recordEvent(base, r))
		}
		for i, b := range ft.boards {
			pid := base + 1 + i
			bname := fmt.Sprintf("board%02d", i)
			if ft.meta[i].name != "" {
				bname += " - " + ft.meta[i].name
			}
			events = append(events, metaEvent(pid, 0, "process_name", bname))
			events = append(events, metaEvent(pid, int(TIDLifecycle), "thread_name", "lifecycle"))
			events = append(events, metaEvent(pid, int(TIDICAP), "thread_name", "icap"))
			for j, rp := range ft.meta[i].rps {
				events = append(events, metaEvent(pid, int(TIDRPBase)+j, "thread_name", "rp:"+rp))
			}
			for _, r := range b.Records() {
				events = append(events, recordEvent(pid, r))
			}
		}
	}
	return renderEvents(events)
}

// Import-side mirror of the canonical writer.

type rawArgs struct {
	Name   *string `json:"name"`
	Seq    *int64  `json:"seq"`
	Detail *string `json:"detail"`
}

type rawEvent struct {
	Ph   string   `json:"ph"`
	Pid  int      `json:"pid"`
	Tid  int      `json:"tid"`
	Ts   *float64 `json:"ts"`
	Dur  *float64 `json:"dur"`
	S    string   `json:"s"`
	Name string   `json:"name"`
	Args *rawArgs `json:"args"`
}

type chromeDoc struct {
	DisplayTimeUnit string     `json:"displayTimeUnit"`
	TraceEvents     []rawEvent `json:"traceEvents"`
}

// ReexportChrome parses a Chrome export and re-renders it canonically;
// on a file this package wrote, the output reproduces the input bytes,
// proving the export carries the full record stream losslessly.
func ReexportChrome(data []byte) ([]byte, error) {
	var doc chromeDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("obs: chrome import: %w", err)
	}
	events := make([]chromeEvent, 0, len(doc.TraceEvents))
	for _, r := range doc.TraceEvents {
		e := chromeEvent{ph: r.Ph, pid: r.Pid, tid: r.Tid, scope: r.S, name: r.Name}
		if r.Ts != nil {
			e.hasTS = true
			e.tsPS = usToPS(*r.Ts)
		}
		if r.Dur != nil {
			e.hasDur = true
			e.durPS = usToPS(*r.Dur)
		}
		if r.Args != nil {
			if r.Args.Name != nil {
				e.argName = *r.Args.Name
			}
			if r.Args.Seq != nil {
				e.hasSeq = true
				e.argSeq = *r.Args.Seq
			}
			if r.Args.Detail != nil {
				e.argDetail = *r.Args.Detail
			}
		}
		events = append(events, e)
	}
	return renderEvents(events), nil
}
