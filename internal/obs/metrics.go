package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"

	"repro/internal/sim"
)

// TimeSeries is one gauge sampled on the metrics cadence. Timestamps
// are sim-time picoseconds from the fleet's time origin.
type TimeSeries struct {
	Name string
	Unit string
	T    []sim.Duration
	V    []float64
}

// Append records one sample. Safe on a nil receiver.
func (s *TimeSeries) Append(t sim.Duration, v float64) {
	if s == nil {
		return
	}
	s.T = append(s.T, t)
	s.V = append(s.V, v)
}

// Counter is a monotonic event count. Safe on a nil receiver.
type Counter struct {
	Name string
	N    int64
}

// Add increments the counter. Safe on a nil receiver.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.N += d
}

// Hist is a sim.Sample-backed value distribution.
type Hist struct {
	Name string
	Unit string
	S    sim.Sample
}

// Observe records one value. Safe on a nil receiver.
func (h *Hist) Observe(v float64) {
	if h == nil {
		return
	}
	h.S.Add(v)
}

// Metrics is one fleet's registry of series, counters, and histograms.
// Registration and sampling happen only from the fleet's sequential
// inter-epoch code, so no locking is needed; the deterministic tick
// grid (multiples of the cadence) makes the sampled series independent
// of epoch spacing jitter in the arrival stream.
type Metrics struct {
	every sim.Duration
	next  sim.Duration

	series   []*TimeSeries
	counters []*Counter
	hists    []*Hist
	sidx     map[string]int
	cidx     map[string]int
	hidx     map[string]int
}

func newMetrics(every sim.Duration) *Metrics {
	if every <= 0 {
		every = sim.Millisecond
	}
	return &Metrics{
		every: every,
		sidx:  map[string]int{},
		cidx:  map[string]int{},
		hidx:  map[string]int{},
	}
}

// Series returns (registering if needed) the named gauge series.
// Safe on a nil receiver.
func (m *Metrics) Series(name, unit string) *TimeSeries {
	if m == nil {
		return nil
	}
	if i, ok := m.sidx[name]; ok {
		return m.series[i]
	}
	s := &TimeSeries{Name: name, Unit: unit}
	m.sidx[name] = len(m.series)
	m.series = append(m.series, s)
	return s
}

// Counter returns (registering if needed) the named counter.
// Safe on a nil receiver.
func (m *Metrics) Counter(name string) *Counter {
	if m == nil {
		return nil
	}
	if i, ok := m.cidx[name]; ok {
		return m.counters[i]
	}
	c := &Counter{Name: name}
	m.cidx[name] = len(m.counters)
	m.counters = append(m.counters, c)
	return c
}

// Hist returns (registering if needed) the named histogram.
// Safe on a nil receiver.
func (m *Metrics) Hist(name, unit string) *Hist {
	if m == nil {
		return nil
	}
	if i, ok := m.hidx[name]; ok {
		return m.hists[i]
	}
	h := &Hist{Name: name, Unit: unit}
	m.hidx[name] = len(m.hists)
	m.hists = append(m.hists, h)
	return h
}

// TickDue reports the next unsampled tick at or before now. The caller
// samples its gauges at the returned timestamp, then calls TickDone;
// repeating until TickDue returns false catches up across epoch gaps
// wider than the cadence. Safe on a nil receiver.
func (m *Metrics) TickDue(now sim.Duration) (sim.Duration, bool) {
	if m == nil || m.next > now {
		return 0, false
	}
	return m.next, true
}

// TickDone advances to the next tick on the cadence grid.
func (m *Metrics) TickDone() {
	if m == nil {
		return
	}
	m.next += m.every
}

// Canonical time-series documents. MetricsJSON / ImportMetrics /
// re-export reproduce bytes exactly: field order is fixed by the
// structs, fleets sort by key, and float64 round-trips losslessly
// through encoding/json's shortest-representation encoder.

type metricsDoc struct {
	Schema int               `json:"schema"`
	Fleets []fleetMetricsDoc `json:"fleets"`
}

type fleetMetricsDoc struct {
	Key      string       `json:"key"`
	Label    string       `json:"label,omitempty"`
	Series   []seriesDoc  `json:"series,omitempty"`
	Counters []counterDoc `json:"counters,omitempty"`
	Hists    []histDoc    `json:"hists,omitempty"`
}

type seriesDoc struct {
	Name   string       `json:"name"`
	Unit   string       `json:"unit,omitempty"`
	Points [][2]float64 `json:"points"` // [t_us, value]
}

type counterDoc struct {
	Name string `json:"name"`
	N    int64  `json:"n"`
}

type histDoc struct {
	Name  string  `json:"name"`
	Unit  string  `json:"unit,omitempty"`
	Count int     `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

const metricsSchema = 1

func (t *Tracer) metricsDoc() metricsDoc {
	doc := metricsDoc{Schema: metricsSchema, Fleets: []fleetMetricsDoc{}}
	for _, key := range t.keys() {
		ft := t.fleets[key]
		fd := fleetMetricsDoc{Key: key, Label: ft.label}
		if m := ft.metrics; m != nil {
			for _, s := range m.series {
				sd := seriesDoc{Name: s.Name, Unit: s.Unit, Points: [][2]float64{}}
				for i := range s.T {
					sd.Points = append(sd.Points, [2]float64{s.T[i].Microseconds(), s.V[i]})
				}
				fd.Series = append(fd.Series, sd)
			}
			sort.Slice(fd.Series, func(i, j int) bool { return fd.Series[i].Name < fd.Series[j].Name })
			for _, c := range m.counters {
				fd.Counters = append(fd.Counters, counterDoc{Name: c.Name, N: c.N})
			}
			sort.Slice(fd.Counters, func(i, j int) bool { return fd.Counters[i].Name < fd.Counters[j].Name })
			for _, h := range m.hists {
				hd := histDoc{Name: h.Name, Unit: h.Unit, Count: h.S.N()}
				if hd.Count > 0 {
					hd.Mean = h.S.Mean()
					hd.P50 = h.S.Quantile(0.50)
					hd.P95 = h.S.Quantile(0.95)
					hd.P99 = h.S.Quantile(0.99)
					hd.Max = h.S.Max()
				}
				fd.Hists = append(fd.Hists, hd)
			}
			sort.Slice(fd.Hists, func(i, j int) bool { return fd.Hists[i].Name < fd.Hists[j].Name })
		}
		doc.Fleets = append(doc.Fleets, fd)
	}
	return doc
}

// MetricsJSON exports every fleet's time series, counters, and
// histogram summaries as a canonical JSON document: fleets sorted by
// key, fixed field order, trailing newline.
func (t *Tracer) MetricsJSON() ([]byte, error) {
	return marshalMetrics(t.metricsDoc())
}

func marshalMetrics(doc metricsDoc) ([]byte, error) {
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// ReexportMetrics parses a MetricsJSON document and re-encodes it
// canonically, proving the export round-trips byte-identically.
func ReexportMetrics(data []byte) ([]byte, error) {
	var doc metricsDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("obs: metrics import: %w", err)
	}
	if doc.Schema != metricsSchema {
		return nil, fmt.Errorf("obs: metrics schema %d unsupported (want %d)", doc.Schema, metricsSchema)
	}
	return marshalMetrics(doc)
}

// MetricsCSV exports every fleet's gauge series as flat CSV rows
// (fleet,series,unit,t_us,value), fleets sorted by key.
func (t *Tracer) MetricsCSV() []byte {
	var buf bytes.Buffer
	buf.WriteString("fleet,series,unit,t_us,value\n")
	doc := t.metricsDoc()
	for _, fd := range doc.Fleets {
		for _, sd := range fd.Series {
			for _, p := range sd.Points {
				buf.WriteString(fd.Key)
				buf.WriteByte(',')
				buf.WriteString(sd.Name)
				buf.WriteByte(',')
				buf.WriteString(sd.Unit)
				buf.WriteByte(',')
				buf.WriteString(strconv.FormatFloat(p[0], 'f', -1, 64))
				buf.WriteByte(',')
				buf.WriteString(strconv.FormatFloat(p[1], 'f', -1, 64))
				buf.WriteByte('\n')
			}
		}
	}
	return buf.Bytes()
}
