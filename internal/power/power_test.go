package power

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// testParams mirrors the ZedBoard calibration (the canonical copy lives in
// internal/platform, which this package cannot import).
func testParams() Params {
	return Params{
		DynPerMHz:        (1.44 - 1.14) / (280 - 100),
		StaticAt40:       1.14 - 100*(1.44-1.14)/(280-100),
		StaticTempCoeff:  0.0067,
		VNom:             1.0,
		BoardBaseline:    2.2,
		PSActive:         1.53,
		MeterResolutionW: 0.01,
	}
}

func TestTableIIPowerValues(t *testing.T) {
	// Table II: P_PDR at 40 °C for the six operational frequencies.
	m := NewModel(testParams())
	tests := []struct {
		freqMHz float64
		wantW   float64
	}{
		{100, 1.14},
		{140, 1.23}, // paper: 1.23 (model gives 1.2067+…)
		{180, 1.28},
		{200, 1.30},
		{240, 1.36},
		{280, 1.44},
	}
	for _, tt := range tests {
		got := m.PDRAt(tt.freqMHz, 40)
		if math.Abs(got-tt.wantW) > 0.035 {
			t.Errorf("PDR(%v MHz, 40°C) = %.3f W, want %.2f ± 0.035", tt.freqMHz, got, tt.wantW)
		}
	}
}

func TestDynamicSlopeIndependentOfTemperature(t *testing.T) {
	// Fig. 6's observation: the P(f) slope is the same at every temperature.
	m := NewModel(testParams())
	slopeAt := func(tempC float64) float64 {
		return (m.PDRAt(280, tempC) - m.PDRAt(100, tempC)) / 180
	}
	s40 := slopeAt(40)
	for _, temp := range []float64{60, 80, 100} {
		if s := slopeAt(temp); math.Abs(s-s40) > 1e-12 {
			t.Errorf("slope at %v°C = %v, want %v (temperature-independent)", temp, s, s40)
		}
	}
}

func TestStaticPowerSuperLinearInTemperature(t *testing.T) {
	// Fig. 6's other observation: static power grows more than linearly
	// with temperature: the increment per 20 °C must itself grow.
	m := NewModel(testParams())
	d1 := m.PDRAt(100, 60) - m.PDRAt(100, 40)
	d2 := m.PDRAt(100, 80) - m.PDRAt(100, 60)
	d3 := m.PDRAt(100, 100) - m.PDRAt(100, 80)
	if !(d3 > d2 && d2 > d1) {
		t.Errorf("static increments not super-linear: %v, %v, %v", d1, d2, d3)
	}
}

func TestPerformancePerWattTableII(t *testing.T) {
	// Table II's efficiency column from its own throughput/power columns.
	tests := []struct {
		mbs, w, want float64
	}{
		{399.06, 1.14, 351},
		{558.12, 1.23, 453},
		{716.96, 1.28, 560},
		{781.84, 1.30, 599},
		{786.96, 1.36, 577},
		{790.14, 1.44, 550},
	}
	for _, tt := range tests {
		got := PerformancePerWatt(tt.mbs, tt.w)
		if math.Abs(got-tt.want) > 3.5 {
			t.Errorf("PpW(%v, %v) = %.0f, want %v ± 3.5", tt.mbs, tt.w, got, tt.want)
		}
	}
	if PerformancePerWatt(100, 0) != 0 {
		t.Error("zero power must not divide")
	}
}

func TestMostEfficientPointIs200MHz(t *testing.T) {
	// The headline result: PpW peaks at the 200 MHz knee.
	m := NewModel(testParams())
	paperThroughput := map[float64]float64{
		100: 399.06, 140: 558.12, 180: 716.96, 200: 781.84, 240: 786.96, 280: 790.14,
	}
	bestF, bestPpW := 0.0, 0.0
	for f, tput := range paperThroughput {
		ppw := PerformancePerWatt(tput, m.PDRAt(f, 40))
		if ppw > bestPpW {
			bestF, bestPpW = f, ppw
		}
	}
	if bestF != 200 {
		t.Errorf("most efficient frequency = %v MHz, want 200", bestF)
	}
	if math.Abs(bestPpW-599) > 10 {
		t.Errorf("best PpW = %.0f MB/J, want ≈599", bestPpW)
	}
}

func TestModelLiveProviders(t *testing.T) {
	m := NewModel(testParams())
	freq := 200.0
	temp := 40.0
	active := true
	m.FreqMHz = func() float64 { return freq }
	m.TempC = func() float64 { return temp }
	m.PLActive = func() bool { return active }

	if got, want := m.PDR(), m.PDRAt(200, 40); math.Abs(got-want) > 1e-12 {
		t.Errorf("live PDR = %v, want %v", got, want)
	}
	active = false
	if m.PDR() != 0 {
		t.Error("inactive PL must not dissipate PDR power")
	}
	active = true
	if got := m.Board(); math.Abs(got-(2.2+m.PDRAt(200, 40))) > 1e-12 {
		t.Errorf("Board = %v", got)
	}
	if got := m.ChipHeat(); got <= m.PDR() {
		t.Errorf("ChipHeat %v must include PS power above PDR %v", got, m.PDR())
	}
}

func TestVoltageScalingQuadratic(t *testing.T) {
	m := NewModel(testParams())
	m.FreqMHz = func() float64 { return 200 }
	v := 1.0
	m.Vdd = func() float64 { return v }
	p1 := m.Dynamic()
	v = 1.1
	p2 := m.Dynamic()
	if math.Abs(p2/p1-1.21) > 1e-9 {
		t.Errorf("dynamic power ratio = %v, want 1.21 (V²)", p2/p1)
	}
}

func TestMeterQuantizationAndSubtraction(t *testing.T) {
	k := sim.NewKernel()
	m := NewModel(testParams())
	m.FreqMHz = func() float64 { return 200 }
	m.TempC = func() float64 { return 40 }
	mt := NewMeter(k, m, sim.Millisecond)
	board := mt.ReadBoard()
	pdr := mt.ReadPDR()
	// Quantized to 10 mW.
	if math.Abs(board*100-math.Round(board*100)) > 1e-9 {
		t.Errorf("board reading %v not on 10 mW grid", board)
	}
	if math.Abs(pdr-(board-2.2)) > 0.011 {
		t.Errorf("PDR reading %v inconsistent with board %v − 2.2", pdr, board)
	}
	if math.Abs(pdr-1.30) > 0.02 {
		t.Errorf("PDR @ 200MHz/40°C reads %v, want ≈1.30", pdr)
	}
}

func TestMeterEnergyIntegration(t *testing.T) {
	k := sim.NewKernel()
	m := NewModel(testParams())
	m.FreqMHz = func() float64 { return 100 }
	m.TempC = func() float64 { return 40 }
	mt := NewMeter(k, m, sim.Millisecond)
	k.RunFor(2 * sim.Second)
	want := m.Board() * 2.0
	if math.Abs(mt.EnergyJ()-want) > want*0.01 {
		t.Errorf("energy = %v J, want ≈%v J", mt.EnergyJ(), want)
	}
}

func TestPDRMonotoneProperties(t *testing.T) {
	m := NewModel(testParams())
	// P_PDR is monotone increasing in f at fixed T and in T at fixed f.
	propF := func(a, b uint16, traw uint8) bool {
		f1, f2 := float64(100+a%300), float64(100+b%300)
		if f1 > f2 {
			f1, f2 = f2, f1
		}
		temp := float64(40 + traw%61)
		return m.PDRAt(f1, temp) <= m.PDRAt(f2, temp)+1e-12
	}
	if err := quick.Check(propF, nil); err != nil {
		t.Errorf("not monotone in frequency: %v", err)
	}
	propT := func(fraw uint16, a, b uint8) bool {
		f := float64(100 + fraw%300)
		t1, t2 := float64(40+a%61), float64(40+b%61)
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		return m.PDRAt(f, t1) <= m.PDRAt(f, t2)+1e-12
	}
	if err := quick.Check(propT, nil); err != nil {
		t.Errorf("not monotone in temperature: %v", err)
	}
}
