// Package power models the power dissipation of the Zynq SoC and the
// ZedBoard measurement chain used in Sec. IV-B of the paper: the board's
// current-sense pin-headers, the idle baseline P0 = 2.2 W, and the
// configuration-circuitry contribution
//
//	P_PDR(f,T) = P_dyn(f) + P_static(T)
//
// with dynamic power linear in frequency (slope independent of temperature)
// and static power super-linear in temperature — exactly the structure the
// paper reads off Fig. 6.
package power

import (
	"math"

	"repro/internal/sim"
)

// Params are the calibrated power-model coefficients.
type Params struct {
	// DynPerMHz is the dynamic power slope at nominal voltage, in W/MHz.
	// Calibrated from Table II: (1.44−1.14)/(280−100) = 1.667e-3 W/MHz.
	DynPerMHz float64
	// StaticAt40 is the PDR design's static power at 40 °C in W.
	// Calibrated from Table II's intercept: 1.14 − 0.1667 = 0.9733 W.
	StaticAt40 float64
	// StaticTempCoeff is the exponential leakage coefficient in 1/°C:
	// P_static(T) = StaticAt40 · exp(coeff · (T − 40)).
	StaticTempCoeff float64
	// VNom is the nominal core voltage; dynamic power scales with (V/VNom)².
	VNom float64
	// BoardBaseline is P0: the whole-board power with the Zynq idle and the
	// PL unprogrammed, measured at 40 °C (2.2 W in the paper).
	BoardBaseline float64
	// PSActive is the extra PS-side power while the control program runs.
	// It heats the die but is part of the baseline subtraction story only
	// insofar as the paper folds it into P0; we keep it separate for the
	// thermal coupling.
	PSActive float64
	// MeterResolutionW is the effective resolution of the board's
	// current-sense measurement chain (the ZedBoard's bench meter resolves
	// 10 mW). Zero means an ideal meter.
	MeterResolutionW float64
}

// The coefficients calibrated to Table II / Fig. 6 live in internal/platform.

// Model computes instantaneous powers from live frequency/temperature/state
// providers, so the thermal model and the meter always see consistent values.
type Model struct {
	params Params

	// FreqMHz returns the configuration-path clock in MHz.
	FreqMHz func() float64
	// TempC returns the die temperature in °C.
	TempC func() float64
	// Vdd returns the core voltage in volts (nil ⇒ nominal).
	Vdd func() float64
	// PLActive reports whether the PDR design is loaded and clocked
	// (nil ⇒ always active).
	PLActive func() bool
}

// NewModel builds a model with the given parameters.
func NewModel(p Params) *Model { return &Model{params: p} }

// Params returns the model coefficients.
func (m *Model) Params() Params { return m.params }

func (m *Model) vdd() float64 {
	if m.Vdd == nil {
		return m.params.VNom
	}
	return m.Vdd()
}

func (m *Model) active() bool { return m.PLActive == nil || m.PLActive() }

// Dynamic returns the dynamic (switching) component of P_PDR in W.
func (m *Model) Dynamic() float64 {
	if !m.active() || m.FreqMHz == nil {
		return 0
	}
	v := m.vdd() / m.params.VNom
	return m.params.DynPerMHz * m.FreqMHz() * v * v
}

// Static returns the static (leakage) component of P_PDR in W at the current
// die temperature.
func (m *Model) Static() float64 {
	if !m.active() {
		return 0
	}
	t := 40.0
	if m.TempC != nil {
		t = m.TempC()
	}
	return m.params.StaticAt40 * math.Exp(m.params.StaticTempCoeff*(t-40))
}

// PDR returns P_PDR = dynamic + static, the quantity the paper plots in
// Fig. 6 after subtracting the board baseline.
func (m *Model) PDR() float64 { return m.Dynamic() + m.Static() }

// PDRAt evaluates P_PDR at an explicit operating point, independent of the
// live providers. Used by sweeps.
func (m *Model) PDRAt(freqMHz, tempC float64) float64 {
	return m.params.DynPerMHz*freqMHz +
		m.params.StaticAt40*math.Exp(m.params.StaticTempCoeff*(tempC-40))
}

// Board returns the total board power as the current-sense headers see it:
// baseline + P_PDR (the PS-active overhead is inside the baseline the paper
// subtracts, because P0 was measured with the same software stack idle).
func (m *Model) Board() float64 { return m.params.BoardBaseline + m.PDR() }

// ChipHeat returns the power that heats the die (PS + PDR, excluding board
// peripherals), feeding the thermal model.
func (m *Model) ChipHeat() float64 { return m.params.PSActive + m.PDR() }

// PerformancePerWatt returns the paper's power-efficiency metric in MB/J
// given a throughput in MB/s and a P_PDR in W.
func PerformancePerWatt(throughputMBs, pdrWatts float64) float64 {
	if pdrWatts <= 0 {
		return 0
	}
	return throughputMBs / pdrWatts
}

// EnergyPerMB returns the configuration energy cost in J/MB at an explicit
// operating point: P_PDR(f,T) over the transfer throughput — the reciprocal
// of Table II's MB/J efficiency, evaluated from the model coefficients
// rather than a metered reading. Non-positive throughput returns 0.
func (m *Model) EnergyPerMB(freqMHz, tempC, throughputMBs float64) float64 {
	if throughputMBs <= 0 {
		return 0
	}
	return m.PDRAt(freqMHz, tempC) / throughputMBs
}

// Meter models the ZedBoard current-sense measurement chain: a shunt on the
// 12 V rail read by a bench meter with 10 mW effective resolution, plus a
// simulated-time energy integrator.
type Meter struct {
	kernel *sim.Kernel
	model  *Model

	resolutionW float64
	energyJ     float64
	lastSample  sim.Time
	lastPower   float64
}

// NewMeter attaches a meter to the model and starts integrating energy. The
// reading resolution comes from the model's MeterResolutionW parameter.
func NewMeter(k *sim.Kernel, m *Model, samplePeriod sim.Duration) *Meter {
	mt := &Meter{kernel: k, model: m, resolutionW: m.params.MeterResolutionW, lastSample: k.Now(), lastPower: m.Board()}
	k.NewTicker(samplePeriod, mt.sample)
	return mt
}

func (mt *Meter) sample() {
	now := mt.kernel.Now()
	dt := now.Sub(mt.lastSample).Seconds()
	mt.energyJ += mt.lastPower * dt
	mt.lastSample = now
	mt.lastPower = mt.model.Board()
}

// quantize applies the meter resolution (0 ⇒ ideal meter).
func (mt *Meter) quantize(v float64) float64 {
	if mt.resolutionW <= 0 {
		return v
	}
	return math.Round(v/mt.resolutionW) * mt.resolutionW
}

// ReadBoard returns the board power quantized to the meter resolution.
func (mt *Meter) ReadBoard() float64 {
	return mt.quantize(mt.model.Board())
}

// ReadPDR returns the baseline-subtracted reading, i.e. the paper's
// P_PDR = P_f^T − P0, quantized like the bench measurement.
func (mt *Meter) ReadPDR() float64 {
	return mt.quantize(mt.model.Board() - mt.model.params.BoardBaseline)
}

// EnergyJ returns the energy integrated so far (board-level joules).
func (mt *Meter) EnergyJ() float64 { return mt.energyJ }
