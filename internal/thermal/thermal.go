// Package thermal models the die temperature of the Zynq SoC: a first-order
// RC thermal circuit driven by the chip's own power dissipation plus the
// paper's heat gun (Sec. IV-A), and an XADC-style on-die temperature sensor
// with 12-bit quantization, as read out on the ZedBoard OLED.
package thermal

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// Config describes the thermal circuit.
type Config struct {
	// AmbientC is the room temperature around the board.
	AmbientC float64
	// RThermal is the junction-to-ambient thermal resistance in °C/W.
	// With the ZedBoard heat sink, 5.3 °C/W puts the die at the paper's
	// 40 °C baseline while the ~2.8 W PS+PDR load runs in a 25 °C room.
	RThermal float64
	// Tau is the thermal time constant of the die + heat sink.
	Tau sim.Duration
	// Step is the integration step of the model.
	Step sim.Duration
	// Power returns the chip's current dissipation in watts. May be nil,
	// in which case self-heating is zero.
	Power func() float64
}

// The calibrated circuit values for each board live in internal/platform
// (the ZedBoard: 25 °C room, 5.3 °C/W with its heat sink, 2 s time
// constant, 1 ms integration step).

// Die is the simulated silicon die. It integrates
//
//	dT/dt = (T_ss − T) / τ,   T_ss = ambient_eff + P·Rθ
//
// where ambient_eff includes the heat-gun contribution.
type Die struct {
	cfg    Config
	kernel *sim.Kernel

	tempC    float64
	gunBoost float64 // extra effective ambient from the heat gun
	gun      *HeatGun
}

// NewDie creates a die at steady state for the configured ambient and
// current power, and starts its integration ticker on k.
func NewDie(k *sim.Kernel, cfg Config) *Die {
	if cfg.Step <= 0 || cfg.Tau <= 0 {
		panic("thermal: non-positive step or tau")
	}
	d := &Die{cfg: cfg, kernel: k}
	d.tempC = cfg.AmbientC + d.power()*cfg.RThermal
	k.NewTicker(cfg.Step, d.step)
	return d
}

func (d *Die) power() float64 {
	if d.cfg.Power == nil {
		return 0
	}
	return d.cfg.Power()
}

func (d *Die) step() {
	if d.gun != nil {
		d.gun.servo()
	}
	tss := d.cfg.AmbientC + d.gunBoost + d.power()*d.cfg.RThermal
	alpha := float64(d.cfg.Step) / float64(d.cfg.Tau)
	if alpha > 1 {
		alpha = 1
	}
	d.tempC += alpha * (tss - d.tempC)
}

// TempC returns the true die temperature.
func (d *Die) TempC() float64 { return d.tempC }

// TimeConstant returns the configured thermal time constant (tests use it to
// verify which thermal build — physical or fast — a platform was given).
func (d *Die) TimeConstant() sim.Duration { return d.cfg.Tau }

// SetTempC forces the die temperature (test hook / initial condition).
func (d *Die) SetTempC(c float64) { d.tempC = c }

// Sensor returns the XADC reading of the die temperature: the true value
// passed through the 12-bit transfer function
//
//	code = (T + 273.15) · 4096 / 503.975
//
// and back, i.e. quantized to ~0.123 °C steps.
func (d *Die) Sensor() float64 {
	code := math.Round((d.tempC + 273.15) * 4096 / 503.975)
	if code < 0 {
		code = 0
	}
	if code > 4095 {
		code = 4095
	}
	return code*503.975/4096 - 273.15
}

// HeatGun models the paper's heat gun aimed at the Zynq heat sink with the
// rest of the board at room temperature. It is a servo: the operator watches
// the OLED temperature and modulates the gun until the die sits at the
// requested temperature, which the integral controller below reproduces.
type HeatGun struct {
	die     *Die
	targetC float64
	on      bool
	gain    float64
	maxC    float64
}

// NewHeatGun attaches a heat gun to the die.
func NewHeatGun(d *Die) *HeatGun {
	g := &HeatGun{die: d, gain: 0.02, maxC: 250}
	d.gun = g
	return g
}

// SetTargetDie turns the gun on and servos the die to tempC.
func (g *HeatGun) SetTargetDie(tempC float64) {
	g.targetC = tempC
	g.on = true
}

// Off turns the gun off; the die relaxes back to self-heated steady state.
func (g *HeatGun) Off() { g.on = false }

// On reports whether the gun is active.
func (g *HeatGun) On() bool { return g.on }

// servo is called from the die integration step.
func (g *HeatGun) servo() {
	if !g.on {
		// The gun cools down (boost decays) once switched off.
		g.die.gunBoost *= 0.99
		if g.die.gunBoost < 0.01 {
			g.die.gunBoost = 0
		}
		return
	}
	err := g.targetC - g.die.tempC
	g.die.gunBoost += g.gain * err
	if g.die.gunBoost < 0 {
		g.die.gunBoost = 0
	}
	if g.die.gunBoost > g.maxC {
		g.die.gunBoost = g.maxC
	}
}

// StabilizeAt drives the die to tempC (via the heat gun, or gun-off if the
// target is at/below the self-heated steady state) and runs the kernel until
// the sensor reads within tol of the target or the timeout elapses. It
// returns the achieved temperature and whether it converged.
func (g *HeatGun) StabilizeAt(tempC, tol float64, timeout sim.Duration) (float64, bool) {
	g.SetTargetDie(tempC)
	deadline := g.die.kernel.Now().Add(timeout)
	for g.die.kernel.Now() < deadline {
		g.die.kernel.RunFor(10 * g.die.cfg.Step)
		if math.Abs(g.die.tempC-tempC) <= tol {
			return g.die.tempC, true
		}
	}
	return g.die.tempC, false
}

// String describes the gun state.
func (g *HeatGun) String() string {
	if !g.on {
		return "heatgun(off)"
	}
	return fmt.Sprintf("heatgun(target=%.1f°C boost=%.1f°C)", g.targetC, g.die.gunBoost)
}
