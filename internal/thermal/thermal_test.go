package thermal

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// testConfig mirrors the ZedBoard thermal circuit (the canonical copy lives
// in internal/platform, which this package cannot import).
func testConfig() Config {
	return Config{
		AmbientC: 25,
		RThermal: 5.3,
		Tau:      2 * sim.Second,
		Step:     sim.Millisecond,
	}
}

func TestDieStartsAtSteadyState(t *testing.T) {
	k := sim.NewKernel()
	cfg := testConfig()
	cfg.Power = func() float64 { return 1.25 }
	d := NewDie(k, cfg)
	want := 25 + 1.25*cfg.RThermal
	if math.Abs(d.TempC()-want) > 1e-9 {
		t.Errorf("initial temp = %v, want %v", d.TempC(), want)
	}
}

func TestDieSelfHeatingConverges(t *testing.T) {
	k := sim.NewKernel()
	cfg := testConfig()
	p := 0.0
	cfg.Power = func() float64 { return p }
	d := NewDie(k, cfg)
	if math.Abs(d.TempC()-25) > 1e-9 {
		t.Fatalf("cold start = %v, want 25", d.TempC())
	}
	p = 2.0 // turn on 2 W
	k.RunFor(20 * sim.Second)
	want := 25 + 2*cfg.RThermal
	if math.Abs(d.TempC()-want) > 0.1 {
		t.Errorf("steady state = %v, want %v", d.TempC(), want)
	}
}

func TestDieExponentialApproach(t *testing.T) {
	k := sim.NewKernel()
	cfg := testConfig()
	p := 0.0
	cfg.Power = func() float64 { return p }
	d := NewDie(k, cfg)
	p = 2.0
	k.RunFor(cfg.Tau) // one time constant
	// After one τ the response reaches ≈63.2% of the 2W·Rθ step.
	want := 25 + 2*cfg.RThermal*(1-math.Exp(-1))
	if math.Abs(d.TempC()-want) > 0.3 {
		t.Errorf("after 1τ temp = %v, want ≈%v", d.TempC(), want)
	}
}

func TestSensorQuantization(t *testing.T) {
	k := sim.NewKernel()
	d := NewDie(k, testConfig())
	d.SetTempC(40.05)
	r := d.Sensor()
	// Reading must be within one LSB (≈0.123 °C) of the true value…
	if math.Abs(r-40.05) > 0.124 {
		t.Errorf("sensor = %v, want within 1 LSB of 40.05", r)
	}
	// …and must sit exactly on the quantization grid.
	code := (r + 273.15) * 4096 / 503.975
	if math.Abs(code-math.Round(code)) > 1e-6 {
		t.Errorf("sensor %v not on ADC grid (code %v)", r, code)
	}
}

func TestSensorClampsToADCRange(t *testing.T) {
	k := sim.NewKernel()
	d := NewDie(k, testConfig())
	d.SetTempC(-300) // non-physical, must clamp to code 0
	if got := d.Sensor(); math.Abs(got-(-273.15)) > 1e-6 {
		t.Errorf("low clamp = %v", got)
	}
	d.SetTempC(1000)
	if got := d.Sensor(); got > 4095*503.975/4096-273.15+1e-6 {
		t.Errorf("high clamp = %v", got)
	}
}

func TestHeatGunReachesPaperTemperatures(t *testing.T) {
	// The paper stresses the die from 40 °C to 100 °C in 10 °C steps.
	k := sim.NewKernel()
	cfg := testConfig()
	cfg.Power = func() float64 { return 1.2 }
	d := NewDie(k, cfg)
	g := NewHeatGun(d)
	for temp := 40.0; temp <= 100; temp += 10 {
		got, ok := g.StabilizeAt(temp, 0.5, 2*sim.Minute)
		if !ok {
			t.Fatalf("did not stabilize at %v°C (got %v)", temp, got)
		}
		if math.Abs(got-temp) > 0.5 {
			t.Errorf("target %v°C: stabilized at %v", temp, got)
		}
	}
}

func TestHeatGunOffRelaxes(t *testing.T) {
	k := sim.NewKernel()
	cfg := testConfig()
	cfg.Power = func() float64 { return 1.0 }
	d := NewDie(k, cfg)
	g := NewHeatGun(d)
	if _, ok := g.StabilizeAt(90, 0.5, 2*sim.Minute); !ok {
		t.Fatal("did not reach 90°C")
	}
	g.Off()
	k.RunFor(60 * sim.Second)
	want := 25 + 1.0*cfg.RThermal
	if math.Abs(d.TempC()-want) > 2 {
		t.Errorf("after gun off temp = %v, want ≈%v", d.TempC(), want)
	}
	if g.On() {
		t.Error("gun should report off")
	}
}

func TestHeatGunString(t *testing.T) {
	k := sim.NewKernel()
	d := NewDie(k, testConfig())
	g := NewHeatGun(d)
	if g.String() != "heatgun(off)" {
		t.Errorf("String = %q", g.String())
	}
	g.SetTargetDie(80)
	if g.String() == "heatgun(off)" {
		t.Error("String should report target when on")
	}
}

func TestDiePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDie(sim.NewKernel(), Config{Step: 0, Tau: sim.Second})
}

func TestSensorMonotoneProperty(t *testing.T) {
	// Property: the quantized sensor is monotone non-decreasing in the true
	// temperature.
	k := sim.NewKernel()
	d := NewDie(k, testConfig())
	prop := func(a, b uint8) bool {
		t1 := 20 + float64(a)/2 // 20..147.5
		t2 := 20 + float64(b)/2
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		d.SetTempC(t1)
		r1 := d.Sensor()
		d.SetTempC(t2)
		r2 := d.Sensor()
		return r1 <= r2+1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
