// Package crcmon models the paper's "CRC Bitstream Read-Back" block: a
// hardware monitor that continuously reads the configuration memory back
// through the ICAP in the background, checks it against the golden CRC of
// the loaded bitstream, and asserts an interrupt with the verdict. It is the
// mechanism that makes the over-clocked system *robust*: a failed
// over-clocked transfer is detected rather than silently trusted.
//
// The monitor lives in the same over-clocked domain as the ICAP, so at
// control-path-violating frequencies its interrupt disappears too — which is
// exactly what the paper reports at 310 MHz ("the CRC block never asserted
// the interrupt").
package crcmon

import (
	"repro/internal/bitstream"
	"repro/internal/fabric"
	"repro/internal/icap"
	"repro/internal/sim"
	"repro/internal/timing"
)

// Result is one completed scan verdict.
type Result struct {
	// Region is the monitored partition.
	Region string
	// Valid reports whether the read-back CRC matched the golden CRC.
	Valid bool
	// ScanNo counts completed scans of this region.
	ScanNo int
	// At is the simulated completion time.
	At sim.Time
	// IRQDelivered reports whether the interrupt actually reached the PS
	// (false when the control path was violating timing at scan end).
	IRQDelivered bool
}

// Monitor continuously scans one region.
type Monitor struct {
	kernel *sim.Kernel
	port   *icap.Port
	tmodel *timing.Model
	tempC  func() float64
	vdd    func() float64

	region    fabric.Region
	golden    uint32
	hasGolden bool

	// ChunkFrames is how many frames each read-back slice covers; smaller
	// chunks yield the port to foreground transfers sooner.
	ChunkFrames int

	// OnResult receives every scan verdict whose interrupt was delivered.
	OnResult func(Result)

	suspended bool
	running   bool
	scanNo    int
	gen       int // scan generation; stale chains abandon themselves
	last      Result
	hasLast   bool
}

// Config bundles Monitor dependencies.
type Config struct {
	Kernel *sim.Kernel
	Port   *icap.Port
	Timing *timing.Model
	TempC  func() float64
	Vdd    func() float64
	Region fabric.Region
}

// New creates a monitor for the region. Call Start to begin scanning.
func New(cfg Config) *Monitor {
	if cfg.Kernel == nil || cfg.Port == nil || cfg.Timing == nil {
		panic("crcmon: missing dependency")
	}
	tempC := cfg.TempC
	if tempC == nil {
		tempC = func() float64 { return 40 }
	}
	vdd := cfg.Vdd
	if vdd == nil {
		nom := cfg.Timing.VNom
		vdd = func() float64 { return nom }
	}
	return &Monitor{
		kernel:      cfg.Kernel,
		port:        cfg.Port,
		tmodel:      cfg.Timing,
		tempC:       tempC,
		vdd:         vdd,
		region:      cfg.Region,
		ChunkFrames: 32,
	}
}

// SetGolden installs the reference CRC for the region, computed from the
// bitstream that was (supposed to be) loaded.
func (m *Monitor) SetGolden(frames [][]uint32) {
	m.SetGoldenCRC(bitstream.FrameCRC(frames))
}

// SetGoldenCRC installs a precomputed reference CRC (bitstreams cache
// theirs, so repeated loads of the same image skip the recompute).
func (m *Monitor) SetGoldenCRC(crc uint32) {
	m.golden = crc
	m.hasGolden = true
}

// Golden returns the installed reference CRC.
func (m *Monitor) Golden() (uint32, bool) { return m.golden, m.hasGolden }

// Suspend pauses scanning (the PR controller suspends read-back during an
// active configuration write, as readback interleaved with writes is
// undefined on real devices).
func (m *Monitor) Suspend() { m.suspended = true }

// Resume restarts scanning after Suspend.
func (m *Monitor) Resume() {
	wasSuspended := m.suspended
	m.suspended = false
	if m.running && wasSuspended {
		m.kernel.Schedule(0, m.scan)
	}
}

// Start begins continuous background scanning.
func (m *Monitor) Start() {
	if m.running {
		return
	}
	m.running = true
	if !m.suspended {
		m.kernel.Schedule(0, m.scan)
	}
}

// Stop halts scanning after the in-flight chunk.
func (m *Monitor) Stop() { m.running = false }

// Last returns the most recent verdict (polled by the PS when no interrupt
// arrives — how the paper established "not valid" at 320/360 MHz).
func (m *Monitor) Last() (Result, bool) { return m.last, m.hasLast }

// ScansCompleted returns the number of full scans finished.
func (m *Monitor) ScansCompleted() int { return m.scanNo }

// scan performs one full pass over the region in chunks, folding each
// read-back frame into a running CRC as it streams out of the port — the
// monitor never materialises the region image.
func (m *Monitor) scan() {
	if !m.running || m.suspended || !m.hasGolden {
		return
	}
	m.gen++
	gen := m.gen
	dev := m.port.Memory().Device()
	n := dev.RegionFrames(m.region)
	addr := m.region.RegionStart()

	// The hasher is scan-local on purpose: an abandoned scan's in-flight
	// read-back chunk still delivers its frames, and those must not fold
	// into a successor scan's checksum.
	var h bitstream.FrameCRCHasher
	visit := func(frame []uint32) { h.Fold(frame) }
	var step func(done int)
	step = func(done int) {
		if !m.running || m.suspended || m.gen != gen {
			return // abandoned scan; Resume starts a fresh one
		}
		if done >= n {
			m.finish(h.Sum())
			return
		}
		chunk := m.ChunkFrames
		if chunk > n-done {
			chunk = n - done
		}
		m.port.ReadbackVisit(addr, chunk, visit, func(err error) {
			if err != nil {
				// Region geometry errors are programming bugs.
				panic(err)
			}
			// Advance addr past the chunk.
			for i := 0; i < chunk && done+i+1 < n; i++ {
				var nerr error
				addr, nerr = dev.Next(addr)
				if nerr != nil {
					panic(nerr)
				}
			}
			step(done + chunk)
		})
	}
	step(0)
}

// finish computes the verdict and delivers the interrupt if the control
// path allows.
func (m *Monitor) finish(got uint32) {
	outcome := m.tmodel.Classify(m.port.Domain().Freq(), m.tempC(), m.vdd())
	valid := got == m.golden && outcome != timing.Corrupt
	m.scanNo++
	res := Result{
		Region: m.region.Name,
		Valid:  valid,
		ScanNo: m.scanNo,
		At:     m.kernel.Now(),
		// The interrupt path only works when the whole block meets timing;
		// at 310 MHz and above the paper saw no interrupt and had to poll.
		IRQDelivered: outcome == timing.OK,
	}
	m.last = res
	m.hasLast = true
	if res.IRQDelivered && m.OnResult != nil {
		m.OnResult(res)
	}
	// Continuous background operation: immediately begin the next scan.
	if m.running && !m.suspended {
		m.kernel.Schedule(0, m.scan)
	}
}
