package crcmon

import (
	"testing"

	"repro/internal/bitstream"
	"repro/internal/clock"
	"repro/internal/fabric"
	"repro/internal/icap"
	"repro/internal/platform"
	"repro/internal/sim"
)

type rig struct {
	kernel *sim.Kernel
	domain *clock.Domain
	dev    *fabric.Device
	mem    *fabric.Memory
	port   *icap.Port
	mon    *Monitor
	rp     fabric.Region
	tempC  float64
}

func newRig(t *testing.T, freq sim.Hz) *rig {
	t.Helper()
	r := &rig{
		kernel: sim.NewKernel(),
		domain: clock.NewDomain("icap", freq),
		dev:    platform.Default().NewDevice(),
		tempC:  40,
	}
	r.mem = fabric.NewMemory(r.dev)
	tm := platform.Default().TimingModel()
	r.port = icap.New(icap.Config{
		Kernel: r.kernel,
		Domain: r.domain,
		Memory: r.mem,
		Timing: tm,
		TempC:  func() float64 { return r.tempC },
		Seed:   2,
	})
	r.rp = platform.Default().RPs(r.dev)[0]
	r.mon = New(Config{
		Kernel: r.kernel,
		Port:   r.port,
		Timing: tm,
		TempC:  func() float64 { return r.tempC },
		Region: r.rp,
	})
	return r
}

func (r *rig) loadRegion(t *testing.T, seed uint64) [][]uint32 {
	t.Helper()
	frames := make([][]uint32, r.dev.RegionFrames(r.rp))
	rng := sim.NewRNG(seed)
	addr := r.rp.RegionStart()
	for i := range frames {
		f := make([]uint32, fabric.FrameWords)
		for w := range f {
			f[w] = rng.Uint32()
		}
		frames[i] = f
		if err := r.mem.WriteFrame(addr, f); err != nil {
			t.Fatal(err)
		}
		if i+1 < len(frames) {
			var err error
			addr, err = r.dev.Next(addr)
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	return frames
}

func TestScanReportsValidForMatchingMemory(t *testing.T) {
	r := newRig(t, 200*sim.MHz)
	frames := r.loadRegion(t, 1)
	r.mon.SetGolden(frames)
	var results []Result
	r.mon.OnResult = func(res Result) {
		results = append(results, res)
		if len(results) >= 2 {
			r.mon.Stop()
		}
	}
	r.mon.Start()
	r.kernel.RunFor(20 * sim.Millisecond)
	if len(results) < 2 {
		t.Fatalf("got %d results, want ≥2 (continuous scanning)", len(results))
	}
	for _, res := range results {
		if !res.Valid {
			t.Errorf("scan %d invalid for matching memory", res.ScanNo)
		}
		if !res.IRQDelivered {
			t.Errorf("scan %d IRQ not delivered at 200 MHz", res.ScanNo)
		}
		if res.Region != "RP1" {
			t.Errorf("region = %q", res.Region)
		}
	}
}

func TestScanDetectsCorruption(t *testing.T) {
	r := newRig(t, 200*sim.MHz)
	frames := r.loadRegion(t, 2)
	r.mon.SetGolden(frames)
	// Corrupt one word directly in configuration memory.
	mid := frames[600]
	mid[50] ^= 1 << 9
	if err := r.mem.WriteFrame(mustAddr(t, r, 600), mid); err != nil {
		t.Fatal(err)
	}
	var got *Result
	r.mon.OnResult = func(res Result) {
		got = &res
		r.mon.Stop()
	}
	r.mon.Start()
	r.kernel.RunFor(20 * sim.Millisecond)
	if got == nil {
		t.Fatal("no scan completed")
	}
	if got.Valid {
		t.Error("corrupted memory reported valid")
	}
}

func mustAddr(t *testing.T, r *rig, offset int) fabric.FrameAddr {
	t.Helper()
	addr := r.rp.RegionStart()
	for i := 0; i < offset; i++ {
		var err error
		addr, err = r.dev.Next(addr)
		if err != nil {
			t.Fatal(err)
		}
	}
	return addr
}

func TestScanDurationMatchesClock(t *testing.T) {
	r := newRig(t, 100*sim.MHz)
	frames := r.loadRegion(t, 3)
	r.mon.SetGolden(frames)
	var at sim.Time
	r.mon.OnResult = func(res Result) {
		at = res.At
		r.mon.Stop()
	}
	start := r.kernel.Now()
	r.mon.Start()
	r.kernel.RunFor(20 * sim.Millisecond)
	// One scan = 1308 frames × 101 words at 100 MHz ≈ 1321 µs.
	want := sim.Cycles(int64(1308*fabric.FrameWords), 100*sim.MHz)
	elapsed := at.Sub(start)
	if elapsed < want || elapsed > want+sim.Millisecond {
		t.Errorf("scan took %v, want ≈%v", elapsed, want)
	}
}

func TestNoInterruptAt310MHz(t *testing.T) {
	// The paper's observation: at 310 MHz the CRC block never asserts its
	// interrupt, but the polled status still shows valid data at 40 °C.
	r := newRig(t, 310*sim.MHz)
	frames := r.loadRegion(t, 4)
	r.mon.SetGolden(frames)
	fired := false
	r.mon.OnResult = func(Result) { fired = true }
	r.mon.Start()
	r.kernel.RunFor(10 * sim.Millisecond)
	r.mon.Stop()
	if fired {
		t.Error("interrupt fired at 310 MHz despite control-path violation")
	}
	last, ok := r.mon.Last()
	if !ok {
		t.Fatal("no scan recorded")
	}
	if !last.Valid {
		t.Error("polled status should read valid at 310 MHz / 40 °C")
	}
	if last.IRQDelivered {
		t.Error("IRQDelivered should be false")
	}
}

func TestInvalidAtCorruptingFrequency(t *testing.T) {
	// At 320 MHz the data path (including read-back) violates timing: the
	// scan verdict must be invalid even if memory happens to match.
	r := newRig(t, 320*sim.MHz)
	frames := r.loadRegion(t, 5)
	r.mon.SetGolden(frames)
	r.mon.Start()
	r.kernel.RunFor(10 * sim.Millisecond)
	r.mon.Stop()
	last, ok := r.mon.Last()
	if !ok {
		t.Fatal("no scan recorded")
	}
	if last.Valid {
		t.Error("scan at a corrupting frequency must not report valid")
	}
}

func TestSuspendResumeAroundForegroundTransfer(t *testing.T) {
	r := newRig(t, 200*sim.MHz)
	frames := r.loadRegion(t, 6)
	r.mon.SetGolden(frames)
	r.mon.Start()
	r.kernel.RunFor(100 * sim.Microsecond) // scanning under way
	r.mon.Suspend()
	busyBefore := r.port.BusyUntil()
	r.kernel.RunFor(200 * sim.Microsecond)
	// While suspended, the monitor must not reserve more port time than the
	// chunk that was already in flight.
	if r.port.BusyUntil() > busyBefore {
		t.Error("monitor reserved port time while suspended")
	}
	r.mon.Resume()
	got := 0
	r.mon.OnResult = func(Result) { got++; r.mon.Stop() }
	r.kernel.RunFor(20 * sim.Millisecond)
	if got == 0 {
		t.Error("no scan completed after resume")
	}
}

func TestScanWithoutGoldenIsNoop(t *testing.T) {
	r := newRig(t, 200*sim.MHz)
	r.mon.Start()
	r.kernel.RunFor(10 * sim.Millisecond)
	if r.mon.ScansCompleted() != 0 {
		t.Error("scan ran without a golden reference")
	}
}

func TestGoldenAccessor(t *testing.T) {
	r := newRig(t, 200*sim.MHz)
	if _, ok := r.mon.Golden(); ok {
		t.Error("golden should be unset initially")
	}
	frames := r.loadRegion(t, 7)
	r.mon.SetGolden(frames)
	got, ok := r.mon.Golden()
	if !ok || got != bitstream.FrameCRC(frames) {
		t.Error("golden accessor wrong")
	}
}
