package board

import (
	"strings"
	"testing"
	"unicode/utf8"

	"repro/internal/boot"
	"repro/internal/sim"
	"repro/internal/zynq"
)

func newBoard(t *testing.T) *Board {
	t.Helper()
	p, err := zynq.NewPlatform(zynq.Options{Seed: 1, FastThermal: true})
	if err != nil {
		t.Fatal(err)
	}
	return New(p)
}

func TestBootRequiresBootBin(t *testing.T) {
	b := newBoard(t)
	if err := b.Boot(); err == nil {
		t.Fatal("boot without boot.bin must fail")
	}
	b.SD.Store("boot.bin", []byte{1, 2, 3})
	if err := b.Boot(); err != nil {
		t.Fatal(err)
	}
	if !b.Booted() {
		t.Error("not booted")
	}
	if !b.Platform.PLConfigured() {
		t.Error("static design not loaded at boot")
	}
	if b.OLED.Line(0) == "" {
		t.Error("OLED should show status after boot")
	}
}

func TestSDCardStoreLoadList(t *testing.T) {
	sd := NewSDCard()
	sd.Store("a.bit", []byte{1})
	sd.Store("b.bit", []byte{2})
	got, err := sd.Load("a.bit")
	if err != nil || len(got) != 1 {
		t.Errorf("Load: %v %v", got, err)
	}
	if _, err := sd.Load("missing"); err == nil {
		t.Error("missing file should fail")
	}
	files := sd.Files()
	if len(files) != 2 || files[0] != "a.bit" || files[1] != "b.bit" {
		t.Errorf("Files = %v", files)
	}
}

func TestSwitchesSelectFrequency(t *testing.T) {
	b := newBoard(t)
	for i, want := range b.SwitchTable() {
		b.SetSwitches(uint8(i))
		got, err := b.SelectedFrequencyMHz()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("switch %d → %v MHz, want %v", i, got, want)
		}
	}
	b.SetSwitches(200)
	if _, err := b.SelectedFrequencyMHz(); err == nil {
		t.Error("out-of-table switches should error")
	}
}

func TestButtonPressInvokesHandlerLater(t *testing.T) {
	b := newBoard(t)
	pressed := false
	b.OnButton(BtnLoadA, func() { pressed = true })
	b.Press(BtnLoadA)
	if pressed {
		t.Error("handler ran synchronously")
	}
	b.Platform.Kernel.RunFor(2 * sim.Millisecond)
	if !pressed {
		t.Error("handler never ran")
	}
	b.Press(BtnLoadB) // no handler installed: must not panic
}

func TestOLEDTruncatesAndBounds(t *testing.T) {
	o := &OLED{}
	o.SetLine(0, "a very long line that exceeds the panel width")
	if len(o.Line(0)) != 21 {
		t.Errorf("line length = %d", len(o.Line(0)))
	}
	o.SetLine(-1, "x")
	o.SetLine(9, "x")
	if o.Line(-1) != "" || o.Line(9) != "" {
		t.Error("out-of-range lines should read empty")
	}
	o.SetLine(1, "two")
	if !strings.Contains(o.String(), "two") {
		t.Error("String missing content")
	}
}

func TestOLEDTruncatesOnRuneBoundary(t *testing.T) {
	o := &OLED{}
	// 20 ASCII bytes followed by a 2-byte rune: byte 21 lands mid-rune, so a
	// naive s[:21] would split "°" into an invalid byte.
	s := strings.Repeat("a", 20) + "°C"
	o.SetLine(0, s)
	got := o.Line(0)
	if !utf8.ValidString(got) {
		t.Fatalf("truncated line is not valid UTF-8: %q", got)
	}
	if got != strings.Repeat("a", 20) {
		t.Errorf("line = %q, want the 20 a's with the split rune dropped", got)
	}
	if len(got) > 21 {
		t.Errorf("line length = %d bytes, want ≤ 21", len(got))
	}
	// A line of pure multi-byte runes must also cut cleanly.
	o.SetLine(1, strings.Repeat("°", 15)) // 30 bytes
	if l := o.Line(1); !utf8.ValidString(l) || len(l) > 21 || len(l)%2 != 0 {
		t.Errorf("multi-byte line = %q (%d bytes)", l, len(l))
	}
}

func TestShowStatusRendersPaperLayout(t *testing.T) {
	b := newBoard(t)
	b.ShowStatus(280, true, 669.20)
	if !strings.Contains(b.OLED.Line(0), "280MHz") {
		t.Errorf("line0 = %q", b.OLED.Line(0))
	}
	if b.OLED.Line(1) != "CRC: valid" {
		t.Errorf("line1 = %q", b.OLED.Line(1))
	}
	if !strings.Contains(b.OLED.Line(2), "669.20us") {
		t.Errorf("line2 = %q", b.OLED.Line(2))
	}
	b.ShowStatus(310, true, 0)
	if !strings.Contains(b.OLED.Line(2), "N/A") {
		t.Errorf("hang line2 = %q", b.OLED.Line(2))
	}
	b.ShowStatus(320, false, 0)
	if b.OLED.Line(1) != "CRC: NOT valid" {
		t.Errorf("invalid line1 = %q", b.OLED.Line(1))
	}
}

func TestMeterReadsBoardPower(t *testing.T) {
	b := newBoard(t)
	b.SD.Store("boot.bin", []byte{0})
	if err := b.Boot(); err != nil {
		t.Fatal(err)
	}
	pdr := b.Meter.ReadPDR()
	if pdr < 0.9 || pdr > 1.3 {
		t.Errorf("P_PDR after boot = %v W, want ≈1.0–1.2 (100 MHz)", pdr)
	}
}

func TestBootWithStructuredImage(t *testing.T) {
	b := newBoard(t)
	img, err := boot.Build([]boot.Partition{
		{Name: boot.PartFSBL, Data: make([]byte, 128*1024)},
		{Name: boot.PartBitstream, Data: make([]byte, 3272400)},
		{Name: boot.PartApp, Data: make([]byte, 600*1024)},
	})
	if err != nil {
		t.Fatal(err)
	}
	b.SD.Store("boot.bin", img)
	start := b.Platform.Kernel.Now()
	if err := b.Boot(); err != nil {
		t.Fatal(err)
	}
	elapsed := b.Platform.Kernel.Now().Sub(start)
	// ~4 MB at 20 MB/s ≈ 200 ms SD streaming + ~22.6 ms PCAP.
	if elapsed < 200*sim.Millisecond || elapsed > 260*sim.Millisecond {
		t.Errorf("boot took %v", elapsed)
	}
}

func TestBootRejectsCorruptImage(t *testing.T) {
	b := newBoard(t)
	img, err := boot.Build([]boot.Partition{
		{Name: boot.PartFSBL, Data: []byte("fsbl")},
	})
	if err != nil {
		t.Fatal(err)
	}
	img[len(img)-1] ^= 0xFF // corrupt the FSBL payload
	b.SD.Store("boot.bin", img)
	if err := b.Boot(); err == nil {
		t.Error("corrupt boot image accepted")
	}
	if b.Booted() {
		t.Error("board booted from a corrupt image")
	}
}
