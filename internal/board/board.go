// Package board models the evaluation board around the Zynq: the slide
// switches that select the over-clock frequency in the paper's test setup,
// the push buttons that start ICAP operations, the OLED status display
// (Fig. 3), the SD card the system boots from, and the current-sense
// headers feeding the power measurements. The board's calibration (switch
// table, SD rate, meter resolution) comes from the platform profile the
// underlying zynq.Platform was built with.
package board

import (
	"fmt"
	"sort"
	"strings"
	"unicode/utf8"

	"repro/internal/boot"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/zynq"
)

// Button identifies a push button.
type Button int

// The two buttons the test flow uses (Fig. 4): load bitstream A or B.
const (
	BtnLoadA Button = iota
	BtnLoadB
)

// OLED is the 128×32 status display modelled as 4 lines of text.
type OLED struct {
	lines [4]string
}

// oledWidth is the panel's line width in bytes.
const oledWidth = 21

// SetLine writes one display line (truncated to 21 bytes like the panel).
// Truncation never splits a multi-byte UTF-8 rune: the cut backs up to the
// previous rune boundary so a line like "T=39.9°C…" cannot end in a mangled
// partial character.
func (o *OLED) SetLine(i int, s string) {
	if i < 0 || i >= len(o.lines) {
		return
	}
	if len(s) > oledWidth {
		cut := oledWidth
		for cut > 0 && !utf8.RuneStart(s[cut]) {
			cut--
		}
		s = s[:cut]
	}
	o.lines[i] = s
}

// Line reads one display line.
func (o *OLED) Line(i int) string {
	if i < 0 || i >= len(o.lines) {
		return ""
	}
	return o.lines[i]
}

// String renders the whole panel.
func (o *OLED) String() string { return strings.Join(o.lines[:], "\n") }

// SDCard is the boot medium: a name → content store holding the application
// and the partial bitstreams.
type SDCard struct {
	files map[string][]byte
}

// NewSDCard creates an empty card.
func NewSDCard() *SDCard { return &SDCard{files: make(map[string][]byte)} }

// Store writes a file to the card.
func (sd *SDCard) Store(name string, data []byte) { sd.files[name] = data }

// Load reads a file from the card.
func (sd *SDCard) Load(name string) ([]byte, error) {
	data, ok := sd.files[name]
	if !ok {
		return nil, fmt.Errorf("board: no file %q on SD card", name)
	}
	return data, nil
}

// Files lists the card contents.
func (sd *SDCard) Files() []string {
	out := make([]string, 0, len(sd.files))
	for name := range sd.files {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Board is the assembled evaluation board.
type Board struct {
	Platform *zynq.Platform
	OLED     *OLED
	SD       *SDCard
	Meter    *power.Meter

	switches uint8
	onButton map[Button]func()
	booted   bool
}

// New builds a board around a platform and starts the power meter.
func New(p *zynq.Platform) *Board {
	return &Board{
		Platform: p,
		OLED:     &OLED{},
		SD:       NewSDCard(),
		Meter:    power.NewMeter(p.Kernel, p.Power, sim.Millisecond),
		onButton: make(map[Button]func()),
	}
}

// SwitchTable maps the slide switches to over-clock frequencies, as in the
// paper's test setup ("we select the over-clocking frequency by the 8
// switches"). Switch value = index into the platform profile's tested
// frequency list.
func (b *Board) SwitchTable() []float64 { return b.Platform.Profile.IO.SwitchTableMHz }

// Boot models powering the board with the SD card inserted: the boot ROM
// reads boot.bin, the FSBL brings up the PS and the PCAP loads the static
// design. A structured boot image (package boot) gets its load time from
// its actual partition sizes and its checksums verified; an opaque
// application blob falls back to a nominal 50 ms load.
func (b *Board) Boot() error {
	raw, err := b.SD.Load("boot.bin")
	if err != nil {
		return fmt.Errorf("board: cannot boot: %w", err)
	}
	if img, perr := boot.Parse(raw); perr == nil {
		b.Platform.Kernel.RunFor(sim.FromSeconds(float64(img.TotalBytes()) / b.Platform.Profile.IO.SDBytesPerSec))
	} else if len(raw) >= 8 && string(raw[:8]) == "ZBOOTIMG" {
		// It claimed to be a boot image but failed validation: refuse, as
		// the boot ROM would.
		return fmt.Errorf("board: %w", perr)
	} else {
		b.Platform.Kernel.RunFor(50 * sim.Millisecond)
	}
	b.Platform.ConfigureStatic()
	b.booted = true
	b.OLED.SetLine(0, "PDR test ready")
	return nil
}

// Booted reports boot completion.
func (b *Board) Booted() bool { return b.booted }

// SetSwitches sets the 8 slide switches.
func (b *Board) SetSwitches(v uint8) { b.switches = v }

// Switches reads the slide switches.
func (b *Board) Switches() uint8 { return b.switches }

// SelectedFrequencyMHz decodes the switch setting through the profile's
// switch table.
func (b *Board) SelectedFrequencyMHz() (float64, error) {
	table := b.SwitchTable()
	if int(b.switches) >= len(table) {
		return 0, fmt.Errorf("board: switch value %d beyond table (%d entries)", b.switches, len(table))
	}
	return table[b.switches], nil
}

// OnButton installs a press handler.
func (b *Board) OnButton(btn Button, fn func()) { b.onButton[btn] = fn }

// Press pushes a button (debounced: the handler runs once, 1 ms later, as a
// human-scale event).
func (b *Board) Press(btn Button) {
	fn, ok := b.onButton[btn]
	if !ok {
		return
	}
	b.Platform.Kernel.Schedule(sim.Millisecond, fn)
}

// ShowStatus renders the paper's OLED layout: frequency and temperature,
// CRC verdict, transfer time.
func (b *Board) ShowStatus(freqMHz float64, crcOK bool, latencyUS float64) {
	b.OLED.SetLine(0, fmt.Sprintf("f=%3.0fMHz T=%4.1fC", freqMHz, b.Platform.Die.Sensor()))
	if crcOK {
		b.OLED.SetLine(1, "CRC: valid")
	} else {
		b.OLED.SetLine(1, "CRC: NOT valid")
	}
	if latencyUS > 0 {
		b.OLED.SetLine(2, fmt.Sprintf("t=%.2fus", latencyUS))
	} else {
		b.OLED.SetLine(2, "t=N/A no interrupt")
	}
}
