package experiments

import (
	"context"
	"strconv"
	"strings"
	"testing"

	"repro/internal/platform"
)

// TestXplatSweepsAllBoards runs the full E10 scenario: one shard per
// registered platform board, merged into one table. It is the acceptance
// check for the cross-device story — the knee must move with the memory-side
// model.
func TestXplatSweepsAllBoards(t *testing.T) {
	s, ok := Lookup("xplat")
	if !ok || s.ID != "E10" {
		t.Fatalf("xplat alias = %+v, %v", s, ok)
	}
	boards := platform.Boards()
	if len(boards) < 3 {
		t.Fatalf("only %d registered boards; the scenario needs ≥3", len(boards))
	}
	rep, err := RunSequential(context.Background(), s, Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}

	// Every board contributes one row per grid frequency.
	rows := map[string]int{}
	for _, row := range rep.Rows {
		rows[row[0]]++
	}
	wantRows := 0
	for _, b := range boards {
		if rows[b.Name] != len(b.IO.SwitchTableMHz) {
			t.Errorf("%s rows = %d, want %d (its switch table)", b.Name, rows[b.Name], len(b.IO.SwitchTableMHz))
		}
		wantRows += len(b.IO.SwitchTableMHz)
	}
	if len(rep.Rows) != wantRows {
		t.Errorf("total rows = %d, want %d", len(rep.Rows), wantRows)
	}
	if len(rep.Series) != len(boards) {
		t.Errorf("series = %d, want one per board", len(rep.Series))
	}

	// The measured plateau (max operational throughput) must order with the
	// memory models: zybo < zedboard < zc706.
	plateau := map[string]float64{}
	for _, row := range rep.Rows {
		if row[3] == "N/A" {
			continue
		}
		v, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatalf("bad throughput cell %q: %v", row[3], err)
		}
		if v > plateau[row[0]] {
			plateau[row[0]] = v
		}
	}
	if !(plateau["zybo-z7-10"] < plateau["zedboard"] && plateau["zedboard"] < plateau["zc706"]) {
		t.Errorf("plateau order wrong: %v", plateau)
	}
	// The ZedBoard rows must still show Table I's plateau (≈790 MB/s).
	if p := plateau["zedboard"]; p < 785 || p > 795 {
		t.Errorf("zedboard plateau = %.2f, want ≈790", p)
	}

	// One knee-decomposition note per board plus the summary line.
	if len(rep.Notes) != len(boards)+1 {
		t.Errorf("notes = %d, want %d", len(rep.Notes), len(boards)+1)
	}
	for _, b := range boards {
		found := false
		for _, n := range rep.Notes {
			if strings.HasPrefix(n, b.Name+" (") && strings.Contains(n, "memory model predicts knee") {
				found = true
			}
		}
		if !found {
			t.Errorf("no knee note for %s: %v", b.Name, rep.Notes)
		}
	}
}

// TestXplatHonoursFrequencyOverride keeps the campaign grid override
// working for the cross-platform sweep.
func TestXplatHonoursFrequencyOverride(t *testing.T) {
	s, _ := Lookup("E10")
	rep, err := RunSequential(context.Background(), s, Config{Seed: 42, Freqs: []float64{100, 200}})
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * len(platform.Boards()); len(rep.Rows) != want {
		t.Errorf("override rows = %d, want %d", len(rep.Rows), want)
	}
}

// TestEnvBuildsOnEveryBoard proves the whole Env construction path — boot,
// static configuration, standard bitstream — works for every registered
// profile, not just the default.
func TestEnvBuildsOnEveryBoard(t *testing.T) {
	for _, name := range platform.Names() {
		env, err := NewEnvWith(Config{Seed: 1, Platform: name})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if env.Platform.Profile.Name != name {
			t.Errorf("env profile = %s, want %s", env.Platform.Profile.Name, name)
		}
		want := env.Platform.Device.RegionFrames(env.Platform.RPs[0])
		if env.Bitstream.Header.Frames != want {
			t.Errorf("%s: bitstream frames = %d, want %d", name, env.Bitstream.Header.Frames, want)
		}
	}
	if _, err := NewEnvWith(Config{Seed: 1, Platform: "not-a-board"}); err == nil {
		t.Error("unknown platform accepted")
	}
}
