package experiments

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "A1", "A2", "A3", "A4", "A5"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("registry has %d scenarios, want %d: %v", len(got), len(want), got)
	}
	for i, id := range want {
		if got[i] != id {
			t.Errorf("registry[%d] = %s, want %s (suite order)", i, got[i], id)
		}
	}
}

func TestLookupByIDAndAlias(t *testing.T) {
	byID, ok := Lookup("E1")
	if !ok || byID.ID != "E1" {
		t.Fatalf("Lookup(E1) = %+v, %v", byID, ok)
	}
	byAlias, ok := Lookup("tableI")
	if !ok || byAlias.ID != "E1" {
		t.Fatalf("Lookup(tableI) = %+v, %v", byAlias, ok)
	}
	if _, ok := Lookup("E42"); ok {
		t.Error("Lookup(E42) succeeded")
	}
}

func TestShardPlanFixed(t *testing.T) {
	cfg := Config{Seed: 42}
	// E11: 3 boards × 3 rate segments (6 rates, 2 per shard); E12: one
	// shard per dispatch policy.
	// E13: 2 compositions × (4 sizes + the autoscaled point); E14 and E15:
	// one shard per routing policy; E16: one shard per scaler policy.
	plans := map[string]int{"E1": 1, "E2": 3, "E3": 7, "E4": 4, "E9": 4, "E10": 3, "E11": 9, "E12": 3, "E13": 10, "E14": 4, "E15": 4, "E16": 2, "E17": 1, "A5": 1}
	for id, want := range plans {
		s, ok := Lookup(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		if got := s.Shards(cfg); got != want {
			t.Errorf("%s shard plan = %d, want %d", id, got, want)
		}
	}
	// A rate-grid override reshapes the E11 plan deterministically.
	small := cfg
	small.Rates = []float64{100, 400}
	if s, _ := Lookup("E11"); s.Shards(small) != 3 {
		t.Errorf("E11 with 2 rates = %d shards, want 3 (1 segment × 3 boards)", s.Shards(small))
	}
}

func TestServeScenarioPlatformColumns(t *testing.T) {
	cfg := Config{Seed: 42}
	for _, id := range []string{"E10", "E11"} {
		s, ok := Lookup(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		if s.Platforms == nil {
			t.Fatalf("%s should declare its platform span", id)
		}
		if got := s.Platforms(cfg); len(got) != 3 {
			t.Errorf("%s platforms = %v, want the 3 boards", id, got)
		}
	}
	if s, _ := Lookup("E12"); s.Platforms != nil {
		t.Error("E12 runs on the campaign platform (nil Platforms)")
	}
}

func TestSegBounds(t *testing.T) {
	// Segments must partition [0,n) contiguously with sizes differing by
	// at most one, for any (n, k).
	for _, tc := range []struct{ n, k int }{{21, 3}, {7, 7}, {96, 4}, {5, 3}, {3, 3}} {
		prev := 0
		minSz, maxSz := tc.n, 0
		for i := 0; i < tc.k; i++ {
			lo, hi := segBounds(tc.n, tc.k, i)
			if lo != prev {
				t.Errorf("segBounds(%d,%d,%d) lo = %d, want %d", tc.n, tc.k, i, lo, prev)
			}
			sz := hi - lo
			if sz < minSz {
				minSz = sz
			}
			if sz > maxSz {
				maxSz = sz
			}
			prev = hi
		}
		if prev != tc.n {
			t.Errorf("segBounds(%d,%d) covers [0,%d), want [0,%d)", tc.n, tc.k, prev, tc.n)
		}
		if maxSz-minSz > 1 {
			t.Errorf("segBounds(%d,%d) sizes range %d–%d", tc.n, tc.k, minSz, maxSz)
		}
	}
}

// TestRenderRaggedRows: rows wider than the header must widen the table
// (with empty header cells) and rows narrower must pad — no misalignment,
// no panic.
func TestRenderRaggedRows(t *testing.T) {
	rep := &Report{
		ID:     "T1",
		Title:  "ragged",
		Header: []string{"a", "b"},
		Rows: [][]string{
			{"1", "2", "extra-wide-cell"},
			{"only"},
			{"x", "y"},
		},
	}
	out := rep.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + header + separator + 3 rows.
	if len(lines) != 6 {
		t.Fatalf("rendered %d lines, want 6:\n%s", len(lines), out)
	}
	width := len(lines[2]) // separator spans every column
	for i, line := range lines[1:] {
		if len(strings.TrimRight(line, " ")) > width {
			t.Errorf("line %d wider than separator (%d > %d): %q", i+1, len(line), width, line)
		}
	}
	if !strings.Contains(lines[3], "extra-wide-cell") {
		t.Errorf("wide cell missing: %q", lines[3])
	}
	// The third column exists even though the header has two.
	if got := len(strings.Fields(lines[2])); got != 3 {
		t.Errorf("separator has %d column dashes, want 3:\n%s", got, out)
	}
}

func TestRenderStableAcrossCalls(t *testing.T) {
	rep := &Report{ID: "T2", Title: "t", Header: []string{"h"}, Rows: [][]string{{"v"}}}
	if rep.Render() != rep.Render() {
		t.Error("Render not deterministic")
	}
}

func TestReportJSONStable(t *testing.T) {
	rep := &Report{
		ID: "T3", Title: "json", Header: []string{"h"},
		Rows:   [][]string{{"v"}},
		Series: []sim.Series{{Name: "s", XLabel: "x", YLabel: "y", Points: []sim.Point{{X: 1, Y: 2}}}},
		Notes:  []string{"n"},
	}
	a, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("JSON not byte-stable")
	}
	var round Report
	if err := json.Unmarshal(a, &round); err != nil {
		t.Fatal(err)
	}
	if round.ID != "T3" || round.Series[0].Points[0].Y != 2 {
		t.Errorf("round trip = %+v", round)
	}
}

func TestMarkdownEscapesPipes(t *testing.T) {
	rep := &Report{ID: "T4", Title: "a|b", Header: []string{"h|1"}, Rows: [][]string{{"v|2"}}}
	md := rep.Markdown()
	for _, want := range []string{`a\|b`, `h\|1`, `v\|2`} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing escaped %q:\n%s", want, md)
		}
	}
}

// TestScenarioCancellation: a sharded scenario must stop between
// measurement points when its context dies.
func TestScenarioCancellation(t *testing.T) {
	env, err := NewEnv(42)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s, _ := Lookup("E3")
	if _, err := s.Run(ctx, env, 0); err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

// TestShardDeterminism: re-running the same shard on a fresh Env must give
// identical partial output — the property the campaign merge relies on.
func TestShardDeterminism(t *testing.T) {
	s, _ := Lookup("E4")
	runShard := func() string {
		env, err := NewEnv(42)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.Run(context.Background(), env, 1)
		if err != nil {
			t.Fatal(err)
		}
		out, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return string(out)
	}
	if a, b := runShard(), runShard(); a != b {
		t.Errorf("shard output differs:\n%s\nvs\n%s", a, b)
	}
}
