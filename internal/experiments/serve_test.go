package experiments

import (
	"context"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestSaturationKnee(t *testing.T) {
	pts := func(ys ...float64) []sim.Point {
		out := make([]sim.Point, len(ys))
		for i, y := range ys {
			out[i] = sim.Point{X: float64((i + 1) * 100), Y: y}
		}
		return out
	}
	if knee, div := SaturationKnee(pts(1, 1.2, 2, 8, 40)); !div || knee != 300 {
		t.Errorf("knee = %v/%v, want 300/true (diverges at 400)", knee, div)
	}
	if knee, div := SaturationKnee(pts(1, 1.5, 2, 3)); div || knee != 400 {
		t.Errorf("knee = %v/%v, want 400/false (never diverges)", knee, div)
	}
	if knee, div := SaturationKnee(nil); div || knee != 0 {
		t.Errorf("empty curve: %v/%v", knee, div)
	}
}

// TestSaturateScenarioSmallGrid runs E11 through the canonical sequential
// path on a reduced rate grid: one stable rate and one far past the
// no-cache capacity, checking the cache-vs-ablation contrast the scenario
// exists to measure.
func TestSaturateScenarioSmallGrid(t *testing.T) {
	s, ok := Lookup("E11")
	if !ok {
		t.Fatal("E11 not registered")
	}
	cfg := Config{Seed: 42, Rates: []float64{50, 400}}
	rep, err := RunSequential(context.Background(), s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 3 boards × 2 rates × 2 modes.
	if len(rep.Rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(rep.Rows))
	}
	// The p99 column must render for every row (tail latency surfaced).
	p99col := len(satHeader) - 2
	if satHeader[p99col] != "p99 [ms]" {
		t.Fatalf("header layout changed: %v", satHeader)
	}
	for i, row := range rep.Rows {
		if row[p99col] == "" {
			t.Errorf("row %d missing p99", i)
		}
	}
	// Per-platform knee notes comparing cache vs no-cache.
	kneeNotes := 0
	for _, n := range rep.Notes {
		if strings.Contains(n, "saturation knee") {
			kneeNotes++
		}
	}
	if kneeNotes != 3 {
		t.Errorf("knee notes = %d, want one per board", kneeNotes)
	}
	// 2 series (cache/nocache) per board.
	if len(rep.Series) != 6 {
		t.Errorf("series = %d, want 6", len(rep.Series))
	}
}

func TestSchedScenarioComparesPolicies(t *testing.T) {
	s, ok := Lookup("E12")
	if !ok {
		t.Fatal("E12 not registered")
	}
	rep, err := RunSequential(context.Background(), s, Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	// 3 policies × 3 budgets.
	if len(rep.Rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(rep.Rows))
	}
	if rep.Rows[0][0] != "fcfs" || rep.Rows[3][0] != "sbf" || rep.Rows[6][0] != "affinity" {
		t.Errorf("policy order wrong: %v %v %v", rep.Rows[0][0], rep.Rows[3][0], rep.Rows[6][0])
	}
	// The thrashing budget must show evictions; the profile budget none.
	if rep.Rows[0][7] == "0" {
		t.Error("4-image budget should evict")
	}
	if rep.Rows[2][7] != "0" {
		t.Errorf("profile budget evicted: %v", rep.Rows[2])
	}
}
