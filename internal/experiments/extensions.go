package experiments

import (
	"fmt"

	"repro/internal/dram"
	"repro/internal/scrub"
	"repro/internal/sim"
)

// AblationContention (A4): Fig. 1 gives every RP a private data DMA on the
// shared memory interface, so a computing accelerator steals HP-port slots
// from the configuration path. This ablation measures reconfiguration
// throughput at 280 MHz (memory-bound, worst case) under increasing
// background traffic.
func AblationContention(env *Env) (*Report, error) {
	c := env.Controller
	p := env.Platform
	if _, err := c.SetFrequencyMHz(280); err != nil {
		return nil, err
	}
	rep := &Report{
		ID:     "A4",
		Title:  "reconfiguration under accelerator memory traffic (280 MHz)",
		Header: []string{"background traffic [MB/s]", "reconfig throughput [MB/s]", "slowdown"},
	}
	base := 0.0
	for _, rate := range []float64{0, 100, 200, 400} {
		gen := dram.NewTraffic(p.Kernel, p.DDR, rate)
		if rate > 0 {
			gen.Start()
		}
		res, err := c.Load("RP1", env.Bitstream)
		if err != nil {
			return nil, err
		}
		gen.Stop()
		if rate == 0 {
			base = res.ThroughputMBs
		}
		rep.Rows = append(rep.Rows, []string{
			f0(rate), f2(res.ThroughputMBs), fmt.Sprintf("%.2fx", base/res.ThroughputMBs),
		})
	}
	rep.Notes = append(rep.Notes,
		"the shared Memory-Port → Interconnect → DMA path is the same bottleneck Sec. VI's SRAM design removes",
		"the Sec.-VI system is immune: its bitstreams stream from the dedicated SRAM, not the DDR")
	return rep, nil
}

// AblationScrub (A5): the run-time payoff of the CRC read-back block —
// repairing injected single-event upsets in place versus reloading the
// whole partial bitstream.
func AblationScrub(env *Env) (*Report, error) {
	c := env.Controller
	p := env.Platform
	if _, err := c.SetFrequencyMHz(200); err != nil {
		return nil, err
	}
	// Configure the region first so there is a golden image to defend.
	res, err := c.Load("RP1", env.Bitstream)
	if err != nil {
		return nil, err
	}
	if !res.CRCValid {
		return nil, fmt.Errorf("experiments: initial load failed")
	}
	rp, err := p.RP("RP1")
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:     "A5",
		Title:  "SEU scrubbing vs full reload (200 MHz)",
		Header: []string{"recovery strategy", "upsets", "frames rewritten", "time [us]", "clean"},
	}
	scrubber := scrub.New(p.Kernel, p.ICAP)
	for _, upsets := range []int{1, 8, 64} {
		inj := scrub.NewInjector(p.Memory, uint64(upsets))
		if _, err := inj.UpsetRegion(rp, upsets); err != nil {
			return nil, err
		}
		var got *scrub.Report
		if err := scrubber.Scrub(rp, env.Bitstream.Frames, func(r scrub.Report, serr error) {
			if serr == nil {
				got = &r
			}
		}); err != nil {
			return nil, err
		}
		deadline := p.Kernel.Now().Add(100 * sim.Millisecond)
		for got == nil && p.Kernel.Now() < deadline {
			if !p.Kernel.Step() {
				break
			}
		}
		if got == nil {
			return nil, fmt.Errorf("experiments: scrub stalled")
		}
		rep.Rows = append(rep.Rows, []string{
			"scrub", fmt.Sprintf("%d", upsets), fmt.Sprintf("%d", got.FramesRepaired),
			f2(got.Duration.Microseconds()), fmt.Sprintf("%v", got.Clean),
		})
	}
	// The alternative: a full partial reconfiguration.
	res, err = c.Load("RP1", env.Bitstream)
	if err != nil {
		return nil, err
	}
	rep.Rows = append(rep.Rows, []string{
		"full reload", "any", fmt.Sprintf("%d", p.Device.RegionFrames(rp)),
		f2(res.LatencyUS), fmt.Sprintf("%v", res.CRCValid),
	})
	rep.Notes = append(rep.Notes,
		"a scrub pass costs two read-back sweeps plus only the damaged frames' rewrites",
		"latency is comparable to a reload, but the scrub runs autonomously in the PL: no PS software, no DMA programming, and no DDR bandwidth stolen from running accelerators",
		"the paper's CRC block provides the detection half; the scrubber completes the loop")
	return rep, nil
}
