package experiments

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/workload"
)

// TestDiurnalScenario runs E16 through the canonical sequential path and
// checks the headline the scenario exists to measure: through the flash
// crowd the predictive scaler sheds a smaller fraction than the reactive
// one, because the forecast retargets several boards per window while the
// reactive policy adds one.
func TestDiurnalScenario(t *testing.T) {
	s, ok := Lookup("E16")
	if !ok {
		t.Fatal("E16 not registered")
	}
	cfg := Config{Seed: 42}
	if got := s.Shards(cfg); got != 2 {
		t.Fatalf("shards = %d, want 2 (one per scaler policy)", got)
	}
	rep, err := RunSequential(context.Background(), s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rep.Rows))
	}
	flashShed := make(map[string]float64)
	for _, row := range rep.Rows {
		v, err := strconv.ParseFloat(strings.TrimSuffix(row[4], "%"), 64)
		if err != nil {
			t.Fatalf("flash shed cell %q: %v", row[4], err)
		}
		flashShed[row[0]] = v
	}
	re, okR := flashShed["reactive"]
	pr, okP := flashShed["predictive"]
	if !okR || !okP {
		t.Fatalf("missing policy rows: %v", flashShed)
	}
	if pr >= re {
		t.Errorf("flash-crowd shed: predictive %.1f%% should beat reactive %.1f%%", pr, re)
	}
	// Every shard contributes the staffing series, and the headline note
	// states the comparison.
	for _, name := range []string{"e16_reactive_boards", "e16_predictive_boards", "e16_predictive_forecast"} {
		found := false
		for _, ser := range rep.Series {
			if ser.Name == name {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("series %q missing", name)
		}
	}
	noted := false
	for _, n := range rep.Notes {
		if strings.Contains(n, "flash crowd") && strings.Contains(n, "sheds") {
			noted = true
		}
	}
	if !noted {
		t.Errorf("headline note missing from %v", rep.Notes)
	}
}

// TestDiurnalScenarioDeterministic: E16 is a pure function of the
// configuration — two sequential runs encode byte-identically.
func TestDiurnalScenarioDeterministic(t *testing.T) {
	s, _ := Lookup("E16")
	cfg := Config{Seed: 7}
	a, err := RunSequential(context.Background(), s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSequential(context.Background(), s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	aj, err := a.JSON()
	if err != nil {
		t.Fatal(err)
	}
	bj, err := b.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, bj) {
		t.Error("two sequential E16 runs differ")
	}
}

// TestDiurnalTraceReplay: serving a recorded trace file reproduces the
// generated run row for row — the versioned trace format carries
// everything the scenario consumes (times, targets, tenants, classes,
// deadlines).
func TestDiurnalTraceReplay(t *testing.T) {
	cfg := Config{Seed: 42}
	tr, err := DiurnalTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) == 0 {
		t.Fatal("empty diurnal trace")
	}
	classed := 0
	for _, req := range tr {
		if req.Class != "" {
			classed++
		}
	}
	if classed != len(tr) {
		t.Fatalf("%d/%d requests classed, want all", classed, len(tr))
	}
	data, err := workload.ExportTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "day.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s, _ := Lookup("E16")
	gen, err := RunSequential(context.Background(), s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	replayCfg := cfg
	replayCfg.TraceFile = path
	replay, err := RunSequential(context.Background(), s, replayCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(gen.Rows) != len(replay.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(gen.Rows), len(replay.Rows))
	}
	for i := range gen.Rows {
		if strings.Join(gen.Rows[i], "|") != strings.Join(replay.Rows[i], "|") {
			t.Errorf("row %d differs:\n  generated: %v\n  replayed:  %v", i, gen.Rows[i], replay.Rows[i])
		}
	}

	// A missing file fails with a descriptive error, not a panic.
	badCfg := cfg
	badCfg.TraceFile = filepath.Join(t.TempDir(), "absent.json")
	if _, err := RunSequential(context.Background(), s, badCfg); err == nil {
		t.Error("absent trace file accepted")
	}
}

// TestDiurnalScalerRestriction: Config.Scaler narrows the shard plan to
// one policy, and an unknown policy surfaces the cluster validation error.
func TestDiurnalScalerRestriction(t *testing.T) {
	s, _ := Lookup("E16")
	cfg := Config{Seed: 42, Scaler: "predictive"}
	if got := s.Shards(cfg); got != 1 {
		t.Fatalf("shards = %d, want 1 with Scaler set", got)
	}
	rep, err := RunSequential(context.Background(), s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 1 || rep.Rows[0][0] != "predictive" {
		t.Fatalf("rows = %v, want the single predictive row", rep.Rows)
	}

	bad := Config{Seed: 42, Scaler: "psychic"}
	if _, err := RunSequential(context.Background(), s, bad); err == nil {
		t.Error("unknown scaler policy accepted")
	} else if !strings.Contains(err.Error(), "psychic") {
		t.Errorf("error should name the policy: %v", err)
	}
}
