package experiments

import (
	"context"
	"fmt"
	"strconv"

	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/workload"
)

// E15 "chaos": availability, goodput and tail latency per routing policy
// under a seeded fault storm — board crashes, a thermal excursion, and CRC
// read-back glitches — on a warm four-board fleet loaded to half the
// single-board knee per board. The calm baseline is comfortable for every
// policy (E13's 4-board point), so what separates them is purely how they
// absorb faults. The self-healing machinery is on: failover on refused
// connections, outlier ejection on CRC verdicts, thermal throttling, and an
// autoscaler that replaces dead capacity. The headline the storm exposes:
// affinity routing degrades worst — a crashed board's keys funnel onto its
// single ring successor, driving that one board to the saturation knee
// while others idle, and the warm cache the ring spent the run building
// dies with the board — while least-outstanding degrades gracefully because
// queue depth already encodes who is struggling.
//
// Shard plan: one shard per routing policy, every shard replaying the same
// arrival stream and the same storm, so the policies face identical faults.

const (
	chaosTitle = "chaos: availability and tail latency per routing policy under a seeded fault storm"

	// The stream: 384 requests at E13's 1600 req/s — 400 req/s per board on
	// the full fleet (comfortable), ~800 req/s on a board carrying a dead
	// neighbour's keys (the knee) — spanning a 240 ms horizon.
	chaosRequests   = 384
	chaosRatePerSec = fleetRatePerSec

	// The storm (counts overridable via Config.Chaos*): two board outages,
	// one thermal excursion into the throttle regime, two SEU bursts against
	// resident images — all inside the stream horizon.
	chaosCrashes    = 2
	chaosExcursions = 1
	chaosGlitches   = 4

	chaosOutage  = 60 * sim.Millisecond
	chaosDwell   = 50 * sim.Millisecond
	chaosTempC   = 85
	chaosFrames  = 2
	chaosHorizon = 240 * sim.Millisecond
)

// chaosCount applies a Config override: 0 keeps the default, negative
// disables the fault class.
func chaosCount(override, def int) int {
	switch {
	case override > 0:
		return override
	case override < 0:
		return 0
	}
	return def
}

// chaosStorm shapes the campaign's fault storm.
func chaosStorm(cfg Config) chaos.Config {
	return chaos.Config{
		Seed:           cfg.Seed ^ 0xE15C,
		Horizon:        chaosHorizon,
		Boards:         routeFleetSize,
		Crashes:        chaosCount(cfg.ChaosCrashes, chaosCrashes),
		Outage:         chaosOutage,
		Excursions:     chaosCount(cfg.ChaosExcursions, chaosExcursions),
		ExcursionTempC: chaosTempC,
		Dwell:          chaosDwell,
		Glitches:       chaosCount(cfg.ChaosGlitches, chaosGlitches),
		GlitchFrames:   chaosFrames,
	}
}

// chaosStream is E15's shared arrival stream: the E14 popularity shape on
// its own seed, so the chaos scenario never perturbs the calm one.
func chaosStream(cfg Config) (workload.Trace, []cluster.BoardSpec, error) {
	boards := make([]cluster.BoardSpec, routeFleetSize)
	for i := range boards {
		boards[i] = cluster.BoardSpec{Platform: cfg.Platform}
	}
	rps, err := cluster.CommonRPs(boards)
	if err != nil {
		return nil, nil, err
	}
	spec := workload.ArrivalSpec{
		RatePerSec: chaosRatePerSec,
		Skew:       routeSkew,
		Tenants:    routeTenants,
		Deadline:   serveDeadline,
	}
	tr, err := spec.Generate(cfg.Seed^0x0E15, chaosRequests, rps, satASPs)
	return tr, boards, err
}

func chaosShards(Config) int { return len(cluster.RouterNames()) }

var chaosHeader = []string{
	"router", "arrivals", "completed", "unroutable", "lost", "failed over",
	"repairs", "availability", "goodput [req/s]", "p99 [ms]", "deadline misses",
}

func chaosShard(ctx context.Context, env *Env, shard int) (*Report, error) {
	names := cluster.RouterNames()
	if shard < 0 || shard >= len(names) {
		return nil, fmt.Errorf("experiments: chaos shard %d out of range", shard)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	router, err := cluster.RouterByName(names[shard])
	if err != nil {
		return nil, err
	}
	tr, boards, err := chaosStream(env.Cfg)
	if err != nil {
		return nil, err
	}
	schedule, err := chaosStorm(env.Cfg).Schedule()
	if err != nil {
		return nil, err
	}
	f, err := cluster.New(cluster.FleetConfig{
		Boards:  boards,
		Seed:    env.Cfg.Seed,
		FreqMHz: serveFreqMHz,
		Router:  router,
		Workers: env.Cfg.FleetWorkers,
		Trace:   obsFleet(env.Cfg, "E15", shard, router.Name()),
		// The scaler's job here is repair, not capacity: it starts one short
		// of full and must re-activate the spare when a crash empties a slot.
		Autoscaler: &cluster.AutoscalerConfig{
			Window:  25 * sim.Millisecond,
			Min:     routeFleetSize - 1,
			Max:     routeFleetSize,
			ShedHi:  0.01,
			P99HiUS: serveDeadline.Microseconds(),
			ShedLo:  -1, // never shrink mid-storm
			P99LoUS: 0,
		},
		Chaos: &cluster.ChaosConfig{Schedule: schedule},
		Service: cluster.ServiceTemplate{
			QueueCap: serveQueueCap,
			// Warm caches: the calm fleet runs hit-only (E13), so every
			// stall the storm causes is the storm's doing — and a crash
			// erases exactly the warmth the run started with.
			Prewarm: satASPs,
			Repair:  "scrub",
		},
	})
	if err != nil {
		return nil, err
	}
	st, err := f.Serve(tr)
	if err != nil {
		return nil, err
	}
	agg := st.Aggregate
	rep := &Report{ID: "E15", Title: chaosTitle, SimEvents: st.KernelEvents}
	rep.Rows = append(rep.Rows, []string{
		router.Name(),
		strconv.Itoa(st.Arrivals), strconv.Itoa(agg.Completed),
		strconv.Itoa(st.Unroutable), strconv.Itoa(agg.Lost), strconv.Itoa(st.FailedOver),
		strconv.Itoa(agg.Repairs),
		fmt.Sprintf("%.1f%%", 100*st.Availability()),
		f0(st.GoodputPerSec()),
		ms(agg.SojournUS.Quantile(0.99)),
		strconv.Itoa(agg.DeadlineMisses),
	})
	series := sim.Series{Name: "e15_" + router.Name(), XLabel: "metric_index", YLabel: "value"}
	series.Append(0, st.Availability())
	series.Append(1, st.GoodputPerSec())
	series.Append(2, agg.SojournUS.Quantile(0.99))
	rep.Series = append(rep.Series, series)
	return rep, nil
}

func chaosMerge(cfg Config, parts []*Report) (*Report, error) {
	rep := &Report{ID: "E15", Title: chaosTitle, Header: chaosHeader}
	metrics := make(map[string][]sim.Point)
	for _, p := range parts {
		rep.Rows = append(rep.Rows, p.Rows...)
		rep.Series = append(rep.Series, p.Series...)
		for _, s := range p.Series {
			metrics[s.Name] = s.Points
		}
	}
	aff, okA := metrics["e15_affinity"]
	jsq, okJ := metrics["e15_least-outstanding"]
	if okA && okJ && len(aff) == 3 && len(jsq) == 3 && aff[2].Y > 0 {
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"under the storm, affinity routing degrades worst — its cache locality dies with the crashed board: goodput %.0f vs least-outstanding's %.0f req/s, p99 %.1f vs %.1f ms — queue depth already encodes board health, consistent hashing does not",
			aff[1].Y, jsq[1].Y, aff[2].Y/1000, jsq[2].Y/1000))
	}
	storm := chaosStorm(cfg)
	schedule, err := storm.Schedule()
	if err != nil {
		return nil, err
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"storm (seeded, identical for every policy): %d board outages of %v, %d thermal excursions to %.0f °C, %d CRC glitches of %d frames across a %v horizon — %d events total",
		storm.Crashes, chaosOutage, storm.Excursions, storm.ExcursionTempC,
		storm.Glitches, storm.GlitchFrames, chaosHorizon, len(schedule)))
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"self-healing on: connection-refused failover, CRC-verdict outlier ejection, thermal throttling to nominal, scrub repair, autoscaler replacing dead capacity (bounds %d…%d); %d req at %d req/s, Zipf(%.1f) popularity, warm caches",
		routeFleetSize-1, routeFleetSize, chaosRequests, chaosRatePerSec, routeSkew))
	return rep, nil
}
