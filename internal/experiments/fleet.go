package experiments

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// This file holds the fleet-layer scenarios built on internal/cluster —
// the capacity-planning questions above one board:
//
//   - E13 "scaleout": p99 and goodput versus fleet size at a fixed offered
//     load above one board's saturation knee, for a homogeneous ZedBoard
//     fleet and a mixed zedboard/zybo/zc706 fleet, plus one autoscaled
//     point per composition (bounds 1…max size) showing where the reactive
//     scaler settles.
//   - E14 "route": routing policy × skewed image/tenant popularity on a
//     four-board fleet whose per-board caches cannot hold the working set
//     — the regime where bitstream-affinity routing keeps each board's
//     cache warm while oblivious policies thrash every cache at once.
//
// Shard plans: E13 one shard per (composition, fleet point), E14 one shard
// per routing policy. Every shard builds its own fleet (each board a fresh
// platform whose RNG stream derives from the campaign seed and board
// index), so shards stay pure functions of the campaign configuration.

const (
	scaleTitle = "scale-out: goodput and p99 vs fleet size above the single-board knee"
	routeTitle = "routing: policy × skewed image popularity on a cache-constrained fleet"

	// fleetRequests is the stream length per fleet point; fleetRatePerSec
	// sits above the cached single-board knee E11 locates (~800 req/s on
	// the ZedBoard), so one board must shed or miss deadlines and the
	// headroom has to come from the fleet.
	fleetRequests   = 192
	fleetRatePerSec = 1600

	// E14's offered load, popularity skew and per-board cache budget: five
	// images per board against a 16-image working set, so no single cache
	// can hold everything — routing decides what stays warm.
	routeRatePerSec  = 400
	routeSkew        = 1.1
	routeCacheImages = 5
	routeFleetSize   = 4
)

var routeTenants = []string{"alpha", "beta", "gamma"}

// fleetComposition is one E13 fleet build rule.
type fleetComposition struct {
	name string
	// cycle is the platform sequence boards are drawn from (board i runs
	// cycle[i % len(cycle)]).
	cycle []string
}

func fleetCompositions() []fleetComposition {
	return []fleetComposition{
		{name: "zedboard", cycle: []string{"zedboard"}},
		{name: "mixed", cycle: []string{"zedboard", "zybo-z7-10", "zc706"}},
	}
}

// fleetSizes is the E13 fleet-size axis.
func fleetSizes(cfg Config) []int {
	if len(cfg.FleetSizes) > 0 {
		return cfg.FleetSizes
	}
	return []int{1, 2, 4, 8}
}

// fleetRouterName resolves E13's routing policy.
func fleetRouterName(cfg Config) string {
	if cfg.Router != "" {
		return cfg.Router
	}
	return "least-outstanding"
}

// fleetBoards builds a composition's board list at one size.
func fleetBoards(comp fleetComposition, size int) []cluster.BoardSpec {
	out := make([]cluster.BoardSpec, size)
	for i := range out {
		out[i] = cluster.BoardSpec{Platform: comp.cycle[i%len(comp.cycle)]}
	}
	return out
}

// fleetRPs is the composition's servable RP set: the intersection over the
// whole platform cycle, independent of fleet size, so every size of one
// composition replays the same stream.
func fleetRPs(comp fleetComposition) ([]string, error) {
	return cluster.CommonRPs(fleetBoards(comp, len(comp.cycle)))
}

// scaleSeed derives a composition's arrival-stream seed.
func scaleSeed(cfg Config, comp string) uint64 {
	h := uint64(0x5CA1E)
	for _, c := range comp {
		h = h*31 + uint64(c)
	}
	return cfg.Seed ^ h
}

// fleetPoints is the number of measurement points per composition: every
// fixed size plus the autoscaled point.
func fleetPoints(cfg Config) int { return len(fleetSizes(cfg)) + 1 }

func scaleShards(cfg Config) int { return len(fleetCompositions()) * fleetPoints(cfg) }

var scaleHeader = []string{
	"fleet", "boards", "router", "offered", "completed", "shed",
	"goodput [req/s]", "hit ratio", "p50 [ms]", "p95 [ms]", "p99 [ms]",
	"deadline misses", "active peak/final",
}

// scalePoint serves the composition's stream on one fleet build.
func scalePoint(cfg Config, comp fleetComposition, size int, auto bool, ft *obs.FleetTrace) (*cluster.FleetStats, error) {
	if size < 1 {
		return nil, fmt.Errorf("experiments: fleet size %d out of range (WithFleetGrid wants positive sizes)", size)
	}
	rps, err := fleetRPs(comp)
	if err != nil {
		return nil, err
	}
	spec := workload.ArrivalSpec{
		RatePerSec: fleetRatePerSec,
		Deadline:   serveDeadline,
	}
	tr, err := spec.Generate(scaleSeed(cfg, comp.name), fleetRequests, rps, satASPs)
	if err != nil {
		return nil, err
	}
	router, err := cluster.RouterByName(fleetRouterName(cfg))
	if err != nil {
		return nil, err
	}
	fcfg := cluster.FleetConfig{
		Boards:  fleetBoards(comp, size),
		Seed:    cfg.Seed,
		FreqMHz: serveFreqMHz,
		Router:  router,
		Workers: cfg.FleetWorkers,
		Trace:   ft,
		Service: cluster.ServiceTemplate{
			QueueCap: serveQueueCap,
			Prewarm:  satASPs,
		},
	}
	if auto {
		// The reactive point: start at one board, grow on windowed shed or
		// p99 pressure against the serve deadline, shrink when comfortable.
		fcfg.Autoscaler = &cluster.AutoscalerConfig{
			Window:  25 * sim.Millisecond,
			Min:     1,
			Max:     size,
			ShedHi:  0.01,
			P99HiUS: serveDeadline.Microseconds(),
			ShedLo:  0,
			P99LoUS: serveDeadline.Microseconds() / 10,
		}
	}
	f, err := cluster.New(fcfg)
	if err != nil {
		return nil, err
	}
	return f.Serve(tr)
}

func scaleRow(label, boards, router string, st *cluster.FleetStats) []string {
	agg := st.Aggregate
	return []string{
		label, boards, router,
		strconv.Itoa(agg.Offered), strconv.Itoa(agg.Completed), strconv.Itoa(agg.Shed),
		f0(st.GoodputPerSec()),
		fmt.Sprintf("%.0f%%", 100*st.CacheHitRatio()),
		ms(agg.SojournUS.Quantile(0.50)), ms(agg.SojournUS.Quantile(0.95)), ms(agg.SojournUS.Quantile(0.99)),
		strconv.Itoa(agg.DeadlineMisses),
		fmt.Sprintf("%d/%d", st.PeakActive, st.FinalActive),
	}
}

// boardsLabel renders a fleet build compactly ("4× zedboard" or
// "zedboard,zybo-z7-10,zc706,zedboard").
func boardsLabel(specs []cluster.BoardSpec) string {
	uniform := true
	for _, s := range specs[1:] {
		if s.Platform != specs[0].Platform {
			uniform = false
			break
		}
	}
	if uniform {
		return fmt.Sprintf("%d× %s", len(specs), specs[0].Platform)
	}
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Platform
	}
	return strings.Join(names, ",")
}

func scaleShard(ctx context.Context, env *Env, shard int) (*Report, error) {
	points := fleetPoints(env.Cfg)
	comps := fleetCompositions()
	if shard < 0 || shard >= len(comps)*points {
		return nil, fmt.Errorf("experiments: scaleout shard %d out of range", shard)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	comp := comps[shard/points]
	pt := shard % points
	sizes := fleetSizes(env.Cfg)
	auto := pt == len(sizes)
	size := 0
	if auto {
		// The autoscaled point may use the largest swept size.
		for _, s := range sizes {
			if s > size {
				size = s
			}
		}
	} else {
		size = sizes[pt]
	}

	label := comp.name
	if auto {
		label += " (auto)"
	}
	st, err := scalePoint(env.Cfg, comp, size, auto,
		obsFleet(env.Cfg, "E13", shard, fmt.Sprintf("%s x%d", label, size)))
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "E13", Title: scaleTitle, SimEvents: st.KernelEvents}
	rep.Rows = append(rep.Rows, scaleRow(label, boardsLabel(fleetBoards(comp, size)), fleetRouterName(env.Cfg), st))
	if !auto {
		good := sim.Series{Name: "e13_" + comp.name + "_goodput", XLabel: "fleet_size", YLabel: "goodput_req_per_s"}
		p99 := sim.Series{Name: "e13_" + comp.name + "_p99", XLabel: "fleet_size", YLabel: "p99_sojourn_us"}
		good.Append(float64(size), st.GoodputPerSec())
		p99.Append(float64(size), st.Aggregate.SojournUS.Quantile(0.99))
		rep.Series = append(rep.Series, good, p99)
	} else if len(st.ScaleEvents) > 0 {
		last := st.ScaleEvents[len(st.ScaleEvents)-1]
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"%s autoscaler: %d scale events, settled at %d boards (last: %s at %.0f ms)",
			comp.name, len(st.ScaleEvents), st.FinalActive, last.Reason, last.AtUS/1000))
	}
	return rep, nil
}

func scaleMerge(cfg Config, parts []*Report) (*Report, error) {
	rep := &Report{ID: "E13", Title: scaleTitle, Header: scaleHeader}
	merged := make(map[string]*sim.Series)
	var order []string
	for _, p := range parts {
		rep.Rows = append(rep.Rows, p.Rows...)
		rep.Notes = append(rep.Notes, p.Notes...)
		for _, s := range p.Series {
			if dst, ok := merged[s.Name]; ok {
				dst.Points = append(dst.Points, s.Points...)
			} else {
				cp := s
				cp.Points = append([]sim.Point(nil), s.Points...)
				merged[s.Name] = &cp
				order = append(order, s.Name)
			}
		}
	}
	for _, name := range order {
		rep.Series = append(rep.Series, *merged[name])
	}
	for _, comp := range fleetCompositions() {
		good, ok := merged["e13_"+comp.name+"_goodput"]
		if !ok || len(good.Points) < 2 {
			continue
		}
		first, last := good.Points[0], good.Points[len(good.Points)-1]
		if first.Y > 0 {
			rep.Notes = append(rep.Notes, fmt.Sprintf(
				"%s: goodput scales %.1f× from %d to %d boards at %d req/s offered (%.0f → %.0f req/s useful)",
				comp.name, last.Y/first.Y, int(first.X), int(last.X), fleetRatePerSec, first.Y, last.Y))
		}
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"%d-request streams at %d req/s (above the ~800 req/s cached single-board knee), %s routing, warm caches, deadlines at %v",
		fleetRequests, fleetRatePerSec, fleetRouterName(cfg), serveDeadline))
	return rep, nil
}

// --- E14: routing policy × skewed popularity ---

var routeHeader = []string{
	"router", "offered", "completed", "shed", "cache hit ratio",
	"stage [s]", "routing spread", "p50 [ms]", "p95 [ms]", "p99 [ms]", "deadline misses",
}

func routeShards(Config) int { return len(cluster.RouterNames()) }

// routeStream is E14's shared arrival stream: skewed image and tenant
// popularity over the campaign platform's RP plan, identical across the
// policy shards so the routers face the same traffic.
func routeStream(cfg Config) (workload.Trace, []cluster.BoardSpec, error) {
	boards := make([]cluster.BoardSpec, routeFleetSize)
	for i := range boards {
		boards[i] = cluster.BoardSpec{Platform: cfg.Platform}
	}
	rps, err := cluster.CommonRPs(boards)
	if err != nil {
		return nil, nil, err
	}
	spec := workload.ArrivalSpec{
		RatePerSec: routeRatePerSec,
		Skew:       routeSkew,
		Tenants:    routeTenants,
		Deadline:   serveDeadline,
	}
	tr, err := spec.Generate(cfg.Seed^0x0E14, fleetRequests, rps, satASPs)
	return tr, boards, err
}

func routeShard(ctx context.Context, env *Env, shard int) (*Report, error) {
	names := cluster.RouterNames()
	if shard < 0 || shard >= len(names) {
		return nil, fmt.Errorf("experiments: route shard %d out of range", shard)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	router, err := cluster.RouterByName(names[shard])
	if err != nil {
		return nil, err
	}
	tr, boards, err := routeStream(env.Cfg)
	if err != nil {
		return nil, err
	}
	f, err := cluster.New(cluster.FleetConfig{
		Boards:  boards,
		Seed:    env.Cfg.Seed,
		FreqMHz: serveFreqMHz,
		Router:  router,
		Workers: env.Cfg.FleetWorkers,
		Trace:   obsFleet(env.Cfg, "E14", shard, router.Name()),
		Service: cluster.ServiceTemplate{
			QueueCap: serveQueueCap,
			// Cold, constrained caches: five images per board against the
			// 16-image working set — residency is earned by routing.
			CacheBudgetImages: routeCacheImages,
		},
	})
	if err != nil {
		return nil, err
	}
	st, err := f.Serve(tr)
	if err != nil {
		return nil, err
	}
	agg := st.Aggregate
	rep := &Report{ID: "E14", Title: routeTitle, SimEvents: st.KernelEvents}
	rep.Rows = append(rep.Rows, []string{
		router.Name(),
		strconv.Itoa(agg.Offered), strconv.Itoa(agg.Completed), strconv.Itoa(agg.Shed),
		fmt.Sprintf("%.0f%%", 100*st.CacheHitRatio()),
		fmt.Sprintf("%.2f", agg.StageTime.Seconds()),
		fmt.Sprintf("%.1f", st.RoutingSpread()),
		ms(agg.SojournUS.Quantile(0.50)), ms(agg.SojournUS.Quantile(0.95)), ms(agg.SojournUS.Quantile(0.99)),
		strconv.Itoa(agg.DeadlineMisses),
	})
	series := sim.Series{Name: "e14_" + router.Name(), XLabel: "metric_index", YLabel: "value"}
	series.Append(0, st.CacheHitRatio())
	series.Append(1, agg.SojournUS.Quantile(0.99))
	rep.Series = append(rep.Series, series)
	return rep, nil
}

func routeMerge(cfg Config, parts []*Report) (*Report, error) {
	rep := &Report{ID: "E14", Title: routeTitle, Header: routeHeader}
	metrics := make(map[string][]sim.Point)
	for _, p := range parts {
		rep.Rows = append(rep.Rows, p.Rows...)
		rep.Series = append(rep.Series, p.Series...)
		for _, s := range p.Series {
			metrics[s.Name] = s.Points
		}
	}
	aff, okA := metrics["e14_affinity"]
	rr, okR := metrics["e14_round-robin"]
	if okA && okR && len(aff) == 2 && len(rr) == 2 && aff[1].Y > 0 {
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"bitstream-affinity keeps each image on one board's cache: hit ratio %.0f%% vs round-robin's %.0f%%, p99 %.1f ms vs %.1f ms (%.1f× lower) under Zipf(%.1f) image popularity",
			100*aff[0].Y, 100*rr[0].Y, aff[1].Y/1000, rr[1].Y/1000, rr[1].Y/aff[1].Y, routeSkew))
	}
	prof, err := ProfileFor(cfg)
	if err != nil {
		return nil, err
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"%d-board %s fleet, cold %d-image caches vs a %d-image working set, %d req at %d req/s; routing spread is max/min requests per board (1.0 = perfectly balanced)",
		routeFleetSize, prof.Name, routeCacheImages, len(satASPs)*len(prof.RPNames()), fleetRequests, routeRatePerSec))
	return rep, nil
}
