package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/sim"
	"repro/internal/zynq"
)

// AblationCRC (A1): what does continuous CRC read-back cost the foreground
// transfer? The monitor shares the single ICAP port, so scans that overlap
// a load would steal word slots; the PR controller avoids that by
// suspending read-back during loads. This ablation measures a load with the
// monitor idle versus a load issued while a scan is in flight (the chunk in
// flight must drain first).
func AblationCRC(env *Env) (*Report, error) {
	c := env.Controller
	if _, err := c.SetFrequencyMHz(200); err != nil {
		return nil, err
	}
	// Baseline: monitor idle.
	res1, err := c.Load("RP1", env.Bitstream)
	if err != nil {
		return nil, err
	}
	// With background scanning active at load issue.
	mon := env.Platform.Monitors["RP1"]
	mon.SetGolden(env.Bitstream.Frames)
	mon.Start()
	env.Platform.Kernel.RunFor(50 * sim.Microsecond) // a scan chunk is in flight
	res2, err := c.Load("RP1", env.Bitstream)
	if err != nil {
		return nil, err
	}
	mon.Stop()
	rep := &Report{
		ID:     "A1",
		Title:  "CRC read-back overhead on the foreground transfer",
		Header: []string{"condition", "latency [us]", "throughput [MB/s]"},
		Rows: [][]string{
			{"monitor idle", f2(res1.LatencyUS), f2(res1.ThroughputMBs)},
			{"scan in flight at issue", f2(res2.LatencyUS), f2(res2.ThroughputMBs)},
		},
	}
	delta := res2.LatencyUS - res1.LatencyUS
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("suspending read-back bounds the interference to one chunk: +%.2f µs", delta))
	return rep, nil
}

// AblationKnee (A2): decompose the ≈790 MB/s plateau into its three causes —
// port slot rate, DDR refresh, CDC handshake — by re-running the 280 MHz
// point with each mechanism idealised.
func AblationKnee(env *Env) (*Report, error) {
	rep := &Report{
		ID:     "A2",
		Title:  "what limits the plateau at 280 MHz",
		Header: []string{"memory-path variant", "throughput [MB/s]"},
	}
	type variant struct {
		name   string
		params dram.Params
	}
	base := env.Platform.Profile.DRAM
	noRefresh := base
	noRefresh.RefreshInterval = 0
	fastPort := base
	// An idealised ~2x counterfactual port (an ablation input, not a device
	// calibration): fast enough that every modelled platform's 280 MHz point
	// becomes ICAP-bound. The figure is part of the locked A2 rows.
	fastPort.PortBytesPerSec = 1600e6
	variants := []variant{
		{"calibrated (paper's system)", base},
		{"no DDR refresh", noRefresh},
		{"2x port rate", fastPort},
	}
	for _, v := range variants {
		params := v.params
		p, err := zynq.NewPlatform(zynq.Options{Seed: 42, Profile: env.Platform.Profile, FastThermal: true, DRAMParams: &params})
		if err != nil {
			return nil, err
		}
		p.ConfigureStatic()
		c := core.New(p)
		if _, err := c.SetFrequencyMHz(280); err != nil {
			return nil, err
		}
		bs, err := buildFor(p, p.RPs[0], "knee", 3)
		if err != nil {
			return nil, err
		}
		res, err := c.Load("RP1", bs)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, []string{v.name, f2(res.ThroughputMBs)})
	}
	rep.Notes = append(rep.Notes,
		"with a 2x port the 280 MHz point becomes ICAP-bound (≈4f), showing the knee is a memory-path artefact")
	return rep, nil
}

// AblationRobustGuard (A3): the cost of an over-clock failure episode with
// recovery, versus a clean load — the operational value of CRC detection.
func AblationRobustGuard(env *Env) (*Report, error) {
	c := env.Controller
	if _, err := c.SetFrequencyMHz(200); err != nil {
		return nil, err
	}
	clean, err := c.Load("RP1", env.Bitstream)
	if err != nil {
		return nil, err
	}
	if _, err := c.SetFrequencyMHz(310); err != nil {
		return nil, err
	}
	guard := &core.RobustGuard{C: c}
	rec, err := guard.Load("RP1", env.Bitstream)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:     "A3",
		Title:  "RobustGuard recovery cost after an over-clock failure",
		Header: []string{"episode", "attempts", "wall time [us]", "recovered"},
		Rows: [][]string{
			{"clean load @200 MHz", "1", f2(clean.LatencyUS), "n/a"},
			{"hang @310 MHz + fallback", fmt.Sprintf("%d", len(rec.Attempts)), f2(rec.TotalUS), fmt.Sprintf("%v", rec.Recovered)},
		},
	}
	rep.Notes = append(rep.Notes,
		"the recovery episode is dominated by the hang-detection timeout plus a nominal-rate reload",
		"without the CRC monitor (VF-2012) the failure would be silent — there would be nothing to recover from")
	return rep, nil
}
