package experiments

import (
	"context"
	"testing"
)

// TestFleetScenariosWorkerCountEquality pins the parallel fleet engine at
// the scenario level: every fleet scenario (E13 scale-out, E14 routing,
// E15 chaos, E16 diurnal) must emit byte-identical reports whether the
// per-epoch board advance runs sequentially or fans out over 4 goroutines.
// FleetWorkers is a wall-clock knob, never a scientific one.
func TestFleetScenariosWorkerCountEquality(t *testing.T) {
	for _, tc := range []struct {
		id  string
		cfg Config
	}{
		{"E13", Config{Seed: 42, FleetSizes: []int{2}}},
		{"E14", Config{Seed: 42}},
		{"E15", Config{Seed: 42}},
		{"E16", Config{Seed: 42}},
	} {
		tc := tc
		t.Run(tc.id, func(t *testing.T) {
			s, ok := Lookup(tc.id)
			if !ok {
				t.Fatalf("%s not registered", tc.id)
			}
			run := func(workers int) string {
				cfg := tc.cfg
				cfg.FleetWorkers = workers
				rep, err := RunSequential(context.Background(), s, cfg)
				if err != nil {
					t.Fatal(err)
				}
				out, err := rep.JSON()
				if err != nil {
					t.Fatal(err)
				}
				return string(out)
			}
			if seq, par := run(1), run(4); seq != par {
				t.Errorf("%s report changes with FleetWorkers=4", tc.id)
			}
		})
	}
}
