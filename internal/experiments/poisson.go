package experiments

import (
	"context"
	"fmt"
	"strconv"

	"repro/internal/hll"
	"repro/internal/sim"
	"repro/internal/workload"
)

// E9 exercises the Fig.-1 acceleration framework the way a deployment
// would: a Poisson request stream over the four RPs and a mix of ASPs,
// served by the on-demand scheduler at the 200 MHz operating point the
// paper recommends. The trace is a pure function of the seed and is cut
// into fixed contiguous segments; each segment replays on a fresh board
// (cold residency), which is exactly what lets a campaign shard it.

const (
	poissonTitle     = "Fig. 1 framework under Poisson load (sharded trace segments)"
	poissonRequests  = 96
	poissonSegments  = 4
	poissonMeanGapUS = 400.0
)

var poissonASPs = []string{"fir128", "sha3", "aes-gcm", "fft1k"}

func poissonShards(Config) int { return poissonSegments }

func poissonTraceFor(cfg Config) (workload.Trace, error) {
	prof, err := ProfileFor(cfg)
	if err != nil {
		return nil, err
	}
	return workload.PoissonTrace(cfg.Seed^0x9E37, poissonRequests,
		sim.FromMicroseconds(poissonMeanGapUS), prof.RPNames(), poissonASPs), nil
}

var poissonHeader = []string{"segment", "requests", "hits", "reconfigs", "failures", "reconfig [us]", "makespan [us]", "PDR overhead"}

// The partial report carries the raw segment statistics as a numeric
// series (one point per metric, in this order); merge does ALL the row
// formatting, so totals sum exact values and never re-parse display text.
const (
	pmRequests = iota
	pmHits
	pmReconfigs
	pmFailures
	pmReconfigUS
	pmMakespanUS
	pmCount
)

func poissonShard(ctx context.Context, env *Env, shard int) (*Report, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	tr, err := poissonTraceFor(env.Cfg)
	if err != nil {
		return nil, err
	}
	lo, hi := segBounds(len(tr), poissonSegments, shard)
	seg := make(workload.Trace, hi-lo)
	base := tr[lo].At
	for i, req := range tr[lo:hi] {
		req.At -= base
		seg[i] = req
	}
	if _, err := env.Controller.SetFrequencyMHz(200); err != nil {
		return nil, err
	}
	stats, err := hll.New(env.Controller).Run(seg)
	if err != nil {
		return nil, err
	}
	raw := sim.Series{Name: "e9_raw", XLabel: "metric_index", YLabel: "value"}
	for i, v := range [pmCount]float64{
		pmRequests:   float64(stats.Requests),
		pmHits:       float64(stats.Hits),
		pmReconfigs:  float64(stats.Reconfigs),
		pmFailures:   float64(stats.Failures),
		pmReconfigUS: stats.ReconfigTime.Microseconds(),
		pmMakespanUS: stats.Makespan.Microseconds(),
	} {
		raw.Append(float64(i), v)
	}
	return &Report{ID: "E9", Title: poissonTitle, Series: []sim.Series{raw}}, nil
}

func poissonMerge(cfg Config, parts []*Report) (*Report, error) {
	rep := &Report{ID: "E9", Title: poissonTitle, Header: poissonHeader}
	overheadSeries := sim.Series{Name: "e9_overhead", XLabel: "segment", YLabel: "pdr_overhead_fraction"}
	var total [pmCount]float64
	row := func(label string, m [pmCount]float64) []string {
		overhead := 0.0
		if m[pmMakespanUS] > 0 {
			overhead = m[pmReconfigUS] / m[pmMakespanUS]
		}
		return []string{
			label,
			strconv.Itoa(int(m[pmRequests])),
			strconv.Itoa(int(m[pmHits])),
			strconv.Itoa(int(m[pmReconfigs])),
			strconv.Itoa(int(m[pmFailures])),
			f2(m[pmReconfigUS]),
			f2(m[pmMakespanUS]),
			fmt.Sprintf("%.1f%%", 100*overhead),
		}
	}
	for k, p := range parts {
		var m [pmCount]float64
		for i, pt := range p.Series[0].Points {
			m[i] = pt.Y
			total[i] += pt.Y
		}
		lo, hi := segBounds(poissonRequests, poissonSegments, k)
		rep.Rows = append(rep.Rows, row(fmt.Sprintf("seg %d (req %d–%d)", k+1, lo+1, hi), m))
		if m[pmMakespanUS] > 0 {
			overheadSeries.Append(float64(k+1), m[pmReconfigUS]/m[pmMakespanUS])
		}
	}
	rep.Rows = append(rep.Rows, row("all segments", total))
	rep.Series = append(rep.Series, overheadSeries)
	overhead := 0.0
	if total[pmMakespanUS] > 0 {
		overhead = total[pmReconfigUS] / total[pmMakespanUS]
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("%d requests over 4 RPs and %d ASPs at 200 MHz; reconfiguration costs %.1f%% of the makespan — the overhead the paper's over-clocking attacks", int(total[pmRequests]), len(poissonASPs), 100*overhead),
		"segments replay on fresh boards (cold ASP residency), so the hit rate is a lower bound on a long-running deployment's")
	return rep, nil
}
