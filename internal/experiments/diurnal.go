package experiments

import (
	"context"
	"fmt"
	"os"
	"strconv"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/workload"
)

// E16 "diurnal": reactive vs predictive autoscaling over one simulated
// day. The arrival stream follows a diurnal rate curve — a quiet night, a
// morning ramp, a midday plateau, an evening tail — with a flash crowd
// spiking on top of the busy afternoon, and every request carries an SLO
// class (latency-sensitive or batch, each with its own deadline). Both
// policies serve the identical stream on identical cold-cache fleets; the
// only difference is the scaler's decision rule, so the table isolates
// what forecasting buys: the reactive policy grows one board per window
// after the spike's shed already happened, while the predictive policy
// extrapolates the building trend and pre-provisions, so its shed-rate
// through the flash window is the headline comparison. Cold caches make
// every scale-up pay a visible staging penalty — capacity added late is
// capacity that also starts cold.
//
// Shard plan: one shard per scaler policy (Config.Scaler restricts the
// run to a single policy). Each shard replays the same stream — generated
// from the campaign seed or imported from Config.TraceFile — so the
// policies face identical traffic.

const (
	diurnalTitle = "diurnal: reactive vs predictive autoscaling over a simulated day with a flash crowd"

	// One simulated "hour" is compressed to 20 ms so the whole day fits a
	// sub-second horizon; the autoscaler window matches the hour, so the
	// boards-over-time series reads directly as a daily staffing chart.
	diurnalHour = 20 * sim.Millisecond
	diurnalDay  = 24 * diurnalHour

	// The fleet and the predictive policy's planning rate: six boards
	// cover the flash peak — if the scaler has them active in time. The
	// plan rate sits far below the warm single-board knee because a board
	// in a diurnal fleet keeps re-staging cold images and serves behind a
	// deliberately shallow queue.
	diurnalFleetSize = 6
	diurnalBoardRate = 200

	// diurnalQueueCap keeps the admission queues shallow: excess demand
	// surfaces as shed (the headline metric) within the window it arrives,
	// instead of hiding in a deep queue as tail latency.
	diurnalQueueCap = 8

	// The flash crowd: +1200 req/s ramping over one hour at 16:00, holding
	// two hours, decaying over one — a ~4× spike over the afternoon base,
	// faster than any forecast horizon, so what the policies race on is
	// recovery: one window of observation versus one board per window.
	diurnalFlashPeak  = 1200
	diurnalFlashStart = 16
	diurnalFlashHours = 4

	// batchDeadline is the batch class's relaxed budget; the latency class
	// keeps the interactive serveDeadline.
	batchDeadline = 120 * sim.Millisecond
)

// diurnalHoursAt converts a whole-hour mark to stream time.
func diurnalHoursAt(n int) sim.Duration { return sim.Duration(n) * diurnalHour }

// diurnalCurve is the day's rate profile (req/s at each hour anchor) plus
// the flash crowd.
func diurnalCurve() *workload.RateCurve {
	return &workload.RateCurve{
		Points: []workload.RatePoint{
			{At: diurnalHoursAt(0), RatePerSec: 150},
			{At: diurnalHoursAt(5), RatePerSec: 120},
			{At: diurnalHoursAt(8), RatePerSec: 350},
			{At: diurnalHoursAt(12), RatePerSec: 450},
			{At: diurnalHoursAt(16), RatePerSec: 420},
			{At: diurnalHoursAt(20), RatePerSec: 250},
			{At: diurnalHoursAt(24), RatePerSec: 150},
		},
		Flashes: []workload.Flash{{
			Start:      diurnalHoursAt(diurnalFlashStart),
			Ramp:       diurnalHour,
			Hold:       2 * diurnalHour,
			Decay:      diurnalHour,
			PeakPerSec: diurnalFlashPeak,
		}},
	}
}

// diurnalSpec is the day's arrival law: the rate curve with a
// latency-heavy SLO-class mix (interactive traffic dominates a diurnal
// shape; batch rides along at a quarter of the volume).
func diurnalSpec() workload.ArrivalSpec {
	return workload.ArrivalSpec{
		Curve:    diurnalCurve(),
		Deadline: serveDeadline,
		Classes: []workload.SLOClass{
			{Name: "latency", Deadline: serveDeadline, Weight: 3},
			{Name: "batch", Deadline: batchDeadline, Weight: 1},
		},
	}
}

// diurnalBoards is E16's fleet build: a homogeneous campaign-platform
// fleet sized to cover the flash peak.
func diurnalBoards(cfg Config) []cluster.BoardSpec {
	boards := make([]cluster.BoardSpec, diurnalFleetSize)
	for i := range boards {
		boards[i] = cluster.BoardSpec{Platform: cfg.Platform}
	}
	return boards
}

// DiurnalTrace generates E16's arrival stream for a campaign
// configuration — the exact stream the scenario serves, exported so
// `pdrbench -trace-out` can persist it as a versioned trace file and a
// later run can replay it byte-identically via Config.TraceFile.
func DiurnalTrace(cfg Config) (workload.Trace, error) {
	rps, err := cluster.CommonRPs(diurnalBoards(cfg))
	if err != nil {
		return nil, err
	}
	spec := diurnalSpec()
	return spec.GenerateUntil(cfg.Seed^0x0E16, diurnalDay, rps, satASPs)
}

// diurnalStream resolves the scenario's arrival stream: Config.TraceFile
// replays a recorded day, otherwise the stream is generated from the
// campaign seed.
func diurnalStream(cfg Config) (workload.Trace, error) {
	if cfg.TraceFile == "" {
		return DiurnalTrace(cfg)
	}
	data, err := os.ReadFile(cfg.TraceFile)
	if err != nil {
		return nil, fmt.Errorf("experiments: trace file: %w", err)
	}
	tr, err := workload.ImportTrace(data)
	if err != nil {
		return nil, fmt.Errorf("experiments: trace file %s: %w", cfg.TraceFile, err)
	}
	return tr, nil
}

// diurnalPolicies is the scaler-policy axis: every policy, or just the
// one Config.Scaler selects.
func diurnalPolicies(cfg Config) []string {
	if cfg.Scaler != "" {
		return []string{cfg.Scaler}
	}
	return cluster.ScalerPolicies()
}

func diurnalShards(cfg Config) int { return len(diurnalPolicies(cfg)) }

var diurnalHeader = []string{
	"scaler", "arrivals", "completed", "shed", "flash shed", "goodput [req/s]",
	"p99 [ms]", "latency misses", "batch misses", "scale-ups", "cold stage/up [ms]",
	"active peak/final",
}

// diurnalFlashWindow sums offered and shed over the windows the flash
// crowd spans (hours 16–20 of the scaler's trajectory).
func diurnalFlashWindow(wins []cluster.WindowStat) (offered, shed int) {
	for w := diurnalFlashStart; w < diurnalFlashStart+diurnalFlashHours && w < len(wins); w++ {
		offered += wins[w].Offered
		shed += wins[w].Shed
	}
	return offered, shed
}

func diurnalShard(ctx context.Context, env *Env, shard int) (*Report, error) {
	policies := diurnalPolicies(env.Cfg)
	if shard < 0 || shard >= len(policies) {
		return nil, fmt.Errorf("experiments: diurnal shard %d out of range", shard)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	policy := policies[shard]
	tr, err := diurnalStream(env.Cfg)
	if err != nil {
		return nil, err
	}
	f, err := cluster.New(cluster.FleetConfig{
		Boards:  diurnalBoards(env.Cfg),
		Seed:    env.Cfg.Seed,
		FreqMHz: serveFreqMHz,
		Router:  cluster.LeastOutstanding(),
		Workers: env.Cfg.FleetWorkers,
		Trace:   obsFleet(env.Cfg, "E16", shard, policy),
		Autoscaler: &cluster.AutoscalerConfig{
			Window: diurnalHour,
			Min:    1,
			Max:    diurnalFleetSize,
			ShedHi: 0.01,
			// Growth is shed-driven in this scenario: the p99 trigger sits
			// above anything the shallow queues can produce, because the
			// cold-staging tail a diurnal fleet always exhibits would
			// otherwise pin the reactive policy at Max from the first cold
			// morning and erase the staffing curve being measured.
			P99HiUS:         1e6,
			ShedLo:          0,
			P99LoUS:         serveDeadline.Microseconds(),
			Policy:          cluster.ScalerPolicy(policy),
			BoardRatePerSec: diurnalBoardRate,
		},
		// Cold caches on purpose: a board the scaler activates late also
		// starts staging bitstreams from scratch, so the cold-stage column
		// prices every scale-up.
		Service: cluster.ServiceTemplate{QueueCap: diurnalQueueCap},
	})
	if err != nil {
		return nil, err
	}
	st, err := f.Serve(tr)
	if err != nil {
		return nil, err
	}
	agg := st.Aggregate
	scaleUps := 0
	for _, ev := range st.ScaleEvents {
		if ev.To > ev.From {
			scaleUps++
		}
	}
	coldPerUp := 0.0
	if scaleUps > 0 {
		coldPerUp = agg.StageTime.Seconds() * 1000 / float64(scaleUps)
	}
	flashOffered, flashShed := diurnalFlashWindow(st.Windows)
	flashFrac := 0.0
	if flashOffered > 0 {
		flashFrac = float64(flashShed) / float64(flashOffered)
	}
	classMiss := func(name string) int {
		if c, ok := agg.Classes[name]; ok {
			return c.DeadlineMisses
		}
		return 0
	}
	rep := &Report{ID: "E16", Title: diurnalTitle, SimEvents: st.KernelEvents}
	rep.Rows = append(rep.Rows, []string{
		policy,
		strconv.Itoa(st.Arrivals), strconv.Itoa(agg.Completed), strconv.Itoa(agg.Shed),
		fmt.Sprintf("%.1f%%", 100*flashFrac),
		f0(st.GoodputPerSec()),
		ms(agg.SojournUS.Quantile(0.99)),
		strconv.Itoa(classMiss("latency")), strconv.Itoa(classMiss("batch")),
		strconv.Itoa(scaleUps),
		fmt.Sprintf("%.1f", coldPerUp),
		fmt.Sprintf("%d/%d", st.PeakActive, st.FinalActive),
	})
	// Figure series: the staffing chart (active boards per hour), the
	// per-hour shed rate, and the observed (plus, for the predictive
	// policy, forecast) rate trajectory.
	boards := sim.Series{Name: "e16_" + policy + "_boards", XLabel: "hour", YLabel: "active_boards"}
	shedS := sim.Series{Name: "e16_" + policy + "_shed", XLabel: "hour", YLabel: "shed_fraction"}
	rate := sim.Series{Name: "e16_" + policy + "_rate", XLabel: "hour", YLabel: "observed_req_per_s"}
	fcast := sim.Series{Name: "e16_" + policy + "_forecast", XLabel: "hour", YLabel: "forecast_req_per_s"}
	for w, win := range st.Windows {
		hour := float64(w + 1)
		boards.Append(hour, float64(win.Active))
		frac := 0.0
		if win.Offered > 0 {
			frac = float64(win.Shed) / float64(win.Offered)
		}
		shedS.Append(hour, frac)
		rate.Append(hour, win.ObservedPerSec)
		if win.ForecastPerSec > 0 {
			fcast.Append(hour, win.ForecastPerSec)
		}
	}
	rep.Series = append(rep.Series, boards, shedS, rate)
	if len(fcast.Points) > 0 {
		rep.Series = append(rep.Series, fcast)
	}
	// The merge's comparison metrics, one summary series per policy.
	summary := sim.Series{Name: "e16_" + policy, XLabel: "metric_index", YLabel: "value"}
	summary.Append(0, flashFrac)
	summary.Append(1, st.GoodputPerSec())
	summary.Append(2, agg.SojournUS.Quantile(0.99))
	summary.Append(3, float64(classMiss("latency")))
	rep.Series = append(rep.Series, summary)
	return rep, nil
}

func diurnalMerge(cfg Config, parts []*Report) (*Report, error) {
	rep := &Report{ID: "E16", Title: diurnalTitle, Header: diurnalHeader}
	metrics := make(map[string][]sim.Point)
	for _, p := range parts {
		rep.Rows = append(rep.Rows, p.Rows...)
		rep.Series = append(rep.Series, p.Series...)
		for _, s := range p.Series {
			metrics[s.Name] = s.Points
		}
	}
	re, okR := metrics["e16_"+string(cluster.ScalerReactive)]
	pr, okP := metrics["e16_"+string(cluster.ScalerPredictive)]
	if okR && okP && len(re) == 4 && len(pr) == 4 {
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"through the flash crowd the predictive scaler sheds %.1f%% vs reactive's %.1f%% — the spike outruns any forecast, but the forecast recovers in one window of observation while the reactive policy pays one shedding window per board it is short (goodput %.0f vs %.0f req/s)",
			100*pr[0].Y, 100*re[0].Y, pr[1].Y, re[1].Y))
	}
	curve := diurnalCurve()
	source := "generated from the campaign seed"
	if cfg.TraceFile != "" {
		source = fmt.Sprintf("replayed from %s", cfg.TraceFile)
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"one simulated day (24 h compressed to %v), diurnal base rate %g–%g req/s with a +%d req/s flash crowd at hour %d; stream %s, identical for every policy",
		diurnalDay, 120.0, 450.0, diurnalFlashPeak, diurnalFlashStart, source))
	prof, err := ProfileFor(cfg)
	if err != nil {
		return nil, err
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"%d× %s fleet, cold caches, autoscaler window %v bounds 1…%d, predictive planning at %d req/s per board (Holt smoothing); SLO classes latency (%v) 3:1 over batch (%v); curve peak %.0f req/s",
		diurnalFleetSize, prof.Name, diurnalHour, diurnalFleetSize,
		diurnalBoardRate, serveDeadline, batchDeadline, curve.Peak()))
	return rep, nil
}
