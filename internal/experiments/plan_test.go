package experiments

import (
	"context"
	"math"
	"testing"

	"repro/internal/plan"
	"repro/internal/sim"
)

// TestPlanAcceptance pins the E17 headline on the standard question: the
// search must cover a non-trivial candidate space with a handful of
// verifying simulations, and the chosen plan must meet the SLO in its
// verifying simulation at strictly lower predicted watts than both
// single-knob baselines (all stock clocks, all over-clocked).
func TestPlanAcceptance(t *testing.T) {
	cfg := Config{Seed: 42}
	res, err := plan.Search(context.Background(), plan.Options{
		Workload: planWorkload(cfg),
		SLO:      planSLO(cfg),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CandidatesScored < 500 {
		t.Errorf("scored %d candidates, want ≥ 500", res.CandidatesScored)
	}
	if res.SimsRun > plan.DefaultMaxSims {
		t.Errorf("ran %d simulations, budget is %d", res.SimsRun, plan.DefaultMaxSims)
	}
	for _, v := range []struct {
		name string
		v    *plan.Verified
	}{{"chosen", res.Chosen}, {"stock", res.StockBest}, {"over-clocked", res.OverBest}} {
		if v.v == nil {
			t.Fatalf("no %s plan found", v.name)
		}
		if !v.v.Pass {
			t.Errorf("%s plan %s fails its verifying simulation", v.name, v.v.Candidate.Label())
		}
	}
	if cw := res.Chosen.Pred.Watts; cw >= res.StockBest.Pred.Watts || cw >= res.OverBest.Pred.Watts {
		t.Errorf("chosen plan at %.2f W is not strictly cheaper than stock %.2f W / over-clocked %.2f W",
			cw, res.StockBest.Pred.Watts, res.OverBest.Pred.Watts)
	}
}

// TestPlanScenarioWorkerCountEquality pins E17 at the scenario level:
// the full report must be byte-identical whether tier B's verifying
// simulations run sequentially or fan out over 4 workers.
func TestPlanScenarioWorkerCountEquality(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full E17 scenario twice")
	}
	s, ok := Lookup("E17")
	if !ok {
		t.Fatal("E17 not registered")
	}
	run := func(workers int) string {
		cfg := Config{Seed: 42, PlanWorkers: workers}
		rep, err := RunSequential(context.Background(), s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		out, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return string(out)
	}
	if seq, par := run(1), run(4); seq != par {
		t.Error("E17 report changes with PlanWorkers=4")
	}
}

// TestSurrogateCalibration checks tier A against ground truth: the
// surrogate's predicted saturation knee must track the knee the full E11
// simulation measures, on every registered platform. The cached curve —
// the regime the planner actually plans in — must agree to within 15%
// relative error; the no-cache curve (SD staging dominates, the knee sits
// between two log-spaced grid points) must land within one grid step.
func TestSurrogateCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full E11 saturation sweep")
	}
	cfg := Config{Seed: 42}
	s, ok := Lookup("E11")
	if !ok {
		t.Fatal("E11 not registered")
	}
	rep, err := RunSequential(context.Background(), s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	series := make(map[string]sim.Series)
	for _, sr := range rep.Series {
		series[sr.Name] = sr
	}

	grid := satRateGrid(cfg)
	step := func(rate float64) int {
		for i, r := range grid {
			if r == rate {
				return i
			}
		}
		t.Fatalf("knee rate %g not on the grid %v", rate, grid)
		return -1
	}
	sur := plan.NewSurrogate()
	w := plan.Workload{Requests: satRequests, ASPs: satASPs, Deadline: serveDeadline}
	for _, name := range boardNames(cfg) {
		for _, mode := range []struct {
			suffix string
			cached bool
		}{{"_cache", true}, {"_nocache", false}} {
			simSeries, ok := series["e11_"+name+mode.suffix]
			if !ok {
				t.Fatalf("missing E11 series for %s%s", name, mode.suffix)
			}
			simKnee, _ := SaturationKnee(simSeries.Points)
			pts, err := sur.KneeCurve(name, serveFreqMHz, mode.cached, grid, w)
			if err != nil {
				t.Fatal(err)
			}
			predKnee, _ := SaturationKnee(pts)
			if mode.cached {
				relErr := math.Abs(predKnee-simKnee) / simKnee
				if relErr > 0.15 {
					t.Errorf("%s cached: surrogate knee %.0f vs simulated %.0f req/s (%.0f%% error, want ≤ 15%%)",
						name, predKnee, simKnee, 100*relErr)
				}
			} else if d := step(predKnee) - step(simKnee); d < -1 || d > 1 {
				t.Errorf("%s no-cache: surrogate knee %.0f vs simulated %.0f req/s (%d grid steps apart, want ≤ 1)",
					name, predKnee, simKnee, d)
			}
		}
	}
}
