package experiments

import (
	"fmt"
	"math"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/paperdata"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/srampdr"
)

// TableI (E1): throughput vs frequency when over-clocking.
func TableI(env *Env) (*Report, error) {
	cal := &core.Calibrator{C: env.Controller, Bitstream: env.Bitstream}
	freqs := make([]float64, 0, len(paperdata.TableI))
	for _, row := range paperdata.TableI {
		freqs = append(freqs, row.FreqMHz)
	}
	points, err := cal.Sweep(freqs)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:     "E1",
		Title:  "Table I — throughput vs. frequency when over-clocking",
		Header: []string{"ICAP freq [MHz]", "Config latency [us]", "Throughput [MB/s]", "CRC", "paper latency", "paper MB/s"},
	}
	for i, pt := range points {
		paper := paperdata.TableI[i]
		lat, tput := "N/A no interrupt", "N/A"
		if pt.Result.IRQReceived {
			lat, tput = f2(pt.Result.LatencyUS), f2(pt.Result.ThroughputMBs)
		}
		plat := "N/A no interrupt"
		ptput := "N/A"
		if paper.IRQ {
			plat, ptput = f2(paper.LatencyUS), f2(paper.ThroughputMBs)
		}
		rep.Rows = append(rep.Rows, []string{
			mhz(pt.RequestedMHz), lat, tput, validity(pt.Result.CRCValid), plat, ptput,
		})
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("bitstream size %d bytes (the size Table I's latency×throughput implies)", env.Bitstream.Size()))
	return rep, nil
}

// E2 (Fig. 5), E3 (temperature stress) and E4 (Fig. 6) live in shards.go:
// they are sharded scenarios whose only implementation is the registry
// path, so every consumer — campaign, pdrbench, benchmarks, tests — runs
// the same code and reports the same numbers (use RunSequential for a
// one-call sequential execution).

// TableII (E5): power efficiency at 40 °C.
func TableII(env *Env) (*Report, error) {
	meter := power.NewMeter(env.Platform.Kernel, env.Platform.Power, 100*sim.Microsecond)
	pp := &core.PowerProfiler{C: env.Controller, Meter: meter, Bitstream: env.Bitstream}
	freqs := []float64{100, 140, 180, 200, 240, 280}
	points, err := pp.Grid(freqs, []float64{40})
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:     "E5",
		Title:  "Table II — power efficiency for over-clocking at 40 °C",
		Header: []string{"freq [MHz]", "P_PDR [W]", "throughput [MB/s]", "PpW [MB/J]", "paper PpW"},
	}
	best := 0.0
	bestF := 0.0
	for i, pt := range points {
		// The rendered MB/J comes from the quantized meter reading at the
		// live die temperature; the model-side reciprocal (EnergyPerMB, the
		// consolidated Table II math the planner also uses) must agree with
		// it to within the measurement chain's error, or the two Table II
		// formulations have drifted apart.
		if pt.ThroughputMBs > 0 {
			metered := pt.PDRWatts / pt.ThroughputMBs
			model := env.Platform.Power.EnergyPerMB(pt.FreqMHz, pt.TempC, pt.ThroughputMBs)
			if model <= 0 || math.Abs(metered-model)/model > 0.03 {
				return nil, fmt.Errorf("experiments: Table II drift at %.0f MHz: metered %.4f J/MB vs model %.4f J/MB",
					pt.FreqMHz, metered, model)
			}
		}
		rep.Rows = append(rep.Rows, []string{
			mhz(pt.FreqMHz), f2(pt.PDRWatts), f2(pt.ThroughputMBs), f0(pt.PpW), f0(paperdata.TableII[i].PpWMBperJ),
		})
		if pt.PpW > best {
			best, bestF = pt.PpW, pt.FreqMHz
		}
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("most power-efficient point: %.0f MHz at %.0f MB/J (paper: 200 MHz, ≈599 MB/J)", bestF, best))
	return rep, nil
}

// TableIII (E6): comparison with related work.
func TableIII(env *Env) (*Report, error) {
	rep := &Report{
		ID:     "E6",
		Title:  "Table III — comparison with related work",
		Header: []string{"design", "platform", "ICAP freq [MHz]", "throughput [MB/s]", "CRC", "bitstream limit"},
	}
	for _, ctrl := range baselines.All() {
		size := paperdata.BitstreamBytes
		if m := ctrl.MaxBitstreamBytes(); m != 0 && size > m {
			size = m
		}
		att, err := ctrl.Load(size, ctrl.BestMHz())
		if err != nil {
			return nil, err
		}
		limit := "none"
		if m := ctrl.MaxBitstreamBytes(); m != 0 {
			limit = fmt.Sprintf("%d KB (FIFO)", m/1024)
		}
		crc := "no"
		if ctrl.HasCRC() {
			crc = "yes"
		}
		rep.Rows = append(rep.Rows, []string{
			ctrl.Name(), ctrl.Platform(), mhz(ctrl.BestMHz()), f0(att.ThroughputMBs), crc, limit,
		})
	}
	rep.Notes = append(rep.Notes,
		"HKT-2011's 2200 MB/s holds only for ≤50 KB FIFO-resident bitstreams (the paper's caveat)")
	// Cross-check "this work" against the live DES measurement at 280 MHz.
	if _, err := env.Controller.SetFrequencyMHz(280); err != nil {
		return nil, err
	}
	res, err := env.Controller.Load("RP1", env.Bitstream)
	if err != nil {
		return nil, err
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("DES cross-check at 280 MHz: %.0f MB/s (analytic row uses the same model)", res.ThroughputMBs))
	return rep, nil
}

// SecVI (E7): the proposed SRAM-based reconfiguration environment.
func SecVI(env *Env) (*Report, error) {
	p := env.Platform
	sys, err := srampdr.New(srampdr.Config{
		Kernel: p.Kernel,
		Device: p.Device,
		Memory: p.Memory,
		DDR:    dram.NewController(p.Kernel, p.Profile.DRAM),
		TempC:  func() float64 { return p.Die.TempC() },
		Seed:   7,
	})
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:     "E7",
		Title:  "Sec. VI — proposed SRAM-based PDR (theoretical 1237.5 MB/s)",
		Header: []string{"variant", "SRAM bytes", "latency [us]", "effective MB/s", "CRC"},
	}
	for _, variant := range []struct {
		name       string
		compressed bool
	}{
		{"raw", false},
		{"compress", true},
	} {
		bs, err := buildFor(p, p.RPs[1], "sec6-"+variant.name, 21)
		if err != nil {
			return nil, err
		}
		if err := sys.Register(bs, variant.compressed); err != nil {
			return nil, err
		}
		doneLoad := false
		if err := sys.Preload(bs.Header.Name, func(srampdr.Preloaded) { doneLoad = true }); err != nil {
			return nil, err
		}
		for !doneLoad {
			if !p.Kernel.Step() {
				return nil, fmt.Errorf("experiments: preload stalled")
			}
		}
		var res *srampdr.ReconfigResult
		if err := sys.Reconfigure(func(r srampdr.ReconfigResult) { res = &r }); err != nil {
			return nil, err
		}
		for res == nil {
			if !p.Kernel.Step() {
				return nil, fmt.Errorf("experiments: reconfigure stalled")
			}
		}
		rep.Rows = append(rep.Rows, []string{
			variant.name,
			fmt.Sprintf("%d", res.BytesFromSRAM),
			f2(res.LatencyUS),
			f2(res.ThroughputMBs),
			validity(res.CRCValid),
		})
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("paper's theoretical rate: %.1f MB/s; measured DMA-path best: 790 MB/s", paperdata.SecVITheoreticalMBs),
		"the decompressor raises the effective rate further because zero runs cost no SRAM bandwidth")
	return rep, nil
}

// LatencyClaims (E8): the abstract's "about 670 µs for bitstreams of 1.2 MB"
// versus what Table I's own numbers imply.
func LatencyClaims(env *Env) (*Report, error) {
	rep := &Report{
		ID:     "E8",
		Title:  "latency-claim consistency check (abstract vs. Table I)",
		Header: []string{"bitstream", "frequency [MHz]", "predicted latency [us]"},
	}
	for _, size := range []int{paperdata.BitstreamBytes, 1200 * 1024} {
		lat := core.ExpectedLatencyUS(size, 200)
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d bytes", size), "200", f2(lat),
		})
	}
	rep.Notes = append(rep.Notes,
		"529 KB at 200 MHz gives the ≈676 µs of Table I; a true 1.2 MB image would need ≈1.55 ms",
		"conclusion: the abstract's '1.2 MB' is inconsistent with Table I; the measured bitstream was ≈529 KB")
	return rep, nil
}
