package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"
)

// Scenario is one registered, discoverable experiment. A scenario is a pure
// function of (Config, shard index): every shard runs on its own fresh Env
// (its own simulation kernel), so shards can execute in any order on any
// number of workers, and Merge — applied to the shard reports in index
// order — reconstructs byte-identical output regardless of the schedule.
type Scenario struct {
	// ID is the stable experiment id ("E1"…"E9", "A1"…"A5").
	ID string
	// Title names the paper artefact.
	Title string
	// Aliases are alternative lookup keys (the legacy pdrbench names).
	Aliases []string
	// Shards returns the fixed shard-plan size (≥1) for a configuration.
	// The plan never depends on worker count — that is what makes
	// parallel output bit-identical to sequential.
	Shards func(cfg Config) int
	// ShardConfig optionally rewrites the campaign configuration for one
	// shard before its Env is built (E10 selects a different platform per
	// shard). nil means every shard runs the campaign configuration.
	ShardConfig func(cfg Config, shard int) Config
	// Platforms optionally lists the platform profiles the scenario's
	// shards span (the cross-device scenarios sweep every board). nil
	// means the scenario runs on the campaign's selected platform.
	Platforms func(cfg Config) []string
	// Run executes one shard on a fresh Env and returns its (partial)
	// report. Single-shard scenarios ignore the shard index. Run must
	// honour ctx between measurement points.
	Run func(ctx context.Context, env *Env, shard int) (*Report, error)
	// Merge combines the per-shard reports, given in shard order, into
	// the final Report. nil means single-shard: the report is parts[0].
	Merge func(cfg Config, parts []*Report) (*Report, error)
}

var (
	registry []Scenario
	regKey   = make(map[string]int)
)

// Register adds a scenario to the package registry. It panics on a
// duplicate ID/alias or a malformed scenario — registration happens at
// init, so a panic is a build-time programming error, not a runtime one.
func Register(s Scenario) {
	if s.ID == "" || s.Title == "" || s.Run == nil {
		panic(fmt.Sprintf("experiments: invalid scenario %+v", s))
	}
	if s.Shards == nil {
		s.Shards = func(Config) int { return 1 }
	}
	idx := len(registry)
	for _, key := range append([]string{s.ID}, s.Aliases...) {
		if _, dup := regKey[key]; dup {
			panic(fmt.Sprintf("experiments: duplicate scenario key %q", key))
		}
		regKey[key] = idx
	}
	registry = append(registry, s)
}

// Lookup finds a scenario by ID or alias.
func Lookup(key string) (Scenario, bool) {
	idx, ok := regKey[key]
	if !ok {
		return Scenario{}, false
	}
	return registry[idx], true
}

// All returns every registered scenario in registration order (E1…E9 then
// A1…A5 — the order EXPERIMENTS.md presents them).
func All() []Scenario {
	out := make([]Scenario, len(registry))
	copy(out, registry)
	return out
}

// IDs returns the registered scenario IDs in registration order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, s := range registry {
		out[i] = s.ID
	}
	return out
}

// KeyList renders "E1|E2|…" for usage strings.
func KeyList() string { return strings.Join(IDs(), "|") }

// RunSequential executes every shard of the scenario in index order, each
// on a fresh Env built from cfg, and merges. This is the sequential
// reference path a parallel campaign must reproduce byte for byte; the
// root benchmarks and tests use it so every consumer of a scenario — the
// campaign, pdrbench, EXPERIMENTS.md, `go test -bench` — runs the same
// implementation and reports the same numbers.
func RunSequential(ctx context.Context, s Scenario, cfg Config) (*Report, error) {
	n := s.Shards(cfg)
	parts := make([]*Report, n)
	t0 := time.Now()
	for k := 0; k < n; k++ {
		env, err := NewEnvWith(s.EnvConfig(cfg, k))
		if err != nil {
			return nil, err
		}
		if parts[k], err = s.Run(ctx, env, k); err != nil {
			return nil, err
		}
		// Shards that run on their own simulators (fleet boards) set
		// SimEvents themselves; the env kernel covers the rest.
		parts[k].SimEvents += env.Platform.Kernel.Fired()
	}
	rep := parts[0]
	if s.Merge != nil {
		var err error
		if rep, err = s.Merge(cfg, parts); err != nil {
			return nil, err
		}
		for _, p := range parts {
			rep.SimEvents += p.SimEvents
		}
	}
	rep.WallMS = float64(time.Since(t0)) / float64(time.Millisecond)
	return rep, nil
}

// EnvConfig returns the configuration a given shard's Env must be built
// from: the campaign configuration, rewritten by ShardConfig when the
// scenario declares one.
func (s Scenario) EnvConfig(cfg Config, shard int) Config {
	if s.ShardConfig == nil {
		return cfg
	}
	return s.ShardConfig(cfg, shard)
}

// single adapts a legacy whole-artefact runner to the shard interface.
func single(fn func(*Env) (*Report, error)) func(context.Context, *Env, int) (*Report, error) {
	return func(ctx context.Context, env *Env, _ int) (*Report, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return fn(env)
	}
}

// segBounds splits n items into k contiguous segments and returns the
// half-open bounds of segment i. Segment sizes differ by at most one and
// depend only on (n, k) — part of the fixed shard plan.
func segBounds(n, k, i int) (lo, hi int) {
	base, rem := n/k, n%k
	lo = i*base + min(i, rem)
	hi = lo + base
	if i < rem {
		hi++
	}
	return lo, hi
}

func init() {
	Register(Scenario{
		ID:      "E1",
		Title:   "Table I — throughput vs. frequency when over-clocking",
		Aliases: []string{"tableI"},
		Run:     single(TableI),
	})
	Register(Scenario{
		ID:      "E2",
		Title:   "Fig. 5 — throughput vs. frequency",
		Aliases: []string{"fig5"},
		Shards:  fig5Shards,
		Run:     fig5Shard,
		Merge:   fig5Merge,
	})
	Register(Scenario{
		ID:      "E3",
		Title:   "Sec. IV-A — temperature stress (pass = CRC valid)",
		Aliases: []string{"stress"},
		Shards:  stressShards,
		Run:     stressShard,
		Merge:   stressMerge,
	})
	Register(Scenario{
		ID:      "E4",
		Title:   "Fig. 6 — P_PDR [W] vs. frequency at die temperatures",
		Aliases: []string{"fig6"},
		Shards:  fig6Shards,
		Run:     fig6Shard,
		Merge:   fig6Merge,
	})
	Register(Scenario{
		ID:      "E5",
		Title:   "Table II — power efficiency for over-clocking at 40 °C",
		Aliases: []string{"tableII"},
		Run:     single(TableII),
	})
	Register(Scenario{
		ID:      "E6",
		Title:   "Table III — comparison with related work",
		Aliases: []string{"tableIII"},
		Run:     single(TableIII),
	})
	Register(Scenario{
		ID:      "E7",
		Title:   "Sec. VI — proposed SRAM-based PDR",
		Aliases: []string{"secVI"},
		Run:     single(SecVI),
	})
	Register(Scenario{
		ID:      "E8",
		Title:   "latency-claim consistency check (abstract vs. Table I)",
		Aliases: []string{"claims"},
		Run:     single(LatencyClaims),
	})
	Register(Scenario{
		ID:      "E9",
		Title:   "Fig. 1 framework under Poisson load (sharded trace segments)",
		Aliases: []string{"poisson"},
		Shards:  poissonShards,
		Run:     poissonShard,
		Merge:   poissonMerge,
	})
	Register(Scenario{
		ID:          "E10",
		Title:       xplatTitle,
		Aliases:     []string{"xplat"},
		Shards:      xplatShards,
		ShardConfig: xplatShardConfig,
		Platforms:   boardNames,
		Run:         xplatShard,
		Merge:       xplatMerge,
	})
	Register(Scenario{
		ID:          "E11",
		Title:       satTitle,
		Aliases:     []string{"saturate"},
		Shards:      satShards,
		ShardConfig: satShardConfig,
		Platforms:   boardNames,
		Run:         satShard,
		Merge:       satMerge,
	})
	Register(Scenario{
		ID:      "E12",
		Title:   schedTitle,
		Aliases: []string{"sched"},
		Shards:  schedShards,
		Run:     schedShard,
		Merge:   schedMerge,
	})
	Register(Scenario{
		ID:        "E13",
		Title:     scaleTitle,
		Aliases:   []string{"scaleout"},
		Shards:    scaleShards,
		Platforms: boardNames,
		Run:       scaleShard,
		Merge:     scaleMerge,
	})
	Register(Scenario{
		ID:      "E14",
		Title:   routeTitle,
		Aliases: []string{"route"},
		Shards:  routeShards,
		Run:     routeShard,
		Merge:   routeMerge,
	})
	Register(Scenario{
		ID:      "E15",
		Title:   chaosTitle,
		Aliases: []string{"chaos"},
		Shards:  chaosShards,
		Run:     chaosShard,
		Merge:   chaosMerge,
	})
	Register(Scenario{
		ID:      "E16",
		Title:   diurnalTitle,
		Aliases: []string{"diurnal"},
		Shards:  diurnalShards,
		Run:     diurnalShard,
		Merge:   diurnalMerge,
	})
	Register(Scenario{
		ID:      "E17",
		Title:   planTitle,
		Aliases: []string{"plan"},
		Run:     planShard,
	})
	Register(Scenario{
		ID:      "A1",
		Title:   "CRC read-back overhead on the foreground transfer",
		Aliases: []string{"crc"},
		Run:     single(AblationCRC),
	})
	Register(Scenario{
		ID:      "A2",
		Title:   "what limits the plateau at 280 MHz",
		Aliases: []string{"knee"},
		Run:     single(AblationKnee),
	})
	Register(Scenario{
		ID:      "A3",
		Title:   "RobustGuard recovery cost after an over-clock failure",
		Aliases: []string{"guard"},
		Run:     single(AblationRobustGuard),
	})
	Register(Scenario{
		ID:      "A4",
		Title:   "reconfiguration under accelerator memory traffic (280 MHz)",
		Aliases: []string{"contention"},
		Run:     single(AblationContention),
	})
	Register(Scenario{
		ID:      "A5",
		Title:   "SEU scrubbing vs full reload (200 MHz)",
		Aliases: []string{"scrub"},
		Run:     single(AblationScrub),
	})
}
