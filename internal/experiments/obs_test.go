package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestReportJSONUnchangedByTracing is the observability acceptance bar at
// the experiment layer: running a fleet scenario with a tracer attached
// must leave the merged report's JSON byte-identical — tracing reads
// simulation state, it never advances the kernel, draws randomness, or
// leaks into the report (SimEvents/WallMS carry json:"-" precisely so the
// profiling tallies stay out of the contract).
func TestReportJSONUnchangedByTracing(t *testing.T) {
	// E15 exercises the densest instrumentation: chaos faults, health
	// probes, failover, autoscaling, repair — all traced.
	s, ok := Lookup("E15")
	if !ok {
		t.Fatal("E15 not registered")
	}
	run := func(tr *obs.Tracer) []byte {
		rep, err := RunSequential(context.Background(), s, Config{Seed: 42, Obs: tr})
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	plain := run(nil)
	tr := obs.New()
	traced := run(tr)
	if !bytes.Equal(plain, traced) {
		t.Errorf("tracing changed the E15 report JSON:\n--- plain ---\n%s\n--- traced ---\n%s", plain, traced)
	}
	// The tracer must actually have collected the scenario: one fleet per
	// router shard, each with spans and fault events.
	chrome := string(tr.Chrome())
	for _, want := range []string{"E15/00", "E15/03", `"name":"fault"`, `"name":"compute"`} {
		if !strings.Contains(chrome, want) {
			t.Errorf("E15 trace missing %s", want)
		}
	}
}

// TestScenarioSimEventsDeterministic: the per-report sim-event counter is
// a pure function of the configuration — same seed, same count, at any
// fleet fan-out — and is non-zero for the simulation scenarios.
func TestScenarioSimEventsDeterministic(t *testing.T) {
	s, ok := Lookup("E14")
	if !ok {
		t.Fatal("E14 not registered")
	}
	run := func(workers int) uint64 {
		rep, err := RunSequential(context.Background(), s, Config{Seed: 42, FleetWorkers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return rep.SimEvents
	}
	seq := run(1)
	if seq == 0 {
		t.Fatal("E14 reported zero simulation events")
	}
	if par := run(4); par != seq {
		t.Errorf("sim events vary with fleet workers: %d (w=1) vs %d (w=4)", seq, par)
	}
}
