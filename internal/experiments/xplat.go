package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/sim"
)

// E10 (xplat) re-runs the Table I sweep on every registered platform board
// (distinct silicon; presets of the same board are skipped) and decomposes
// each platform's stream/memory knee: where the measured curve leaves the
// 4·f line versus where the memory-side model (HP-port rate, DDR refresh,
// CDC handshake) predicts it. One shard per platform, each on its own
// freshly booted board of that profile — the campaign machinery parallelises
// and merges it like any other scenario.

const xplatTitle = "cross-platform Table I sweep and knee decomposition"

func xplatShards(Config) int { return len(platform.Boards()) }

// xplatShardConfig rewrites the campaign configuration so shard i's Env is
// built directly as board i — the campaign machinery then boots exactly one
// board per shard.
func xplatShardConfig(cfg Config, shard int) Config {
	if shard >= 0 && shard < len(platform.Boards()) {
		cfg.Platform = platform.Boards()[shard].Name
	}
	return cfg
}

// xplatGrid is the sweep grid for a platform: the campaign's frequency
// override when given, otherwise the board's own switch table (its
// Table-I-equivalent operational grid).
func xplatGrid(cfg Config, prof *platform.Profile) []float64 {
	if len(cfg.Freqs) > 0 {
		return cfg.Freqs
	}
	return prof.IO.SwitchTableMHz
}

func xplatShard(ctx context.Context, env *Env, shard int) (*Report, error) {
	boards := platform.Boards()
	if shard < 0 || shard >= len(boards) {
		return nil, fmt.Errorf("experiments: xplat shard %d out of range", shard)
	}
	prof := boards[shard]
	// ShardConfig makes the campaign build the Env as the shard's board
	// directly; rebuild only for callers that bypassed it.
	penv := env
	if env.Platform.Profile != prof {
		cfg := env.Cfg
		cfg.Platform = prof.Name
		var err error
		if penv, err = NewEnvWith(cfg); err != nil {
			return nil, err
		}
	}
	cal := &core.Calibrator{C: penv.Controller, Bitstream: penv.Bitstream}
	freqs := xplatGrid(penv.Cfg, prof)
	points, err := cal.SweepContext(ctx, freqs)
	if err != nil {
		return nil, err
	}

	series := sim.Series{Name: "xplat_" + prof.Name, XLabel: "frequency_mhz", YLabel: "throughput_mbs"}
	rep := &Report{ID: "E10", Title: xplatTitle}
	for _, pt := range points {
		lat, tput := "N/A no interrupt", "N/A"
		if pt.Result.IRQReceived {
			lat = f2(pt.Result.LatencyUS)
			tput = f2(pt.Result.ThroughputMBs)
			series.Append(pt.RequestedMHz, pt.Result.ThroughputMBs)
		}
		rep.Rows = append(rep.Rows, []string{
			prof.Name, mhz(pt.RequestedMHz), lat, tput,
			validity(pt.Result.CRCValid), pt.Result.Outcome.String(),
		})
	}
	measuredKnee := kneeMHz(series.Points)
	rep.Series = append(rep.Series, series)

	// Knee decomposition from the memory-side model alone: the refresh-
	// derated port slot plus the CDC tax predict both the plateau and the
	// knee; the note records how far the measured sweep agrees.
	top := freqs[len(freqs)-1]
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"%s (%s, %d-frame RPs, %d B image): measured knee ≈%.0f MHz; memory model predicts knee %.1f MHz, plateau %.1f MB/s at %.0f MHz",
		prof.Name, prof.Part, penv.Bitstream.Header.Frames, penv.Bitstream.Size(),
		measuredKnee, prof.StreamKneeMHz(), prof.MemoryPlateauMBs(top), top))
	return rep, nil
}

func xplatMerge(cfg Config, parts []*Report) (*Report, error) {
	rep := &Report{
		ID:     "E10",
		Title:  xplatTitle,
		Header: []string{"platform", "freq [MHz]", "latency [us]", "throughput [MB/s]", "CRC", "outcome"},
	}
	for _, p := range parts {
		rep.Rows = append(rep.Rows, p.Rows...)
		rep.Series = append(rep.Series, p.Series...)
		rep.Notes = append(rep.Notes, p.Notes...)
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"%d platforms swept, one fresh board per platform; the 200 MHz ZedBoard knee is a property of its memory path, and moves with it",
		len(parts)))
	return rep, nil
}
