package experiments

import (
	"context"
	"fmt"
	"strconv"

	"repro/internal/bitstream"
	"repro/internal/hll"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// This file holds the reconfiguration-service scenarios built on the
// hll.Service engine:
//
//   - E11 "saturate": an open-loop latency-vs-offered-load sweep per
//     platform board, run twice per rate — with the profile-budget DRAM
//     bitstream cache and with the cache disabled (every reconfiguration
//     re-stages its image from the SD-card backing store). The merge
//     detects each configuration's saturation knee (where the p99 sojourn
//     diverges) and reports how far the cache moves it.
//   - E12 "sched": dispatch policy × cache budget at a fixed offered load
//     on the campaign platform, under a bursty multi-tenant stream.
//
// Both scenarios shard like every other: E11 one shard per (platform,
// rate segment), E12 one shard per policy; each measurement point runs on
// its own freshly configured board, so shards are pure functions of the
// campaign configuration.

const (
	satTitle   = "saturation: p99 latency vs offered load, cache vs no-cache (per platform)"
	schedTitle = "scheduling: dispatch policy × bitstream-cache budget at fixed load"

	// satRequests is the stream length per measurement point; satSegRates
	// is the number of rate points one shard covers.
	satRequests = 96
	satSegRates = 2

	// Service parameters shared by both scenarios: the 200 MHz operating
	// point the paper recommends, a 32-deep per-RP admission queue and a
	// 20 ms deadline (a generous interactive budget).
	serveFreqMHz  = 200
	serveQueueCap = 32
	serveDeadline = 20 * sim.Millisecond

	// E12's fixed offered load and burst shape.
	schedRatePerSec  = 150
	schedBurstFactor = 4
	schedBurstLen    = 8
)

// satASPs is the served accelerator mix (the E9 mix, so the working set is
// ASPs × RPs images).
var satASPs = []string{"fir128", "sha3", "aes-gcm", "fft1k"}

var schedTenants = []string{"alpha", "beta", "gamma"}

// satRateGrid is the offered-load axis: log-spaced so it brackets both the
// no-cache knee (tens of req/s — SD staging dominates) and the cached knee
// (hundreds — the ICAP transfer plus accelerator memory contention
// dominate).
func satRateGrid(cfg Config) []float64 {
	if len(cfg.Rates) > 0 {
		return cfg.Rates
	}
	return []float64{25, 50, 100, 400, 800, 1600}
}

func satSegments(cfg Config) int {
	return (len(satRateGrid(cfg)) + satSegRates - 1) / satSegRates
}

func satShards(cfg Config) int { return len(platform.Boards()) * satSegments(cfg) }

// satShardConfig maps shard → (board, rate segment): platform-major, so a
// board's segments are contiguous and the merged rows group per platform.
func satShardConfig(cfg Config, shard int) Config {
	boards := platform.Boards()
	if seg := satSegments(cfg); seg > 0 && shard >= 0 && shard < len(boards)*seg {
		cfg.Platform = boards[shard/seg].Name
	}
	return cfg
}

func boardNames(Config) []string {
	boards := platform.Boards()
	names := make([]string, len(boards))
	for i, b := range boards {
		names[i] = b.Name
	}
	return names
}

// satSeed derives the arrival-stream seed for one rate point. Both cache
// modes replay the same stream, so their latencies are comparable.
func satSeed(cfg Config, rateIdx int) uint64 {
	return cfg.Seed ^ 0x53A7 ^ (uint64(rateIdx+1) * 0x9E3779B97F4A7C15)
}

var satHeader = []string{
	"platform", "rate [req/s]", "cache", "offered", "completed", "shed",
	"hit rate", "p50 [ms]", "p95 [ms]", "p99 [ms]", "deadline misses",
}

// envSource hands out one fresh board per measurement point. The shard's
// provided Env is itself freshly booted by the scenario runner, so it
// serves the first point (when its platform matches) instead of being
// thrown away; every later point boots its own.
type envSource struct {
	cfg   Config
	first *Env
}

func newEnvSource(cfg Config, provided *Env) *envSource {
	src := &envSource{cfg: cfg}
	// Registry profiles are singletons, so pointer equality resolves ""
	// (the default platform) correctly too.
	if prof, err := ProfileFor(cfg); err == nil && provided != nil && provided.Platform.Profile == prof {
		src.first = provided
	}
	return src
}

func (src *envSource) next() (*Env, error) {
	if env := src.first; env != nil {
		src.first = nil
		return env, nil
	}
	return NewEnvWith(src.cfg)
}

// servePoint runs one open-loop measurement on a freshly configured board.
func servePoint(src *envSource, tr workload.Trace, scfg hll.ServiceConfig) (hll.ServiceStats, error) {
	env, err := src.next()
	if err != nil {
		return hll.ServiceStats{}, err
	}
	if _, err := env.Controller.SetFrequencyMHz(serveFreqMHz); err != nil {
		return hll.ServiceStats{}, err
	}
	return hll.NewService(env.Controller, scfg).Serve(tr)
}

func ms(us float64) string { return fmt.Sprintf("%.2f", us/1000) }

func hitRate(s hll.ServiceStats) string {
	if s.Requests == 0 {
		return "0%"
	}
	return fmt.Sprintf("%.0f%%", 100*float64(s.Hits)/float64(s.Requests))
}

func satShard(ctx context.Context, env *Env, shard int) (*Report, error) {
	boards := platform.Boards()
	segs := satSegments(env.Cfg)
	if shard < 0 || shard >= len(boards)*segs {
		return nil, fmt.Errorf("experiments: saturate shard %d out of range", shard)
	}
	prof := boards[shard/segs]
	cfg := env.Cfg
	cfg.Platform = prof.Name // ShardConfig already did this for campaign runs
	src := newEnvSource(cfg, env)
	rates := satRateGrid(cfg)
	lo := (shard % segs) * satSegRates
	hi := min(lo+satSegRates, len(rates))

	rep := &Report{ID: "E11", Title: satTitle}
	cacheSeries := sim.Series{Name: "e11_" + prof.Name + "_cache", XLabel: "offered_req_per_s", YLabel: "p99_sojourn_us"}
	noneSeries := sim.Series{Name: "e11_" + prof.Name + "_nocache", XLabel: "offered_req_per_s", YLabel: "p99_sojourn_us"}
	for ri := lo; ri < hi; ri++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rate := rates[ri]
		spec := workload.ArrivalSpec{RatePerSec: rate, Deadline: serveDeadline}
		tr, err := spec.Generate(satSeed(cfg, ri), satRequests, prof.RPNames(), satASPs)
		if err != nil {
			return nil, err
		}
		for _, mode := range []struct {
			label  string
			budget int64
		}{
			{"cache", prof.BitstreamCacheBytes()},
			{"none", 0},
		} {
			stats, err := servePoint(src, tr, hll.ServiceConfig{
				CacheBudgetBytes: mode.budget,
				QueueCap:         serveQueueCap,
				StageBytesPerSec: prof.IO.SDBytesPerSec,
				// Steady-state residency: the cache run measures a warm
				// deployment; the no-cache ablation ignores the prewarm and
				// re-stages on every reconfiguration.
				PrewarmASPs: satASPs,
			})
			if err != nil {
				return nil, err
			}
			p99 := stats.SojournUS.Quantile(0.99)
			rep.Rows = append(rep.Rows, []string{
				prof.Name, f0(rate), mode.label,
				strconv.Itoa(stats.Offered), strconv.Itoa(stats.Completed), strconv.Itoa(stats.Shed),
				hitRate(stats),
				ms(stats.SojournUS.Quantile(0.50)), ms(stats.SojournUS.Quantile(0.95)), ms(p99),
				strconv.Itoa(stats.DeadlineMisses),
			})
			if mode.label == "cache" {
				cacheSeries.Append(rate, p99)
			} else {
				noneSeries.Append(rate, p99)
			}
		}
	}
	rep.Series = append(rep.Series, cacheSeries, noneSeries)
	return rep, nil
}

// SaturationKnee finds where a latency-vs-load curve diverges: the last
// offered rate whose p99 stays within 5× the lowest-rate p99. It reports
// diverged=false when the curve never leaves that band (the knee is beyond
// the swept grid).
func SaturationKnee(points []sim.Point) (knee float64, diverged bool) {
	if len(points) == 0 {
		return 0, false
	}
	base := points[0].Y
	knee = points[0].X
	for _, pt := range points[1:] {
		if base > 0 && pt.Y > 5*base {
			return knee, true
		}
		knee = pt.X
	}
	return knee, false
}

func satMerge(cfg Config, parts []*Report) (*Report, error) {
	rep := &Report{ID: "E11", Title: satTitle, Header: satHeader}
	// Stitch the per-shard series back into one curve per (platform, mode):
	// shards are platform-major with ascending rate segments, so appending
	// points in shard order keeps each curve sorted by rate.
	merged := make(map[string]*sim.Series)
	var order []string
	for _, p := range parts {
		rep.Rows = append(rep.Rows, p.Rows...)
		for _, s := range p.Series {
			if dst, ok := merged[s.Name]; ok {
				dst.Points = append(dst.Points, s.Points...)
			} else {
				cp := s
				cp.Points = append([]sim.Point(nil), s.Points...)
				merged[s.Name] = &cp
				order = append(order, s.Name)
			}
		}
	}
	for _, name := range order {
		rep.Series = append(rep.Series, *merged[name])
	}
	// Knee decomposition per platform: where each mode's p99 diverges, and
	// how far the DRAM bitstream cache moves the knee.
	for _, prof := range platform.Boards() {
		withCache, okC := merged["e11_"+prof.Name+"_cache"]
		withoutCache, okN := merged["e11_"+prof.Name+"_nocache"]
		if !okC || !okN {
			continue
		}
		kneeC, divC := SaturationKnee(withCache.Points)
		kneeN, divN := SaturationKnee(withoutCache.Points)
		geC, geN := "", ""
		if !divC {
			geC = "≥"
		}
		if !divN {
			geN = "≥"
		}
		// The shift is exact only when both knees diverged inside the grid;
		// a grid-truncated cached knee makes it a lower bound, and an
		// un-diverged no-cache knee makes it indeterminate.
		shift := "—"
		switch {
		case kneeN <= 0 || !divN:
		case divC:
			shift = fmt.Sprintf("%.0f×", kneeC/kneeN)
		default:
			shift = fmt.Sprintf("≥%.0f×", kneeC/kneeN)
		}
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"%s: saturation knee %s%.0f req/s with the DRAM bitstream cache vs %s%.0f req/s without (SD re-staging) — the cache shifts the knee %s",
			prof.Name, geC, kneeC, geN, kneeN, shift))
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"open-loop Poisson arrivals over %d-request streams at 200 MHz; per-RP queues cap at %d (excess load is shed), deadlines at %v",
		satRequests, serveQueueCap, serveDeadline))
	return rep, nil
}

// --- E12: policy × cache budget ---

var schedHeader = []string{
	"policy", "cache budget", "offered", "completed", "shed", "hit rate",
	"cache hits", "evictions", "stage [ms]", "p50 [ms]", "p95 [ms]", "p99 [ms]", "deadline misses",
}

func schedShards(Config) int { return len(sched.PolicyNames()) }

// schedBudgets is the cache-budget axis: a thrashing 4-image cache, a
// 12-image cache just under the 16-image working set, and the platform
// profile's derived budget (which holds it all).
func schedBudgets(prof *platform.Profile) []struct {
	label string
	bytes int64
} {
	dev := prof.NewDevice()
	image := int64(bitstream.ExpectedSize(dev.RegionFrames(prof.RPs(dev)[0])))
	return []struct {
		label string
		bytes int64
	}{
		{"4 images", 4 * image},
		{"12 images", 12 * image},
		{"profile", prof.BitstreamCacheBytes()},
	}
}

func schedShard(ctx context.Context, env *Env, shard int) (*Report, error) {
	names := sched.PolicyNames()
	if shard < 0 || shard >= len(names) {
		return nil, fmt.Errorf("experiments: sched shard %d out of range", shard)
	}
	policy, err := sched.PolicyByName(names[shard])
	if err != nil {
		return nil, err
	}
	prof, err := ProfileFor(env.Cfg)
	if err != nil {
		return nil, err
	}
	spec := workload.ArrivalSpec{
		RatePerSec:  schedRatePerSec,
		BurstFactor: schedBurstFactor,
		BurstLen:    schedBurstLen,
		Tenants:     schedTenants,
		Deadline:    serveDeadline,
	}
	tr, err := spec.Generate(env.Cfg.Seed^0x5C4ED, satRequests, prof.RPNames(), satASPs)
	if err != nil {
		return nil, err
	}

	rep := &Report{ID: "E12", Title: schedTitle}
	series := sim.Series{Name: "e12_" + policy.Name(), XLabel: "budget_index", YLabel: "p99_sojourn_us"}
	src := newEnvSource(env.Cfg, env)
	for bi, budget := range schedBudgets(prof) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		stats, err := servePoint(src, tr, hll.ServiceConfig{
			Policy:           policy,
			CacheBudgetBytes: budget.bytes,
			QueueCap:         serveQueueCap,
			StageBytesPerSec: prof.IO.SDBytesPerSec,
			PrewarmASPs:      satASPs,
		})
		if err != nil {
			return nil, err
		}
		p99 := stats.SojournUS.Quantile(0.99)
		rep.Rows = append(rep.Rows, []string{
			policy.Name(), budget.label,
			strconv.Itoa(stats.Offered), strconv.Itoa(stats.Completed), strconv.Itoa(stats.Shed),
			hitRate(stats),
			strconv.Itoa(stats.Cache.Hits), strconv.Itoa(stats.Cache.Evictions),
			ms(stats.StageTime.Microseconds()),
			ms(stats.SojournUS.Quantile(0.50)), ms(stats.SojournUS.Quantile(0.95)), ms(p99),
			strconv.Itoa(stats.DeadlineMisses),
		})
		series.Append(float64(bi), p99)
	}
	rep.Series = append(rep.Series, series)
	return rep, nil
}

func schedMerge(cfg Config, parts []*Report) (*Report, error) {
	rep := &Report{ID: "E12", Title: schedTitle, Header: schedHeader}
	for _, p := range parts {
		rep.Rows = append(rep.Rows, p.Rows...)
		rep.Series = append(rep.Series, p.Series...)
	}
	// Headline: policies matter most when the cache thrashes — compare p99
	// at the smallest budget, and note the convergence at the profile one.
	// Exact ties are reported jointly: on a fabric with uniform RP cuts
	// (every registered board) sbf's cost order collapses to affinity's, so
	// the two produce identical schedules by construction.
	type score struct {
		name string
		p99  float64
	}
	var scores []score
	worstP99 := 0.0
	for _, p := range parts {
		for _, s := range p.Series {
			if len(s.Points) == 0 {
				continue
			}
			p99 := s.Points[0].Y // first budget = thrashing 4-image cache
			scores = append(scores, score{name: s.Name[len("e12_"):], p99: p99})
			if p99 > worstP99 {
				worstP99 = p99
			}
		}
	}
	if len(scores) > 0 {
		best := scores[0]
		for _, sc := range scores[1:] {
			if sc.p99 < best.p99 {
				best = sc
			}
		}
		winners := ""
		for _, sc := range scores {
			if sc.p99 == best.p99 {
				if winners != "" {
					winners += "/"
				}
				winners += sc.name
			}
		}
		if best.p99 > 0 {
			rep.Notes = append(rep.Notes, fmt.Sprintf(
				"under the thrashing 4-image budget the best policy (%s) cuts p99 %.1f× vs the worst — dispatch order decides how often the ICAP reconfigures; once the profile budget holds the working set the policies converge (sbf ≡ affinity here: uniform RP cuts make every image the same size)",
				winners, worstP99/best.p99))
		}
	}
	prof, err := ProfileFor(cfg)
	if err != nil {
		return nil, err
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"bursty multi-tenant stream (%d req at %d req/s mean, %dx bursts of %d) on %s; the 4-image budget thrashes against a %d-image working set, re-staging from SD on most swaps",
		satRequests, schedRatePerSec, schedBurstFactor, schedBurstLen, prof.Name,
		len(satASPs)*len(prof.RPNames())))
	return rep, nil
}
