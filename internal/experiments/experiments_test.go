package experiments

import (
	"context"
	"math"
	"strconv"
	"strings"
	"testing"

	"repro/internal/paperdata"
)

func newEnv(t *testing.T) *Env {
	t.Helper()
	env, err := NewEnv(42)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

// runScenario executes a registered scenario through the canonical
// sequential registry path at the reference seed.
func runScenario(t *testing.T, id string) *Report {
	t.Helper()
	s, ok := Lookup(id)
	if !ok {
		t.Fatalf("scenario %s not registered", id)
	}
	rep, err := RunSequential(context.Background(), s, Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func cell(t *testing.T, rep *Report, row, col int) string {
	t.Helper()
	if row >= len(rep.Rows) || col >= len(rep.Rows[row]) {
		t.Fatalf("%s: no cell (%d,%d)", rep.ID, row, col)
	}
	return rep.Rows[row][col]
}

func num(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", s, err)
	}
	return v
}

func TestTableIAgainstPaper(t *testing.T) {
	rep, err := TableI(newEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != len(paperdata.TableI) {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	for i, paper := range paperdata.TableI {
		row := rep.Rows[i]
		if !paper.IRQ {
			if !strings.Contains(row[1], "N/A") {
				t.Errorf("%v MHz: latency %q, want N/A", paper.FreqMHz, row[1])
			}
			wantCRC := validity(paper.CRCValid)
			if row[3] != wantCRC {
				t.Errorf("%v MHz: CRC %q, want %q", paper.FreqMHz, row[3], wantCRC)
			}
			continue
		}
		lat := num(t, row[1])
		if math.Abs(lat-paper.LatencyUS)/paper.LatencyUS > 0.005 {
			t.Errorf("%v MHz: latency %v vs paper %v", paper.FreqMHz, lat, paper.LatencyUS)
		}
		tput := num(t, row[2])
		if math.Abs(tput-paper.ThroughputMBs)/paper.ThroughputMBs > 0.005 {
			t.Errorf("%v MHz: throughput %v vs paper %v", paper.FreqMHz, tput, paper.ThroughputMBs)
		}
	}
	if !strings.Contains(rep.Render(), "Table I") {
		t.Error("render missing title")
	}
}

func TestFig5ShapeAndSeries(t *testing.T) {
	rep := runScenario(t, "E2")
	if len(rep.Series) != 1 {
		t.Fatalf("series = %d", len(rep.Series))
	}
	s := rep.Series[0]
	if len(s.Points) < 15 {
		t.Fatalf("points = %d", len(s.Points))
	}
	// Linear at 100–180, flat by 240–300.
	for _, p := range s.Points {
		if p.X <= 180 {
			if math.Abs(p.Y-4*p.X)/(4*p.X) > 0.01 {
				t.Errorf("%.0f MHz: %v not on 4f line", p.X, p.Y)
			}
		}
		if p.X >= 240 && (p.Y < 780 || p.Y > 800) {
			t.Errorf("%.0f MHz: %v not on plateau", p.X, p.Y)
		}
	}
	// Knee note mentions ≈200 MHz.
	found := false
	for _, n := range rep.Notes {
		if strings.Contains(n, "200 MHz") {
			found = true
		}
	}
	if !found {
		t.Errorf("notes = %v", rep.Notes)
	}
	if !strings.Contains(s.CSV(), "frequency_mhz,throughput_mbs") {
		t.Error("CSV header missing")
	}
}

func TestTempStressSingleFailure(t *testing.T) {
	rep := runScenario(t, "E3")
	fails := 0
	var failRow, failCol int
	for r, row := range rep.Rows {
		for c, cellv := range row[1:] {
			if cellv == "FAIL" {
				fails++
				failRow, failCol = r, c
			}
		}
	}
	if fails != 1 {
		t.Fatalf("failing cells = %d, want exactly 1", fails)
	}
	if !strings.HasPrefix(rep.Rows[failRow][0], "310") {
		t.Errorf("failure at row %q, want 310 MHz", rep.Rows[failRow][0])
	}
	if rep.Header[failCol+1] != "100C" {
		t.Errorf("failure at column %q, want 100C", rep.Header[failCol+1])
	}
}

func TestFig6FamilyAgainstPaperShape(t *testing.T) {
	rep := runScenario(t, "E4")
	if len(rep.Series) != 4 {
		t.Fatalf("series = %d, want 4 temperatures", len(rep.Series))
	}
	// Row order = freqs ascending; columns: 40/60/80/100 °C. Power grows
	// along both axes.
	for i, row := range rep.Rows {
		for c := 1; c <= 4; c++ {
			v := num(t, row[c])
			if i > 0 {
				prev := num(t, rep.Rows[i-1][c])
				if v <= prev {
					t.Errorf("power not increasing in f at col %d", c)
				}
			}
			if c > 1 {
				left := num(t, row[c-1])
				if v <= left {
					t.Errorf("power not increasing in T at row %d", i)
				}
			}
		}
	}
	// 40 °C column must match Table II within the meter tolerance.
	for i, paper := range paperdata.TableII {
		v := num(t, rep.Rows[i][1])
		if math.Abs(v-paper.PDRWatts) > 0.06 {
			t.Errorf("%v MHz @40C: %v W vs paper %v", paper.FreqMHz, v, paper.PDRWatts)
		}
	}
}

func TestTableIIKneeAt200(t *testing.T) {
	rep, err := TableII(newEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	best, bestF := 0.0, 0.0
	for _, row := range rep.Rows {
		ppw := num(t, row[3])
		if ppw > best {
			best, bestF = ppw, num(t, row[0])
		}
	}
	if bestF != paperdata.KneeMHz {
		t.Errorf("knee at %v MHz, want %v", bestF, paperdata.KneeMHz)
	}
	if math.Abs(best-paperdata.BestPpW)/paperdata.BestPpW > 0.05 {
		t.Errorf("best PpW %v vs paper %v", best, paperdata.BestPpW)
	}
}

func TestTableIIIAgainstPaper(t *testing.T) {
	rep, err := TableIII(newEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	for i, paper := range paperdata.TableIII {
		row := rep.Rows[i]
		if row[0] != paper.Design || row[1] != paper.Platform {
			t.Errorf("row %d = %v", i, row)
		}
		tput := num(t, row[3])
		if math.Abs(tput-paper.ThroughputMBs)/paper.ThroughputMBs > 0.01 {
			t.Errorf("%s: %v MB/s vs paper %v", paper.Design, tput, paper.ThroughputMBs)
		}
	}
}

func TestSecVIDoublesThroughput(t *testing.T) {
	rep, err := SecVI(newEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	raw := num(t, cell(t, rep, 0, 3))
	comp := num(t, cell(t, rep, 1, 3))
	if math.Abs(raw-paperdata.SecVITheoreticalMBs)/paperdata.SecVITheoreticalMBs > 0.02 {
		t.Errorf("raw rate %v vs theoretical %v", raw, paperdata.SecVITheoreticalMBs)
	}
	if raw < 790*1.5 {
		t.Errorf("Sec. VI should beat the DMA path decisively: %v", raw)
	}
	if comp <= raw {
		t.Errorf("decompressor should raise the effective rate: %v vs %v", comp, raw)
	}
	if cell(t, rep, 0, 4) != "valid" || cell(t, rep, 1, 4) != "valid" {
		t.Error("Sec. VI transfers must verify")
	}
}

func TestLatencyClaims(t *testing.T) {
	rep, err := LatencyClaims(newEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	small := num(t, cell(t, rep, 0, 2))
	big := num(t, cell(t, rep, 1, 2))
	if math.Abs(small-676.3)/676.3 > 0.01 {
		t.Errorf("529 KB prediction %v, want ≈676", small)
	}
	if big < 1500 {
		t.Errorf("1.2 MB prediction %v, want ≈1550+", big)
	}
}

func TestAblationCRCBounded(t *testing.T) {
	rep, err := AblationCRC(newEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	base := num(t, cell(t, rep, 0, 1))
	withScan := num(t, cell(t, rep, 1, 1))
	// Interference bounded by one read-back chunk (32 frames ≈ 16 µs at
	// 200 MHz) — not a whole scan.
	if withScan-base > 25 {
		t.Errorf("scan interference %v µs too large", withScan-base)
	}
	if withScan < base-1 {
		t.Errorf("with-scan latency %v below baseline %v", withScan, base)
	}
}

func TestAblationKneeDecomposition(t *testing.T) {
	rep, err := AblationKnee(newEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	basec := num(t, cell(t, rep, 0, 1))
	noRefresh := num(t, cell(t, rep, 1, 1))
	fastPort := num(t, cell(t, rep, 2, 1))
	if noRefresh <= basec {
		t.Errorf("removing refresh should help: %v vs %v", noRefresh, basec)
	}
	// With a 2x port, 280 MHz becomes ICAP-bound: ≈4·280·(1−overhead).
	if fastPort < 1050 {
		t.Errorf("2x port should unlock ≈1110 MB/s, got %v", fastPort)
	}
}

func TestAblationRobustGuard(t *testing.T) {
	rep, err := AblationRobustGuard(newEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	clean := num(t, cell(t, rep, 0, 2))
	episode := num(t, cell(t, rep, 1, 2))
	if episode <= clean {
		t.Error("recovery episode must cost more than a clean load")
	}
	if cell(t, rep, 1, 3) != "true" {
		t.Error("guard must recover")
	}
}

func TestRenderAligned(t *testing.T) {
	rep := &Report{
		ID:     "X",
		Title:  "test",
		Header: []string{"a", "bbbb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"hello"},
	}
	out := rep.Render()
	if !strings.Contains(out, "note: hello") {
		t.Error("notes missing")
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 5 {
		t.Error("too few lines")
	}
}
