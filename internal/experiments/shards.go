package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/sim"
)

// This file holds the sharded scenario implementations: the fine-grained
// sweep (E2), the heat-gun stress matrix (E3) and the power grid (E4) split
// into independent work units — one per frequency segment or temperature —
// each running on a fresh Env. The shard plan is a function of the Config
// only, never of worker count, and the merge functions reassemble the
// shard reports in index order, so a parallel campaign reproduces the
// sequential output byte for byte.

const (
	fig5Title       = "Fig. 5 — throughput vs. frequency"
	stressTitle     = "Sec. IV-A — temperature stress (pass = CRC valid)"
	fig6Title       = "Fig. 6 — P_PDR [W] vs. frequency at die temperatures"
	fig5SegmentGoal = 3
)

// kneeMHz returns the frequency of the first throughput point falling below
// 98% of the stream-side 4·f line (0 when the curve never leaves it) — the
// knee-detection rule shared by E2 and E10.
func kneeMHz(points []sim.Point) float64 {
	for _, pt := range points {
		if pt.Y < 4*pt.X*0.98 {
			return pt.X
		}
	}
	return 0
}

func fig5Grid(cfg Config) []float64 {
	if len(cfg.Freqs) > 0 {
		return cfg.Freqs
	}
	var freqs []float64
	for f := 100.0; f <= 300; f += 10 {
		freqs = append(freqs, f)
	}
	return freqs
}

func stressGrid(cfg Config) (freqs, temps []float64) {
	freqs = []float64{100, 140, 180, 200, 240, 280, 310}
	if len(cfg.Freqs) > 0 {
		freqs = cfg.Freqs
	}
	temps = []float64{40, 50, 60, 70, 80, 90, 100}
	if len(cfg.Temps) > 0 {
		temps = cfg.Temps
	}
	return freqs, temps
}

func fig6Grid(cfg Config) (freqs, temps []float64) {
	freqs = []float64{100, 140, 180, 200, 240, 280}
	if len(cfg.Freqs) > 0 {
		freqs = cfg.Freqs
	}
	temps = []float64{40, 60, 80, 100}
	if len(cfg.Temps) > 0 {
		temps = cfg.Temps
	}
	return freqs, temps
}

// --- E2: Fig. 5 sweep, sharded into contiguous frequency segments ---

func fig5Shards(cfg Config) int {
	return min(fig5SegmentGoal, len(fig5Grid(cfg)))
}

func fig5Shard(ctx context.Context, env *Env, shard int) (*Report, error) {
	freqs := fig5Grid(env.Cfg)
	lo, hi := segBounds(len(freqs), fig5Shards(env.Cfg), shard)
	cal := &core.Calibrator{C: env.Controller, Bitstream: env.Bitstream}
	points, err := cal.SweepContext(ctx, freqs[lo:hi])
	if err != nil {
		return nil, err
	}
	series := sim.Series{Name: "fig5", XLabel: "frequency_mhz", YLabel: "throughput_mbs"}
	rep := &Report{ID: "E2", Title: fig5Title, Header: []string{"freq [MHz]", "throughput [MB/s]"}}
	for _, pt := range points {
		if !pt.Result.IRQReceived {
			continue
		}
		series.Append(pt.RequestedMHz, pt.Result.ThroughputMBs)
		rep.Rows = append(rep.Rows, []string{mhz(pt.RequestedMHz), f2(pt.Result.ThroughputMBs)})
	}
	rep.Series = append(rep.Series, series)
	return rep, nil
}

func fig5Merge(cfg Config, parts []*Report) (*Report, error) {
	rep := &Report{ID: "E2", Title: fig5Title, Header: []string{"freq [MHz]", "throughput [MB/s]"}}
	series := sim.Series{Name: "fig5", XLabel: "frequency_mhz", YLabel: "throughput_mbs"}
	for _, p := range parts {
		rep.Rows = append(rep.Rows, p.Rows...)
		series.Points = append(series.Points, p.Series[0].Points...)
	}
	knee := kneeMHz(series.Points)
	rep.Series = append(rep.Series, series)
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("curve linear until ≈%.0f MHz, then flattens (paper: ≈200 MHz)", knee),
		fmt.Sprintf("swept as %d independent frequency segments, each on a fresh board", len(parts)))
	return rep, nil
}

// --- E3: heat-gun stress matrix, sharded one temperature per unit ---

func stressShards(cfg Config) int {
	_, temps := stressGrid(cfg)
	return len(temps)
}

func stressShard(ctx context.Context, env *Env, shard int) (*Report, error) {
	freqs, temps := stressGrid(env.Cfg)
	temp := temps[shard]
	cal := &core.Calibrator{C: env.Controller, Bitstream: env.Bitstream}
	cells, err := cal.StressMatrixContext(ctx, freqs, []float64{temp})
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "E3", Title: stressTitle, Header: []string{fmt.Sprintf("%.0fC", temp)}}
	for _, cell := range cells {
		mark := "pass"
		if !cell.Passed {
			mark = "FAIL"
		}
		rep.Rows = append(rep.Rows, []string{mark})
	}
	return rep, nil
}

func stressMerge(cfg Config, parts []*Report) (*Report, error) {
	freqs, temps := stressGrid(cfg)
	header := []string{"freq\\temp"}
	for _, t := range temps {
		header = append(header, fmt.Sprintf("%.0fC", t))
	}
	rep := &Report{ID: "E3", Title: stressTitle, Header: header}
	fails := 0
	for i, f := range freqs {
		row := []string{mhz(f) + " MHz"}
		for _, p := range parts {
			mark := p.Rows[i][0]
			if mark == "FAIL" {
				fails++
			}
			row = append(row, mark)
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("%d failing cell(s); paper reports exactly one: 310 MHz @ 100 °C", fails),
		fmt.Sprintf("stressed as %d independent temperature columns, each on a freshly heated board", len(parts)))
	return rep, nil
}

// --- E4: power grid, sharded one temperature per unit ---

func fig6Shards(cfg Config) int {
	_, temps := fig6Grid(cfg)
	return len(temps)
}

func fig6Shard(ctx context.Context, env *Env, shard int) (*Report, error) {
	freqs, temps := fig6Grid(env.Cfg)
	temp := temps[shard]
	meter := power.NewMeter(env.Platform.Kernel, env.Platform.Power, 100*sim.Microsecond)
	pp := &core.PowerProfiler{C: env.Controller, Meter: meter, Bitstream: env.Bitstream}
	points, err := pp.GridContext(ctx, freqs, []float64{temp})
	if err != nil {
		return nil, err
	}
	// The partial report carries the measured column as a numeric series;
	// the merge rebuilds the formatted grid from it.
	s := sim.Series{Name: fmt.Sprintf("fig6_%.0fC", temp), XLabel: "frequency_mhz", YLabel: "pdr_watts"}
	for _, pt := range points {
		s.Append(pt.FreqMHz, pt.PDRWatts)
	}
	return &Report{ID: "E4", Title: fig6Title, Series: []sim.Series{s}}, nil
}

func fig6Merge(cfg Config, parts []*Report) (*Report, error) {
	freqs, temps := fig6Grid(cfg)
	header := []string{"freq [MHz]"}
	for _, t := range temps {
		header = append(header, fmt.Sprintf("%.0fC", t))
	}
	rep := &Report{ID: "E4", Title: fig6Title, Header: header}
	for _, p := range parts {
		rep.Series = append(rep.Series, p.Series[0])
	}
	for fi, f := range freqs {
		row := []string{mhz(f)}
		for _, p := range parts {
			row = append(row, f2(p.Series[0].Points[fi].Y))
		}
		rep.Rows = append(rep.Rows, row)
	}
	if len(freqs) > 1 {
		slope := func(p *Report) float64 {
			pts := p.Series[0].Points
			first, last := pts[0], pts[len(pts)-1]
			return (last.Y - first.Y) / (last.X - first.X)
		}
		rep.Notes = append(rep.Notes,
			fmt.Sprintf("dynamic slope %.4f W/MHz at %.0fC vs %.4f at %.0fC (paper: temperature-independent)",
				slope(parts[0]), temps[0], slope(parts[len(parts)-1]), temps[len(temps)-1]))
	}
	rep.Notes = append(rep.Notes,
		"static power grows super-linearly with temperature (paper's Fig. 6 observation)",
		fmt.Sprintf("profiled as %d independent temperature columns, each on a freshly heated board", len(parts)))
	return rep, nil
}
