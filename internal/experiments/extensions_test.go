package experiments

import (
	"testing"
)

func TestAblationContentionMonotone(t *testing.T) {
	rep, err := AblationContention(newEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	prev := 1e18
	for _, row := range rep.Rows {
		v := num(t, row[1])
		if v >= prev {
			t.Errorf("throughput should fall with traffic: %v after %v", v, prev)
		}
		prev = v
	}
	// 400 MB/s of competing traffic must cost at least 30% of the plateau.
	worst := num(t, rep.Rows[3][1])
	base := num(t, rep.Rows[0][1])
	if worst > base*0.7 {
		t.Errorf("contention too mild: %v vs %v", worst, base)
	}
}

func TestAblationScrubRepairsAndScales(t *testing.T) {
	rep, err := AblationScrub(newEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	// Every scrub row repairs exactly its upset count and ends clean.
	for _, row := range rep.Rows[:3] {
		if row[1] != row[2] {
			t.Errorf("upsets %s != repaired %s", row[1], row[2])
		}
		if row[4] != "true" {
			t.Errorf("scrub not clean: %v", row)
		}
	}
	// Scrub time grows with damage but stays within ~2.2 read-back sweeps.
	t1 := num(t, rep.Rows[0][3])
	t64 := num(t, rep.Rows[2][3])
	if t64 <= t1 {
		t.Errorf("scrub time should grow with damage: %v vs %v", t64, t1)
	}
	if t64 > 1500 {
		t.Errorf("64-upset scrub took %v µs, want < 1500", t64)
	}
	// The full-reload row rewrites all 1308 frames.
	if rep.Rows[3][2] != "1308" {
		t.Errorf("reload frames = %s", rep.Rows[3][2])
	}
}

func TestHLLTrafficSlowsReconfigUnderLoad(t *testing.T) {
	// End-to-end check that the framework's ASP traffic actually contends:
	// measured at the DMA level in AblationContention; here we just assert
	// the traffic generator moved bytes during a framework run.
	env := newEnv(t)
	if _, err := env.Controller.SetFrequencyMHz(200); err != nil {
		t.Fatal(err)
	}
	before, _, _ := env.Platform.DDR.Stats()
	_ = before
	rep, err := AblationContention(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Notes) == 0 {
		t.Error("notes missing")
	}
}
