package experiments

import (
	"context"
	"fmt"

	"repro/internal/paperdata"
	"repro/internal/plan"
	"repro/internal/sim"
)

// E17 "plan": the power-aware capacity planner. One shard: the search
// engine itself already fans its verifying simulations out over
// Config.PlanWorkers (tier B), and the tier-A surrogate scores the whole
// candidate space in milliseconds, so there is nothing left to shard.
//
// The scenario answers ROADMAP item 2's question at the standard offered
// load: meet the SLO at minimum watts, choosing between more boards at
// stock clocks and fewer over-clocked ones — then charts that frontier
// across offered load, including the Sec.-VI SRAM-PDR what-if.

const (
	planTitle = "plan: SLO at minimum watts — two-tier search (surrogate + memoized simulation)"

	// planRatePerSec sits far enough above one board's cached knee that the
	// stock-clock and over-clocked plans need different board counts — the
	// regime where the frequency knob actually trades watts for capacity.
	planRatePerSec = 2200
	planP99        = 12 * sim.Millisecond
	planShed       = 0.01
)

// planRateSweep is the offered-load axis of the frontier chart.
var planRateSweep = []float64{400, 800, 1200, 1600, 2000, 2400, 2800, 3200}

func planRate(cfg Config) float64 {
	if cfg.PlanRate > 0 {
		return cfg.PlanRate
	}
	return planRatePerSec
}

func planSLO(cfg Config) plan.SLO {
	slo := plan.SLO{P99: planP99, MaxShed: planShed}
	if cfg.PlanP99MS > 0 {
		slo.P99 = sim.Duration(cfg.PlanP99MS * float64(sim.Millisecond))
	}
	if cfg.PlanShed > 0 {
		slo.MaxShed = cfg.PlanShed
	}
	return slo
}

// planWorkload is the stream the planner plans for: the standard serve-mix
// at the configured offered load.
func planWorkload(cfg Config) plan.Workload {
	return plan.Workload{
		Seed:       cfg.Seed ^ 0xE17,
		RatePerSec: planRate(cfg),
		Requests:   fleetRequests,
		ASPs:       satASPs,
		Deadline:   serveDeadline,
	}
}

var planHeader = []string{
	"role", "configuration", "watts [W]", "pred p99 [ms]", "pred shed",
	"sim p99 [ms]", "sim shed", "SLO",
}

func planRow(role string, v *plan.Verified) []string {
	pass := "pass"
	if !v.Pass {
		pass = "fail"
	}
	return []string{
		role, v.Candidate.Label(),
		f2(v.Pred.Watts), f2(v.Pred.P99US / 1000), fmt.Sprintf("%.1f%%", 100*v.Pred.Shed),
		f2(v.SimP99US / 1000), fmt.Sprintf("%.1f%%", 100*v.SimShed),
		pass,
	}
}

// planSweepMin scores every candidate at one offered rate and returns the
// cheapest feasible configuration under the keep filter (nil when none is).
func planSweepMin(sur *plan.Surrogate, cands []plan.Candidate, w plan.Workload, slo plan.SLO,
	wi plan.WhatIf, keep func(plan.Candidate) bool) (*plan.Scored, error) {
	var best *plan.Scored
	for _, c := range cands {
		if !keep(c) {
			continue
		}
		pred, err := sur.ScoreWhatIf(c, w, slo, wi)
		if err != nil {
			return nil, err
		}
		if !pred.Feasible {
			continue
		}
		if best == nil || pred.Watts < best.Pred.Watts {
			best = &plan.Scored{Candidate: c, Pred: pred}
		}
	}
	return best, nil
}

func planShard(ctx context.Context, env *Env, _ int) (*Report, error) {
	cfg := env.Cfg
	w := planWorkload(cfg)
	slo := planSLO(cfg)
	res, err := plan.Search(ctx, plan.Options{
		Workload:     w,
		SLO:          slo,
		Workers:      cfg.PlanWorkers,
		FleetWorkers: cfg.FleetWorkers,
	})
	if err != nil {
		return nil, err
	}

	rep := &Report{ID: "E17", Title: planTitle, Header: planHeader}
	for _, v := range res.Verified {
		if !v.Memoized && v.Stats != nil {
			rep.SimEvents += v.Stats.KernelEvents
		}
	}
	role := func(v *plan.Verified) string {
		tags := ""
		add := func(match *plan.Verified, tag string) {
			if match != nil && match.Candidate.Label() == v.Candidate.Label() {
				if tags != "" {
					tags += ","
				}
				tags += tag
			}
		}
		add(res.Chosen, "chosen")
		add(res.StockBest, "stock")
		add(res.OverBest, "over-clocked")
		if tags == "" {
			tags = "frontier probe"
		}
		return tags
	}
	for i := range res.Verified {
		v := &res.Verified[i]
		rep.Rows = append(rep.Rows, planRow(role(v), v))
	}

	// The predicted Pareto frontier, in ascending watts.
	frontier := sim.Series{Name: "e17_frontier", XLabel: "watts", YLabel: "pred_p99_us"}
	for _, s := range res.Frontier {
		frontier.Append(s.Pred.Watts, s.Pred.P99US)
	}
	rep.Series = append(rep.Series, frontier)

	// The stock-vs-over-clock frontier chart across offered load, plus the
	// Sec.-VI SRAM-PDR what-if (images resident in QDR SRAM: no SD staging,
	// the theoretical 1237.5 MB/s transfer, stock clocks).
	sur := plan.NewSurrogate()
	cands := plan.Space{}.Enumerate()
	loFreq := cands[0].FreqMHz
	for _, c := range cands[1:] {
		if c.FreqMHz < loFreq {
			loFreq = c.FreqMHz
		}
	}
	stockW := sim.Series{Name: "e17_stock_watts", XLabel: "offered_req_per_s", YLabel: "min_watts"}
	ocW := sim.Series{Name: "e17_overclock_watts", XLabel: "offered_req_per_s", YLabel: "min_watts"}
	sramW := sim.Series{Name: "e17_srampdr_watts", XLabel: "offered_req_per_s", YLabel: "min_watts"}
	sramWhatIf := plan.WhatIf{XferMBs: paperdata.SecVITheoreticalMBs, NoStage: true}
	crossover := 0.0
	var sramAtPlan *plan.Scored
	for _, rate := range planRateSweep {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		wr := w
		wr.RatePerSec = rate
		stock, err := planSweepMin(sur, cands, wr, slo, plan.WhatIf{},
			func(c plan.Candidate) bool { return c.FreqMHz == loFreq })
		if err != nil {
			return nil, err
		}
		oc, err := planSweepMin(sur, cands, wr, slo, plan.WhatIf{},
			func(c plan.Candidate) bool { return c.FreqMHz > loFreq })
		if err != nil {
			return nil, err
		}
		sram, err := planSweepMin(sur, cands, wr, slo, sramWhatIf,
			func(c plan.Candidate) bool { return c.FreqMHz == loFreq })
		if err != nil {
			return nil, err
		}
		if stock != nil {
			stockW.Append(rate, stock.Pred.Watts)
		}
		if oc != nil {
			ocW.Append(rate, oc.Pred.Watts)
			if crossover == 0 && stock != nil && oc.Pred.Watts < stock.Pred.Watts {
				crossover = rate
			}
		}
		if sram != nil {
			sramW.Append(rate, sram.Pred.Watts)
		}
	}
	wPlan := w
	sramAtPlan, err = planSweepMin(sur, cands, wPlan, slo, sramWhatIf,
		func(c plan.Candidate) bool { return c.FreqMHz == loFreq })
	if err != nil {
		return nil, err
	}
	rep.Series = append(rep.Series, stockW, ocW, sramW)

	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"tier A scored %d candidates in closed form (Pareto frontier: %d); tier B verified %d of them with full fleet simulations (%d of %d budget, %d memo hits)",
		res.CandidatesScored, len(res.Frontier), len(res.Verified), res.SimsRun, plan.DefaultMaxSims, res.MemoHits))
	if res.Chosen != nil {
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"chosen: %s at %.2f W meets the SLO (p99 ≤ %v, shed ≤ %.0f%%) at %.0f req/s — sim p99 %.2f ms, shed %.1f%%",
			res.Chosen.Candidate.Label(), res.Chosen.Pred.Watts, slo.P99, 100*slo.MaxShed,
			w.RatePerSec, res.Chosen.SimP99US/1000, 100*res.Chosen.SimShed))
	} else {
		rep.Notes = append(rep.Notes, "no candidate met the SLO within the simulation budget")
	}
	if res.Chosen != nil && res.StockBest != nil && res.OverBest != nil {
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"single-knob baselines: all-stock-clock %s at %.2f W (+%.0f%%), all-over-clocked %s at %.2f W (+%.0f%%)",
			res.StockBest.Candidate.Label(), res.StockBest.Pred.Watts,
			100*(res.StockBest.Pred.Watts/res.Chosen.Pred.Watts-1),
			res.OverBest.Candidate.Label(), res.OverBest.Pred.Watts,
			100*(res.OverBest.Pred.Watts/res.Chosen.Pred.Watts-1)))
	}
	if crossover > 0 {
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"frontier crossover: below %.0f req/s more boards at stock clocks are cheaper; above it fewer over-clocked boards win (see e17_stock_watts vs e17_overclock_watts)",
			crossover))
	}
	if sramAtPlan != nil {
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"SRAM-PDR what-if (Sec. VI: %.1f MB/s, no SD staging): %s at %.2f W would carry %.0f req/s at stock clocks — memory-resident reconfiguration shifts the whole frontier down",
			paperdata.SecVITheoreticalMBs, sramAtPlan.Candidate.Label(), sramAtPlan.Pred.Watts, w.RatePerSec))
	}
	rep.Notes = append(rep.Notes,
		"the search is a pure function of (seed, workload, SLO): -plan-workers and the memo cache change wall clock, never bytes")
	return rep, nil
}
