// Package experiments regenerates every table and figure of the paper's
// evaluation from the simulation, one Scenario per artefact (the experiment
// index of DESIGN.md §4). Each scenario returns a Report holding the
// formatted rows the paper prints plus machine-readable series for the
// figures; the pdrbench command, the root benchmarks and the generated
// EXPERIMENTS.md all consume these scenarios so the numbers in all three
// always agree.
//
// Scenarios are registered at init in a package registry (see registry.go)
// and discovered by ID ("E1"…"E9", "A1"…"A5") or legacy alias ("tableI"…).
// Every scenario declares a fixed shard plan — independent work units that
// each run on a fresh Env — so a campaign can execute shards on any number
// of workers and merge by index to byte-identical output.
package experiments

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/bitstream"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/zynq"
)

// Report is one regenerated artefact.
type Report struct {
	// ID is the experiment id from DESIGN.md (e.g. "E1").
	ID string `json:"id"`
	// Title names the paper artefact (e.g. "Table I").
	Title string `json:"title"`
	// Header and Rows are the formatted table.
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	// Series carries figure data (CSV-renderable).
	Series []sim.Series `json:"series,omitempty"`
	// Notes records paper-vs-measured commentary for EXPERIMENTS.md.
	Notes []string `json:"notes,omitempty"`

	// SimEvents counts the simulation events fired producing this report
	// (board kernels for fleet scenarios, the env kernel otherwise);
	// WallMS is the wall-clock cost of computing it. Both feed the
	// pdrbench summary table only — excluded from the JSON encoding so
	// report files stay byte-identical across machines, worker counts,
	// and tracing on/off.
	SimEvents uint64  `json:"-"`
	WallMS    float64 `json:"-"`
}

// Render formats the report as an aligned text table. Rows may be ragged —
// wider or narrower than the header — and still align: column widths cover
// the widest row, and missing cells render empty.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", r.ID, r.Title)
	cols := len(r.Header)
	for _, row := range r.Rows {
		if len(row) > cols {
			cols = len(row)
		}
	}
	widths := make([]int, cols)
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, w := range widths {
			if i > 0 {
				b.WriteString("  ")
			}
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			fmt.Fprintf(&b, "%-*s", w, cell)
		}
		b.WriteByte('\n')
	}
	line(r.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// JSON renders the report with a stable field order and indentation, so
// byte-comparing two encodings is a valid equality check.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// EncodeJSON renders a suite of reports as one stable JSON document.
func EncodeJSON(reports []*Report) ([]byte, error) {
	out, err := json.MarshalIndent(reports, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

func mdEscape(s string) string { return strings.ReplaceAll(s, "|", "\\|") }

// Markdown renders the report as a GitHub-flavoured markdown section.
func (r *Report) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s — %s\n\n", mdEscape(r.ID), mdEscape(r.Title))
	cols := len(r.Header)
	for _, row := range r.Rows {
		if len(row) > cols {
			cols = len(row)
		}
	}
	cell := func(cells []string, i int) string {
		if i < len(cells) {
			return mdEscape(cells[i])
		}
		return ""
	}
	for i := 0; i < cols; i++ {
		fmt.Fprintf(&b, "| %s ", cell(r.Header, i))
	}
	b.WriteString("|\n")
	for i := 0; i < cols; i++ {
		b.WriteString("|---")
	}
	b.WriteString("|\n")
	for _, row := range r.Rows {
		for i := 0; i < cols; i++ {
			fmt.Fprintf(&b, "| %s ", cell(row, i))
		}
		b.WriteString("|\n")
	}
	if len(r.Series) > 0 {
		names := make([]string, len(r.Series))
		for i, s := range r.Series {
			names[i] = s.Name
		}
		fmt.Fprintf(&b, "\nFigure series (CSV via `pdrbench -csv`): %s.\n", strings.Join(names, ", "))
	}
	if len(r.Notes) > 0 {
		b.WriteString("\n")
		for _, n := range r.Notes {
			fmt.Fprintf(&b, "- %s\n", n)
		}
	}
	return b.String()
}

// MarkdownSuite renders a full EXPERIMENTS.md: a generation banner, the
// experiment index, then one section per report. The output is a pure
// function of (reports, cfg) — the cfg must be the one the reports were
// generated with, so the shard column matches the run — which lets CI diff
// the committed file against a fresh `pdrbench -md` run.
func MarkdownSuite(reports []*Report, cfg Config) string {
	var b strings.Builder
	b.WriteString("<!-- Generated by `go run ./cmd/pdrbench -md`. Do not edit by hand: CI regenerates this file and fails on drift. -->\n\n")
	b.WriteString("# EXPERIMENTS — regenerated paper artefacts\n\n")
	fmt.Fprintf(&b, "Every table and figure of the paper's evaluation, regenerated from the\nsimulation at seed %d. Each experiment shard runs on a freshly booted\nsimulated ZedBoard, so any schedule of the shards — sequential or a\nparallel campaign — produces exactly this file.\n\n", cfg.Seed)
	b.WriteString("| ID | Artefact | Shards |\n|----|----------|--------|\n")
	for _, r := range reports {
		shards := 1
		if s, ok := Lookup(r.ID); ok {
			shards = s.Shards(cfg)
		}
		fmt.Fprintf(&b, "| %s | %s | %d |\n", mdEscape(r.ID), mdEscape(r.Title), shards)
	}
	for _, r := range reports {
		b.WriteString("\n")
		b.WriteString(r.Markdown())
	}
	return b.String()
}

// Config parameterises a campaign run: the seed, the simulated board
// variant, and optional grid overrides consumed by the sweep/stress/power
// scenarios. The zero value is the paper's calibrated setup at seed 0.
type Config struct {
	// Seed drives every stochastic model.
	Seed uint64
	// Platform names the registered platform profile the campaign's boards
	// are built as ("" ⇒ the default zedboard). See internal/platform.
	Platform string
	// AmbientC is the room temperature (0 ⇒ the profile's boot ambient).
	AmbientC float64
	// SlowThermal selects the physical 2 s thermal time constant instead
	// of the fast test-friendly one.
	SlowThermal bool
	// NominalMHz overrides the initial over-clock frequency (0 ⇒ 100).
	NominalMHz float64
	// Freqs overrides the frequency axis of the grid scenarios (E2, E3,
	// E4); nil keeps the paper grids.
	Freqs []float64
	// Temps overrides the temperature axis of the stress/power scenarios
	// (E3, E4); nil keeps the paper grids.
	Temps []float64
	// Rates overrides the offered-load axis (requests/s) of the saturation
	// scenario (E11); nil keeps the standard sweep grid.
	Rates []float64
	// FleetSizes overrides the fleet-size axis of the scale-out scenario
	// (E13); nil keeps the standard {1, 2, 4, 8} sweep. The shard plan
	// reshapes with the grid, independent of worker count.
	FleetSizes []int
	// Router names the routing policy the scale-out scenario (E13) serves
	// through ("" = least-outstanding; see cluster.RouterNames). The
	// routing scenario (E14) sweeps every policy regardless.
	Router string
	// ChaosCrashes, ChaosExcursions and ChaosGlitches override the chaos
	// scenario's (E15) fault storm: 0 keeps the standard storm, a negative
	// value removes that fault class entirely.
	ChaosCrashes    int
	ChaosExcursions int
	ChaosGlitches   int
	// TraceFile, when set, replays the diurnal scenario's (E16) arrival
	// stream from a versioned trace file (see workload.ImportTrace)
	// instead of generating it from the seed. The file's content becomes
	// part of the campaign configuration: identical bytes, identical run.
	TraceFile string
	// Scaler restricts the diurnal scenario (E16) to a single autoscaler
	// policy ("" compares every policy; see cluster.ScalerPolicies).
	Scaler string
	// FleetWorkers bounds the goroutines each fleet scenario's epoch
	// advance fans out over (≤ 1 = sequential). Purely a wall-clock knob:
	// fleet output is byte-identical at every setting, so it is not part
	// of the scientific configuration.
	FleetWorkers int
	// PlanWorkers bounds the planner scenario's (E17) tier-B simulation
	// fan-out (≤ 1 = sequential). Like FleetWorkers it is wall-clock
	// only: the search result is byte-identical at every setting.
	PlanWorkers int
	// PlanRate overrides the planner's offered load in req/s (0 = the
	// scenario default, 2200).
	PlanRate float64
	// PlanP99MS overrides the planner's p99 SLO in milliseconds (0 = the
	// scenario default, 12 ms).
	PlanP99MS float64
	// PlanShed overrides the planner's maximum shed fraction (0 = the
	// scenario default, 1%).
	PlanShed float64
	// Obs, when non-nil, collects deterministic spans and sim-time metrics
	// from the fleet scenarios (see internal/obs): each shard registers
	// its fleet under "<scenario>/<shard>" so the export is ordered by
	// key, not by campaign schedule. Like FleetWorkers it is not part of
	// the scientific configuration — report output is byte-identical with
	// or without it.
	Obs *obs.Tracer
}

// obsFleet registers one shard's fleet with the campaign tracer (nil —
// and therefore free — when tracing is off). The "<id>/<shard>" key
// orders the export deterministically whatever schedule ran the shards;
// the label names the Perfetto process group.
func obsFleet(cfg Config, id string, shard int, label string) *obs.FleetTrace {
	return cfg.Obs.Fleet(fmt.Sprintf("%s/%02d", id, shard), label)
}

// Env is a fresh measurement setup: platform, controller and the standard
// 529 KB partial bitstream, plus the campaign configuration that built it.
type Env struct {
	Platform   *zynq.Platform
	Controller *core.Controller
	Bitstream  *bitstream.Bitstream
	// Cfg is the configuration this Env was built from (grids, seed).
	Cfg Config
}

// NewEnv builds a booted platform with the standard test bitstream (the
// "fir128" ASP on RP1 — any ASP yields the same calibrated size).
func NewEnv(seed uint64) (*Env, error) {
	return NewEnvWith(Config{Seed: seed})
}

// ProfileFor resolves the configuration's platform profile.
func ProfileFor(cfg Config) (*platform.Profile, error) {
	prof, ok := platform.Lookup(cfg.Platform)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown platform %q (want %s)", cfg.Platform, platform.NameList())
	}
	return prof, nil
}

// NewEnvWith is NewEnv with the full campaign configuration applied.
func NewEnvWith(cfg Config) (*Env, error) {
	prof, err := ProfileFor(cfg)
	if err != nil {
		return nil, err
	}
	p, err := zynq.NewPlatform(zynq.Options{
		Seed:        cfg.Seed,
		Profile:     prof,
		AmbientC:    cfg.AmbientC,
		NominalMHz:  cfg.NominalMHz,
		FastThermal: !cfg.SlowThermal,
	})
	if err != nil {
		return nil, err
	}
	p.ConfigureStatic()
	c := core.New(p)
	asp, err := workload.LibraryASP("fir128")
	if err != nil {
		return nil, err
	}
	bs, err := asp.Bitstream(p.Device, p.RPs[0])
	if err != nil {
		return nil, err
	}
	return &Env{Platform: p, Controller: c, Bitstream: bs, Cfg: cfg}, nil
}

// freshFrames returns a second bitstream (the paper's SD card carried two).
func (e *Env) secondBitstream() (*bitstream.Bitstream, error) {
	asp, err := workload.LibraryASP("sha3")
	if err != nil {
		return nil, err
	}
	return asp.Bitstream(e.Platform.Device, e.Platform.RPs[0])
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f0(v float64) string  { return fmt.Sprintf("%.0f", v) }
func mhz(v float64) string { return fmt.Sprintf("%.0f", v) }

// validity renders the paper's CRC column.
func validity(ok bool) string {
	if ok {
		return "valid"
	}
	return "not valid"
}

// frameStd is a shared helper for building a standard-size bitstream for an
// arbitrary region (used by SecVI and ablations).
func buildFor(p *zynq.Platform, rp fabric.Region, name string, seed uint64) (*bitstream.Bitstream, error) {
	asp := workload.ASP{Name: name, FillFraction: 0.55, Seed: seed}
	return bitstream.Build(p.Device, rp, name, asp.Frames(p.Device, rp))
}
