// Package experiments regenerates every table and figure of the paper's
// evaluation from the simulation, one runner per artefact (the experiment
// index of DESIGN.md §4). Each runner returns a Report holding the formatted
// rows the paper prints plus machine-readable series for the figures; the
// pdrbench command, the root benchmarks and EXPERIMENTS.md all consume these
// runners so the numbers in all three always agree.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/bitstream"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/zynq"
)

// Report is one regenerated artefact.
type Report struct {
	// ID is the experiment id from DESIGN.md (e.g. "E1").
	ID string
	// Title names the paper artefact (e.g. "Table I").
	Title string
	// Header and Rows are the formatted table.
	Header []string
	Rows   [][]string
	// Series carries figure data (CSV-renderable).
	Series []sim.Series
	// Notes records paper-vs-measured commentary for EXPERIMENTS.md.
	Notes []string
}

// Render formats the report as an aligned text table.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(r.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Env is a fresh measurement setup: platform, controller and the standard
// 529 KB partial bitstream.
type Env struct {
	Platform   *zynq.Platform
	Controller *core.Controller
	Bitstream  *bitstream.Bitstream
}

// NewEnv builds a booted platform with the standard test bitstream (the
// "fir128" ASP on RP1 — any ASP yields the same calibrated size).
func NewEnv(seed uint64) (*Env, error) {
	p, err := zynq.NewPlatform(zynq.Options{Seed: seed, FastThermal: true})
	if err != nil {
		return nil, err
	}
	p.ConfigureStatic()
	c := core.New(p)
	asp, err := workload.LibraryASP("fir128")
	if err != nil {
		return nil, err
	}
	bs, err := asp.Bitstream(p.Device, p.RPs[0])
	if err != nil {
		return nil, err
	}
	return &Env{Platform: p, Controller: c, Bitstream: bs}, nil
}

// freshFrames returns a second bitstream (the paper's SD card carried two).
func (e *Env) secondBitstream() (*bitstream.Bitstream, error) {
	asp, err := workload.LibraryASP("sha3")
	if err != nil {
		return nil, err
	}
	return asp.Bitstream(e.Platform.Device, e.Platform.RPs[0])
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f0(v float64) string  { return fmt.Sprintf("%.0f", v) }
func mhz(v float64) string { return fmt.Sprintf("%.0f", v) }

// validity renders the paper's CRC column.
func validity(ok bool) string {
	if ok {
		return "valid"
	}
	return "not valid"
}

// frameStd is a shared helper for building a standard-size bitstream for an
// arbitrary region (used by SecVI and ablations).
func buildFor(p *zynq.Platform, rp fabric.Region, name string, seed uint64) (*bitstream.Bitstream, error) {
	asp := workload.ASP{Name: name, FillFraction: 0.55, Seed: seed}
	return bitstream.Build(p.Device, rp, name, asp.Frames(p.Device, rp))
}
