package experiments

import (
	"context"
	"strconv"
	"strings"
	"testing"
)

// TestScaleoutScenarioSmallGrid runs E13 through the canonical sequential
// path on a reduced size grid: one board versus two, above the single-board
// knee, checking the headline the scenario exists to measure — goodput
// scales with fleet size.
func TestScaleoutScenarioSmallGrid(t *testing.T) {
	s, ok := Lookup("E13")
	if !ok {
		t.Fatal("E13 not registered")
	}
	cfg := Config{Seed: 42, FleetSizes: []int{1, 2}}
	if got := s.Shards(cfg); got != 6 {
		t.Fatalf("shards = %d, want 6 (2 compositions × (2 sizes + auto))", got)
	}
	rep, err := RunSequential(context.Background(), s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rep.Rows))
	}
	// Goodput (column 6) must grow from 1 to 2 boards in both compositions.
	goodput := func(row []string) float64 {
		v, err := strconv.ParseFloat(row[6], 64)
		if err != nil {
			t.Fatalf("goodput cell %q: %v", row[6], err)
		}
		return v
	}
	for _, comp := range []int{0, 3} { // first row of each composition block
		one, two := goodput(rep.Rows[comp]), goodput(rep.Rows[comp+1])
		if two <= 1.5*one {
			t.Errorf("%s: goodput %v → %v from 1 to 2 boards, want ≥1.5× scaling", rep.Rows[comp][0], one, two)
		}
	}
	// The autoscaled rows carry the active-set trajectory and a note.
	autoRows := 0
	for _, row := range rep.Rows {
		if strings.Contains(row[0], "(auto)") {
			autoRows++
		}
	}
	if autoRows != 2 {
		t.Errorf("auto rows = %d, want one per composition", autoRows)
	}
	scalingNotes := 0
	for _, n := range rep.Notes {
		if strings.Contains(n, "goodput scales") {
			scalingNotes++
		}
	}
	if scalingNotes != 2 {
		t.Errorf("scaling notes = %d, want one per composition:\n%v", scalingNotes, rep.Notes)
	}
	// Goodput series stitched per composition, sorted by fleet size.
	series := map[string]int{}
	for _, sr := range rep.Series {
		series[sr.Name] = len(sr.Points)
	}
	if series["e13_zedboard_goodput"] != 2 || series["e13_mixed_p99"] != 2 {
		t.Errorf("series shape wrong: %v", series)
	}
}

// TestRouteScenarioAffinityWins runs E14 sequentially and checks the
// acceptance headline: bitstream-affinity routing beats round-robin on
// both cache hit ratio and p99 under skewed image popularity.
func TestRouteScenarioAffinityWins(t *testing.T) {
	s, ok := Lookup("E14")
	if !ok {
		t.Fatal("E14 not registered")
	}
	cfg := Config{Seed: 42}
	rep, err := RunSequential(context.Background(), s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d, want one per router", len(rep.Rows))
	}
	metrics := map[string][2]float64{} // router → {hit ratio, p99 us}
	for _, sr := range rep.Series {
		if len(sr.Points) == 2 {
			metrics[strings.TrimPrefix(sr.Name, "e14_")] = [2]float64{sr.Points[0].Y, sr.Points[1].Y}
		}
	}
	aff, rr := metrics["affinity"], metrics["round-robin"]
	if aff[0] <= rr[0] {
		t.Errorf("affinity hit ratio %.2f must beat round-robin %.2f", aff[0], rr[0])
	}
	if aff[1] >= rr[1] {
		t.Errorf("affinity p99 %.0f us must beat round-robin %.0f us", aff[1], rr[1])
	}
	headline := false
	for _, n := range rep.Notes {
		if strings.Contains(n, "bitstream-affinity") {
			headline = true
		}
	}
	if !headline {
		t.Errorf("missing affinity headline note:\n%v", rep.Notes)
	}
}

// TestFleetScenarioDeterminism repeats a reduced E13 and full E14 run and
// requires byte-identical reports — the fleet scenarios inherit the
// campaign's pure-function contract.
func TestFleetScenarioDeterminism(t *testing.T) {
	for _, tc := range []struct {
		id  string
		cfg Config
	}{
		{"E13", Config{Seed: 42, FleetSizes: []int{2}}},
		{"E14", Config{Seed: 42}},
	} {
		s, ok := Lookup(tc.id)
		if !ok {
			t.Fatalf("%s not registered", tc.id)
		}
		run := func() string {
			rep, err := RunSequential(context.Background(), s, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			out, err := rep.JSON()
			if err != nil {
				t.Fatal(err)
			}
			return string(out)
		}
		if a, b := run(), run(); a != b {
			t.Errorf("%s reports differ across identical runs", tc.id)
		}
	}
}
