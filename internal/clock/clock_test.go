package clock

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// sevenSeries mirrors the ZedBoard's MMCM limits (the calibrated copy lives
// in internal/platform; these tests only need a representative space).
var sevenSeries = Limits{
	VCOMin: 600 * sim.MHz, VCOMax: 1200 * sim.MHz,
	MultMin: 2, MultMax: 64, MultStep: 0.125,
	DivMin: 1, DivMax: 106,
	OutDivMin: 1, OutDivMax: 128,
	MaxPFD: 550 * sim.MHz, MinPFD: 10 * sim.MHz,
}

const testLockTime = 100 * sim.Microsecond

func testWizard(k *sim.Kernel, out *Domain) (*Wizard, error) {
	return NewWizard(k, WizardConfig{Fin: 100 * sim.MHz, Limits: sevenSeries, LockTime: testLockTime}, out)
}

func TestDomainBasics(t *testing.T) {
	d := NewDomain("icap", 100*sim.MHz)
	if d.Name() != "icap" {
		t.Errorf("Name = %q", d.Name())
	}
	if d.Freq() != 100*sim.MHz {
		t.Errorf("Freq = %v", d.Freq())
	}
	if d.Period() != 10*sim.Nanosecond {
		t.Errorf("Period = %v", d.Period())
	}
	if d.Cycles(10) != 100*sim.Nanosecond {
		t.Errorf("Cycles(10) = %v", d.Cycles(10))
	}
}

func TestDomainSetFreqNotifies(t *testing.T) {
	d := NewDomain("x", 100*sim.MHz)
	var got []sim.Hz
	d.OnChange(func(f sim.Hz) { got = append(got, f) })
	d.SetFreq(200 * sim.MHz)
	d.SetFreq(280 * sim.MHz)
	if len(got) != 2 || got[0] != 200*sim.MHz || got[1] != 280*sim.MHz {
		t.Errorf("notifications = %v", got)
	}
}

func TestDomainRejectsNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDomain("bad", 0)
}

func TestManagerOutputs(t *testing.T) {
	m := NewManager(100*sim.MHz, "clk1", "clk2", "clk3", "clk4", "clk5")
	names := m.Names()
	if len(names) != 5 || names[0] != "clk1" || names[4] != "clk5" {
		t.Errorf("Names = %v", names)
	}
	if m.Domain("clk3") == nil {
		t.Error("clk3 missing")
	}
	if m.Domain("nope") != nil {
		t.Error("unexpected domain")
	}
	// Independence: changing clk1 must not affect clk2.
	m.Domain("clk1").SetFreq(250 * sim.MHz)
	if m.Domain("clk2").Freq() != 100*sim.MHz {
		t.Error("clk2 frequency changed with clk1")
	}
}

func TestSolvePaperFrequencies(t *testing.T) {
	// Every frequency exercised by the paper must be reachable from the
	// 100 MHz FCLK within 0.5%.
	for _, mhz := range []float64{100, 140, 180, 200, 240, 280, 310, 320, 360} {
		target := sim.Hz(mhz * 1e6)
		s, err := sevenSeries.Solve(100*sim.MHz, target)
		if err != nil {
			t.Fatalf("Solve(100MHz, %v MHz): %v", mhz, err)
		}
		vco := s.VCO(100 * sim.MHz)
		if vco < sevenSeries.VCOMin || vco > sevenSeries.VCOMax {
			t.Errorf("%v MHz: VCO %v outside [%v,%v]", mhz, vco, sevenSeries.VCOMin, sevenSeries.VCOMax)
		}
		got := s.Output(100 * sim.MHz)
		rel := math.Abs(float64(got)-float64(target)) / float64(target)
		if rel > 0.005 {
			t.Errorf("%v MHz: achieved %v (error %.3f%%)", mhz, got, rel*100)
		}
	}
}

func TestSolveExactCases(t *testing.T) {
	tests := []struct {
		target sim.Hz
	}{
		{200 * sim.MHz}, // e.g. M=12 D=1 O=6 → VCO 1200, out 200
		{100 * sim.MHz},
		{550 * sim.MHz}, // the Sec.-VI SRAM clock
	}
	for _, tt := range tests {
		s, err := sevenSeries.Solve(100*sim.MHz, tt.target)
		if err != nil {
			t.Fatalf("Solve(%v): %v", tt.target, err)
		}
		if got := s.Output(100 * sim.MHz); math.Abs(float64(got-tt.target)) > 1 {
			t.Errorf("Solve(%v) output = %v (%v)", tt.target, got, s)
		}
	}
}

func TestSolveUnreachable(t *testing.T) {
	if _, err := sevenSeries.Solve(100*sim.MHz, 5*sim.GHz); err == nil {
		t.Error("5 GHz should be unreachable")
	}
	if _, err := sevenSeries.Solve(100*sim.MHz, 0); err == nil {
		t.Error("zero target should error")
	}
}

func TestSolveVCOConstraintProperty(t *testing.T) {
	// Property: any solution returned keeps the VCO inside its legal range
	// and achieves the target within 0.5%.
	prop := func(raw uint16) bool {
		mhz := float64(80 + raw%520) // 80..599 MHz
		target := sim.Hz(mhz * 1e6)
		s, err := sevenSeries.Solve(100*sim.MHz, target)
		if err != nil {
			return true // unreachable is acceptable; correctness is about returned solutions
		}
		vco := s.VCO(100 * sim.MHz)
		if vco < sevenSeries.VCOMin || vco > sevenSeries.VCOMax {
			return false
		}
		rel := math.Abs(float64(s.Output(100*sim.MHz))-float64(target)) / float64(target)
		return rel <= 0.005
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWizardSetRateTakesLockTime(t *testing.T) {
	k := sim.NewKernel()
	out := NewDomain("icap", 100*sim.MHz)
	w, err := testWizard(k, out)
	if err != nil {
		t.Fatal(err)
	}
	var lockedAt sim.Time
	var achieved sim.Hz
	actual, err := w.SetRate(200*sim.MHz, func(f sim.Hz) {
		lockedAt = k.Now()
		achieved = f
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Locked() {
		t.Error("wizard should be unlocked during re-programming")
	}
	if out.Freq() != 100*sim.MHz {
		t.Error("output changed before lock")
	}
	k.Run()
	if !w.Locked() {
		t.Error("wizard should re-lock")
	}
	if lockedAt != sim.Time(testLockTime) {
		t.Errorf("locked at %v, want %v", lockedAt, sim.Time(testLockTime))
	}
	if achieved != actual {
		t.Errorf("callback freq %v != returned %v", achieved, actual)
	}
	if math.Abs(float64(out.Freq())-200e6) > 1e6*0.005*200 {
		t.Errorf("output = %v, want ≈200MHz", out.Freq())
	}
	if w.Relocks() != 1 {
		t.Errorf("Relocks = %d, want 1", w.Relocks())
	}
}

func TestWizardRejectsUnreachable(t *testing.T) {
	k := sim.NewKernel()
	out := NewDomain("icap", 100*sim.MHz)
	w, err := testWizard(k, out)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.SetRate(9*sim.GHz, nil); err == nil {
		t.Error("expected error for unreachable rate")
	}
	if out.Freq() != 100*sim.MHz {
		t.Error("output must be unchanged after failed SetRate")
	}
}

func TestSettingsString(t *testing.T) {
	s := Settings{Mult: 12, Div: 1, OutDiv: 6}
	if got := s.String(); got != "M=12.000 D=1 O=6.000" {
		t.Errorf("String = %q", got)
	}
}
