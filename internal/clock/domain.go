// Package clock models the clocking resources of the Zynq-7000 PL used by
// the paper: programmable clock domains, the Xilinx Clock Wizard (an MMCM
// behind an AXI-Lite reconfiguration interface) and the multi-output "Clock
// Manager" of the paper's acceleration framework (Fig. 1), which gives every
// reconfigurable partition its own clock.
package clock

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Domain is a named clock domain whose frequency can change at run time
// (the over-clocking experiments re-program it between transfers).
//
// Hardware models sample the frequency when they schedule work, so a
// frequency change takes effect at the next scheduling point — matching real
// hardware, where in-flight bursts complete on the old clock edge timing.
//
// Domain is not safe for concurrent use: like every model in this repository
// it lives on the single-threaded simulation kernel, whose event ordering is
// the synchronisation. Freq/Period/Cycles are plain field reads on the
// datapath's hottest path (one per burst), so they must stay lock-free.
type Domain struct {
	name string

	freq      sim.Hz
	period    sim.Duration
	listeners []func(sim.Hz)
}

// NewDomain creates a clock domain at the given initial frequency.
func NewDomain(name string, freq sim.Hz) *Domain {
	if freq <= 0 {
		panic(fmt.Sprintf("clock: non-positive frequency for domain %q", name))
	}
	return &Domain{name: name, freq: freq, period: freq.Period()}
}

// Name returns the domain name.
func (d *Domain) Name() string { return d.name }

// Freq returns the current frequency.
func (d *Domain) Freq() sim.Hz { return d.freq }

// Period returns the current clock period (cached at SetFreq time).
func (d *Domain) Period() sim.Duration { return d.period }

// Cycles returns the duration of n cycles at the current frequency.
func (d *Domain) Cycles(n int64) sim.Duration { return sim.Cycles(n, d.freq) }

// SetFreq changes the domain frequency and notifies listeners.
func (d *Domain) SetFreq(f sim.Hz) {
	if f <= 0 {
		panic(fmt.Sprintf("clock: non-positive frequency for domain %q", d.name))
	}
	d.freq = f
	d.period = f.Period()
	// Ranging over the current slice header keeps notification stable even
	// if a listener registers another listener mid-walk.
	for _, fn := range d.listeners {
		fn(f)
	}
}

// OnChange registers a callback invoked (synchronously) after every
// frequency change. Used by the power model to track dynamic power and by
// the DMA/ICAP models to refresh their cached per-cycle timings.
func (d *Domain) OnChange(fn func(sim.Hz)) {
	d.listeners = append(d.listeners, fn)
}

// Manager is the paper's "Clock Manager": a bank of independently
// programmable clock outputs (CLK 1–5 in Fig. 1) so each reconfigurable
// partition can run at the frequency its ASP timing closure allows.
type Manager struct {
	domains map[string]*Domain
}

// NewManager creates a manager with the given named outputs, all starting at
// the nominal frequency.
func NewManager(nominal sim.Hz, names ...string) *Manager {
	m := &Manager{domains: make(map[string]*Domain, len(names))}
	for _, n := range names {
		m.domains[n] = NewDomain(n, nominal)
	}
	return m
}

// Domain returns the named output, or nil if it does not exist.
func (m *Manager) Domain(name string) *Domain { return m.domains[name] }

// Names returns the sorted output names.
func (m *Manager) Names() []string {
	out := make([]string, 0, len(m.domains))
	for n := range m.domains {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
