package clock

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/sim"
)

// MMCM parameter limits for a 7-series device of the Zynq-7020 class
// (speed grade -1). The Clock Wizard searches this space.
const (
	// VCO operating range.
	VCOMin sim.Hz = 600 * sim.MHz
	VCOMax sim.Hz = 1200 * sim.MHz
	// Multiplier M (CLKFBOUT_MULT), divider D (DIVCLK_DIVIDE) and output
	// divider O (CLKOUT_DIVIDE). Real hardware allows fractional M and O in
	// 0.125 steps on CLKOUT0; we model the integer grid plus eighth steps
	// for M, which is what the Wizard uses to hit targets like 310 MHz.
	MultMin, MultMax     = 2.0, 64.0
	DivMin, DivMax       = 1, 106
	OutDivMin, OutDivMax = 1.0, 128.0
	// MultStep is the fractional-divide granularity.
	MultStep = 0.125
	// MaxPFD is the maximum phase-frequency-detector input (Fin/D).
	MaxPFD sim.Hz = 550 * sim.MHz
	// MinPFD is the minimum PFD input.
	MinPFD sim.Hz = 10 * sim.MHz
)

// LockTime is the worst-case MMCM lock time after re-programming. Every
// frequency change through the Wizard costs this much simulated time, which
// is why the paper sets the frequency once per experiment rather than
// per transfer.
const LockTime = 100 * sim.Microsecond

// Settings is one feasible MMCM configuration.
type Settings struct {
	Mult   float64 // CLKFBOUT_MULT (M)
	Div    int     // DIVCLK_DIVIDE (D)
	OutDiv float64 // CLKOUT_DIVIDE (O)
}

// VCO returns the VCO frequency for input fin.
func (s Settings) VCO(fin sim.Hz) sim.Hz {
	return sim.Hz(float64(fin) * s.Mult / float64(s.Div))
}

// Output returns the output frequency for input fin.
func (s Settings) Output(fin sim.Hz) sim.Hz {
	return sim.Hz(float64(fin) * s.Mult / (float64(s.Div) * s.OutDiv))
}

func (s Settings) String() string {
	return fmt.Sprintf("M=%.3f D=%d O=%.3f", s.Mult, s.Div, s.OutDiv)
}

// ErrUnreachable reports that no MMCM setting can produce the requested
// frequency within tolerance.
var ErrUnreachable = errors.New("clock: requested frequency unreachable by MMCM")

// Solve finds the MMCM settings whose output is closest to target given
// input fin. It returns ErrUnreachable when the best achievable error
// exceeds 0.5%.
func Solve(fin, target sim.Hz) (Settings, error) {
	if target <= 0 || fin <= 0 {
		return Settings{}, fmt.Errorf("clock: non-positive frequency (fin=%v target=%v)", fin, target)
	}
	best := Settings{}
	bestErr := math.Inf(1)
	for d := DivMin; d <= DivMax; d++ {
		pfd := sim.Hz(float64(fin) / float64(d))
		if pfd > MaxPFD || pfd < MinPFD {
			continue
		}
		for m := MultMin; m <= MultMax; m += MultStep {
			vco := sim.Hz(float64(fin) * m / float64(d))
			if vco < VCOMin || vco > VCOMax {
				continue
			}
			// Ideal output divider, snapped to the grid.
			ideal := float64(vco) / float64(target)
			for _, o := range snapOutDiv(ideal) {
				if o < OutDivMin || o > OutDivMax {
					continue
				}
				out := float64(vco) / o
				relErr := math.Abs(out-float64(target)) / float64(target)
				if relErr < bestErr {
					bestErr = relErr
					best = Settings{Mult: m, Div: d, OutDiv: o}
				}
			}
		}
	}
	if math.IsInf(bestErr, 1) || bestErr > 0.005 {
		return best, fmt.Errorf("%w: %v from %v (best error %.3f%%)",
			ErrUnreachable, target, fin, bestErr*100)
	}
	return best, nil
}

// snapOutDiv returns candidate output dividers around the ideal value on the
// 0.125 fractional grid (CLKOUT0 supports eighth steps).
func snapOutDiv(ideal float64) []float64 {
	lo := math.Floor(ideal*8) / 8
	return []float64{lo, lo + MultStep}
}

// Wizard models the Xilinx Clock Wizard IP: an MMCM whose output divider is
// re-programmed over AXI-Lite at run time. SetRate blocks simulated time for
// the MMCM lock period.
type Wizard struct {
	kernel *sim.Kernel
	fin    sim.Hz
	out    *Domain

	settings Settings
	locked   bool
	relocks  int
}

// NewWizard creates a Clock Wizard fed by fin and driving the given output
// domain at its current frequency (assumed already locked at construction,
// as after FPGA configuration).
func NewWizard(k *sim.Kernel, fin sim.Hz, out *Domain) (*Wizard, error) {
	s, err := Solve(fin, out.Freq())
	if err != nil {
		return nil, fmt.Errorf("clock: initial rate: %w", err)
	}
	return &Wizard{kernel: k, fin: fin, out: out, settings: s, locked: true}, nil
}

// Output returns the driven domain.
func (w *Wizard) Output() *Domain { return w.out }

// Settings returns the current MMCM configuration.
func (w *Wizard) Settings() Settings { return w.settings }

// Locked reports whether the MMCM is locked (false during re-programming).
func (w *Wizard) Locked() bool { return w.locked }

// Relocks returns how many times the wizard has been re-programmed.
func (w *Wizard) Relocks() int { return w.relocks }

// SetRate re-programs the MMCM for the target frequency. The callback fires
// after the lock time with the exact achieved frequency; the output domain is
// updated at lock. It returns the achieved frequency immediately for
// convenience (it is exact, not an estimate).
func (w *Wizard) SetRate(target sim.Hz, done func(actual sim.Hz)) (sim.Hz, error) {
	s, err := Solve(w.fin, target)
	if err != nil {
		return 0, err
	}
	actual := s.Output(w.fin)
	w.locked = false
	w.relocks++
	w.kernel.Schedule(LockTime, func() {
		w.settings = s
		w.out.SetFreq(actual)
		w.locked = true
		if done != nil {
			done(actual)
		}
	})
	return actual, nil
}
