package clock

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/sim"
)

// Limits bound the MMCM parameter space the Clock Wizard searches: the VCO
// operating range, the multiplier M (CLKFBOUT_MULT), divider D
// (DIVCLK_DIVIDE), output divider O (CLKOUT_DIVIDE) and the
// phase-frequency-detector input range. Real hardware allows fractional M
// and O in MultStep increments on CLKOUT0. Which limits a given part and
// speed grade has is calibration and lives in internal/platform.
type Limits struct {
	VCOMin, VCOMax       sim.Hz
	MultMin, MultMax     float64
	MultStep             float64
	DivMin, DivMax       int
	OutDivMin, OutDivMax float64
	MaxPFD, MinPFD       sim.Hz
}

// Settings is one feasible MMCM configuration.
type Settings struct {
	Mult   float64 // CLKFBOUT_MULT (M)
	Div    int     // DIVCLK_DIVIDE (D)
	OutDiv float64 // CLKOUT_DIVIDE (O)
}

// VCO returns the VCO frequency for input fin.
func (s Settings) VCO(fin sim.Hz) sim.Hz {
	return sim.Hz(float64(fin) * s.Mult / float64(s.Div))
}

// Output returns the output frequency for input fin.
func (s Settings) Output(fin sim.Hz) sim.Hz {
	return sim.Hz(float64(fin) * s.Mult / (float64(s.Div) * s.OutDiv))
}

func (s Settings) String() string {
	return fmt.Sprintf("M=%.3f D=%d O=%.3f", s.Mult, s.Div, s.OutDiv)
}

// ErrUnreachable reports that no MMCM setting can produce the requested
// frequency within tolerance.
var ErrUnreachable = errors.New("clock: requested frequency unreachable by MMCM")

// Solve finds the MMCM settings whose output is closest to target given
// input fin. It returns ErrUnreachable when the best achievable error
// exceeds 0.5%.
func (l Limits) Solve(fin, target sim.Hz) (Settings, error) {
	if target <= 0 || fin <= 0 {
		return Settings{}, fmt.Errorf("clock: non-positive frequency (fin=%v target=%v)", fin, target)
	}
	best := Settings{}
	bestErr := math.Inf(1)
	for d := l.DivMin; d <= l.DivMax; d++ {
		pfd := sim.Hz(float64(fin) / float64(d))
		if pfd > l.MaxPFD || pfd < l.MinPFD {
			continue
		}
		for m := l.MultMin; m <= l.MultMax; m += l.MultStep {
			vco := sim.Hz(float64(fin) * m / float64(d))
			if vco < l.VCOMin || vco > l.VCOMax {
				continue
			}
			// Ideal output divider, snapped to the grid.
			ideal := float64(vco) / float64(target)
			for _, o := range l.snapOutDiv(ideal) {
				if o < l.OutDivMin || o > l.OutDivMax {
					continue
				}
				out := float64(vco) / o
				relErr := math.Abs(out-float64(target)) / float64(target)
				if relErr < bestErr {
					bestErr = relErr
					best = Settings{Mult: m, Div: d, OutDiv: o}
				}
			}
		}
	}
	if math.IsInf(bestErr, 1) || bestErr > 0.005 {
		return best, fmt.Errorf("%w: %v from %v (best error %.3f%%)",
			ErrUnreachable, target, fin, bestErr*100)
	}
	return best, nil
}

// snapOutDiv returns candidate output dividers around the ideal value on the
// fractional grid (CLKOUT0 supports MultStep steps).
func (l Limits) snapOutDiv(ideal float64) []float64 {
	steps := 1 / l.MultStep
	lo := math.Floor(ideal*steps) / steps
	return []float64{lo, lo + l.MultStep}
}

// WizardConfig parameterises a Clock Wizard instance: the reference input,
// the MMCM limits of the part, and the worst-case lock time paid on every
// re-programming (which is why the paper sets the frequency once per
// experiment rather than per transfer).
type WizardConfig struct {
	Fin      sim.Hz
	Limits   Limits
	LockTime sim.Duration
}

// Wizard models the Xilinx Clock Wizard IP: an MMCM whose output divider is
// re-programmed over AXI-Lite at run time. SetRate blocks simulated time for
// the MMCM lock period.
type Wizard struct {
	kernel *sim.Kernel
	cfg    WizardConfig
	out    *Domain

	settings Settings
	locked   bool
	relocks  int
}

// NewWizard creates a Clock Wizard with the given configuration driving the
// output domain at its current frequency (assumed already locked at
// construction, as after FPGA configuration).
func NewWizard(k *sim.Kernel, cfg WizardConfig, out *Domain) (*Wizard, error) {
	s, err := cfg.Limits.Solve(cfg.Fin, out.Freq())
	if err != nil {
		return nil, fmt.Errorf("clock: initial rate: %w", err)
	}
	return &Wizard{kernel: k, cfg: cfg, out: out, settings: s, locked: true}, nil
}

// Output returns the driven domain.
func (w *Wizard) Output() *Domain { return w.out }

// Settings returns the current MMCM configuration.
func (w *Wizard) Settings() Settings { return w.settings }

// Locked reports whether the MMCM is locked (false during re-programming).
func (w *Wizard) Locked() bool { return w.locked }

// Relocks returns how many times the wizard has been re-programmed.
func (w *Wizard) Relocks() int { return w.relocks }

// SetRate re-programs the MMCM for the target frequency. The callback fires
// after the lock time with the exact achieved frequency; the output domain is
// updated at lock. It returns the achieved frequency immediately for
// convenience (it is exact, not an estimate).
func (w *Wizard) SetRate(target sim.Hz, done func(actual sim.Hz)) (sim.Hz, error) {
	s, err := w.cfg.Limits.Solve(w.cfg.Fin, target)
	if err != nil {
		return 0, err
	}
	actual := s.Output(w.cfg.Fin)
	w.locked = false
	w.relocks++
	w.kernel.Schedule(w.cfg.LockTime, func() {
		w.settings = s
		w.out.SetFreq(actual)
		w.locked = true
		if done != nil {
			done(actual)
		}
	})
	return actual, nil
}
