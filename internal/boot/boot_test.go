package boot

import (
	"testing"
	"testing/quick"
)

func sampleParts() []Partition {
	return []Partition{
		{Name: PartFSBL, Data: []byte("fsbl-code")},
		{Name: PartBitstream, Data: make([]byte, 4096)},
		{Name: PartApp, Data: []byte("the C program")},
	}
}

func TestBuildParseRoundTrip(t *testing.T) {
	raw, err := Build(sampleParts())
	if err != nil {
		t.Fatal(err)
	}
	img, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	names := img.Names()
	if len(names) != 3 || names[0] != PartApp || names[1] != PartBitstream || names[2] != PartFSBL {
		t.Errorf("Names = %v", names)
	}
	app, err := img.Partition(PartApp)
	if err != nil || string(app) != "the C program" {
		t.Errorf("app partition: %q %v", app, err)
	}
	if img.TotalBytes() != 9+4096+13 {
		t.Errorf("TotalBytes = %d", img.TotalBytes())
	}
}

func TestBuildValidation(t *testing.T) {
	cases := []struct {
		name  string
		parts []Partition
	}{
		{"no fsbl", []Partition{{Name: PartApp, Data: []byte{1}}}},
		{"empty name", []Partition{{Name: "", Data: nil}, {Name: PartFSBL}}},
		{"long name", []Partition{{Name: "seventeen-bytes-x", Data: nil}, {Name: PartFSBL}}},
		{"duplicate", []Partition{{Name: PartFSBL}, {Name: PartFSBL}}},
	}
	for _, tc := range cases {
		if _, err := Build(tc.parts); err == nil {
			t.Errorf("%s: Build should fail", tc.name)
		}
	}
}

func TestParseRejectsCorruption(t *testing.T) {
	raw, err := Build(sampleParts())
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte: checksum must catch it.
	bad := make([]byte, len(raw))
	copy(bad, raw)
	bad[len(bad)-1] ^= 0xFF
	if _, err := Parse(bad); err == nil {
		t.Error("payload corruption undetected")
	}
	// Truncations and garbage.
	if _, err := Parse(raw[:10]); err == nil {
		t.Error("truncated header accepted")
	}
	if _, err := Parse([]byte("garbage!")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Parse(nil); err == nil {
		t.Error("nil accepted")
	}
}

func TestPartitionLookupMissing(t *testing.T) {
	raw, _ := Build(sampleParts())
	img, _ := Parse(raw)
	if _, err := img.Partition("nope"); err == nil {
		t.Error("missing partition accepted")
	}
}

func TestRoundTripProperty(t *testing.T) {
	prop := func(fsbl, bits, app []byte) bool {
		raw, err := Build([]Partition{
			{Name: PartFSBL, Data: fsbl},
			{Name: PartBitstream, Data: bits},
			{Name: PartApp, Data: app},
		})
		if err != nil {
			return false
		}
		img, err := Parse(raw)
		if err != nil {
			return false
		}
		got, err := img.Partition(PartBitstream)
		if err != nil || len(got) != len(bits) {
			return false
		}
		for i := range bits {
			if got[i] != bits[i] {
				return false
			}
		}
		return img.TotalBytes() == len(fsbl)+len(bits)+len(app)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
