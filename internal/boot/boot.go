// Package boot implements the boot image the ZedBoard's SD card carries: a
// BOOT.BIN-style container holding the first-stage boot loader, the static
// PL bitstream and the bare-metal application, each partition protected by
// a checksum — the "application software … loaded on an SD memory card"
// of the paper's test flow (Fig. 4).
package boot

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
)

// Standard partition names the boot ROM / FSBL look for.
const (
	PartFSBL      = "fsbl"
	PartBitstream = "bitstream"
	PartApp       = "app"
)

const (
	magic      = "ZBOOTIMG"
	headerSize = 16             // magic + version + count
	entrySize  = 16 + 4 + 4 + 4 // name + offset + length + crc
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Partition is one named payload in the image.
type Partition struct {
	Name string
	Data []byte
}

// Build assembles a boot image from partitions. Names must be unique, at
// most 16 bytes, and the image must include an FSBL (the boot ROM refuses
// to start without one).
func Build(parts []Partition) ([]byte, error) {
	names := make(map[string]bool, len(parts))
	hasFSBL := false
	for _, p := range parts {
		if len(p.Name) == 0 || len(p.Name) > 16 {
			return nil, fmt.Errorf("boot: bad partition name %q", p.Name)
		}
		if names[p.Name] {
			return nil, fmt.Errorf("boot: duplicate partition %q", p.Name)
		}
		names[p.Name] = true
		if p.Name == PartFSBL {
			hasFSBL = true
		}
	}
	if !hasFSBL {
		return nil, fmt.Errorf("boot: image lacks an %q partition", PartFSBL)
	}

	tableLen := headerSize + entrySize*len(parts)
	img := make([]byte, tableLen)
	copy(img[0:8], magic)
	binary.BigEndian.PutUint32(img[8:12], 1)
	binary.BigEndian.PutUint32(img[12:16], uint32(len(parts)))

	offset := tableLen
	for i, p := range parts {
		e := headerSize + i*entrySize
		copy(img[e:e+16], p.Name)
		binary.BigEndian.PutUint32(img[e+16:e+20], uint32(offset))
		binary.BigEndian.PutUint32(img[e+20:e+24], uint32(len(p.Data)))
		binary.BigEndian.PutUint32(img[e+24:e+28], crc32.Checksum(p.Data, castagnoli))
		offset += len(p.Data)
	}
	for _, p := range parts {
		img = append(img, p.Data...)
	}
	return img, nil
}

// Image is a parsed boot container.
type Image struct {
	parts map[string][]byte
}

// Parse validates and decodes a boot image, checking every partition's CRC.
func Parse(raw []byte) (*Image, error) {
	if len(raw) < headerSize || string(raw[0:8]) != magic {
		return nil, fmt.Errorf("boot: not a boot image")
	}
	count := int(binary.BigEndian.Uint32(raw[12:16]))
	tableLen := headerSize + entrySize*count
	if len(raw) < tableLen {
		return nil, fmt.Errorf("boot: truncated partition table")
	}
	img := &Image{parts: make(map[string][]byte, count)}
	for i := 0; i < count; i++ {
		e := headerSize + i*entrySize
		name := cstr(raw[e : e+16])
		off := int(binary.BigEndian.Uint32(raw[e+16 : e+20]))
		length := int(binary.BigEndian.Uint32(raw[e+20 : e+24]))
		want := binary.BigEndian.Uint32(raw[e+24 : e+28])
		if off < tableLen || off+length > len(raw) {
			return nil, fmt.Errorf("boot: partition %q out of bounds", name)
		}
		data := raw[off : off+length]
		if got := crc32.Checksum(data, castagnoli); got != want {
			return nil, fmt.Errorf("boot: partition %q checksum mismatch", name)
		}
		img.parts[name] = data
	}
	if _, ok := img.parts[PartFSBL]; !ok {
		return nil, fmt.Errorf("boot: image lacks an %q partition", PartFSBL)
	}
	return img, nil
}

func cstr(b []byte) string {
	for i, c := range b {
		if c == 0 {
			return string(b[:i])
		}
	}
	return string(b)
}

// Partition returns a named payload.
func (i *Image) Partition(name string) ([]byte, error) {
	data, ok := i.parts[name]
	if !ok {
		return nil, fmt.Errorf("boot: no partition %q", name)
	}
	return data, nil
}

// Names lists partitions alphabetically.
func (i *Image) Names() []string {
	out := make([]string, 0, len(i.parts))
	for n := range i.parts {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// TotalBytes is the payload volume (what the SD card must stream at boot).
func (i *Image) TotalBytes() int {
	total := 0
	for _, d := range i.parts {
		total += len(d)
	}
	return total
}
