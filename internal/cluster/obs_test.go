package cluster

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// obsShape is the densest traced configuration: autoscaler, chaos with
// every fault class, hedging, health probes — so the trace exercises
// every span and event kind the fleet emits.
func obsShape(workers int, ft *obs.FleetTrace) FleetConfig {
	return FleetConfig{
		Boards: zedboards(3), Seed: 42, FreqMHz: 200, Workers: workers,
		Router: LeastOutstanding(),
		Trace:  ft,
		Autoscaler: &AutoscalerConfig{
			Window: 25 * sim.Millisecond,
			Min:    2, Max: 3,
			ShedHi: 0.01, P99HiUS: (20 * sim.Millisecond).Microseconds(),
			ShedLo: -1, P99LoUS: 0,
		},
		Chaos: &ChaosConfig{
			Schedule: []chaos.Event{
				{At: 20 * sim.Millisecond, Board: 1, Kind: chaos.HeatOn, TempC: 80},
				{At: 40 * sim.Millisecond, Board: 0, Kind: chaos.BoardDown},
				// Board 1: the autoscaler starts at Min=2 active boards, so the
				// glitch must land on a board that has actually served (and
				// holds a resident image) for the alarm + scrub to fire.
				{At: 50 * sim.Millisecond, Board: 1, Kind: chaos.CRCGlitch, Frames: 2},
				{At: 60 * sim.Millisecond, Board: 1, Kind: chaos.HeatOff},
				{At: 80 * sim.Millisecond, Board: 0, Kind: chaos.BoardUp},
			},
			ProbeEvery: 20 * sim.Millisecond,
			Hedge:      true,
		},
		Service: ServiceTemplate{Prewarm: testASPs, Repair: "scrub"},
	}
}

func obsServe(t *testing.T, workers int, tracer *obs.Tracer) *FleetStats {
	t.Helper()
	var ft *obs.FleetTrace
	if tracer != nil {
		ft = tracer.Fleet("fleet/00", "obs equality")
	}
	f := mustFleet(t, obsShape(workers, ft))
	spec := workload.ArrivalSpec{
		RatePerSec: 600,
		Skew:       1.1,
		Deadline:   20 * sim.Millisecond,
		Tenants:    []string{"alpha", "beta"},
	}
	st, err := f.Serve(mustTrace(t, spec, 17, 144, f.RPNames()))
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestFleetTraceWorkerEquality is the observability tentpole's equality
// bar: the Chrome trace-event export and the metrics export must be
// byte-identical whatever the epoch fan-out width, because spans buffer
// per board and merge in index order at export time.
func TestFleetTraceWorkerEquality(t *testing.T) {
	export := func(workers int) ([]byte, []byte, *FleetStats) {
		tr := obs.New()
		st := obsServe(t, workers, tr)
		mj, err := tr.MetricsJSON()
		if err != nil {
			t.Fatal(err)
		}
		return tr.Chrome(), mj, st
	}
	c1, m1, s1 := export(1)
	for _, w := range []int{4, 8} {
		cw, mw, sw := export(w)
		if !bytes.Equal(c1, cw) {
			t.Errorf("workers=%d chrome export diverges from sequential", w)
		}
		if !bytes.Equal(m1, mw) {
			t.Errorf("workers=%d metrics export diverges from sequential", w)
		}
		if !reflect.DeepEqual(s1, sw) {
			t.Errorf("workers=%d stats diverge from sequential", w)
		}
	}
	// The storm shape must actually have produced the event classes the
	// instrumentation claims to cover.
	s := string(c1)
	for _, want := range []string{
		`"name":"queue"`, `"name":"compute"`, `"name":"reconfig"`,
		`"name":"crash"`, `"name":"recover"`, `"name":"fault"`,
		`"name":"probe-down"`, `"name":"probe-up"`, `"name":"epoch"`,
		`"name":"crc-alarm"`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("traced storm missing %s", want)
		}
	}
	for _, want := range []string{"board00.watts", "board00.queued", "fleet.active_boards"} {
		if !strings.Contains(string(m1), want) {
			t.Errorf("metrics export missing %s", want)
		}
	}
}

// TestFleetTraceRepairSpan pins the scrub-repair span on the recipe that
// guarantees one: a single-image stream, so every post-glitch dispatch on
// the upset RP is a cache hit and the alarm must clear via explicit scrub.
func TestFleetTraceRepairSpan(t *testing.T) {
	tr := obs.New()
	f := mustFleet(t, FleetConfig{
		Boards:  zedboards(2),
		Seed:    42,
		FreqMHz: 200,
		Router:  RoundRobin(),
		Trace:   tr.Fleet("fleet/00", "repair"),
		Chaos: &ChaosConfig{
			Schedule: []chaos.Event{
				{At: 30 * sim.Millisecond, Board: 0, Kind: chaos.CRCGlitch, Frames: 2},
			},
		},
		Service: ServiceTemplate{Prewarm: []string{"fir128"}, Repair: "scrub"},
	})
	spec := workload.ArrivalSpec{RatePerSec: 600, Deadline: 20 * sim.Millisecond}
	stream, err := spec.Generate(17, 96, f.RPNames(), []string{"fir128"})
	if err != nil {
		t.Fatal(err)
	}
	st, err := f.Serve(stream)
	if err != nil {
		t.Fatal(err)
	}
	if st.Aggregate.Repairs == 0 {
		t.Fatal("recipe no longer produces a repair")
	}
	s := string(tr.Chrome())
	if !strings.Contains(s, `"name":"repair"`) || !strings.Contains(s, `"detail":"scrub"`) {
		t.Error("repair span missing from the trace")
	}
	if !strings.Contains(s, `"name":"crc-alarm"`) {
		t.Error("crc-alarm instant missing from the trace")
	}
}

// TestFleetTraceDoesNotPerturb: attaching a tracer must leave FleetStats
// DeepEqual to the untraced run — observability reads state, never
// advances the kernel or draws randomness.
func TestFleetTraceDoesNotPerturb(t *testing.T) {
	plain := obsServe(t, 1, nil)
	traced := obsServe(t, 1, obs.New())
	if !reflect.DeepEqual(plain, traced) {
		t.Error("tracer changed the fleet's statistics")
	}
}

// TestFleetTraceExportRoundTrips: a fleet-produced export survives
// import → re-export byte for byte (the round-trip guarantee on real
// output, not just the synthetic obs-package sample).
func TestFleetTraceExportRoundTrips(t *testing.T) {
	tr := obs.New()
	obsServe(t, 4, tr)
	chrome := tr.Chrome()
	again, err := obs.ReexportChrome(chrome)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(chrome, again) {
		t.Error("fleet chrome export does not round-trip")
	}
	mj, err := tr.MetricsJSON()
	if err != nil {
		t.Fatal(err)
	}
	againM, err := obs.ReexportMetrics(mj)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mj, againM) {
		t.Error("fleet metrics export does not round-trip")
	}
}
