package cluster

import (
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

var testASPs = []string{"fir128", "sha3", "aes-gcm", "fft1k"}

func mustFleet(t *testing.T, cfg FleetConfig) *Fleet {
	t.Helper()
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func mustTrace(t *testing.T, spec workload.ArrivalSpec, seed uint64, n int, rps []string) workload.Trace {
	t.Helper()
	tr, err := spec.Generate(seed, n, rps, testASPs)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func zedboards(n int) []BoardSpec {
	out := make([]BoardSpec, n)
	for i := range out {
		out[i] = BoardSpec{Platform: "zedboard"}
	}
	return out
}

func TestFleetServesEveryRequest(t *testing.T) {
	f := mustFleet(t, FleetConfig{
		Boards:  zedboards(3),
		Seed:    42,
		FreqMHz: 200,
		Router:  LeastOutstanding(),
		Service: ServiceTemplate{Prewarm: testASPs},
	})
	tr := mustTrace(t, workload.ArrivalSpec{RatePerSec: 800, Deadline: 20 * sim.Millisecond}, 7, 96, f.RPNames())
	st, err := f.Serve(tr)
	if err != nil {
		t.Fatal(err)
	}
	agg := st.Aggregate
	if agg.Offered != 96 {
		t.Errorf("offered = %d, want 96", agg.Offered)
	}
	if agg.Completed+agg.Shed+agg.Failures != 96 {
		t.Errorf("completed %d + shed %d + failed %d ≠ 96", agg.Completed, agg.Shed, agg.Failures)
	}
	if agg.SojournUS.N() != agg.Completed {
		t.Errorf("sojourn samples %d ≠ completed %d", agg.SojournUS.N(), agg.Completed)
	}
	total := 0
	for _, b := range st.Boards {
		if b.Stats.Offered != b.Assigned {
			t.Errorf("board %d offered %d ≠ assigned %d", b.Index, b.Stats.Offered, b.Assigned)
		}
		total += b.Assigned
	}
	if total != 96 {
		t.Errorf("routed total = %d, want 96", total)
	}
	if st.PeakActive != 3 || st.FinalActive != 3 {
		t.Errorf("fixed fleet active counts = %d/%d, want 3/3", st.PeakActive, st.FinalActive)
	}
	if st.GoodputPerSec() <= 0 {
		t.Error("goodput must be positive")
	}
}

// TestFleetOfOneMatchesSingleBoardService pins the fleet path to the
// single-board service: a one-board fleet is just hll.Service with a
// router in front, so its per-board stats must equal a direct Serve on an
// identically built board (same derived seed, same service template) —
// any admission- or dispatch-timing drift in the cluster front-end trips
// this.
func TestFleetOfOneMatchesSingleBoardService(t *testing.T) {
	cfg := FleetConfig{
		Boards:  zedboards(1),
		Seed:    42,
		FreqMHz: 200,
		Service: ServiceTemplate{CacheBudgetImages: 2, Policy: "sbf"},
	}
	spec := workload.ArrivalSpec{RatePerSec: 600, Deadline: 20 * sim.Millisecond, Tenants: []string{"a", "b"}}
	tr := mustTrace(t, spec, 9, 48, mustFleet(t, cfg).RPNames())

	// The reference: the fleet's own board construction, served directly.
	ref, err := newBoard(cfg, cfg.Boards[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := ref.svc.Serve(tr)
	if err != nil {
		t.Fatal(err)
	}

	f := mustFleet(t, cfg)
	st, err := f.Serve(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st.Boards[0].Stats, direct) {
		t.Errorf("one-board fleet stats diverge from a direct service run:\n%+v\nvs\n%+v",
			st.Boards[0].Stats, direct)
	}
	if st.Boards[0].Stats.Completed != st.Aggregate.Completed {
		t.Error("one-board aggregate must equal the board's own stats")
	}
}

func TestFleetDeterministicAcrossRuns(t *testing.T) {
	for _, router := range RouterNames() {
		run := func() *FleetStats {
			r, err := RouterByName(router)
			if err != nil {
				t.Fatal(err)
			}
			f := mustFleet(t, FleetConfig{
				Boards: []BoardSpec{
					{Platform: "zedboard"}, {Platform: "zybo-z7-10"}, {Platform: "zc706"},
				},
				Seed:    42,
				FreqMHz: 200,
				Router:  r,
				Service: ServiceTemplate{CacheBudgetImages: 4},
			})
			tr := mustTrace(t, workload.ArrivalSpec{RatePerSec: 900, Skew: 1.1, Deadline: 20 * sim.Millisecond}, 11, 72, f.RPNames())
			st, err := f.Serve(tr)
			if err != nil {
				t.Fatal(err)
			}
			return st
		}
		if a, b := run(), run(); !reflect.DeepEqual(a, b) {
			t.Errorf("%s: mixed-fleet runs diverge", router)
		}
	}
}

func TestFleetMixedPlatformsShareCommonRPs(t *testing.T) {
	f := mustFleet(t, FleetConfig{
		Boards: []BoardSpec{{Platform: "zc706"}, {Platform: "zybo-z7-10"}},
		Seed:   1,
	})
	// zc706 has RP1…RP7, zybo RP1…RP3: the servable set is the intersection.
	want := []string{"RP1", "RP2", "RP3"}
	if got := f.RPNames(); !reflect.DeepEqual(got, want) {
		t.Errorf("common RPs = %v, want %v", got, want)
	}
	// A trace touching an RP outside the common set is rejected at the door.
	tr := workload.Trace{{RP: "RP5", ASP: "fir128"}}
	if _, err := f.Serve(tr); err == nil {
		t.Error("trace outside the common RP set must fail")
	}
}

func TestFleetAffinityKeepsImagesOnBoards(t *testing.T) {
	// Under affinity routing each image key lands on one board, so the
	// number of distinct images a board's cache sees stays well below the
	// full working set; round-robin spreads every image everywhere. With a
	// cache too small for the whole set, that shows up directly as a
	// hit-ratio gap.
	serve := func(r Router) *FleetStats {
		f := mustFleet(t, FleetConfig{
			Boards:  zedboards(4),
			Seed:    42,
			FreqMHz: 200,
			Router:  r,
			Service: ServiceTemplate{CacheBudgetImages: 5},
		})
		tr := mustTrace(t, workload.ArrivalSpec{RatePerSec: 400, Skew: 1.0, Deadline: 20 * sim.Millisecond}, 13, 160, f.RPNames())
		st, err := f.Serve(tr)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	aff := serve(Affinity())
	rr := serve(RoundRobin())
	if aff.CacheHitRatio() <= rr.CacheHitRatio() {
		t.Errorf("affinity hit ratio %.2f should beat round-robin %.2f under a constrained cache",
			aff.CacheHitRatio(), rr.CacheHitRatio())
	}
}

func TestFleetAutoscalerGrowsUnderLoad(t *testing.T) {
	f := mustFleet(t, FleetConfig{
		Boards:  zedboards(4),
		Seed:    42,
		FreqMHz: 200,
		Router:  LeastOutstanding(),
		Autoscaler: &AutoscalerConfig{
			Window:  20 * sim.Millisecond,
			Min:     1,
			Max:     4,
			ShedHi:  0.05,
			P99HiUS: 10_000,
			ShedLo:  0,
			P99LoUS: 2_000,
		},
		Service: ServiceTemplate{QueueCap: 4, Prewarm: testASPs},
	})
	// Far above one board's capacity: the single starting board sheds and
	// its p99 blows out, so the scaler must grow.
	tr := mustTrace(t, workload.ArrivalSpec{RatePerSec: 2000, Deadline: 20 * sim.Millisecond}, 7, 192, f.RPNames())
	st, err := f.Serve(tr)
	if err != nil {
		t.Fatal(err)
	}
	if st.PeakActive <= 1 {
		t.Errorf("autoscaler never grew: peak active = %d", st.PeakActive)
	}
	if len(st.ScaleEvents) == 0 {
		t.Error("no scale events recorded")
	}
	for _, ev := range st.ScaleEvents {
		if ev.To < 1 || ev.To > 4 || ev.From < 1 || ev.From > 4 {
			t.Errorf("scale event outside bounds: %+v", ev)
		}
	}
	// Later boards actually absorbed load.
	if st.Boards[1].Assigned == 0 {
		t.Error("grown board received no traffic")
	}
}

func TestFleetAutoscalerShrinksWhenIdle(t *testing.T) {
	f := mustFleet(t, FleetConfig{
		Boards:  zedboards(3),
		Seed:    42,
		FreqMHz: 200,
		Autoscaler: &AutoscalerConfig{
			Window:  20 * sim.Millisecond,
			Min:     1,
			Max:     3,
			ShedHi:  0.5,
			P99HiUS: 1e9,
			ShedLo:  0.1,
			P99LoUS: 1e9, // everything counts as comfortable
		},
		Service: ServiceTemplate{Prewarm: testASPs},
	})
	// Start forced to Min=1; nothing ever trips the grow thresholds, and a
	// trickle of comfortable traffic keeps tripping the shrink clause —
	// which must clamp at Min instead of going below.
	tr := mustTrace(t, workload.ArrivalSpec{RatePerSec: 50, Deadline: time200ms}, 7, 24, f.RPNames())
	st, err := f.Serve(tr)
	if err != nil {
		t.Fatal(err)
	}
	if st.FinalActive != 1 {
		t.Errorf("final active = %d, want clamped at Min 1", st.FinalActive)
	}
}

const time200ms = 200 * sim.Millisecond

func TestFleetConfigErrors(t *testing.T) {
	if _, err := New(FleetConfig{}); err == nil {
		t.Error("empty fleet must fail")
	}
	if _, err := New(FleetConfig{Boards: []BoardSpec{{Platform: "nope"}}}); err == nil {
		t.Error("unknown platform must fail")
	}
	if _, err := New(FleetConfig{
		Boards:     zedboards(2),
		Autoscaler: &AutoscalerConfig{Window: sim.Millisecond, Min: 1, Max: 5},
	}); err == nil {
		t.Error("autoscaler max beyond fleet size must fail")
	}
	if _, err := New(FleetConfig{
		Boards:     zedboards(2),
		Autoscaler: &AutoscalerConfig{Window: 0, Min: 1, Max: 2},
	}); err == nil {
		t.Error("non-positive window must fail")
	}
	if _, err := New(FleetConfig{Boards: zedboards(1), Service: ServiceTemplate{Policy: "ghost"}}); err == nil {
		t.Error("unknown dispatch policy must fail")
	}
	if _, err := RouterByName("ghost"); err == nil {
		t.Error("unknown router must fail")
	}
	f := mustFleet(t, FleetConfig{Boards: zedboards(1), Seed: 1})
	if _, err := f.Serve(workload.Trace{}); err != nil {
		t.Fatalf("empty trace should serve cleanly: %v", err)
	}
	if _, err := f.Serve(workload.Trace{}); err == nil {
		t.Error("a fleet is single-use: second Serve must fail")
	}
}

// TestFleetPerClassAccounting: a classed trace served across a fleet
// merges per-class stats board-by-board, every offered request lands in
// exactly one terminal per-class counter, and a classless trace leaves the
// class map empty.
func TestFleetPerClassAccounting(t *testing.T) {
	f := mustFleet(t, FleetConfig{
		Boards:  zedboards(3),
		Seed:    42,
		FreqMHz: 200,
		Router:  LeastOutstanding(),
		Service: ServiceTemplate{Prewarm: testASPs},
	})
	spec := workload.ArrivalSpec{
		RatePerSec: 900,
		Deadline:   50 * sim.Millisecond,
		Classes: []workload.SLOClass{
			{Name: "latency", Deadline: 10 * sim.Millisecond, Weight: 1},
			{Name: "batch", Weight: 1},
		},
	}
	tr := mustTrace(t, spec, 7, 120, f.RPNames())
	st, err := f.Serve(tr)
	if err != nil {
		t.Fatal(err)
	}
	agg := st.Aggregate
	names := agg.ClassNames()
	if !reflect.DeepEqual(names, []string{"batch", "latency"}) {
		t.Fatalf("class names = %v, want [batch latency]", names)
	}
	offered := 0
	for _, name := range names {
		c := agg.Classes[name]
		if c.Offered == 0 {
			t.Errorf("class %q saw no traffic in a 120-request trace", name)
		}
		if c.Completed+c.Shed+c.Failed != c.Offered {
			t.Errorf("class %q: completed %d + shed %d + failed %d ≠ offered %d",
				name, c.Completed, c.Shed, c.Failed, c.Offered)
		}
		offered += c.Offered
	}
	if offered != agg.Offered {
		t.Errorf("per-class offered sums to %d, fleet offered %d", offered, agg.Offered)
	}

	// A classless trace keeps the merged class map empty.
	plain := mustTrace(t, workload.ArrivalSpec{RatePerSec: 900}, 7, 32, f.RPNames())
	f2 := mustFleet(t, FleetConfig{
		Boards:  zedboards(3),
		Seed:    42,
		FreqMHz: 200,
		Router:  LeastOutstanding(),
		Service: ServiceTemplate{Prewarm: testASPs},
	})
	st2, err := f2.Serve(plain)
	if err != nil {
		t.Fatal(err)
	}
	if len(st2.Aggregate.Classes) != 0 {
		t.Errorf("classless run recorded classes: %v", st2.Aggregate.ClassNames())
	}
}
