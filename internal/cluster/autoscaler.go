package cluster

import (
	"fmt"

	"repro/internal/sim"
)

// AutoscalerConfig parameterises the fleet's reactive scaler. The scaler
// watches fixed windows of the arrival timeline; at each window boundary it
// compares the window's shed fraction and p99 sojourn against thresholds
// and grows or shrinks the active board set by one, within [Min, Max]. A
// nil config keeps every board active for the whole run.
type AutoscalerConfig struct {
	// Window is the evaluation period on the arrival timeline.
	Window sim.Duration
	// Min and Max bound the active fleet (1 ≤ Min ≤ Max ≤ board count).
	Min, Max int
	// Grow when the windowed shed fraction exceeds ShedHi OR the windowed
	// p99 sojourn exceeds P99HiUS microseconds.
	ShedHi  float64
	P99HiUS float64
	// Shrink when the windowed shed fraction is at most ShedLo AND the
	// windowed p99 sojourn is below P99LoUS microseconds.
	ShedLo  float64
	P99LoUS float64
}

// Validate checks the window and bounds against a fleet size.
func (c *AutoscalerConfig) Validate(boards int) error {
	switch {
	case c.Window <= 0:
		return fmt.Errorf("cluster: autoscaler window must be positive, got %v", c.Window)
	case c.Min < 1 || c.Min > c.Max:
		return fmt.Errorf("cluster: autoscaler bounds [%d, %d] invalid", c.Min, c.Max)
	case c.Max > boards:
		return fmt.Errorf("cluster: autoscaler max %d exceeds fleet size %d", c.Max, boards)
	}
	return nil
}

// ScaleEvent records one autoscaler decision.
type ScaleEvent struct {
	// AtUS is the window boundary (arrival-timeline microseconds) the
	// decision fired at.
	AtUS float64 `json:"at_us"`
	// From and To are the active board counts before and after.
	From int `json:"from"`
	To   int `json:"to"`
	// Reason names the threshold that tripped.
	Reason string `json:"reason"`
}

// window accumulates one evaluation period's signals.
type window struct {
	offered, shed int
	sojournUS     sim.Sample
}

// autoscaler is the runtime state behind an AutoscalerConfig.
type autoscaler struct {
	cfg    AutoscalerConfig
	wins   []*window
	evaled int // windows already decided
	events []ScaleEvent
}

func newAutoscaler(cfg AutoscalerConfig) *autoscaler {
	return &autoscaler{cfg: cfg}
}

// win returns the accumulator for the window containing rel.
func (a *autoscaler) win(rel sim.Duration) *window {
	i := int(rel / a.cfg.Window)
	for len(a.wins) <= i {
		a.wins = append(a.wins, &window{})
	}
	return a.wins[i]
}

func (a *autoscaler) observeArrival(rel sim.Duration, shed bool) {
	w := a.win(rel)
	w.offered++
	if shed {
		w.shed++
	}
}

func (a *autoscaler) observeCompletion(rel, sojourn sim.Duration) {
	a.win(rel).sojournUS.Add(sojourn.Microseconds())
}

// evaluate decides every window that has fully elapsed by fleet time now
// and returns the new active count. Decisions are one step per window, so
// the fleet reacts at the window cadence rather than thrashing per request.
// down is the number of boards the health layer currently believes dead
// (0 without a chaos layer): dead capacity is replaced ahead of any
// shed/p99 signal — a crashed board starves the window's metrics, so
// waiting for them to trip would react a window late.
func (a *autoscaler) evaluate(now sim.Duration, active, down int) int {
	for sim.Duration(a.evaled+1)*a.cfg.Window <= now {
		w := a.evaled
		a.evaled++
		var win *window
		if w < len(a.wins) {
			win = a.wins[w]
		} else {
			win = &window{}
		}
		shedFrac := 0.0
		if win.offered > 0 {
			shedFrac = float64(win.shed) / float64(win.offered)
		}
		p99 := win.sojournUS.Quantile(0.99)
		boundary := (sim.Duration(w+1) * a.cfg.Window).Microseconds()
		switch {
		case active < a.cfg.Max && down > 0:
			a.events = append(a.events, ScaleEvent{
				AtUS: boundary, From: active, To: active + 1,
				Reason: fmt.Sprintf("replacing dead capacity (%d down)", down),
			})
			active++
		case active < a.cfg.Max && shedFrac > a.cfg.ShedHi:
			a.events = append(a.events, ScaleEvent{
				AtUS: boundary, From: active, To: active + 1,
				Reason: fmt.Sprintf("shed %.0f%% > %.0f%%", 100*shedFrac, 100*a.cfg.ShedHi),
			})
			active++
		case active < a.cfg.Max && p99 > a.cfg.P99HiUS:
			a.events = append(a.events, ScaleEvent{
				AtUS: boundary, From: active, To: active + 1,
				Reason: fmt.Sprintf("p99 %.1fms > %.1fms", p99/1000, a.cfg.P99HiUS/1000),
			})
			active++
		case active > a.cfg.Min && shedFrac <= a.cfg.ShedLo && p99 < a.cfg.P99LoUS:
			a.events = append(a.events, ScaleEvent{
				AtUS: boundary, From: active, To: active - 1,
				Reason: fmt.Sprintf("idle: shed %.0f%%, p99 %.1fms", 100*shedFrac, p99/1000),
			})
			active--
		}
	}
	return active
}
