package cluster

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// ScalerPolicy names an autoscaler decision rule.
type ScalerPolicy string

const (
	// ScalerReactive (the "" default) reacts to the decided window's own
	// signals: grow one board on shed/p99 pressure, shrink one when idle.
	ScalerReactive ScalerPolicy = "reactive"
	// ScalerPredictive forecasts the next window's arrival rate from the
	// observed window history (Holt-style double exponential smoothing —
	// deterministic, no wall clock) and moves straight to the board count
	// that rate needs, pre-provisioning ahead of a building spike instead
	// of reacting one window late, one board at a time.
	ScalerPredictive ScalerPolicy = "predictive"
)

// ScalerPolicies lists the recognised policy names in presentation order.
func ScalerPolicies() []string {
	return []string{string(ScalerReactive), string(ScalerPredictive)}
}

// Holt smoothing constants for the predictive forecast: level tracks the
// windowed rate, trend its per-window change. Fixed constants keep the
// forecast a pure function of the observed window sequence.
const (
	holtAlpha = 0.5
	holtBeta  = 0.3
)

// AutoscalerConfig parameterises the fleet's scaler. The scaler watches
// fixed windows of the arrival timeline; at each window boundary the
// reactive policy compares the window's shed fraction and p99 sojourn
// against thresholds and steps the active board set by one, while the
// predictive policy retargets to ceil(forecast / BoardRatePerSec) — both
// within [Min, Max]. A nil config keeps every board active for the whole
// run.
type AutoscalerConfig struct {
	// Window is the evaluation period on the arrival timeline.
	Window sim.Duration
	// Min and Max bound the active fleet (1 ≤ Min ≤ Max ≤ board count).
	Min, Max int
	// Grow when the windowed shed fraction exceeds ShedHi OR the windowed
	// p99 sojourn exceeds P99HiUS microseconds.
	ShedHi  float64
	P99HiUS float64
	// Shrink when the windowed shed fraction is at most ShedLo AND the
	// windowed p99 sojourn is below P99LoUS microseconds.
	ShedLo  float64
	P99LoUS float64
	// Policy selects the decision rule ("" = reactive; see ScalerPolicies).
	Policy ScalerPolicy
	// BoardRatePerSec is the per-board serviceable rate the predictive
	// policy plans against (required > 0 for ScalerPredictive; ignored by
	// the reactive policy).
	BoardRatePerSec float64
}

// Validate checks the window, bounds, threshold ordering and policy
// against a fleet size.
func (c *AutoscalerConfig) Validate(boards int) error {
	switch {
	case c.Window <= 0:
		return fmt.Errorf("cluster: autoscaler window must be positive, got %v", c.Window)
	case c.Min < 1 || c.Min > c.Max:
		return fmt.Errorf("cluster: autoscaler bounds [%d, %d] invalid", c.Min, c.Max)
	case c.Max > boards:
		return fmt.Errorf("cluster: autoscaler max %d exceeds fleet size %d", c.Max, boards)
	case c.ShedLo > c.ShedHi:
		return fmt.Errorf("cluster: autoscaler shed thresholds inverted (ShedLo %v > ShedHi %v would grow and shrink on the same window)", c.ShedLo, c.ShedHi)
	case c.P99LoUS > c.P99HiUS:
		return fmt.Errorf("cluster: autoscaler p99 thresholds inverted (P99LoUS %v > P99HiUS %v would grow and shrink on the same window)", c.P99LoUS, c.P99HiUS)
	}
	switch c.Policy {
	case "", ScalerReactive:
	case ScalerPredictive:
		if c.BoardRatePerSec <= 0 {
			return fmt.Errorf("cluster: predictive autoscaler needs BoardRatePerSec > 0 (the per-board rate the forecast plans against)")
		}
	default:
		return fmt.Errorf("cluster: unknown autoscaler policy %q (want reactive|predictive)", c.Policy)
	}
	return nil
}

// ScaleEvent records one autoscaler decision.
type ScaleEvent struct {
	// AtUS is the window boundary (arrival-timeline microseconds) the
	// decision fired at.
	AtUS float64 `json:"at_us"`
	// From and To are the active board counts before and after.
	From int `json:"from"`
	To   int `json:"to"`
	// Reason names the threshold or forecast that tripped.
	Reason string `json:"reason"`
	// ObservedPerSec is the decided window's measured arrival rate;
	// ForecastPerSec is the predictive policy's forecast for the next
	// window (zero on reactive decisions) — recorded so a trajectory can
	// be audited forecast-vs-observed after the run.
	ObservedPerSec float64 `json:"observed_per_sec,omitempty"`
	ForecastPerSec float64 `json:"forecast_per_sec,omitempty"`
}

// WindowStat is one decided window of the scaler's trajectory — the
// boards-over-time and shed-over-time record the diurnal scenario charts.
type WindowStat struct {
	// AtUS is the window's end boundary in arrival-timeline microseconds.
	AtUS float64 `json:"at_us"`
	// Offered and Shed count the window's arrivals and admission rejections.
	Offered int `json:"offered"`
	Shed    int `json:"shed"`
	// ObservedPerSec is Offered over the window length; ForecastPerSec is
	// the predictive forecast for the *next* window (zero under reactive).
	ObservedPerSec float64 `json:"observed_per_sec"`
	ForecastPerSec float64 `json:"forecast_per_sec,omitempty"`
	// Active is the active board count after the window's decision.
	Active int `json:"active"`
}

// window accumulates one evaluation period's signals.
type window struct {
	offered, shed int
	sojournUS     sim.Sample
}

// autoscaler is the runtime state behind an AutoscalerConfig.
type autoscaler struct {
	cfg    AutoscalerConfig
	wins   []*window
	evaled int // windows already decided
	events []ScaleEvent
	log    []WindowStat

	// Holt state for the predictive forecast.
	level, trend float64
	hist         int // decided windows folded into the state
}

func newAutoscaler(cfg AutoscalerConfig) *autoscaler {
	return &autoscaler{cfg: cfg}
}

// win returns the accumulator for the window containing rel.
func (a *autoscaler) win(rel sim.Duration) *window {
	i := int(rel / a.cfg.Window)
	for len(a.wins) <= i {
		a.wins = append(a.wins, &window{})
	}
	return a.wins[i]
}

func (a *autoscaler) observeArrival(rel sim.Duration, shed bool) {
	w := a.win(rel)
	w.offered++
	if shed {
		w.shed++
	}
}

func (a *autoscaler) observeCompletion(rel, sojourn sim.Duration) {
	a.win(rel).sojournUS.Add(sojourn.Microseconds())
}

// forecast folds one decided window's observed rate into the Holt state
// and returns the next window's predicted rate (level + trend, floored at
// zero). The first window seeds the level with no trend.
func (a *autoscaler) forecast(observed float64) float64 {
	if a.hist == 0 {
		a.level, a.trend = observed, 0
	} else {
		prev := a.level
		a.level = holtAlpha*observed + (1-holtAlpha)*(a.level+a.trend)
		a.trend = holtBeta*(a.level-prev) + (1-holtBeta)*a.trend
	}
	a.hist++
	if f := a.level + a.trend; f > 0 {
		return f
	}
	return 0
}

// evaluate decides every window that has fully elapsed by fleet time now
// and returns the new active count; each window is decided exactly once,
// even when now lands several windows (or an empty stretch) ahead. Dead
// capacity is replaced ahead of any policy signal — a crashed board
// starves the window's metrics, so waiting for them to trip would react a
// window late. The reactive policy then steps by one on the window's own
// shed/p99 signals; the predictive policy retargets to what the forecast
// rate needs, which may pre-provision several boards at one boundary.
func (a *autoscaler) evaluate(now sim.Duration, active, down int) int {
	for sim.Duration(a.evaled+1)*a.cfg.Window <= now {
		w := a.evaled
		a.evaled++
		var win *window
		if w < len(a.wins) {
			win = a.wins[w]
		} else {
			win = &window{}
		}
		shedFrac := 0.0
		if win.offered > 0 {
			shedFrac = float64(win.shed) / float64(win.offered)
		}
		p99 := win.sojournUS.Quantile(0.99)
		boundary := (sim.Duration(w+1) * a.cfg.Window).Microseconds()
		observed := float64(win.offered) / a.cfg.Window.Seconds()
		predictive := a.cfg.Policy == ScalerPredictive
		fc := 0.0
		if predictive {
			fc = a.forecast(observed)
		}
		switch {
		case active < a.cfg.Max && down > 0:
			a.events = append(a.events, ScaleEvent{
				AtUS: boundary, From: active, To: active + 1,
				Reason:         fmt.Sprintf("replacing dead capacity (%d down)", down),
				ObservedPerSec: observed, ForecastPerSec: fc,
			})
			active++
		case predictive:
			target := int(math.Ceil(fc / a.cfg.BoardRatePerSec))
			if target < a.cfg.Min {
				target = a.cfg.Min
			}
			if target > a.cfg.Max {
				target = a.cfg.Max
			}
			if target != active {
				a.events = append(a.events, ScaleEvent{
					AtUS: boundary, From: active, To: target,
					Reason:         fmt.Sprintf("forecast %.0f req/s needs %d board(s)", fc, target),
					ObservedPerSec: observed, ForecastPerSec: fc,
				})
				active = target
			}
		case active < a.cfg.Max && shedFrac > a.cfg.ShedHi:
			a.events = append(a.events, ScaleEvent{
				AtUS: boundary, From: active, To: active + 1,
				Reason:         fmt.Sprintf("shed %.0f%% > %.0f%%", 100*shedFrac, 100*a.cfg.ShedHi),
				ObservedPerSec: observed,
			})
			active++
		case active < a.cfg.Max && p99 > a.cfg.P99HiUS:
			a.events = append(a.events, ScaleEvent{
				AtUS: boundary, From: active, To: active + 1,
				Reason:         fmt.Sprintf("p99 %.1fms > %.1fms", p99/1000, a.cfg.P99HiUS/1000),
				ObservedPerSec: observed,
			})
			active++
		case active > a.cfg.Min && shedFrac <= a.cfg.ShedLo && p99 < a.cfg.P99LoUS:
			a.events = append(a.events, ScaleEvent{
				AtUS: boundary, From: active, To: active - 1,
				Reason:         fmt.Sprintf("idle: shed %.0f%%, p99 %.1fms", 100*shedFrac, p99/1000),
				ObservedPerSec: observed,
			})
			active--
		}
		a.log = append(a.log, WindowStat{
			AtUS: float64(boundary), Offered: win.offered, Shed: win.shed,
			ObservedPerSec: observed, ForecastPerSec: fc, Active: active,
		})
	}
	return active
}
