package cluster

import (
	"fmt"

	"repro/internal/chaos"
	"repro/internal/obs"
	"repro/internal/sim"
)

// boardGauges caches one board's registered series handles so the
// per-tick sampling loop does no map lookups.
type boardGauges struct {
	queued, outstanding     *obs.TimeSeries
	cacheImages, cacheBytes *obs.TimeSeries
	watts, tempC            *obs.TimeSeries
}

// fleetObs wires one fleet run to its obs.FleetTrace: cached gauge
// handles, control-plane event emission, and the deterministic sampling
// loop. Every method runs on the fleet's sequential inter-epoch path —
// only the per-board span buffers (owned by hll.Service) are touched
// from the parallel advance, and each by its own board's goroutine.
type fleetObs struct {
	ft     *obs.FleetTrace
	boards []boardGauges

	active, shed, offered *obs.TimeSeries
	epochBatch            *obs.Hist
	failover, unroutable  *obs.Counter
	hedged                *obs.Counter

	scaleSeen int // scaler events already exported
}

func newFleetObs(ft *obs.FleetTrace, boards []*board) *fleetObs {
	o := &fleetObs{ft: ft}
	m := ft.Metrics()
	for i := range boards {
		p := fmt.Sprintf("board%02d.", i)
		o.boards = append(o.boards, boardGauges{
			queued:      m.Series(p+"queued", "requests"),
			outstanding: m.Series(p+"outstanding", "requests"),
			cacheImages: m.Series(p+"cache_images", "images"),
			cacheBytes:  m.Series(p+"cache_bytes", "bytes"),
			watts:       m.Series(p+"watts", "W"),
			tempC:       m.Series(p+"temp", "degC"),
		})
	}
	o.active = m.Series("fleet.active_boards", "boards")
	o.shed = m.Series("fleet.shed_total", "requests")
	o.offered = m.Series("fleet.offered_total", "requests")
	o.epochBatch = m.Hist("fleet.epoch_batch", "requests")
	o.failover = m.Counter("fleet.failovers")
	o.unroutable = m.Counter("fleet.unroutable")
	o.hedged = m.Counter("fleet.hedged")
	return o
}

// sample records every metrics tick due at or before now. The tick grid
// is multiples of the tracer cadence, independent of epoch spacing;
// fleet state only changes at epoch boundaries, so every tick in the
// gap since the previous epoch observes the post-advance state — a pure
// function of the arrival stream, never of worker count. Queue depth,
// cache residency, and per-board watts (power.Model.PDRAt at the
// board's live over-clock and die temperature) are all read through
// side-effect-free accessors.
func (o *fleetObs) sample(f *Fleet, now sim.Duration, active int) {
	m := o.ft.Metrics()
	for {
		tick, ok := m.TickDue(now)
		if !ok {
			return
		}
		shed, offered := 0, 0
		for i, b := range f.boards {
			g := &o.boards[i]
			g.queued.Append(tick, float64(b.svc.Queued()))
			g.outstanding.Append(tick, float64(b.svc.Outstanding()))
			images, bytes := b.svc.CacheResidency()
			g.cacheImages.Append(tick, float64(images))
			g.cacheBytes.Append(tick, float64(bytes))
			t := b.plat.Die.TempC()
			g.watts.Append(tick, b.plat.Power.PDRAt(b.plat.Power.FreqMHz(), t))
			g.tempC.Append(tick, t)
			st := b.svc.Stats()
			shed += st.Shed
			offered += st.Offered
		}
		o.active.Append(tick, float64(active))
		o.shed.Append(tick, float64(shed))
		o.offered.Append(tick, float64(offered))
		m.TickDone()
	}
}

// epoch marks the fleet advancing to a new arrival timestamp and folds
// the previous epoch's batch size into the distribution.
func (o *fleetObs) epoch(now sim.Duration, batch int) {
	o.closeBatch(batch)
	o.ft.Ctl().Event(obs.EvEpoch, obs.CtlTIDEpoch, -1, now, "")
}

// closeBatch folds the final epoch's batch size in without emitting a
// second marker for an epoch already on the timeline.
func (o *fleetObs) closeBatch(batch int) {
	if batch > 0 {
		o.epochBatch.Observe(float64(batch))
	}
}

// scales exports autoscaler decisions appended since the last call.
func (o *fleetObs) scales(events []ScaleEvent) {
	for ; o.scaleSeen < len(events); o.scaleSeen++ {
		ev := events[o.scaleSeen]
		o.ft.Ctl().Event(obs.EvScale, obs.CtlTIDScaler, -1,
			sim.FromMicroseconds(ev.AtUS),
			fmt.Sprintf("%d->%d %s", ev.From, ev.To, ev.Reason))
	}
}

// fault marks one chaos schedule entry being applied, stamped at its
// scheduled instant.
func (o *fleetObs) fault(ev chaos.Event) {
	o.ft.Ctl().Event(obs.EvFault, obs.CtlTIDChaos, -1, ev.At,
		fmt.Sprintf("board%d %s", ev.Board, ev.Kind))
}

// throttle marks a thermal throttle/unthrottle transition.
func (o *fleetObs) throttle(now sim.Duration, board int, on bool, tempC float64) {
	kind := obs.EvUnthrottle
	if on {
		kind = obs.EvThrottle
	}
	o.ft.Ctl().Event(kind, obs.CtlTIDHealth, -1, now,
		fmt.Sprintf("board%d %.1fC", board, tempC))
}

// probe marks a health-probe verdict transition (ejection/readmission).
func (o *fleetObs) probe(now sim.Duration, board int, down bool) {
	kind := obs.EvProbeUp
	if down {
		kind = obs.EvProbeDown
	}
	o.ft.Ctl().Event(kind, obs.CtlTIDHealth, -1, now, fmt.Sprintf("board%d", board))
}

// routeEvent marks a routing outcome worth seeing on the timeline.
func (o *fleetObs) routeEvent(kind obs.Kind, at sim.Duration, detail string) {
	switch kind {
	case obs.EvFailover:
		o.failover.Add(1)
	case obs.EvUnroutable:
		o.unroutable.Add(1)
	case obs.EvHedge:
		o.hedged.Add(1)
	}
	o.ft.Ctl().Event(kind, obs.CtlTIDRouter, -1, at, detail)
}
