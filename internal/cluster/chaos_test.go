package cluster

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/sim"
	"repro/internal/workload"
)

// chaosTrace is the shared stream for the chaos tests: fast enough to keep
// boards busy across the fault windows, deadline-bearing so goodput and
// hedging have something to measure.
func chaosTrace(t *testing.T, f *Fleet, n int) workload.Trace {
	t.Helper()
	spec := workload.ArrivalSpec{
		RatePerSec: 600,
		Skew:       1.1,
		Deadline:   20 * sim.Millisecond,
		Tenants:    []string{"alpha", "beta"},
	}
	return mustTrace(t, spec, 17, n, f.RPNames())
}

func TestFleetSurvivesBoardCrash(t *testing.T) {
	build := func() *Fleet {
		return mustFleet(t, FleetConfig{
			Boards:  zedboards(3),
			Seed:    42,
			FreqMHz: 200,
			Router:  LeastOutstanding(),
			Chaos: &ChaosConfig{
				Schedule: []chaos.Event{
					{At: 40 * sim.Millisecond, Board: 0, Kind: chaos.BoardDown},
				},
				// Probes far beyond the stream: the fleet may only learn of
				// the crash the way a front-end does, from refused
				// connections on the routing path.
				ProbeEvery: sim.Second,
			},
			// Cold caches: staging from SD keeps queues non-empty, so the
			// crash has in-flight and queued work to destroy.
			Service: ServiceTemplate{},
		})
	}
	f := build()
	st, err := f.Serve(chaosTrace(t, f, 144))
	if err != nil {
		t.Fatal(err)
	}
	if st.Arrivals != 144 {
		t.Errorf("arrivals = %d, want 144", st.Arrivals)
	}
	// The crash drops whatever board 0 held in flight and in queue…
	if st.Aggregate.Lost == 0 {
		t.Error("crash mid-stream lost nothing: expected in-flight work dropped")
	}
	// …and refused connections fail over to the survivors.
	if st.FailedOver == 0 {
		t.Error("no failover recorded against a crashed board")
	}
	if av := st.Availability(); av >= 1 || av < 0.5 {
		t.Errorf("availability = %.3f, want in [0.5, 1) under a single-board outage", av)
	}
	// The survivors keep completing work through the outage.
	if st.Aggregate.Completed == 0 {
		t.Error("fleet completed nothing under a one-board outage")
	}
	// Everything is accounted: nothing silently vanishes.
	agg := st.Aggregate
	if got := agg.Completed + agg.Shed + agg.Failures + agg.Lost + st.Unroutable; got < 144 {
		t.Errorf("accounted outcomes %d < 144 arrivals", got)
	}
	// Chaos runs stay pure functions of the config.
	f2 := build()
	st2, err := f2.Serve(chaosTrace(t, f2, 144))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st, st2) {
		t.Error("identical chaos runs diverge")
	}
}

func TestFleetProbesDetectRecovery(t *testing.T) {
	// Board 0 is down before the stream starts and comes back mid-run: only
	// the periodic probes can notice, and everything board 0 completes it
	// completed after recovery.
	f := mustFleet(t, FleetConfig{
		Boards:  zedboards(2),
		Seed:    42,
		FreqMHz: 200,
		Router:  LeastOutstanding(),
		Chaos: &ChaosConfig{
			Schedule: []chaos.Event{
				{At: sim.Microsecond, Board: 0, Kind: chaos.BoardDown},
				{At: 60 * sim.Millisecond, Board: 0, Kind: chaos.BoardUp},
			},
			ProbeEvery: 20 * sim.Millisecond,
		},
		Service: ServiceTemplate{Prewarm: testASPs},
	})
	st, err := f.Serve(chaosTrace(t, f, 144))
	if err != nil {
		t.Fatal(err)
	}
	if st.Boards[0].Stats.Completed == 0 {
		t.Error("recovered board never served again (probe-based recovery broken)")
	}
	if st.Boards[1].Stats.Completed == 0 {
		t.Error("survivor board completed nothing")
	}
}

func TestFleetRepairsCRCGlitch(t *testing.T) {
	f := mustFleet(t, FleetConfig{
		Boards:  zedboards(2),
		Seed:    42,
		FreqMHz: 200,
		Router:  RoundRobin(),
		Chaos: &ChaosConfig{
			Schedule: []chaos.Event{
				{At: 30 * sim.Millisecond, Board: 0, Kind: chaos.CRCGlitch, Frames: 2},
			},
		},
		Service: ServiceTemplate{Prewarm: []string{"fir128"}, Repair: "scrub"},
	})
	// A single-image stream: every post-glitch dispatch on the upset RP is a
	// cache hit, so the alarm must be cleared by an explicit scrub rather
	// than incidentally by the next reconfiguration.
	spec := workload.ArrivalSpec{RatePerSec: 600, Deadline: 20 * sim.Millisecond}
	tr, err := spec.Generate(17, 96, f.RPNames(), []string{"fir128"})
	if err != nil {
		t.Fatal(err)
	}
	st, err := f.Serve(tr)
	if err != nil {
		t.Fatal(err)
	}
	if st.Aggregate.CRCAlarms == 0 {
		t.Error("scheduled CRC glitch raised no alarm")
	}
	if st.Aggregate.Repairs == 0 {
		t.Error("CRC alarm was never repaired")
	}
	if st.Aggregate.RepairTime <= 0 {
		t.Error("repairs took no time")
	}
	// A glitch is not an outage: the board keeps serving after the scrub.
	if st.Boards[0].Stats.Completed == 0 {
		t.Error("glitched board stopped serving")
	}
}

func TestFleetAutoscalerReplacesCrashedBoard(t *testing.T) {
	f := mustFleet(t, FleetConfig{
		Boards:  zedboards(3),
		Seed:    42,
		FreqMHz: 200,
		Router:  LeastOutstanding(),
		Autoscaler: &AutoscalerConfig{
			Window: 20 * sim.Millisecond,
			Min:    2, Max: 3,
			ShedHi: 0.99, P99HiUS: 1e9, ShedLo: -1, P99LoUS: 0, // only the dead-capacity clause can fire
		},
		Chaos: &ChaosConfig{
			Schedule: []chaos.Event{
				{At: 30 * sim.Millisecond, Board: 0, Kind: chaos.BoardDown},
			},
		},
		Service: ServiceTemplate{Prewarm: testASPs},
	})
	st, err := f.Serve(chaosTrace(t, f, 96))
	if err != nil {
		t.Fatal(err)
	}
	replaced := false
	for _, ev := range st.ScaleEvents {
		if strings.HasPrefix(ev.Reason, "replacing dead capacity") {
			replaced = true
		}
	}
	if !replaced {
		t.Errorf("no dead-capacity replacement in scale events: %+v", st.ScaleEvents)
	}
	if st.FinalActive != 3 {
		t.Errorf("final active = %d, want 3 (replacement board activated)", st.FinalActive)
	}
	// The replacement board absorbed traffic.
	if st.Boards[2].Assigned == 0 {
		t.Error("replacement board received no traffic")
	}
}

func TestFleetHedgesDeadlineRequests(t *testing.T) {
	f := mustFleet(t, FleetConfig{
		Boards:  zedboards(3),
		Seed:    42,
		FreqMHz: 200,
		Router:  RoundRobin(),
		Chaos:   &ChaosConfig{Hedge: true},
		Service: ServiceTemplate{Prewarm: testASPs},
	})
	st, err := f.Serve(chaosTrace(t, f, 48))
	if err != nil {
		t.Fatal(err)
	}
	if st.Hedged == 0 {
		t.Error("deadline-bearing stream with hedging on issued no hedges")
	}
	// Hedges are duplicate offers on top of the logical arrivals.
	if st.Aggregate.Offered != st.Arrivals+st.Hedged {
		t.Errorf("offered %d ≠ arrivals %d + hedged %d",
			st.Aggregate.Offered, st.Arrivals, st.Hedged)
	}
}

func TestFleetThermalExcursionIsNotAnOutage(t *testing.T) {
	// An 85 °C excursion throttles the board (ejected as degraded, over-clock
	// derated) but never corrupts anything: no alarms, no losses, and the
	// board serves again once the die cools.
	f := mustFleet(t, FleetConfig{
		Boards:  zedboards(2),
		Seed:    42,
		FreqMHz: 200,
		Router:  LeastOutstanding(),
		Chaos: &ChaosConfig{
			Schedule: []chaos.Event{
				{At: 30 * sim.Millisecond, Board: 0, Kind: chaos.HeatOn, TempC: 85},
				{At: 90 * sim.Millisecond, Board: 0, Kind: chaos.HeatOff},
			},
		},
		Service: ServiceTemplate{Prewarm: testASPs},
	})
	st, err := f.Serve(chaosTrace(t, f, 96))
	if err != nil {
		t.Fatal(err)
	}
	if st.Aggregate.CRCAlarms != 0 || st.Aggregate.Lost != 0 {
		t.Errorf("thermal excursion corrupted state: %d alarms, %d lost",
			st.Aggregate.CRCAlarms, st.Aggregate.Lost)
	}
	if st.Boards[0].Stats.Completed == 0 {
		t.Error("throttled board never completed anything")
	}
}

func TestFleetChaosConfigErrors(t *testing.T) {
	if _, err := New(FleetConfig{
		Boards: zedboards(2),
		Chaos: &ChaosConfig{Schedule: []chaos.Event{
			{At: sim.Millisecond, Board: 5, Kind: chaos.BoardDown},
		}},
	}); err == nil {
		t.Error("chaos event beyond the fleet must fail")
	}
	if _, err := New(FleetConfig{
		Boards: zedboards(2),
		Chaos: &ChaosConfig{Schedule: []chaos.Event{
			{At: 2 * sim.Millisecond, Board: 0, Kind: chaos.BoardDown},
			{At: sim.Millisecond, Board: 0, Kind: chaos.BoardUp},
		}},
	}); err == nil {
		t.Error("unsorted chaos schedule must fail")
	}
	if _, err := New(FleetConfig{
		Boards: zedboards(2),
		Chaos:  &ChaosConfig{HealthTimeout: -sim.Millisecond},
	}); err == nil {
		t.Error("negative health timeout must fail")
	}
}

// A nil Chaos config must leave the historical fault-free path untouched,
// bit for bit — the chaos machinery may not perturb a single counter.
func TestFleetNilChaosMatchesBaseline(t *testing.T) {
	run := func(withEmptyChaos bool) *FleetStats {
		cfg := FleetConfig{
			Boards:  zedboards(2),
			Seed:    42,
			FreqMHz: 200,
			Router:  LeastOutstanding(),
			Service: ServiceTemplate{Prewarm: testASPs},
		}
		if withEmptyChaos {
			cfg.Chaos = &ChaosConfig{} // machinery on, no faults scheduled
		}
		f := mustFleet(t, cfg)
		st, err := f.Serve(chaosTrace(t, f, 72))
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	base, empty := run(false), run(true)
	// An empty storm adds health bookkeeping but must not change a single
	// service-level number.
	if !reflect.DeepEqual(base.Aggregate, empty.Aggregate) {
		t.Errorf("empty chaos config changed aggregate stats:\n%+v\nvs\n%+v",
			base.Aggregate, empty.Aggregate)
	}
	if !reflect.DeepEqual(base.Boards, empty.Boards) {
		t.Error("empty chaos config changed per-board stats")
	}
}
