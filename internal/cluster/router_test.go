package cluster

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

// views builds a fleet view where every board is active and has the RP,
// then lets the caller adjust.
func activeViews(n int) []BoardView {
	out := make([]BoardView, n)
	for i := range out {
		out[i] = BoardView{Index: i, Active: true, HasRP: true, Weight: 1}
	}
	return out
}

var anyReq = workload.Request{RP: "RP1", ASP: "fir128"}

func TestRoundRobinCyclesAndSkipsIneligible(t *testing.T) {
	r := RoundRobin()
	v := activeViews(3)
	got := []int{}
	for i := 0; i < 6; i++ {
		got = append(got, r.Pick(v, anyReq))
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pick sequence = %v, want %v", got, want)
		}
	}
	v[1].Active = false // deactivated mid-cycle: skipped, cycle continues
	if p := r.Pick(v, anyReq); p != 0 {
		t.Errorf("pick = %d, want 0", p)
	}
	if p := r.Pick(v, anyReq); p != 2 {
		t.Errorf("pick = %d, want 2 (board 1 inactive)", p)
	}
}

func TestLeastOutstandingPicksShortestQueue(t *testing.T) {
	r := LeastOutstanding()
	v := activeViews(3)
	v[0].Outstanding, v[1].Outstanding, v[2].Outstanding = 5, 2, 9
	if p := r.Pick(v, anyReq); p != 1 {
		t.Errorf("pick = %d, want 1", p)
	}
	v[2].Outstanding = 2 // tie with board 1 → lowest index wins
	if p := r.Pick(v, anyReq); p != 1 {
		t.Errorf("tie pick = %d, want 1", p)
	}
	v[1].Active = false
	if p := r.Pick(v, anyReq); p != 2 {
		t.Errorf("pick = %d, want 2 (board 1 inactive)", p)
	}
}

func TestWeightedTracksCapacity(t *testing.T) {
	r := Weighted()
	v := activeViews(2)
	v[0].Weight, v[1].Weight = 990, 550 // zc706 vs zybo plateau-ish
	assigned := []int{0, 0}
	for i := 0; i < 154; i++ {
		p := r.Pick(v, anyReq)
		assigned[p]++
		v[p].Assigned++
	}
	// Proportional split: 990/(990+550) ≈ 64% to the big board.
	if assigned[0] != 99 || assigned[1] != 55 {
		t.Errorf("weighted split = %v, want [99 55]", assigned)
	}
}

func TestAffinityIsConsistentAndRemapsOnScaleDown(t *testing.T) {
	r := Affinity()
	v := activeViews(4)
	keyA := workload.Request{RP: "RP1", ASP: "fir128"}
	keyB := workload.Request{RP: "RP2", ASP: "fir128"} // same ASP, other RP = distinct image
	homeA := r.Pick(v, keyA)
	for i := 0; i < 5; i++ {
		if p := r.Pick(v, keyA); p != homeA {
			t.Fatalf("affinity moved key A: %d then %d", homeA, p)
		}
	}
	// Deactivate A's home: the key remaps (ring walk) but stays stable...
	v[homeA].Active = false
	alt := r.Pick(v, keyA)
	if alt == homeA {
		t.Fatal("remapped pick must avoid the inactive board")
	}
	if p := r.Pick(v, keyA); p != alt {
		t.Errorf("remapped key unstable: %d then %d", alt, p)
	}
	// …and returns home when the board comes back.
	v[homeA].Active = true
	if p := r.Pick(v, keyA); p != homeA {
		t.Errorf("key did not return home after reactivation: %d, want %d", p, homeA)
	}
	_ = keyB
}

func TestAffinitySpreadsDistinctImages(t *testing.T) {
	r := Affinity()
	v := activeViews(4)
	hits := make([]int, 4)
	for _, rp := range []string{"RP1", "RP2", "RP3", "RP4"} {
		for _, asp := range []string{"fir128", "sha3", "aes-gcm", "fft1k", "matmul8", "decimal-fpu"} {
			hits[r.Pick(v, workload.Request{RP: rp, ASP: asp})]++
		}
	}
	for b, n := range hits {
		if n == 0 {
			t.Errorf("board %d received no image keys (spread %v)", b, hits)
		}
	}
}

// Every policy must return the shed sentinel when no board is eligible —
// inactive, missing the RP, down or degraded — instead of inventing a
// target.
func TestRoutersShedWhenNoBoardEligible(t *testing.T) {
	drained := []func([]BoardView) []BoardView{
		func(v []BoardView) []BoardView {
			for i := range v {
				v[i].Active = false
			}
			return v
		},
		func(v []BoardView) []BoardView {
			for i := range v {
				v[i].HasRP = false
			}
			return v
		},
		func(v []BoardView) []BoardView {
			for i := range v {
				v[i].Down = true
			}
			return v
		},
		func(v []BoardView) []BoardView {
			for i := range v {
				v[i].Degraded = true
			}
			return v
		},
	}
	for _, name := range RouterNames() {
		for ci, drain := range drained {
			r, err := RouterByName(name)
			if err != nil {
				t.Fatal(err)
			}
			// Warm any router state on a healthy fleet first, so the shed
			// sentinel is exercised on an already-built ring/cursor.
			r.Pick(activeViews(3), anyReq)
			if p := r.Pick(drain(activeViews(3)), anyReq); p != -1 {
				t.Errorf("%s case %d: pick = %d on a fleet with no eligible board, want -1", name, ci, p)
			}
			if p := r.Pick(drain(activeViews(1)), anyReq); p != -1 {
				t.Errorf("%s case %d: single-board pick = %d, want -1", name, ci, p)
			}
			// And the router must still work afterwards.
			if p := r.Pick(activeViews(3), anyReq); p < 0 || p > 2 {
				t.Errorf("%s case %d: pick = %d after shed, want an eligible board", name, ci, p)
			}
		}
	}
}

// The affinity ring must walk past dead boards' virtual nodes — terminating
// with a valid alternative while any board is up, and with the shed
// sentinel (not an infinite orbit) when every board is dead.
func TestAffinityWalksRingPastDeadVNodes(t *testing.T) {
	r := Affinity()
	v := activeViews(4)
	home := r.Pick(v, anyReq)
	for down := 0; down < 4; down++ {
		v[down].Down = true // kill boards one by one, home first by remapping
	}
	if p := r.Pick(v, anyReq); p != -1 {
		t.Fatalf("all-dead ring pick = %d, want -1", p)
	}
	// One survivor anywhere on the ring: every key must find it.
	for alive := 0; alive < 4; alive++ {
		for i := range v {
			v[i].Down = i != alive
		}
		for _, rp := range []string{"RP1", "RP2", "RP3", "RP4"} {
			req := workload.Request{RP: rp, ASP: "sha3"}
			if p := r.Pick(v, req); p != alive {
				t.Errorf("survivor %d: key %s routed to %d", alive, rp, p)
			}
		}
	}
	// Full recovery: the original key returns home (consistent hashing).
	for i := range v {
		v[i].Down = false
	}
	if p := r.Pick(v, anyReq); p != home {
		t.Errorf("recovered ring moved key: %d, want %d", p, home)
	}
}

func TestAutoscalerUnitThresholds(t *testing.T) {
	const w = sim.Millisecond
	a := newAutoscaler(AutoscalerConfig{
		Window: w, Min: 1, Max: 3,
		ShedHi: 0.2, P99HiUS: 100, ShedLo: 0.01, P99LoUS: 50,
	})
	// Window 0: 10 offered, 3 shed (30% > 20%) → grow.
	for i := 0; i < 10; i++ {
		a.observeArrival(w/2, i < 3)
	}
	if got := a.evaluate(w, 1, 0); got != 2 {
		t.Errorf("active after shed window = %d, want 2", got)
	}
	// Window 1: clean but slow (p99 200 µs > 100 µs) → grow to the Max cap.
	a.observeArrival(w+w/2, false)
	a.observeCompletion(w+w/2, 200*sim.Microsecond)
	if got := a.evaluate(2*w, 2, 0); got != 3 {
		t.Errorf("active after slow window = %d, want 3", got)
	}
	// Window 2: comfortable → shrink.
	a.observeArrival(2*w+w/2, false)
	a.observeCompletion(2*w+w/2, 10*sim.Microsecond)
	if got := a.evaluate(3*w, 3, 0); got != 2 {
		t.Errorf("active after idle window = %d, want 2", got)
	}
	// Windows 3-4: empty windows are comfortable too; Min clamps.
	if got := a.evaluate(5*w, 2, 0); got != 1 {
		t.Errorf("active after empty windows = %d, want clamped at 1", got)
	}
	if len(a.events) != 4 {
		t.Errorf("events = %d, want 4: %+v", len(a.events), a.events)
	}
}

// A dead board must be replaced at the next window boundary even when the
// window's own shed/p99 signals are comfortable (the crash starves them).
func TestAutoscalerReplacesDeadCapacity(t *testing.T) {
	const w = sim.Millisecond
	a := newAutoscaler(AutoscalerConfig{
		Window: w, Min: 1, Max: 3,
		ShedHi: 0.5, P99HiUS: 1e6, ShedLo: -1, P99LoUS: 0, // never trips on its own
	})
	a.observeArrival(w/2, false)
	if got := a.evaluate(w, 1, 1); got != 2 {
		t.Fatalf("active with one board down = %d, want 2", got)
	}
	if len(a.events) != 1 || a.events[0].Reason != "replacing dead capacity (1 down)" {
		t.Fatalf("events = %+v, want one dead-capacity replacement", a.events)
	}
	// Max caps replacement like any other growth.
	a.observeArrival(w+w/2, false)
	a.observeArrival(2*w+w/2, false)
	if got := a.evaluate(3*w, 3, 2); got != 3 {
		t.Errorf("active at Max with boards down = %d, want 3", got)
	}
}
