package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/workload"
)

// BoardView is the router-visible state of one board at an arrival instant:
// what a real fleet front-end knows about a backend — membership, load it
// routed there, load still in flight — plus the simulation's ground truth
// (every board has been advanced to the arrival instant before the views
// are built, so Outstanding is exact, not an estimate).
type BoardView struct {
	// Index is the board's fixed position in the fleet.
	Index int
	// Active reports whether the autoscaler currently routes to the board
	// (an inactive board still drains work it already accepted).
	Active bool
	// HasRP reports whether the board's fabric has the request's partition
	// (mixed fleets span parts with different RP plans).
	HasRP bool
	// Down reports the health layer believes the board is dead (refused
	// connections or a failed probe); Degraded reports it is ejected as an
	// outlier for now (recent CRC alarm, thermal throttling, or stalled
	// completions). Both are false in a fleet without a chaos/health layer.
	Down     bool
	Degraded bool
	// Outstanding counts requests offered to the board and not yet
	// finished; Queued counts the subset still waiting in per-RP queues.
	Outstanding int
	Queued      int
	// Assigned counts every request ever routed to the board.
	Assigned int
	// Weight is the board's capacity proxy (the platform profile's memory
	// plateau at the serving frequency, in MB/s).
	Weight float64
}

// Router assigns each arriving request to a board before it enters that
// board's per-RP queues. Pick receives one view per fleet board in index
// order and returns the index of an eligible (Active && HasRP && healthy)
// board, or -1 when no board is eligible — the fleet sheds the request at
// its own door (Unroutable) rather than forcing a policy to invent a
// target. Pick must be deterministic — a fleet run is a pure function of
// (seed, spec, fleet config).
type Router interface {
	Name() string
	Pick(views []BoardView, req workload.Request) int
}

// eligible reports whether the view may receive the request. Down and
// Degraded come from the fleet's health layer; the fleet relaxes Degraded
// before Pick when every up board is ejected (ejection is advisory,
// refusal is not), so a policy never has to second-guess the flags.
func eligible(v BoardView) bool { return v.Active && v.HasRP && !v.Down && !v.Degraded }

// roundRobin cycles through the eligible boards in index order.
type roundRobin struct{ cursor int }

func (r *roundRobin) Name() string { return "round-robin" }

func (r *roundRobin) Pick(views []BoardView, _ workload.Request) int {
	n := len(views)
	for i := 0; i < n; i++ {
		v := views[(r.cursor+i)%n]
		if eligible(v) {
			r.cursor = (v.Index + 1) % n
			return v.Index
		}
	}
	return -1 // no eligible board: shed at the fleet door
}

// leastOutstanding is join-shortest-queue: the eligible board with the
// fewest in-flight requests, ties to the lowest index.
type leastOutstanding struct{}

func (leastOutstanding) Name() string { return "least-outstanding" }

func (leastOutstanding) Pick(views []BoardView, _ workload.Request) int {
	best := -1
	for _, v := range views {
		if !eligible(v) {
			continue
		}
		if best < 0 || v.Outstanding < views[best].Outstanding {
			best = v.Index
		}
	}
	return best
}

// weighted balances assignments proportionally to board capacity: pick the
// eligible board minimising (Assigned+1)/Weight, so a zc706 absorbs more of
// the stream than a zybo. Ties go to the lowest index.
type weighted struct{}

func (weighted) Name() string { return "weighted" }

func (weighted) Pick(views []BoardView, _ workload.Request) int {
	best := -1
	bestCost := 0.0
	for _, v := range views {
		if !eligible(v) {
			continue
		}
		w := v.Weight
		if w <= 0 {
			w = 1
		}
		cost := float64(v.Assigned+1) / w
		if best < 0 || cost < bestCost {
			best, bestCost = v.Index, cost
		}
	}
	return best
}

// affinity consistently hashes the requested bitstream image (ASP@RP) onto
// a virtual-node ring over the fleet, so the same image keeps hitting the
// same board's DRAM cache. When the autoscaler deactivates a board (or a
// mixed fleet lacks the RP), the walk continues around the ring — only that
// board's images remap, which is the point of consistent hashing.
type affinity struct {
	ring []ringNode // sorted by hash
	n    int        // board count the ring was built for
}

type ringNode struct {
	hash  uint64
	board int
}

func (a *affinity) Name() string { return "affinity" }

// affinityVNodes is the virtual-node count per board: enough that the ring
// splits image keys roughly evenly across a small fleet.
const affinityVNodes = 64

// hash64 hashes a string onto the ring. Raw FNV-1a avalanches poorly on
// short suffix changes — "…vnode-0" and "…vnode-1" land almost adjacent, so
// a board's virtual nodes would clump into one arc instead of spreading —
// hence the splitmix64 finaliser on top.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func (a *affinity) build(n int) {
	a.n = n
	a.ring = a.ring[:0]
	for b := 0; b < n; b++ {
		for v := 0; v < affinityVNodes; v++ {
			a.ring = append(a.ring, ringNode{
				hash:  hash64(fmt.Sprintf("board-%d-vnode-%d", b, v)),
				board: b,
			})
		}
	}
	sort.Slice(a.ring, func(i, j int) bool {
		if a.ring[i].hash != a.ring[j].hash {
			return a.ring[i].hash < a.ring[j].hash
		}
		return a.ring[i].board < a.ring[j].board
	})
}

func (a *affinity) Pick(views []BoardView, req workload.Request) int {
	if a.n != len(views) {
		a.build(len(views))
	}
	key := hash64(req.ASP + "@" + req.RP)
	start := sort.Search(len(a.ring), func(i int) bool { return a.ring[i].hash >= key })
	// The walk is bounded by the ring length: dead boards' virtual nodes
	// are skipped, and a fully dead ring falls through to the shed
	// sentinel instead of orbiting forever.
	for i := 0; i < len(a.ring); i++ {
		node := a.ring[(start+i)%len(a.ring)]
		if eligible(views[node.board]) {
			return node.board
		}
	}
	return -1 // no eligible board: shed at the fleet door
}

// RoundRobin, LeastOutstanding, Weighted and Affinity are the built-in
// routing policies. Each call returns a fresh router (round-robin and
// affinity carry state, so routers are not shared between fleets).
func RoundRobin() Router       { return &roundRobin{} }
func LeastOutstanding() Router { return leastOutstanding{} }
func Weighted() Router         { return weighted{} }
func Affinity() Router         { return &affinity{} }

// RouterNames lists the built-in routing policies in presentation order.
func RouterNames() []string {
	return []string{"round-robin", "least-outstanding", "weighted", "affinity"}
}

// RouterByName resolves a built-in routing policy.
func RouterByName(name string) (Router, error) {
	switch name {
	case "round-robin":
		return RoundRobin(), nil
	case "least-outstanding":
		return LeastOutstanding(), nil
	case "weighted":
		return Weighted(), nil
	case "affinity":
		return Affinity(), nil
	}
	return nil, fmt.Errorf("cluster: unknown router %q (want round-robin|least-outstanding|weighted|affinity)", name)
}
