package cluster

import (
	"reflect"
	"testing"

	"repro/internal/chaos"
	"repro/internal/sim"
	"repro/internal/workload"
)

// fleetShape is one configuration the parallel-equality matrix exercises:
// every code path with cross-board state (routing, chaos, health, hedging,
// autoscaling, sketch merge) must produce byte-identical output whatever
// the worker count.
type fleetShape struct {
	name  string
	trace workload.ArrivalSpec
	seed  uint64
	n     int
	cfg   func(workers int) FleetConfig
}

func parallelShapes() []fleetShape {
	plainSpec := workload.ArrivalSpec{RatePerSec: 800, Deadline: 20 * sim.Millisecond}
	chaosSpec := workload.ArrivalSpec{
		RatePerSec: 600,
		Skew:       1.1,
		Deadline:   20 * sim.Millisecond,
		Tenants:    []string{"alpha", "beta"},
	}
	return []fleetShape{
		{
			name: "least-outstanding", trace: plainSpec, seed: 7, n: 96,
			cfg: func(w int) FleetConfig {
				return FleetConfig{
					Boards: zedboards(4), Seed: 42, FreqMHz: 200, Workers: w,
					Router:  LeastOutstanding(),
					Service: ServiceTemplate{Prewarm: testASPs},
				}
			},
		},
		{
			name: "weighted-mixed", trace: plainSpec, seed: 11, n: 72,
			cfg: func(w int) FleetConfig {
				return FleetConfig{
					Boards: []BoardSpec{
						{Platform: "zedboard"}, {Platform: "zybo-z7-10"}, {Platform: "zc706"},
					},
					Seed: 42, FreqMHz: 200, Workers: w,
					Router:  Weighted(),
					Service: ServiceTemplate{CacheBudgetImages: 4},
				}
			},
		},
		{
			name: "affinity-cold", trace: plainSpec, seed: 13, n: 96,
			cfg: func(w int) FleetConfig {
				return FleetConfig{
					Boards: zedboards(4), Seed: 42, FreqMHz: 200, Workers: w,
					Router:  Affinity(),
					Service: ServiceTemplate{CacheBudgetImages: 2},
				}
			},
		},
		{
			// Chaos with every fault class plus hedging: completions race
			// the health layer's probe/ejection bookkeeping unless the epoch
			// merge keeps them in board-index order.
			name: "chaos-hedge", trace: chaosSpec, seed: 17, n: 144,
			cfg: func(w int) FleetConfig {
				return FleetConfig{
					Boards: zedboards(3), Seed: 42, FreqMHz: 200, Workers: w,
					Router: LeastOutstanding(),
					Chaos: &ChaosConfig{
						Schedule: []chaos.Event{
							{At: 20 * sim.Millisecond, Board: 1, Kind: chaos.HeatOn, TempC: 80},
							{At: 40 * sim.Millisecond, Board: 0, Kind: chaos.BoardDown},
							{At: 60 * sim.Millisecond, Board: 1, Kind: chaos.HeatOff},
							{At: 80 * sim.Millisecond, Board: 0, Kind: chaos.BoardUp},
						},
						ProbeEvery: 20 * sim.Millisecond,
						Hedge:      true,
					},
					Service: ServiceTemplate{},
				}
			},
		},
		{
			// The autoscaler observes completions mid-epoch: the shape that
			// forces the per-board completion buffers to reproduce the
			// sequential insertion order exactly.
			name: "scaler-reactive", trace: chaosSpec, seed: 19, n: 144,
			cfg: func(w int) FleetConfig {
				return FleetConfig{
					Boards: zedboards(4), Seed: 42, FreqMHz: 200, Workers: w,
					Router: LeastOutstanding(),
					Autoscaler: &AutoscalerConfig{
						Window: 25 * sim.Millisecond,
						Min:    1, Max: 4,
						ShedHi: 0.01, P99HiUS: (20 * sim.Millisecond).Microseconds(),
						ShedLo: -1, P99LoUS: 0,
					},
					Service: ServiceTemplate{},
				}
			},
		},
		{
			name: "scaler-predictive", trace: chaosSpec, seed: 23, n: 144,
			cfg: func(w int) FleetConfig {
				return FleetConfig{
					Boards: zedboards(4), Seed: 42, FreqMHz: 200, Workers: w,
					Router: LeastOutstanding(),
					Autoscaler: &AutoscalerConfig{
						Window: 25 * sim.Millisecond,
						Min:    1, Max: 4,
						Policy: ScalerPredictive, BoardRatePerSec: 200,
					},
					Service: ServiceTemplate{},
				}
			},
		},
		{
			// Sketch-backed samples: the merge must stay byte-stable through
			// the bucket-count fold as well as the exact append.
			name: "sketch", trace: plainSpec, seed: 29, n: 96,
			cfg: func(w int) FleetConfig {
				return FleetConfig{
					Boards: zedboards(4), Seed: 42, FreqMHz: 200, Workers: w,
					Router:  LeastOutstanding(),
					Service: ServiceTemplate{Prewarm: testASPs, SketchQuantiles: true},
				}
			},
		},
	}
}

// TestFleetParallelMatchesSequential is the tentpole's equality bar: for
// every fleet shape, serving on 4 and 8 workers must produce output
// DeepEqual to the sequential loop — not statistically close, identical,
// down to the insertion order of every latency sample.
func TestFleetParallelMatchesSequential(t *testing.T) {
	for _, shape := range parallelShapes() {
		shape := shape
		t.Run(shape.name, func(t *testing.T) {
			run := func(workers int) *FleetStats {
				f := mustFleet(t, shape.cfg(workers))
				st, err := f.Serve(mustTrace(t, shape.trace, shape.seed, shape.n, f.RPNames()))
				if err != nil {
					t.Fatal(err)
				}
				return st
			}
			seq := run(1)
			for _, w := range []int{4, 8} {
				if par := run(w); !reflect.DeepEqual(seq, par) {
					t.Errorf("workers=%d output diverges from sequential", w)
				}
			}
		})
	}
}

// TestFleetHundredBoardsSketchSmoke is the scale point: a 100-board fleet
// on 8 workers with sketch-backed samples serves a stream, stays
// byte-identical to the sequential run, and the merged aggregate rides the
// memory-bounded backend (100 boards × an hour of arrivals must not mean
// 100 unbounded value slices).
func TestFleetHundredBoardsSketchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("100-board smoke skipped in -short mode")
	}
	build := func(workers int) FleetConfig {
		return FleetConfig{
			Boards: zedboards(100), Seed: 42, FreqMHz: 200, Workers: workers,
			Router:  LeastOutstanding(),
			Service: ServiceTemplate{Prewarm: testASPs, SketchQuantiles: true},
		}
	}
	run := func(workers int) *FleetStats {
		f := mustFleet(t, build(workers))
		spec := workload.ArrivalSpec{RatePerSec: 4000, Deadline: 20 * sim.Millisecond}
		st, err := f.Serve(mustTrace(t, spec, 31, 400, f.RPNames()))
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	par := run(8)
	if par.Arrivals != 400 {
		t.Errorf("arrivals = %d, want 400", par.Arrivals)
	}
	if len(par.Boards) != 100 {
		t.Fatalf("boards = %d, want 100", len(par.Boards))
	}
	if !par.Aggregate.SojournUS.Sketched() || !par.Aggregate.QueueWaitUS.Sketched() {
		t.Error("aggregate samples must stay on the sketch backend through the merge")
	}
	if par.Aggregate.Completed == 0 || par.Aggregate.SojournUS.N() != par.Aggregate.Completed {
		t.Errorf("sojourn samples %d ≠ completed %d", par.Aggregate.SojournUS.N(), par.Aggregate.Completed)
	}
	if seq := run(1); !reflect.DeepEqual(seq, par) {
		t.Error("100-board parallel run diverges from sequential")
	}
}

// TestFleetWorkersBeyondBoardsClamped pins the fan-out clamp: more workers
// than boards must not change anything (including not deadlocking on an
// empty claim range).
func TestFleetWorkersBeyondBoardsClamped(t *testing.T) {
	run := func(workers int) *FleetStats {
		f := mustFleet(t, FleetConfig{
			Boards: zedboards(2), Seed: 42, FreqMHz: 200, Workers: workers,
			Router:  LeastOutstanding(),
			Service: ServiceTemplate{Prewarm: testASPs},
		})
		spec := workload.ArrivalSpec{RatePerSec: 700, Deadline: 20 * sim.Millisecond}
		st, err := f.Serve(mustTrace(t, spec, 37, 48, f.RPNames()))
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	if !reflect.DeepEqual(run(1), run(64)) {
		t.Error("worker clamp changed the output")
	}
}
