package cluster

import (
	"fmt"

	"repro/internal/chaos"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// ChaosConfig attaches a fault schedule and the fleet's self-healing
// machinery to a run. The schedule is applied on the arrival timeline; the
// health layer is entirely deterministic — probes and ejection windows are
// functions of arrival times and board state, never of wall clocks — so a
// chaos run stays a pure function of (seed, trace, fleet config).
type ChaosConfig struct {
	// Schedule is the fault storm, time-ordered (chaos.Config.Schedule
	// emits it sorted; hand-built schedules must be sorted too).
	Schedule []chaos.Event
	// HealthTimeout ejects a board whose outstanding work has made no
	// progress for this long (missed-completion signal; 0 = 50 ms — above
	// a cold-cache staging pause, below a whole outage).
	HealthTimeout sim.Duration
	// ProbeEvery is the health-probe cadence on the arrival timeline:
	// probes detect recovered boards and crashed boards nobody routed to
	// (0 = 20 ms).
	ProbeEvery sim.Duration
	// DegradedFor is the outlier-ejection window after a CRC-verdict
	// signal: the board is routed around while it repairs (0 = 25 ms).
	DegradedFor sim.Duration
	// ThrottleC is the die temperature at which a board derates its
	// over-clock to nominal and is ejected as thermally degraded until the
	// die cools (0 = 70 °C, the excursion regime the `-hot` presets model).
	ThrottleC float64
	// MaxRetries bounds connection-refused failover attempts per arrival
	// (0 = one less than the fleet size: try every other board once).
	MaxRetries int
	// Hedge duplicates deadline-bearing requests onto a second eligible
	// board after the primary admit — tail insurance that burns capacity.
	Hedge bool
}

// throttleHystC is the cool-down hysteresis below ThrottleC before a
// throttled board restores its over-clock.
const throttleHystC = 5.0

// Validate checks the schedule against the fleet shape.
func (c *ChaosConfig) Validate(boards int) error {
	for i, ev := range c.Schedule {
		if ev.Board < 0 || ev.Board >= boards {
			return fmt.Errorf("cluster: chaos event %d targets board %d of a %d-board fleet", i, ev.Board, boards)
		}
		if i > 0 && ev.At < c.Schedule[i-1].At {
			return fmt.Errorf("cluster: chaos schedule not time-ordered at event %d", i)
		}
	}
	if c.HealthTimeout < 0 || c.ProbeEvery < 0 || c.DegradedFor < 0 || c.MaxRetries < 0 {
		return fmt.Errorf("cluster: chaos health parameters must be non-negative")
	}
	return nil
}

func (c *ChaosConfig) healthTimeout() sim.Duration {
	if c.HealthTimeout > 0 {
		return c.HealthTimeout
	}
	return 50 * sim.Millisecond
}

func (c *ChaosConfig) probeEvery() sim.Duration {
	if c.ProbeEvery > 0 {
		return c.ProbeEvery
	}
	return 20 * sim.Millisecond
}

func (c *ChaosConfig) degradedFor() sim.Duration {
	if c.DegradedFor > 0 {
		return c.DegradedFor
	}
	return 25 * sim.Millisecond
}

func (c *ChaosConfig) throttleC() float64 {
	if c.ThrottleC > 0 {
		return c.ThrottleC
	}
	return 70
}

func (c *ChaosConfig) maxRetries(boards int) int {
	if c.MaxRetries > 0 {
		return c.MaxRetries
	}
	return boards - 1
}

// health is the fleet's per-board health state. Down means "refuses
// connections" (learned from refused offers and periodic probes, the way a
// front-end learns it, not from the schedule directly); Degraded means
// "up but ejected for now" (CRC alarm, thermal throttle, or stalled
// completions).
type health struct {
	cfg *ChaosConfig

	down          []bool
	throttled     []bool
	degradedUntil []sim.Duration
	lastDone      []int
	lastProgress  []sim.Duration

	nextEvent int
	nextProbe sim.Duration
}

func newHealth(cfg *ChaosConfig, boards int) *health {
	return &health{
		cfg:           cfg,
		down:          make([]bool, boards),
		throttled:     make([]bool, boards),
		degradedUntil: make([]sim.Duration, boards),
		lastDone:      make([]int, boards),
		lastProgress:  make([]sim.Duration, boards),
		nextProbe:     cfg.probeEvery(),
	}
}

// degraded reports whether board i is currently ejected as an outlier.
func (h *health) degraded(i int, now sim.Duration, outstanding int) bool {
	if h.throttled[i] || h.degradedUntil[i] > now {
		return true
	}
	return outstanding > 0 && now-h.lastProgress[i] > h.cfg.healthTimeout()
}

// downCount is the autoscaler's dead-capacity signal.
func (h *health) downCount() int {
	n := 0
	for _, d := range h.down {
		if d {
			n++
		}
	}
	return n
}

// applyChaos injects every scheduled fault due by now. Crashes and
// recoveries act on the board service; thermal excursions drive the board's
// own die and heat gun (the over-clock physics reacts through the platform
// model); CRC glitches corrupt configuration memory and raise the read-back
// alarm, which doubles as the health layer's CRC-verdict signal.
func (f *Fleet) applyChaos(now sim.Duration) error {
	h := f.health
	sched := f.cfg.Chaos.Schedule
	for h.nextEvent < len(sched) && sched[h.nextEvent].At <= now {
		ev := sched[h.nextEvent]
		h.nextEvent++
		b := f.boards[ev.Board]
		if f.obs != nil {
			f.obs.fault(ev)
		}
		switch ev.Kind {
		case chaos.BoardDown:
			b.svc.Crash()
		case chaos.BoardUp:
			b.svc.Recover()
		case chaos.HeatOn:
			// The excursion arrives as a step (heat-gun blast) and the gun
			// servo holds the die there until HeatOff.
			b.plat.Die.SetTempC(ev.TempC)
			b.plat.Gun.SetTargetDie(ev.TempC)
		case chaos.HeatOff:
			b.plat.Gun.Off()
		case chaos.CRCGlitch:
			raised, err := b.svc.RaiseCRCUpset(ev.Frames)
			if err != nil {
				return fmt.Errorf("cluster: board %d: %w", ev.Board, err)
			}
			if raised {
				// Envoy-style outlier ejection on the CRC verdict: route
				// around the board while it repairs.
				until := ev.At + h.cfg.degradedFor()
				if until > h.degradedUntil[ev.Board] {
					h.degradedUntil[ev.Board] = until
				}
			}
		default:
			return fmt.Errorf("cluster: unknown chaos event kind %v", ev.Kind)
		}
	}
	return nil
}

// updateHealth advances the deterministic health machinery to the arrival
// instant: completion-progress tracking, thermal throttling with
// hysteresis, and the periodic probes that detect crashes and recoveries
// the routing path never touched.
func (f *Fleet) updateHealth(now sim.Duration) error {
	h := f.health
	for i, b := range f.boards {
		if done := b.svc.Done(); done != h.lastDone[i] || b.svc.Outstanding() == 0 {
			h.lastDone[i] = done
			h.lastProgress[i] = now
		}
		t := b.plat.Die.TempC()
		switch {
		case !h.throttled[i] && t >= h.cfg.throttleC():
			h.throttled[i] = true
			// Protect the configuration path: derate the over-clock to the
			// platform nominal until the die cools (at 200 MHz no physical
			// temperature corrupts the data path, but a real deployment
			// throttles on the control-path margin, not the failure point).
			if err := f.setBoardFreq(b, b.profile.Clock.NominalMHz); err != nil {
				return fmt.Errorf("cluster: board %d throttle: %w", i, err)
			}
			if f.obs != nil {
				f.obs.throttle(now, i, true, t)
			}
		case h.throttled[i] && t < h.cfg.throttleC()-throttleHystC:
			h.throttled[i] = false
			if err := f.setBoardFreq(b, f.cfg.FreqMHz); err != nil {
				return fmt.Errorf("cluster: board %d unthrottle: %w", i, err)
			}
			if f.obs != nil {
				f.obs.throttle(now, i, false, t)
			}
		}
	}
	for now >= h.nextProbe {
		for i, b := range f.boards {
			was := h.down[i]
			h.down[i] = b.svc.Crashed()
			if f.obs != nil && was != h.down[i] {
				f.obs.probe(now, i, h.down[i])
			}
		}
		h.nextProbe += h.cfg.probeEvery()
	}
	return nil
}

// setBoardFreq re-programs one board's over-clock domain (no-op for fleets
// already at nominal).
func (f *Fleet) setBoardFreq(b *board, mhz float64) error {
	if f.cfg.FreqMHz <= 0 || mhz <= 0 {
		return nil
	}
	_, err := b.ctrl.SetFrequencyMHz(mhz)
	return err
}

// route assigns one arrival: pick, fail over on refused connections, admit,
// optionally hedge. It reports whether the request was admitted somewhere.
// Without a chaos layer this reduces exactly to the historical pick-and-
// offer path.
func (f *Fleet) route(views []BoardView, req workload.Request, stats *FleetStats) (bool, error) {
	retries := 0
	for {
		pick := f.router.Pick(views, req)
		if pick == -1 {
			stats.Unroutable++
			if f.obs != nil {
				f.obs.routeEvent(obs.EvUnroutable, req.At, req.RP+" "+req.ASP)
			}
			return false, nil
		}
		if pick < 0 || pick >= len(f.boards) || !eligible(views[pick]) {
			return false, fmt.Errorf("cluster: router %s picked ineligible board %d for %s@%s",
				f.router.Name(), pick, req.ASP, req.RP)
		}
		b := f.boards[pick]
		if f.health != nil && b.svc.Crashed() {
			// Connection refused: the contact attempt is itself the failure
			// detector. Mark the board down and fail over.
			f.health.down[pick] = true
			views[pick].Down = true
			if retries < f.cfg.Chaos.maxRetries(len(f.boards)) {
				retries++
				stats.FailedOver++
				if f.obs != nil {
					f.obs.routeEvent(obs.EvFailover, req.At, fmt.Sprintf("board%d refused", pick))
				}
				continue
			}
			stats.Unroutable++
			if f.obs != nil {
				f.obs.routeEvent(obs.EvUnroutable, req.At, req.RP+" "+req.ASP)
			}
			return false, nil
		}
		b.assigned++
		admitted, err := b.svc.Offer(req)
		if err != nil {
			return false, fmt.Errorf("cluster: board %d: %w", pick, err)
		}
		if admitted && f.health != nil && f.cfg.Chaos.Hedge && req.Deadline > 0 {
			f.hedge(views, pick, req, stats)
		}
		// The persistent view learns the assignment only after any hedge
		// pick, which must see the arrival-instant snapshot (the order the
		// per-arrival rebuild used to establish).
		views[pick].Assigned = b.assigned
		return admitted, nil
	}
}

// hedge issues a duplicate offer for a deadline-bearing request onto the
// next eligible board: if the primary's board stalls or dies, the hedge
// still meets the deadline. The duplicate is real work — it shows up in the
// per-board Offered/Completed counters — bought deliberately as tail
// insurance; Hedged counts the premiums paid.
func (f *Fleet) hedge(views []BoardView, primary int, req workload.Request, stats *FleetStats) {
	masked := views[primary]
	views[primary].Down = true
	pick := f.router.Pick(views, req)
	views[primary] = masked
	if pick < 0 || pick >= len(f.boards) || pick == primary || !eligible(views[pick]) {
		return
	}
	b := f.boards[pick]
	if b.svc.Crashed() {
		return
	}
	if admitted, err := b.svc.Offer(req); err == nil && admitted {
		b.assigned++
		views[pick].Assigned = b.assigned
		stats.Hedged++
		if f.obs != nil {
			f.obs.routeEvent(obs.EvHedge, req.At, fmt.Sprintf("board%d", pick))
		}
	}
}
