// Package cluster is the fleet layer above one board's reconfiguration
// service: N independent simulated boards (each an hll.Service on its own
// kernel, mixed platform profiles allowed) behind a front-end router that
// assigns every arriving request to a board before it enters that board's
// per-RP queues, plus a reactive autoscaler that grows and shrinks the
// active board set between bounds.
//
// The fleet walks the arrival stream in time order as a sequence of
// epochs, one per distinct arrival timestamp. Before the epoch's arrivals
// are routed, every board's simulation advances to the epoch instant, so
// the router sees exact board state (outstanding work, queue depths)
// rather than an estimate; then the chosen board admits each request under
// its own admission control. Between routing decisions boards only
// interact through those assignments, so the per-epoch advance (and the
// final drain) fans out across FleetConfig.Workers goroutines — each board
// owns its whole simulation stack, completions buffer per board, and every
// cross-board fold happens in board-index order on the epoch boundary.
// Determinism is the hard requirement: routing, chaos injection, health
// verdicts and autoscaler decisions stay sequential between epochs,
// per-board RNG streams derive from the fleet seed and board index, and
// the merged statistics are a pure function of (seed, trace, fleet
// config) — byte-identical across repeated runs, worker counts and
// whatever campaign schedule produced them.
package cluster

import (
	"fmt"

	"repro/internal/bitstream"
	"repro/internal/core"
	"repro/internal/hll"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/workpool"
	"repro/internal/zynq"
)

// BoardSpec names one board of the fleet.
type BoardSpec struct {
	// Platform is the registered platform profile the board simulates
	// ("" = the default zedboard).
	Platform string
}

// ServiceTemplate is the per-board service configuration every fleet board
// is built from. Budgets resolve against each board's own profile, so a
// mixed fleet gives every board the budget its platform affords.
type ServiceTemplate struct {
	// Policy is the per-board dispatch policy name ("" = fcfs).
	Policy string
	// CacheBudgetBytes bounds each board's DRAM bitstream cache: 0 uses
	// the board profile's derived budget, < 0 disables the cache.
	CacheBudgetBytes int64
	// CacheBudgetImages, when > 0, overrides CacheBudgetBytes with
	// n × the board's own image size — the portable way to give a mixed
	// fleet comparably sized caches.
	CacheBudgetImages int
	// QueueCap is the per-RP admission depth (0 = 32).
	QueueCap int
	// Prewarm stages the listed ASPs into every board's cache before the
	// stream starts (ignored on cache-disabled boards).
	Prewarm []string
	// Repair selects how a board clears a CRC read-back alarm: "scrub"
	// (default, frame-wise rewrite) or "reload" (full partial
	// reconfiguration).
	Repair string
	// SketchQuantiles switches every board's latency samples to the
	// memory-bounded sketch backend (see sim.Sample.UseSketch) — O(sketch
	// size) memory however long the horizon, quantiles within the sketch's
	// relative error bound. Default false keeps the exact backend and
	// byte-identical historical output.
	SketchQuantiles bool
}

// FleetConfig assembles a fleet.
type FleetConfig struct {
	// Boards lists the fleet members in fixed index order.
	Boards []BoardSpec
	// Seed is the fleet seed; board i's platform RNG stream derives from
	// (Seed, i), so fleet runs are pure functions of the configuration.
	Seed uint64
	// FreqMHz is the ICAP over-clock applied to every board (0 = nominal).
	FreqMHz float64
	// Router assigns arrivals to boards (nil = round-robin). Routers carry
	// state; do not share one across fleets.
	Router Router
	// Autoscaler, when non-nil, starts the fleet at Min active boards and
	// reacts to windowed shed/p99 signals. Nil keeps every board active.
	Autoscaler *AutoscalerConfig
	// Chaos, when non-nil, injects the configured fault schedule and turns
	// on the self-healing machinery (health tracking, failover, hedging).
	// Nil keeps the historical fault-free semantics bit for bit.
	Chaos *ChaosConfig
	// Workers bounds the goroutines the epoch advance and final drain fan
	// out over (≤ 1 = the historical single-goroutine loop). Output is
	// byte-identical at every setting; only wall clock changes.
	Workers int
	// Trace, when non-nil, records the run's deterministic span/event
	// stream and sim-time metrics (see internal/obs): per-board buffers
	// are written only by that board's goroutine during the parallel
	// advance and exported in board-index order, so the trace bytes are
	// independent of Workers. Nil keeps tracing disabled at zero cost.
	Trace *obs.FleetTrace
	// Pool, when non-nil, accumulates the epoch fan-out's per-worker
	// wall-clock utilization (see workpool.Counters). Profiling only —
	// wall-clock tallies never feed the deterministic outputs.
	Pool *workpool.Counters
	// Service is the per-board service template.
	Service ServiceTemplate
}

// board is one fleet member.
type board struct {
	spec     BoardSpec
	profile  *platform.Profile
	plat     *zynq.Platform
	ctrl     *core.Controller
	svc      *hll.Service
	hasRP    map[string]bool
	weight   float64
	assigned int
	// completions buffers this board's completion observations during an
	// epoch's (possibly parallel) advance; the fleet folds the buffers into
	// the autoscaler in board-index order at the epoch boundary, which is
	// exactly the order the sequential loop produced them in. Unused (nil)
	// without a scaler.
	completions []completion
}

// completion is one buffered onComplete observation.
type completion struct {
	rel, sojourn sim.Duration
}

// Fleet is N boards behind a router. Build with New, serve one stream with
// Serve (a fleet, like a service, is single-use — every Serve in the public
// API builds a fresh one).
type Fleet struct {
	cfg    FleetConfig
	boards []*board
	router Router
	scaler *autoscaler
	health *health   // nil without a Chaos config
	obs    *fleetObs // nil without a Trace
	common []string  // RP names every board serves, in board-0 order
	served bool
}

// deriveSeed spreads the fleet seed across board indices (splitmix64-style
// odd multiplier, the same derivation the experiment scenarios use for
// per-point streams).
func deriveSeed(seed uint64, index int) uint64 {
	return seed ^ (uint64(index+1) * 0x9E3779B97F4A7C15)
}

// CommonRPs resolves the servable RP set of a board list — the partitions
// every board's platform has, in first-board plan order — straight from
// the profile registry, without booting anything. A trace over these can
// be routed to any board.
func CommonRPs(specs []BoardSpec) ([]string, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("cluster: fleet needs at least one board")
	}
	var common []string
	for i, spec := range specs {
		prof, ok := platform.Lookup(spec.Platform)
		if !ok {
			return nil, fmt.Errorf("cluster: board %d: unknown platform %q (registered: %s)",
				i, spec.Platform, platform.NameList())
		}
		names := prof.RPNames()
		if i == 0 {
			common = names
			continue
		}
		has := make(map[string]bool, len(names))
		for _, rp := range names {
			has[rp] = true
		}
		kept := common[:0]
		for _, rp := range common {
			if has[rp] {
				kept = append(kept, rp)
			}
		}
		common = kept
	}
	if len(common) == 0 {
		return nil, fmt.Errorf("cluster: fleet boards share no reconfigurable partition")
	}
	return common, nil
}

// New builds the fleet: every board is booted up front (an autoscaler
// activates and deactivates routing, not hardware), so the run's cost and
// RNG draws never depend on scaling decisions.
func New(cfg FleetConfig) (*Fleet, error) {
	common, err := CommonRPs(cfg.Boards)
	if err != nil {
		return nil, err
	}
	router := cfg.Router
	if router == nil {
		router = RoundRobin()
	}
	f := &Fleet{cfg: cfg, router: router, common: common}
	if cfg.Autoscaler != nil {
		if err := cfg.Autoscaler.Validate(len(cfg.Boards)); err != nil {
			return nil, err
		}
		f.scaler = newAutoscaler(*cfg.Autoscaler)
	}
	if cfg.Chaos != nil {
		if err := cfg.Chaos.Validate(len(cfg.Boards)); err != nil {
			return nil, err
		}
		f.health = newHealth(cfg.Chaos, len(cfg.Boards))
	}
	for i, spec := range cfg.Boards {
		b, err := newBoard(cfg, spec, i)
		if err != nil {
			return nil, fmt.Errorf("cluster: board %d (%s): %w", i, spec.Platform, err)
		}
		f.boards = append(f.boards, b)
	}
	if cfg.Trace != nil {
		f.obs = newFleetObs(cfg.Trace, f.boards)
	}
	return f, nil
}

func newBoard(cfg FleetConfig, spec BoardSpec, index int) (*board, error) {
	prof, ok := platform.Lookup(spec.Platform)
	if !ok {
		return nil, fmt.Errorf("unknown platform %q (registered: %s)", spec.Platform, platform.NameList())
	}
	p, err := zynq.NewPlatform(zynq.Options{
		Seed:        deriveSeed(cfg.Seed, index),
		Profile:     prof,
		FastThermal: true,
	})
	if err != nil {
		return nil, err
	}
	p.ConfigureStatic()
	ctrl := core.New(p)
	if cfg.FreqMHz > 0 {
		if _, err := ctrl.SetFrequencyMHz(cfg.FreqMHz); err != nil {
			return nil, err
		}
	}
	policyName := cfg.Service.Policy
	if policyName == "" {
		policyName = "fcfs"
	}
	policy, err := sched.PolicyByName(policyName)
	if err != nil {
		return nil, err
	}
	dev := prof.NewDevice()
	image := int64(bitstream.ExpectedSize(dev.RegionFrames(prof.RPs(dev)[0])))
	budget := cfg.Service.CacheBudgetBytes
	switch {
	case cfg.Service.CacheBudgetImages > 0:
		budget = int64(cfg.Service.CacheBudgetImages) * image
	case budget == 0:
		budget = prof.BitstreamCacheBytes()
	case budget < 0:
		budget = 0 // hll semantics: 0 disables
	}
	queueCap := cfg.Service.QueueCap
	if queueCap == 0 {
		queueCap = 32
	}
	svc := hll.NewService(ctrl, hll.ServiceConfig{
		Policy:           policy,
		CacheBudgetBytes: budget,
		QueueCap:         queueCap,
		StageBytesPerSec: prof.IO.SDBytesPerSec,
		PrewarmASPs:      cfg.Service.Prewarm,
		Repair:           cfg.Service.Repair,
		UpsetSeed:        deriveSeed(cfg.Seed, index) ^ 0x5E0D,
		SketchQuantiles:  cfg.Service.SketchQuantiles,
	})
	weighFreq := cfg.FreqMHz
	if weighFreq <= 0 {
		weighFreq = prof.Clock.NominalMHz
	}
	b := &board{
		spec:    spec,
		profile: prof,
		plat:    p,
		ctrl:    ctrl,
		svc:     svc,
		hasRP:   make(map[string]bool),
		weight:  prof.MemoryPlateauMBs(weighFreq),
	}
	for _, rp := range svc.RPNames() {
		b.hasRP[rp] = true
	}
	if cfg.Trace != nil {
		svc.SetTracer(cfg.Trace.Board(index))
		cfg.Trace.Bind(index, prof.Name, svc.RPNames())
	}
	return b, nil
}

// RPNames lists the partitions every fleet board serves (the servable RP
// set a fleet trace must stay within), in board-0 plan order.
func (f *Fleet) RPNames() []string { return append([]string(nil), f.common...) }

// Router returns the active routing policy.
func (f *Fleet) Router() Router { return f.router }

// Size returns the fleet's board count.
func (f *Fleet) Size() int { return len(f.boards) }

// workers resolves the epoch fan-out width: ≤ 1 (and a one-board fleet)
// runs the historical sequential loop on the calling goroutine.
func (f *Fleet) workers() int {
	w := f.cfg.Workers
	if w < 1 {
		w = 1
	}
	if w > len(f.boards) {
		w = len(f.boards)
	}
	return w
}

// advanceAll moves every board to the epoch horizon. Boards are independent
// between routing decisions — each owns its kernel, platform and service —
// so the fan-out runs on up to workers goroutines, with two deterministic
// folds afterwards: buffered completions flush into the autoscaler in
// board-index order, and the lowest-index error (if any) is the one
// reported, matching the sequential loop's first-failure semantics. Boards
// with nothing queued take the SkipTo fast path — one RunUntil instead of
// the dispatch loop's per-wake scaffolding.
func (f *Fleet) advanceAll(now sim.Duration, workers int, errs []error) error {
	workpool.RunCounted(len(f.boards), workers, f.cfg.Pool, func(i int) {
		b := f.boards[i]
		if b.svc.SkipTo(now) {
			return
		}
		errs[i] = b.svc.AdvanceTo(now)
	})
	f.flushCompletions()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("cluster: board %d: %w", i, err)
		}
	}
	return nil
}

// flushCompletions folds the boards' buffered completion observations into
// the autoscaler in board-index order — the exact insertion order the
// sequential loop produced by advancing boards one after another.
func (f *Fleet) flushCompletions() {
	if f.scaler == nil {
		return
	}
	for _, b := range f.boards {
		for _, c := range b.completions {
			f.scaler.observeCompletion(c.rel, c.sojourn)
		}
		b.completions = b.completions[:0]
	}
}

// Serve routes the whole arrival stream across the fleet and returns the
// merged statistics. The trace must be time-ordered and stay within the
// fleet's common RP set and the ASP library (validated at the fleet door).
func (f *Fleet) Serve(tr workload.Trace) (*FleetStats, error) {
	if f.served {
		return nil, fmt.Errorf("cluster: fleet already served a stream (build a fresh fleet per run)")
	}
	asps := workload.Library()
	names := make([]string, len(asps))
	for i, a := range asps {
		names[i] = a.Name
	}
	if err := tr.Validate(f.common, names); err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	f.served = true

	for i, b := range f.boards {
		if f.scaler != nil {
			// Completions buffer per board rather than calling the scaler
			// directly, so an epoch's advance can fan out across goroutines
			// without sharing scaler state; flushCompletions folds the
			// buffers back in index order.
			b := b
			b.svc.SetOnComplete(func(rel, sojourn sim.Duration) {
				b.completions = append(b.completions, completion{rel: rel, sojourn: sojourn})
			})
		}
		if err := b.svc.Begin(); err != nil {
			return nil, fmt.Errorf("cluster: board %d: %w", i, err)
		}
	}

	active := len(f.boards)
	if f.scaler != nil {
		active = f.scaler.cfg.Min
	}
	peak := active

	stats := &FleetStats{}
	now := sim.Duration(-1)
	workers := f.workers()
	errs := make([]error, len(f.boards))
	// The router's per-board snapshot persists across arrivals: the fields
	// that never change (Index, Weight) and HasRP — true by construction,
	// because the trace is validated against the fleet's common RP set, the
	// intersection every board serves — are set once here; buildViews
	// refreshes only the dynamic fields each arrival, and the assignment
	// sites in route/hedge keep Assigned current.
	views := make([]BoardView, len(f.boards))
	for i, b := range f.boards {
		views[i] = BoardView{Index: i, HasRP: true, Weight: b.weight}
	}
	batch := 0
	for _, req := range tr {
		if req.At > now {
			// A new epoch: every arrival sharing a timestamp routes against
			// this one advance.
			if f.obs != nil {
				f.obs.epoch(req.At, batch)
				batch = 0
			}
			now = req.At
			if err := f.advanceAll(now, workers, errs); err != nil {
				return nil, err
			}
			if f.obs != nil {
				// Sample on the post-advance state: ticks due in the gap all
				// observe it, and board state only changes at epochs.
				f.obs.sample(f, now, active)
			}
		}
		batch++
		if f.health != nil {
			if err := f.applyChaos(now); err != nil {
				return nil, err
			}
			if err := f.updateHealth(now); err != nil {
				return nil, err
			}
		}
		if f.scaler != nil {
			down := 0
			if f.health != nil {
				down = f.health.downCount()
			}
			active = f.scaler.evaluate(now, active, down)
			if active > peak {
				peak = active
			}
			if f.obs != nil {
				f.obs.scales(f.scaler.events)
			}
		}
		stats.Arrivals++
		f.buildViews(views, now, active)
		admitted, err := f.route(views, req, stats)
		if err != nil {
			return nil, err
		}
		if f.scaler != nil {
			f.scaler.observeArrival(req.At, !admitted)
		}
	}

	if f.obs != nil {
		f.obs.closeBatch(batch)
	}
	stats.PeakActive, stats.FinalActive = peak, active
	drained := make([]hll.ServiceStats, len(f.boards))
	workpool.RunCounted(len(f.boards), workers, f.cfg.Pool, func(i int) {
		drained[i], errs[i] = f.boards[i].svc.Drain()
	})
	f.flushCompletions()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("cluster: board %d: %w", i, err)
		}
	}
	for i, b := range f.boards {
		stats.KernelEvents += b.plat.Kernel.Fired()
		stats.Boards = append(stats.Boards, BoardStats{
			Index:    i,
			Platform: b.profile.Name,
			Assigned: b.assigned,
			Stats:    drained[i],
		})
	}
	if f.scaler != nil {
		stats.ScaleEvents = append(stats.ScaleEvents, f.scaler.events...)
		stats.Windows = append(stats.Windows, f.scaler.log...)
	}
	stats.Aggregate = mergeStats(stats.Boards)
	return stats, nil
}

// buildViews refreshes the dynamic fields of the router's per-board
// snapshot for one arrival (the invariant fields are set once in Serve).
// With a chaos layer the health verdicts fold in, with one relaxation: when
// outlier ejection (Degraded) would leave no eligible board but some board
// is still up, the ejections are lifted for this pick — ejection is
// advisory, refusal is not, and shedding the whole fleet because every
// survivor is momentarily suspect would turn a partial fault into a total
// outage.
func (f *Fleet) buildViews(views []BoardView, now sim.Duration, active int) {
	anyEligible, anyUp := false, false
	for i, b := range f.boards {
		v := &views[i]
		v.Active = i < active
		v.Outstanding = b.svc.Outstanding()
		v.Queued = b.svc.Queued()
		if f.health != nil {
			v.Down = f.health.down[i]
			v.Degraded = f.health.degraded(i, now, v.Outstanding)
		}
		if eligible(*v) {
			anyEligible = true
		}
		if v.Active && v.HasRP && !v.Down {
			anyUp = true
		}
	}
	if f.health != nil && !anyEligible && anyUp {
		for i := range views {
			views[i].Degraded = false
		}
	}
}
