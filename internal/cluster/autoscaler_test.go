package cluster

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func validScaler() AutoscalerConfig {
	return AutoscalerConfig{
		Window: 25 * sim.Millisecond,
		Min:    1, Max: 4,
		ShedHi: 0.01, P99HiUS: 20000,
		ShedLo: 0, P99LoUS: 2000,
	}
}

// TestAutoscalerValidateThresholdOrdering pins the satellite fix: inverted
// shed or p99 thresholds (a window that would grow and shrink at once)
// are rejected instead of silently thrashing.
func TestAutoscalerValidateThresholdOrdering(t *testing.T) {
	cfg := validScaler()
	if err := cfg.Validate(4); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}

	shed := validScaler()
	shed.ShedLo, shed.ShedHi = 0.5, 0.01
	err := shed.Validate(4)
	if err == nil {
		t.Error("ShedLo > ShedHi accepted")
	} else if !strings.Contains(err.Error(), "shed thresholds inverted") {
		t.Errorf("shed-ordering error should say so: %v", err)
	}

	p99 := validScaler()
	p99.P99LoUS, p99.P99HiUS = 30000, 20000
	err = p99.Validate(4)
	if err == nil {
		t.Error("P99LoUS > P99HiUS accepted")
	} else if !strings.Contains(err.Error(), "p99 thresholds inverted") {
		t.Errorf("p99-ordering error should say so: %v", err)
	}

	// The historical relaxed configs stay valid: a negative ShedLo (never
	// shrink on shed) and a zero P99LoUS are below their Hi counterparts.
	relaxed := validScaler()
	relaxed.ShedLo, relaxed.P99LoUS = -1, 0
	if err := relaxed.Validate(4); err != nil {
		t.Errorf("relaxed thresholds rejected: %v", err)
	}
}

func TestAutoscalerValidatePolicy(t *testing.T) {
	cfg := validScaler()
	cfg.Policy = ScalerPredictive
	err := cfg.Validate(4)
	if err == nil {
		t.Error("predictive policy without BoardRatePerSec accepted")
	} else if !strings.Contains(err.Error(), "BoardRatePerSec") {
		t.Errorf("error should name the missing field: %v", err)
	}
	cfg.BoardRatePerSec = 400
	if err := cfg.Validate(4); err != nil {
		t.Errorf("well-formed predictive config rejected: %v", err)
	}
	cfg.Policy = "psychic"
	if err := cfg.Validate(4); err == nil || !strings.Contains(err.Error(), "psychic") {
		t.Errorf("unknown policy should be rejected by name, got %v", err)
	}
	for _, p := range []ScalerPolicy{"", ScalerReactive} {
		cfg := validScaler()
		cfg.Policy = p
		if err := cfg.Validate(4); err != nil {
			t.Errorf("policy %q rejected: %v", p, err)
		}
	}
}

// TestAutoscalerEmptyWindowsNoSpuriousShrink covers the empty/skipped
// window satellite: a stretch of windows with zero arrivals must not
// panic on the empty p99 sample and — with ShedLo and P99LoUS at 0 — must
// not emit shrink events either (the shrink rule wants p99 *below* the
// floor, and an empty sample's p99 is exactly 0).
func TestAutoscalerEmptyWindowsNoSpuriousShrink(t *testing.T) {
	cfg := validScaler()
	cfg.ShedLo, cfg.P99LoUS = 0, 0
	a := newAutoscaler(cfg)
	// Ten fully empty windows: no arrivals or completions ever observed.
	active := a.evaluate(10*cfg.Window, 2, 0)
	if active != 2 {
		t.Errorf("empty horizon moved active 2 → %d", active)
	}
	if len(a.events) != 0 {
		t.Errorf("empty horizon emitted %d events: %+v", len(a.events), a.events)
	}
	if len(a.log) != 10 {
		t.Errorf("decided %d windows, want 10", len(a.log))
	}
	for _, w := range a.log {
		if w.Offered != 0 || w.Shed != 0 || w.ObservedPerSec != 0 || w.Active != 2 {
			t.Fatalf("empty window logged as %+v", w)
		}
	}
}

// TestAutoscalerSkippedWindowsDecideOnce: evaluate jumping several windows
// ahead (a long arrival gap) decides each window exactly once — no window
// is decided twice on the next call, none is skipped.
func TestAutoscalerSkippedWindowsDecideOnce(t *testing.T) {
	cfg := validScaler()
	cfg.P99LoUS = 0 // keep the empty gap windows from shrinking
	a := newAutoscaler(cfg)
	// A shedding first window, then a dead gap of three windows.
	for i := 0; i < 10; i++ {
		a.observeArrival(sim.Duration(i)*sim.Millisecond, i%2 == 0)
	}
	active := a.evaluate(4*cfg.Window+sim.Millisecond, 1, 0)
	if a.evaled != 4 {
		t.Fatalf("decided %d windows, want 4", a.evaled)
	}
	// Window 0 sheds 50% → grow to 2; windows 1–3 are empty and must not
	// grow again (their shed fraction is 0).
	if active != 2 {
		t.Errorf("active = %d, want 2 (one grow from the shedding window)", active)
	}
	if len(a.events) != 1 {
		t.Fatalf("events = %+v, want exactly one grow", a.events)
	}
	// Re-evaluating at the same instant decides nothing further.
	again := a.evaluate(4*cfg.Window+sim.Millisecond, active, 0)
	if again != active || a.evaled != 4 || len(a.events) != 1 {
		t.Errorf("re-evaluate re-decided: active %d, evaled %d, events %d",
			again, a.evaled, len(a.events))
	}
	// The next window boundary decides exactly one more.
	a.evaluate(5*cfg.Window, active, 0)
	if a.evaled != 5 {
		t.Errorf("evaled = %d after one more boundary, want 5", a.evaled)
	}
}

// TestAutoscalerPredictiveForecastTracksTrend pins the predictive policy's
// core behaviour: under a rising rate the Holt forecast extrapolates the
// trend and retargets several boards in one decision — the pre-provisioning
// a reactive one-step policy cannot do — and the events record forecast vs
// observed.
func TestAutoscalerPredictiveForecastTracksTrend(t *testing.T) {
	cfg := validScaler()
	cfg.Policy = ScalerPredictive
	cfg.BoardRatePerSec = 400
	a := newAutoscaler(cfg)
	// Two quiet windows at 200 req/s, then a flash to 1600 req/s: 5/5/40/40
	// arrivals per 25 ms window. The jump puts a large step into the Holt
	// trend, so the first spike window already retargets several boards at
	// once, and by the second the forecast overshoots the observation.
	counts := []int{5, 5, 40, 40}
	for w, n := range counts {
		for i := 0; i < n; i++ {
			at := sim.Duration(w)*cfg.Window + sim.Duration(i)*sim.Microsecond
			a.observeArrival(at, false)
		}
	}
	active := a.evaluate(sim.Duration(len(counts))*cfg.Window, 1, 0)
	if active != cfg.Max {
		t.Errorf("sustained 1600 req/s should clamp at Max=%d, active = %d", cfg.Max, active)
	}
	if len(a.events) == 0 {
		t.Fatal("no scale events under a 4× rate ramp")
	}
	multi := false
	for _, ev := range a.events {
		if ev.ForecastPerSec <= 0 || ev.ObservedPerSec <= 0 {
			t.Errorf("predictive event missing forecast/observed: %+v", ev)
		}
		if ev.To-ev.From > 1 {
			multi = true
		}
		if !strings.Contains(ev.Reason, "forecast") {
			t.Errorf("predictive reason should name the forecast: %q", ev.Reason)
		}
	}
	if !multi {
		t.Errorf("no multi-board retarget in %+v", a.events)
	}
	// The step's trend carries the final forecast past the observation.
	last := a.log[len(a.log)-1]
	if last.ForecastPerSec <= last.ObservedPerSec {
		t.Errorf("post-step trend: forecast %.0f should exceed observed %.0f",
			last.ForecastPerSec, last.ObservedPerSec)
	}
}

// TestAutoscalerPredictiveShrinksAfterPeak: once the rate falls back, the
// forecast follows it down and the policy releases boards (clamped at Min).
func TestAutoscalerPredictiveShrinksAfterPeak(t *testing.T) {
	cfg := validScaler()
	cfg.Policy = ScalerPredictive
	cfg.BoardRatePerSec = 400
	a := newAutoscaler(cfg)
	counts := []int{40, 40, 10, 5, 5, 5, 5, 5}
	for w, n := range counts {
		for i := 0; i < n; i++ {
			a.observeArrival(sim.Duration(w)*cfg.Window+sim.Duration(i)*sim.Microsecond, false)
		}
	}
	active := a.evaluate(sim.Duration(len(counts))*cfg.Window, 1, 0)
	if active != cfg.Min {
		t.Errorf("after the peak drains the policy should settle at Min=%d, got %d", cfg.Min, active)
	}
	peak := 0
	for _, w := range a.log {
		if w.Active > peak {
			peak = w.Active
		}
	}
	if peak < 4 {
		t.Errorf("peak active %d, want the 1600 req/s windows to demand 4 boards", peak)
	}
}
