package cluster

import (
	"repro/internal/hll"
)

// BoardStats is one board's view of a fleet run.
type BoardStats struct {
	// Index and Platform identify the board.
	Index    int
	Platform string
	// Assigned counts the requests the router sent to this board.
	Assigned int
	// Stats is the board's own service-level accounting.
	Stats hll.ServiceStats
}

// FleetStats is the merged outcome of a fleet run: the per-board break-down
// in index order, the aggregate service statistics across the fleet, and
// the autoscaler's trajectory. Merging happens in board-index order and
// sample quantiles sort before ranking, so the merge is byte-stable
// regardless of board count or campaign schedule.
type FleetStats struct {
	// Boards holds the per-board statistics in index order.
	Boards []BoardStats
	// Aggregate merges every board: counters sum, latency samples pool,
	// Makespan is the slowest board's (the fleet finishes when its last
	// board drains), per-tenant accounting merges across boards.
	Aggregate hll.ServiceStats
	// ScaleEvents is the autoscaler's decision log (empty without one).
	ScaleEvents []ScaleEvent
	// Windows is the autoscaler's per-window trajectory — offered/shed
	// counts, observed and forecast rates, and the post-decision active
	// board count for every fully decided window (empty without a scaler).
	Windows []WindowStat
	// PeakActive and FinalActive record the active-set trajectory.
	PeakActive, FinalActive int

	// Arrivals counts the logical requests the fleet front-end received
	// (the trace length — hedged duplicates are not extra arrivals).
	Arrivals int
	// Unroutable counts arrivals shed at the fleet door because no board
	// was eligible (all down/degraded/inactive, or every failover target
	// refused the connection).
	Unroutable int
	// FailedOver counts connection-refused picks that were retried on
	// another board; Hedged counts duplicate offers issued for
	// deadline-bearing requests.
	FailedOver, Hedged int

	// KernelEvents sums the boards' fired simulation events over the whole
	// run (sim.Kernel.Fired) — the sim-work denominator the pdrbench
	// summary pairs with wall clock. Deterministic: a pure function of
	// (seed, trace, config), independent of Workers.
	KernelEvents uint64
}

// GoodputPerSec is the fleet's useful throughput: completions that met
// their deadline per second of fleet makespan. Requests without deadlines
// all count as useful.
func (fs *FleetStats) GoodputPerSec() float64 {
	sec := fs.Aggregate.Makespan.Seconds()
	if sec <= 0 {
		return 0
	}
	return float64(fs.Aggregate.Completed-fs.Aggregate.DeadlineMisses) / sec
}

// CacheHitRatio is the fleet-wide bitstream-cache hit ratio.
func (fs *FleetStats) CacheHitRatio() float64 { return fs.Aggregate.Cache.HitRatio() }

// Availability is the fraction of logical arrivals the fleet served: 1
// minus the arrivals lost at the door (Unroutable), rejected by admission
// control (Shed) or dropped by a crash mid-service (Lost). A run with no
// arrivals is vacuously available.
func (fs *FleetStats) Availability() float64 {
	if fs.Arrivals == 0 {
		return 1
	}
	failed := fs.Unroutable + fs.Aggregate.Shed + fs.Aggregate.Lost
	return 1 - float64(failed)/float64(fs.Arrivals)
}

// RoutingSpread is max/min assigned requests across boards that received
// any (1 = perfectly balanced). Boards with zero assignments are excluded
// so an autoscaled run that never activated a board does not divide by
// zero.
func (fs *FleetStats) RoutingSpread() float64 {
	lo, hi := 0, 0
	seen := false
	for _, b := range fs.Boards {
		if b.Assigned == 0 {
			continue
		}
		if !seen || b.Assigned < lo {
			lo = b.Assigned
		}
		if b.Assigned > hi {
			hi = b.Assigned
		}
		seen = true
	}
	if !seen || lo == 0 {
		return 0
	}
	return float64(hi) / float64(lo)
}

// mergeStats folds the per-board statistics, in index order, into one
// fleet-wide ServiceStats.
func mergeStats(boards []BoardStats) hll.ServiceStats {
	var agg hll.ServiceStats
	agg.Tenants = make(map[string]*hll.TenantStats)
	agg.Classes = make(map[string]*hll.TenantStats)
	for i := range boards {
		b := &boards[i].Stats
		agg.Requests += b.Requests
		agg.Reconfigs += b.Reconfigs
		agg.Hits += b.Hits
		agg.ReconfigTime += b.ReconfigTime
		agg.ComputeTime += b.ComputeTime
		if b.Makespan > agg.Makespan {
			agg.Makespan = b.Makespan
		}
		agg.Failures += b.Failures
		agg.QueueWaitUS.Merge(&b.QueueWaitUS)
		agg.ServiceUS.Merge(&b.ServiceUS)
		agg.SojournUS.Merge(&b.SojournUS)
		agg.Offered += b.Offered
		agg.Admitted += b.Admitted
		agg.Shed += b.Shed
		agg.Completed += b.Completed
		agg.DeadlineMisses += b.DeadlineMisses
		agg.Cache.Hits += b.Cache.Hits
		agg.Cache.Misses += b.Cache.Misses
		agg.Cache.Evictions += b.Cache.Evictions
		agg.Cache.ResidentBytes += b.Cache.ResidentBytes
		agg.Cache.PeakBytes += b.Cache.PeakBytes
		agg.StageTime += b.StageTime
		agg.Lost += b.Lost
		agg.CRCAlarms += b.CRCAlarms
		agg.Repairs += b.Repairs
		agg.RepairTime += b.RepairTime
		for _, name := range b.TenantNames() {
			t := b.Tenants[name]
			at, ok := agg.Tenants[name]
			if !ok {
				at = &hll.TenantStats{}
				agg.Tenants[name] = at
			}
			at.Offered += t.Offered
			at.Completed += t.Completed
			at.Shed += t.Shed
			at.Failed += t.Failed
			at.DeadlineMisses += t.DeadlineMisses
		}
		for _, name := range b.ClassNames() {
			c := b.Classes[name]
			ac, ok := agg.Classes[name]
			if !ok {
				ac = &hll.TenantStats{}
				agg.Classes[name] = ac
			}
			ac.Offered += c.Offered
			ac.Completed += c.Completed
			ac.Shed += c.Shed
			ac.Failed += c.Failed
			ac.DeadlineMisses += c.DeadlineMisses
		}
	}
	return agg
}
