package axi

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestLiteBusLatencies(t *testing.T) {
	k := sim.NewKernel()
	b := NewLiteBus(k, 120*sim.Nanosecond, 120*sim.Nanosecond)
	var wAt, rAt sim.Time
	b.Write(func() { wAt = k.Now() })
	k.Run()
	b.Read(func() { rAt = k.Now() })
	k.Run()
	if wAt != sim.Time(120*sim.Nanosecond) {
		t.Errorf("write at %v", wAt)
	}
	if rAt != sim.Time(240*sim.Nanosecond) {
		t.Errorf("read at %v", rAt)
	}
	w, r := b.Accesses()
	if w != 1 || r != 1 {
		t.Errorf("accesses = %d/%d", w, r)
	}
}

func TestLiteBusWriteN(t *testing.T) {
	k := sim.NewKernel()
	b := NewLiteBus(k, 120*sim.Nanosecond, 120*sim.Nanosecond)
	var at sim.Time
	b.WriteN(6, func() { at = k.Now() })
	k.Run()
	if at != sim.Time(720*sim.Nanosecond) {
		t.Errorf("6 writes completed at %v, want 720ns", at)
	}
	called := false
	b.WriteN(0, func() { called = true })
	k.Run()
	if !called {
		t.Error("WriteN(0) must still call back")
	}
}

func TestStreamFIFOReserveCommitRelease(t *testing.T) {
	f := NewStreamFIFO(512)
	if f.Capacity() != 512 || f.Free() != 512 {
		t.Fatal("bad initial state")
	}
	if !f.TryReserve(128) {
		t.Fatal("reserve failed")
	}
	if f.Free() != 384 {
		t.Errorf("Free = %d", f.Free())
	}
	f.Commit(128)
	if f.Occupied() != 128 {
		t.Errorf("Occupied = %d", f.Occupied())
	}
	f.Release(128)
	if f.Free() != 512 || f.Occupied() != 0 {
		t.Error("release did not restore state")
	}
}

func TestStreamFIFORejectsWhenFull(t *testing.T) {
	f := NewStreamFIFO(256)
	if !f.TryReserve(128) || !f.TryReserve(128) {
		t.Fatal("reserves should fit")
	}
	if f.TryReserve(128) {
		t.Error("third reserve should fail")
	}
}

func TestStreamFIFOWaitersWakeInOrder(t *testing.T) {
	f := NewStreamFIFO(256)
	f.TryReserve(128)
	f.TryReserve(128)
	f.Commit(128)
	f.Commit(128)
	var order []int
	f.WhenFree(128, func() { order = append(order, 1) })
	f.WhenFree(128, func() { order = append(order, 2) })
	if len(order) != 0 {
		t.Fatal("waiters ran early")
	}
	f.Release(128)
	if len(order) != 1 || order[0] != 1 {
		t.Fatalf("order after first release = %v", order)
	}
	f.Release(128)
	if len(order) != 2 || order[1] != 2 {
		t.Fatalf("order after second release = %v", order)
	}
}

func TestStreamFIFOWhenFreeImmediate(t *testing.T) {
	f := NewStreamFIFO(256)
	ran := false
	f.WhenFree(128, func() { ran = true })
	if !ran {
		t.Error("WhenFree with space must run synchronously")
	}
	if f.Free() != 128 {
		t.Error("space must be reserved for the callback")
	}
}

func TestStreamFIFOPanicsOnMisuse(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"oversize burst", func() { NewStreamFIFO(64).TryReserve(128) }},
		{"commit without reserve", func() { NewStreamFIFO(64).Commit(32) }},
		{"release underflow", func() { NewStreamFIFO(64).Release(32) }},
		{"zero capacity", func() { NewStreamFIFO(0) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			tc.fn()
		})
	}
}

func TestCDCDelayScalesInversely(t *testing.T) {
	d100 := CDCDelay(1.1, 100*sim.MHz)
	d200 := CDCDelay(1.1, 200*sim.MHz)
	if math.Abs(float64(d100)-2*float64(d200)) > 2 {
		t.Errorf("CDC delay not inverse in f: %v vs %v", d100, d200)
	}
	// 1.1 cycles at 100 MHz = 11 ns.
	if d100 != 11*sim.Nanosecond {
		t.Errorf("CDCDelay(100MHz) = %v, want 11ns", d100)
	}
}
