// Package axi models the AMBA AXI plumbing between the Zynq PS and PL that
// the paper's configuration path uses: an AXI4-Lite register port (DMA
// programming, status reads), and the clock-domain-crossing stream FIFO
// between the DMA's memory side and the over-clocked ICAP stream side.
package axi

import (
	"fmt"

	"repro/internal/sim"
)

// LiteBus models an AXI4-Lite register path through the PS general-purpose
// port: each access costs a fixed bus latency. The paper's C program uses it
// to program the DMA, read status registers and stop the timer.
type LiteBus struct {
	kernel *sim.Kernel
	// WriteLatency and ReadLatency are per-access costs.
	WriteLatency sim.Duration
	ReadLatency  sim.Duration

	writes uint64
	reads  uint64
}

// NewLiteBus creates a register bus with the given per-access latencies
// (the calibrated values for each board live in internal/platform — about
// 120 ns through the ZedBoard's GP port and interconnect).
func NewLiteBus(k *sim.Kernel, writeLatency, readLatency sim.Duration) *LiteBus {
	if writeLatency <= 0 || readLatency <= 0 {
		panic("axi: non-positive register-access latency")
	}
	return &LiteBus{kernel: k, WriteLatency: writeLatency, ReadLatency: readLatency}
}

// Write performs a register write, invoking fn when it completes.
func (b *LiteBus) Write(fn func()) {
	b.writes++
	b.kernel.Schedule(b.WriteLatency, fn)
}

// WriteN performs n back-to-back register writes.
func (b *LiteBus) WriteN(n int, fn func()) {
	if n <= 0 {
		b.kernel.Schedule(0, fn)
		return
	}
	b.writes += uint64(n)
	b.kernel.Schedule(sim.Duration(n)*b.WriteLatency, fn)
}

// Read performs a register read.
func (b *LiteBus) Read(fn func()) {
	b.reads++
	b.kernel.Schedule(b.ReadLatency, fn)
}

// Accesses returns the write and read counters.
func (b *LiteBus) Accesses() (writes, reads uint64) { return b.writes, b.reads }

// StreamFIFO is the CDC FIFO between the DMA (memory clock) and the ICAP
// (over-clocked domain). It tracks occupancy in bytes with a three-phase
// protocol that lets the DMA reserve space before the data physically
// arrives:
//
//	Reserve → (burst in flight) → Commit → (consumer drains) → Release
type StreamFIFO struct {
	capacity int
	reserved int // includes committed
	occupied int

	// waiters is a flat ring (slice plus head cursor) so the
	// reserve-stall/release cycle of steady-state streaming reuses its
	// backing array instead of reallocating per burst.
	waiters    []waiter
	waitersOff int
}

type waiter struct {
	bytes int
	fn    func()
}

// NewStreamFIFO creates a FIFO of the given byte capacity.
func NewStreamFIFO(capacity int) *StreamFIFO {
	if capacity <= 0 {
		panic("axi: non-positive FIFO capacity")
	}
	return &StreamFIFO{capacity: capacity}
}

// Capacity returns the FIFO size in bytes.
func (f *StreamFIFO) Capacity() int { return f.capacity }

// Free returns the unreserved space.
func (f *StreamFIFO) Free() int { return f.capacity - f.reserved }

// Occupied returns the bytes physically present.
func (f *StreamFIFO) Occupied() int { return f.occupied }

// TryReserve claims space for an incoming burst; it returns false when the
// FIFO cannot accept it yet.
func (f *StreamFIFO) TryReserve(bytes int) bool {
	if bytes > f.capacity {
		panic(fmt.Sprintf("axi: burst %dB exceeds FIFO capacity %dB", bytes, f.capacity))
	}
	if f.capacity-f.reserved < bytes {
		return false
	}
	f.reserved += bytes
	return true
}

// WhenFree registers fn to run as soon as bytes of space can be reserved;
// the space is reserved on the caller's behalf before fn runs.
func (f *StreamFIFO) WhenFree(bytes int, fn func()) {
	if f.TryReserve(bytes) {
		fn()
		return
	}
	f.waiters = append(f.waiters, waiter{bytes: bytes, fn: fn})
}

// Commit marks reserved bytes as physically present (the burst crossed the
// CDC boundary).
func (f *StreamFIFO) Commit(bytes int) {
	f.occupied += bytes
	if f.occupied > f.reserved {
		panic("axi: FIFO commit exceeds reservation")
	}
}

// Release frees bytes after the consumer drained them, waking waiters in
// FIFO order.
func (f *StreamFIFO) Release(bytes int) {
	f.occupied -= bytes
	f.reserved -= bytes
	if f.occupied < 0 || f.reserved < 0 {
		panic("axi: FIFO release underflow")
	}
	for f.waitersOff < len(f.waiters) {
		w := f.waiters[f.waitersOff]
		if f.capacity-f.reserved < w.bytes {
			break
		}
		f.reserved += w.bytes
		f.waiters[f.waitersOff] = waiter{}
		f.waitersOff++
		if f.waitersOff == len(f.waiters) {
			f.waiters = f.waiters[:0]
			f.waitersOff = 0
		}
		w.fn()
	}
}

// CDCDelay returns the clock-domain-crossing handshake duration for a
// synchroniser costing cycles cycles of the destination domain at frequency
// f. The per-board calibrated cycle count lives in internal/platform; the
// ZedBoard's fractional 1.1 (the average of a 1–2-cycle synchroniser) is
// what bends Fig. 5's plateau slightly upward between 240 and 280 MHz
// (DESIGN.md §2).
func CDCDelay(cycles float64, f sim.Hz) sim.Duration {
	return sim.Duration(cycles * 1e12 / float64(f))
}
