package zynq

import (
	"math"
	"testing"

	"repro/internal/dma"
	"repro/internal/sim"
	"repro/internal/timing"
)

func newTestPlatform(t *testing.T) *Platform {
	t.Helper()
	p, err := NewPlatform(Options{Seed: 1, FastThermal: true})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPlatformWiring(t *testing.T) {
	p := newTestPlatform(t)
	if p.Device == nil || p.Memory == nil || p.DMA == nil || p.ICAP == nil {
		t.Fatal("missing components")
	}
	if len(p.RPs) != 4 {
		t.Errorf("RPs = %d, want 4", len(p.RPs))
	}
	if len(p.Monitors) != 4 {
		t.Errorf("Monitors = %d, want 4", len(p.Monitors))
	}
	if got := p.OverclockDomain.Freq(); got != 100*sim.MHz {
		t.Errorf("initial overclock = %v, want 100MHz", got)
	}
	if len(p.ClockManager.Names()) != 5 {
		t.Errorf("clock manager outputs = %v", p.ClockManager.Names())
	}
}

func TestConfigureStaticTakesTimeAndActivatesPL(t *testing.T) {
	p := newTestPlatform(t)
	if p.PLConfigured() {
		t.Fatal("PL must start unconfigured")
	}
	before := p.Kernel.Now()
	p.ConfigureStatic()
	elapsed := p.Kernel.Now().Sub(before)
	// ~3.27 MB at 145 MB/s ≈ 22.6 ms.
	if elapsed < 20*sim.Millisecond || elapsed > 25*sim.Millisecond {
		t.Errorf("static config took %v", elapsed)
	}
	if !p.PLConfigured() {
		t.Error("PL not configured")
	}
}

func TestPowerCouplesToPLState(t *testing.T) {
	p := newTestPlatform(t)
	idle := p.Power.Board()
	if math.Abs(idle-2.2) > 1e-9 {
		t.Errorf("idle board power = %v, want 2.2 (P0)", idle)
	}
	p.ConfigureStatic()
	active := p.Power.Board()
	if active <= idle+0.9 {
		t.Errorf("active board power = %v, want well above idle", active)
	}
}

func TestThermalCouplesToPower(t *testing.T) {
	p := newTestPlatform(t)
	p.ConfigureStatic()
	if _, err := p.SetOverclock(200 * sim.MHz); err != nil {
		t.Fatal(err)
	}
	p.Kernel.RunFor(sim.Second)
	// Active steady state: 25 + (1.53 + P_PDR(200,T))·5.3 ≈ 40 °C — the
	// paper's measurement baseline.
	got := p.Die.TempC()
	if got < 38 || got < 0 || got > 42 {
		t.Errorf("active die temp = %v, want ≈40", got)
	}
}

func TestSetOverclockBlocksUntilLock(t *testing.T) {
	p := newTestPlatform(t)
	before := p.Kernel.Now()
	actual, err := p.SetOverclock(280 * sim.MHz)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(actual.MHzValue()-280) > 1.4 {
		t.Errorf("achieved %v", actual)
	}
	if p.OverclockDomain.Freq() != actual {
		t.Error("domain not updated")
	}
	if p.Kernel.Now().Sub(before) < 100*sim.Microsecond {
		t.Error("lock time not paid")
	}
}

func TestSetOverclockRejectsSilly(t *testing.T) {
	p := newTestPlatform(t)
	if _, err := p.SetOverclock(9 * sim.GHz); err == nil {
		t.Error("expected error")
	}
}

func TestClassifyTracksFrequencyAndTemperature(t *testing.T) {
	p := newTestPlatform(t)
	if got := p.Classify(); got != timing.OK {
		t.Errorf("nominal classify = %v", got)
	}
	if _, err := p.SetOverclock(310 * sim.MHz); err != nil {
		t.Fatal(err)
	}
	if got := p.Classify(); got != timing.Hang {
		t.Errorf("310 MHz classify = %v, want hang", got)
	}
	p.Die.SetTempC(100)
	if got := p.Classify(); got != timing.Corrupt {
		t.Errorf("310 MHz @ 100°C classify = %v, want corrupt", got)
	}
}

func TestRPLookup(t *testing.T) {
	p := newTestPlatform(t)
	rp, err := p.RP("RP3")
	if err != nil || rp.Name != "RP3" {
		t.Errorf("RP3 lookup: %v %v", rp, err)
	}
	if _, err := p.RP("RP5"); err == nil {
		t.Error("unknown RP should fail")
	}
}

func TestPSTimer(t *testing.T) {
	p := newTestPlatform(t)
	p.PS.TimerStart()
	p.Kernel.RunFor(123 * sim.Microsecond)
	if got := p.PS.TimerStop(); got != 123*sim.Microsecond {
		t.Errorf("timer = %v", got)
	}
	if got := p.PS.TimerStop(); got != 0 {
		t.Errorf("stopped timer reads %v, want 0", got)
	}
}

func TestPSInterruptDispatchLatency(t *testing.T) {
	p := newTestPlatform(t)
	var at sim.Time
	p.PS.Handle(IRQDMADone, func() { at = p.Kernel.Now() })
	start := p.Kernel.Now()
	p.PS.Raise(IRQDMADone)
	p.Kernel.RunFor(10 * sim.Microsecond)
	want := p.PS.DispatchLatency + p.PS.HandlerOverhead
	if at.Sub(start) != want {
		t.Errorf("handler at +%v, want +%v", at.Sub(start), want)
	}
	// Unhandled interrupts are dropped silently.
	p.PS.Raise(IRQRPStatus)
	p.Kernel.RunFor(10 * sim.Microsecond)
}

func TestDMAIRQGateFollowsTiming(t *testing.T) {
	p := newTestPlatform(t)
	p.ConfigureStatic()
	if _, err := p.SetOverclock(310 * sim.MHz); err != nil {
		t.Fatal(err)
	}
	p.ICAP.Reset()
	done := false
	if err := p.DMA.Transfer(make([]uint32, 320), p.ICAP, func(dma.Result) { done = true }); err != nil {
		t.Fatal(err)
	}
	p.Kernel.RunFor(100 * sim.Microsecond)
	if done {
		t.Error("DMA IRQ delivered at 310 MHz (gate should suppress it)")
	}
	if !p.DMA.Completed() {
		t.Error("transfer should complete silently")
	}
}
