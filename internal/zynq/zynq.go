// Package zynq assembles the Zynq-7000 SoC model: the Processing System
// (CPU, interrupt dispatch, global timer), the Programmable Logic with the
// paper's configuration-path design (Clock Wizard, DMA, ICAP, CRC read-back
// monitor), the HP-port/DDR path, PCAP static configuration, and the
// physical coupling between power, temperature and timing.
package zynq

import (
	"fmt"

	"repro/internal/axi"
	"repro/internal/clock"
	"repro/internal/crcmon"
	"repro/internal/dma"
	"repro/internal/dram"
	"repro/internal/fabric"
	"repro/internal/icap"
	"repro/internal/platform"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/thermal"
	"repro/internal/timing"
)

// IRQ identifies an interrupt line into the PS GIC.
type IRQ int

// Interrupt lines used by the design (Fig. 2 of the paper).
const (
	IRQDMADone IRQ = iota + 61 // PL-to-PS shared peripheral interrupts
	IRQCRCResult
	IRQRPStatus
)

// PS models the processing system's pieces the experiments touch.
type PS struct {
	kernel *sim.Kernel

	// DispatchLatency is GIC + context cost from line assertion to handler
	// entry; HandlerOverhead is the C handler's own work (status reads,
	// timer stop). Both are part of the calibrated fixed per-transfer cost.
	DispatchLatency sim.Duration
	HandlerOverhead sim.Duration

	handlers map[IRQ]func()
	timerOn  bool
	timerT0  sim.Time
}

// NewPS creates the processing system with the profile's calibrated
// latencies.
func NewPS(k *sim.Kernel, params platform.PSParams) *PS {
	return &PS{
		kernel:          k,
		DispatchLatency: params.DispatchLatency,
		HandlerOverhead: params.HandlerOverhead,
		handlers:        make(map[IRQ]func()),
	}
}

// Handle installs an interrupt handler.
func (ps *PS) Handle(irq IRQ, fn func()) { ps.handlers[irq] = fn }

// Raise asserts an interrupt line; the handler runs after dispatch and its
// own overhead (the handler-visible time is when its work finishes, which is
// when the C program reads the timer).
func (ps *PS) Raise(irq IRQ) {
	fn, ok := ps.handlers[irq]
	if !ok {
		return // unhandled interrupts are dropped, as with a masked GIC line
	}
	ps.kernel.Schedule(ps.DispatchLatency+ps.HandlerOverhead, fn)
}

// TimerStart arms the C-timer (XTime_GetTime-style measurement).
func (ps *PS) TimerStart() {
	ps.timerOn = true
	ps.timerT0 = ps.kernel.Now()
}

// TimerStop reads the timer; it returns the elapsed duration since
// TimerStart.
func (ps *PS) TimerStop() sim.Duration {
	if !ps.timerOn {
		return 0
	}
	ps.timerOn = false
	return ps.kernel.Now().Sub(ps.timerT0)
}

// Platform is the assembled SoC + configuration-path design.
type Platform struct {
	Kernel *sim.Kernel
	PS     *PS

	// Profile is the calibration this platform was built from.
	Profile *platform.Profile

	Device *fabric.Device
	Memory *fabric.Memory
	RPs    []fabric.Region

	// OverclockDomain clocks the DMA/ICAP/CRC blocks (the paper's
	// "OVERCLOCK" net); Wizard re-programs it.
	OverclockDomain *clock.Domain
	Wizard          *clock.Wizard
	// ClockManager provides the per-RP ASP clocks (CLK 1–5 in Fig. 1).
	ClockManager *clock.Manager

	Timing *timing.Model
	Die    *thermal.Die
	Gun    *thermal.HeatGun
	Power  *power.Model

	DDR      *dram.Controller
	LiteBus  *axi.LiteBus
	DMA      *dma.Engine
	ICAP     *icap.Port
	Monitors map[string]*crcmon.Monitor

	plConfigured bool
}

// Options tune platform construction.
type Options struct {
	// Seed drives all stochastic models (corruption patterns).
	Seed uint64
	// Profile selects the calibrated platform (nil ⇒ the registry default,
	// the paper's ZedBoard).
	Profile *platform.Profile
	// AmbientC is the room temperature (0 ⇒ the profile's boot ambient).
	AmbientC float64
	// NominalMHz is the initial over-clock-domain frequency (0 ⇒ the
	// profile's nominal).
	NominalMHz float64
	// FastThermal shrinks the thermal time constant for tests that do not
	// care about heating transients. Profiles that force the physical
	// constant (slow-thermal presets) override it.
	FastThermal bool
	// DRAMParams overrides the memory-path parameters (ablations); nil
	// keeps the profile's calibration.
	DRAMParams *dram.Params
}

// NewPlatform builds the full SoC with the paper's PL design loaded
// (statically, via PCAP) and all physical couplings wired.
func NewPlatform(opts Options) (*Platform, error) {
	prof := opts.Profile
	if prof == nil {
		prof = platform.Default()
	}
	if opts.AmbientC == 0 {
		opts.AmbientC = prof.BootAmbientC
	}
	if opts.NominalMHz == 0 {
		opts.NominalMHz = prof.Clock.NominalMHz
	}
	k := sim.NewKernel()
	dev := prof.NewDevice()
	p := &Platform{
		Kernel:   k,
		PS:       NewPS(k, prof.PS),
		Profile:  prof,
		Device:   dev,
		Memory:   fabric.NewMemory(dev),
		RPs:      prof.RPs(dev),
		Timing:   prof.TimingModel(),
		Monitors: make(map[string]*crcmon.Monitor),
	}

	p.OverclockDomain = clock.NewDomain("overclock", sim.Hz(opts.NominalMHz*1e6))
	wiz, err := clock.NewWizard(k, clock.WizardConfig{
		Fin:      prof.Clock.RefClock,
		Limits:   prof.Clock.Limits,
		LockTime: prof.Clock.LockTime,
	}, p.OverclockDomain)
	if err != nil {
		return nil, fmt.Errorf("zynq: %w", err)
	}
	p.Wizard = wiz
	p.ClockManager = clock.NewManager(prof.Clock.RefClock, "clk1", "clk2", "clk3", "clk4", "clk5")

	// Power model driven by live frequency/temperature.
	p.Power = power.NewModel(prof.Power)
	p.Power.FreqMHz = func() float64 { return p.OverclockDomain.Freq().MHzValue() }
	p.Power.PLActive = func() bool { return p.plConfigured }

	// Thermal model heated by the chip, measured by the XADC.
	tcfg := thermal.Config{
		AmbientC: opts.AmbientC,
		RThermal: prof.Thermal.RThermalCPerW,
		Tau:      prof.Thermal.Tau,
		Step:     prof.Thermal.Step,
	}
	if opts.FastThermal && !prof.SlowThermal {
		tcfg.Tau = 50 * sim.Millisecond
		tcfg.Step = sim.Millisecond
	}
	tcfg.Power = func() float64 { return p.Power.ChipHeat() }
	p.Die = thermal.NewDie(k, tcfg)
	p.Gun = thermal.NewHeatGun(p.Die)
	p.Power.TempC = func() float64 { return p.Die.TempC() }

	// Memory path and configuration path.
	dparams := prof.DRAM
	if opts.DRAMParams != nil {
		dparams = *opts.DRAMParams
	}
	p.DDR = dram.NewController(k, dparams)
	p.LiteBus = axi.NewLiteBus(k, prof.AXI.LiteWriteLatency, prof.AXI.LiteReadLatency)
	p.ICAP = icap.New(icap.Config{
		Kernel: k,
		Domain: p.OverclockDomain,
		Memory: p.Memory,
		Timing: p.Timing,
		TempC:  func() float64 { return p.Die.TempC() },
		Seed:   opts.Seed,
	})
	p.DMA = dma.New(dma.Config{
		Kernel:        k,
		Bus:           p.LiteBus,
		DRAM:          p.DDR,
		Domain:        p.OverclockDomain,
		CDCSyncCycles: prof.AXI.CDCSyncCycles,
		IRQGate: func() bool {
			return p.Timing.ClassifyNominal(p.OverclockDomain.Freq(), p.Die.TempC()) == timing.OK
		},
	})
	for _, rp := range p.RPs {
		p.Monitors[rp.Name] = crcmon.New(crcmon.Config{
			Kernel: k,
			Port:   p.ICAP,
			Timing: p.Timing,
			TempC:  func() float64 { return p.Die.TempC() },
			Region: rp,
		})
	}
	return p, nil
}

// ConfigureStatic models the PCAP loading the static design at boot
// (the full bitstream cannot go through the ICAP — the ICAP is part of it).
// It advances simulated time by the PCAP transfer and marks the PL live.
func (p *Platform) ConfigureStatic() {
	// PCAP moves the full image at its effective rate (the ZedBoard's
	// ~3.3 MB at ~145 MB/s ≈ 22.6 ms).
	full := float64(p.Device.ConfigBytes())
	p.Kernel.RunFor(sim.FromSeconds(full / p.Profile.PS.PCAPBytesPerSec))
	p.plConfigured = true
}

// PLConfigured reports whether the static design is live.
func (p *Platform) PLConfigured() bool { return p.plConfigured }

// RP returns the named reconfigurable partition.
func (p *Platform) RP(name string) (fabric.Region, error) {
	for _, rp := range p.RPs {
		if rp.Name == name {
			return rp, nil
		}
	}
	return fabric.Region{}, fmt.Errorf("zynq: unknown RP %q", name)
}

// SetOverclock re-programs the Clock Wizard and blocks simulated time until
// the MMCM re-locks. It returns the exact achieved frequency.
func (p *Platform) SetOverclock(target sim.Hz) (sim.Hz, error) {
	locked := false
	actual, err := p.Wizard.SetRate(target, func(sim.Hz) { locked = true })
	if err != nil {
		return 0, err
	}
	for !locked {
		if !p.Kernel.Step() {
			return 0, fmt.Errorf("zynq: wizard never locked")
		}
	}
	return actual, nil
}

// Classify returns the timing outcome at the current operating point.
func (p *Platform) Classify() timing.Outcome {
	return p.Timing.ClassifyNominal(p.OverclockDomain.Freq(), p.Die.TempC())
}
