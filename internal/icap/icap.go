// Package icap models the Internal Configuration Access Port and the ICAP
// controller of the paper's reference [9]: a 32-bit-per-cycle consumer of
// configuration words that parses the packet stream, writes configuration
// frames, maintains the running config CRC, and raises a completion
// interrupt at DESYNC.
//
// The port lives in the over-clocked domain. Its failure behaviour under
// over-clocking comes from the timing model:
//
//   - data-path violation ⇒ incoming words suffer bit flips (the CRC
//     read-back later reports an invalid bitstream);
//   - control-path violation ⇒ the completion interrupt is never asserted
//     (the paper's "N/A no interrupt" rows), although data lands intact.
package icap

import (
	"fmt"

	"repro/internal/bitstream"
	"repro/internal/clock"
	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/timing"
)

// Status is the ICAP status view the PS can poll (the STAT register of the
// modelled configuration logic).
type Status struct {
	// Done is latched when a DESYNC retires and the control path met
	// timing (the completion interrupt fired).
	Done bool
	// CRCError is latched when a CRC-register write mismatches the running
	// CRC.
	CRCError bool
	// SyncError is latched when the parser hits a malformed packet.
	SyncError bool
	// IDCODEError is latched when the bitstream targets another device.
	IDCODEError bool
	// FramesWritten counts configuration frames written this transfer.
	FramesWritten int
}

// parserState enumerates the packet-parser states.
type parserState int

const (
	stateUnsynced parserState = iota
	stateIdle
	stateType1Data
	stateAwaitType2
	stateType2Data
)

// Port is the ICAP primitive plus controller.
type Port struct {
	kernel *sim.Kernel
	domain *clock.Domain
	mem    *fabric.Memory
	tmodel *timing.Model
	tempC  func() float64
	vdd    func() float64
	rng    *sim.RNG

	// OnDone fires (once per transfer) when DESYNC retires with the
	// control path meeting timing. The argument is the latched status.
	OnDone func(Status)

	busyUntil sim.Time

	// freq/period cache the domain clock, refreshed through the domain's
	// OnChange hook: each burst still samples the frequency in effect at its
	// scheduling point, but the hot path pays a field read instead of a
	// division per word-time computation.
	freq   sim.Hz
	period sim.Duration

	// Corruption-rate memo keyed on the (freq, temp, vdd) operating point;
	// the thermal model drifts slowly relative to the burst cadence, so in
	// steady state this skips the derating math — and at zero rate the
	// corruption-copy branch — for every burst of a streaming span.
	rateFreq  sim.Hz
	rateTemp  float64
	rateVdd   float64
	rateKnown bool
	rate      float64

	// Bursts queued for drain, in completion-time order. Reserve serialises
	// the drain times, so a flat ring (slice + head cursor) replaces a
	// per-burst closure; drainFn is bound once.
	pending     []pendingBurst
	pendingHead int
	drainFn     func()

	// Parser state.
	state     parserState
	curReg    bitstream.Reg
	remaining int
	crc       bitstream.ConfigCRC
	far       fabric.FrameAddr
	farValid  bool
	wcfg      bool
	frameBuf  []uint32
	status    Status
	wordsIn   uint64
}

// pendingBurst is one Feed awaiting its drain time.
type pendingBurst struct {
	words []uint32
	done  func()
}

// Config bundles the Port dependencies.
type Config struct {
	Kernel *sim.Kernel
	Domain *clock.Domain
	Memory *fabric.Memory
	Timing *timing.Model
	// TempC supplies the die temperature for failure classification.
	TempC func() float64
	// Vdd supplies the core voltage (nil ⇒ nominal).
	Vdd func() float64
	// Seed drives the deterministic corruption pattern.
	Seed uint64
}

// New creates an ICAP port.
func New(cfg Config) *Port {
	if cfg.Kernel == nil || cfg.Domain == nil || cfg.Memory == nil || cfg.Timing == nil {
		panic("icap: missing dependency")
	}
	tempC := cfg.TempC
	if tempC == nil {
		tempC = func() float64 { return 40 }
	}
	vdd := cfg.Vdd
	if vdd == nil {
		nom := cfg.Timing.VNom
		vdd = func() float64 { return nom }
	}
	p := &Port{
		kernel:   cfg.Kernel,
		domain:   cfg.Domain,
		mem:      cfg.Memory,
		tmodel:   cfg.Timing,
		tempC:    tempC,
		vdd:      vdd,
		rng:      sim.NewRNG(cfg.Seed ^ 0x1CAB),
		frameBuf: make([]uint32, 0, fabric.FrameWords),
	}
	p.freq = cfg.Domain.Freq()
	p.period = cfg.Domain.Period()
	cfg.Domain.OnChange(func(f sim.Hz) {
		p.freq = f
		p.period = f.Period()
	})
	p.drainFn = p.drainNext
	return p
}

// Domain returns the port's clock domain (the over-clocked one).
func (p *Port) Domain() *clock.Domain { return p.domain }

// Memory returns the configuration memory behind the port.
func (p *Port) Memory() *fabric.Memory { return p.mem }

// Status returns the latched status.
func (p *Port) Status() Status { return p.status }

// WordsIn returns the total words consumed since Reset.
func (p *Port) WordsIn() uint64 { return p.wordsIn }

// Reset clears parser and status state for a new transfer (the controller
// does this before programming the DMA).
func (p *Port) Reset() {
	p.state = stateUnsynced
	p.remaining = 0
	p.crc.Reset()
	p.farValid = false
	p.wcfg = false
	p.frameBuf = p.frameBuf[:0]
	p.status = Status{}
	p.wordsIn = 0
}

// BusyUntil returns the time the port's word pipe is occupied through; the
// CRC read-back monitor uses it to stay out of the way of active transfers.
func (p *Port) BusyUntil() sim.Time { return p.busyUntil }

// Reserve blocks out the port for n word-times starting no earlier than now
// and returns the completion time. Used by Feed and by the read-back path,
// which share the single physical ICAP.
func (p *Port) Reserve(n int) sim.Time {
	start := p.kernel.Now()
	if p.busyUntil > start {
		start = p.busyUntil
	}
	p.busyUntil = start.Add(sim.Cycles(int64(n), p.freq))
	return p.busyUntil
}

// Feed delivers a burst of configuration words to the port. The port
// consumes one word per cycle of its domain clock; done (optional) fires
// when the burst has been clocked in, which is the moment the upstream FIFO
// slot frees. Parsing effects (frame writes, CRC, interrupts) are applied at
// the same moment.
func (p *Port) Feed(words []uint32, done func()) {
	if len(words) == 0 {
		if done != nil {
			done()
		}
		return
	}
	// Timing-violation corruption happens at the clock-domain boundary:
	// words are damaged as they are latched.
	rate := p.corruptionRate()
	if rate > 0 {
		corrupted := make([]uint32, len(words))
		copy(corrupted, words)
		for i := range corrupted {
			if p.rng.Bool(rate) {
				corrupted[i] ^= 1 << uint(p.rng.Intn(32))
			}
		}
		words = corrupted
	}
	end := p.Reserve(len(words))
	// Reserve hands out monotonically non-decreasing drain times and the
	// kernel fires equal-time events FIFO, so the ring pops in queue order.
	p.pending = append(p.pending, pendingBurst{words: words, done: done})
	p.kernel.At(end, p.drainFn)
}

// drainNext retires the oldest pending burst: parsing effects are applied
// and the upstream FIFO slot frees.
func (p *Port) drainNext() {
	b := p.pending[p.pendingHead]
	p.pending[p.pendingHead] = pendingBurst{}
	p.pendingHead++
	if p.pendingHead == len(p.pending) {
		p.pending = p.pending[:0]
		p.pendingHead = 0
	}
	p.consume(b.words)
	if b.done != nil {
		b.done()
	}
}

// corruptionRate memoises timing.Model.CorruptionRate on the operating
// point, which only changes when the clock is re-programmed or the die
// temperature drifts.
func (p *Port) corruptionRate() float64 {
	f, t, v := p.freq, p.tempC(), p.vdd()
	if !p.rateKnown || f != p.rateFreq || t != p.rateTemp || v != p.rateVdd {
		p.rate = p.tmodel.CorruptionRate(f, t, v)
		p.rateFreq, p.rateTemp, p.rateVdd = f, t, v
		p.rateKnown = true
	}
	return p.rate
}

// consume runs the packet parser over a burst.
func (p *Port) consume(words []uint32) {
	p.wordsIn += uint64(len(words))
	for i := 0; i < len(words); i++ {
		if p.status.IDCODEError {
			// A device-mismatch abort ignores the rest of the stream until
			// the controller resets the port.
			return
		}
		w := words[i]
		switch p.state {
		case stateUnsynced:
			if w == bitstream.SyncWord {
				p.state = stateIdle
			}
			// Dummy/bus-width words are ignored pre-sync.
		case stateIdle:
			p.parseHeader(w)
		case stateType1Data, stateType2Data:
			// Fast path: bulk-consume FDRI payload within this burst.
			if p.curReg == bitstream.RegFDRI {
				n := len(words) - i
				if n > p.remaining {
					n = p.remaining
				}
				p.dataFDRI(words[i : i+n])
				p.remaining -= n
				i += n - 1
			} else {
				p.dataWord(w)
				p.remaining--
			}
			if p.remaining == 0 && (p.state == stateType1Data || p.state == stateType2Data) {
				p.state = stateIdle
			}
		case stateAwaitType2:
			h, ok := bitstream.Decode(w)
			if !ok || h.Type != 2 {
				p.status.SyncError = true
				p.state = stateUnsynced
				continue
			}
			if h.Words == 0 {
				p.state = stateIdle
				continue
			}
			p.remaining = h.Words
			p.state = stateType2Data
		}
	}
}

func (p *Port) parseHeader(w uint32) {
	if w == bitstream.DummyWord || w == bitstream.SyncWord {
		return // tolerated between packets
	}
	h, ok := bitstream.Decode(w)
	if !ok {
		p.status.SyncError = true
		p.state = stateUnsynced
		return
	}
	switch {
	case h.Op == bitstream.OpNOP:
		return
	case h.Type == 1 && h.Op == bitstream.OpWrite:
		p.curReg = h.Reg
		if h.Words == 0 {
			p.state = stateAwaitType2
			return
		}
		p.remaining = h.Words
		p.state = stateType1Data
	case h.Type == 1 && h.Op == bitstream.OpRead:
		// Read-back is served through the Readback API; a read packet in a
		// write stream is tolerated and skipped.
		return
	default:
		p.status.SyncError = true
		p.state = stateUnsynced
	}
}

// dataWord applies a single register-write word.
func (p *Port) dataWord(w uint32) {
	switch p.curReg {
	case bitstream.RegCRC:
		// The device compares before folding the CRC word itself.
		if w != p.crc.Value() {
			p.status.CRCError = true
		}
		return
	case bitstream.RegIDCODE:
		p.crc.Update(p.curReg, w)
		if w != p.mem.Device().IDCode {
			p.status.IDCODEError = true
			p.state = stateUnsynced
		}
		return
	case bitstream.RegFAR:
		p.crc.Update(p.curReg, w)
		addr := fabric.DecodeFAR(w)
		if _, err := p.mem.Device().Linear(addr); err != nil {
			p.status.SyncError = true
			return
		}
		p.far = addr
		p.farValid = true
		p.frameBuf = p.frameBuf[:0]
		return
	case bitstream.RegCMD:
		p.crc.Update(p.curReg, w)
		p.command(bitstream.Cmd(w))
		return
	default:
		p.crc.Update(p.curReg, w)
	}
}

// dataFDRI applies a run of FDRI payload words.
func (p *Port) dataFDRI(words []uint32) {
	if !p.wcfg || !p.farValid {
		p.status.SyncError = true
		return
	}
	p.crc.UpdateWords(bitstream.RegFDRI, words)
	for len(words) > 0 {
		space := fabric.FrameWords - len(p.frameBuf)
		n := len(words)
		if n > space {
			n = space
		}
		p.frameBuf = append(p.frameBuf, words[:n]...)
		words = words[n:]
		if len(p.frameBuf) == fabric.FrameWords {
			if err := p.mem.WriteFrame(p.far, p.frameBuf); err != nil {
				p.status.SyncError = true
				return
			}
			p.status.FramesWritten++
			p.frameBuf = p.frameBuf[:0]
			next, err := p.mem.Device().Next(p.far)
			if err != nil {
				// Last frame of the device: further data is an error, but
				// a transfer that ends exactly here is fine.
				p.farValid = false
			} else {
				p.far = next
			}
		}
	}
}

// command executes a CMD-register write.
func (p *Port) command(c bitstream.Cmd) {
	switch c {
	case bitstream.CmdRCRC:
		p.crc.Reset()
	case bitstream.CmdWCFG:
		p.wcfg = true
	case bitstream.CmdLFRM:
		p.wcfg = false
	case bitstream.CmdDesync:
		p.desync()
	case bitstream.CmdNull, bitstream.CmdRCFG, bitstream.CmdStart:
		// No modelled effect.
	default:
		// Unknown commands are ignored, as on hardware.
	}
}

// desync ends the transfer: latch Done and raise the completion interrupt
// unless the control path is violating timing (the paper's hang mode).
func (p *Port) desync() {
	outcome := p.tmodel.Classify(p.freq, p.tempC(), p.vdd())
	if outcome == timing.Hang || outcome == timing.Freeze {
		// Interrupt logic missed timing: no Done, no IRQ. Data (if the
		// data path was fine) is already in configuration memory.
		return
	}
	p.status.Done = true
	if p.OnDone != nil {
		st := p.status
		cb := p.OnDone
		// Interrupt propagation is one cycle later; deliver via the kernel
		// so callers never re-enter the parser.
		p.kernel.Schedule(p.period, func() { cb(st) })
	}
}

// ReadbackVisit reads n frames starting at addr through the shared port,
// invoking visit with each frame's live configuration-memory slice (no copy)
// once the words have been clocked out, then done. Reading occupies the port
// like writing does (1 word/cycle). Visitors must not retain or mutate the
// slice — it is the fabric's backing store. Streaming consumers such as the
// CRC read-back monitor use this to scan without per-frame allocation.
func (p *Port) ReadbackVisit(addr fabric.FrameAddr, n int, visit func([]uint32), done func(error)) {
	dev := p.mem.Device()
	end := p.Reserve(n * fabric.FrameWords)
	p.kernel.At(end, func() {
		a := addr
		for i := 0; i < n; i++ {
			f, err := p.mem.FrameView(a)
			if err != nil {
				done(fmt.Errorf("icap: readback: %w", err))
				return
			}
			visit(f)
			if i+1 < n {
				a, err = dev.Next(a)
				if err != nil {
					done(fmt.Errorf("icap: readback: %w", err))
					return
				}
			}
		}
		done(nil)
	})
}

// Readback reads n frames starting at addr through the shared port,
// invoking done with copies of the frame contents when the words have been
// clocked out. Reading occupies the port like writing does (1 word/cycle).
// It is ReadbackVisit plus a per-frame copy, for consumers (the scrubber)
// that repair frames rather than stream over them.
func (p *Port) Readback(addr fabric.FrameAddr, n int, done func([][]uint32, error)) {
	frames := make([][]uint32, 0, n)
	p.ReadbackVisit(addr, n,
		func(f []uint32) {
			cp := make([]uint32, fabric.FrameWords)
			copy(cp, f)
			frames = append(frames, cp)
		},
		func(err error) {
			if err != nil {
				done(nil, err)
				return
			}
			done(frames, nil)
		})
}
