package icap

import (
	"testing"
	"testing/quick"

	"repro/internal/bitstream"
	"repro/internal/clock"
	"repro/internal/fabric"
	"repro/internal/platform"
	"repro/internal/sim"
)

type rig struct {
	kernel *sim.Kernel
	domain *clock.Domain
	dev    *fabric.Device
	mem    *fabric.Memory
	port   *Port
	tempC  float64
}

func newRig(t *testing.T, freq sim.Hz) *rig {
	t.Helper()
	r := &rig{
		kernel: sim.NewKernel(),
		domain: clock.NewDomain("icap", freq),
		dev:    platform.Default().NewDevice(),
		tempC:  40,
	}
	r.mem = fabric.NewMemory(r.dev)
	r.port = New(Config{
		Kernel: r.kernel,
		Domain: r.domain,
		Memory: r.mem,
		Timing: platform.Default().TimingModel(),
		TempC:  func() float64 { return r.tempC },
		Seed:   1,
	})
	return r
}

func makeFrames(n int, seed uint64) [][]uint32 {
	rng := sim.NewRNG(seed)
	frames := make([][]uint32, n)
	for i := range frames {
		f := make([]uint32, fabric.FrameWords)
		for w := range f {
			if rng.Bool(0.5) {
				f[w] = rng.Uint32()
			}
		}
		frames[i] = f
	}
	return frames
}

func buildFor(t *testing.T, r *rig, rpIdx int, seed uint64) *bitstream.Bitstream {
	t.Helper()
	rp := platform.Default().RPs(r.dev)[rpIdx]
	bs, err := bitstream.Build(r.dev, rp, "test-asp", makeFrames(r.dev.RegionFrames(rp), seed))
	if err != nil {
		t.Fatal(err)
	}
	return bs
}

// feedAll streams the bitstream's config words in bursts of 32 words,
// respecting the done-callback pacing a DMA would.
func feedAll(r *rig, bs *bitstream.Bitstream) {
	words := bs.Words()
	var pump func()
	pump = func() {
		if len(words) == 0 {
			return
		}
		n := 32
		if n > len(words) {
			n = len(words)
		}
		chunk := words[:n]
		words = words[n:]
		r.port.Feed(chunk, pump)
	}
	pump()
	r.kernel.Run()
}

func TestLoadWritesAllFramesAndRaisesDone(t *testing.T) {
	r := newRig(t, 100*sim.MHz)
	bs := buildFor(t, r, 0, 7)
	var done *Status
	r.port.OnDone = func(s Status) { done = &s }
	r.port.Reset()
	feedAll(r, bs)
	if done == nil {
		t.Fatal("completion interrupt never fired")
	}
	if !done.Done || done.CRCError || done.SyncError || done.IDCODEError {
		t.Fatalf("status = %+v", *done)
	}
	if done.FramesWritten != 1308 {
		t.Errorf("FramesWritten = %d, want 1308", done.FramesWritten)
	}
	rp := platform.Default().RPs(r.dev)[0]
	eq, err := r.mem.RegionEqual(rp, bs.Frames)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("configuration memory differs from bitstream payload")
	}
}

func TestLoadTimingIsOneWordPerCycle(t *testing.T) {
	r := newRig(t, 100*sim.MHz)
	bs := buildFor(t, r, 0, 8)
	r.port.Reset()
	start := r.kernel.Now()
	feedAll(r, bs)
	elapsed := r.kernel.Now().Sub(start)
	words := int64(len(bs.Words()))
	want := sim.Cycles(words, 100*sim.MHz) + (100 * sim.MHz).Period() // + IRQ cycle
	slack := 2 * sim.Microsecond
	if elapsed < want-slack || elapsed > want+slack {
		t.Errorf("elapsed = %v, want ≈%v (%d words @ 100MHz)", elapsed, want, words)
	}
}

func TestLoadFasterClockIsProportionallyFaster(t *testing.T) {
	r1 := newRig(t, 100*sim.MHz)
	bs1 := buildFor(t, r1, 0, 9)
	r1.port.Reset()
	t0 := r1.kernel.Now()
	feedAll(r1, bs1)
	d100 := r1.kernel.Now().Sub(t0)

	r2 := newRig(t, 200*sim.MHz)
	bs2 := buildFor(t, r2, 0, 9)
	r2.port.Reset()
	t0 = r2.kernel.Now()
	feedAll(r2, bs2)
	d200 := r2.kernel.Now().Sub(t0)

	ratio := float64(d100) / float64(d200)
	if ratio < 1.99 || ratio > 2.01 {
		t.Errorf("100→200 MHz speedup = %v, want ≈2.0", ratio)
	}
}

func TestHangSuppressesDoneButDataLands(t *testing.T) {
	// 310 MHz @ 40 °C: Table I's "N/A no interrupt … valid" row.
	r := newRig(t, 310*sim.MHz)
	bs := buildFor(t, r, 0, 10)
	fired := false
	r.port.OnDone = func(Status) { fired = true }
	r.port.Reset()
	feedAll(r, bs)
	if fired {
		t.Error("interrupt fired despite control-path violation")
	}
	if r.port.Status().Done {
		t.Error("Done latched despite hang")
	}
	rp := platform.Default().RPs(r.dev)[0]
	eq, err := r.mem.RegionEqual(rp, bs.Frames)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("data should land intact at 310 MHz / 40°C")
	}
}

func TestCorruptionAt320MHz(t *testing.T) {
	// 320 MHz @ 40 °C: data path violates timing; memory content must
	// differ from the payload and the embedded CRC check must fail.
	r := newRig(t, 320*sim.MHz)
	bs := buildFor(t, r, 0, 11)
	r.port.Reset()
	feedAll(r, bs)
	rp := platform.Default().RPs(r.dev)[0]
	eq, err := r.mem.RegionEqual(rp, bs.Frames)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Error("memory should be corrupted at 320 MHz")
	}
	if !r.port.Status().CRCError && !r.port.Status().SyncError {
		t.Error("corruption should trip CRC or sync error")
	}
}

func TestCorruptionAt310MHzAnd100C(t *testing.T) {
	// The single failing temperature-stress cell.
	r := newRig(t, 310*sim.MHz)
	r.tempC = 100
	bs := buildFor(t, r, 0, 12)
	r.port.Reset()
	feedAll(r, bs)
	rp := platform.Default().RPs(r.dev)[0]
	eq, err := r.mem.RegionEqual(rp, bs.Frames)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Error("310 MHz @ 100°C must corrupt")
	}
}

func TestWrongIDCODERejected(t *testing.T) {
	r := newRig(t, 100*sim.MHz)
	bs := buildFor(t, r, 0, 13)
	// Words() returns the bitstream's cached image; copy before patching.
	words := append([]uint32(nil), bs.Words()...)
	// Patch the IDCODE value (word after the IDCODE type-1 header).
	patched := false
	for i, w := range words {
		if h, ok := bitstream.Decode(w); ok && h.Type == 1 && h.Reg == bitstream.RegIDCODE && h.Op == bitstream.OpWrite {
			words[i+1] = 0xDEADBEEF
			patched = true
			break
		}
	}
	if !patched {
		t.Fatal("no IDCODE write found")
	}
	r.port.Reset()
	r.port.Feed(words, nil)
	r.kernel.Run()
	if !r.port.Status().IDCODEError {
		t.Error("IDCODE mismatch not latched")
	}
	if r.port.Status().FramesWritten != 0 {
		t.Error("frames written despite IDCODE mismatch")
	}
}

func TestGarbageStreamSetsSyncError(t *testing.T) {
	r := newRig(t, 100*sim.MHz)
	r.port.Reset()
	words := []uint32{bitstream.SyncWord, 0x6FFFFFFF} // type 3 junk after sync
	r.port.Feed(words, nil)
	r.kernel.Run()
	if !r.port.Status().SyncError {
		t.Error("junk header should set SyncError")
	}
}

func TestFDRIWithoutWCFGIsError(t *testing.T) {
	r := newRig(t, 100*sim.MHz)
	r.port.Reset()
	words := []uint32{
		bitstream.SyncWord,
		bitstream.Type1(bitstream.OpWrite, bitstream.RegFDRI, 2),
		1, 2,
	}
	r.port.Feed(words, nil)
	r.kernel.Run()
	if !r.port.Status().SyncError {
		t.Error("FDRI without WCFG/FAR should error")
	}
}

func TestResetClearsState(t *testing.T) {
	r := newRig(t, 100*sim.MHz)
	bs := buildFor(t, r, 0, 14)
	r.port.Reset()
	feedAll(r, bs)
	if r.port.WordsIn() == 0 {
		t.Fatal("no words consumed")
	}
	r.port.Reset()
	if r.port.WordsIn() != 0 || r.port.Status() != (Status{}) {
		t.Error("Reset did not clear state")
	}
}

func TestBackToBackLoadsDifferentRPs(t *testing.T) {
	r := newRig(t, 200*sim.MHz)
	bs1 := buildFor(t, r, 0, 15)
	bs2 := buildFor(t, r, 1, 16)
	r.port.Reset()
	feedAll(r, bs1)
	r.port.Reset()
	feedAll(r, bs2)
	rps := platform.Default().RPs(r.dev)
	eq1, _ := r.mem.RegionEqual(rps[0], bs1.Frames)
	eq2, _ := r.mem.RegionEqual(rps[1], bs2.Frames)
	if !eq1 || !eq2 {
		t.Errorf("RP contents wrong after back-to-back loads: rp1=%v rp2=%v", eq1, eq2)
	}
}

func TestReadbackReturnsWrittenFrames(t *testing.T) {
	r := newRig(t, 100*sim.MHz)
	bs := buildFor(t, r, 0, 17)
	r.port.Reset()
	feedAll(r, bs)
	rp := platform.Default().RPs(r.dev)[0]
	var got [][]uint32
	start := r.kernel.Now()
	r.port.Readback(rp.RegionStart(), 10, func(frames [][]uint32, err error) {
		if err != nil {
			t.Error(err)
			return
		}
		got = frames
	})
	r.kernel.Run()
	if len(got) != 10 {
		t.Fatalf("readback frames = %d", len(got))
	}
	elapsed := r.kernel.Now().Sub(start)
	want := sim.Cycles(10*fabric.FrameWords, 100*sim.MHz)
	if elapsed != want {
		t.Errorf("readback time = %v, want %v", elapsed, want)
	}
	for i := range got {
		for w := range got[i] {
			if got[i][w] != bs.Frames[i][w] {
				t.Fatalf("frame %d word %d mismatch", i, w)
			}
		}
	}
}

func TestReserveSerializesPort(t *testing.T) {
	r := newRig(t, 100*sim.MHz)
	end1 := r.port.Reserve(100)
	end2 := r.port.Reserve(50)
	if end2 != end1.Add(sim.Cycles(50, 100*sim.MHz)) {
		t.Errorf("second reservation %v should start after first %v", end2, end1)
	}
}

func TestFeedEmptyBurstCompletesImmediately(t *testing.T) {
	r := newRig(t, 100*sim.MHz)
	called := false
	r.port.Feed(nil, func() { called = true })
	if !called {
		t.Error("empty burst should invoke done synchronously")
	}
}

func TestDeterministicCorruptionPattern(t *testing.T) {
	// Same seed ⇒ same corruption ⇒ same final memory state.
	run := func() uint32 {
		r := newRig(t, 360*sim.MHz)
		bs := buildFor(t, r, 0, 18)
		r.port.Reset()
		feedAll(r, bs)
		rp := platform.Default().RPs(r.dev)[0]
		idx, err := r.mem.RegionFrameIndices(rp)
		if err != nil {
			t.Fatal(err)
		}
		frames := make([][]uint32, len(idx))
		for i, lin := range idx {
			frames[i] = r.mem.FrameSlice(lin)
		}
		return bitstream.FrameCRC(frames)
	}
	if run() != run() {
		t.Error("corruption not deterministic for equal seeds")
	}
}

func TestRoundTripProperty(t *testing.T) {
	// Property: at any operational frequency and temperature, an arbitrary
	// frame payload streamed through the port lands bit-exactly in
	// configuration memory with Done latched and no errors.
	prop := func(seed uint64, fRaw uint8, tRaw uint8) bool {
		freqMHz := 100 + float64(fRaw%19)*10 // 100..280
		temp := 40 + float64(tRaw%7)*10      // 40..100
		r := newRig(t, sim.Hz(freqMHz*1e6))
		r.tempC = temp
		bs := buildFor(t, r, int(seed%4), seed)
		r.port.Reset()
		feedAll(r, bs)
		st := r.port.Status()
		if !st.Done || st.CRCError || st.SyncError || st.FramesWritten != 1308 {
			return false
		}
		rp := platform.Default().RPs(r.dev)[int(seed%4)]
		eq, err := r.mem.RegionEqual(rp, bs.Frames)
		return err == nil && eq
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func TestBurstSizeInvariance(t *testing.T) {
	// The parser must be insensitive to how the stream is chopped into
	// bursts: 7-word and 256-word deliveries must produce identical memory.
	run := func(burst int) uint32 {
		r := newRig(t, 200*sim.MHz)
		bs := buildFor(t, r, 0, 77)
		r.port.Reset()
		words := bs.Words()
		var pump func()
		pump = func() {
			if len(words) == 0 {
				return
			}
			n := burst
			if n > len(words) {
				n = len(words)
			}
			chunk := words[:n]
			words = words[n:]
			r.port.Feed(chunk, pump)
		}
		pump()
		r.kernel.Run()
		rp := platform.Default().RPs(r.dev)[0]
		idx, err := r.mem.RegionFrameIndices(rp)
		if err != nil {
			t.Fatal(err)
		}
		frames := make([][]uint32, len(idx))
		for i, lin := range idx {
			frames[i] = r.mem.FrameSlice(lin)
		}
		return bitstream.FrameCRC(frames)
	}
	if run(7) != run(256) {
		t.Error("memory state depends on burst framing")
	}
}
