// Package chaos generates seeded fault schedules for the fleet layer: board
// crashes and recoveries, thermal excursions (the paper's Sec. IV-A heat-gun
// stress aimed at a running fleet) and configuration-memory upsets that trip
// the CRC read-back monitor mid-run. A schedule is a pure function of its
// Config — same (seed, shape) ⇒ byte-identical event list — so a chaos run
// stays as reproducible as a calm one: the storm is part of the experiment
// configuration, not an external source of nondeterminism.
package chaos

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Kind classifies one fault event.
type Kind int

const (
	// BoardDown crashes a board: its queues and in-flight work are lost,
	// its DRAM bitstream cache and resident ASPs die with it, and it
	// refuses connections until the paired BoardUp.
	BoardDown Kind = iota
	// BoardUp recovers a crashed board (cold caches, empty partitions).
	BoardUp
	// HeatOn starts a thermal excursion: the heat gun drives the die to
	// TempC (Sec. IV-A), pushing the board into its thermal-throttle regime.
	HeatOn
	// HeatOff ends the excursion; the die cools back toward ambient.
	HeatOff
	// CRCGlitch flips bits in Frames configuration frames of a resident
	// partition — the over-clock/SEU corruption the CRC read-back monitor
	// exists to catch. The service raises a CRC alarm and repairs by
	// scrubbing or full reload at the next dispatch.
	CRCGlitch
)

// String names the kind for logs and rendered schedules.
func (k Kind) String() string {
	switch k {
	case BoardDown:
		return "board-down"
	case BoardUp:
		return "board-up"
	case HeatOn:
		return "heat-on"
	case HeatOff:
		return "heat-off"
	case CRCGlitch:
		return "crc-glitch"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one scheduled fault.
type Event struct {
	// At is the fault instant on the arrival timeline.
	At sim.Duration
	// Board is the target board index.
	Board int
	// Kind classifies the fault.
	Kind Kind
	// TempC is the excursion target (HeatOn only).
	TempC float64
	// Frames is the upset count (CRCGlitch only).
	Frames int
}

// Config shapes a fault storm. The zero value of each count disables that
// fault class; Schedule fills the remaining defaults.
type Config struct {
	// Seed drives the storm's own RNG stream (independent of the workload
	// and platform streams, so adding chaos never perturbs them).
	Seed uint64
	// Horizon is the arrival-timeline span faults are drawn from. Fault
	// instants land in [Horizon/16, Horizon) so the fleet is warm when the
	// storm hits; outages and excursions are clipped to end by Horizon.
	Horizon sim.Duration
	// Boards is the fleet size targets are drawn from.
	Boards int

	// Crashes is the number of BoardDown/BoardUp pairs; each outage lasts
	// Outage (default Horizon/4).
	Crashes int
	Outage  sim.Duration

	// Excursions is the number of HeatOn/HeatOff pairs; each drives the die
	// to ExcursionTempC (default 85 °C) for Dwell (default Horizon/4).
	Excursions     int
	ExcursionTempC float64
	Dwell          sim.Duration

	// Glitches is the number of CRCGlitch events, each upsetting
	// GlitchFrames frames (default 1).
	Glitches     int
	GlitchFrames int
}

// Validate checks the shape before a schedule is drawn.
func (c *Config) Validate() error {
	switch {
	case c.Boards < 1:
		return fmt.Errorf("chaos: storm needs at least one board, got %d", c.Boards)
	case c.Horizon <= 0:
		return fmt.Errorf("chaos: horizon must be positive, got %v", c.Horizon)
	case c.Crashes < 0 || c.Excursions < 0 || c.Glitches < 0:
		return fmt.Errorf("chaos: fault counts must be non-negative")
	}
	return nil
}

// Schedule draws the storm: a time-sorted event list that is a pure
// function of the Config. Paired events (down/up, heat on/off) target the
// same board and never outlive the horizon.
func (c Config) Schedule() ([]Event, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	outage := c.Outage
	if outage <= 0 {
		outage = c.Horizon / 4
	}
	dwell := c.Dwell
	if dwell <= 0 {
		dwell = c.Horizon / 4
	}
	tempC := c.ExcursionTempC
	if tempC <= 0 {
		tempC = 85
	}
	frames := c.GlitchFrames
	if frames <= 0 {
		frames = 1
	}

	// All instants land in [lo, hi) so the storm hits a warm fleet and the
	// paired end event can still fit before the horizon.
	rng := sim.NewRNG(c.Seed ^ 0xC405)
	lo := c.Horizon / 16
	draw := func(span sim.Duration) sim.Duration {
		hi := c.Horizon - span
		if hi <= lo {
			return lo
		}
		return lo + sim.Duration(rng.Uint64()%uint64(hi-lo))
	}

	var events []Event
	for i := 0; i < c.Crashes; i++ {
		at := draw(outage)
		b := rng.Intn(c.Boards)
		events = append(events,
			Event{At: at, Board: b, Kind: BoardDown},
			Event{At: at + outage, Board: b, Kind: BoardUp})
	}
	for i := 0; i < c.Excursions; i++ {
		at := draw(dwell)
		b := rng.Intn(c.Boards)
		events = append(events,
			Event{At: at, Board: b, Kind: HeatOn, TempC: tempC},
			Event{At: at + dwell, Board: b, Kind: HeatOff})
	}
	for i := 0; i < c.Glitches; i++ {
		events = append(events,
			Event{At: draw(0), Board: rng.Intn(c.Boards), Kind: CRCGlitch, Frames: frames})
	}

	// Stable time order: ties break by board then kind, so the sort result
	// never depends on the generation order above.
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].At != events[j].At {
			return events[i].At < events[j].At
		}
		if events[i].Board != events[j].Board {
			return events[i].Board < events[j].Board
		}
		return events[i].Kind < events[j].Kind
	})
	return events, nil
}

// String renders the event compactly for notes and logs.
func (e Event) String() string {
	switch e.Kind {
	case HeatOn:
		return fmt.Sprintf("%v board %d %s→%.0f°C", e.At, e.Board, e.Kind, e.TempC)
	case CRCGlitch:
		return fmt.Sprintf("%v board %d %s×%d", e.At, e.Board, e.Kind, e.Frames)
	}
	return fmt.Sprintf("%v board %d %s", e.At, e.Board, e.Kind)
}
