package chaos

import (
	"reflect"
	"testing"

	"repro/internal/sim"
)

func stormConfig(seed uint64) Config {
	return Config{
		Seed:           seed,
		Horizon:        480 * sim.Millisecond,
		Boards:         4,
		Crashes:        2,
		Outage:         120 * sim.Millisecond,
		Excursions:     1,
		ExcursionTempC: 85,
		Dwell:          100 * sim.Millisecond,
		Glitches:       2,
		GlitchFrames:   2,
	}
}

func TestScheduleIsPureFunctionOfConfig(t *testing.T) {
	a, err := stormConfig(7).Schedule()
	if err != nil {
		t.Fatal(err)
	}
	b, err := stormConfig(7).Schedule()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same config produced different schedules:\n%v\n%v", a, b)
	}
	c, err := stormConfig(8).Schedule()
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestScheduleShapeAndBounds(t *testing.T) {
	cfg := stormConfig(42)
	events, err := cfg.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	want := 2*cfg.Crashes + 2*cfg.Excursions + cfg.Glitches
	if len(events) != want {
		t.Fatalf("schedule has %d events, want %d", len(events), want)
	}
	counts := map[Kind]int{}
	for i, e := range events {
		counts[e.Kind]++
		if e.At < cfg.Horizon/16 || e.At > cfg.Horizon {
			t.Errorf("event %d at %v outside [%v, %v]", i, e.At, cfg.Horizon/16, cfg.Horizon)
		}
		if e.Board < 0 || e.Board >= cfg.Boards {
			t.Errorf("event %d targets board %d of %d", i, e.Board, cfg.Boards)
		}
		if i > 0 && events[i-1].At > e.At {
			t.Errorf("schedule not time-sorted at %d: %v after %v", i, e.At, events[i-1].At)
		}
		if e.Kind == CRCGlitch && e.Frames != cfg.GlitchFrames {
			t.Errorf("glitch upsets %d frames, want %d", e.Frames, cfg.GlitchFrames)
		}
		if e.Kind == HeatOn && e.TempC != cfg.ExcursionTempC {
			t.Errorf("excursion targets %.0f °C, want %.0f", e.TempC, cfg.ExcursionTempC)
		}
	}
	if counts[BoardDown] != cfg.Crashes || counts[BoardUp] != cfg.Crashes {
		t.Errorf("crash pairs = %d/%d, want %d/%d", counts[BoardDown], counts[BoardUp], cfg.Crashes, cfg.Crashes)
	}
	if counts[HeatOn] != cfg.Excursions || counts[HeatOff] != cfg.Excursions {
		t.Errorf("excursion pairs = %d/%d, want %d each", counts[HeatOn], counts[HeatOff], cfg.Excursions)
	}
}

// Paired events must target the same board with the end strictly after the
// start — the fleet applies them in order and a board cannot recover before
// it went down.
func TestSchedulePairsEventsPerBoard(t *testing.T) {
	events, err := stormConfig(3).Schedule()
	if err != nil {
		t.Fatal(err)
	}
	open := map[Kind]map[int]sim.Duration{BoardDown: {}, HeatOn: {}}
	for _, e := range events {
		switch e.Kind {
		case BoardDown, HeatOn:
			open[e.Kind][e.Board] = e.At
		case BoardUp:
			start, ok := open[BoardDown][e.Board]
			if !ok {
				t.Fatalf("board %d recovers without a crash", e.Board)
			}
			if e.At <= start {
				t.Fatalf("board %d recovers at %v, before its crash at %v", e.Board, e.At, start)
			}
			delete(open[BoardDown], e.Board)
		case HeatOff:
			if _, ok := open[HeatOn][e.Board]; !ok {
				t.Fatalf("board %d cools without an excursion", e.Board)
			}
			delete(open[HeatOn], e.Board)
		}
	}
}

func TestScheduleValidates(t *testing.T) {
	cases := []Config{
		{Boards: 0, Horizon: sim.Second},
		{Boards: 2, Horizon: 0},
		{Boards: 2, Horizon: sim.Second, Crashes: -1},
	}
	for i, cfg := range cases {
		if _, err := cfg.Schedule(); err == nil {
			t.Errorf("case %d: invalid config %+v accepted", i, cfg)
		}
	}
}

func TestScheduleZeroCountsEmpty(t *testing.T) {
	events, err := (Config{Boards: 2, Horizon: sim.Second}).Schedule()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Fatalf("calm config produced %d events", len(events))
	}
}
