// Package plan is the power-aware capacity planner: given an arrival
// workload and an SLO (p99 sojourn bound + max shed fraction), it searches
// fleet composition × operating frequency × routing policy × cache budget
// for the configuration that meets the SLO at minimum total watts.
//
// A naive search is simulation-bound — the default candidate space is
// thousands of configurations and one full fleet simulation costs seconds —
// so the planner runs a two-tier engine:
//
//   - Tier A is a closed-form M/G/k-style queueing surrogate calibrated
//     entirely from artefacts the repo already owns: the platform profile's
//     memory-plateau throughput and analytic fixed overhead for the
//     reconfiguration time, power.Model.PDRAt plus the board's thermal
//     circuit for steady-state watts, and a cache-hit model whose single
//     congestion-tail constant is fitted to the E11 saturation knees. It
//     scores a candidate in microseconds and prunes the space to a Pareto
//     frontier over (watts, predicted p99, predicted shed).
//   - Tier B re-evaluates only frontier candidates with full cluster.Fleet
//     simulations, fanned out over internal/workpool behind a memoization
//     cache (see memo.go), merged in index order so a parallel search is
//     byte-identical to a sequential one.
//
// The whole search is a pure function of (workload, SLO, space): worker
// counts change wall clock only.
package plan

import (
	"fmt"
	"math"

	"repro/internal/bitstream"
	"repro/internal/cluster"
	"repro/internal/platform"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/workload"
)

// kappa is the surrogate's single congestion-tail constant: the p99 sojourn
// inflates as p99₀·(1 + κ·u/(1−u)) with utilisation u. Fitted so the
// surrogate's saturation knee matches E11's simulated cached knee on the
// zedboard (400 req/s at seed 42) and cross-validated against the zybo-z7-10
// and zc706 knees; any κ in roughly (5.4, 18) reproduces all three, so the
// calibration is not knife-edged.
const kappa = 9.0

// utilCap bounds the congestion term: past û = 0.9 the M/G/1-style factor
// is frozen and the finite-stream backlog term (active only above u = 1)
// takes over, keeping the predicted curve finite and monotone through the
// saturation boundary.
const utilCap = 0.9

// thermalIters is the fixed-point iteration count for the steady-state die
// temperature (the static-leakage exponent is mild, so this converges to
// well below the meter resolution).
const thermalIters = 32

// Workload describes the arrival stream a plan must carry.
type Workload struct {
	// Seed drives the arrival stream generation (tier B replays exactly
	// this stream; tier A only uses the rate and mix).
	Seed uint64
	// RatePerSec is the offered Poisson arrival rate.
	RatePerSec float64
	// Requests is the finite stream length per verifying simulation.
	Requests int
	// ASPs is the accelerator mix requests draw from (uniformly).
	ASPs []string
	// Deadline is the per-request deadline the stream carries.
	Deadline sim.Duration
}

// SLO is the objective a candidate must meet.
type SLO struct {
	// P99 bounds the fleet-wide p99 sojourn time.
	P99 sim.Duration
	// MaxShed bounds the fraction of arrivals lost at the door or shed by
	// admission control.
	MaxShed float64
}

// Candidate is one point of the search space.
type Candidate struct {
	// Boards is the fleet composition in index order.
	Boards []cluster.BoardSpec
	// FreqMHz is the ICAP operating frequency applied to every board.
	FreqMHz float64
	// Router names the routing policy (see cluster.RouterNames).
	Router string
	// CacheImages sizes each board's bitstream cache: 0 = the board
	// profile's derived budget, > 0 = that many images, < 0 = disabled.
	CacheImages int
}

// Label renders the candidate compactly ("3× zybo-z7-10 @200 MHz,
// least-outstanding, profile cache").
func (c Candidate) Label() string {
	cache := "profile cache"
	switch {
	case c.CacheImages > 0:
		cache = fmt.Sprintf("%d-image cache", c.CacheImages)
	case c.CacheImages < 0:
		cache = "no cache"
	}
	return fmt.Sprintf("%s @%.0f MHz, %s, %s", boardsLabel(c.Boards), c.FreqMHz, c.Router, cache)
}

// boardsLabel matches the fleet scenarios' rendering of a composition.
func boardsLabel(specs []cluster.BoardSpec) string {
	uniform := true
	for _, s := range specs[1:] {
		if s.Platform != specs[0].Platform {
			uniform = false
			break
		}
	}
	if uniform {
		return fmt.Sprintf("%d× %s", len(specs), specs[0].Platform)
	}
	label := ""
	for i, s := range specs {
		if i > 0 {
			label += ","
		}
		label += s.Platform
	}
	return label
}

// Prediction is tier A's closed-form estimate for one candidate.
type Prediction struct {
	// Watts is the steady-state whole-fleet board power (baseline + P_PDR
	// at the thermal fixed point).
	Watts float64
	// P99US and Shed are the predicted fleet p99 sojourn (µs) and shed
	// fraction.
	P99US float64
	Shed  float64
	// UtilMax is the most-loaded board's utilisation.
	UtilMax float64
	// EnergyPerMB is the configuration energy cost (J/MB) of the hottest
	// operating point, from power.Model.EnergyPerMB.
	EnergyPerMB float64
	// Feasible reports whether the prediction meets the SLO.
	Feasible bool
}

// WhatIf perturbs the surrogate's reconfiguration-path model, used for the
// SRAM-PDR sensitivity note (Sec. VI: images resident in QDR SRAM, no
// SD-card staging, 1237.5 MB/s theoretical transfer).
type WhatIf struct {
	// XferMBs overrides the ICAP transfer rate (0 keeps the platform
	// model: min(4f, memory plateau)).
	XferMBs float64
	// NoStage removes the SD-card staging cost on cache misses.
	NoStage bool
}

// boardPoint caches the per-(platform, frequency) constants of the
// surrogate, so scoring a 3000-candidate space touches the fabric geometry
// once per distinct operating point, not once per candidate.
type boardPoint struct {
	imageBytes float64
	tIcapUS    float64 // image transfer + fixed per-load overhead
	tStageUS   float64 // SD-card staging on a cache miss
	capImages  float64 // profile-budget cache capacity in images
	watts      float64 // steady-state board power at the thermal fixed point
	energyMB   float64 // J/MB at the operating point
	rps        int     // partitions the board serves
}

// aspMix caches the workload mix's compute statistics.
type aspMix struct {
	meanUS, maxUS float64
	count         int
}

// Surrogate is the tier-A scorer. It caches per-profile constants and is
// not safe for concurrent use; the search scores sequentially (scoring is
// microseconds per candidate — parallelism lives in tier B).
type Surrogate struct {
	points map[string]boardPoint // key: platform|freq|whatif
	mixes  map[string]aspMix     // key: joined ASP list
}

// NewSurrogate builds an empty-cached scorer.
func NewSurrogate() *Surrogate {
	return &Surrogate{points: make(map[string]boardPoint), mixes: make(map[string]aspMix)}
}

// steadyWatts solves T = ambient + R_th·(P_PS + P_PDR(f,T)) by fixed-point
// iteration and returns the board power and die temperature there.
func steadyWatts(prof *platform.Profile, freqMHz float64) (watts, tempC float64) {
	m := power.NewModel(prof.Power)
	t := prof.BootAmbientC
	for i := 0; i < thermalIters; i++ {
		t = prof.BootAmbientC + prof.Thermal.RThermalCPerW*(prof.Power.PSActive+m.PDRAt(freqMHz, t))
	}
	return prof.Power.BoardBaseline + m.PDRAt(freqMHz, t), t
}

func (s *Surrogate) point(prof *platform.Profile, freqMHz float64, wi WhatIf) boardPoint {
	key := fmt.Sprintf("%s|%g|%g|%t", prof.Name, freqMHz, wi.XferMBs, wi.NoStage)
	if pt, ok := s.points[key]; ok {
		return pt
	}
	dev := prof.NewDevice()
	image := float64(bitstream.ExpectedSize(dev.RegionFrames(prof.RPs(dev)[0])))
	xfer := math.Min(4*freqMHz, prof.MemoryPlateauMBs(freqMHz)) // MB/s, stream vs memory side
	if wi.XferMBs > 0 {
		xfer = wi.XferMBs
	}
	stage := image / prof.IO.SDBytesPerSec * 1e6
	if wi.NoStage {
		stage = 0
	}
	watts, temp := steadyWatts(prof, freqMHz)
	pt := boardPoint{
		imageBytes: image,
		tIcapUS:    image/(xfer*1e6)*1e6 + prof.AnalyticFixedUS,
		tStageUS:   stage,
		capImages:  math.Floor(float64(prof.BitstreamCacheBytes()) / image),
		watts:      watts,
		energyMB:   power.NewModel(prof.Power).EnergyPerMB(freqMHz, temp, xfer),
		rps:        len(prof.RPNames()),
	}
	s.points[key] = pt
	return pt
}

func (s *Surrogate) mix(asps []string) (aspMix, error) {
	key := ""
	for _, a := range asps {
		key += a + "|"
	}
	if m, ok := s.mixes[key]; ok {
		return m, nil
	}
	var m aspMix
	for _, name := range asps {
		asp, err := workload.LibraryASP(name)
		if err != nil {
			return aspMix{}, err
		}
		us := asp.ComputeTime.Microseconds()
		m.meanUS += us
		if us > m.maxUS {
			m.maxUS = us
		}
		m.count++
	}
	if m.count == 0 {
		return aspMix{}, fmt.Errorf("plan: workload has no ASPs")
	}
	m.meanUS /= float64(m.count)
	s.mixes[key] = m
	return m, nil
}

// Score evaluates one candidate against the workload and SLO with the
// platform-model reconfiguration path. See ScoreWhatIf for the knobs.
func (s *Surrogate) Score(c Candidate, w Workload, slo SLO) (Prediction, error) {
	return s.ScoreWhatIf(c, w, slo, WhatIf{})
}

// ScoreWhatIf is Score with the reconfiguration path perturbed.
//
// The model, per board b with per-board arrival rate λ_b:
//
//	h  = 1/|ASPs|                     residency: the RP already holds the ASP
//	c  = min(1, cap/(|ASPs|·R))       cache hit on the images not resident
//	S  = (1−h)·(T_icap + (1−c)·T_stage)   mean reconfiguration demand
//	S_eff = S + C̄/R                   + compute share of the serial resource
//	u  = λ_b·S_eff
//	p99 = p99₀·(1 + κ·û/(1−û)) + backlog   (û = min(u, 0.9); backlog > 0
//	                                        only above u = 1, where the
//	                                        finite stream queues n_b·(1−1/u)
//	                                        requests behind each arrival)
//
// λ splits uniformly for the oblivious routers (round-robin, affinity) and
// proportionally to 1/S_eff for the load-aware ones (least-outstanding,
// weighted); the affinity router additionally pools the fleet's caches, so
// its effective per-board capacity scales with the board count. The fleet
// prediction takes the worst board's p99 and the rate-weighted shed sum.
func (s *Surrogate) ScoreWhatIf(c Candidate, w Workload, slo SLO, wi WhatIf) (Prediction, error) {
	if len(c.Boards) == 0 {
		return Prediction{}, fmt.Errorf("plan: candidate without boards")
	}
	common, err := cluster.CommonRPs(c.Boards)
	if err != nil {
		return Prediction{}, err
	}
	mix, err := s.mix(w.ASPs)
	if err != nil {
		return Prediction{}, err
	}
	n := len(c.Boards)
	r := float64(len(common))
	a := float64(mix.count)
	workingSet := a * r

	// Per-board effective service demand.
	sEff := make([]float64, n)
	p990 := make([]float64, n)
	var watts, energy float64
	for i, spec := range c.Boards {
		prof, ok := platform.Lookup(spec.Platform)
		if !ok {
			return Prediction{}, fmt.Errorf("plan: unknown platform %q", spec.Platform)
		}
		freq := c.FreqMHz
		if freq <= 0 {
			freq = prof.Clock.NominalMHz
		}
		pt := s.point(prof, freq, wi)
		capImages := pt.capImages
		switch {
		case c.CacheImages > 0:
			capImages = float64(c.CacheImages)
		case c.CacheImages < 0:
			capImages = 0
		}
		if c.Router == "affinity" {
			// Affinity shards the image space across boards, so the fleet's
			// caches pool: each board only needs its 1/n-th of the working
			// set resident.
			capImages *= float64(n)
		}
		hit := math.Min(1, capImages/workingSet)
		reconf := (1 - 1/a) * (pt.tIcapUS + (1-hit)*pt.tStageUS)
		sEff[i] = reconf + mix.meanUS/r
		p990[i] = reconf + mix.maxUS + sEff[i]
		watts += pt.watts
		if pt.energyMB > energy {
			energy = pt.energyMB
		}
	}

	// Split the offered rate across boards.
	share := make([]float64, n)
	switch c.Router {
	case "least-outstanding", "weighted":
		sum := 0.0
		for i := range share {
			share[i] = 1 / sEff[i]
			sum += share[i]
		}
		for i := range share {
			share[i] /= sum
		}
	default: // round-robin, affinity: oblivious uniform split
		for i := range share {
			share[i] = 1 / float64(n)
		}
	}

	pred := Prediction{Watts: watts, EnergyPerMB: energy}
	for i := range c.Boards {
		lambda := w.RatePerSec * share[i]
		u := lambda * sEff[i] * 1e-6
		if u > pred.UtilMax {
			pred.UtilMax = u
		}
		uHat := math.Min(u, utilCap)
		p99 := p990[i] * (1 + kappa*uHat/(1-uHat))
		if u > 1 {
			// Finite stream: the board ends the run with n_b·(1−1/u)
			// requests backlogged, and sheds the excess once queues fill.
			nb := float64(w.Requests) * share[i]
			p99 += nb * (1 - 1/u) * sEff[i]
			pred.Shed += share[i] * (1 - 1/u)
		}
		if p99 > pred.P99US {
			pred.P99US = p99
		}
	}
	pred.Feasible = pred.P99US <= slo.P99.Microseconds() && pred.Shed <= slo.MaxShed
	return pred, nil
}

// KneeCurve predicts a single board's p99-vs-offered-load curve at one
// operating point — the tier-A analogue of one E11 sweep, used by the
// calibration test to compare surrogate knees against simulated ones.
// cached=false disables the bitstream cache (every miss re-stages from SD).
func (s *Surrogate) KneeCurve(platformName string, freqMHz float64, cached bool, ratesPerSec []float64, w Workload) ([]sim.Point, error) {
	images := 0 // profile budget
	if !cached {
		images = -1
	}
	c := Candidate{
		Boards:      []cluster.BoardSpec{{Platform: platformName}},
		FreqMHz:     freqMHz,
		Router:      "round-robin",
		CacheImages: images,
	}
	out := make([]sim.Point, 0, len(ratesPerSec))
	for _, rate := range ratesPerSec {
		wr := w
		wr.RatePerSec = rate
		pred, err := s.Score(c, wr, SLO{P99: sim.Second, MaxShed: 1})
		if err != nil {
			return nil, err
		}
		out = append(out, sim.Point{X: rate, Y: pred.P99US})
	}
	return out, nil
}
