package plan

import (
	"context"
	"math"
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// testSpace is a reduced candidate space that keeps every structural
// property of the default one (two frequencies, multiple sizes, a real
// frontier) while keeping tier-B simulations cheap.
func testSpace() Space {
	return Space{
		Cycles:      [][]string{{"zedboard"}},
		MaxBoards:   3,
		Freqs:       []float64{100, 200},
		Routers:     []string{"round-robin", "least-outstanding"},
		CacheImages: []int{0, 8},
	}
}

// testOptions plans a small, fast question over the reduced space.
func testOptions() Options {
	return Options{
		Workload: Workload{
			Seed:       7,
			RatePerSec: 600,
			Requests:   64,
			Deadline:   20 * sim.Millisecond,
		},
		SLO:   SLO{P99: 15 * sim.Millisecond, MaxShed: 0.01},
		Space: testSpace(),
	}
}

func TestSearchDeterministicAcrossWorkers(t *testing.T) {
	var ref *Result
	for _, workers := range []int{1, 4, 8} {
		o := testOptions()
		o.Workers = workers
		res, err := Search(context.Background(), o)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.SimsRun == 0 || res.Chosen == nil {
			t.Fatalf("workers=%d: degenerate search (sims=%d chosen=%v)", workers, res.SimsRun, res.Chosen)
		}
		if ref == nil {
			ref = res
			continue
		}
		if !reflect.DeepEqual(ref, res) {
			t.Errorf("workers=%d: result differs from sequential reference", workers)
		}
	}
}

func TestSearchMemoWarmRun(t *testing.T) {
	memo := NewMemo()
	run := func() *Result {
		o := testOptions()
		o.Memo = memo
		res, err := Search(context.Background(), o)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	cold := run()
	if cold.SimsRun == 0 || cold.MemoHits != 0 {
		t.Fatalf("cold run: sims=%d memoHits=%d, want fresh sims and no hits", cold.SimsRun, cold.MemoHits)
	}
	if memo.Len() != cold.SimsRun {
		t.Fatalf("memo holds %d entries after %d sims", memo.Len(), cold.SimsRun)
	}
	warm := run()
	if warm.SimsRun != 0 {
		t.Errorf("warm run ran %d fresh sims, want 0", warm.SimsRun)
	}
	if warm.MemoHits != cold.SimsRun {
		t.Errorf("warm run memo hits = %d, want %d", warm.MemoHits, cold.SimsRun)
	}
	// Apart from the provenance fields (Memoized, SimsRun, MemoHits), the
	// warm result must be DeepEqual to the cold one: the cache changes
	// where answers come from, never what they are.
	norm := func(r *Result) *Result {
		cp := *r
		cp.SimsRun, cp.MemoHits = 0, 0
		cp.Verified = append([]Verified(nil), r.Verified...)
		for i := range cp.Verified {
			cp.Verified[i].Memoized = false
		}
		clear := func(v *Verified) *Verified {
			if v == nil {
				return nil
			}
			c := *v
			c.Memoized = false
			return &c
		}
		cp.Chosen, cp.StockBest, cp.OverBest = clear(r.Chosen), clear(r.StockBest), clear(r.OverBest)
		return &cp
	}
	if !reflect.DeepEqual(norm(cold), norm(warm)) {
		t.Error("warm (memoized) result differs from cold run beyond provenance fields")
	}
}

func TestSearchRespectsSimBudget(t *testing.T) {
	o := testOptions()
	o.MaxSims = 1
	res, err := Search(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if res.SimsRun > 1 {
		t.Errorf("SimsRun = %d with MaxSims 1", res.SimsRun)
	}
}

func TestSearchCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Search(ctx, testOptions()); err == nil {
		t.Error("cancelled search returned nil error")
	}
}

func TestKeyDiscriminatesAndIgnoresWorkers(t *testing.T) {
	c := Candidate{Boards: []cluster.BoardSpec{{Platform: "zedboard"}}, FreqMHz: 200, Router: "round-robin"}
	w := Workload{Seed: 1, RatePerSec: 600, Requests: 64, ASPs: DefaultASPs(), Deadline: 20 * sim.Millisecond}
	base := Key(c, w)
	perturb := []struct {
		name string
		c    Candidate
		w    Workload
	}{
		{"seed", c, func() Workload { w2 := w; w2.Seed = 2; return w2 }()},
		{"rate", c, func() Workload { w2 := w; w2.RatePerSec = 601; return w2 }()},
		{"freq", func() Candidate { c2 := c; c2.FreqMHz = 100; return c2 }(), w},
		{"router", func() Candidate { c2 := c; c2.Router = "weighted"; return c2 }(), w},
		{"cache", func() Candidate { c2 := c; c2.CacheImages = 8; return c2 }(), w},
		{"boards", Candidate{Boards: []cluster.BoardSpec{{Platform: "zedboard"}, {Platform: "zc706"}},
			FreqMHz: 200, Router: "round-robin"}, w},
	}
	for _, p := range perturb {
		if Key(p.c, p.w) == base {
			t.Errorf("perturbing %s did not change the memo key", p.name)
		}
	}
	// The key is pure: recomputing it gives the same digest.
	if Key(c, w) != base {
		t.Error("Key is not deterministic")
	}
}

func TestFrontier(t *testing.T) {
	preds := []Prediction{
		{Watts: 1, P99US: 100, Shed: 0},   // frontier (cheapest)
		{Watts: 2, P99US: 50, Shed: 0},    // frontier (faster, dearer)
		{Watts: 2, P99US: 100, Shed: 0},   // dominated by [0]
		{Watts: 3, P99US: 50, Shed: 0.01}, // dominated by [1]
		{Watts: 1, P99US: 100, Shed: 0},   // duplicate of [0]: stays (ties survive)
	}
	got := Frontier(preds)
	want := []int{0, 1, 4}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Frontier = %v, want %v", got, want)
	}
}

func TestCandidateLabel(t *testing.T) {
	c := Candidate{
		Boards:  []cluster.BoardSpec{{Platform: "zybo-z7-10"}, {Platform: "zybo-z7-10"}, {Platform: "zybo-z7-10"}},
		FreqMHz: 140, Router: "round-robin", CacheImages: 0,
	}
	if got, want := c.Label(), "3× zybo-z7-10 @140 MHz, round-robin, profile cache"; got != want {
		t.Errorf("Label = %q, want %q", got, want)
	}
}

func TestEnumerateDefaultSpace(t *testing.T) {
	cands := Space{}.Enumerate()
	if len(cands) < 500 {
		t.Fatalf("default space has %d candidates, want ≥ 500", len(cands))
	}
	// Deterministic: a second enumeration matches element for element.
	again := Space{}.Enumerate()
	if !reflect.DeepEqual(cands, again) {
		t.Error("Enumerate is not deterministic")
	}
}

func TestSurrogateMonotoneInLoad(t *testing.T) {
	sur := NewSurrogate()
	c := Candidate{Boards: []cluster.BoardSpec{{Platform: "zedboard"}}, FreqMHz: 200, Router: "round-robin"}
	slo := SLO{P99: 12 * sim.Millisecond, MaxShed: 0.01}
	prev := math.Inf(-1)
	for _, rate := range []float64{50, 100, 200, 400, 800, 1600} {
		w := Workload{RatePerSec: rate, Requests: 96, ASPs: DefaultASPs(), Deadline: 20 * sim.Millisecond}
		pred, err := sur.Score(c, w, slo)
		if err != nil {
			t.Fatal(err)
		}
		if pred.P99US < prev {
			t.Errorf("predicted p99 fell from %.1f to %.1f µs as load rose to %.0f req/s", prev, pred.P99US, rate)
		}
		prev = pred.P99US
	}
}
