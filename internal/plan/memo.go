package plan

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"

	"repro/internal/cluster"
)

// Key is the memoization key of one verifying simulation: a SHA-256 over
// the canonical encoding of everything the simulated outcome depends on —
// the stream (seed, rate, request count, deadline, ASP mix) and the fleet
// configuration (board platforms in index order, frequency, router, cache
// budget, queue cap, prewarm set). Wall-clock-only knobs (tier-B workers,
// per-fleet epoch workers) are deliberately excluded: they never change the
// simulated bytes, so a warm cache serves every worker count.
func Key(c Candidate, w Workload) string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d|rate=%g|n=%d|deadline=%d|asps=%s|boards=",
		w.Seed, w.RatePerSec, w.Requests, int64(w.Deadline), strings.Join(w.ASPs, ","))
	for i, spec := range c.Boards {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(spec.Platform)
	}
	fmt.Fprintf(&b, "|freq=%g|router=%s|cache=%d|queue=%d|prewarm=%s",
		c.FreqMHz, c.Router, c.CacheImages, simQueueCap, strings.Join(w.ASPs, ","))
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// Memo caches verifying-simulation results across refinement rounds and
// across repeated planner calls (share one Memo between Search calls to
// reuse results — e.g. re-planning the same space under a different SLO).
// Safe for concurrent use.
type Memo struct {
	mu sync.Mutex
	m  map[string]*cluster.FleetStats
}

// NewMemo builds an empty cache.
func NewMemo() *Memo { return &Memo{m: make(map[string]*cluster.FleetStats)} }

// Len returns the number of cached simulations.
func (m *Memo) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.m)
}

func (m *Memo) get(key string) (*cluster.FleetStats, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.m[key]
	return st, ok
}

func (m *Memo) put(key string, st *cluster.FleetStats) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.m[key] = st
}
