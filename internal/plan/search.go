package plan

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/workpool"
)

// Planner defaults. The workload defaults mirror the fleet scenarios (the
// E9/E11 accelerator mix, the 20 ms interactive deadline, 192-request
// verification streams); the default offered rate and SLO sit above one
// board's cached saturation knee, where composition/frequency trade-offs
// are non-trivial.
const (
	simQueueCap     = 32
	defaultRate     = 2200
	defaultRequests = 192
	defaultDeadline = 20 * sim.Millisecond
	defaultP99      = 12 * sim.Millisecond
	defaultShed     = 0.01
)

// DefaultASPs is the planner's default accelerator mix (the mix the serve
// and fleet scenarios stream).
func DefaultASPs() []string { return []string{"fir128", "sha3", "aes-gcm", "fft1k"} }

// DefaultMaxSims is tier B's default verifying-simulation budget.
const DefaultMaxSims = 25

// Options parameterises Search. Zero-value fields take the documented
// defaults, so Options{} plans the standard E17 question.
type Options struct {
	// Workload is the stream to plan for (zero fields default: seed 0
	// stays 0, rate 2200 req/s, 192 requests, the standard ASP mix, 20 ms
	// deadlines).
	Workload Workload
	// SLO is the objective (zero = p99 ≤ 12 ms, shed ≤ 1%).
	SLO SLO
	// Space overrides the candidate axes (zero = the default space).
	Space Space
	// Candidates short-circuits enumeration with an explicit candidate
	// list (tests use reduced spaces).
	Candidates []Candidate
	// MaxSims bounds tier B's full fleet simulations (≤ 0 = 25). Memo hits
	// are free: they do not count against the budget.
	MaxSims int
	// Workers bounds tier B's simulation fan-out (≤ 1 = sequential).
	// Output is byte-identical at every setting.
	Workers int
	// FleetWorkers is passed through to each verifying simulation's
	// per-epoch board fan-out (also wall-clock only).
	FleetWorkers int
	// Memo, when non-nil, is the shared simulation cache; nil uses a fresh
	// one private to this call.
	Memo *Memo
}

// Scored is one tier-A evaluated candidate.
type Scored struct {
	Candidate Candidate
	Pred      Prediction
}

// Verified is one tier-B evaluated candidate: the surrogate prediction plus
// the full-simulation measurement it was checked against.
type Verified struct {
	Scored
	// Stats is the verifying fleet simulation's merged outcome.
	Stats *cluster.FleetStats
	// SimP99US and SimShed are the measured p99 sojourn (µs) and lost
	// fraction (shed + unroutable + crash-lost over arrivals).
	SimP99US float64
	SimShed  float64
	// Pass reports whether the measurement meets the SLO.
	Pass bool
	// Memoized reports whether the result came from the cache instead of a
	// fresh simulation.
	Memoized bool
}

// Result is the deterministic outcome of one Search.
type Result struct {
	// Workload and SLO echo the resolved (defaulted) question.
	Workload Workload
	SLO      SLO
	// CandidatesScored counts tier A's evaluations; Frontier holds the
	// Pareto-optimal ones in ascending-watts order.
	CandidatesScored int
	Frontier         []Scored
	// Verified lists every tier-B evaluation in verification order.
	Verified []Verified
	// Chosen is the cheapest frontier candidate whose verifying simulation
	// met the SLO (nil when none did within the budget). StockBest and
	// OverBest are the single-knob baselines: the cheapest sim-passing
	// configuration at the lowest and highest frequency of the space.
	Chosen, StockBest, OverBest *Verified
	// SimsRun counts fresh fleet simulations; MemoHits the cache returns.
	SimsRun, MemoHits int
}

// resolve applies the documented defaults.
func (o *Options) resolve() {
	if o.Workload.RatePerSec <= 0 {
		o.Workload.RatePerSec = defaultRate
	}
	if o.Workload.Requests <= 0 {
		o.Workload.Requests = defaultRequests
	}
	if len(o.Workload.ASPs) == 0 {
		o.Workload.ASPs = DefaultASPs()
	}
	if o.Workload.Deadline <= 0 {
		o.Workload.Deadline = defaultDeadline
	}
	if o.SLO.P99 <= 0 {
		o.SLO.P99 = defaultP99
	}
	if o.SLO.MaxShed <= 0 {
		o.SLO.MaxShed = defaultShed
	}
	if o.MaxSims <= 0 {
		o.MaxSims = DefaultMaxSims
	}
}

// simulate runs one candidate's verifying full fleet simulation: the exact
// stream the workload describes, served by a freshly built fleet.
func simulate(c Candidate, w Workload, fleetWorkers int) (*cluster.FleetStats, error) {
	rps, err := cluster.CommonRPs(c.Boards)
	if err != nil {
		return nil, err
	}
	spec := workload.ArrivalSpec{RatePerSec: w.RatePerSec, Deadline: w.Deadline}
	tr, err := spec.Generate(w.Seed, w.Requests, rps, w.ASPs)
	if err != nil {
		return nil, err
	}
	router, err := cluster.RouterByName(c.Router)
	if err != nil {
		return nil, err
	}
	fcfg := cluster.FleetConfig{
		Boards:  c.Boards,
		Seed:    w.Seed,
		FreqMHz: c.FreqMHz,
		Router:  router,
		Workers: fleetWorkers,
		Service: cluster.ServiceTemplate{
			QueueCap: simQueueCap,
			Prewarm:  w.ASPs,
		},
	}
	switch {
	case c.CacheImages > 0:
		fcfg.Service.CacheBudgetImages = c.CacheImages
	case c.CacheImages < 0:
		fcfg.Service.CacheBudgetBytes = -1
	}
	f, err := cluster.New(fcfg)
	if err != nil {
		return nil, err
	}
	return f.Serve(tr)
}

// verify folds a simulation outcome into a Verified.
func verify(s Scored, st *cluster.FleetStats, slo SLO, memoized bool) *Verified {
	v := &Verified{Scored: s, Stats: st, Memoized: memoized}
	v.SimP99US = st.Aggregate.SojournUS.Quantile(0.99)
	if st.Arrivals > 0 {
		v.SimShed = float64(st.Unroutable+st.Aggregate.Shed+st.Aggregate.Lost) / float64(st.Arrivals)
	}
	v.Pass = v.SimP99US <= slo.P99.Microseconds() && v.SimShed <= slo.MaxShed
	return v
}

// queue walks one ordered candidate list looking for its first sim-passing
// entry.
type queue struct {
	idx  []int // candidate indices in ascending predicted watts
	pos  int
	done *Verified
}

// Search runs the two-tier plan search. Tier A scores every candidate and
// prunes to the Pareto frontier; tier B walks three watts-ordered queues —
// the feasible frontier (the plan), the all-stock-clock sweep and the
// all-max-clock sweep (the single-knob baselines) — verifying each queue's
// head with a full simulation until every queue has a passing entry or the
// simulation budget is spent. Each round's batch is fixed before any
// simulation runs and results merge in candidate-index order, so the search
// is a pure function of (workload, SLO, space): worker counts and memo
// warmth change wall clock, never bytes.
func Search(ctx context.Context, o Options) (*Result, error) {
	o.resolve()
	cands := o.Candidates
	if cands == nil {
		cands = o.Space.Enumerate()
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("plan: empty candidate space")
	}
	memo := o.Memo
	if memo == nil {
		memo = NewMemo()
	}

	// Tier A: score everything, take the frontier.
	sur := NewSurrogate()
	preds := make([]Prediction, len(cands))
	for i, c := range cands {
		var err error
		if preds[i], err = sur.Score(c, o.Workload, o.SLO); err != nil {
			return nil, err
		}
	}
	frontier := Frontier(preds)

	res := &Result{Workload: o.Workload, SLO: o.SLO, CandidatesScored: len(cands)}
	byWatts := func(idx []int) {
		sort.SliceStable(idx, func(a, b int) bool {
			if preds[idx[a]].Watts != preds[idx[b]].Watts {
				return preds[idx[a]].Watts < preds[idx[b]].Watts
			}
			return idx[a] < idx[b]
		})
	}
	frontierSorted := append([]int(nil), frontier...)
	byWatts(frontierSorted)
	for _, i := range frontierSorted {
		res.Frontier = append(res.Frontier, Scored{Candidate: cands[i], Pred: preds[i]})
	}

	// The three tier-B queues: feasible frontier, and the two single-knob
	// baseline sweeps at the extreme frequencies of the space.
	loFreq, hiFreq := cands[0].FreqMHz, cands[0].FreqMHz
	for _, c := range cands[1:] {
		if c.FreqMHz < loFreq {
			loFreq = c.FreqMHz
		}
		if c.FreqMHz > hiFreq {
			hiFreq = c.FreqMHz
		}
	}
	var main, stock, over queue
	for _, i := range frontierSorted {
		if preds[i].Feasible {
			main.idx = append(main.idx, i)
		}
	}
	for i := range cands {
		if !preds[i].Feasible {
			continue
		}
		if cands[i].FreqMHz == loFreq {
			stock.idx = append(stock.idx, i)
		}
		if cands[i].FreqMHz == hiFreq {
			over.idx = append(over.idx, i)
		}
	}
	byWatts(stock.idx)
	byWatts(over.idx)

	// Tier B: verify queue heads in refinement rounds until each queue has
	// a passing candidate or the budget is gone.
	verified := make(map[int]*Verified)
	queues := []*queue{&main, &stock, &over}
	advance := func(q *queue) {
		for q.done == nil && q.pos < len(q.idx) {
			v, ok := verified[q.idx[q.pos]]
			if !ok {
				return // head needs a simulation
			}
			if v.Pass {
				q.done = v
				return
			}
			q.pos++
		}
	}
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var need []int
		pending := make(map[int]bool)
		for _, q := range queues {
			advance(q)
			if q.done == nil && q.pos < len(q.idx) && !pending[q.idx[q.pos]] {
				pending[q.idx[q.pos]] = true
				need = append(need, q.idx[q.pos])
			}
		}
		if len(need) == 0 {
			break
		}
		// Memo hits resolve for free; fresh simulations spend budget.
		var cold []int
		for _, i := range need {
			if st, ok := memo.get(Key(cands[i], o.Workload)); ok {
				res.MemoHits++
				v := verify(Scored{Candidate: cands[i], Pred: preds[i]}, st, o.SLO, true)
				verified[i] = v
				res.Verified = append(res.Verified, *v)
				continue
			}
			cold = append(cold, i)
		}
		if len(cold) > 0 {
			if remaining := o.MaxSims - res.SimsRun; len(cold) > remaining {
				cold = cold[:remaining]
			}
			if len(cold) == 0 {
				break // budget exhausted with work outstanding
			}
			stats := make([]*cluster.FleetStats, len(cold))
			errs := make([]error, len(cold))
			workpool.Run(len(cold), o.Workers, func(k int) {
				if err := ctx.Err(); err != nil {
					errs[k] = err
					return
				}
				stats[k], errs[k] = simulate(cands[cold[k]], o.Workload, o.FleetWorkers)
			})
			for k, err := range errs {
				if err != nil {
					return nil, fmt.Errorf("plan: candidate %q: %w", cands[cold[k]].Label(), err)
				}
			}
			// Fold in fixed (batch) order so the memo, the verification log
			// and the counters are schedule-independent.
			for k, i := range cold {
				memo.put(Key(cands[i], o.Workload), stats[k])
				res.SimsRun++
				v := verify(Scored{Candidate: cands[i], Pred: preds[i]}, stats[k], o.SLO, false)
				verified[i] = v
				res.Verified = append(res.Verified, *v)
			}
		}
	}
	for _, q := range queues {
		advance(q)
	}
	res.Chosen, res.StockBest, res.OverBest = main.done, stock.done, over.done
	return res, nil
}
