package plan

import (
	"repro/internal/cluster"
	"repro/internal/platform"
)

// Space parameterises the candidate enumeration. The zero value of any
// field falls back to the default axis, so callers override selectively.
type Space struct {
	// Cycles lists the composition build rules: board i of a size-k fleet
	// runs cycle[i % len(cycle)]. Nil = every distinct registered board
	// homogeneously, plus one mixed cycle over all of them.
	Cycles [][]string
	// MaxBoards bounds the fleet-size axis 1…MaxBoards (0 = 8).
	MaxBoards int
	// Freqs is the operating-frequency axis (nil = the Table II grid).
	Freqs []float64
	// Routers is the routing-policy axis (nil = every built-in).
	Routers []string
	// CacheImages is the per-board cache-budget axis (nil = {0, 4, 8, 12}:
	// the profile budget plus the E12 pressure points).
	CacheImages []int
}

// Enumerate expands the space into candidates in a fixed deterministic
// order: composition-major, then size, frequency, router, cache budget.
func (sp Space) Enumerate() []Candidate {
	cycles := sp.Cycles
	if cycles == nil {
		var mixed []string
		for _, prof := range platform.Boards() {
			cycles = append(cycles, []string{prof.Name})
			mixed = append(mixed, prof.Name)
		}
		if len(mixed) > 1 {
			cycles = append(cycles, mixed)
		}
	}
	maxBoards := sp.MaxBoards
	if maxBoards <= 0 {
		maxBoards = 8
	}
	freqs := sp.Freqs
	if freqs == nil {
		freqs = []float64{100, 140, 180, 200, 240, 280}
	}
	routers := sp.Routers
	if routers == nil {
		routers = cluster.RouterNames()
	}
	caches := sp.CacheImages
	if caches == nil {
		caches = []int{0, 4, 8, 12}
	}
	var out []Candidate
	for _, cycle := range cycles {
		for size := 1; size <= maxBoards; size++ {
			boards := make([]cluster.BoardSpec, size)
			for i := range boards {
				boards[i] = cluster.BoardSpec{Platform: cycle[i%len(cycle)]}
			}
			for _, f := range freqs {
				for _, router := range routers {
					for _, cache := range caches {
						out = append(out, Candidate{
							Boards:      boards,
							FreqMHz:     f,
							Router:      router,
							CacheImages: cache,
						})
					}
				}
			}
		}
	}
	return out
}

// dominates reports whether prediction a is at least as good as b on every
// objective (watts, p99, shed) and strictly better on one.
func dominates(a, b Prediction) bool {
	if a.Watts > b.Watts || a.P99US > b.P99US || a.Shed > b.Shed {
		return false
	}
	return a.Watts < b.Watts || a.P99US < b.P99US || a.Shed < b.Shed
}

// Frontier returns the indices of the Pareto-optimal predictions — minimal
// over (watts, p99, shed) — in input order. Ties (mutually non-dominating
// equals) all stay on the frontier.
func Frontier(preds []Prediction) []int {
	var out []int
	for i, p := range preds {
		dominated := false
		for j, q := range preds {
			if j != i && dominates(q, p) {
				// Exact duplicates never dominate each other (strictness),
				// but a strictly better point removes i.
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, i)
		}
	}
	return out
}
