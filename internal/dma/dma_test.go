package dma

import (
	"testing"

	"repro/internal/axi"
	"repro/internal/clock"
	"repro/internal/dram"
	"repro/internal/sim"
)

// testDRAMParams mirrors the ZedBoard memory-path calibration (the canonical
// copy lives in internal/platform, which this package cannot import).
func testDRAMParams() dram.Params {
	return dram.Params{
		PortBytesPerSec: 824e6,
		RefreshInterval: sim.FromMicroseconds(7.8),
		RefreshStall:    97 * sim.Nanosecond,
	}
}

// cycleSink consumes one 32-bit word per cycle of its clock domain, like the
// ICAP, without any parsing.
type cycleSink struct {
	kernel    *sim.Kernel
	domain    *clock.Domain
	busyUntil sim.Time
	words     int
}

func (s *cycleSink) Feed(words []uint32, done func()) {
	start := s.kernel.Now()
	if s.busyUntil > start {
		start = s.busyUntil
	}
	s.busyUntil = start.Add(sim.Cycles(int64(len(words)), s.domain.Freq()))
	s.words += len(words)
	s.kernel.At(s.busyUntil, done)
}

type bench struct {
	kernel *sim.Kernel
	domain *clock.Domain
	engine *Engine
	sink   *cycleSink
}

func newBench(freqMHz float64) *bench {
	k := sim.NewKernel()
	d := clock.NewDomain("stream", sim.Hz(freqMHz*1e6))
	b := &bench{kernel: k, domain: d}
	b.engine = New(Config{
		Kernel: k,
		Bus:    axi.NewLiteBus(k, 120*sim.Nanosecond, 120*sim.Nanosecond),
		DRAM:   dram.NewController(k, testDRAMParams()),
		Domain: d,

		CDCSyncCycles: 1.1,
	})
	b.sink = &cycleSink{kernel: k, domain: d}
	return b
}

// run transfers n words and returns the engine-level duration in µs.
func (b *bench) run(t *testing.T, nWords int) float64 {
	t.Helper()
	words := make([]uint32, nWords)
	var res *Result
	if err := b.engine.Transfer(words, b.sink, func(r Result) { res = &r }); err != nil {
		t.Fatal(err)
	}
	b.kernel.Run()
	if res == nil {
		t.Fatal("transfer never completed")
	}
	return res.Duration().Microseconds()
}

const paperWords = 132178 // config words of the 528,760-byte bitstream

func TestThroughputICAPBoundRegion(t *testing.T) {
	// Below the knee the engine must deliver ≈4f MB/s at the stream side.
	for _, f := range []float64{100, 140, 180} {
		b := newBench(f)
		us := b.run(t, paperWords)
		mbs := float64(paperWords*4) / us
		want := 4 * f
		if mbs > want {
			t.Errorf("%v MHz: %v MB/s exceeds stream-side bound %v", f, mbs, want)
		}
		if mbs < want*0.99 {
			t.Errorf("%v MHz: %v MB/s more than 1%% below stream bound %v", f, mbs, want)
		}
	}
}

func TestThroughputSaturatesAboveKnee(t *testing.T) {
	// Above the knee the memory path caps the rate near 790 MB/s, and the
	// plateau must rise slightly with frequency (smaller CDC cost).
	rates := map[float64]float64{}
	for _, f := range []float64{240, 280} {
		b := newBench(f)
		us := b.run(t, paperWords)
		rates[f] = float64(paperWords*4) / us
	}
	for f, mbs := range rates {
		if mbs < 780 || mbs > 800 {
			t.Errorf("%v MHz: plateau rate %v MB/s outside [780,800]", f, mbs)
		}
	}
	if rates[280] <= rates[240] {
		t.Errorf("plateau must rise with f: %v @280 vs %v @240", rates[280], rates[240])
	}
}

func TestKneeIsNear200MHz(t *testing.T) {
	// The crossover between stream-bound and memory-bound pacing sits just
	// below 200 MHz: at 200 the achieved rate must fall short of 4f.
	b := newBench(200)
	us := b.run(t, paperWords)
	mbs := float64(paperWords*4) / us
	if mbs > 795 {
		t.Errorf("200 MHz: %v MB/s — memory path should already cap below 4f=800", mbs)
	}
	if mbs < 775 {
		t.Errorf("200 MHz: %v MB/s too low", mbs)
	}
}

func TestShortTransferOverheadDominated(t *testing.T) {
	b := newBench(100)
	us := b.run(t, 32)
	// Programming (0.72) + descriptor (~0.28) + one burst (~0.5) ≈ 1.5 µs.
	if us < 1.0 || us > 3.0 {
		t.Errorf("short transfer took %v µs, want ≈1.5", us)
	}
}

func TestAllWordsReachSink(t *testing.T) {
	b := newBench(150)
	n := 10000 + 7 // non-multiple of burst size exercises the tail burst
	b.run(t, n)
	if b.sink.words != n {
		t.Errorf("sink got %d words, want %d", b.sink.words, n)
	}
	if !b.engine.Completed() {
		t.Error("engine should report completion")
	}
	if b.engine.Last().Bursts != (n+burstWords-1)/burstWords {
		t.Errorf("bursts = %d", b.engine.Last().Bursts)
	}
}

func TestBusyRejectsConcurrentTransfer(t *testing.T) {
	b := newBench(100)
	if err := b.engine.Transfer(make([]uint32, 64), b.sink, nil); err != nil {
		t.Fatal(err)
	}
	if err := b.engine.Transfer(make([]uint32, 64), b.sink, nil); err == nil {
		t.Error("second Transfer while busy must fail")
	}
	b.kernel.Run()
	// After completion, a new transfer is accepted.
	if err := b.engine.Transfer(make([]uint32, 64), b.sink, nil); err != nil {
		t.Errorf("engine still busy after completion: %v", err)
	}
	b.kernel.Run()
}

func TestEmptyTransferRejected(t *testing.T) {
	b := newBench(100)
	if err := b.engine.Transfer(nil, b.sink, nil); err == nil {
		t.Error("empty transfer must fail")
	}
}

func TestIRQGateSuppressesCallback(t *testing.T) {
	k := sim.NewKernel()
	d := clock.NewDomain("stream", 310*sim.MHz)
	gateOpen := false
	e := New(Config{
		Kernel: k,
		Bus:    axi.NewLiteBus(k, 120*sim.Nanosecond, 120*sim.Nanosecond),
		DRAM:   dram.NewController(k, testDRAMParams()),
		Domain: d,

		CDCSyncCycles: 1.1,
		IRQGate:       func() bool { return gateOpen },
	})
	sink := &cycleSink{kernel: k, domain: d}
	called := false
	if err := e.Transfer(make([]uint32, 1000), sink, func(Result) { called = true }); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if called {
		t.Error("callback fired despite closed IRQ gate")
	}
	// The data still moved: the oracle sees completion.
	if !e.Completed() {
		t.Error("transfer should have completed silently")
	}
	if sink.words != 1000 {
		t.Errorf("sink got %d words", sink.words)
	}
}

func TestDeterministicTiming(t *testing.T) {
	run := func() float64 {
		b := newBench(200)
		return b.run(t, 50000)
	}
	if run() != run() {
		t.Error("identical transfers must take identical simulated time")
	}
}
