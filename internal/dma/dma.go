// Package dma models the Xilinx AXI DMA used by the paper: a scatter-gather
// engine whose MM2S channel pulls the partial bitstream from DDR through the
// HP port and streams it into the ICAP across a clock-domain-crossing FIFO.
//
// The engine is deliberately faithful to the saturation behaviour the paper
// measures: its memory side is paced by the DRAM/HP-port slot rate plus one
// CDC handshake per burst in the over-clocked domain, while its stream side
// is paced by the ICAP's one-word-per-cycle consumption. Below ~200 MHz the
// stream side is the bottleneck (throughput = 4·f MB/s); above it the memory
// side saturates at ≈790 MB/s — Table I's knee.
package dma

import (
	"fmt"

	"repro/internal/axi"
	"repro/internal/clock"
	"repro/internal/dram"
	"repro/internal/sim"
)

// Tunables calibrated against Table I (see DESIGN.md §2).
const (
	// BurstBytes is the MM2S burst size (16 beats × 64 bits).
	BurstBytes = 128
	// burstWords is BurstBytes in 32-bit stream words.
	burstWords = BurstBytes / 4
	// programWrites is how many AXI-Lite register writes arm a transfer
	// (control, current-descriptor, tail-descriptor, IRQ enable, …).
	programWrites = 6
	// descriptorBytes is the SG descriptor fetch size.
	descriptorBytes = 64
	// descriptorDecode is the engine's descriptor-processing time.
	descriptorDecode = 200 * sim.Nanosecond
	// irqAssert is the delay from last-beat acceptance to the MM2S
	// completion interrupt.
	irqAssert = 200 * sim.Nanosecond
	// FIFOBytes is the CDC stream FIFO depth.
	FIFOBytes = 512
)

// Sink consumes the stream side of the DMA (the ICAP in this system).
type Sink interface {
	// Feed delivers a burst; done fires when the burst has been clocked in.
	Feed(words []uint32, done func())
}

// Result summarises a completed transfer.
type Result struct {
	// Bytes is the payload moved (stream words × 4).
	Bytes int
	// Bursts is the number of memory bursts issued.
	Bursts int
	// Start is when Transfer was called; Done when the completion
	// interrupt would assert.
	Start, Done sim.Time
}

// Duration returns the transfer's wall time.
func (r Result) Duration() sim.Duration { return r.Done.Sub(r.Start) }

// Config bundles Engine dependencies.
type Config struct {
	Kernel *sim.Kernel
	Bus    *axi.LiteBus
	DRAM   *dram.Controller
	// Domain is the stream-side clock (the over-clocked one); the CDC
	// handshake is paid in this domain.
	Domain *clock.Domain
	// CDCSyncCycles is the per-burst clock-domain-crossing handshake cost in
	// cycles of the stream domain (a calibrated platform property; the
	// ZedBoard's is 1.1). Must be positive.
	CDCSyncCycles float64
	// IRQGate reports whether the completion interrupt can reach the PS;
	// nil means always. The platform wires it to the timing model so that
	// control-path violations lose the interrupt (Table I's hang rows).
	IRQGate func() bool
}

// Engine is one AXI DMA instance (MM2S channel).
//
// The per-burst machinery is a flat cursor-driven pump: exactly one burst is
// in the issue pipeline (reserve FIFO space → memory grant → CDC handshake)
// at a time, so its state lives in Engine fields and every pipeline stage
// reuses a continuation bound once at construction. Only the drain side can
// have several bursts outstanding (the FIFO holds up to four), and those need
// nothing per-burst beyond a fixed-size Release. Steady-state streaming
// therefore allocates nothing per burst.
type Engine struct {
	kernel *sim.Kernel
	bus    *axi.LiteBus
	mem    *dram.Controller
	domain *clock.Domain
	gate   func() bool
	fifo   *axi.StreamFIFO
	master int

	busy      bool
	completed bool
	last      Result

	// cursor state of the in-flight transfer
	words  []uint32
	offset int
	bursts int
	sink   Sink
	done   func(Result)
	start  sim.Time

	// cdcDelay is the CDC handshake cost at the stream domain's current
	// frequency, refreshed via the domain's OnChange hook so each burst
	// still observes frequency changes at its scheduling point without
	// recomputing the delay per burst.
	cdcDelay sim.Duration

	// issue-stage state of the burst currently in the pipeline.
	curBurst  []uint32
	curBytes  int
	curLast   bool
	lastBytes int

	// continuations bound once in New.
	afterProgram    func()
	afterDescriptor func()
	onReserve       func()
	onGrant         func()
	onCDC           func()
	drainFull       func()
	drainLast       func()
	finishFn        func()
}

// New creates an engine.
func New(cfg Config) *Engine {
	if cfg.Kernel == nil || cfg.Bus == nil || cfg.DRAM == nil || cfg.Domain == nil {
		panic("dma: missing dependency")
	}
	if cfg.CDCSyncCycles <= 0 {
		panic("dma: non-positive CDC sync cycles")
	}
	gate := cfg.IRQGate
	if gate == nil {
		gate = func() bool { return true }
	}
	e := &Engine{
		kernel: cfg.Kernel,
		bus:    cfg.Bus,
		mem:    cfg.DRAM,
		domain: cfg.Domain,
		gate:   gate,
		fifo:   axi.NewStreamFIFO(FIFOBytes),
		master: cfg.DRAM.RegisterMaster(),
	}
	cdc := cfg.CDCSyncCycles
	e.cdcDelay = axi.CDCDelay(cdc, e.domain.Freq())
	e.domain.OnChange(func(f sim.Hz) { e.cdcDelay = axi.CDCDelay(cdc, f) })

	// 2. The engine fetches its SG descriptor from DDR, then decodes it and
	// issues the first burst.
	issueFn := e.issue
	e.afterDescriptor = func() { e.kernel.Schedule(descriptorDecode, issueFn) }
	e.afterProgram = func() { e.mem.Request(e.master, descriptorBytes, e.afterDescriptor) }
	// Burst pipeline: FIFO space reserved → memory burst granted → CDC
	// handshake retired → data committed and fed to the sink.
	e.onReserve = func() { e.mem.Request(e.master, e.curBytes, e.onGrant) }
	e.onGrant = func() { e.kernel.Schedule(e.cdcDelay, e.onCDC) }
	e.onCDC = e.commitBurst
	e.drainFull = func() { e.fifo.Release(BurstBytes) }
	e.drainLast = func() {
		e.fifo.Release(e.lastBytes)
		e.finish()
	}
	e.finishFn = e.retire
	return e
}

// Busy reports whether a transfer is in flight.
func (e *Engine) Busy() bool { return e.busy }

// Completed reports whether the last transfer's data fully drained
// (independent of whether the interrupt was delivered) — the test oracle for
// hang mode.
func (e *Engine) Completed() bool { return e.completed }

// Last returns the last transfer's result (valid once Completed).
func (e *Engine) Last() Result { return e.last }

// Transfer streams words into sink. done fires at completion-interrupt time
// and is *suppressed* when the IRQ gate is closed — exactly like hardware,
// where the caller's only recourse is a timeout. It returns an error if the
// engine is busy.
func (e *Engine) Transfer(words []uint32, sink Sink, done func(Result)) error {
	if e.busy {
		return fmt.Errorf("dma: engine busy")
	}
	if len(words) == 0 {
		return fmt.Errorf("dma: empty transfer")
	}
	e.busy = true
	e.completed = false
	e.words = words
	e.offset = 0
	e.bursts = 0
	e.sink = sink
	e.done = done
	e.start = e.kernel.Now()

	// 1. The PS programs the engine over AXI-Lite; the pre-bound chain then
	// fetches the SG descriptor and issues the first burst.
	e.bus.WriteN(programWrites, e.afterProgram)
	return nil
}

// issue launches the next memory burst; it self-paces on the CDC handshake.
// Exactly one burst occupies the issue pipeline at a time, so its state
// lives in Engine fields read by the pre-bound stage continuations.
func (e *Engine) issue() {
	if e.offset >= len(e.words) {
		return
	}
	n := burstWords
	if rem := len(e.words) - e.offset; n > rem {
		n = rem
	}
	e.curBurst = e.words[e.offset : e.offset+n]
	e.offset += n
	e.bursts++
	e.curBytes = n * 4
	e.curLast = e.offset >= len(e.words)
	e.fifo.WhenFree(e.curBytes, e.onReserve)
}

// commitBurst runs when the burst's CDC handshake retires: the data becomes
// visible in the stream FIFO and is handed to the sink. Every burst except
// the final one is a full BurstBytes, so the drain continuations are fixed.
func (e *Engine) commitBurst() {
	e.fifo.Commit(e.curBytes)
	if e.curLast {
		e.lastBytes = e.curBytes
		e.sink.Feed(e.curBurst, e.drainLast)
		return
	}
	e.sink.Feed(e.curBurst, e.drainFull)
	// The next burst issues once this one's handshake retired.
	e.issue()
}

// finish retires the transfer and (gate permitting) delivers the IRQ.
func (e *Engine) finish() {
	e.kernel.Schedule(irqAssert, e.finishFn)
}

func (e *Engine) retire() {
	e.busy = false
	e.completed = true
	e.last = Result{
		Bytes:  len(e.words) * 4,
		Bursts: e.bursts,
		Start:  e.start,
		Done:   e.kernel.Now(),
	}
	e.words = nil
	e.curBurst = nil
	e.sink = nil
	if e.gate() && e.done != nil {
		e.done(e.last)
	}
	e.done = nil
}
