package timing

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// testModel mirrors the ZedBoard timing calibration (the canonical copy
// lives in internal/platform, which this package cannot import).
func testModel() *Model {
	return &Model{
		Control:    Path{Delay40: sim.FromNanoseconds(1e3 / 300.0), TempCoeff: 2.8e-4, VoltCoeff: 0.45},
		Data:       Path{Delay40: sim.FromNanoseconds(1e3 / 315.0), TempCoeff: 2.8e-4, VoltCoeff: 0.45},
		FreezeFreq: 500 * sim.MHz,
		VNom:       1.0,
	}
}

func mhz(f float64) sim.Hz { return sim.Hz(f * 1e6) }

func TestTableIOutcomesAt40C(t *testing.T) {
	// Table I of the paper: 100–280 MHz work, 310 MHz hangs (no interrupt,
	// CRC valid), 320 and 360 MHz corrupt the bitstream.
	m := testModel()
	tests := []struct {
		freqMHz float64
		want    Outcome
	}{
		{100, OK},
		{140, OK},
		{180, OK},
		{200, OK},
		{240, OK},
		{280, OK},
		{310, Hang},
		{320, Corrupt},
		{360, Corrupt},
	}
	for _, tt := range tests {
		if got := m.ClassifyNominal(mhz(tt.freqMHz), 40); got != tt.want {
			t.Errorf("Classify(%v MHz, 40°C) = %v, want %v", tt.freqMHz, got, tt.want)
		}
	}
}

func TestTemperatureStressMatrix(t *testing.T) {
	// Sec. IV-A: frequencies up to 310 MHz, temperatures 40–100 °C in 10 °C
	// steps. Every cell keeps CRC-valid data (OK or Hang) EXCEPT
	// 310 MHz @ 100 °C, which must corrupt.
	m := testModel()
	for _, fMHz := range []float64{100, 140, 180, 200, 240, 280, 310} {
		for temp := 40.0; temp <= 100; temp += 10 {
			got := m.ClassifyNominal(mhz(fMHz), temp)
			dataValid := got == OK || got == Hang
			if fMHz == 310 && temp == 100 {
				if dataValid {
					t.Errorf("310 MHz @ 100°C: got %v, want data corruption", got)
				}
				continue
			}
			if !dataValid {
				t.Errorf("%v MHz @ %v°C: got %v, want data-valid", fMHz, temp, got)
			}
		}
	}
}

func TestOperationalRangeUnaffectedByTemperature(t *testing.T) {
	// 100–280 MHz must be fully operational (interrupt fires) at every
	// tested temperature: the paper's stress tests all succeeded there.
	m := testModel()
	for _, fMHz := range []float64{100, 140, 180, 200, 240, 280} {
		for temp := 40.0; temp <= 100; temp += 10 {
			if got := m.ClassifyNominal(mhz(fMHz), temp); got != OK {
				t.Errorf("%v MHz @ %v°C: got %v, want OK", fMHz, temp, got)
			}
		}
	}
}

func TestPathDelayDerating(t *testing.T) {
	p := Path{Delay40: 1000 * sim.Picosecond, TempCoeff: 1e-3, VoltCoeff: 0.5}
	if d := p.Delay(40, 1.0, 1.0); d != 1000 {
		t.Errorf("baseline delay = %v, want 1000ps", d)
	}
	if d := p.Delay(140, 1.0, 1.0); d != 1100 {
		t.Errorf("hot delay = %v, want 1100ps (+10%%)", d)
	}
	if d := p.Delay(40, 0.9, 1.0); d != 1050 {
		t.Errorf("undervolted delay = %v, want 1050ps (+5%%)", d)
	}
	// Over-volting speeds the path up.
	if d := p.Delay(40, 1.1, 1.0); d != 950 {
		t.Errorf("overvolted delay = %v, want 950ps", d)
	}
}

func TestMaxFreqInverseOfDelay(t *testing.T) {
	p := Path{Delay40: 2 * sim.Nanosecond}
	f := p.MaxFreq(40, 1.0, 1.0)
	if f < 499*sim.MHz || f > 501*sim.MHz {
		t.Errorf("MaxFreq = %v, want 500MHz", f)
	}
}

func TestCorruptionRate(t *testing.T) {
	m := testModel()
	if r := m.CorruptionRate(mhz(280), 40, 1.0); r != 0 {
		t.Errorf("280 MHz @ 40°C corruption = %v, want 0", r)
	}
	if r := m.CorruptionRate(mhz(310), 40, 1.0); r != 0 {
		t.Errorf("310 MHz @ 40°C corruption = %v, want 0 (hang only)", r)
	}
	r320 := m.CorruptionRate(mhz(320), 40, 1.0)
	if r320 <= 0 {
		t.Errorf("320 MHz @ 40°C corruption = %v, want > 0", r320)
	}
	r360 := m.CorruptionRate(mhz(360), 40, 1.0)
	if r360 <= r320 {
		t.Errorf("corruption must grow with overdrive: %v !> %v", r360, r320)
	}
	// With a 529 KB bitstream (132k words), even the 320 MHz rate must make
	// a clean transfer astronomically unlikely.
	if r320 < 1e-4 {
		t.Errorf("320 MHz corruption rate %v too low to guarantee CRC detection", r320)
	}
}

func TestFreezeOutcome(t *testing.T) {
	m := testModel()
	m.FreezeFreq = 300 * sim.MHz // VF-2012-style platform
	if got := m.ClassifyNominal(mhz(350), 40); got != Freeze {
		t.Errorf("got %v, want Freeze", got)
	}
}

func TestGuardBandFreq(t *testing.T) {
	m := testModel()
	g := m.GuardBandFreq(100, 0.10)
	// Data/control limit at 100 °C is ≈295 MHz (control path), minus 10%.
	if g < mhz(255) || g > mhz(275) {
		t.Errorf("GuardBandFreq(100°C, 10%%) = %v, want ≈265 MHz", g)
	}
	// The guard-banded frequency must be fully operational at the worst
	// temperature — that is its contract.
	if got := m.ClassifyNominal(g, 100); got != OK {
		t.Errorf("guard-band frequency %v not OK at 100°C: %v", g, got)
	}
}

func TestOutcomeString(t *testing.T) {
	tests := []struct {
		o    Outcome
		want string
	}{
		{OK, "ok"}, {Hang, "hang"}, {Corrupt, "corrupt"}, {Freeze, "freeze"}, {Outcome(99), "Outcome(99)"},
	}
	for _, tt := range tests {
		if got := tt.o.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", int(tt.o), got, tt.want)
		}
	}
}

func TestMonotonicityProperties(t *testing.T) {
	m := testModel()
	// Property 1: outcome severity is monotone in frequency at fixed T.
	severity := func(o Outcome) int {
		switch o {
		case OK:
			return 0
		case Hang:
			return 1
		case Corrupt:
			return 2
		default:
			return 3
		}
	}
	prop1 := func(a, b uint16, tRaw uint8) bool {
		f1 := float64(100 + a%400)
		f2 := float64(100 + b%400)
		if f1 > f2 {
			f1, f2 = f2, f1
		}
		temp := float64(40 + tRaw%61)
		return severity(m.ClassifyNominal(mhz(f1), temp)) <= severity(m.ClassifyNominal(mhz(f2), temp))
	}
	if err := quick.Check(prop1, &quick.Config{MaxCount: 300}); err != nil {
		t.Errorf("severity not monotone in frequency: %v", err)
	}
	// Property 2: severity is monotone in temperature at fixed f.
	prop2 := func(fRaw uint16, a, b uint8) bool {
		f := mhz(float64(100 + fRaw%400))
		t1 := float64(40 + a%61)
		t2 := float64(40 + b%61)
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		return severity(m.ClassifyNominal(f, t1)) <= severity(m.ClassifyNominal(f, t2))
	}
	if err := quick.Check(prop2, &quick.Config{MaxCount: 300}); err != nil {
		t.Errorf("severity not monotone in temperature: %v", err)
	}
}

func TestActiveFeedbackVoltageHelps(t *testing.T) {
	// HP-2011 uses active feedback to keep voltage nominal; a sagging rail
	// must strictly reduce the data-path limit.
	m := testModel()
	fNom := m.Data.MaxFreq(40, 1.0, 1.0)
	fSag := m.Data.MaxFreq(40, 0.95, 1.0)
	if fSag >= fNom {
		t.Errorf("voltage sag should lower the limit: %v !< %v", fSag, fNom)
	}
}
