// Package timing models why over-clocking eventually fails: the DMA/ICAP
// control and data paths have critical-path delays that grow with die
// temperature (and shrink with supply voltage), and a clock period shorter
// than the path delay produces a timing violation.
//
// Two distinct paths explain the paper's observations (Table I, Sec. IV-A):
//
//   - the CONTROL path (completion-interrupt logic) fails first: at 40 °C it
//     stops meeting timing around 300 MHz, so at 310 MHz the transfer
//     completes but the interrupt is never asserted ("N/A no interrupt",
//     CRC still valid);
//   - the DATA path fails around 315 MHz at 40 °C, so at 320 MHz and above
//     the bitstream is corrupted in flight and the CRC read-back reports an
//     error ("not valid").
//
// Temperature derating moves both thresholds down; the data path crosses
// 310 MHz between 90 °C and 100 °C, reproducing the single failing cell of
// the paper's temperature-stress matrix (310 MHz @ 100 °C).
package timing

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// Outcome classifies a transfer attempt at a given operating point.
type Outcome int

const (
	// OK: all paths meet timing; transfer completes and interrupts fire.
	OK Outcome = iota + 1
	// Hang: the control path violates timing. Data reaches the
	// configuration memory intact but the completion interrupt is lost, so
	// the software-visible latency is unmeasurable.
	Hang
	// Corrupt: the data path violates timing; configuration words are
	// corrupted and the CRC read-back detects an invalid bitstream.
	Corrupt
	// Freeze: gross violation that wedges the configuration interface
	// entirely (observed by VF-2012 above 300 MHz). The device needs a full
	// reconfiguration to recover.
	Freeze
)

// String renders the outcome.
func (o Outcome) String() string {
	switch o {
	case OK:
		return "ok"
	case Hang:
		return "hang"
	case Corrupt:
		return "corrupt"
	case Freeze:
		return "freeze"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Path is one critical path with first-order temperature and voltage
// derating: delay(T,V) = Delay40 · (1 + TempCoeff·(T−40)) · (1 + VoltCoeff·(Vnom−V)).
type Path struct {
	// Delay40 is the path delay at 40 °C and nominal voltage.
	Delay40 sim.Duration
	// TempCoeff is the fractional delay increase per °C above 40 °C.
	TempCoeff float64
	// VoltCoeff is the fractional delay increase per volt below nominal.
	VoltCoeff float64
}

// Delay returns the derated path delay at die temperature tempC (°C) and
// supply voltage vdd (V), with nominal voltage vnom.
func (p Path) Delay(tempC, vdd, vnom float64) sim.Duration {
	d := float64(p.Delay40)
	d *= 1 + p.TempCoeff*(tempC-40)
	d *= 1 + p.VoltCoeff*(vnom-vdd)
	return sim.Duration(math.Round(d))
}

// MaxFreq returns the highest frequency at which the path still meets
// timing at the given operating point.
func (p Path) MaxFreq(tempC, vdd, vnom float64) sim.Hz {
	d := p.Delay(tempC, vdd, vnom)
	if d <= 0 {
		return sim.Hz(math.Inf(1))
	}
	return sim.Hz(1e12 / float64(d))
}

// Model holds the calibrated paths of the over-clocked configuration
// circuitry (DMA + ICAP + interrupt logic).
type Model struct {
	// Control is the completion-interrupt path (fails first).
	Control Path
	// Data is the bitstream data path.
	Data Path
	// FreezeFreq is the frequency above which the configuration interface
	// wedges entirely. The paper's platform never froze up to 360 MHz; the
	// VF-2012 baseline freezes above 300 MHz.
	FreezeFreq sim.Hz
	// VNom is the nominal PL supply voltage (VCCINT).
	VNom float64
}

// The calibrated path delays for each device live in internal/platform (the
// paper's Zynq-7020: control path to 300 MHz and data path to 315 MHz at
// 40 °C, derated 2.8e-4/°C, which puts the data-path limit at 310.6 MHz @
// 90 °C and 309.8 MHz @ 100 °C — the single failing stress cell).

// Classify returns the outcome of operating the configuration path at
// frequency f, die temperature tempC and supply voltage vdd.
func (m *Model) Classify(f sim.Hz, tempC, vdd float64) Outcome {
	if f >= m.FreezeFreq {
		return Freeze
	}
	period := float64(f.Period())
	if period < float64(m.Data.Delay(tempC, vdd, m.VNom)) {
		return Corrupt
	}
	if period < float64(m.Control.Delay(tempC, vdd, m.VNom)) {
		return Hang
	}
	return OK
}

// ClassifyNominal is Classify at nominal voltage.
func (m *Model) ClassifyNominal(f sim.Hz, tempC float64) Outcome {
	return m.Classify(f, tempC, m.VNom)
}

// CorruptionRate returns the probability that any given 32-bit configuration
// word is corrupted when the data path violates timing. It grows with the
// relative violation: marginal violations flip occasional bits, gross ones
// destroy the stream. Returns 0 when the data path meets timing.
func (m *Model) CorruptionRate(f sim.Hz, tempC, vdd float64) float64 {
	limit := m.Data.MaxFreq(tempC, vdd, m.VNom)
	if f <= limit {
		return 0
	}
	over := (float64(f) - float64(limit)) / float64(limit)
	// 1.6% overdrive (320 vs 315) ⇒ ~3% of words corrupted: more than
	// enough for the CRC to catch every transfer deterministically.
	rate := over * 2.0
	if rate > 1 {
		rate = 1
	}
	return rate
}

// GuardBandFreq returns the highest "safe" frequency with the given relative
// margin at the worst-case temperature. The optimizer uses it to derate its
// recommendation (e.g. 10% margin at 100 °C).
func (m *Model) GuardBandFreq(worstTempC, margin float64) sim.Hz {
	ctrl := m.Control.MaxFreq(worstTempC, m.VNom, m.VNom)
	data := m.Data.MaxFreq(worstTempC, m.VNom, m.VNom)
	limit := ctrl
	if data < limit {
		limit = data
	}
	return sim.Hz(float64(limit) * (1 - margin))
}
