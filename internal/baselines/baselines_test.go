package baselines

import (
	"math"
	"testing"
)

const paperSize = 528760 // Table I bitstream

func TestTableIIIRows(t *testing.T) {
	// Table III: design, platform, best frequency, throughput.
	tests := []struct {
		ctrl     Controller
		platform string
		bestMHz  float64
		wantMBs  float64
		size     int
	}{
		{VF2012{}, "Virtex-6", 210, 839, paperSize},
		{HP2011{}, "Virtex-5", 133, 419, paperSize},
		{HKT2011{}, "Virtex-5", 550, 2200, 50 * 1024},
		{ThisWork{}, "Zynq-7000", 280, 790, paperSize},
	}
	for _, tt := range tests {
		if tt.ctrl.Platform() != tt.platform {
			t.Errorf("%s: platform %q", tt.ctrl.Name(), tt.ctrl.Platform())
		}
		att, err := tt.ctrl.Load(tt.size, tt.bestMHz)
		if err != nil {
			t.Fatalf("%s: %v", tt.ctrl.Name(), err)
		}
		if !att.OK {
			t.Fatalf("%s: load failed at its best frequency", tt.ctrl.Name())
		}
		if math.Abs(att.ThroughputMBs-tt.wantMBs)/tt.wantMBs > 0.01 {
			t.Errorf("%s: %v MB/s, paper %v", tt.ctrl.Name(), att.ThroughputMBs, tt.wantMBs)
		}
	}
}

func TestVF2012FailureModes(t *testing.T) {
	v := VF2012{}
	// Nominal matches the paper: ≈400 MB/s at 100 MHz.
	att, err := v.Load(paperSize, 100)
	if err != nil || !att.OK {
		t.Fatalf("nominal load: %+v %v", att, err)
	}
	if math.Abs(att.ThroughputMBs-400) > 2 {
		t.Errorf("100 MHz throughput = %v, want ≈400", att.ThroughputMBs)
	}
	// Above 210: silent failure (no CRC!).
	att, err = v.Load(paperSize, 250)
	if err != nil {
		t.Fatal(err)
	}
	if att.OK || att.Detected {
		t.Errorf("250 MHz: %+v — failure must be silent", att)
	}
	// Above 300: freeze.
	att, _ = v.Load(paperSize, 320)
	if !att.Froze {
		t.Error("320 MHz must freeze")
	}
	if v.HasCRC() {
		t.Error("VF-2012 has no CRC")
	}
}

func TestHP2011ActiveFeedbackClamps(t *testing.T) {
	h := HP2011{}
	att1, _ := h.Load(paperSize, 133)
	att2, _ := h.Load(paperSize, 400) // feedback clamps
	if !att2.OK {
		t.Fatal("clamped load should succeed")
	}
	if att2.ThroughputMBs != att1.ThroughputMBs {
		t.Errorf("clamp should cap at 133 MHz: %v vs %v", att2.ThroughputMBs, att1.ThroughputMBs)
	}
}

func TestHKT2011FIFOLimit(t *testing.T) {
	k := HKT2011{}
	if _, err := k.Load(paperSize, 550); err == nil {
		t.Error("529 KB must not fit the 50 KB FIFO")
	}
	att, err := k.Load(40*1024, 550)
	if err != nil || !att.OK {
		t.Fatalf("small load: %+v %v", att, err)
	}
	if math.Abs(att.ThroughputMBs-2200) > 1 {
		t.Errorf("HKT small load throughput = %v, want 2200", att.ThroughputMBs)
	}
	att, _ = k.Load(40*1024, 600)
	if att.OK {
		t.Error("beyond 550 MHz must fail")
	}
}

func TestThisWorkFailureTaxonomy(t *testing.T) {
	w := ThisWork{}
	att, _ := w.Load(paperSize, 310)
	if att.OK || !att.Detected {
		t.Errorf("310 MHz: %+v — hang must be detected", att)
	}
	att, _ = w.Load(paperSize, 330)
	if att.OK || !att.Detected {
		t.Errorf("330 MHz: %+v — corruption must be detected", att)
	}
	if !w.HasCRC() {
		t.Error("this work has CRC")
	}
}

func TestOnlyThisWorkDetectsOverdriveOnLargeBitstreams(t *testing.T) {
	// The robustness claim behind Table III: push every controller 20%
	// past its best frequency with a real-size bitstream; only designs
	// with CRC (or feedback) notice or avoid the failure.
	for _, ctrl := range All() {
		if ctrl.MaxBitstreamBytes() != 0 && paperSize > ctrl.MaxBitstreamBytes() {
			continue // HKT-2011 cannot even attempt it
		}
		att, err := ctrl.Load(paperSize, ctrl.BestMHz()*1.2)
		if err != nil {
			t.Fatalf("%s: %v", ctrl.Name(), err)
		}
		safe := att.OK || att.Detected || att.Froze
		if ctrl.HasCRC() && !safe {
			t.Errorf("%s: undetected failure despite CRC/feedback", ctrl.Name())
		}
		if ctrl.Name() == "VF-2012" && (att.OK || att.Detected) {
			t.Errorf("VF-2012 at 252 MHz should fail silently: %+v", att)
		}
	}
}

func TestArgValidation(t *testing.T) {
	for _, ctrl := range All() {
		if _, err := ctrl.Load(0, 100); err == nil {
			t.Errorf("%s: zero size accepted", ctrl.Name())
		}
		if _, err := ctrl.Load(1024, 0); err == nil {
			t.Errorf("%s: zero frequency accepted", ctrl.Name())
		}
	}
}

func TestAllOrderMatchesPaperTable(t *testing.T) {
	names := []string{"VF-2012", "HP-2011", "HKT-2011", "This work"}
	for i, ctrl := range All() {
		if ctrl.Name() != names[i] {
			t.Errorf("row %d = %s, want %s", i, ctrl.Name(), names[i])
		}
	}
}
