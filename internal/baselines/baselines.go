// Package baselines models the three prior DPR controllers the paper
// compares against in Table III, behind one interface, each with the
// platform constraints its publication reports:
//
//   - VF-2012 (Vipin & Fahmy, FPT'12): ZyCAP-style over-clocked ICAP
//     controller on Virtex-6 — linear scaling to 838.55 MB/s at 210 MHz,
//     reconfiguration fails above that, and initiating a transfer above
//     300 MHz freezes the whole FPGA. No CRC: failures are silent.
//   - HP-2011 (Hoffman & Pattichis, IJRC'11): multi-port memory controller
//     ICAP on Virtex-5 with over-clocking under active feedback (voltage
//     and temperature held nominal) — ≈419 MB/s at 133 MHz.
//   - HKT-2011 (Hansen, Koch & Torresen, IPDPSW'11): enhanced ICAP hard
//     macro on Virtex-5 at 550 MHz — 2200 MB/s, but only for bitstreams
//     that fit the on-chip FIFO (≤50 KB) and with no processor in the loop.
//
// The models are analytic (their platforms are not ours to simulate
// cycle-by-cycle), parametrised directly from the published numbers, and
// expose the same failure taxonomy as the core controller so Table III and
// the robustness comparison can be regenerated.
package baselines

import (
	"fmt"

	"repro/internal/core"
)

// Attempt is the outcome of asking a controller model to move a bitstream.
type Attempt struct {
	// LatencyUS is the configuration latency (0 if the transfer failed).
	LatencyUS float64
	// ThroughputMBs is size/latency for successful transfers.
	ThroughputMBs float64
	// OK reports whether the configuration completed correctly.
	OK bool
	// Detected reports whether a failure would be *noticed* by the system
	// (true for CRC-checked designs; VF-2012 fails silently).
	Detected bool
	// Froze reports a whole-FPGA freeze requiring full reconfiguration.
	Froze bool
}

// Controller is the common surface of the Table III designs.
type Controller interface {
	// Name is the paper's tag for the design.
	Name() string
	// Platform is the FPGA family it was evaluated on.
	Platform() string
	// NominalMHz is the specified ICAP clock; BestMHz the highest the
	// publication demonstrated working.
	NominalMHz() float64
	BestMHz() float64
	// HasCRC reports whether failed configurations are detected.
	HasCRC() bool
	// MaxBitstreamBytes is the largest loadable image (0 = unlimited).
	MaxBitstreamBytes() int
	// Load attempts a transfer of sizeBytes at freqMHz.
	Load(sizeBytes int, freqMHz float64) (Attempt, error)
}

// Verify interface compliance.
var (
	_ Controller = (*VF2012)(nil)
	_ Controller = (*HP2011)(nil)
	_ Controller = (*HKT2011)(nil)
	_ Controller = (*ThisWork)(nil)
)

// VF2012 models the ZyCAP-style high-speed open-source controller.
type VF2012 struct{}

// Name implements Controller.
func (VF2012) Name() string { return "VF-2012" }

// Platform implements Controller.
func (VF2012) Platform() string { return "Virtex-6" }

// NominalMHz implements Controller.
func (VF2012) NominalMHz() float64 { return 100 }

// BestMHz implements Controller.
func (VF2012) BestMHz() float64 { return 210 }

// HasCRC implements Controller: no integrity checking.
func (VF2012) HasCRC() bool { return false }

// MaxBitstreamBytes implements Controller.
func (VF2012) MaxBitstreamBytes() int { return 0 }

// Load implements Controller. Published scaling: 400 MB/s at 100 MHz to
// 838.55 MB/s at 210 MHz (3.9931 MB/s per MHz), failure above 210 MHz,
// freeze above 300 MHz. Failures are undetected (no CRC).
func (v VF2012) Load(sizeBytes int, freqMHz float64) (Attempt, error) {
	if err := checkArgs(sizeBytes, freqMHz); err != nil {
		return Attempt{}, err
	}
	switch {
	case freqMHz > 300:
		return Attempt{Froze: true}, nil
	case freqMHz > 210:
		return Attempt{}, nil // failed, silently
	default:
		tput := 838.55 / 210 * freqMHz
		lat := float64(sizeBytes) / tput
		return Attempt{LatencyUS: lat, ThroughputMBs: tput, OK: true, Detected: true}, nil
	}
}

// HP2011 models the multi-port-memory-controller design with active
// feedback.
type HP2011 struct{}

// Name implements Controller.
func (HP2011) Name() string { return "HP-2011" }

// Platform implements Controller.
func (HP2011) Platform() string { return "Virtex-5" }

// NominalMHz implements Controller.
func (HP2011) NominalMHz() float64 { return 100 }

// BestMHz implements Controller.
func (HP2011) BestMHz() float64 { return 133 }

// HasCRC implements Controller: active feedback keeps the operating point
// safe rather than checking data, but failures are detected.
func (HP2011) HasCRC() bool { return true }

// MaxBitstreamBytes implements Controller.
func (HP2011) MaxBitstreamBytes() int { return 0 }

// Load implements Controller: 419 MB/s at 133 MHz (≈78.8% bus efficiency
// through the MPMC); the active feedback refuses operating points beyond
// what the monitors clear, so higher requests clamp to 133 MHz rather than
// failing.
func (h HP2011) Load(sizeBytes int, freqMHz float64) (Attempt, error) {
	if err := checkArgs(sizeBytes, freqMHz); err != nil {
		return Attempt{}, err
	}
	f := freqMHz
	if f > 133 {
		f = 133 // feedback clamps the clock
	}
	tput := 419.0 / 133 * f
	lat := float64(sizeBytes) / tput
	return Attempt{LatencyUS: lat, ThroughputMBs: tput, OK: true, Detected: true}, nil
}

// HKT2011 models the enhanced ICAP hard macro.
type HKT2011 struct{}

// Name implements Controller.
func (HKT2011) Name() string { return "HKT-2011" }

// Platform implements Controller.
func (HKT2011) Platform() string { return "Virtex-5" }

// NominalMHz implements Controller.
func (HKT2011) NominalMHz() float64 { return 100 }

// BestMHz implements Controller.
func (HKT2011) BestMHz() float64 { return 550 }

// HasCRC implements Controller.
func (HKT2011) HasCRC() bool { return false }

// MaxBitstreamBytes implements Controller: the bitstream must fit the
// on-chip FIFO.
func (HKT2011) MaxBitstreamBytes() int { return 50 * 1024 }

// Load implements Controller: 4 bytes/cycle up to 550 MHz, FIFO-resident
// images only (the paper questions whether 2200 MB/s survives a DMA for
// megabyte bitstreams — the model enforces exactly that caveat).
func (k HKT2011) Load(sizeBytes int, freqMHz float64) (Attempt, error) {
	if err := checkArgs(sizeBytes, freqMHz); err != nil {
		return Attempt{}, err
	}
	if sizeBytes > k.MaxBitstreamBytes() {
		return Attempt{}, fmt.Errorf("baselines: HKT-2011 FIFO holds 50 KB, bitstream is %d bytes", sizeBytes)
	}
	if freqMHz > 550 {
		return Attempt{}, nil
	}
	tput := 4 * freqMHz
	lat := float64(sizeBytes) / tput
	return Attempt{LatencyUS: lat, ThroughputMBs: tput, OK: true, Detected: true}, nil
}

// ThisWork adapts the paper's (simulated) system to the comparison surface
// using the calibrated analytic latency model; the DES-backed numbers come
// from the core package and match it within tolerance.
type ThisWork struct{}

// Name implements Controller.
func (ThisWork) Name() string { return "This work" }

// Platform implements Controller.
func (ThisWork) Platform() string { return "Zynq-7000" }

// NominalMHz implements Controller.
func (ThisWork) NominalMHz() float64 { return 100 }

// BestMHz implements Controller.
func (ThisWork) BestMHz() float64 { return 280 }

// HasCRC implements Controller: the point of the paper.
func (ThisWork) HasCRC() bool { return true }

// MaxBitstreamBytes implements Controller.
func (ThisWork) MaxBitstreamBytes() int { return 0 }

// Load implements Controller via the calibrated model: hang 300–315 MHz,
// corrupt above, detected either way thanks to the CRC read-back.
func (w ThisWork) Load(sizeBytes int, freqMHz float64) (Attempt, error) {
	if err := checkArgs(sizeBytes, freqMHz); err != nil {
		return Attempt{}, err
	}
	switch {
	case freqMHz >= 315:
		return Attempt{Detected: true}, nil // CRC says not valid
	case freqMHz >= 300:
		return Attempt{Detected: true}, nil // no interrupt; polled CRC valid but latency unusable
	default:
		lat := core.ExpectedLatencyUS(sizeBytes, freqMHz)
		return Attempt{
			LatencyUS:     lat,
			ThroughputMBs: float64(sizeBytes) / lat,
			OK:            true,
			Detected:      true,
		}, nil
	}
}

func checkArgs(sizeBytes int, freqMHz float64) error {
	if sizeBytes <= 0 {
		return fmt.Errorf("baselines: non-positive bitstream size %d", sizeBytes)
	}
	if freqMHz <= 0 {
		return fmt.Errorf("baselines: non-positive frequency %v", freqMHz)
	}
	return nil
}

// All returns the Table III line-up in the paper's row order.
func All() []Controller {
	return []Controller{VF2012{}, HP2011{}, HKT2011{}, ThisWork{}}
}
