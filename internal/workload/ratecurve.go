package workload

import (
	"fmt"

	"repro/internal/sim"
)

// This file holds the time-varying side of the arrival model: a RateCurve
// shapes the offered rate over a simulated day (diurnal profiles, flash
// crowds), and ArrivalSpec composes it with the burst/skew machinery by
// thinning — candidates are drawn at the curve's peak rate and accepted
// with probability rate(t)/peak, the standard non-homogeneous-Poisson
// construction. A nil curve keeps the stationary generators bit for bit.

// RatePoint anchors a piecewise-linear rate curve: at time At the offered
// rate is RatePerSec, and the rate interpolates linearly between anchors.
type RatePoint struct {
	// At is the anchor's position on the arrival timeline.
	At sim.Duration
	// RatePerSec is the offered rate at the anchor.
	RatePerSec float64
}

// Flash is one flash-crowd spike added on top of the base curve: the extra
// rate ramps linearly from zero to PeakPerSec over Ramp, holds the peak for
// Hold, then decays linearly back to zero over Decay. A zero Ramp or Decay
// makes that edge instantaneous.
type Flash struct {
	// Start is when the spike begins to ramp.
	Start sim.Duration
	// Ramp, Hold and Decay shape the spike's three phases.
	Ramp, Hold, Decay sim.Duration
	// PeakPerSec is the extra offered rate at the top of the spike.
	PeakPerSec float64
}

// end is the instant the spike's contribution returns to zero.
func (f Flash) end() sim.Duration { return f.Start + f.Ramp + f.Hold + f.Decay }

// rate is the spike's contribution at time t.
func (f Flash) rate(t sim.Duration) float64 {
	switch {
	case t < f.Start:
		return 0
	case t < f.Start+f.Ramp:
		return f.PeakPerSec * float64(t-f.Start) / float64(f.Ramp)
	case t <= f.Start+f.Ramp+f.Hold:
		return f.PeakPerSec
	case t < f.end():
		return f.PeakPerSec * (1 - float64(t-f.Start-f.Ramp-f.Hold)/float64(f.Decay))
	default:
		return 0
	}
}

// RateCurve is a time-varying offered-rate profile: a piecewise-linear base
// (the diurnal shape) plus zero or more flash-crowd spikes. The curve is
// pure data — evaluating it never draws randomness — so a generator driven
// by one stays a pure function of (spec, seed).
type RateCurve struct {
	// Points is the base profile in ascending At order (at least one).
	// Before the first anchor and after the last the base rate clamps.
	Points []RatePoint
	// Flashes are spikes added on top of the base.
	Flashes []Flash
}

// Validate checks the curve is well-formed: ordered non-negative anchors,
// non-negative spike shapes, and a positive peak (an all-zero curve can
// generate nothing).
func (c *RateCurve) Validate() error {
	if len(c.Points) == 0 {
		return fmt.Errorf("workload: rate curve needs at least one anchor point")
	}
	for i, p := range c.Points {
		if p.At < 0 || p.RatePerSec < 0 {
			return fmt.Errorf("workload: rate curve anchor %d negative (at %v, %v req/s)", i, p.At, p.RatePerSec)
		}
		if i > 0 && p.At < c.Points[i-1].At {
			return fmt.Errorf("workload: rate curve anchors not time-ordered at index %d", i)
		}
	}
	for i, f := range c.Flashes {
		if f.Start < 0 || f.Ramp < 0 || f.Hold < 0 || f.Decay < 0 || f.PeakPerSec < 0 {
			return fmt.Errorf("workload: flash %d has a negative field", i)
		}
	}
	if c.Peak() <= 0 {
		return fmt.Errorf("workload: rate curve peak must be positive")
	}
	return nil
}

// Rate evaluates the curve at time t: the interpolated base plus every
// active spike.
func (c *RateCurve) Rate(t sim.Duration) float64 {
	r := c.base(t)
	for _, f := range c.Flashes {
		r += f.rate(t)
	}
	return r
}

// base interpolates the piecewise-linear profile, clamping outside the
// anchor span.
func (c *RateCurve) base(t sim.Duration) float64 {
	pts := c.Points
	if len(pts) == 0 {
		return 0
	}
	if t <= pts[0].At {
		return pts[0].RatePerSec
	}
	for i := 1; i < len(pts); i++ {
		if t > pts[i].At {
			continue
		}
		a, b := pts[i-1], pts[i]
		if b.At == a.At {
			return b.RatePerSec
		}
		frac := float64(t-a.At) / float64(b.At-a.At)
		return a.RatePerSec + frac*(b.RatePerSec-a.RatePerSec)
	}
	return pts[len(pts)-1].RatePerSec
}

// Peak is the curve's maximum rate. The sum of piecewise-linear functions
// is piecewise-linear, so the maximum sits on a breakpoint: every anchor
// and every spike corner.
func (c *RateCurve) Peak() float64 {
	max := 0.0
	eval := func(t sim.Duration) {
		if r := c.Rate(t); r > max {
			max = r
		}
	}
	eval(0)
	for _, p := range c.Points {
		eval(p.At)
	}
	for _, f := range c.Flashes {
		eval(f.Start)
		eval(f.Start + f.Ramp)
		eval(f.Start + f.Ramp + f.Hold)
		eval(f.end())
	}
	return max
}

// Horizon is the instant the curve stops describing new shape: the last
// anchor or the end of the last spike, whichever is later. GenerateUntil
// with this horizon replays the whole described day.
func (c *RateCurve) Horizon() sim.Duration {
	h := sim.Duration(0)
	if n := len(c.Points); n > 0 {
		h = c.Points[n-1].At
	}
	for _, f := range c.Flashes {
		if e := f.end(); e > h {
			h = e
		}
	}
	return h
}
