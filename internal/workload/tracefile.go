package workload

import (
	"encoding/json"
	"fmt"

	"repro/internal/sim"
)

// This file is the on-disk trace format: a versioned JSON document a
// campaign can export, archive and replay. The encoding is canonical —
// fixed field order, fixed indentation, integer picosecond timestamps —
// so export → import → export is byte-identical and CI can diff trace
// files like any other artefact.

// TraceFileVersion is the schema version this build reads and writes.
// Import rejects files from a newer schema instead of misreading them.
const TraceFileVersion = 1

// traceFileRecord is one request on disk. Times are raw sim.Duration
// ticks (picoseconds): integers round-trip exactly, floats would not.
type traceFileRecord struct {
	AtPS       int64  `json:"at_ps"`
	RP         string `json:"rp"`
	ASP        string `json:"asp"`
	Tenant     string `json:"tenant,omitempty"`
	Class      string `json:"class,omitempty"`
	DeadlinePS int64  `json:"deadline_ps,omitempty"`
}

// traceFile is the document root.
type traceFile struct {
	Version  int               `json:"version"`
	Requests []traceFileRecord `json:"requests"`
}

// ExportTrace encodes the trace in the canonical on-disk form. Identical
// traces encode to identical bytes.
func ExportTrace(tr Trace) ([]byte, error) {
	doc := traceFile{Version: TraceFileVersion, Requests: make([]traceFileRecord, len(tr))}
	for i, req := range tr {
		doc.Requests[i] = traceFileRecord{
			AtPS:       int64(req.At),
			RP:         req.RP,
			ASP:        req.ASP,
			Tenant:     req.Tenant,
			Class:      req.Class,
			DeadlinePS: int64(req.Deadline),
		}
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// ImportTrace decodes an exported trace file, checking the schema version
// and the trace invariants (time order, named RPs/ASPs, non-negative
// times). A file written by a newer build is rejected with a clear error
// rather than silently dropping fields it introduced.
func ImportTrace(data []byte) (Trace, error) {
	var doc traceFile
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("workload: trace file is not valid JSON: %w", err)
	}
	switch {
	case doc.Version < 1:
		return nil, fmt.Errorf("workload: trace file missing schema version (want \"version\": %d)", TraceFileVersion)
	case doc.Version > TraceFileVersion:
		return nil, fmt.Errorf("workload: trace file schema version %d is newer than this build supports (%d) — regenerate the trace or upgrade",
			doc.Version, TraceFileVersion)
	}
	tr := make(Trace, len(doc.Requests))
	last := int64(-1)
	for i, rec := range doc.Requests {
		switch {
		case rec.AtPS < 0 || rec.DeadlinePS < 0:
			return nil, fmt.Errorf("workload: trace file request %d has a negative time", i)
		case rec.AtPS < last:
			return nil, fmt.Errorf("workload: trace file not time-ordered at request %d", i)
		case rec.RP == "" || rec.ASP == "":
			return nil, fmt.Errorf("workload: trace file request %d missing rp or asp", i)
		}
		last = rec.AtPS
		tr[i] = Request{
			At:       sim.Duration(rec.AtPS),
			RP:       rec.RP,
			ASP:      rec.ASP,
			Tenant:   rec.Tenant,
			Class:    rec.Class,
			Deadline: sim.Duration(rec.DeadlinePS),
		}
	}
	return tr, nil
}
