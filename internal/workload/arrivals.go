package workload

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// This file holds the open-loop side of the workload package: arrival
// generators parameterised by an offered rate rather than a fixed request
// gap. A trace replayer (hll.Framework) is closed-loop — the next request
// waits for the previous one — but a reconfiguration *service* faces an
// open stream whose arrivals do not care whether the ICAP is busy. These
// generators feed the saturation and scheduling scenarios (E11/E12).

// ArrivalSpec describes an open-loop arrival process.
type ArrivalSpec struct {
	// RatePerSec is the mean offered load in requests per second.
	RatePerSec float64
	// BurstFactor > 1 makes the stream bursty: requests inside a burst
	// arrive at RatePerSec·BurstFactor, with idle gaps between bursts sized
	// so the long-run mean stays RatePerSec. ≤ 1 means pure Poisson.
	BurstFactor float64
	// BurstLen is the number of requests per burst (ignored for Poisson).
	BurstLen int
	// Tenants attributes each request to a uniformly drawn tenant; empty
	// means anonymous requests.
	Tenants []string
	// Deadline is the per-request latency budget (0 = none).
	Deadline sim.Duration
	// Skew > 0 makes popularity Zipf-like instead of uniform: the i-th
	// entry of each list (RPs, ASPs, Tenants) is drawn with weight
	// 1/(i+1)^Skew, so early entries are hot and late ones cold — the
	// skewed image/tenant popularity a routing study needs. 0 keeps the
	// uniform draws (and the exact historical streams).
	Skew float64
}

// skewPicker returns a deterministic index picker over n entries: uniform
// when skew ≤ 0, Zipf-like (weight 1/(i+1)^skew) otherwise. Either way it
// consumes exactly one RNG draw per pick, so traces with and without skew
// stay seed-aligned.
func skewPicker(rng *sim.RNG, n int, skew float64) func() int {
	if skew <= 0 {
		return func() int { return rng.Intn(n) }
	}
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), skew)
		cum[i] = total
	}
	return func() int {
		u := rng.Float64() * total
		for i, c := range cum {
			if u < c {
				return i
			}
		}
		return n - 1
	}
}

// Generate produces n requests over the given RPs and ASPs. The trace is a
// pure function of (spec, seed, n, rps, asps): identical inputs yield
// byte-identical traces, which is what lets a sharded campaign replay them.
func (sp ArrivalSpec) Generate(seed uint64, n int, rps, asps []string) (Trace, error) {
	if sp.RatePerSec <= 0 {
		return nil, fmt.Errorf("workload: non-positive arrival rate %v", sp.RatePerSec)
	}
	if len(rps) == 0 || len(asps) == 0 {
		return nil, fmt.Errorf("workload: arrival generator needs RPs and ASPs")
	}
	rng := sim.NewRNG(seed)
	meanGap := sim.FromSeconds(1 / sp.RatePerSec)
	bursty := sp.BurstFactor > 1 && sp.BurstLen > 1
	var intraGap, interGap sim.Duration
	if bursty {
		// A burst cycle (one inter-burst pause + BurstLen−1 intra-burst
		// gaps) must span BurstLen·meanGap on average, so the long-run mean
		// rate stays RatePerSec.
		intraGap = sim.Duration(float64(meanGap) / sp.BurstFactor)
		interGap = sim.Duration(float64(sp.BurstLen)*float64(meanGap) - float64(sp.BurstLen-1)*float64(intraGap))
	}
	pickRP := skewPicker(rng, len(rps), sp.Skew)
	pickASP := skewPicker(rng, len(asps), sp.Skew)
	pickTenant := skewPicker(rng, len(sp.Tenants), sp.Skew)
	tr := make(Trace, 0, n)
	at := sim.Duration(0)
	for i := 0; i < n; i++ {
		switch {
		case !bursty:
			at += sim.Duration(float64(meanGap) * rng.ExpFloat64())
		case i%sp.BurstLen == 0:
			at += sim.Duration(float64(interGap) * rng.ExpFloat64())
		default:
			at += sim.Duration(float64(intraGap) * rng.ExpFloat64())
		}
		req := Request{
			At:       at,
			RP:       rps[pickRP()],
			ASP:      asps[pickASP()],
			Deadline: sp.Deadline,
		}
		if len(sp.Tenants) > 0 {
			req.Tenant = sp.Tenants[pickTenant()]
		}
		tr = append(tr, req)
	}
	return tr, nil
}

// OpenPoisson generates a rate-parameterised Poisson request stream — the
// standard open-loop arrival model of the saturation sweep.
func OpenPoisson(seed uint64, n int, ratePerSec float64, rps, asps []string) (Trace, error) {
	return ArrivalSpec{RatePerSec: ratePerSec}.Generate(seed, n, rps, asps)
}

// OpenBursts generates a bursty stream: bursts of burstLen requests at
// ratePerSec·burstFactor, paced so the long-run mean rate is ratePerSec.
func OpenBursts(seed uint64, n int, ratePerSec, burstFactor float64, burstLen int, rps, asps []string) (Trace, error) {
	return ArrivalSpec{
		RatePerSec:  ratePerSec,
		BurstFactor: burstFactor,
		BurstLen:    burstLen,
	}.Generate(seed, n, rps, asps)
}
