package workload

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/sim"
)

// This file holds the open-loop side of the workload package: arrival
// generators parameterised by an offered rate rather than a fixed request
// gap. A trace replayer (hll.Framework) is closed-loop — the next request
// waits for the previous one — but a reconfiguration *service* faces an
// open stream whose arrivals do not care whether the ICAP is busy. These
// generators feed the saturation and scheduling scenarios (E11/E12) and,
// through RateCurve thinning, the diurnal scenario (E16).

// SLOClass is one service-level class of traffic: requests drawn into the
// class carry its deadline, and the service reports deadline misses per
// class — the latency-sensitive vs batch split a capacity plan must honour.
type SLOClass struct {
	// Name labels the class in per-class statistics.
	Name string
	// Deadline is the class's latency budget (0 falls back to the spec's
	// Deadline).
	Deadline sim.Duration
	// Weight is the class's relative traffic share (≤ 0 means 1).
	Weight float64
}

// ArrivalSpec describes an open-loop arrival process.
type ArrivalSpec struct {
	// RatePerSec is the mean offered load in requests per second. Ignored
	// when Curve is set (the curve owns the rate).
	RatePerSec float64
	// BurstFactor > 1 makes the stream bursty: requests inside a burst
	// arrive at RatePerSec·BurstFactor, with idle gaps between bursts sized
	// so the long-run mean stays RatePerSec. ≤ 1 means pure Poisson.
	BurstFactor float64
	// BurstLen is the number of requests per burst (ignored for Poisson).
	BurstLen int
	// Tenants attributes each request to a uniformly drawn tenant; empty
	// means anonymous requests.
	Tenants []string
	// Deadline is the per-request latency budget (0 = none).
	Deadline sim.Duration
	// Skew > 0 makes popularity Zipf-like instead of uniform: the i-th
	// entry of each list (RPs, ASPs, Tenants) is drawn with weight
	// 1/(i+1)^Skew, so early entries are hot and late ones cold — the
	// skewed image/tenant popularity a routing study needs. 0 keeps the
	// uniform draws (and the exact historical streams).
	Skew float64
	// Curve, when non-nil, makes the offered rate time-varying: candidates
	// are generated at the curve's peak rate (through the same burst
	// machinery) and thinned — each kept with probability rate(t)/peak, one
	// extra RNG draw per candidate. Nil keeps the stationary generators and
	// their historical streams bit for bit.
	Curve *RateCurve
	// Classes splits traffic into SLO classes: each request draws a class
	// by weight (one extra RNG draw per request) and carries the class's
	// deadline. Empty keeps the classless historical streams bit for bit.
	Classes []SLOClass
}

// cumPick draws an index from cumulative weights with exactly one RNG
// draw: the first index whose cumulative weight strictly exceeds
// u ∈ [0, total). The binary search uses the `> u` predicate rather than
// sort.SearchFloat64s (whose `>= u` comparison would land one index early
// on an exact tie), so it returns precisely the index the historical
// linear scan returned on every input.
func cumPick(rng *sim.RNG, cum []float64) int {
	u := rng.Float64() * cum[len(cum)-1]
	if i := sort.Search(len(cum), func(i int) bool { return cum[i] > u }); i < len(cum) {
		return i
	}
	return len(cum) - 1
}

// skewPicker returns a deterministic index picker over n entries: uniform
// when skew ≤ 0, Zipf-like (weight 1/(i+1)^skew) otherwise. Either way it
// consumes exactly one RNG draw per pick, so traces with and without skew
// stay seed-aligned.
func skewPicker(rng *sim.RNG, n int, skew float64) func() int {
	if skew <= 0 {
		return func() int { return rng.Intn(n) }
	}
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), skew)
		cum[i] = total
	}
	return func() int { return cumPick(rng, cum) }
}

// classPicker returns a weighted picker over the spec's SLO classes (nil
// when there are none), consuming one RNG draw per pick.
func classPicker(rng *sim.RNG, classes []SLOClass) func() int {
	if len(classes) == 0 {
		return nil
	}
	cum := make([]float64, len(classes))
	total := 0.0
	for i, c := range classes {
		w := c.Weight
		if w <= 0 {
			w = 1
		}
		total += w
		cum[i] = total
	}
	return func() int { return cumPick(rng, cum) }
}

// Generate produces n requests over the given RPs and ASPs. The trace is a
// pure function of (spec, seed, n, rps, asps): identical inputs yield
// byte-identical traces, which is what lets a sharded campaign replay them.
func (sp ArrivalSpec) Generate(seed uint64, n int, rps, asps []string) (Trace, error) {
	return sp.generate(seed, rps, asps, func(accepted int, _ sim.Duration) bool {
		return accepted >= n
	}, n)
}

// GenerateUntil produces every request arriving before the horizon — the
// replay form a RateCurve day wants (the stream length is then decided by
// the curve's integral, not a request count). Like Generate it is a pure
// function of its inputs.
func (sp ArrivalSpec) GenerateUntil(seed uint64, horizon sim.Duration, rps, asps []string) (Trace, error) {
	if horizon <= 0 {
		return nil, fmt.Errorf("workload: non-positive generation horizon %v", horizon)
	}
	return sp.generate(seed, rps, asps, func(_ int, at sim.Duration) bool {
		return at >= horizon
	}, 0)
}

// generate is the shared arrival loop. done is consulted with the accepted
// count before each candidate and with the candidate's arrival instant
// after its gap draw; sizeHint pre-sizes the trace. The RNG draw order per
// candidate is fixed — gap, [thinning], RP, ASP, [tenant], [class] — and
// the optional draws only happen when their feature is configured, so a
// spec without curve or classes replays the historical streams exactly.
func (sp ArrivalSpec) generate(seed uint64, rps, asps []string, done func(accepted int, at sim.Duration) bool, sizeHint int) (Trace, error) {
	rate := sp.RatePerSec
	if sp.Curve != nil {
		if err := sp.Curve.Validate(); err != nil {
			return nil, err
		}
		rate = sp.Curve.Peak()
	}
	if rate <= 0 {
		return nil, fmt.Errorf("workload: non-positive arrival rate %v", rate)
	}
	if len(rps) == 0 || len(asps) == 0 {
		return nil, fmt.Errorf("workload: arrival generator needs RPs and ASPs")
	}
	rng := sim.NewRNG(seed)
	meanGap := sim.FromSeconds(1 / rate)
	bursty := sp.BurstFactor > 1 && sp.BurstLen > 1
	var intraGap, interGap sim.Duration
	if bursty {
		// A burst cycle (one inter-burst pause + BurstLen−1 intra-burst
		// gaps) must span BurstLen·meanGap on average, so the long-run mean
		// rate stays RatePerSec (the curve's peak in thinning mode).
		intraGap = sim.Duration(float64(meanGap) / sp.BurstFactor)
		interGap = sim.Duration(float64(sp.BurstLen)*float64(meanGap) - float64(sp.BurstLen-1)*float64(intraGap))
	}
	pickRP := skewPicker(rng, len(rps), sp.Skew)
	pickASP := skewPicker(rng, len(asps), sp.Skew)
	pickTenant := skewPicker(rng, len(sp.Tenants), sp.Skew)
	pickClass := classPicker(rng, sp.Classes)
	tr := make(Trace, 0, sizeHint)
	at := sim.Duration(0)
	for i := 0; !done(len(tr), at); i++ {
		switch {
		case !bursty:
			at += sim.Duration(float64(meanGap) * rng.ExpFloat64())
		case i%sp.BurstLen == 0:
			at += sim.Duration(float64(interGap) * rng.ExpFloat64())
		default:
			at += sim.Duration(float64(intraGap) * rng.ExpFloat64())
		}
		if done(len(tr), at) {
			break
		}
		if sp.Curve != nil && rng.Float64()*rate >= sp.Curve.Rate(at) {
			continue // thinned: the candidate falls outside the curve
		}
		req := Request{
			At:       at,
			RP:       rps[pickRP()],
			ASP:      asps[pickASP()],
			Deadline: sp.Deadline,
		}
		if len(sp.Tenants) > 0 {
			req.Tenant = sp.Tenants[pickTenant()]
		}
		if pickClass != nil {
			c := sp.Classes[pickClass()]
			req.Class = c.Name
			if c.Deadline > 0 {
				req.Deadline = c.Deadline
			}
		}
		tr = append(tr, req)
	}
	return tr, nil
}

// OpenPoisson generates a rate-parameterised Poisson request stream — the
// standard open-loop arrival model of the saturation sweep.
func OpenPoisson(seed uint64, n int, ratePerSec float64, rps, asps []string) (Trace, error) {
	return ArrivalSpec{RatePerSec: ratePerSec}.Generate(seed, n, rps, asps)
}

// OpenBursts generates a bursty stream: bursts of burstLen requests at
// ratePerSec·burstFactor, paced so the long-run mean rate is ratePerSec.
func OpenBursts(seed uint64, n int, ratePerSec, burstFactor float64, burstLen int, rps, asps []string) (Trace, error) {
	return ArrivalSpec{
		RatePerSec:  ratePerSec,
		BurstFactor: burstFactor,
		BurstLen:    burstLen,
	}.Generate(seed, n, rps, asps)
}
