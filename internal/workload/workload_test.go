package workload

import (
	"strings"
	"testing"

	"repro/internal/bitstream"
	"repro/internal/platform"
	"repro/internal/sim"
)

func TestLibraryWellFormed(t *testing.T) {
	lib := Library()
	if len(lib) < 5 {
		t.Fatalf("library has %d ASPs, want ≥5", len(lib))
	}
	seen := map[string]bool{}
	for _, a := range lib {
		if seen[a.Name] {
			t.Errorf("duplicate ASP %q", a.Name)
		}
		seen[a.Name] = true
		if a.FillFraction <= 0 || a.FillFraction > 1 {
			t.Errorf("%s: fill %v", a.Name, a.FillFraction)
		}
		if a.ComputeTime <= 0 || a.ClockMHz <= 0 {
			t.Errorf("%s: bad compute/clock", a.Name)
		}
	}
}

func TestLibraryASPLookup(t *testing.T) {
	if _, err := LibraryASP("fir128"); err != nil {
		t.Error(err)
	}
	if _, err := LibraryASP("nope"); err == nil {
		t.Error("unknown ASP should fail")
	}
}

func TestFramesMatchRegionAndAreDeterministic(t *testing.T) {
	dev := platform.Default().NewDevice()
	rp := platform.Default().RPs(dev)[0]
	asp, _ := LibraryASP("aes-gcm")
	f1 := asp.Frames(dev, rp)
	f2 := asp.Frames(dev, rp)
	if len(f1) != dev.RegionFrames(rp) {
		t.Fatalf("frames = %d", len(f1))
	}
	for i := range f1 {
		for w := range f1[i] {
			if f1[i][w] != f2[i][w] {
				t.Fatal("frames not deterministic")
			}
		}
	}
}

func TestFramesDifferAcrossASPsAndRPs(t *testing.T) {
	dev := platform.Default().NewDevice()
	rps := platform.Default().RPs(dev)
	a, _ := LibraryASP("fir128")
	b, _ := LibraryASP("sha3")
	ca := bitstream.FrameCRC(a.Frames(dev, rps[0]))
	cb := bitstream.FrameCRC(b.Frames(dev, rps[0]))
	ca2 := bitstream.FrameCRC(a.Frames(dev, rps[1]))
	if ca == cb {
		t.Error("different ASPs produced identical frames")
	}
	if ca == ca2 {
		t.Error("same ASP on different RPs should differ (placement)")
	}
}

func TestBitstreamBuildsAtCalibratedSize(t *testing.T) {
	dev := platform.Default().NewDevice()
	rp := platform.Default().RPs(dev)[0]
	for _, asp := range Library() {
		bs, err := asp.Bitstream(dev, rp)
		if err != nil {
			t.Fatalf("%s: %v", asp.Name, err)
		}
		if bs.Size() != 528760 {
			t.Errorf("%s: size %d, want 528760", asp.Name, bs.Size())
		}
	}
}

func TestFillFractionDrivesCompressibility(t *testing.T) {
	dev := platform.Default().NewDevice()
	rp := platform.Default().RPs(dev)[0]
	sparse := ASP{Name: "sparse", FillFraction: 0.3, Seed: 1}
	dense := ASP{Name: "dense", FillFraction: 0.9, Seed: 2}
	ratio := func(a ASP) float64 {
		bs, err := a.Bitstream(dev, rp)
		if err != nil {
			t.Fatal(err)
		}
		comp, err := bitstream.Compress(bs.Raw)
		if err != nil {
			t.Fatal(err)
		}
		return bitstream.CompressionRatio(bs.Raw, comp)
	}
	rs, rd := ratio(sparse), ratio(dense)
	if rs <= rd {
		t.Errorf("sparse ratio %v should exceed dense %v", rs, rd)
	}
	if rs < 2 {
		t.Errorf("sparse design should compress ≥2× (got %v)", rs)
	}
}

func TestPoissonTraceProperties(t *testing.T) {
	rps := []string{"RP1", "RP2"}
	asps := []string{"fir128", "sha3"}
	tr := PoissonTrace(7, 200, sim.Millisecond, rps, asps)
	if len(tr) != 200 {
		t.Fatalf("len = %d", len(tr))
	}
	if err := tr.Validate(rps, asps); err != nil {
		t.Fatal(err)
	}
	// Mean gap ≈ 1 ms within 20%.
	mean := float64(tr[len(tr)-1].At) / float64(len(tr))
	if mean < 0.8e9 || mean > 1.2e9 {
		t.Errorf("mean gap = %v ps, want ≈1e9", mean)
	}
	// Determinism.
	tr2 := PoissonTrace(7, 200, sim.Millisecond, rps, asps)
	for i := range tr {
		if tr[i] != tr2[i] {
			t.Fatal("trace not deterministic")
		}
	}
}

func TestRoundRobinTrace(t *testing.T) {
	rps := []string{"RP1", "RP2"}
	asps := []string{"a", "b", "c"}
	tr := RoundRobinTrace(6, sim.Millisecond, rps, asps)
	if err := tr.Validate(rps, []string{"a", "b", "c"}); err != nil {
		t.Fatal(err)
	}
	if tr[0].RP != "RP1" || tr[1].RP != "RP2" || tr[2].RP != "RP1" {
		t.Error("RP rotation wrong")
	}
	if tr[0].ASP != "a" || tr[1].ASP != "b" || tr[2].ASP != "c" || tr[3].ASP != "a" {
		t.Error("ASP rotation wrong")
	}
}

func TestTraceValidateCatchesBadRefs(t *testing.T) {
	rps, asps := []string{"RP1"}, []string{"fir128"}
	tr := Trace{{At: 1, RP: "RPX", ASP: "fir128"}}
	err := tr.Validate(rps, asps)
	if err == nil {
		t.Error("unknown RP should fail")
	} else if !strings.Contains(err.Error(), "RPX") || !strings.Contains(err.Error(), "request 0") {
		t.Errorf("RP error should name the offender and index: %v", err)
	}
	tr = Trace{{At: 1, RP: "RP1", ASP: "fir128"}, {At: 2, RP: "RP1", ASP: "zzz"}}
	err = tr.Validate(rps, asps)
	if err == nil {
		t.Error("unknown ASP should fail")
	} else if !strings.Contains(err.Error(), "zzz") || !strings.Contains(err.Error(), "request 1") {
		t.Errorf("ASP error should name the offender and index: %v", err)
	}
	tr = Trace{{At: 5, RP: "RP1", ASP: "fir128"}, {At: 1, RP: "RP1", ASP: "fir128"}}
	if err := tr.Validate(rps, asps); err == nil {
		t.Error("out-of-order trace should fail")
	}
	if err := (Trace{}).Validate(rps, asps); err != nil {
		t.Errorf("empty trace is valid: %v", err)
	}
}

func TestRoundRobinTraceDeterministic(t *testing.T) {
	rps := []string{"RP1", "RP2", "RP3"}
	asps := []string{"fir128", "sha3"}
	a := RoundRobinTrace(50, 100*sim.Microsecond, rps, asps)
	b := RoundRobinTrace(50, 100*sim.Microsecond, rps, asps)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs across identical calls", i)
		}
	}
}

func TestOpenPoissonMeanRateConverges(t *testing.T) {
	rps := []string{"RP1", "RP2"}
	asps := []string{"fir128", "sha3"}
	const rate = 500.0 // req/s
	tr, err := OpenPoisson(11, 4000, rate, rps, asps)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(rps, asps); err != nil {
		t.Fatal(err)
	}
	measured := float64(len(tr)) / tr[len(tr)-1].At.Seconds()
	if measured < 0.95*rate || measured > 1.05*rate {
		t.Errorf("measured rate %.1f req/s, want %.0f ±5%%", measured, rate)
	}
	// Determinism under a fixed seed.
	tr2, err := OpenPoisson(11, 4000, rate, rps, asps)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr {
		if tr[i] != tr2[i] {
			t.Fatalf("request %d differs across identical seeds", i)
		}
	}
}

func TestOpenBurstsMeanRateAndShape(t *testing.T) {
	rps := []string{"RP1", "RP2"}
	asps := []string{"fir128", "sha3"}
	const rate, factor, blen = 400.0, 4.0, 8
	tr, err := OpenBursts(13, 4000, rate, factor, blen, rps, asps)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(rps, asps); err != nil {
		t.Fatal(err)
	}
	measured := float64(len(tr)) / tr[len(tr)-1].At.Seconds()
	if measured < 0.95*rate || measured > 1.05*rate {
		t.Errorf("measured rate %.1f req/s, want %.0f ±5%%", measured, rate)
	}
	// Burstiness: gaps inside a burst are much shorter on average than the
	// gaps between bursts.
	var intra, inter float64
	var nIntra, nInter int
	for i := 1; i < len(tr); i++ {
		gap := float64(tr[i].At - tr[i-1].At)
		if i%blen == 0 {
			inter += gap
			nInter++
		} else {
			intra += gap
			nIntra++
		}
	}
	if intra/float64(nIntra) >= inter/float64(nInter) {
		t.Error("intra-burst gaps should be shorter than inter-burst gaps")
	}
}

func TestArrivalSpecTenantsAndDeadlines(t *testing.T) {
	spec := ArrivalSpec{
		RatePerSec: 100,
		Tenants:    []string{"alpha", "beta"},
		Deadline:   20 * sim.Millisecond,
	}
	tr, err := spec.Generate(3, 200, []string{"RP1"}, []string{"fir128"})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for _, req := range tr {
		seen[req.Tenant]++
		if req.Deadline != 20*sim.Millisecond {
			t.Fatalf("deadline not stamped: %+v", req)
		}
	}
	if seen["alpha"] == 0 || seen["beta"] == 0 || seen[""] != 0 {
		t.Errorf("tenant mix = %v, want both tenants and no anonymous", seen)
	}
}

// TestArrivalSpecBurstFactorWithoutBurstLen covers the degenerate burst
// shapes: BurstFactor > 1 with BurstLen ≤ 0 (or 1) cannot form bursts, so
// the stream must quietly fall back to pure Poisson at the requested mean
// rate — not panic on a modulo by zero or emit a zero-gap stream.
func TestArrivalSpecBurstFactorWithoutBurstLen(t *testing.T) {
	rps := []string{"RP1", "RP2"}
	asps := []string{"fir128", "sha3"}
	const rate = 500.0
	for _, blen := range []int{0, -3, 1} {
		spec := ArrivalSpec{RatePerSec: rate, BurstFactor: 4, BurstLen: blen}
		tr, err := spec.Generate(11, 4000, rps, asps)
		if err != nil {
			t.Fatalf("BurstLen %d: %v", blen, err)
		}
		if err := tr.Validate(rps, asps); err != nil {
			t.Fatalf("BurstLen %d: %v", blen, err)
		}
		measured := float64(len(tr)) / tr[len(tr)-1].At.Seconds()
		if measured < 0.95*rate || measured > 1.05*rate {
			t.Errorf("BurstLen %d: measured rate %.1f req/s, want %.0f ±5%%", blen, measured, rate)
		}
		// The degenerate spec must be byte-identical to the plain Poisson
		// stream — the factor is ignored, not half-applied.
		plain, err := OpenPoisson(11, 4000, rate, rps, asps)
		if err != nil {
			t.Fatal(err)
		}
		for i := range tr {
			if tr[i] != plain[i] {
				t.Fatalf("BurstLen %d: request %d diverges from pure Poisson: %+v vs %+v",
					blen, i, tr[i], plain[i])
			}
		}
	}
}

func TestArrivalSpecSkewedPopularity(t *testing.T) {
	rps := []string{"RP1", "RP2", "RP3"}
	asps := []string{"hot", "warm", "cold", "frozen"}
	spec := ArrivalSpec{RatePerSec: 100, Skew: 1.2, Tenants: []string{"big", "small"}}
	// The ASP list here is synthetic — skip trace validation, count draws.
	tr, err := spec.Generate(7, 4000, rps, asps)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	tenants := map[string]int{}
	for _, req := range tr {
		counts[req.ASP]++
		tenants[req.Tenant]++
	}
	if !(counts["hot"] > counts["warm"] && counts["warm"] > counts["cold"] && counts["cold"] > counts["frozen"]) {
		t.Errorf("skewed draw not monotone over the list: %v", counts)
	}
	if counts["hot"] < 2*counts["frozen"] {
		t.Errorf("skew 1.2 should separate head from tail clearly: %v", counts)
	}
	if tenants["big"] <= tenants["small"] {
		t.Errorf("tenant popularity should skew too: %v", tenants)
	}
	// Determinism under a fixed seed.
	tr2, err := spec.Generate(7, 4000, rps, asps)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr {
		if tr[i] != tr2[i] {
			t.Fatalf("request %d differs across identical seeds", i)
		}
	}
}

func TestArrivalSpecRejectsBadInputs(t *testing.T) {
	if _, err := OpenPoisson(1, 10, 0, []string{"RP1"}, []string{"fir128"}); err == nil {
		t.Error("zero rate should fail")
	}
	if _, err := OpenPoisson(1, 10, 100, nil, []string{"fir128"}); err == nil {
		t.Error("no RPs should fail")
	}
	if _, err := OpenPoisson(1, 10, 100, []string{"RP1"}, nil); err == nil {
		t.Error("no ASPs should fail")
	}
}
