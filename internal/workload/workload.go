// Package workload synthesises the application side of the paper's
// acceleration framework: a library of Application-Specific Processors
// (ASPs) with realistic partial-bitstream content, and reconfiguration
// request traces (the on-demand ASP swapping the introduction motivates).
package workload

import (
	"fmt"
	"sort"

	"repro/internal/bitstream"
	"repro/internal/fabric"
	"repro/internal/sim"
)

// ASP describes one accelerator personality.
type ASP struct {
	// Name identifies the accelerator.
	Name string
	// FillFraction is how much of the RP the design uses (affects the
	// bitstream's zero density and hence its compressibility).
	FillFraction float64
	// ComputeTime is how long one task on this ASP runs.
	ComputeTime sim.Duration
	// ClockMHz is the ASP's own clock constraint (served by the Clock
	// Manager; each RP can run at its own rate).
	ClockMHz float64
	// MemBandwidthMBs is the ASP's data appetite while computing: each RP
	// has its own DMA on an HP port (Fig. 1), so a running accelerator
	// contends with the configuration path for the memory interface.
	MemBandwidthMBs float64
	// Seed individualises the frame content.
	Seed uint64
}

// Library returns the standard ASP set used by the examples and benchmarks:
// the kinds of accelerators the paper's introduction names (crypto, DSP,
// web/serving helpers).
func Library() []ASP {
	return []ASP{
		{Name: "fir128", FillFraction: 0.55, ComputeTime: 240 * sim.Microsecond, ClockMHz: 150, MemBandwidthMBs: 120, Seed: 101},
		{Name: "fft1k", FillFraction: 0.70, ComputeTime: 410 * sim.Microsecond, ClockMHz: 125, MemBandwidthMBs: 200, Seed: 102},
		{Name: "aes-gcm", FillFraction: 0.62, ComputeTime: 180 * sim.Microsecond, ClockMHz: 200, MemBandwidthMBs: 400, Seed: 103},
		{Name: "sha3", FillFraction: 0.48, ComputeTime: 150 * sim.Microsecond, ClockMHz: 180, MemBandwidthMBs: 90, Seed: 104},
		{Name: "matmul8", FillFraction: 0.80, ComputeTime: 900 * sim.Microsecond, ClockMHz: 100, MemBandwidthMBs: 250, Seed: 105},
		{Name: "decimal-fpu", FillFraction: 0.66, ComputeTime: 300 * sim.Microsecond, ClockMHz: 140, MemBandwidthMBs: 60, Seed: 106},
	}
}

// LibraryASP looks an ASP up by name.
func LibraryASP(name string) (ASP, error) {
	for _, a := range Library() {
		if a.Name == name {
			return a, nil
		}
	}
	return ASP{}, fmt.Errorf("workload: unknown ASP %q", name)
}

// Frames generates the ASP's configuration frames for a region: a used
// prefix of each frame proportional to FillFraction, clustered zeros
// elsewhere, and a fraction of fully unused frames — the structure real
// partial bitstreams have (and what makes them compressible).
func (a ASP) Frames(dev *fabric.Device, rp fabric.Region) [][]uint32 {
	rng := sim.NewRNG(a.Seed ^ uint64(rp.Row)<<32 ^ uint64(rp.ColStart))
	n := dev.RegionFrames(rp)
	frames := make([][]uint32, n)
	for i := range frames {
		f := make([]uint32, fabric.FrameWords)
		if rng.Float64() < a.FillFraction {
			used := int(a.FillFraction * fabric.FrameWords)
			if used < 1 {
				used = 1
			}
			jitter := rng.Intn(20) - 10
			used += jitter
			if used < 1 {
				used = 1
			}
			if used > fabric.FrameWords {
				used = fabric.FrameWords
			}
			for w := 0; w < used; w++ {
				f[w] = rng.Uint32()
			}
		}
		frames[i] = f
	}
	return frames
}

// Bitstream builds the ASP's partial bitstream for the region.
func (a ASP) Bitstream(dev *fabric.Device, rp fabric.Region) (*bitstream.Bitstream, error) {
	return bitstream.Build(dev, rp, a.Name, a.Frames(dev, rp))
}

// Request is one entry of a reconfiguration trace: at time At, partition RP
// must run ASP (loading it first if not resident). The service-layer fields
// are optional: a zero Tenant/Deadline request behaves exactly as before.
type Request struct {
	At  sim.Duration
	RP  string
	ASP string
	// Tenant attributes the request to a traffic source (multi-tenant
	// serving); "" is anonymous.
	Tenant string
	// Class names the request's SLO class (see SLOClass); "" is unclassed.
	Class string
	// Deadline is the latency budget relative to At (0 = none). The
	// reconfiguration service counts completions past it as deadline misses.
	Deadline sim.Duration
}

// Trace is an ordered request sequence.
type Trace []Request

// PoissonTrace generates n requests with exponential inter-arrivals of the
// given mean, cycling uniformly over the RPs and ASPs.
func PoissonTrace(seed uint64, n int, meanGap sim.Duration, rps, asps []string) Trace {
	rng := sim.NewRNG(seed)
	tr := make(Trace, 0, n)
	at := sim.Duration(0)
	for i := 0; i < n; i++ {
		at += sim.Duration(float64(meanGap) * rng.ExpFloat64())
		tr = append(tr, Request{
			At:  at,
			RP:  rps[rng.Intn(len(rps))],
			ASP: asps[rng.Intn(len(asps))],
		})
	}
	return tr
}

// RoundRobinTrace generates n periodic requests that deliberately thrash
// the RPs with rotating ASPs — the worst case for reconfiguration latency.
func RoundRobinTrace(n int, gap sim.Duration, rps, asps []string) Trace {
	tr := make(Trace, 0, n)
	for i := 0; i < n; i++ {
		tr = append(tr, Request{
			At:  sim.Duration(i+1) * gap,
			RP:  rps[i%len(rps)],
			ASP: asps[i%len(asps)],
		})
	}
	return tr
}

// Validate checks the trace is time-ordered and references known names.
func (tr Trace) Validate(rps, asps []string) error {
	inRP := make(map[string]bool, len(rps))
	for _, r := range rps {
		inRP[r] = true
	}
	inASP := make(map[string]bool, len(asps))
	for _, a := range asps {
		inASP[a] = true
	}
	if !sort.SliceIsSorted(tr, func(i, j int) bool { return tr[i].At < tr[j].At }) {
		return fmt.Errorf("workload: trace not time-ordered")
	}
	for i, req := range tr {
		if !inRP[req.RP] {
			return fmt.Errorf("workload: request %d references unknown RP %q", i, req.RP)
		}
		if !inASP[req.ASP] {
			return fmt.Errorf("workload: request %d references unknown ASP %q", i, req.ASP)
		}
	}
	return nil
}
