package workload

import (
	"math"
	"strings"
	"testing"

	"repro/internal/sim"
)

func diurnalTestCurve() *RateCurve {
	return &RateCurve{
		Points: []RatePoint{
			{At: 0, RatePerSec: 100},
			{At: 100 * sim.Millisecond, RatePerSec: 500},
			{At: 200 * sim.Millisecond, RatePerSec: 100},
		},
		Flashes: []Flash{{
			Start:      120 * sim.Millisecond,
			Ramp:       10 * sim.Millisecond,
			Hold:       20 * sim.Millisecond,
			Decay:      10 * sim.Millisecond,
			PeakPerSec: 900,
		}},
	}
}

func TestRateCurveInterpolationAndClamping(t *testing.T) {
	c := &RateCurve{Points: []RatePoint{
		{At: 10 * sim.Millisecond, RatePerSec: 100},
		{At: 30 * sim.Millisecond, RatePerSec: 300},
	}}
	cases := []struct {
		at   sim.Duration
		want float64
	}{
		{0, 100},                     // clamp before the first anchor
		{10 * sim.Millisecond, 100},  // on the anchor
		{20 * sim.Millisecond, 200},  // midpoint interpolates
		{30 * sim.Millisecond, 300},  // on the last anchor
		{100 * sim.Millisecond, 300}, // clamp after the last anchor
	}
	for _, tc := range cases {
		if got := c.Rate(tc.at); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Rate(%v) = %v, want %v", tc.at, got, tc.want)
		}
	}
}

func TestFlashRampHoldDecayShape(t *testing.T) {
	c := diurnalTestCurve()
	f := c.Flashes[0]
	// Mid-ramp: half the spike on top of the interpolated base.
	base := c.base(125 * sim.Millisecond)
	if got := c.Rate(125 * sim.Millisecond); math.Abs(got-(base+450)) > 1e-6 {
		t.Errorf("mid-ramp rate = %v, want base %v + 450", got, base)
	}
	// Hold: the full spike.
	base = c.base(140 * sim.Millisecond)
	if got := c.Rate(140 * sim.Millisecond); math.Abs(got-(base+900)) > 1e-6 {
		t.Errorf("hold rate = %v, want base %v + 900", got, base)
	}
	// Mid-decay: half again.
	base = c.base(155 * sim.Millisecond)
	if got := c.Rate(155 * sim.Millisecond); math.Abs(got-(base+450)) > 1e-6 {
		t.Errorf("mid-decay rate = %v, want base %v + 450", got, base)
	}
	// Outside: no contribution.
	if got := f.rate(f.end()); got != 0 {
		t.Errorf("spike contributes %v past its end", got)
	}
	// Instant edges: zero ramp/decay must not divide by zero.
	inst := Flash{Start: sim.Millisecond, Hold: sim.Millisecond, PeakPerSec: 50}
	if got := inst.rate(sim.Millisecond); got != 50 {
		t.Errorf("instant ramp at start = %v, want 50", got)
	}
}

func TestRateCurvePeakAndHorizon(t *testing.T) {
	c := diurnalTestCurve()
	// The base is falling through the hold, so the maximum sits on the
	// ramp-end corner at 130 ms: the interpolated base there plus the spike.
	want := c.base(130*sim.Millisecond) + 900
	if got := c.Peak(); math.Abs(got-want) > 1e-6 {
		t.Errorf("Peak = %v, want %v", got, want)
	}
	if got := c.Horizon(); got != 200*sim.Millisecond {
		t.Errorf("Horizon = %v, want 200ms", got)
	}
	// A flash outlasting the anchors extends the horizon.
	c.Flashes[0].Hold = 200 * sim.Millisecond
	if got, want := c.Horizon(), c.Flashes[0].end(); got != want {
		t.Errorf("Horizon = %v, want flash end %v", got, want)
	}
}

func TestRateCurveValidate(t *testing.T) {
	if err := diurnalTestCurve().Validate(); err != nil {
		t.Errorf("well-formed curve rejected: %v", err)
	}
	bad := []struct {
		name string
		c    RateCurve
		want string
	}{
		{"empty", RateCurve{}, "at least one anchor"},
		{"negative rate", RateCurve{Points: []RatePoint{{At: 0, RatePerSec: -1}}}, "negative"},
		{"unordered", RateCurve{Points: []RatePoint{{At: sim.Second}, {At: 0, RatePerSec: 1}}}, "time-ordered"},
		{"negative flash", RateCurve{
			Points:  []RatePoint{{At: 0, RatePerSec: 1}},
			Flashes: []Flash{{Ramp: -sim.Millisecond}},
		}, "negative"},
		{"all zero", RateCurve{Points: []RatePoint{{At: 0, RatePerSec: 0}}}, "peak"},
	}
	for _, tc := range bad {
		err := tc.c.Validate()
		if err == nil {
			t.Errorf("%s: invalid curve accepted", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q should mention %q", tc.name, err, tc.want)
		}
	}
}

// TestGenerateUntilTracksCurve pins the thinning construction: the
// per-interval arrival counts of a generated day follow the curve's shape
// (ramp up, spike, ramp down), and the whole stream stays inside the
// horizon and deterministic.
func TestGenerateUntilTracksCurve(t *testing.T) {
	c := diurnalTestCurve()
	rps := []string{"RP1", "RP2"}
	asps := []string{"fir128", "sha3"}
	spec := ArrivalSpec{Curve: c}
	horizon := c.Horizon()
	tr, err := spec.GenerateUntil(21, horizon, rps, asps)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(rps, asps); err != nil {
		t.Fatal(err)
	}
	if len(tr) == 0 || tr[len(tr)-1].At >= horizon {
		t.Fatalf("stream of %d requests should fill but not exceed the %v horizon", len(tr), horizon)
	}
	// Count arrivals per 20 ms bucket and compare shape against the curve:
	// the spike bucket (flash hold, ~140 ms) must dominate the night bucket
	// (~0–20 ms) by roughly the rate ratio.
	buckets := make([]int, int(horizon/(20*sim.Millisecond)))
	for _, req := range tr {
		buckets[int(req.At/(20*sim.Millisecond))]++
	}
	night, spike := buckets[0], buckets[7] // [140,160) ms holds the flash
	if spike < 4*night {
		t.Errorf("flash bucket %d should dwarf night bucket %d (buckets %v)", spike, night, buckets)
	}
	// Determinism.
	tr2, err := spec.GenerateUntil(21, horizon, rps, asps)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != len(tr2) {
		t.Fatalf("repeat run length %d vs %d", len(tr2), len(tr))
	}
	for i := range tr {
		if tr[i] != tr2[i] {
			t.Fatalf("request %d differs across identical seeds", i)
		}
	}
}

// TestGenerateNilCurveByteIdentical is the composition guarantee: a spec
// without a curve must replay the exact historical stream — thinning only
// costs draws when a curve is present.
func TestGenerateNilCurveByteIdentical(t *testing.T) {
	rps := []string{"RP1", "RP2"}
	asps := []string{"fir128", "sha3"}
	spec := ArrivalSpec{RatePerSec: 500, Skew: 1.1, Tenants: []string{"a", "b"}}
	tr, err := spec.Generate(11, 2000, rps, asps)
	if err != nil {
		t.Fatal(err)
	}
	// A flat curve at the same rate generates the same *mean* but is allowed
	// to differ (it draws thinning uniforms); the nil-curve stream is the
	// contract. Compare against a second nil-curve run and the pre-curve
	// reference generator (OpenPoisson for the plain case).
	plainSpec := ArrivalSpec{RatePerSec: 500}
	plain, err := plainSpec.Generate(11, 2000, rps, asps)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := OpenPoisson(11, 2000, 500, rps, asps)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if plain[i] != ref[i] {
			t.Fatalf("request %d diverges from the historical stream: %+v vs %+v", i, plain[i], ref[i])
		}
	}
	tr2, err := spec.Generate(11, 2000, rps, asps)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr {
		if tr[i] != tr2[i] {
			t.Fatalf("request %d differs across identical seeds", i)
		}
	}
}

// TestGenerateUntilFlatCurveMatchesRate checks thinning against a flat
// curve: the accepted rate converges to the curve level (acceptance
// probability 1 — no candidate wasted), so the thinning construction does
// not bias the mean.
func TestGenerateUntilFlatCurveMatchesRate(t *testing.T) {
	c := &RateCurve{Points: []RatePoint{{At: 0, RatePerSec: 400}, {At: 10 * sim.Second, RatePerSec: 400}}}
	spec := ArrivalSpec{Curve: c}
	tr, err := spec.GenerateUntil(13, 10*sim.Second, []string{"RP1"}, []string{"fir128"})
	if err != nil {
		t.Fatal(err)
	}
	measured := float64(len(tr)) / 10
	if measured < 0.95*400 || measured > 1.05*400 {
		t.Errorf("flat-curve rate %.1f req/s, want 400 ±5%%", measured)
	}
}

func TestArrivalSpecSLOClasses(t *testing.T) {
	spec := ArrivalSpec{
		RatePerSec: 500,
		Deadline:   50 * sim.Millisecond,
		Classes: []SLOClass{
			{Name: "latency", Deadline: 10 * sim.Millisecond, Weight: 3},
			{Name: "batch", Weight: 1}, // no deadline: falls back to the spec's
		},
	}
	tr, err := spec.Generate(17, 4000, []string{"RP1"}, []string{"fir128"})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, req := range tr {
		counts[req.Class]++
		switch req.Class {
		case "latency":
			if req.Deadline != 10*sim.Millisecond {
				t.Fatalf("latency request carries deadline %v", req.Deadline)
			}
		case "batch":
			if req.Deadline != 50*sim.Millisecond {
				t.Fatalf("batch request should fall back to the spec deadline, got %v", req.Deadline)
			}
		default:
			t.Fatalf("unclassed request in a classed stream: %+v", req)
		}
	}
	// 3:1 weights → roughly three quarters latency.
	frac := float64(counts["latency"]) / float64(len(tr))
	if frac < 0.70 || frac > 0.80 {
		t.Errorf("latency share %.2f, want ≈0.75", frac)
	}
	// No classes ⇒ the historical classless stream, byte for byte.
	classless := ArrivalSpec{RatePerSec: 500, Deadline: 50 * sim.Millisecond}
	tr2, err := classless.Generate(17, 4000, []string{"RP1"}, []string{"fir128"})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ArrivalSpec{RatePerSec: 500, Deadline: 50 * sim.Millisecond}.Generate(17, 4000, []string{"RP1"}, []string{"fir128"})
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr2 {
		if tr2[i] != ref[i] {
			t.Fatalf("classless request %d not stable", i)
		}
		if tr2[i].Class != "" {
			t.Fatalf("classless request %d carries class %q", i, tr2[i].Class)
		}
	}
}

// TestSkewPickerBinarySearchMatchesLinearScan pins the binary-search
// picker against the linear reference it replaced: identical RNG streams
// must yield identical index sequences for every (n, skew) shape —
// including skews that pile nearly all mass on the head, where an
// off-by-one at the cumulative boundary would show immediately.
func TestSkewPickerBinarySearchMatchesLinearScan(t *testing.T) {
	linearRef := func(rng *sim.RNG, n int, skew float64) func() int {
		cum := make([]float64, n)
		total := 0.0
		for i := 0; i < n; i++ {
			total += 1 / math.Pow(float64(i+1), skew)
			cum[i] = total
		}
		return func() int {
			u := rng.Float64() * total
			for i, c := range cum {
				if u < c {
					return i
				}
			}
			return n - 1
		}
	}
	for _, n := range []int{1, 2, 3, 7, 16, 100} {
		for _, skew := range []float64{0.3, 1.0, 1.1, 2.5, 8} {
			a := skewPicker(sim.NewRNG(99), n, skew)
			b := linearRef(sim.NewRNG(99), n, skew)
			for i := 0; i < 5000; i++ {
				if got, want := a(), b(); got != want {
					t.Fatalf("n=%d skew=%v draw %d: binary %d vs linear %d", n, skew, i, got, want)
				}
			}
		}
	}
}
