package workload

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/sim"
)

func sampleTrace(t *testing.T) Trace {
	t.Helper()
	spec := ArrivalSpec{
		RatePerSec: 300,
		Tenants:    []string{"alpha", "beta"},
		Classes: []SLOClass{
			{Name: "latency", Deadline: 20 * sim.Millisecond, Weight: 3},
			{Name: "batch", Deadline: 120 * sim.Millisecond},
		},
	}
	tr, err := spec.Generate(5, 64, []string{"RP1", "RP2"}, []string{"fir128", "sha3"})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestTraceFileRoundTripByteIdentical is the format's core contract:
// export → import → re-export is byte-identical, and the imported trace
// equals the original request for request.
func TestTraceFileRoundTripByteIdentical(t *testing.T) {
	tr := sampleTrace(t)
	data, err := ExportTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ImportTrace(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(tr) {
		t.Fatalf("imported %d requests, want %d", len(back), len(tr))
	}
	for i := range tr {
		if back[i] != tr[i] {
			t.Fatalf("request %d round-trips to %+v, want %+v", i, back[i], tr[i])
		}
	}
	again, err := ExportTrace(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatal("re-export is not byte-identical to the original export")
	}
	// Repeated exports of the same trace are identical too (canonical form).
	repeat, err := ExportTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, repeat) {
		t.Fatal("repeated export differs")
	}
}

// TestTraceFileRejectsFutureVersion pins the schema-version gate: a file
// stamped by a newer build must fail with an error naming both versions,
// not silently drop fields.
func TestTraceFileRejectsFutureVersion(t *testing.T) {
	data, err := ExportTrace(sampleTrace(t))
	if err != nil {
		t.Fatal(err)
	}
	bumped := bytes.Replace(data,
		[]byte(`"version": 1`),
		[]byte(`"version": 2`), 1)
	if bytes.Equal(bumped, data) {
		t.Fatal("test did not bump the version field")
	}
	_, err = ImportTrace(bumped)
	if err == nil {
		t.Fatal("future-version trace file accepted")
	}
	if !strings.Contains(err.Error(), "version 2") || !strings.Contains(err.Error(), "newer") {
		t.Errorf("rejection should name the offending version: %v", err)
	}
}

func TestTraceFileRejectsMalformedInput(t *testing.T) {
	cases := []struct {
		name string
		data string
		want string
	}{
		{"not json", "not json", "valid JSON"},
		{"missing version", `{"requests": []}`, "missing schema version"},
		{"negative time", `{"version": 1, "requests": [{"at_ps": -1, "rp": "RP1", "asp": "fir128"}]}`, "negative time"},
		{"unordered", `{"version": 1, "requests": [
			{"at_ps": 5, "rp": "RP1", "asp": "fir128"},
			{"at_ps": 1, "rp": "RP1", "asp": "fir128"}]}`, "time-ordered"},
		{"missing rp", `{"version": 1, "requests": [{"at_ps": 1, "asp": "fir128"}]}`, "missing rp or asp"},
	}
	for _, tc := range cases {
		_, err := ImportTrace([]byte(tc.data))
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q should mention %q", tc.name, err, tc.want)
		}
	}
}

// TestTraceFileOmitsEmptyOptionalFields keeps the on-disk form minimal:
// anonymous classless no-deadline requests encode without the optional
// keys, so stationary traces stay compact and diffs stay readable.
func TestTraceFileOmitsEmptyOptionalFields(t *testing.T) {
	data, err := ExportTrace(Trace{{At: 1, RP: "RP1", ASP: "fir128"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"tenant", "class", "deadline_ps"} {
		if bytes.Contains(data, []byte(key)) {
			t.Errorf("zero-valued %q should be omitted:\n%s", key, data)
		}
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc["version"].(float64) != TraceFileVersion {
		t.Errorf("version = %v, want %d", doc["version"], TraceFileVersion)
	}
}
