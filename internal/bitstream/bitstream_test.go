package bitstream

import (
	"testing"
	"testing/quick"

	"repro/internal/fabric"
	"repro/internal/platform"
	"repro/internal/sim"
)

func testFrames(n int, seed uint64) [][]uint32 {
	rng := sim.NewRNG(seed)
	frames := make([][]uint32, n)
	for i := range frames {
		f := make([]uint32, fabric.FrameWords)
		// Realistic partial bitstreams cluster their zeros: ~30% of frames
		// configure unused area (all zero); the rest have a used prefix and
		// a zero tail.
		if !rng.Bool(0.3) {
			used := 40 + rng.Intn(fabric.FrameWords-40)
			for w := 0; w < used; w++ {
				f[w] = rng.Uint32()
			}
		}
		frames[i] = f
	}
	return frames
}

func buildStandard(t *testing.T) (*fabric.Device, fabric.Region, *Bitstream) {
	t.Helper()
	d := platform.Default().NewDevice()
	rp := platform.Default().RPs(d)[0]
	bs, err := Build(d, rp, "asp-fir", testFrames(d.RegionFrames(rp), 1))
	if err != nil {
		t.Fatal(err)
	}
	return d, rp, bs
}

func TestBuildProducesPaperCalibratedSize(t *testing.T) {
	// The headline calibration: a standard RP bitstream must be exactly
	// 528,760 bytes — the size implied by every row of Table I.
	_, _, bs := buildStandard(t)
	if bs.Size() != 528760 {
		t.Fatalf("bitstream size = %d, want 528760", bs.Size())
	}
	if got := ExpectedSize(1308); got != 528760 {
		t.Errorf("ExpectedSize(1308) = %d, want 528760", got)
	}
}

func TestBuildHeaderRoundTrip(t *testing.T) {
	_, _, bs := buildStandard(t)
	h, err := ParseHeader(bs.Raw)
	if err != nil {
		t.Fatal(err)
	}
	if h.Name != "asp-fir" {
		t.Errorf("Name = %q", h.Name)
	}
	if h.Part != "xc7z020" {
		t.Errorf("Part = %q", h.Part)
	}
	if h.Frames != 1308 {
		t.Errorf("Frames = %d", h.Frames)
	}
	if h.DataWords*4+HeaderBytes != bs.Size() {
		t.Errorf("DataWords inconsistent with size")
	}
}

func TestParseHeaderDetectsCorruption(t *testing.T) {
	_, _, bs := buildStandard(t)
	raw := make([]byte, len(bs.Raw))
	copy(raw, bs.Raw)
	raw[HeaderBytes+12345] ^= 0x40
	if _, err := ParseHeader(raw); err == nil {
		t.Error("payload corruption must fail the file CRC")
	}
	if _, err := ParseHeader(raw[:20]); err == nil {
		t.Error("truncated header must fail")
	}
	bad := make([]byte, len(bs.Raw))
	copy(bad, bs.Raw)
	copy(bad[0:8], "NOTMAGIC")
	if _, err := ParseHeader(bad); err == nil {
		t.Error("bad magic must fail")
	}
}

func TestBuildValidatesInput(t *testing.T) {
	d := platform.Default().NewDevice()
	rp := platform.Default().RPs(d)[0]
	if _, err := Build(d, rp, "x", testFrames(3, 1)); err == nil {
		t.Error("wrong frame count must fail")
	}
	frames := testFrames(d.RegionFrames(rp), 1)
	frames[0] = frames[0][:50]
	if _, err := Build(d, rp, "x", frames); err == nil {
		t.Error("short frame must fail")
	}
	if _, err := Build(d, rp, "a-very-long-name-indeed", testFrames(d.RegionFrames(rp), 1)); err == nil {
		t.Error("long name must fail")
	}
	if _, err := Build(d, fabric.Region{Name: "bad", Row: 9}, "x", nil); err == nil {
		t.Error("invalid region must fail")
	}
}

func TestPacketEncodingDecoding(t *testing.T) {
	tests := []struct {
		w    uint32
		want Header
	}{
		{Type1(OpWrite, RegFDRI, 0), Header{Type: 1, Op: OpWrite, Reg: RegFDRI, Words: 0}},
		{Type1(OpWrite, RegCMD, 1), Header{Type: 1, Op: OpWrite, Reg: RegCMD, Words: 1}},
		{Type1(OpRead, RegFDRO, 500), Header{Type: 1, Op: OpRead, Reg: RegFDRO, Words: 500}},
		{Type2(OpWrite, 132108), Header{Type: 2, Op: OpWrite, Words: 132108}},
	}
	for _, tt := range tests {
		got, ok := Decode(tt.w)
		if !ok {
			t.Fatalf("Decode(%#x) not a header", tt.w)
		}
		if got != tt.want {
			t.Errorf("Decode(%#x) = %+v, want %+v", tt.w, got, tt.want)
		}
	}
	if _, ok := Decode(DummyWord); ok {
		t.Error("dummy word must not decode as a header")
	}
	if _, ok := Decode(SyncWord); ok {
		t.Error("sync word must not decode as a header")
	}
	// NOP decodes as a type-1 zero-count packet with OpNOP.
	h, ok := Decode(NOP)
	if !ok || h.Op != OpNOP || h.Words != 0 {
		t.Errorf("NOP decode = %+v ok=%v", h, ok)
	}
}

func TestPacketEncodingPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Type1(OpWrite, RegFDRI, Type1MaxWords+1)
}

func TestConfigCRCDetectsAnySingleBitFlip(t *testing.T) {
	frames := testFrames(4, 2)
	var a ConfigCRC
	for _, f := range frames {
		a.UpdateWords(RegFDRI, f)
	}
	orig := a.Value()
	// Flip one bit in one word and recompute.
	frames[2][37] ^= 1 << 19
	var b ConfigCRC
	for _, f := range frames {
		b.UpdateWords(RegFDRI, f)
	}
	if b.Value() == orig {
		t.Error("single-bit flip not detected by config CRC")
	}
}

func TestConfigCRCUpdateWordsMatchesUpdate(t *testing.T) {
	words := make([]uint32, 700)
	rng := sim.NewRNG(3)
	for i := range words {
		words[i] = rng.Uint32()
	}
	var a, b ConfigCRC
	a.UpdateWords(RegFDRI, words)
	for _, w := range words {
		b.Update(RegFDRI, w)
	}
	if a.Value() != b.Value() {
		t.Errorf("batched %08x != serial %08x", a.Value(), b.Value())
	}
}

func TestConfigCRCRegisterAddressMatters(t *testing.T) {
	var a, b ConfigCRC
	a.Update(RegFDRI, 0x1234)
	b.Update(RegFAR, 0x1234)
	if a.Value() == b.Value() {
		t.Error("CRC must include the register address")
	}
}

func TestConfigCRCResetAndZeroValue(t *testing.T) {
	var a ConfigCRC
	a.Update(RegFDRI, 99)
	a.Reset()
	if a.Value() != 0 {
		t.Error("reset CRC must be zero")
	}
}

func TestFrameCRCMatchesBuilderExpectation(t *testing.T) {
	// FrameCRC over the same frames twice is stable and corruption-visible.
	frames := testFrames(10, 4)
	c1 := FrameCRC(frames)
	c2 := FrameCRC(frames)
	if c1 != c2 {
		t.Error("FrameCRC not deterministic")
	}
	frames[9][100] ^= 0x8000
	if FrameCRC(frames) == c1 {
		t.Error("FrameCRC missed corruption in the last word")
	}
}

func TestBitstreamWordsAccessor(t *testing.T) {
	_, _, bs := buildStandard(t)
	words := bs.Words()
	if len(words) != bs.Header.DataWords {
		t.Fatalf("Words() = %d, want %d", len(words), bs.Header.DataWords)
	}
	if words[0] != DummyWord {
		t.Errorf("first word = %#x, want dummy", words[0])
	}
	if words[12] != SyncWord {
		t.Errorf("word 12 = %#x, want sync", words[12])
	}
	if words[len(words)-1] != NOP {
		t.Errorf("last word = %#x, want NOP trail", words[len(words)-1])
	}
}

func TestCompressRoundTrip(t *testing.T) {
	_, _, bs := buildStandard(t)
	comp, err := Compress(bs.Raw)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(bs.Raw) {
		t.Fatalf("round trip length %d, want %d", len(back), len(bs.Raw))
	}
	for i := range back {
		if back[i] != bs.Raw[i] {
			t.Fatalf("round trip differs at byte %d", i)
		}
	}
	ratio := CompressionRatio(bs.Raw, comp)
	if ratio < 1.3 {
		t.Errorf("compression ratio %.2f too low for 60%%-zero bitstream", ratio)
	}
}

func TestCompressRoundTripProperty(t *testing.T) {
	prop := func(words []uint32, zeroEvery uint8) bool {
		raw := make([]byte, len(words)*4)
		for i, w := range words {
			// int-widen before the +1: zeroEvery==255 would wrap to a
			// zero modulus in uint8.
			if zeroEvery > 0 && i%(int(zeroEvery)+1) == 0 {
				w = 0
			}
			raw[i*4] = byte(w >> 24)
			raw[i*4+1] = byte(w >> 16)
			raw[i*4+2] = byte(w >> 8)
			raw[i*4+3] = byte(w)
		}
		comp, err := Compress(raw)
		if err != nil {
			return false
		}
		back, err := Decompress(comp)
		if err != nil {
			return false
		}
		if len(back) != len(raw) {
			return false
		}
		for i := range raw {
			if raw[i] != back[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCompressRejectsUnaligned(t *testing.T) {
	if _, err := Compress(make([]byte, 7)); err == nil {
		t.Error("unaligned input must fail")
	}
}

func TestDecompressRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		[]byte("NOTMAGIC0000"),
	}
	for _, c := range cases {
		if _, err := Decompress(c); err == nil {
			t.Errorf("Decompress(%q) should fail", c)
		}
	}
	// Truncated valid stream.
	raw := make([]byte, 64)
	for i := range raw {
		raw[i] = byte(i)
	}
	comp, err := Compress(raw)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decompress(comp[:len(comp)-4]); err == nil {
		t.Error("truncated stream should fail")
	}
}

func TestRegAndCmdStrings(t *testing.T) {
	if RegFDRI.String() != "FDRI" || RegCRC.String() != "CRC" {
		t.Error("register names wrong")
	}
	if Reg(0x1F).String() != "Reg(0x1F)" {
		t.Errorf("unknown reg = %q", Reg(0x1F).String())
	}
	if CmdWCFG.String() != "WCFG" || CmdDesync.String() != "DESYNC" {
		t.Error("command names wrong")
	}
	if Cmd(0xE).String() != "Cmd(0xE)" {
		t.Errorf("unknown cmd = %q", Cmd(0xE).String())
	}
}

func TestConfigCRCMatchesBitstreamField(t *testing.T) {
	// Replaying the builder's FDRI payload through a fresh ConfigCRC (with
	// the same register-write sequence) must land on Bitstream.ConfigCRC.
	d := platform.Default().NewDevice()
	rp := platform.Default().RPs(d)[0]
	frames := testFrames(d.RegionFrames(rp), 5)
	bs, err := Build(d, rp, "crc-check", frames)
	if err != nil {
		t.Fatal(err)
	}
	var crc ConfigCRC
	crc.Update(RegIDCODE, d.IDCode)
	crc.Update(RegCMD, uint32(CmdRCRC))
	crc.Reset()
	crc.Update(RegFAR, bs.Start.FAR())
	crc.Update(RegCMD, uint32(CmdWCFG))
	for _, f := range frames {
		crc.UpdateWords(RegFDRI, f)
	}
	if crc.Value() != bs.ConfigCRC {
		t.Errorf("replayed CRC %08x != builder %08x", crc.Value(), bs.ConfigCRC)
	}
}
