package bitstream

import (
	"encoding/binary"
	"fmt"

	"repro/internal/fabric"
)

// HeaderBytes is the fixed size of the BIT-style file header.
const HeaderBytes = 48

// CommandOverheadWords is the number of non-data configuration words in
// every partial bitstream this builder emits (preamble, register writes,
// CRC, desync and NOP trail). It is held constant so the file size is a
// pure function of the frame count:
//
//	size = HeaderBytes + 4·(CommandOverheadWords + frames·101)
//
// For the standard 1308-frame RP this gives 48 + 4·132178 = 528,760 bytes —
// the size implied by every row of the paper's Table I.
const CommandOverheadWords = 70

// FileHeader is the decoded BIT-style header.
type FileHeader struct {
	Name      string // design/ASP name, ≤15 bytes
	Part      string // device part, ≤7 bytes
	DataWords int    // config words following the header
	Frames    int    // frame count carried in FDRI
	FileCRC   uint32 // CRC-32C of the config-word payload
}

const fileMagic = "ZPDRBITS"

// Bitstream is a fully assembled partial bitstream plus the metadata needed
// by loaders and by the ground-truth oracle in tests.
type Bitstream struct {
	Header FileHeader
	// Raw is the complete file image (header + config words, big-endian).
	Raw []byte
	// Start is the first frame address written.
	Start fabric.FrameAddr
	// Frames is the frame payload in configuration order (references, not
	// copies, of the builder input).
	Frames [][]uint32
	// ConfigCRC is the expected running CRC at the CRC-register write.
	ConfigCRC uint32

	// words caches the decoded config-word payload: loaders stream the same
	// ~132 K-word image thousands of times per experiment grid, and
	// re-decoding it per load dominated the simulator's allocation profile.
	words []uint32
	// frameCRC lazily caches FrameCRC(Frames) for the read-back monitor.
	frameCRC      uint32
	frameCRCKnown bool
}

// Size returns the file image size in bytes.
func (b *Bitstream) Size() int { return len(b.Raw) }

// Words returns the config-word payload (after the file header) decoded
// back to uint32s. The decode is cached on the Bitstream and the same slice
// is returned on every call: treat it as read-only (loaders stream it
// directly into the DMA model).
func (b *Bitstream) Words() []uint32 {
	if b.words == nil {
		body := b.Raw[HeaderBytes:]
		out := make([]uint32, len(body)/4)
		for i := range out {
			out[i] = binary.BigEndian.Uint32(body[i*4:])
		}
		b.words = out
	}
	return b.words
}

// FrameCRC returns the detached checksum of the frame payload (the golden
// reference the CRC read-back monitor compares against), computed once and
// cached.
func (b *Bitstream) FrameCRC() uint32 {
	if !b.frameCRCKnown {
		b.frameCRC = FrameCRC(b.Frames)
		b.frameCRCKnown = true
	}
	return b.frameCRC
}

// Build assembles a partial bitstream that configures region r of device dev
// with the given frames (len must equal dev.RegionFrames(r)).
func Build(dev *fabric.Device, r fabric.Region, name string, frames [][]uint32) (*Bitstream, error) {
	if err := dev.Validate(r); err != nil {
		return nil, err
	}
	want := dev.RegionFrames(r)
	if len(frames) != want {
		return nil, fmt.Errorf("bitstream: region %q needs %d frames, got %d", r.Name, want, len(frames))
	}
	for i, f := range frames {
		if len(f) != fabric.FrameWords {
			return nil, fmt.Errorf("bitstream: frame %d has %d words, want %d", i, len(f), fabric.FrameWords)
		}
	}
	if len(name) > 15 {
		return nil, fmt.Errorf("bitstream: name %q longer than 15 bytes", name)
	}

	start := r.RegionStart()
	dataWords := len(frames) * fabric.FrameWords
	var crc ConfigCRC
	words := make([]uint32, 0, CommandOverheadWords+dataWords)

	emit := func(w uint32) { words = append(words, w) }
	write1 := func(reg Reg, v uint32) {
		emit(Type1(OpWrite, reg, 1))
		emit(v)
		crc.Update(reg, v)
	}

	// Preamble: dummies, bus-width detection, sync. (13 words)
	for i := 0; i < 8; i++ {
		emit(DummyWord)
	}
	emit(BusWidthSync)
	emit(BusWidthDetect)
	emit(DummyWord)
	emit(DummyWord)
	emit(SyncWord)

	// Setup. (12 words)
	emit(NOP)
	write1(RegIDCODE, dev.IDCode)
	write1(RegCMD, uint32(CmdRCRC))
	crc.Reset() // RCRC zeroes the running CRC after the write folds in
	emit(NOP)
	emit(NOP)
	write1(RegFAR, start.FAR())
	write1(RegCMD, uint32(CmdWCFG))
	emit(NOP)

	// Frame data: type-1 FDRI header with zero count, then a type-2
	// continuation carrying the whole payload. (2 + dataWords words)
	emit(Type1(OpWrite, RegFDRI, 0))
	emit(Type2(OpWrite, dataWords))
	for _, f := range frames {
		words = append(words, f...)
		crc.UpdateWords(RegFDRI, f)
	}

	// Postamble: CRC check, LFRM, desync. The CRC word itself is the value
	// accumulated so far (the device compares before folding).
	expectCRC := crc.Value()
	emit(Type1(OpWrite, RegCRC, 1))
	emit(expectCRC)
	write1(RegCMD, uint32(CmdLFRM))
	emit(NOP)
	emit(NOP)
	emit(NOP)
	write1(RegCMD, uint32(CmdDesync))

	// NOP trail pads the command overhead to the fixed budget.
	overhead := len(words) - dataWords
	if overhead > CommandOverheadWords {
		return nil, fmt.Errorf("bitstream: command overhead %d exceeds budget %d", overhead, CommandOverheadWords)
	}
	for overhead < CommandOverheadWords {
		emit(NOP)
		overhead++
	}

	// Serialise.
	raw := make([]byte, HeaderBytes+4*len(words))
	for i, w := range words {
		binary.BigEndian.PutUint32(raw[HeaderBytes+i*4:], w)
	}
	hdr := FileHeader{
		Name:      name,
		Part:      dev.Name,
		DataWords: len(words),
		Frames:    len(frames),
		FileCRC:   FileCRC(raw[HeaderBytes:]),
	}
	putHeader(raw[:HeaderBytes], hdr)

	return &Bitstream{
		Header:    hdr,
		Raw:       raw,
		Start:     start,
		Frames:    frames,
		ConfigCRC: expectCRC,
		// The assembled word image is exactly what Words() would decode
		// back out of Raw; keep it so loaders never re-decode.
		words: words,
	}, nil
}

func putHeader(dst []byte, h FileHeader) {
	copy(dst[0:8], fileMagic)
	binary.BigEndian.PutUint32(dst[8:12], 1) // version
	copy(dst[12:28], h.Name)                 // NUL-padded
	copy(dst[28:36], h.Part)
	binary.BigEndian.PutUint32(dst[36:40], uint32(h.DataWords))
	binary.BigEndian.PutUint32(dst[40:44], uint32(h.Frames))
	binary.BigEndian.PutUint32(dst[44:48], h.FileCRC)
}

// ParseHeader decodes and validates the file header and payload CRC of a
// raw bitstream image.
func ParseHeader(raw []byte) (FileHeader, error) {
	if len(raw) < HeaderBytes {
		return FileHeader{}, fmt.Errorf("bitstream: image of %d bytes shorter than header", len(raw))
	}
	if string(raw[0:8]) != fileMagic {
		return FileHeader{}, fmt.Errorf("bitstream: bad magic %q", raw[0:8])
	}
	h := FileHeader{
		Name:      cstr(raw[12:28]),
		Part:      cstr(raw[28:36]),
		DataWords: int(binary.BigEndian.Uint32(raw[36:40])),
		Frames:    int(binary.BigEndian.Uint32(raw[40:44])),
		FileCRC:   binary.BigEndian.Uint32(raw[44:48]),
	}
	if want := HeaderBytes + 4*h.DataWords; len(raw) != want {
		return h, fmt.Errorf("bitstream: image %d bytes, header says %d", len(raw), want)
	}
	if got := FileCRC(raw[HeaderBytes:]); got != h.FileCRC {
		return h, fmt.Errorf("bitstream: payload CRC mismatch (got %08x, header %08x)", got, h.FileCRC)
	}
	return h, nil
}

func cstr(b []byte) string {
	for i, c := range b {
		if c == 0 {
			return string(b[:i])
		}
	}
	return string(b)
}

// ExpectedSize returns the file size Build produces for a region with the
// given frame count.
func ExpectedSize(frames int) int {
	return HeaderBytes + 4*(CommandOverheadWords+frames*fabric.FrameWords)
}
