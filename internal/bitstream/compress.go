package bitstream

import (
	"encoding/binary"
	"fmt"
)

// Compression format (Sec. VI "Bitstream Decompressor" input): partial
// bitstreams are dominated by zero words (unused LUTs/routing), so a
// word-oriented run-length encoding captures most of the win of the
// vendor's multi-frame-write compression while staying trivially
// implementable in the PR controller's decompressor block.
//
// Layout (all big-endian):
//
//	magic   "ZPDRCMPR" (8 bytes)
//	origLen uint32     (decompressed byte length; multiple of 4)
//	records: repeated { zeroRun uint32; litCount uint32; literals … }
//
// zeroRun says how many zero words to emit, litCount how many literal words
// follow inline. The stream ends when origLen words have been produced.

const compressMagic = "ZPDRCMPR"

// Compress run-length encodes a word-aligned image (typically
// Bitstream.Raw). It returns an error for images whose length is not a
// multiple of 4.
func Compress(raw []byte) ([]byte, error) {
	if len(raw)%4 != 0 {
		return nil, fmt.Errorf("bitstream: compress input %d bytes not word-aligned", len(raw))
	}
	words := len(raw) / 4
	out := make([]byte, 0, len(raw)/2+16)
	out = append(out, compressMagic...)
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(raw)))
	out = append(out, lenBuf[:]...)

	isZero := func(i int) bool {
		return raw[i*4] == 0 && raw[i*4+1] == 0 && raw[i*4+2] == 0 && raw[i*4+3] == 0
	}
	i := 0
	for i < words {
		zs := i
		for i < words && isZero(i) {
			i++
		}
		zeroRun := i - zs
		ls := i
		// A literal run ends at the next run of ≥2 zeros (a single zero is
		// cheaper inline than a new record).
		for i < words {
			if isZero(i) && (i+1 >= words || isZero(i+1)) {
				break
			}
			i++
		}
		litCount := i - ls
		var hdr [8]byte
		binary.BigEndian.PutUint32(hdr[0:4], uint32(zeroRun))
		binary.BigEndian.PutUint32(hdr[4:8], uint32(litCount))
		out = append(out, hdr[:]...)
		out = append(out, raw[ls*4:i*4]...)
	}
	return out, nil
}

// Decompress inverts Compress.
func Decompress(comp []byte) ([]byte, error) {
	if len(comp) < 12 || string(comp[:8]) != compressMagic {
		return nil, fmt.Errorf("bitstream: not a compressed image")
	}
	origLen := int(binary.BigEndian.Uint32(comp[8:12]))
	if origLen%4 != 0 {
		return nil, fmt.Errorf("bitstream: corrupt length %d", origLen)
	}
	out := make([]byte, 0, origLen)
	p := 12
	for len(out) < origLen {
		if p+8 > len(comp) {
			return nil, fmt.Errorf("bitstream: truncated record at offset %d", p)
		}
		zeroRun := int(binary.BigEndian.Uint32(comp[p : p+4]))
		litCount := int(binary.BigEndian.Uint32(comp[p+4 : p+8]))
		p += 8
		if zeroRun > (origLen-len(out))/4 {
			return nil, fmt.Errorf("bitstream: zero run %d overflows output", zeroRun)
		}
		out = append(out, make([]byte, zeroRun*4)...)
		if p+litCount*4 > len(comp) {
			return nil, fmt.Errorf("bitstream: literal run %d overflows input", litCount)
		}
		if litCount*4 > origLen-len(out) {
			return nil, fmt.Errorf("bitstream: literal run %d overflows output", litCount)
		}
		out = append(out, comp[p:p+litCount*4]...)
		p += litCount * 4
	}
	if p != len(comp) {
		return nil, fmt.Errorf("bitstream: %d trailing bytes after records", len(comp)-p)
	}
	return out, nil
}

// CompressionRatio returns original/compressed size.
func CompressionRatio(orig, comp []byte) float64 {
	if len(comp) == 0 {
		return 0
	}
	return float64(len(orig)) / float64(len(comp))
}
