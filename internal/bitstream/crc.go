package bitstream

import (
	"hash/crc32"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ConfigCRC is the running configuration CRC maintained by the device while
// a bitstream loads. Every register write (including each FDRI data word)
// folds the 5-bit register address and the 32-bit word into the checksum;
// writing the CRC register compares the expected value and writing
// CMD=RCRC resets it. The zero value is a reset CRC.
type ConfigCRC struct {
	crc uint32
}

// Reset clears the running value (CMD = RCRC).
func (c *ConfigCRC) Reset() { c.crc = 0 }

// Update folds one register write into the checksum.
func (c *ConfigCRC) Update(reg Reg, word uint32) {
	var buf [5]byte
	buf[0] = byte(reg) & 0x1F
	buf[1] = byte(word >> 24)
	buf[2] = byte(word >> 16)
	buf[3] = byte(word >> 8)
	buf[4] = byte(word)
	c.crc = crc32.Update(c.crc, castagnoli, buf[:])
}

// UpdateWords folds a run of writes to the same register (the FDRI case).
func (c *ConfigCRC) UpdateWords(reg Reg, words []uint32) {
	// Process in chunks to amortise the crc32.Update call overhead.
	var buf [5 * 256]byte
	for len(words) > 0 {
		n := len(words)
		if n > 256 {
			n = 256
		}
		for i := 0; i < n; i++ {
			w := words[i]
			off := i * 5
			buf[off] = byte(reg) & 0x1F
			buf[off+1] = byte(w >> 24)
			buf[off+2] = byte(w >> 16)
			buf[off+3] = byte(w >> 8)
			buf[off+4] = byte(w)
		}
		c.crc = crc32.Update(c.crc, castagnoli, buf[:n*5])
		words = words[n:]
	}
}

// Value returns the current checksum.
func (c *ConfigCRC) Value() uint32 { return c.crc }

// FrameCRC computes a detached checksum over raw frame words, used by the
// CRC read-back monitor to compare configuration memory against the golden
// reference without replaying the packet stream.
func FrameCRC(frames [][]uint32) uint32 {
	crc := uint32(0)
	var buf [4 * 256]byte
	for _, f := range frames {
		words := f
		for len(words) > 0 {
			n := len(words)
			if n > 256 {
				n = 256
			}
			for i := 0; i < n; i++ {
				w := words[i]
				off := i * 4
				buf[off] = byte(w >> 24)
				buf[off+1] = byte(w >> 16)
				buf[off+2] = byte(w >> 8)
				buf[off+3] = byte(w)
			}
			crc = crc32.Update(crc, castagnoli, buf[:n*4])
			words = words[n:]
		}
	}
	return crc
}

// FileCRC is the whole-payload checksum stored in the BIT-style header to
// detect storage/transport corruption (distinct from the config CRC).
func FileCRC(payload []byte) uint32 { return crc32.Checksum(payload, castagnoli) }
