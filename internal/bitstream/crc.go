package bitstream

import (
	"hash/crc32"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// crcChunkWords is how many words the CRC helpers pack per crc32.Update
// call: large enough to amortise the call overhead, small enough that the
// scratch buffers stay modest.
const crcChunkWords = 512

// ConfigCRC is the running configuration CRC maintained by the device while
// a bitstream loads. Every register write (including each FDRI data word)
// folds the 5-bit register address and the 32-bit word into the checksum;
// writing the CRC register compares the expected value and writing
// CMD=RCRC resets it. The zero value is a reset CRC.
//
// The struct owns its packing buffer: crc32.Update is an indirect call, so a
// per-call stack buffer would escape and allocate on every burst. Callers on
// the hot path (the ICAP parser) hold one ConfigCRC for their whole life and
// therefore fold words allocation-free.
type ConfigCRC struct {
	crc uint32
	buf [5 * crcChunkWords]byte
}

// Reset clears the running value (CMD = RCRC).
func (c *ConfigCRC) Reset() { c.crc = 0 }

// Update folds one register write into the checksum.
func (c *ConfigCRC) Update(reg Reg, word uint32) {
	c.buf[0] = byte(reg) & 0x1F
	c.buf[1] = byte(word >> 24)
	c.buf[2] = byte(word >> 16)
	c.buf[3] = byte(word >> 8)
	c.buf[4] = byte(word)
	c.crc = crc32.Update(c.crc, castagnoli, c.buf[:5])
}

// UpdateWords folds a run of writes to the same register (the FDRI case).
func (c *ConfigCRC) UpdateWords(reg Reg, words []uint32) {
	regByte := byte(reg) & 0x1F
	for len(words) > 0 {
		n := len(words)
		if n > crcChunkWords {
			n = crcChunkWords
		}
		off := 0
		for _, w := range words[:n] {
			c.buf[off] = regByte
			c.buf[off+1] = byte(w >> 24)
			c.buf[off+2] = byte(w >> 16)
			c.buf[off+3] = byte(w >> 8)
			c.buf[off+4] = byte(w)
			off += 5
		}
		c.crc = crc32.Update(c.crc, castagnoli, c.buf[:off])
		words = words[n:]
	}
}

// Value returns the current checksum.
func (c *ConfigCRC) Value() uint32 { return c.crc }

// FrameCRCHasher accumulates the detached frame checksum incrementally.
// Like ConfigCRC it owns its packing buffer, so a long-lived hasher (the
// CRC read-back monitor keeps one per scan stream) folds frames without
// allocating. The zero value is ready to use.
type FrameCRCHasher struct {
	crc uint32
	buf [4 * crcChunkWords]byte
}

// Reset clears the running checksum for a new stream.
func (h *FrameCRCHasher) Reset() { h.crc = 0 }

// Fold accumulates one run of frame words.
func (h *FrameCRCHasher) Fold(words []uint32) {
	for len(words) > 0 {
		n := len(words)
		if n > crcChunkWords {
			n = crcChunkWords
		}
		off := 0
		for _, w := range words[:n] {
			h.buf[off] = byte(w >> 24)
			h.buf[off+1] = byte(w >> 16)
			h.buf[off+2] = byte(w >> 8)
			h.buf[off+3] = byte(w)
			off += 4
		}
		h.crc = crc32.Update(h.crc, castagnoli, h.buf[:off])
		words = words[n:]
	}
}

// Sum returns the accumulated checksum.
func (h *FrameCRCHasher) Sum() uint32 { return h.crc }

// FrameCRC computes a detached checksum over raw frame words, used by the
// CRC read-back monitor to compare configuration memory against the golden
// reference without replaying the packet stream.
func FrameCRC(frames [][]uint32) uint32 {
	var h FrameCRCHasher
	for _, f := range frames {
		h.Fold(f)
	}
	return h.Sum()
}

// FileCRC is the whole-payload checksum stored in the BIT-style header to
// detect storage/transport corruption (distinct from the config CRC).
func FileCRC(payload []byte) uint32 { return crc32.Checksum(payload, castagnoli) }
