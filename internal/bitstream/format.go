// Package bitstream implements the configuration bitstream format used by
// the reproduction: a BIT-style file header followed by a 7-series-style
// packet stream (sync word, type-1/type-2 packets, configuration registers
// and commands), a running configuration CRC, and an RLE compressor for the
// Sec.-VI decompressor block.
//
// The packet grammar mirrors the real 7-series one closely enough that a
// reader familiar with UG470 will recognise every word; the CRC is modelled
// with CRC-32C over the (register, word) stream rather than the exact
// hardware bit ordering (internally consistent — corruption anywhere in the
// stream is detected — but not bit-compatible with Vivado output).
package bitstream

import (
	"fmt"
)

// Well-known configuration words.
const (
	// SyncWord marks the start of the packet stream.
	SyncWord uint32 = 0xAA995566
	// NOP is a type-1 no-op packet.
	NOP uint32 = 0x20000000
	// DummyWord pads the stream before synchronisation.
	DummyWord uint32 = 0xFFFFFFFF
	// BusWidthSync and BusWidthDetect configure the configuration bus width.
	BusWidthSync   uint32 = 0x000000BB
	BusWidthDetect uint32 = 0x11220044
)

// Reg is a configuration register address.
type Reg uint32

// Configuration registers (the 7-series set we model).
const (
	RegCRC    Reg = 0x00
	RegFAR    Reg = 0x01
	RegFDRI   Reg = 0x02
	RegFDRO   Reg = 0x03
	RegCMD    Reg = 0x04
	RegCTL0   Reg = 0x05
	RegMASK   Reg = 0x06
	RegSTAT   Reg = 0x07
	RegLOUT   Reg = 0x08
	RegCOR0   Reg = 0x09
	RegIDCODE Reg = 0x0C
)

// String names the register.
func (r Reg) String() string {
	switch r {
	case RegCRC:
		return "CRC"
	case RegFAR:
		return "FAR"
	case RegFDRI:
		return "FDRI"
	case RegFDRO:
		return "FDRO"
	case RegCMD:
		return "CMD"
	case RegCTL0:
		return "CTL0"
	case RegMASK:
		return "MASK"
	case RegSTAT:
		return "STAT"
	case RegLOUT:
		return "LOUT"
	case RegCOR0:
		return "COR0"
	case RegIDCODE:
		return "IDCODE"
	default:
		return fmt.Sprintf("Reg(0x%02X)", uint32(r))
	}
}

// Cmd is a value written to the CMD register.
type Cmd uint32

// CMD register codes.
const (
	CmdNull   Cmd = 0x0
	CmdWCFG   Cmd = 0x1 // enable configuration-memory writes
	CmdLFRM   Cmd = 0x3 // last frame / de-assert GHIGH
	CmdRCFG   Cmd = 0x4 // enable configuration-memory reads
	CmdStart  Cmd = 0x5
	CmdRCRC   Cmd = 0x7 // reset the running CRC
	CmdDesync Cmd = 0xD // end of packet stream
)

// String names the command.
func (c Cmd) String() string {
	switch c {
	case CmdNull:
		return "NULL"
	case CmdWCFG:
		return "WCFG"
	case CmdLFRM:
		return "LFRM"
	case CmdRCFG:
		return "RCFG"
	case CmdStart:
		return "START"
	case CmdRCRC:
		return "RCRC"
	case CmdDesync:
		return "DESYNC"
	default:
		return fmt.Sprintf("Cmd(0x%X)", uint32(c))
	}
}

// Opcode of a packet header.
type Opcode uint32

// Packet opcodes.
const (
	OpNOP   Opcode = 0
	OpRead  Opcode = 1
	OpWrite Opcode = 2
)

// Packet header layout (type 1):
//
//	[31:29] = 001, [28:27] = opcode, [17:13] = register, [10:0] = word count
//
// and type 2 (word count continuation for the previous type-1 header):
//
//	[31:29] = 010, [28:27] = opcode, [26:0] = word count
const (
	type1Tag = 0x1 << 29
	type2Tag = 0x2 << 29
	// Type1MaxWords is the largest count a type-1 packet can carry.
	Type1MaxWords = 0x7FF
	// Type2MaxWords is the largest count a type-2 packet can carry.
	Type2MaxWords = 0x07FF_FFFF
)

// Type1 encodes a type-1 packet header.
func Type1(op Opcode, reg Reg, words int) uint32 {
	if words < 0 || words > Type1MaxWords {
		panic(fmt.Sprintf("bitstream: type-1 word count %d out of range", words))
	}
	return uint32(type1Tag) | uint32(op)<<27 | (uint32(reg)&0x1F)<<13 | uint32(words)
}

// Type2 encodes a type-2 packet header.
func Type2(op Opcode, words int) uint32 {
	if words < 0 || words > Type2MaxWords {
		panic(fmt.Sprintf("bitstream: type-2 word count %d out of range", words))
	}
	return uint32(type2Tag) | uint32(op)<<27 | uint32(words)
}

// Header describes a decoded packet header.
type Header struct {
	Type  int // 1 or 2
	Op    Opcode
	Reg   Reg // valid for type 1 only
	Words int
}

// Decode classifies a configuration word as a packet header. ok is false for
// non-header words (dummy, sync, data — data words are never passed to
// Decode by the parser, which tracks counts).
func Decode(w uint32) (Header, bool) {
	switch w >> 29 {
	case 0x1:
		return Header{
			Type:  1,
			Op:    Opcode(w >> 27 & 0x3),
			Reg:   Reg(w >> 13 & 0x1F),
			Words: int(w & 0x7FF),
		}, true
	case 0x2:
		return Header{
			Type:  2,
			Op:    Opcode(w >> 27 & 0x3),
			Words: int(w & 0x07FF_FFFF),
		}, true
	default:
		return Header{}, false
	}
}
