package srampdr

import (
	"math"
	"testing"

	"repro/internal/bitstream"
	"repro/internal/dram"
	"repro/internal/fabric"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/workload"
)

type rig struct {
	kernel *sim.Kernel
	dev    *fabric.Device
	mem    *fabric.Memory
	sys    *System
}

func newRig(t *testing.T) *rig {
	t.Helper()
	r := &rig{kernel: sim.NewKernel(), dev: platform.Default().NewDevice()}
	r.mem = fabric.NewMemory(r.dev)
	sys, err := New(Config{
		Kernel: r.kernel,
		Device: r.dev,
		Memory: r.mem,
		DDR:    dram.NewController(r.kernel, platform.Default().DRAM),
		Seed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.sys = sys
	return r
}

func (r *rig) aspBitstream(t *testing.T, name string, rpIdx int) (*bitstream.Bitstream, fabric.Region) {
	t.Helper()
	asp, err := workload.LibraryASP(name)
	if err != nil {
		t.Fatal(err)
	}
	rp := platform.Default().RPs(r.dev)[rpIdx]
	bs, err := asp.Bitstream(r.dev, rp)
	if err != nil {
		t.Fatal(err)
	}
	return bs, rp
}

// loadRaw registers, preloads and reconfigures; returns the result.
func (r *rig) loadVia(t *testing.T, bs *bitstream.Bitstream, compressed bool) ReconfigResult {
	t.Helper()
	if err := r.sys.Register(bs, compressed); err != nil {
		t.Fatal(err)
	}
	preloaded := false
	if err := r.sys.Preload(bs.Header.Name, func(Preloaded) { preloaded = true }); err != nil {
		t.Fatal(err)
	}
	r.kernel.Run()
	if !preloaded {
		t.Fatal("preload never completed")
	}
	var res *ReconfigResult
	if err := r.sys.Reconfigure(func(rr ReconfigResult) { res = &rr }); err != nil {
		t.Fatal(err)
	}
	r.kernel.Run()
	if res == nil {
		t.Fatal("reconfigure never completed")
	}
	return *res
}

func TestRawReconfigHitsTheoreticalThroughput(t *testing.T) {
	// Sec. VI's headline: ≈1237.5 MB/s from SRAM, nearly double the
	// measured 790 MB/s of the DMA path.
	r := newRig(t)
	bs, rp := r.aspBitstream(t, "fir128", 0)
	res := r.loadVia(t, bs, false)
	if !res.CRCValid {
		t.Fatal("reconfiguration did not verify")
	}
	want := TheoreticalThroughputMBs()
	if math.Abs(res.ThroughputMBs-want)/want > 0.02 {
		t.Errorf("throughput = %.1f MB/s, want ≈%.1f", res.ThroughputMBs, want)
	}
	// 528,760 bytes at 1237.5 MB/s ≈ 427 µs — well under the paper's best
	// 669 µs on the DMA path.
	if res.LatencyUS > 440 {
		t.Errorf("latency = %.1f µs, want ≈427", res.LatencyUS)
	}
	eq, err := r.mem.RegionEqual(rp, bs.Frames)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("configuration memory wrong after SRAM reconfig")
	}
}

func TestCompressedReconfigIsFaster(t *testing.T) {
	r1 := newRig(t)
	bs1, _ := r1.aspBitstream(t, "sha3", 0) // sparse → compressible
	raw := r1.loadVia(t, bs1, false)

	r2 := newRig(t)
	bs2, rp := r2.aspBitstream(t, "sha3", 0)
	comp := r2.loadVia(t, bs2, true)

	if !comp.CRCValid {
		t.Fatal("compressed reconfiguration did not verify")
	}
	if comp.BytesFromSRAM >= raw.BytesFromSRAM {
		t.Errorf("compressed image %d B should be smaller than raw %d B",
			comp.BytesFromSRAM, raw.BytesFromSRAM)
	}
	if comp.LatencyUS >= raw.LatencyUS {
		t.Errorf("decompressor should shorten the transfer: %.1f vs %.1f µs",
			comp.LatencyUS, raw.LatencyUS)
	}
	// Effective throughput (expanded bytes / time) must beat the SRAM port
	// rate — the decompressor synthesises zeros for free.
	if comp.ThroughputMBs <= TheoreticalThroughputMBs() {
		t.Errorf("effective throughput %.1f should exceed port rate", comp.ThroughputMBs)
	}
	eq, err := r2.mem.RegionEqual(rp, bs2.Frames)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("memory wrong after compressed reconfig")
	}
}

func TestPreloadTimePacedByDDR(t *testing.T) {
	r := newRig(t)
	bs, _ := r.aspBitstream(t, "fft1k", 0)
	if err := r.sys.Register(bs, false); err != nil {
		t.Fatal(err)
	}
	var at sim.Time
	start := r.kernel.Now()
	if err := r.sys.Preload("fft1k", func(p Preloaded) { at = p.At }); err != nil {
		t.Fatal(err)
	}
	r.kernel.Run()
	elapsed := at.Sub(start).Seconds()
	rate := float64(bs.Size()) / elapsed / 1e6
	// DDR effective ≈813 MB/s, chunked copy with SRAM write serialisation
	// lands below that but in the hundreds.
	if rate < 300 || rate > 820 {
		t.Errorf("preload rate = %.1f MB/s", rate)
	}
}

func TestPreloadOverlapBeatsSerial(t *testing.T) {
	// The PS scheduler's point: pre-loading the next bitstream during the
	// current ASP's compute hides the DRAM→SRAM copy entirely.
	computeTime := 800 * sim.Microsecond

	// Serial: compute, then copy, then reconfigure.
	r1 := newRig(t)
	bs1, _ := r1.aspBitstream(t, "aes-gcm", 0)
	if err := r1.sys.Register(bs1, false); err != nil {
		t.Fatal(err)
	}
	t0 := r1.kernel.Now()
	r1.kernel.RunFor(computeTime) // ASP computing, scheduler idle
	doneCopy := false
	if err := r1.sys.Preload("aes-gcm", func(Preloaded) { doneCopy = true }); err != nil {
		t.Fatal(err)
	}
	r1.kernel.Run()
	if !doneCopy {
		t.Fatal("copy incomplete")
	}
	var res1 *ReconfigResult
	if err := r1.sys.Reconfigure(func(rr ReconfigResult) { res1 = &rr }); err != nil {
		t.Fatal(err)
	}
	r1.kernel.Run()
	serial := r1.kernel.Now().Sub(t0)

	// Overlapped: preload issued at compute start.
	r2 := newRig(t)
	bs2, _ := r2.aspBitstream(t, "aes-gcm", 0)
	if err := r2.sys.Register(bs2, false); err != nil {
		t.Fatal(err)
	}
	t0 = r2.kernel.Now()
	if err := r2.sys.Preload("aes-gcm", nil); err != nil {
		t.Fatal(err)
	}
	r2.kernel.RunFor(computeTime) // copy proceeds during compute
	var res2 *ReconfigResult
	if err := r2.sys.Reconfigure(func(rr ReconfigResult) { res2 = &rr }); err != nil {
		t.Fatal(err)
	}
	r2.kernel.Run()
	overlapped := r2.kernel.Now().Sub(t0)

	if res1 == nil || res2 == nil {
		t.Fatal("reconfigs incomplete")
	}
	saved := float64(serial-overlapped) / 1e6 // µs
	copyUS := float64(bs2.Size()) / 700.0     // rough copy time at ~700 MB/s
	if saved < copyUS*0.5 {
		t.Errorf("overlap saved only %.1f µs, want most of the ≈%.0f µs copy", saved, copyUS)
	}
	if overlapped >= serial {
		t.Errorf("overlapped %.1f µs not faster than serial %.1f µs",
			float64(overlapped)/1e6, float64(serial)/1e6)
	}
}

func TestErrorPaths(t *testing.T) {
	r := newRig(t)
	bs, _ := r.aspBitstream(t, "fir128", 0)

	if err := r.sys.Reconfigure(nil); err == nil {
		t.Error("reconfigure without preload must fail")
	}
	if err := r.sys.Preload("ghost", nil); err == nil {
		t.Error("preload of unregistered image must fail")
	}
	if err := r.sys.Register(bs, false); err != nil {
		t.Fatal(err)
	}
	if err := r.sys.Preload("fir128", nil); err != nil {
		t.Fatal(err)
	}
	if err := r.sys.Preload("fir128", nil); err == nil {
		t.Error("concurrent preload must fail")
	}
	r.kernel.Run()
	if err := r.sys.Reconfigure(nil); err != nil {
		t.Fatal(err)
	}
	if err := r.sys.Reconfigure(nil); err == nil {
		t.Error("concurrent reconfigure must fail")
	}
	r.kernel.Run()
}

func TestStatsCounters(t *testing.T) {
	r := newRig(t)
	bs, _ := r.aspBitstream(t, "fir128", 0)
	r.loadVia(t, bs, false)
	pre, rec := r.sys.Stats()
	if pre != 1 || rec != 1 {
		t.Errorf("stats = %d/%d, want 1/1", pre, rec)
	}
	if r.sys.SRAMDevice().Resident() != "fir128" {
		t.Errorf("resident = %q", r.sys.SRAMDevice().Resident())
	}
}

func TestHardMacroPortSurvives550MHz(t *testing.T) {
	// The Sec.-VI ICAP is timing-closed at 550 MHz: a transfer there must
	// complete with the interrupt delivered and data intact — unlike the
	// standard-IP path, which corrupts far below that.
	r := newRig(t)
	bs, rp := r.aspBitstream(t, "matmul8", 0)
	res := r.loadVia(t, bs, false)
	if !res.CRCValid {
		t.Error("550 MHz hard-macro transfer must verify")
	}
	eq, err := r.mem.RegionEqual(rp, bs.Frames)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("memory mismatch")
	}
}
