// Package srampdr implements the paper's proposed next-generation partial
// reconfiguration environment (Sec. VI, Fig. 7): partial bitstreams are
// pre-loaded into an external QDR-II+ SRAM (Cypress CY7C2263KV18-class:
// 36-bit DDR read and write ports at 550 MHz, 0.45 ns access) so the ICAP
// transfer no longer crosses the Memory-Port → AXI-Interconnect → AXI-DMA
// bottleneck. A dedicated memory controller generates addresses, a PR
// controller arbitrates SRAM↔ICAP and watches the ICAP interrupts, an
// optional bitstream decompressor expands RLE images on the fly, and a
// PS-side scheduler pre-loads the next bitstream while the current
// accelerator computes.
//
// The paper gives the design a theoretical throughput of
// 550 MHz · 36 bit / 2 = 1237.5 MB/s; this implementation reproduces that
// number as its sustained SRAM read rate and measures what the full
// pipeline achieves end to end.
package srampdr

import (
	"fmt"

	"repro/internal/bitstream"
	"repro/internal/clock"
	"repro/internal/dram"
	"repro/internal/fabric"
	"repro/internal/icap"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/timing"
)

// SRAM models the QDR-II+ device: independent read and write ports at a
// fixed byte rate, holding one bitstream image at a time (the paper's
// stated capacity policy).
type SRAM struct {
	// ReadBytesPerSec / WriteBytesPerSec are the port rates (1237.5 MB/s
	// for the paper's part and bus width).
	ReadBytesPerSec  float64
	WriteBytesPerSec float64
	// CapacityBytes is the device size (72 Mbit ⇒ 9 MB).
	CapacityBytes int

	resident     string
	residentSize int
}

// NewSRAM returns the CY7C2263KV18-class part (rates and capacity come from
// the Sec.-VI calibration in internal/platform).
func NewSRAM() *SRAM {
	p := platform.SecVISRAM()
	return &SRAM{
		ReadBytesPerSec:  p.ReadBytesPerSec,
		WriteBytesPerSec: p.WriteBytesPerSec,
		CapacityBytes:    p.CapacityBytes,
	}
}

// Resident returns the name of the stored image ("" when empty).
func (s *SRAM) Resident() string { return s.resident }

// Preloaded reports the result of one scheduler pre-load.
type Preloaded struct {
	Name  string
	Bytes int
	// Compressed reports whether the stored image is RLE-compressed.
	Compressed bool
	At         sim.Time
}

// System is the assembled Fig.-7 pipeline. It shares the fabric
// configuration memory and DDR controller with the rest of the platform but
// brings its own hard-macro-class ICAP (timing-closed to 550 MHz, following
// HKT-2011) on a dedicated clock domain.
type System struct {
	kernel *sim.Kernel
	dev    *fabric.Device
	ddr    *dram.Controller
	ddrID  int
	sram   *SRAM
	domain *clock.Domain
	port   *icap.Port

	// store holds the images the scheduler can pre-load, keyed by name.
	store map[string]storedImage

	preloading bool
	busy       bool

	preloads  int
	reconfigs int
}

type storedImage struct {
	bs         *bitstream.Bitstream
	raw        []byte // compressed or raw image as stored in DRAM
	compressed bool
}

// Config for the system.
type Config struct {
	Kernel *sim.Kernel
	Device *fabric.Device
	Memory *fabric.Memory
	DDR    *dram.Controller
	// TempC supplies die temperature (nil ⇒ 40 °C).
	TempC func() float64
	Seed  uint64
}

// hmTimingModel returns the enhanced-hard-macro timing budget from the
// Sec.-VI calibration in internal/platform.
func hmTimingModel() *timing.Model {
	m := platform.SecVIHMTiming()
	return &m
}

// New assembles the system.
func New(cfg Config) (*System, error) {
	if cfg.Kernel == nil || cfg.Device == nil || cfg.Memory == nil || cfg.DDR == nil {
		return nil, fmt.Errorf("srampdr: missing dependency")
	}
	domain := clock.NewDomain("hm-icap", platform.SecVIICAPClockMHz*sim.MHz)
	port := icap.New(icap.Config{
		Kernel: cfg.Kernel,
		Domain: domain,
		Memory: cfg.Memory,
		Timing: hmTimingModel(),
		TempC:  cfg.TempC,
		Seed:   cfg.Seed ^ 0x5AA5,
	})
	return &System{
		kernel: cfg.Kernel,
		dev:    cfg.Device,
		ddr:    cfg.DDR,
		ddrID:  cfg.DDR.RegisterMaster(),
		sram:   NewSRAM(),
		domain: domain,
		port:   port,
		store:  make(map[string]storedImage),
	}, nil
}

// SRAMDevice exposes the SRAM model (for inspection and tests).
func (s *System) SRAMDevice() *SRAM { return s.sram }

// Port exposes the hard-macro ICAP.
func (s *System) Port() *icap.Port { return s.port }

// Stats returns pre-load and reconfiguration counters.
func (s *System) Stats() (preloads, reconfigs int) { return s.preloads, s.reconfigs }

// Register makes a bitstream available to the scheduler, optionally stored
// compressed in DRAM (and therefore streamed through the decompressor).
// Only the configuration payload is stored — the file header is metadata
// the scheduler keeps in DRAM.
func (s *System) Register(bs *bitstream.Bitstream, compressed bool) error {
	raw := bs.Raw[bitstream.HeaderBytes:]
	if compressed {
		c, err := bitstream.Compress(raw)
		if err != nil {
			return fmt.Errorf("srampdr: %w", err)
		}
		raw = c
	}
	if len(raw) > s.sram.CapacityBytes {
		return fmt.Errorf("srampdr: image %q (%d bytes) exceeds SRAM capacity", bs.Header.Name, len(raw))
	}
	s.store[bs.Header.Name] = storedImage{bs: bs, raw: raw, compressed: compressed}
	return nil
}

// Preload copies the named image from DRAM into the SRAM (the PS scheduler
// does this while the current accelerator is computing). done receives the
// completion record.
func (s *System) Preload(name string, done func(Preloaded)) error {
	img, ok := s.store[name]
	if !ok {
		return fmt.Errorf("srampdr: unknown image %q", name)
	}
	if s.preloading {
		return fmt.Errorf("srampdr: preload already in progress")
	}
	s.preloading = true
	// The copy is double-buffered: while one 512-byte chunk is written to
	// the SRAM, the next is already being read from DDR, so the copy runs
	// at the DDR's effective rate with one trailing write.
	const chunk = 512
	remaining := len(img.raw)
	lastWrite := 0
	var step func()
	step = func() {
		if remaining <= 0 {
			s.kernel.Schedule(sim.FromSeconds(float64(lastWrite)/s.sram.WriteBytesPerSec), func() {
				s.preloading = false
				s.sram.resident = name
				s.sram.residentSize = len(img.raw)
				s.preloads++
				if done != nil {
					done(Preloaded{Name: name, Bytes: len(img.raw), Compressed: img.compressed, At: s.kernel.Now()})
				}
			})
			return
		}
		n := chunk
		if n > remaining {
			n = remaining
		}
		remaining -= n
		lastWrite = n
		s.ddr.Request(s.ddrID, n, step)
	}
	step()
	return nil
}

// ReconfigResult describes one Fig.-7 reconfiguration.
type ReconfigResult struct {
	Name string
	// BytesFromSRAM is what the SRAM actually supplied (compressed size
	// when the decompressor is in the path).
	BytesFromSRAM int
	// BitstreamBytes is the expanded image size.
	BitstreamBytes int
	// LatencyUS is SRAM-to-configuration-memory time.
	LatencyUS float64
	// ThroughputMBs is BitstreamBytes / latency — directly comparable to
	// Table I.
	ThroughputMBs float64
	// CRCValid is the embedded-CRC verdict from the ICAP parse.
	CRCValid bool
}

// Reconfigure streams the SRAM-resident image into the configuration
// memory. The PR controller reads the SRAM at its port rate; if the image
// is compressed, the decompressor expands it on the fly (zero runs cost no
// SRAM bandwidth, so compression shortens the transfer).
func (s *System) Reconfigure(done func(ReconfigResult)) error {
	name := s.sram.resident
	if name == "" {
		return fmt.Errorf("srampdr: no image pre-loaded in SRAM")
	}
	img, ok := s.store[name]
	if !ok {
		return fmt.Errorf("srampdr: resident image %q vanished from store", name)
	}
	if s.busy {
		return fmt.Errorf("srampdr: reconfiguration in progress")
	}
	s.busy = true
	start := s.kernel.Now()
	s.port.Reset()

	words := img.bs.Words()
	finish := func() {
		s.busy = false
		s.reconfigs++
		lat := s.kernel.Now().Sub(start).Microseconds()
		st := s.port.Status()
		if done != nil {
			done(ReconfigResult{
				Name:           name,
				BytesFromSRAM:  len(img.raw),
				BitstreamBytes: img.bs.Size(),
				LatencyUS:      lat,
				ThroughputMBs:  float64(img.bs.Size()) / lat,
				CRCValid:       st.Done && !st.CRCError && !st.SyncError,
			})
		}
	}

	if !img.compressed {
		s.streamRaw(words, finish)
		return nil
	}
	s.streamCompressed(img, words, finish)
	return nil
}

// prBufferWords is the PR controller's staging buffer between the SRAM read
// path and the ICAP: reads stall when this much data is already queued.
const prBufferWords = 256

// throttle delays fn until the ICAP backlog fits the PR buffer.
func (s *System) throttle(fn func()) bool {
	bufferDur := sim.Cycles(prBufferWords, s.domain.Freq())
	backlog := s.port.BusyUntil().Sub(s.kernel.Now())
	if backlog > bufferDur {
		s.kernel.At(s.port.BusyUntil().Add(-bufferDur), fn)
		return true
	}
	return false
}

// drainThen runs finish once the ICAP pipeline has fully drained (so the
// parser's status — Done, CRC — is latched).
func (s *System) drainThen(finish func()) {
	at := s.port.BusyUntil().Add(2 * s.domain.Period())
	if at < s.kernel.Now() {
		at = s.kernel.Now()
	}
	s.kernel.At(at, finish)
}

// streamRaw paces chunks at the SRAM read rate into the ICAP.
func (s *System) streamRaw(words []uint32, finish func()) {
	const chunkWords = 128
	offset := 0
	var step func()
	step = func() {
		if offset >= len(words) {
			s.drainThen(finish)
			return
		}
		if s.throttle(step) {
			return
		}
		n := chunkWords
		if rem := len(words) - offset; n > rem {
			n = rem
		}
		chunk := words[offset : offset+n]
		offset += n
		// SRAM read time for the chunk, then hand to the ICAP; the PR
		// controller double-buffers so the ICAP consumes while the next
		// chunk is read.
		s.kernel.Schedule(sim.FromSeconds(float64(n*4)/s.sram.ReadBytesPerSec), func() {
			s.port.Feed(chunk, nil)
			step()
		})
	}
	step()
}

// streamCompressed walks the RLE records: literals cost SRAM bandwidth,
// zero-runs are synthesised by the decompressor at ICAP speed for free.
func (s *System) streamCompressed(img storedImage, words []uint32, finish func()) {
	// Decode the record structure once (hardware walks it streaming; the
	// timing below charges SRAM time per record as the hardware would).
	type rec struct {
		zeroRun, lit int
	}
	var recs []rec
	p := 12 // past magic + length
	produced := 0
	for produced < len(words)*4 {
		zr := int(be32(img.raw[p : p+4]))
		lit := int(be32(img.raw[p+4 : p+8]))
		p += 8 + lit*4
		produced += (zr + lit) * 4
		recs = append(recs, rec{zeroRun: zr, lit: lit})
	}
	offset := 0 // words produced so far
	i := 0
	var step func()
	step = func() {
		if i >= len(recs) {
			s.drainThen(finish)
			return
		}
		if s.throttle(step) {
			return
		}
		r := recs[i]
		i++
		n := r.zeroRun + r.lit
		chunk := words[offset : offset+n]
		offset += n
		// SRAM supplies the record header + literals only.
		sramBytes := 8 + r.lit*4
		s.kernel.Schedule(sim.FromSeconds(float64(sramBytes)/s.sram.ReadBytesPerSec), func() {
			s.port.Feed(chunk, nil)
			step()
		})
	}
	step()
}

func be32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// TheoreticalThroughputMBs returns the paper's Sec.-VI headline number (the
// SRAM read-port rate in MB/s).
func TheoreticalThroughputMBs() float64 { return platform.SecVISRAM().ReadBytesPerSec / 1e6 }
