package scrub

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/fabric"
	"repro/internal/icap"
	"repro/internal/platform"
	"repro/internal/sim"
)

type rig struct {
	kernel *sim.Kernel
	dev    *fabric.Device
	mem    *fabric.Memory
	port   *icap.Port
	rp     fabric.Region
	golden [][]uint32
}

func newRig(t *testing.T) *rig {
	t.Helper()
	r := &rig{kernel: sim.NewKernel(), dev: platform.Default().NewDevice()}
	r.mem = fabric.NewMemory(r.dev)
	r.port = icap.New(icap.Config{
		Kernel: r.kernel,
		Domain: clock.NewDomain("icap", 200*sim.MHz),
		Memory: r.mem,
		Timing: platform.Default().TimingModel(),
		Seed:   3,
	})
	r.rp = platform.Default().RPs(r.dev)[0]

	// Configure the region directly with a golden image.
	rng := sim.NewRNG(77)
	n := r.dev.RegionFrames(r.rp)
	r.golden = make([][]uint32, n)
	addr := r.rp.RegionStart()
	for i := 0; i < n; i++ {
		f := make([]uint32, fabric.FrameWords)
		for w := range f {
			f[w] = rng.Uint32()
		}
		r.golden[i] = f
		if err := r.mem.WriteFrame(addr, f); err != nil {
			t.Fatal(err)
		}
		if i+1 < n {
			var err error
			addr, err = r.dev.Next(addr)
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	return r
}

func (r *rig) scrub(t *testing.T) Report {
	t.Helper()
	s := New(r.kernel, r.port)
	var rep *Report
	err := s.Scrub(r.rp, r.golden, func(got Report, serr error) {
		if serr != nil {
			t.Fatal(serr)
		}
		rep = &got
	})
	if err != nil {
		t.Fatal(err)
	}
	r.kernel.Run()
	if rep == nil {
		t.Fatal("scrub never completed")
	}
	return *rep
}

func TestScrubCleanRegionRepairsNothing(t *testing.T) {
	r := newRig(t)
	rep := r.scrub(t)
	if rep.FramesRepaired != 0 {
		t.Errorf("repaired %d frames of a clean region", rep.FramesRepaired)
	}
	if !rep.Clean {
		t.Error("clean region reported dirty")
	}
	if rep.FramesScanned != 1308 {
		t.Errorf("scanned %d", rep.FramesScanned)
	}
}

func TestScrubRepairsInjectedSEUs(t *testing.T) {
	r := newRig(t)
	inj := NewInjector(r.mem, 9)
	hit, err := inj.UpsetRegion(r.rp, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(hit) != 5 || inj.Injected() != 5 {
		t.Fatalf("injected %d/%d", len(hit), inj.Injected())
	}
	eq, _ := r.mem.RegionEqual(r.rp, r.golden)
	if eq {
		t.Fatal("injection had no effect")
	}
	rep := r.scrub(t)
	if rep.FramesRepaired != 5 {
		t.Errorf("repaired %d frames, want 5", rep.FramesRepaired)
	}
	if !rep.Clean {
		t.Error("region not clean after scrub")
	}
	eq, _ = r.mem.RegionEqual(r.rp, r.golden)
	if !eq {
		t.Error("memory differs from golden after scrub")
	}
}

func TestScrubDurationScalesWithDamage(t *testing.T) {
	// A scrub pass costs ~2 read sweeps + repairs; repairs are a tiny
	// surcharge, so 1 vs 50 damaged frames should differ by ≈49 frame
	// write times.
	run := func(damage int) sim.Duration {
		r := newRig(t)
		if damage > 0 {
			if _, err := NewInjector(r.mem, 5).UpsetRegion(r.rp, damage); err != nil {
				t.Fatal(err)
			}
		}
		return r.scrub(t).Duration
	}
	d0 := run(0)
	d50 := run(50)
	frameTime := sim.Cycles(fabric.FrameWords, 200*sim.MHz)
	extra := d50 - d0
	want := sim.Duration(50) * frameTime
	if extra < want*9/10 || extra > want*11/10 {
		t.Errorf("extra scrub time %v, want ≈%v (50 frame writes)", extra, want)
	}
}

func TestScrubFarCheaperThanReload(t *testing.T) {
	// The point of scrubbing: repairing a handful of SEUs costs ~2 sweeps,
	// versus a reload that moves all frames *plus* the DMA path overheads.
	// At the same clock, a scrub of a 3-SEU region must cost well under 3x
	// a full region's frame time.
	r := newRig(t)
	if _, err := NewInjector(r.mem, 5).UpsetRegion(r.rp, 3); err != nil {
		t.Fatal(err)
	}
	rep := r.scrub(t)
	fullFrames := FullReloadFrames(r.dev, r.rp)
	budget := sim.Duration(3) * sim.Duration(fullFrames) * sim.Cycles(fabric.FrameWords, 200*sim.MHz) / 1
	if rep.Duration > budget {
		t.Errorf("scrub took %v, budget %v", rep.Duration, budget)
	}
	if rep.FramesRepaired != 3 {
		t.Errorf("repaired %d", rep.FramesRepaired)
	}
}

func TestScrubFramesTargetedRepair(t *testing.T) {
	r := newRig(t)
	inj := NewInjector(r.mem, 9)
	hit, err := inj.UpsetRegion(r.rp, 4)
	if err != nil {
		t.Fatal(err)
	}
	s := New(r.kernel, r.port)
	var rep *Report
	if err := s.ScrubFrames(r.rp, r.golden, hit, func(got Report, serr error) {
		if serr != nil {
			t.Fatal(serr)
		}
		rep = &got
	}); err != nil {
		t.Fatal(err)
	}
	r.kernel.Run()
	if rep == nil {
		t.Fatal("targeted scrub never completed")
	}
	if rep.FramesScanned != 4 || rep.FramesRepaired != 4 || !rep.Clean {
		t.Errorf("report = %+v, want 4 scanned, 4 repaired, clean", *rep)
	}
	if eq, _ := r.mem.RegionEqual(r.rp, r.golden); !eq {
		t.Error("memory differs from golden after targeted scrub")
	}
	// Frame-addressed repair touches a handful of frames: it must cost a
	// small fraction of a full-region sweep.
	full := r.scrub(t) // region already clean: pure sweep cost
	if 10*rep.Duration >= full.Duration {
		t.Errorf("targeted scrub %v not ≪ full sweep %v", rep.Duration, full.Duration)
	}
}

func TestScrubFramesValidatesSuspects(t *testing.T) {
	r := newRig(t)
	s := New(r.kernel, r.port)
	cb := func(Report, error) {}
	if err := s.ScrubFrames(r.rp, r.golden, nil, cb); err == nil {
		t.Error("empty suspect list must fail")
	}
	if err := s.ScrubFrames(r.rp, r.golden, []int{1 << 30}, cb); err == nil {
		t.Error("out-of-region suspect must fail")
	}
	if err := s.ScrubFrames(r.rp, r.golden[:10], []int{0}, cb); err == nil {
		t.Error("short golden must fail")
	}
}

func TestScrubValidatesGoldenLength(t *testing.T) {
	r := newRig(t)
	s := New(r.kernel, r.port)
	if err := s.Scrub(r.rp, r.golden[:10], func(Report, error) {}); err == nil {
		t.Error("short golden must fail")
	}
}

func TestInjectorBounds(t *testing.T) {
	r := newRig(t)
	inj := NewInjector(r.mem, 1)
	if _, err := inj.UpsetRegion(r.rp, 99999); err == nil {
		t.Error("over-injection must fail")
	}
}

func TestInjectorDistinctFrames(t *testing.T) {
	r := newRig(t)
	inj := NewInjector(r.mem, 2)
	hit, err := inj.UpsetRegion(r.rp, 100)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, lin := range hit {
		if seen[lin] {
			t.Fatal("duplicate frame upset")
		}
		seen[lin] = true
	}
}
