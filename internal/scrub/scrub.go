// Package scrub extends the paper's robustness story to run time: the CRC
// bitstream read-back block detects when the configuration memory no longer
// matches the golden image — whether from an over-clocked transfer or from
// a single-event upset (SEU) in the field (the industrial-IoT environments
// of the introduction are exactly where SEUs matter). The scrubber turns
// detection into repair: it localises the damaged frames by read-back
// comparison and rewrites only those frames through the ICAP, at a cost of
// a few frame-times instead of a full partial reconfiguration.
//
// This is the natural completion of the paper's CRC block (the paper stops
// at the error interrupt); the ablation benches quantify the repair
// latency against a full reload.
package scrub

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/icap"
	"repro/internal/sim"
)

// Injector plants SEUs into the configuration memory, deterministically.
type Injector struct {
	mem *fabric.Memory
	rng *sim.RNG

	injected int
}

// NewInjector creates an SEU source for the memory.
func NewInjector(mem *fabric.Memory, seed uint64) *Injector {
	return &Injector{mem: mem, rng: sim.NewRNG(seed ^ 0x5EED)}
}

// Injected returns the number of upsets planted so far.
func (in *Injector) Injected() int { return in.injected }

// UpsetRegion flips one random bit in each of n distinct random frames of
// the region and returns the linear indices of the damaged frames.
func (in *Injector) UpsetRegion(r fabric.Region, n int) ([]int, error) {
	idx, err := in.mem.RegionFrameIndices(r)
	if err != nil {
		return nil, err
	}
	if n > len(idx) {
		return nil, fmt.Errorf("scrub: cannot upset %d of %d frames", n, len(idx))
	}
	// Sample n distinct frames (partial Fisher-Yates on a copy).
	pool := make([]int, len(idx))
	copy(pool, idx)
	hit := make([]int, 0, n)
	for i := 0; i < n; i++ {
		j := i + in.rng.Intn(len(pool)-i)
		pool[i], pool[j] = pool[j], pool[i]
		lin := pool[i]
		frame := in.mem.FrameSlice(lin)
		w := in.rng.Intn(fabric.FrameWords)
		b := uint(in.rng.Intn(32))
		frame[w] ^= 1 << b
		in.injected++
		hit = append(hit, lin)
	}
	return hit, nil
}

// Report summarises one scrub pass.
type Report struct {
	// FramesScanned is the region size.
	FramesScanned int
	// FramesRepaired is how many frames mismatched and were rewritten.
	FramesRepaired int
	// Clean reports whether a post-repair verification passed.
	Clean bool
	// Duration is the simulated time the pass took (read-back + rewrites +
	// verify).
	Duration sim.Duration
}

// Scrubber repairs a region against a golden frame image.
type Scrubber struct {
	kernel *sim.Kernel
	port   *icap.Port
	mem    *fabric.Memory

	// ChunkFrames is the read-back slice size.
	ChunkFrames int
}

// New creates a scrubber using the shared ICAP port.
func New(k *sim.Kernel, port *icap.Port) *Scrubber {
	return &Scrubber{kernel: k, port: port, mem: port.Memory(), ChunkFrames: 32}
}

// Scrub scans the region against golden (len == RegionFrames, configuration
// order), rewrites every mismatching frame, re-verifies, and delivers the
// report. The work is paced through the ICAP port: reads and writes each
// cost one word-time per word, exactly like the CRC monitor and the
// configuration path they share.
func (s *Scrubber) Scrub(r fabric.Region, golden [][]uint32, done func(Report, error)) error {
	dev := s.mem.Device()
	n := dev.RegionFrames(r)
	if len(golden) != n {
		return fmt.Errorf("scrub: golden has %d frames, region %q needs %d", len(golden), r.Name, n)
	}
	start := s.kernel.Now()
	idx, err := s.mem.RegionFrameIndices(r)
	if err != nil {
		return err
	}

	repaired := 0
	var scanChunk func(off int)
	var repairList []int

	finishPass := func() {
		// Rewrite damaged frames (each costs FrameWords word-times through
		// the port, like an FDRI write of one frame).
		writes := len(repairList)
		end := s.port.Reserve(writes * fabric.FrameWords)
		s.kernel.At(end, func() {
			for _, lin := range repairList {
				pos := lin - idx[0]
				addr, aerr := dev.Addr(lin)
				if aerr != nil {
					done(Report{}, aerr)
					return
				}
				if werr := s.mem.WriteFrame(addr, golden[pos]); werr != nil {
					done(Report{}, werr)
					return
				}
			}
			repaired = writes
			// Verification pass: one more read-back sweep.
			verifyEnd := s.port.Reserve(n * fabric.FrameWords)
			s.kernel.At(verifyEnd, func() {
				clean := true
				for pos, lin := range idx {
					frame := s.mem.FrameSlice(lin)
					for w := range frame {
						if frame[w] != golden[pos][w] {
							clean = false
							break
						}
					}
					if !clean {
						break
					}
				}
				done(Report{
					FramesScanned:  n,
					FramesRepaired: repaired,
					Clean:          clean,
					Duration:       s.kernel.Now().Sub(start),
				}, nil)
			})
		})
	}

	scanChunk = func(off int) {
		if off >= n {
			finishPass()
			return
		}
		chunk := s.ChunkFrames
		if chunk > n-off {
			chunk = n - off
		}
		addr, aerr := dev.Addr(idx[off])
		if aerr != nil {
			done(Report{}, aerr)
			return
		}
		s.port.Readback(addr, chunk, func(frames [][]uint32, rerr error) {
			if rerr != nil {
				done(Report{}, rerr)
				return
			}
			for i, f := range frames {
				pos := off + i
				for w := range f {
					if f[w] != golden[pos][w] {
						repairList = append(repairList, idx[pos])
						break
					}
				}
			}
			scanChunk(off + chunk)
		})
	}
	scanChunk(0)
	return nil
}

// ScrubFrames repairs only the listed frames (linear indices, the way the
// read-back CRC monitor localises an error to a frame address): each suspect
// is read back, compared against the golden image, rewritten on mismatch,
// and re-verified. This is the frame-addressed correction an SEU controller
// performs — a few frame-times through the ICAP instead of Scrub's
// full-region sweep — and it is what makes scrubbing decisively cheaper
// than a full partial reconfiguration.
func (s *Scrubber) ScrubFrames(r fabric.Region, golden [][]uint32, suspects []int, done func(Report, error)) error {
	dev := s.mem.Device()
	n := dev.RegionFrames(r)
	if len(golden) != n {
		return fmt.Errorf("scrub: golden has %d frames, region %q needs %d", len(golden), r.Name, n)
	}
	if len(suspects) == 0 {
		return fmt.Errorf("scrub: no suspect frames for region %q", r.Name)
	}
	idx, err := s.mem.RegionFrameIndices(r)
	if err != nil {
		return err
	}
	base := idx[0]
	for _, lin := range suspects {
		if pos := lin - base; pos < 0 || pos >= n {
			return fmt.Errorf("scrub: suspect frame %d outside region %q", lin, r.Name)
		}
	}
	start := s.kernel.Now()

	// Read back the suspect frames (one frame-time per frame through the
	// shared port, like any FDRO read).
	readEnd := s.port.Reserve(len(suspects) * fabric.FrameWords)
	s.kernel.At(readEnd, func() {
		var repairList []int
		for _, lin := range suspects {
			pos := lin - base
			frame := s.mem.FrameSlice(lin)
			for w := range frame {
				if frame[w] != golden[pos][w] {
					repairList = append(repairList, lin)
					break
				}
			}
		}
		writeEnd := s.port.Reserve(len(repairList) * fabric.FrameWords)
		s.kernel.At(writeEnd, func() {
			for _, lin := range repairList {
				pos := lin - base
				addr, aerr := dev.Addr(lin)
				if aerr != nil {
					done(Report{}, aerr)
					return
				}
				if werr := s.mem.WriteFrame(addr, golden[pos]); werr != nil {
					done(Report{}, werr)
					return
				}
			}
			// Verification: re-read the suspects only.
			verifyEnd := s.port.Reserve(len(suspects) * fabric.FrameWords)
			s.kernel.At(verifyEnd, func() {
				clean := true
			verify:
				for _, lin := range suspects {
					pos := lin - base
					frame := s.mem.FrameSlice(lin)
					for w := range frame {
						if frame[w] != golden[pos][w] {
							clean = false
							break verify
						}
					}
				}
				done(Report{
					FramesScanned:  len(suspects),
					FramesRepaired: len(repairList),
					Clean:          clean,
					Duration:       s.kernel.Now().Sub(start),
				}, nil)
			})
		})
	})
	return nil
}

// FullReloadFrames returns how many frame-times a full partial
// reconfiguration of the region costs, for comparison with a scrub pass.
func FullReloadFrames(dev *fabric.Device, r fabric.Region) int {
	return dev.RegionFrames(r)
}
