package dram

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestTrafficHitsTargetRate(t *testing.T) {
	k := sim.NewKernel()
	c := NewController(k, testParams())
	g := NewTraffic(k, c, 200) // 200 MB/s, well under the port
	g.Start()
	k.RunFor(10 * sim.Millisecond)
	g.Stop()
	rate := float64(g.BytesMoved()) / 0.010 / 1e6
	if math.Abs(rate-200) > 4 {
		t.Errorf("rate = %.1f MB/s, want ≈200", rate)
	}
}

func TestTrafficBacksOffAtSaturation(t *testing.T) {
	k := sim.NewKernel()
	c := NewController(k, testParams())
	g := NewTraffic(k, c, 5000) // impossible target
	g.Start()
	k.RunFor(10 * sim.Millisecond)
	g.Stop()
	rate := float64(g.BytesMoved()) / 0.010 / 1e6
	eff := c.EffectiveRate() / 1e6
	if rate > eff*1.01 {
		t.Errorf("rate %.1f exceeds port capability %.1f", rate, eff)
	}
	if rate < eff*0.95 {
		t.Errorf("saturated generator should fill the port: %.1f vs %.1f", rate, eff)
	}
}

func TestTrafficStopHalts(t *testing.T) {
	k := sim.NewKernel()
	c := NewController(k, testParams())
	g := NewTraffic(k, c, 100)
	g.Start()
	k.RunFor(sim.Millisecond)
	g.Stop()
	moved := g.BytesMoved()
	k.RunFor(5 * sim.Millisecond)
	if g.BytesMoved() > moved+128 {
		t.Error("traffic continued after Stop")
	}
	if g.Running() {
		t.Error("Running after Stop")
	}
}

func TestTrafficZeroRateNoop(t *testing.T) {
	k := sim.NewKernel()
	c := NewController(k, testParams())
	g := NewTraffic(k, c, 0)
	g.Start()
	k.RunFor(sim.Millisecond)
	if g.BytesMoved() != 0 {
		t.Error("zero-rate generator moved data")
	}
}

func TestTrafficStealsFromOtherMaster(t *testing.T) {
	// The contention mechanism behind ablation A4: a competing generator
	// lowers the bandwidth another master can sustain.
	measure := func(background float64) float64 {
		k := sim.NewKernel()
		c := NewController(k, testParams())
		victim := NewTraffic(k, c, 1e9) // greedy: takes whatever it can
		if background > 0 {
			bg := NewTraffic(k, c, background)
			bg.Start()
		}
		victim.Start()
		k.RunFor(10 * sim.Millisecond)
		return float64(victim.BytesMoved()) / 0.010 / 1e6
	}
	alone := measure(0)
	contended := measure(300)
	if contended >= alone-250 {
		t.Errorf("300 MB/s of background traffic should cost ≈300: %v vs %v", contended, alone)
	}
}
