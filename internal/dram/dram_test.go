package dram

import (
	"math"
	"testing"

	"repro/internal/sim"
)

// testParams mirrors the ZedBoard calibration (the canonical copy lives in
// internal/platform, which this package cannot import).
func testParams() Params {
	return Params{
		PortBytesPerSec: 824e6,
		RefreshInterval: sim.FromMicroseconds(7.8),
		RefreshStall:    97 * sim.Nanosecond,
	}
}

func TestSingleBurstTiming(t *testing.T) {
	k := sim.NewKernel()
	c := NewController(k, Params{PortBytesPerSec: 800e6}) // no refresh
	m := c.RegisterMaster()
	var at sim.Time
	c.Request(m, 128, func() { at = k.Now() })
	k.Run()
	want := sim.FromSeconds(128 / 800e6) // 160 ns
	if at != sim.Time(want) {
		t.Errorf("burst completed at %v, want %v", at, want)
	}
}

func TestBackToBackBurstsSerialize(t *testing.T) {
	k := sim.NewKernel()
	c := NewController(k, Params{PortBytesPerSec: 800e6})
	m := c.RegisterMaster()
	var times []sim.Time
	for i := 0; i < 3; i++ {
		c.Request(m, 128, func() { times = append(times, k.Now()) })
	}
	k.Run()
	for i, at := range times {
		want := sim.Time(sim.FromSeconds(float64(i+1) * 128 / 800e6))
		if at != want {
			t.Errorf("burst %d at %v, want %v", i, at, want)
		}
	}
}

func TestRefreshStealsBandwidth(t *testing.T) {
	k := sim.NewKernel()
	p := testParams()
	c := NewController(k, p)
	m := c.RegisterMaster()
	// Saturate the port for a while and measure the achieved rate.
	const bursts = 60000
	doneBytes := 0
	var issue func()
	issue = func() {
		c.Request(m, 128, func() {
			doneBytes += 128
			if doneBytes < bursts*128 {
				issue()
			}
		})
	}
	start := k.Now()
	issue()
	k.Run()
	elapsed := k.Now().Sub(start).Seconds()
	rate := float64(doneBytes) / elapsed
	want := c.EffectiveRate()
	if math.Abs(rate-want)/want > 0.01 {
		t.Errorf("sustained rate = %.1f MB/s, want ≈%.1f MB/s", rate/1e6, want/1e6)
	}
	if rate >= p.PortBytesPerSec {
		t.Error("refresh must cost something")
	}
	_, _, refreshes := c.Stats()
	if refreshes == 0 {
		t.Error("no refreshes recorded")
	}
}

func TestEffectiveRateCloseTo810(t *testing.T) {
	// The calibration target: the memory path sustains ≈813 MB/s before the
	// CDC handshake, yielding the paper's 786–790 MB/s plateau.
	k := sim.NewKernel()
	c := NewController(k, testParams())
	got := c.EffectiveRate() / 1e6
	if got < 810 || got > 817 {
		t.Errorf("EffectiveRate = %.1f MB/s, want ≈813", got)
	}
}

func TestRoundRobinFairness(t *testing.T) {
	k := sim.NewKernel()
	c := NewController(k, Params{PortBytesPerSec: 800e6})
	a := c.RegisterMaster()
	b := c.RegisterMaster()
	var got []int
	for i := 0; i < 3; i++ {
		c.Request(a, 128, func() { got = append(got, 0) })
		c.Request(b, 128, func() { got = append(got, 1) })
	}
	k.Run()
	// With both queues loaded, grants must alternate.
	want := []int{0, 1, 0, 1, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grant order = %v, want %v", got, want)
		}
	}
}

func TestTwoMastersSplitBandwidth(t *testing.T) {
	k := sim.NewKernel()
	c := NewController(k, Params{PortBytesPerSec: 800e6})
	a := c.RegisterMaster()
	b := c.RegisterMaster()
	bytesA, bytesB := 0, 0
	deadline := sim.Time(10 * sim.Millisecond)
	var issueA, issueB func()
	issueA = func() {
		c.Request(a, 128, func() {
			bytesA += 128
			if k.Now() < deadline {
				issueA()
			}
		})
	}
	issueB = func() {
		c.Request(b, 128, func() {
			bytesB += 128
			if k.Now() < deadline {
				issueB()
			}
		})
	}
	issueA()
	issueB()
	k.Run()
	ratio := float64(bytesA) / float64(bytesB)
	if ratio < 0.99 || ratio > 1.01 {
		t.Errorf("bandwidth split %d vs %d (ratio %.3f), want ≈1.0", bytesA, bytesB, ratio)
	}
}

func TestRequestValidation(t *testing.T) {
	k := sim.NewKernel()
	c := NewController(k, Params{PortBytesPerSec: 800e6})
	m := c.RegisterMaster()
	for _, fn := range []func(){
		func() { c.Request(m, 0, func() {}) },
		func() { c.Request(42, 128, func() {}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestZeroRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewController(sim.NewKernel(), Params{})
}
