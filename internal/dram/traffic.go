package dram

import (
	"repro/internal/sim"
)

// Traffic is an open-loop burst generator modelling an accelerator's data
// DMA on its own HP port (Fig. 1 gives every RP a private DMA): it issues
// fixed-size bursts at a target rate, backing off when the shared port
// cannot keep up. Used by the acceleration framework to make running ASPs
// contend with the configuration path, and by the contention ablation.
type Traffic struct {
	kernel *sim.Kernel
	ctrl   *Controller
	master int

	// BurstBytes is the request size (default 128).
	BurstBytes int

	gap     sim.Duration
	running bool
	moved   uint64
}

// NewTraffic registers a generator targeting rateMBs megabytes per second.
func NewTraffic(k *sim.Kernel, c *Controller, rateMBs float64) *Traffic {
	t := &Traffic{
		kernel:     k,
		ctrl:       c,
		master:     c.RegisterMaster(),
		BurstBytes: 128,
	}
	t.SetRate(rateMBs)
	return t
}

// SetRate retargets the generator (takes effect at the next burst). A rate
// of zero or less disables it; any positive rate is honoured, saturating at
// what the port can grant.
func (t *Traffic) SetRate(rateMBs float64) {
	if rateMBs <= 0 {
		t.gap = 0
		return
	}
	gap := sim.FromSeconds(float64(t.BurstBytes) / (rateMBs * 1e6))
	if gap < 1 {
		gap = 1 // sub-picosecond pacing means "as fast as the port allows"
	}
	t.gap = gap
}

// BytesMoved returns the bytes transferred since construction.
func (t *Traffic) BytesMoved() uint64 { return t.moved }

// Running reports whether the generator is active.
func (t *Traffic) Running() bool { return t.running }

// Start begins issuing bursts; a no-op if already running or rate is zero.
func (t *Traffic) Start() {
	if t.running || t.gap == 0 {
		return
	}
	t.running = true
	t.pump()
}

// Stop halts after the in-flight burst.
func (t *Traffic) Stop() { t.running = false }

func (t *Traffic) pump() {
	if !t.running {
		return
	}
	issued := t.kernel.Now()
	t.ctrl.Request(t.master, t.BurstBytes, func() {
		t.moved += uint64(t.BurstBytes)
		if !t.running {
			return
		}
		// Next burst at the pacing gap from issue, or immediately if the
		// port is the bottleneck (closed-loop back-off: one outstanding).
		next := issued.Add(t.gap)
		now := t.kernel.Now()
		if next <= now {
			t.pump()
			return
		}
		t.kernel.At(next, t.pump)
	})
}
