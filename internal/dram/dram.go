// Package dram models the path from the DDR3 system memory through the Zynq
// HP port to a PL master: a shared, arbitrated burst server with periodic
// refresh stalls. Its sustained rate is what caps the paper's throughput
// above the 200 MHz knee (the "Memory Port → AXI Interconnect → AXI DMA"
// bottleneck of Sec. VI).
package dram

import (
	"fmt"

	"repro/internal/sim"
)

// Params describe the burst server.
type Params struct {
	// PortBytesPerSec is the sustained HP-port slot rate before refresh
	// losses. Calibrated to 824 MB/s: a 64-bit port at ~103 MHz effective
	// beat rate after interconnect arbitration overhead.
	PortBytesPerSec float64
	// SizeBytes is the board's DRAM capacity. The burst server itself does
	// not address memory (the fabric model owns contents); capacity bounds
	// how much a service may pin, e.g. the bitstream-cache budget.
	SizeBytes int64
	// RefreshInterval is the DDR3 tREFI.
	RefreshInterval sim.Duration
	// RefreshStall is the effective per-refresh stall seen by the port
	// (a fraction of tRFC, since the controller reorders around refresh).
	RefreshStall sim.Duration
}

// The calibrated parameters for each board live in internal/platform (the
// ZedBoard's 824 MB/s port with DDR3 refresh sustains ≈813 MB/s, which with
// the CDC handshake reproduces the 786–790 MB/s plateau of Table I).

// Request is one queued burst.
type request struct {
	bytes int
	fn    func()
}

// masterQueue is one master's pending bursts: a flat ring (slice plus head
// cursor) that recycles its backing array, so steady-state streaming does
// not reallocate per burst.
type masterQueue struct {
	q    []request
	head int
}

func (m *masterQueue) push(r request) { m.q = append(m.q, r) }

func (m *masterQueue) pop() request {
	r := m.q[m.head]
	m.q[m.head] = request{}
	m.head++
	if m.head == len(m.q) {
		m.q = m.q[:0]
		m.head = 0
	}
	return r
}

func (m *masterQueue) empty() bool { return m.head == len(m.q) }

// Controller serves burst requests from multiple masters with round-robin
// arbitration and refresh stalls.
type Controller struct {
	kernel *sim.Kernel
	params Params

	queues    []masterQueue // indexed by master id
	rrNext    int
	busy      bool
	nextFree  sim.Time
	refreshAt sim.Time // next unaccounted refresh boundary

	// curFn is the in-flight grant's completion callback; grantDone is the
	// single completion continuation shared by every grant.
	curFn     func()
	grantDone func()

	bytesServed uint64
	refreshes   uint64
	grants      uint64
}

// NewController creates the controller. Refresh is accounted lazily at grant
// time (refreshes that land while the port is idle are free, as a real
// controller hides them), so an idle controller schedules no events.
func NewController(k *sim.Kernel, p Params) *Controller {
	if p.PortBytesPerSec <= 0 {
		panic("dram: non-positive port rate")
	}
	c := &Controller{kernel: k, params: p}
	if p.RefreshInterval > 0 {
		c.refreshAt = sim.Time(p.RefreshInterval)
	}
	c.grantDone = func() {
		c.busy = false
		fn := c.curFn
		c.curFn = nil
		fn()
		c.pump()
	}
	return c
}

// Params returns the controller parameters.
func (c *Controller) Params() Params { return c.params }

// RegisterMaster allocates a master id for arbitration.
func (c *Controller) RegisterMaster() int {
	id := len(c.queues)
	c.queues = append(c.queues, masterQueue{})
	return id
}

// Request enqueues a burst of the given size for the master; fn runs when
// the last byte has crossed the port.
func (c *Controller) Request(master, bytes int, fn func()) {
	if bytes <= 0 {
		panic(fmt.Sprintf("dram: non-positive burst %d", bytes))
	}
	if master < 0 || master >= len(c.queues) {
		panic(fmt.Sprintf("dram: unknown master %d", master))
	}
	c.queues[master].push(request{bytes: bytes, fn: fn})
	c.pump()
}

// pump grants the next queued burst if the port is idle.
func (c *Controller) pump() {
	if c.busy {
		return
	}
	req, ok := c.nextRequest()
	if !ok {
		return
	}
	c.busy = true
	start := c.kernel.Now()
	if c.nextFree > start {
		start = c.nextFree
	}
	hasRefresh := c.params.RefreshInterval > 0 && c.params.RefreshStall > 0
	if hasRefresh {
		// Refresh boundaries that passed while the port was idle cost
		// nothing: skip them.
		for c.refreshAt <= start {
			c.refreshAt = c.refreshAt.Add(sim.Duration(c.params.RefreshInterval))
		}
	}
	slot := sim.FromSeconds(float64(req.bytes) / c.params.PortBytesPerSec)
	end := start.Add(slot)
	if hasRefresh {
		// Boundaries landing inside the grant stall the port.
		for c.refreshAt <= end {
			end = end.Add(c.params.RefreshStall)
			c.refreshAt = c.refreshAt.Add(sim.Duration(c.params.RefreshInterval))
			c.refreshes++
		}
	}
	c.nextFree = end
	c.bytesServed += uint64(req.bytes)
	c.grants++
	c.curFn = req.fn
	c.kernel.At(end, c.grantDone)
}

// nextRequest pops the next burst in round-robin master order.
func (c *Controller) nextRequest() (request, bool) {
	n := len(c.queues)
	for i := 0; i < n; i++ {
		id := (c.rrNext + i) % n
		if !c.queues[id].empty() {
			c.rrNext = (id + 1) % n
			return c.queues[id].pop(), true
		}
	}
	return request{}, false
}

// Stats returns served bytes, grant count and refresh count.
func (c *Controller) Stats() (bytes, grants, refreshes uint64) {
	return c.bytesServed, c.grants, c.refreshes
}

// EffectiveRate returns the refresh-derated sustained rate in bytes/s.
func (c *Controller) EffectiveRate() float64 {
	if c.params.RefreshInterval <= 0 {
		return c.params.PortBytesPerSec
	}
	duty := 1 - float64(c.params.RefreshStall)/float64(c.params.RefreshInterval)
	return c.params.PortBytesPerSec * duty
}
