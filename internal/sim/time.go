// Package sim provides the discrete-event simulation kernel used by every
// hardware substrate in this repository: a picosecond-resolution simulated
// clock, an event queue with deterministic ordering, a seeded random number
// generator, and small statistics helpers.
//
// All hardware models (AXI, DMA, ICAP, thermal, …) schedule work on a single
// Kernel so that cross-domain interactions (for example a DMA stalling an
// ICAP) are ordered exactly and reproducibly.
package sim

import (
	"fmt"
	"math"
	"time"
)

// Time is an absolute simulated time in picoseconds since simulation start.
//
// Picosecond resolution lets clock periods of non-integer nanoseconds
// (e.g. 1/280 MHz = 3571.43 ps) accumulate without drift while still giving
// an int64 range of about 106 days of simulated time.
type Time int64

// Duration is a span of simulated time in picoseconds.
type Duration int64

// Common durations.
const (
	Picosecond  Duration = 1
	Nanosecond           = 1000 * Picosecond
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
)

// Never is a sentinel Time far beyond any simulation horizon.
const Never Time = math.MaxInt64

// Add returns t advanced by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e12 }

// Microseconds converts t to floating-point microseconds.
func (t Time) Microseconds() float64 { return float64(t) / 1e6 }

// String renders the time with an adaptive unit.
func (t Time) String() string { return Duration(t).String() }

// Seconds converts d to floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e12 }

// Microseconds converts d to floating-point microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / 1e6 }

// Nanoseconds converts d to floating-point nanoseconds.
func (d Duration) Nanoseconds() float64 { return float64(d) / 1e3 }

// Std converts d to a time.Duration (nanosecond resolution, truncating).
func (d Duration) Std() time.Duration { return time.Duration(d/1000) * time.Nanosecond }

// String renders the duration with an adaptive unit.
func (d Duration) String() string {
	ad := d
	if ad < 0 {
		ad = -ad
	}
	switch {
	case ad < Nanosecond:
		return fmt.Sprintf("%dps", int64(d))
	case ad < Microsecond:
		return fmt.Sprintf("%.3fns", d.Nanoseconds())
	case ad < Millisecond:
		return fmt.Sprintf("%.3fµs", d.Microseconds())
	case ad < Second:
		return fmt.Sprintf("%.3fms", float64(d)/1e9)
	default:
		return fmt.Sprintf("%.6fs", d.Seconds())
	}
}

// FromSeconds converts floating-point seconds to a Duration, rounding to the
// nearest picosecond.
func FromSeconds(s float64) Duration { return Duration(math.Round(s * 1e12)) }

// FromMicroseconds converts floating-point microseconds to a Duration.
func FromMicroseconds(us float64) Duration { return Duration(math.Round(us * 1e6)) }

// FromNanoseconds converts floating-point nanoseconds to a Duration.
func FromNanoseconds(ns float64) Duration { return Duration(math.Round(ns * 1e3)) }

// Hz is a frequency in hertz.
type Hz float64

// Frequency helpers.
const (
	KHz Hz = 1e3
	MHz Hz = 1e6
	GHz Hz = 1e9
)

// Period returns the duration of one cycle at frequency f, rounded to the
// nearest picosecond. It panics for non-positive frequencies because every
// caller is configuring a physical clock.
func (f Hz) Period() Duration {
	if f <= 0 {
		panic(fmt.Sprintf("sim: non-positive frequency %v", float64(f)))
	}
	return Duration(math.Round(1e12 / float64(f)))
}

// MHzValue returns the frequency expressed in MHz.
func (f Hz) MHzValue() float64 { return float64(f) / 1e6 }

// String renders the frequency with an adaptive unit.
func (f Hz) String() string {
	switch {
	case f >= GHz:
		return fmt.Sprintf("%.3fGHz", float64(f)/1e9)
	case f >= MHz:
		return fmt.Sprintf("%.3fMHz", float64(f)/1e6)
	case f >= KHz:
		return fmt.Sprintf("%.3fkHz", float64(f)/1e3)
	default:
		return fmt.Sprintf("%.3fHz", float64(f))
	}
}

// Cycles returns the duration of n cycles at frequency f without accumulating
// per-cycle rounding error: it computes n/f in one step.
func Cycles(n int64, f Hz) Duration {
	if f <= 0 {
		panic(fmt.Sprintf("sim: non-positive frequency %v", float64(f)))
	}
	return Duration(math.Round(float64(n) * 1e12 / float64(f)))
}
