package sim

import "math"

// sketch is the memory-bounded quantile backend a Sample switches to for
// long-horizon runs (see Sample.UseSketch): a log-linear histogram in the
// HDR style. Positive values land in base-2 exponent buckets split into
// sketchSubBuckets linear sub-buckets each, so a bucket spans a relative
// width of 2^-sketchSubBits and reporting its midpoint bounds the relative
// quantile error at 2^-(sketchSubBits+1) ≈ 1.6 %. Counts are integers and
// bucket indexing is pure float arithmetic on the value alone, so a sketch
// is a deterministic function of the multiset of observations — merging
// per-board sketches in board-index order is byte-stable like the exact
// merge, and (unlike it) even order-independent.
//
// Memory is O(sketchBuckets) however many values arrive: the whole counts
// array is sketchBuckets × 8 bytes ≈ 16 KB, allocated lazily on the first
// observation. Moments (count, sum, sum of squares) and the exact min/max
// ride alongside, so Mean, StdDev, Min and Max stay available; only the
// interior quantiles are approximate.
type sketch struct {
	counts []int64 // lazily allocated, len sketchBuckets
	zeros  int64   // observations ≤ 0 (rank below every positive bucket)
	n      int64
	sum    float64
	sumsq  float64
	min    float64
	max    float64
}

const (
	// sketchSubBits fixes the relative resolution: 2^6 = 64 linear
	// sub-buckets per power of two, a 1/64 bucket width.
	sketchSubBits  = 6
	sketchSubCount = 1 << sketchSubBits
	// sketchMinExp..sketchMaxExp is the covered binary-exponent range:
	// 2^-16 ≈ 1.5e-5 up to 2^47 ≈ 1.4e14. The service-layer samples are
	// microsecond latencies, so the range is generous on both sides;
	// values outside clamp into the end buckets (min/max stay exact).
	sketchMinExp   = -16
	sketchMaxExp   = 47
	sketchExpCount = sketchMaxExp - sketchMinExp + 1
	sketchBuckets  = sketchExpCount * sketchSubCount
)

// sketchIndex maps a positive value to its bucket.
func sketchIndex(v float64) int {
	frac, exp := math.Frexp(v) // v = frac × 2^exp, frac ∈ [0.5, 1)
	exp--                      // normalise to v = f × 2^exp with f ∈ [1, 2)
	if exp < sketchMinExp {
		return 0
	}
	if exp > sketchMaxExp {
		return sketchBuckets - 1
	}
	sub := int((frac*2 - 1) * sketchSubCount) // (f-1) × subcount, f ∈ [1, 2)
	if sub >= sketchSubCount {
		sub = sketchSubCount - 1
	}
	return (exp-sketchMinExp)*sketchSubCount + sub
}

// sketchValue is the representative (midpoint) of a bucket — the value a
// quantile landing in the bucket reports.
func sketchValue(idx int) float64 {
	exp := idx/sketchSubCount + sketchMinExp
	sub := idx % sketchSubCount
	lo := math.Ldexp(1+float64(sub)/sketchSubCount, exp)
	hi := math.Ldexp(1+float64(sub+1)/sketchSubCount, exp)
	return (lo + hi) / 2
}

// add records one observation.
func (sk *sketch) add(v float64) {
	if sk.n == 0 || v < sk.min {
		sk.min = v
	}
	if sk.n == 0 || v > sk.max {
		sk.max = v
	}
	sk.n++
	sk.sum += v
	sk.sumsq += v * v
	if v <= 0 {
		sk.zeros++
		return
	}
	if sk.counts == nil {
		sk.counts = make([]int64, sketchBuckets)
	}
	sk.counts[sketchIndex(v)]++
}

// merge folds another sketch in. Count addition is order-independent; the
// float moments are summed in call order, which the fleet layer keeps at
// board-index order for byte-stable output.
func (sk *sketch) merge(o *sketch) {
	if o == nil || o.n == 0 {
		return
	}
	if sk.n == 0 || o.min < sk.min {
		sk.min = o.min
	}
	if sk.n == 0 || o.max > sk.max {
		sk.max = o.max
	}
	sk.n += o.n
	sk.sum += o.sum
	sk.sumsq += o.sumsq
	sk.zeros += o.zeros
	if o.counts != nil {
		if sk.counts == nil {
			sk.counts = make([]int64, sketchBuckets)
		}
		for i, c := range o.counts {
			sk.counts[i] += c
		}
	}
}

// quantile returns the nearest-rank q-th quantile estimate. The extremes
// are exact (min and max are tracked outside the buckets); interior ranks
// report their bucket midpoint.
func (sk *sketch) quantile(q float64) float64 {
	if sk.n == 0 {
		return 0
	}
	if q <= 0 {
		return sk.min
	}
	if q >= 1 {
		return sk.max
	}
	rank := int64(math.Ceil(q * float64(sk.n)))
	if rank < 1 {
		rank = 1
	}
	if rank <= sk.zeros {
		return sk.min
	}
	seen := sk.zeros
	for i, c := range sk.counts {
		seen += c
		if seen >= rank {
			return sketchValue(i)
		}
	}
	return sk.max
}

// mean and stddev report the moment-tracked statistics (the n-1 denominator
// matches the exact backend).
func (sk *sketch) mean() float64 {
	if sk.n == 0 {
		return 0
	}
	return sk.sum / float64(sk.n)
}

func (sk *sketch) stddev() float64 {
	if sk.n < 2 {
		return 0
	}
	m := sk.mean()
	ss := sk.sumsq - float64(sk.n)*m*m
	if ss < 0 {
		ss = 0 // float cancellation guard
	}
	return math.Sqrt(ss / float64(sk.n-1))
}
