package sim

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates scalar observations and reports summary statistics.
// The zero value is an empty sample ready for use.
//
// Two backends exist. The exact default stores every observation and sorts
// for quantiles — the historical behaviour, byte-identical output, O(n)
// memory. UseSketch switches to a memory-bounded log-linear histogram
// (see sketch.go) for long-horizon runs: O(sketch size) memory however
// many values arrive, exact moments and min/max, interior quantiles within
// a ~1.6 % relative error bound.
type Sample struct {
	values []float64
	sorted bool
	sk     *sketch // non-nil = sketch mode
}

// UseSketch switches the sample to the memory-bounded sketch backend,
// folding any already-recorded observations in. Switching is one-way: the
// exact values are dropped, so quantiles become bucket-midpoint estimates
// from here on. Idempotent.
func (s *Sample) UseSketch() {
	if s.sk != nil {
		return
	}
	s.sk = &sketch{}
	for _, v := range s.values {
		s.sk.add(v)
	}
	s.values, s.sorted = nil, false
}

// Sketched reports whether the sample runs on the sketch backend.
func (s *Sample) Sketched() bool { return s.sk != nil }

// Add records one observation.
func (s *Sample) Add(v float64) {
	if s.sk != nil {
		s.sk.add(v)
		return
	}
	s.values = append(s.values, v)
	s.sorted = false
}

// N returns the number of observations.
func (s *Sample) N() int {
	if s.sk != nil {
		return int(s.sk.n)
	}
	return len(s.values)
}

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if s.sk != nil {
		return s.sk.mean()
	}
	if len(s.values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// Min returns the smallest observation, or 0 for an empty sample. Exact in
// both backends.
func (s *Sample) Min() float64 {
	if s.sk != nil {
		if s.sk.n == 0 {
			return 0
		}
		return s.sk.min
	}
	if len(s.values) == 0 {
		return 0
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest observation, or 0 for an empty sample. Exact in
// both backends.
func (s *Sample) Max() float64 {
	if s.sk != nil {
		if s.sk.n == 0 {
			return 0
		}
		return s.sk.max
	}
	if len(s.values) == 0 {
		return 0
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// StdDev returns the sample standard deviation (n-1 denominator), or 0 when
// fewer than two observations exist.
func (s *Sample) StdDev() float64 {
	if s.sk != nil {
		return s.sk.stddev()
	}
	n := len(s.values)
	if n < 2 {
		return 0
	}
	mean := s.Mean()
	ss := 0.0
	for _, v := range s.values {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) using nearest-rank, or 0
// for an empty sample. The service-layer reports read their p50/p95/p99 off
// this accessor: Quantile(0.99) is exactly Percentile(99).
func (s *Sample) Quantile(q float64) float64 {
	if s.sk != nil {
		return s.sk.quantile(q)
	}
	n := len(s.values)
	if n == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.values)
		s.sorted = true
	}
	if q <= 0 {
		return s.values[0]
	}
	if q >= 1 {
		return s.values[n-1]
	}
	rank := int(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	return s.values[rank-1]
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using nearest-rank,
// or 0 for an empty sample.
func (s *Sample) Percentile(p float64) float64 { return s.Quantile(p / 100) }

// Merge folds every observation of o into s — how a fleet aggregates
// per-board latency samples into one distribution. Quantiles of the merged
// sample are order-independent (the exact backend sorts before ranking,
// the sketch backend sums integer counts), so a merge in board-index order
// is byte-stable whatever schedule produced the parts. A nil or empty o is
// a no-op — a chaos run can hand the merge boards that completed zero
// requests — and merging a sample into itself is rejected rather than
// doubling every observation.
//
// Cross-mode merges promote: merging a sketch-backed o into an exact s
// switches s to sketch mode first (its stored values fold into the sketch
// and are dropped) — a sketch cannot reproduce o's individual values, so
// the receiver adopts the bounded representation rather than silently
// losing o or erroring. Merging an exact o into a sketch-backed s simply
// folds o's values into the sketch.
func (s *Sample) Merge(o *Sample) {
	if o == nil || o == s || o.N() == 0 {
		return
	}
	if o.sk != nil && s.sk == nil {
		s.UseSketch() // documented promotion: sketch wins a cross-mode merge
	}
	switch {
	case s.sk == nil:
		s.values = append(s.values, o.values...)
		s.sorted = false
	case o.sk != nil:
		s.sk.merge(o.sk)
	default:
		for _, v := range o.values {
			s.sk.add(v)
		}
	}
}

// String summarises the sample for logs. Tail latency is first-class in the
// service-layer reports, so the p99 rides along with the moments.
func (s *Sample) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g p99=%.4g",
		s.N(), s.Mean(), s.StdDev(), s.Min(), s.Max(), s.Percentile(99))
}

// Point is one (x, y) observation of a swept quantity, used by the
// experiment runners to emit figure series.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Series is an ordered list of points with axis labels, rendering to CSV for
// the figure-regeneration harness.
type Series struct {
	Name   string  `json:"name"`
	XLabel string  `json:"xlabel"`
	YLabel string  `json:"ylabel"`
	Points []Point `json:"points"`
}

// Append adds a point to the series.
func (s *Series) Append(x, y float64) { s.Points = append(s.Points, Point{X: x, Y: y}) }

// CSV renders the series as "xlabel,ylabel" header plus one row per point.
func (s *Series) CSV() string {
	out := fmt.Sprintf("%s,%s\n", s.XLabel, s.YLabel)
	for _, p := range s.Points {
		out += fmt.Sprintf("%g,%g\n", p.X, p.Y)
	}
	return out
}
