package sim

import (
	"fmt"
)

// Event is a handle to a scheduled callback. Events at equal times fire in
// scheduling order (FIFO), which keeps simulations deterministic.
//
// Event is a small value type: the kernel recycles the underlying storage
// through a free list once an event fires or a cancelled event is discarded,
// and a generation counter keeps stale handles from touching the slot's next
// occupant. The zero Event is inert (Cancel is a no-op, Cancelled reports
// false).
type Event struct {
	k   *Kernel
	idx int32
	gen uint32
	at  Time
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e Event) Cancel() {
	if e.k == nil {
		return
	}
	s := &e.k.slots[e.idx]
	if s.gen == e.gen {
		s.cancelled = true
	}
}

// Cancelled reports whether Cancel was called.
//
// Contract: the answer is exact while the event is pending and through its
// retirement, until the event's recycled storage slot retires a *subsequent*
// event. Past that point a cancelled event reports false (a normally-fired
// one always correctly reports false). Pooled storage cannot keep
// per-handle history forever; query in the same causal chain as the Cancel —
// which every in-tree caller does — rather than holding handles across
// unrelated kernel activity.
func (e Event) Cancelled() bool {
	if e.k == nil {
		return false
	}
	s := &e.k.slots[e.idx]
	if s.gen == e.gen {
		return s.cancelled
	}
	return s.diedGen == e.gen && s.diedCancelled
}

// When returns the simulated time at which the event fires.
func (e Event) When() Time { return e.at }

// slot is the pooled per-event storage. Slots are recycled through the
// kernel's free list; gen increments at each retirement so stale Event
// handles miss.
type slot struct {
	fn            func()
	gen           uint32
	cancelled     bool
	diedGen       uint32
	diedCancelled bool
}

// entry is one heap element. The sort key (at, seq) is stored inline so the
// sift loops never chase into the slot arena.
type entry struct {
	at  Time
	seq uint64
	idx int32
}

func entryLess(a, b entry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Kernel is a single-threaded discrete-event simulation engine. The zero
// value is ready to use (time starts at 0 with an empty queue).
//
// Kernel is not safe for concurrent use; hardware models are single-threaded
// by design so that event ordering is exact. Schedule/Step run allocation-free
// in steady state: event storage is pooled and the heap is a flat slice of
// (time, seq, slot) entries.
type Kernel struct {
	heap    []entry
	slots   []slot
	free    []int32
	now     Time
	seq     uint64
	stopped bool
	fired   uint64
}

// NewKernel returns an empty kernel at time zero.
func NewKernel() *Kernel { return &Kernel{} }

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Pending returns the number of events still queued (including cancelled
// events that have not yet been discarded).
func (k *Kernel) Pending() int { return len(k.heap) }

// Fired returns the total number of events executed so far.
func (k *Kernel) Fired() uint64 { return k.fired }

// Schedule queues fn to run after delay d. Negative delays panic: a hardware
// model asking for time travel is always a bug.
func (k *Kernel) Schedule(d Duration, fn func()) Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return k.At(k.now.Add(d), fn)
}

// At queues fn to run at absolute time t, which must not be in the past.
func (k *Kernel) At(t Time, fn func()) Event {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, k.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	var idx int32
	if n := len(k.free); n > 0 {
		idx = k.free[n-1]
		k.free = k.free[:n-1]
	} else {
		k.slots = append(k.slots, slot{})
		idx = int32(len(k.slots) - 1)
	}
	s := &k.slots[idx]
	s.fn = fn
	s.cancelled = false
	seq := k.seq
	k.seq++
	k.push(entry{at: t, seq: seq, idx: idx})
	return Event{k: k, idx: idx, gen: s.gen, at: t}
}

// push appends e and restores the heap invariant (sift-up).
func (k *Kernel) push(e entry) {
	h := append(k.heap, e)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !entryLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	k.heap = h
}

// popRoot removes the minimum entry and restores the invariant (sift-down).
func (k *Kernel) popRoot() {
	h := k.heap
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && entryLess(h[r], h[l]) {
			m = r
		}
		if !entryLess(h[m], h[i]) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	k.heap = h
}

// release retires a slot back to the free list, recording how the event died
// so stale handles answer Cancelled correctly for one more generation.
func (k *Kernel) release(idx int32, cancelled bool) {
	s := &k.slots[idx]
	s.diedGen = s.gen
	s.diedCancelled = cancelled
	s.gen++
	s.fn = nil
	s.cancelled = false
	k.free = append(k.free, idx)
}

// Stop makes the currently running Run/RunUntil call return after the
// in-flight event completes. The queue is preserved.
func (k *Kernel) Stop() { k.stopped = true }

// Step executes the single next event. It reports false when the queue is
// empty.
func (k *Kernel) Step() bool {
	for len(k.heap) > 0 {
		e := k.heap[0]
		k.popRoot()
		s := &k.slots[e.idx]
		fn := s.fn
		cancelled := s.cancelled
		// Retire the slot before running fn so nested Schedule calls can
		// reuse it — the steady-state allocation-free path.
		k.release(e.idx, cancelled)
		if cancelled {
			continue
		}
		if e.at < k.now {
			panic("sim: event queue corrupted (time went backwards)")
		}
		k.now = e.at
		k.fired++
		fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty or Stop is called.
func (k *Kernel) Run() {
	k.stopped = false
	for !k.stopped && k.Step() {
	}
}

// RunUntil executes events with timestamps ≤ t, then advances the clock to t.
// Events scheduled beyond t remain queued.
func (k *Kernel) RunUntil(t Time) {
	if t < k.now {
		panic(fmt.Sprintf("sim: RunUntil(%v) before now %v", t, k.now))
	}
	k.stopped = false
	for !k.stopped {
		next, ok := k.peek()
		if !ok || next > t {
			break
		}
		k.Step()
	}
	if !k.stopped && k.now < t {
		k.now = t
	}
}

// RunFor executes events within the next d of simulated time and advances the
// clock by exactly d (unless stopped early).
func (k *Kernel) RunFor(d Duration) { k.RunUntil(k.now.Add(d)) }

// peek returns the timestamp of the next live event, discarding cancelled
// ones from the top of the heap.
func (k *Kernel) peek() (Time, bool) {
	for len(k.heap) > 0 {
		e := k.heap[0]
		if !k.slots[e.idx].cancelled {
			return e.at, true
		}
		k.popRoot()
		k.release(e.idx, true)
	}
	return 0, false
}

// NextEventTime returns the timestamp of the next pending event, or Never if
// the queue is empty.
func (k *Kernel) NextEventTime() Time {
	if t, ok := k.peek(); ok {
		return t
	}
	return Never
}

// Ticker invokes a callback every period until cancelled. It is the building
// block for free-running hardware such as refresh engines and sensors.
type Ticker struct {
	kernel *Kernel
	period Duration
	fn     func()
	ev     Event
	live   bool
	armFn  func()
}

// NewTicker starts a ticker whose first tick fires one period from now.
func (k *Kernel) NewTicker(period Duration, fn func()) *Ticker {
	if period <= 0 {
		panic(fmt.Sprintf("sim: non-positive ticker period %v", period))
	}
	t := &Ticker{kernel: k, period: period, fn: fn, live: true}
	// One tick closure for the ticker's whole life: re-arming reuses it, so
	// a running ticker allocates nothing per tick.
	t.armFn = func() {
		if !t.live {
			return
		}
		t.fn()
		if t.live {
			t.arm()
		}
	}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.ev = t.kernel.Schedule(t.period, t.armFn)
}

// Stop cancels future ticks.
func (t *Ticker) Stop() {
	t.live = false
	t.ev.Cancel()
}
