package sim

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback. Events at equal times fire in scheduling
// order (FIFO), which keeps simulations deterministic.
type Event struct {
	at  Time
	seq uint64
	fn  func()

	cancelled bool
	index     int // heap index, -1 when popped
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.cancelled = true
	}
}

// Cancelled reports whether Cancel was called.
func (e *Event) Cancelled() bool { return e != nil && e.cancelled }

// When returns the simulated time at which the event fires.
func (e *Event) When() Time { return e.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Kernel is a single-threaded discrete-event simulation engine. The zero
// value is ready to use (time starts at 0 with an empty queue).
//
// Kernel is not safe for concurrent use; hardware models are single-threaded
// by design so that event ordering is exact.
type Kernel struct {
	queue   eventHeap
	now     Time
	seq     uint64
	stopped bool
	fired   uint64
}

// NewKernel returns an empty kernel at time zero.
func NewKernel() *Kernel { return &Kernel{} }

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Pending returns the number of events still queued (including cancelled
// events that have not yet been discarded).
func (k *Kernel) Pending() int { return len(k.queue) }

// Fired returns the total number of events executed so far.
func (k *Kernel) Fired() uint64 { return k.fired }

// Schedule queues fn to run after delay d. Negative delays panic: a hardware
// model asking for time travel is always a bug.
func (k *Kernel) Schedule(d Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return k.At(k.now.Add(d), fn)
}

// At queues fn to run at absolute time t, which must not be in the past.
func (k *Kernel) At(t Time, fn func()) *Event {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, k.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	e := &Event{at: t, seq: k.seq, fn: fn}
	k.seq++
	heap.Push(&k.queue, e)
	return e
}

// Stop makes the currently running Run/RunUntil call return after the
// in-flight event completes. The queue is preserved.
func (k *Kernel) Stop() { k.stopped = true }

// Step executes the single next event. It reports false when the queue is
// empty.
func (k *Kernel) Step() bool {
	for len(k.queue) > 0 {
		e := heap.Pop(&k.queue).(*Event)
		if e.cancelled {
			continue
		}
		if e.at < k.now {
			panic("sim: event queue corrupted (time went backwards)")
		}
		k.now = e.at
		k.fired++
		e.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty or Stop is called.
func (k *Kernel) Run() {
	k.stopped = false
	for !k.stopped && k.Step() {
	}
}

// RunUntil executes events with timestamps ≤ t, then advances the clock to t.
// Events scheduled beyond t remain queued.
func (k *Kernel) RunUntil(t Time) {
	if t < k.now {
		panic(fmt.Sprintf("sim: RunUntil(%v) before now %v", t, k.now))
	}
	k.stopped = false
	for !k.stopped {
		next, ok := k.peek()
		if !ok || next.at > t {
			break
		}
		k.Step()
	}
	if !k.stopped && k.now < t {
		k.now = t
	}
}

// RunFor executes events within the next d of simulated time and advances the
// clock by exactly d (unless stopped early).
func (k *Kernel) RunFor(d Duration) { k.RunUntil(k.now.Add(d)) }

func (k *Kernel) peek() (*Event, bool) {
	for len(k.queue) > 0 {
		e := k.queue[0]
		if !e.cancelled {
			return e, true
		}
		heap.Pop(&k.queue)
	}
	return nil, false
}

// NextEventTime returns the timestamp of the next pending event, or Never if
// the queue is empty.
func (k *Kernel) NextEventTime() Time {
	if e, ok := k.peek(); ok {
		return e.at
	}
	return Never
}

// Ticker invokes a callback every period until cancelled. It is the building
// block for free-running hardware such as refresh engines and sensors.
type Ticker struct {
	kernel *Kernel
	period Duration
	fn     func()
	ev     *Event
	live   bool
}

// NewTicker starts a ticker whose first tick fires one period from now.
func (k *Kernel) NewTicker(period Duration, fn func()) *Ticker {
	if period <= 0 {
		panic(fmt.Sprintf("sim: non-positive ticker period %v", period))
	}
	t := &Ticker{kernel: k, period: period, fn: fn, live: true}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.ev = t.kernel.Schedule(t.period, func() {
		if !t.live {
			return
		}
		t.fn()
		if t.live {
			t.arm()
		}
	})
}

// Stop cancels future ticks.
func (t *Ticker) Stop() {
	t.live = false
	t.ev.Cancel()
}
