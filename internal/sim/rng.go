package sim

import "math"

// RNG is a small, fast, deterministic random number generator
// (xoshiro256** seeded via splitmix64). Hardware models use it for
// data-dependent effects (bank conflicts, corruption patterns) so that a
// given seed always reproduces the same simulation.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from the given seed. Any seed, including
// zero, produces a valid non-degenerate state.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Uint32 returns the next 32 pseudo-random bits.
func (r *RNG) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// ExpFloat64 returns an exponentially distributed value with mean 1,
// via inverse transform sampling (adequate for workload inter-arrivals).
func (r *RNG) ExpFloat64() float64 {
	u := r.Float64()
	// Guard against log(0).
	if u <= 0 {
		u = 1.0 / (1 << 53)
	}
	return -math.Log(1 - u)
}
