package sim

import (
	"testing"
	"testing/quick"
)

func TestKernelRunsEventsInTimeOrder(t *testing.T) {
	k := NewKernel()
	var order []int
	k.Schedule(30*Nanosecond, func() { order = append(order, 3) })
	k.Schedule(10*Nanosecond, func() { order = append(order, 1) })
	k.Schedule(20*Nanosecond, func() { order = append(order, 2) })
	k.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v, want [1 2 3]", order)
	}
	if k.Now() != Time(30*Nanosecond) {
		t.Errorf("Now = %v, want 30ns", k.Now())
	}
}

func TestKernelSimultaneousEventsFIFO(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.Schedule(5*Nanosecond, func() { order = append(order, i) })
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (FIFO at equal time)", i, v, i)
		}
	}
}

func TestKernelNestedScheduling(t *testing.T) {
	k := NewKernel()
	var hits []Time
	k.Schedule(Nanosecond, func() {
		hits = append(hits, k.Now())
		k.Schedule(Nanosecond, func() {
			hits = append(hits, k.Now())
		})
	})
	k.Run()
	if len(hits) != 2 || hits[0] != Time(Nanosecond) || hits[1] != Time(2*Nanosecond) {
		t.Errorf("hits = %v", hits)
	}
}

func TestKernelCancel(t *testing.T) {
	k := NewKernel()
	fired := false
	ev := k.Schedule(Nanosecond, func() { fired = true })
	ev.Cancel()
	k.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Error("Cancelled() = false after Cancel")
	}
}

func TestKernelRunUntilAdvancesClock(t *testing.T) {
	k := NewKernel()
	fired := 0
	k.Schedule(10*Nanosecond, func() { fired++ })
	k.Schedule(50*Nanosecond, func() { fired++ })
	k.RunUntil(Time(20 * Nanosecond))
	if fired != 1 {
		t.Errorf("fired = %d, want 1", fired)
	}
	if k.Now() != Time(20*Nanosecond) {
		t.Errorf("Now = %v, want 20ns", k.Now())
	}
	k.Run()
	if fired != 2 {
		t.Errorf("fired = %d after Run, want 2", fired)
	}
}

func TestKernelRunForRelative(t *testing.T) {
	k := NewKernel()
	k.RunFor(7 * Microsecond)
	k.RunFor(3 * Microsecond)
	if k.Now() != Time(10*Microsecond) {
		t.Errorf("Now = %v, want 10µs", k.Now())
	}
}

func TestKernelStopInsideEvent(t *testing.T) {
	k := NewKernel()
	count := 0
	k.Schedule(Nanosecond, func() { count++; k.Stop() })
	k.Schedule(2*Nanosecond, func() { count++ })
	k.Run()
	if count != 1 {
		t.Errorf("count = %d, want 1 (stopped after first event)", count)
	}
	if k.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", k.Pending())
	}
}

func TestKernelNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative delay")
		}
	}()
	NewKernel().Schedule(-Nanosecond, func() {})
}

func TestKernelPastAtPanics(t *testing.T) {
	k := NewKernel()
	k.Schedule(10*Nanosecond, func() {})
	k.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	k.At(Time(Nanosecond), func() {})
}

func TestKernelNextEventTime(t *testing.T) {
	k := NewKernel()
	if k.NextEventTime() != Never {
		t.Error("empty kernel should report Never")
	}
	k.Schedule(4*Nanosecond, func() {})
	if k.NextEventTime() != Time(4*Nanosecond) {
		t.Errorf("NextEventTime = %v, want 4ns", k.NextEventTime())
	}
}

func TestTickerFiresPeriodically(t *testing.T) {
	k := NewKernel()
	var hits []Time
	tk := k.NewTicker(10*Nanosecond, func() { hits = append(hits, k.Now()) })
	k.RunUntil(Time(35 * Nanosecond))
	tk.Stop()
	k.Run()
	if len(hits) != 3 {
		t.Fatalf("hits = %d, want 3", len(hits))
	}
	for i, h := range hits {
		want := Time((i + 1) * 10 * int(Nanosecond))
		if h != want {
			t.Errorf("hits[%d] = %v, want %v", i, h, want)
		}
	}
}

func TestTickerStopInsideCallback(t *testing.T) {
	k := NewKernel()
	count := 0
	var tk *Ticker
	tk = k.NewTicker(Nanosecond, func() {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	k.Run()
	if count != 3 {
		t.Errorf("count = %d, want 3", count)
	}
}

func TestKernelEventCountProperty(t *testing.T) {
	// Property: scheduling n events fires exactly n events (none lost, none
	// duplicated) regardless of their delays.
	prop := func(delays []uint16) bool {
		k := NewKernel()
		for _, d := range delays {
			k.Schedule(Duration(d)*Picosecond, func() {})
		}
		k.Run()
		return k.Fired() == uint64(len(delays)) && k.Pending() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestKernelMonotonicTimeProperty(t *testing.T) {
	// Property: observed event times are non-decreasing.
	prop := func(delays []uint32) bool {
		k := NewKernel()
		last := Time(-1)
		ok := true
		for _, d := range delays {
			k.Schedule(Duration(d), func() {
				if k.Now() < last {
					ok = false
				}
				last = k.Now()
			})
		}
		k.Run()
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
