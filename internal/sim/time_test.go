package sim

import (
	"testing"
	"testing/quick"
)

func TestDurationConstants(t *testing.T) {
	tests := []struct {
		name string
		d    Duration
		want int64
	}{
		{"picosecond", Picosecond, 1},
		{"nanosecond", Nanosecond, 1e3},
		{"microsecond", Microsecond, 1e6},
		{"millisecond", Millisecond, 1e9},
		{"second", Second, 1e12},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if int64(tt.d) != tt.want {
				t.Errorf("got %d, want %d", int64(tt.d), tt.want)
			}
		})
	}
}

func TestHzPeriod(t *testing.T) {
	tests := []struct {
		name string
		f    Hz
		want Duration
	}{
		{"100MHz", 100 * MHz, 10 * Nanosecond},
		{"200MHz", 200 * MHz, 5 * Nanosecond},
		{"280MHz", 280 * MHz, Duration(3571)},
		{"1GHz", GHz, Nanosecond},
		{"550MHz", 550 * MHz, Duration(1818)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.f.Period(); got != tt.want {
				t.Errorf("Period(%v) = %v, want %v", tt.f, got, tt.want)
			}
		})
	}
}

func TestHzPeriodPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero frequency")
		}
	}()
	Hz(0).Period()
}

func TestCyclesAvoidsPerCycleRounding(t *testing.T) {
	// 132190 words at 280 MHz: per-cycle rounding of 3571.43ps→3571ps would
	// lose 0.43ps × 132190 ≈ 57ns; Cycles must compute in one step.
	n := int64(132190)
	f := 280 * MHz
	got := Cycles(n, f)
	want := Duration(472107143) // round(132190 / 280e6 * 1e12)
	if got != want {
		t.Errorf("Cycles(%d, %v) = %d ps, want %d ps", n, f, got, want)
	}
	perCycle := Duration(n) * f.Period()
	if perCycle == got {
		t.Errorf("expected per-cycle accumulation (%d) to differ from exact (%d)", perCycle, got)
	}
}

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(0)
	t1 := t0.Add(5 * Microsecond)
	if t1.Microseconds() != 5 {
		t.Errorf("Microseconds = %v, want 5", t1.Microseconds())
	}
	if d := t1.Sub(t0); d != 5*Microsecond {
		t.Errorf("Sub = %v, want 5µs", d)
	}
}

func TestDurationString(t *testing.T) {
	tests := []struct {
		d    Duration
		want string
	}{
		{500 * Picosecond, "500ps"},
		{1500 * Picosecond, "1.500ns"},
		{2500 * Nanosecond, "2.500µs"},
		{3 * Millisecond, "3.000ms"},
		{2 * Second, "2.000000s"},
	}
	for _, tt := range tests {
		if got := tt.d.String(); got != tt.want {
			t.Errorf("%d ps String() = %q, want %q", int64(tt.d), got, tt.want)
		}
	}
}

func TestHzString(t *testing.T) {
	tests := []struct {
		f    Hz
		want string
	}{
		{200 * MHz, "200.000MHz"},
		{1.2 * GHz, "1.200GHz"},
		{32 * KHz, "32.000kHz"},
		{50, "50.000Hz"},
	}
	for _, tt := range tests {
		if got := tt.f.String(); got != tt.want {
			t.Errorf("String(%v) = %q, want %q", float64(tt.f), got, tt.want)
		}
	}
}

func TestFromConversionsRoundTrip(t *testing.T) {
	prop := func(us uint32) bool {
		d := FromMicroseconds(float64(us))
		return d == Duration(us)*Microsecond
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestPeriodTimesFreqIsUnity(t *testing.T) {
	// Property: period(f) * f ≈ 1 within one ps of rounding for frequencies
	// in the range used by the paper (50–600 MHz).
	prop := func(raw uint16) bool {
		fMHz := float64(50 + raw%550)
		f := Hz(fMHz * 1e6)
		p := f.Period()
		product := p.Seconds() * float64(f)
		return product > 0.999 && product < 1.001
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
