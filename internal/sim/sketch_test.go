package sim

import (
	"math"
	"testing"
)

// sketchRelErr is the backend's advertised relative quantile error bound:
// a bucket spans 2^-sketchSubBits relative width and reports its midpoint,
// so the estimate sits within half a bucket of the true value.
const sketchRelErr = 1.0 / (2 << sketchSubBits)

// TestSketchQuantileErrorBound drives both backends with the same skewed
// stream (exponential mixture, the shape of the service-layer latency
// samples) and checks every interior quantile estimate lands within the
// sketch's relative error bound of the exact nearest-rank answer.
func TestSketchQuantileErrorBound(t *testing.T) {
	rng := NewRNG(99)
	var exact, sk Sample
	sk.UseSketch()
	for i := 0; i < 20000; i++ {
		v := 120 * rng.ExpFloat64() // µs-scale body
		if rng.Bool(0.05) {
			v += 8000 * rng.ExpFloat64() // heavy tail
		}
		exact.Add(v)
		sk.Add(v)
	}
	for _, q := range []float64{0.10, 0.25, 0.50, 0.90, 0.95, 0.99, 0.999} {
		want := exact.Quantile(q)
		got := sk.Quantile(q)
		if rel := math.Abs(got-want) / want; rel > sketchRelErr {
			t.Errorf("q=%.3f: sketch %.4f vs exact %.4f (rel err %.4f > bound %.4f)",
				q, got, want, rel, sketchRelErr)
		}
	}
	// The extremes and moments are exact in both backends.
	if sk.Min() != exact.Min() || sk.Max() != exact.Max() {
		t.Errorf("sketch min/max (%v, %v) ≠ exact (%v, %v)", sk.Min(), sk.Max(), exact.Min(), exact.Max())
	}
	if sk.N() != exact.N() {
		t.Errorf("sketch n = %d, exact n = %d", sk.N(), exact.N())
	}
	if d := math.Abs(sk.Mean() - exact.Mean()); d > 1e-6*exact.Mean() {
		t.Errorf("sketch mean %v drifted from exact %v", sk.Mean(), exact.Mean())
	}
	if d := math.Abs(sk.StdDev() - exact.StdDev()); d > 1e-4*exact.StdDev() {
		t.Errorf("sketch stddev %v drifted from exact %v", sk.StdDev(), exact.StdDev())
	}
	if q0, q1 := sk.Quantile(0), sk.Quantile(1); q0 != exact.Min() || q1 != exact.Max() {
		t.Errorf("sketch extreme quantiles (%v, %v) must report exact min/max", q0, q1)
	}
}

// TestSketchMemoryBounded pins the O(sketch size) claim: however many
// observations arrive, the sketch backend stores nothing per value — the
// exact backend's slice stays released and the counts array stays at its
// fixed size.
func TestSketchMemoryBounded(t *testing.T) {
	var s Sample
	for i := 0; i < 100; i++ {
		s.Add(float64(i))
	}
	s.UseSketch()
	if s.values != nil {
		t.Fatal("UseSketch must release the exact backend's value slice")
	}
	for i := 0; i < 200000; i++ {
		s.Add(float64(i%977) + 0.5)
	}
	if s.values != nil {
		t.Error("sketch-mode Add grew the per-value slice")
	}
	if got := len(s.sk.counts); got != sketchBuckets {
		t.Errorf("counts array = %d buckets, want the fixed %d", got, sketchBuckets)
	}
	if s.N() != 200100 {
		t.Errorf("n = %d, want 200100", s.N())
	}
}

// TestSketchUseSketchFoldsAndIsIdempotent checks switching mid-stream folds
// the recorded values in and a second switch is a no-op.
func TestSketchUseSketchFoldsAndIsIdempotent(t *testing.T) {
	var s Sample
	for _, v := range []float64{1, 2, 3, 4, 100} {
		s.Add(v)
	}
	s.UseSketch()
	if !s.Sketched() {
		t.Fatal("Sketched() = false after UseSketch")
	}
	if s.N() != 5 || s.Min() != 1 || s.Max() != 100 {
		t.Errorf("fold lost observations: n=%d min=%v max=%v", s.N(), s.Min(), s.Max())
	}
	before := s.sk
	s.UseSketch()
	if s.sk != before {
		t.Error("second UseSketch rebuilt the sketch")
	}
}

// TestSketchMergeCrossMode pins the documented promotion semantics: merging
// a sketch-backed sample into an exact one promotes the receiver to sketch
// mode; merging exact into sketch folds the values in; sketch-into-sketch
// sums integer counts so the merged quantiles are order-independent.
func TestSketchMergeCrossMode(t *testing.T) {
	// exact ← sketch: promotion.
	var exact, sketched Sample
	exact.Add(1)
	exact.Add(2)
	sketched.UseSketch()
	sketched.Add(10)
	sketched.Add(20)
	exact.Merge(&sketched)
	if !exact.Sketched() {
		t.Fatal("merging a sketch into an exact sample must promote the receiver")
	}
	if exact.N() != 4 || exact.Min() != 1 || exact.Max() != 20 {
		t.Errorf("promoted merge: n=%d min=%v max=%v, want 4/1/20", exact.N(), exact.Min(), exact.Max())
	}

	// sketch ← exact: values fold into the buckets.
	var sk2, plain Sample
	sk2.UseSketch()
	sk2.Add(5)
	plain.Add(7)
	plain.Add(9)
	sk2.Merge(&plain)
	if sk2.N() != 3 || sk2.Max() != 9 {
		t.Errorf("sketch←exact merge: n=%d max=%v, want 3/9", sk2.N(), sk2.Max())
	}
	if plain.Sketched() {
		t.Error("merge source must not be promoted")
	}

	// sketch ← sketch, both fold orders: identical counts, identical
	// quantiles (the board-index-order merge claim).
	rng := NewRNG(7)
	parts := make([]*Sample, 4)
	for i := range parts {
		parts[i] = &Sample{}
		parts[i].UseSketch()
		for j := 0; j < 500; j++ {
			parts[i].Add(50 * rng.ExpFloat64())
		}
	}
	var fwd, rev Sample
	fwd.UseSketch()
	rev.UseSketch()
	for i := range parts {
		fwd.Merge(parts[i])
		rev.Merge(parts[len(parts)-1-i])
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if a, b := fwd.Quantile(q), rev.Quantile(q); a != b {
			t.Errorf("q=%.2f: merge order changed the sketch quantile (%v vs %v)", q, a, b)
		}
	}
	if fwd.N() != rev.N() || fwd.Min() != rev.Min() || fwd.Max() != rev.Max() {
		t.Error("merge order changed the sketch counts or extremes")
	}
}

// TestSketchZeroAndNegativeValues ranks non-positive observations below
// every positive bucket (queue waits can be exactly zero).
func TestSketchZeroAndNegativeValues(t *testing.T) {
	var s Sample
	s.UseSketch()
	for i := 0; i < 10; i++ {
		s.Add(0)
	}
	for i := 0; i < 10; i++ {
		s.Add(100)
	}
	if got := s.Quantile(0.25); got != 0 {
		t.Errorf("p25 = %v, want 0 (zeros rank first)", got)
	}
	if got := s.Quantile(0.99); math.Abs(got-100)/100 > sketchRelErr {
		t.Errorf("p99 = %v, want ≈100", got)
	}
	if s.Min() != 0 || s.Max() != 100 {
		t.Errorf("min/max = %v/%v, want 0/100", s.Min(), s.Max())
	}
}

// TestSketchIndexValueRoundTrip checks every bucket's representative value
// maps back to its own bucket, across the whole covered range — the
// consistency sketchValue's midpoint claim rests on.
func TestSketchIndexValueRoundTrip(t *testing.T) {
	for idx := 0; idx < sketchBuckets; idx++ {
		v := sketchValue(idx)
		if got := sketchIndex(v); got != idx {
			t.Fatalf("bucket %d: representative %g maps to bucket %d", idx, v, got)
		}
	}
	// Out-of-range values clamp into the end buckets instead of panicking.
	if got := sketchIndex(math.Ldexp(1, sketchMinExp-5)); got != 0 {
		t.Errorf("tiny value → bucket %d, want 0", got)
	}
	if got := sketchIndex(math.Ldexp(1, sketchMaxExp+5)); got != sketchBuckets-1 {
		t.Errorf("huge value → bucket %d, want %d", got, sketchBuckets-1)
	}
}
