package sim

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/100 equal draws", same)
	}
}

func TestRNGZeroSeedValid(t *testing.T) {
	r := NewRNG(0)
	zero := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == 0 {
			zero++
		}
	}
	if zero > 1 {
		t.Errorf("zero seed produced %d zero draws (degenerate state?)", zero)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(9)
	prop := func(n uint8) bool {
		m := int(n%100) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGBoolProbability(t *testing.T) {
	r := NewRNG(11)
	n := 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / float64(n)
	if frac < 0.28 || frac > 0.32 {
		t.Errorf("Bool(0.3) frequency = %v, want ≈0.3", frac)
	}
}

func TestRNGExpFloat64Mean(t *testing.T) {
	r := NewRNG(13)
	n := 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("negative exponential draw %v", v)
		}
		sum += v
	}
	mean := sum / float64(n)
	if mean < 0.97 || mean > 1.03 {
		t.Errorf("exp mean = %v, want ≈1", mean)
	}
}

func TestRNGUniformity(t *testing.T) {
	// Chi-square-ish sanity check over 16 buckets.
	r := NewRNG(17)
	const buckets = 16
	const draws = 160000
	var counts [buckets]int
	for i := 0; i < draws; i++ {
		counts[r.Intn(buckets)]++
	}
	want := draws / buckets
	for i, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Errorf("bucket %d count %d outside ±10%% of %d", i, c, want)
		}
	}
}
