package sim

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSampleBasics(t *testing.T) {
	var s Sample
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Errorf("N = %d, want 8", s.N())
	}
	if got := s.Mean(); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := s.Min(); got != 2 {
		t.Errorf("Min = %v, want 2", got)
	}
	if got := s.Max(); got != 9 {
		t.Errorf("Max = %v, want 9", got)
	}
	// Sample stddev of this classic dataset: sqrt(32/7) ≈ 2.1381.
	if got := s.StdDev(); math.Abs(got-math.Sqrt(32.0/7.0)) > 1e-12 {
		t.Errorf("StdDev = %v, want %v", got, math.Sqrt(32.0/7.0))
	}
}

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.StdDev() != 0 || s.Percentile(50) != 0 {
		t.Error("empty sample should report zeros")
	}
}

func TestSamplePercentile(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1},
		{50, 50},
		{95, 95},
		{100, 100},
	}
	for _, tt := range tests {
		if got := s.Percentile(tt.p); got != tt.want {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestSamplePercentileAfterAdd(t *testing.T) {
	var s Sample
	s.Add(10)
	_ = s.Percentile(50)
	s.Add(1) // must re-sort
	if got := s.Percentile(0); got != 1 {
		t.Errorf("Percentile(0) = %v after post-sort Add, want 1", got)
	}
}

func TestSampleQuantile(t *testing.T) {
	// Known uniform 1…100: nearest-rank quantiles are exact integers.
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	tests := []struct {
		q    float64
		want float64
	}{
		{-1, 1}, {0, 1}, {0.01, 1}, {0.5, 50}, {0.95, 95}, {0.99, 99}, {1, 100}, {2, 100},
	}
	for _, tt := range tests {
		if got := s.Quantile(tt.q); got != tt.want {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	// Quantile and Percentile are the same accessor at two scales.
	for _, p := range []float64{0, 13, 50, 95, 99, 100} {
		if s.Quantile(p/100) != s.Percentile(p) {
			t.Errorf("Quantile(%v) = %v != Percentile(%v) = %v", p/100, s.Quantile(p/100), p, s.Percentile(p))
		}
	}
	// A two-sided known distribution: 10 observations of 1 and one of 100 —
	// the p90 is still 1 (rank ceil(0.9·11) = 10), the p99 catches the tail.
	var tail Sample
	for i := 0; i < 10; i++ {
		tail.Add(1)
	}
	tail.Add(100)
	if got := tail.Quantile(0.90); got != 1 {
		t.Errorf("tail Quantile(0.90) = %v, want 1", got)
	}
	if got := tail.Quantile(0.99); got != 100 {
		t.Errorf("tail Quantile(0.99) = %v, want 100", got)
	}
	var empty Sample
	if empty.Quantile(0.99) != 0 {
		t.Error("empty Quantile should be 0")
	}
}

func TestSampleMerge(t *testing.T) {
	var a, b Sample
	for i := 1; i <= 50; i++ {
		a.Add(float64(i))
	}
	for i := 51; i <= 100; i++ {
		b.Add(float64(i))
	}
	_ = a.Quantile(0.5) // sort a first: Merge must invalidate the sorted flag
	a.Merge(&b)
	if a.N() != 100 {
		t.Fatalf("merged N = %d, want 100", a.N())
	}
	if got := a.Quantile(0.99); got != 99 {
		t.Errorf("merged Quantile(0.99) = %v, want 99", got)
	}
	if got := a.Max(); got != 100 {
		t.Errorf("merged Max = %v, want 100", got)
	}
	a.Merge(nil) // nil and empty merges are no-ops
	var empty Sample
	a.Merge(&empty)
	if a.N() != 100 {
		t.Errorf("no-op merges changed N to %d", a.N())
	}
	a.Merge(&a) // self-merge must not double the observations
	if a.N() != 100 {
		t.Errorf("self-merge changed N to %d", a.N())
	}
}

// A chaos run can produce boards that completed zero requests; the fleet
// merge then folds and ranks empty samples. Both directions must be safe
// and quantiles of a still-empty sample must stay zero.
func TestSampleEmptyMergeAndQuantile(t *testing.T) {
	var dst, src Sample
	dst.Merge(&src) // empty into empty
	if dst.N() != 0 || dst.Quantile(0.99) != 0 || dst.Quantile(0) != 0 || dst.Quantile(1) != 0 {
		t.Errorf("empty merged sample not zero-valued: n=%d p99=%v", dst.N(), dst.Quantile(0.99))
	}
	src.Add(7)
	dst.Merge(&src) // non-empty into (previously ranked) empty
	if dst.N() != 1 || dst.Quantile(0.99) != 7 {
		t.Errorf("merge after empty ranking broken: n=%d p99=%v", dst.N(), dst.Quantile(0.99))
	}
	var again Sample
	src.Merge(&again) // empty into non-empty leaves it intact
	if src.N() != 1 || src.Quantile(0.5) != 7 {
		t.Errorf("empty merge perturbed sample: n=%d p50=%v", src.N(), src.Quantile(0.5))
	}
}

func TestSampleMeanBoundsProperty(t *testing.T) {
	prop := func(vals []float64) bool {
		var s Sample
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			// Keep magnitudes sane to avoid float overflow in the sum.
			s.Add(math.Mod(v, 1e6))
		}
		if s.N() == 0 {
			return true
		}
		m := s.Mean()
		return m >= s.Min()-1e-9 && m <= s.Max()+1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestSeriesCSV(t *testing.T) {
	s := Series{Name: "fig5", XLabel: "frequency_mhz", YLabel: "throughput_mbs"}
	s.Append(100, 399.06)
	s.Append(200, 781.84)
	csv := s.CSV()
	if !strings.HasPrefix(csv, "frequency_mhz,throughput_mbs\n") {
		t.Errorf("missing header: %q", csv)
	}
	if !strings.Contains(csv, "100,399.06\n") || !strings.Contains(csv, "200,781.84\n") {
		t.Errorf("missing rows: %q", csv)
	}
}

func TestSampleString(t *testing.T) {
	var s Sample
	s.Add(1)
	s.Add(3)
	str := s.String()
	if !strings.Contains(str, "n=2") || !strings.Contains(str, "mean=2") {
		t.Errorf("String = %q", str)
	}
	if !strings.Contains(str, "p99=3") {
		t.Errorf("String must surface the p99 tail: %q", str)
	}
}
