package fabric

import (
	"testing"
	"testing/quick"
)

// z7020 rebuilds the paper's ZedBoard geometry (the calibrated spec lives in
// internal/platform; these tests only need a representative tiled device).
func z7020() *Device {
	return NewDevice(Geometry{Name: "xc7z020", IDCode: 0x03727093, Rows: 3, Tiles: 6})
}

func TestZ7020Geometry(t *testing.T) {
	d := z7020()
	if len(d.Columns) != 80 {
		t.Fatalf("columns = %d, want 80", len(d.Columns))
	}
	if d.Columns[0] != IOB || d.Columns[79] != IOB {
		t.Error("edge columns must be IOB")
	}
	if d.FramesPerRow() != 2700 {
		t.Errorf("FramesPerRow = %d, want 2700", d.FramesPerRow())
	}
	if d.TotalFrames() != 8100 {
		t.Errorf("TotalFrames = %d, want 8100", d.TotalFrames())
	}
	if d.ConfigBytes() != 8100*101*4 {
		t.Errorf("ConfigBytes = %d", d.ConfigBytes())
	}
}

func TestColumnKindMinors(t *testing.T) {
	tests := []struct {
		k    ColumnKind
		want int
	}{
		{CLB, 36}, {BRAM, 28}, {DSP, 28}, {IOB, 42},
	}
	for _, tt := range tests {
		if got := tt.k.Minors(); got != tt.want {
			t.Errorf("%v.Minors() = %d, want %d", tt.k, got, tt.want)
		}
	}
}

func TestStandardRPsAre1308Frames(t *testing.T) {
	// The RP size is load-bearing: 1308 frames ⇒ the 528,760-byte partial
	// bitstream implied by Table I.
	d := z7020()
	rps := TiledRPs(d, 3)
	if len(rps) != 4 {
		t.Fatalf("want 4 RPs, got %d", len(rps))
	}
	for _, rp := range rps {
		if err := d.Validate(rp); err != nil {
			t.Errorf("%s: %v", rp.Name, err)
		}
		if got := d.RegionFrames(rp); got != 1308 {
			t.Errorf("%s frames = %d, want 1308", rp.Name, got)
		}
	}
	// RPs must not overlap.
	for i, a := range rps {
		for _, b := range rps[i+1:] {
			if a.Row == b.Row && a.ColStart < b.ColEnd && b.ColStart < a.ColEnd {
				t.Errorf("%s and %s overlap", a.Name, b.Name)
			}
		}
	}
}

func TestFARRoundTrip(t *testing.T) {
	a := FrameAddr{Row: 2, Column: 57, Minor: 13}
	if got := DecodeFAR(a.FAR()); got != a {
		t.Errorf("round trip = %+v, want %+v", got, a)
	}
}

func TestLinearAddrRoundTripProperty(t *testing.T) {
	d := z7020()
	prop := func(raw uint16) bool {
		lin := int(raw) % d.TotalFrames()
		a, err := d.Addr(lin)
		if err != nil {
			return false
		}
		back, err := d.Linear(a)
		return err == nil && back == lin
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestLinearRejectsOutOfRange(t *testing.T) {
	d := z7020()
	bad := []FrameAddr{
		{Row: 3, Column: 0, Minor: 0},
		{Row: 0, Column: 80, Minor: 0},
		{Row: 0, Column: 0, Minor: 42}, // IOB has 42 minors: 0..41
		{Row: -1, Column: 0, Minor: 0},
	}
	for _, a := range bad {
		if _, err := d.Linear(a); err == nil {
			t.Errorf("Linear(%+v) should fail", a)
		}
	}
	if _, err := d.Addr(-1); err == nil {
		t.Error("Addr(-1) should fail")
	}
	if _, err := d.Addr(d.TotalFrames()); err == nil {
		t.Error("Addr(end) should fail")
	}
}

func TestNextWalksWholeDevice(t *testing.T) {
	d := z7020()
	a := FrameAddr{}
	for i := 0; i < d.TotalFrames()-1; i++ {
		next, err := d.Next(a)
		if err != nil {
			t.Fatalf("Next at step %d: %v", i, err)
		}
		la, _ := d.Linear(a)
		ln, _ := d.Linear(next)
		if ln != la+1 {
			t.Fatalf("Next(%+v) = %+v: linear %d → %d", a, next, la, ln)
		}
		a = next
	}
	if _, err := d.Next(a); err == nil {
		t.Error("Next past device end should fail")
	}
}

func TestRegionContains(t *testing.T) {
	d := z7020()
	rp := TiledRPs(d, 3)[0]
	if !d.Contains(rp, FrameAddr{Row: 0, Column: 1, Minor: 0}) {
		t.Error("start frame should be contained")
	}
	if d.Contains(rp, FrameAddr{Row: 0, Column: 40, Minor: 0}) {
		t.Error("column 40 is outside RP1")
	}
	if d.Contains(rp, FrameAddr{Row: 1, Column: 5, Minor: 0}) {
		t.Error("other row should not be contained")
	}
}

func TestMemoryWriteReadFrame(t *testing.T) {
	d := z7020()
	m := NewMemory(d)
	a := FrameAddr{Row: 1, Column: 10, Minor: 3}
	frame := make([]uint32, FrameWords)
	for i := range frame {
		frame[i] = uint32(i * 7)
	}
	if err := m.WriteFrame(a, frame); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadFrame(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := range frame {
		if got[i] != frame[i] {
			t.Fatalf("word %d = %#x, want %#x", i, got[i], frame[i])
		}
	}
	if m.Writes() != 1 || m.Reads() != 1 {
		t.Errorf("counters = %d/%d, want 1/1", m.Writes(), m.Reads())
	}
}

func TestMemoryRejectsBadFrame(t *testing.T) {
	d := z7020()
	m := NewMemory(d)
	if err := m.WriteFrame(FrameAddr{}, make([]uint32, 50)); err == nil {
		t.Error("short frame should fail")
	}
	if err := m.WriteFrame(FrameAddr{Row: 9}, make([]uint32, FrameWords)); err == nil {
		t.Error("bad address should fail")
	}
	if _, err := m.ReadFrame(FrameAddr{Row: 9}); err == nil {
		t.Error("bad read address should fail")
	}
}

func TestMemoryRegionEqual(t *testing.T) {
	d := z7020()
	m := NewMemory(d)
	rp := TiledRPs(d, 3)[1]
	n := d.RegionFrames(rp)
	frames := make([][]uint32, n)
	addr := rp.RegionStart()
	for i := 0; i < n; i++ {
		frames[i] = make([]uint32, FrameWords)
		frames[i][0] = uint32(i + 1)
		if err := m.WriteFrame(addr, frames[i]); err != nil {
			t.Fatal(err)
		}
		if i+1 < n {
			var err error
			addr, err = d.Next(addr)
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	eq, err := m.RegionEqual(rp, frames)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("region should match what was written")
	}
	// Corrupt one word and re-check.
	frames[n/2][50] ^= 1
	eq, err = m.RegionEqual(rp, frames)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Error("region should mismatch after corruption")
	}
}

func TestRegionFrameIndicesContiguous(t *testing.T) {
	d := z7020()
	m := NewMemory(d)
	for _, rp := range TiledRPs(d, 3) {
		idx, err := m.RegionFrameIndices(rp)
		if err != nil {
			t.Fatalf("%s: %v", rp.Name, err)
		}
		if len(idx) != 1308 {
			t.Fatalf("%s: %d indices", rp.Name, len(idx))
		}
		for i := 1; i < len(idx); i++ {
			if idx[i] != idx[i-1]+1 {
				t.Fatalf("%s: indices not contiguous at %d", rp.Name, i)
			}
		}
	}
}

func TestValidateRejectsBadRegions(t *testing.T) {
	d := z7020()
	bad := []Region{
		{Name: "r", Row: 5, ColStart: 0, ColEnd: 1},
		{Name: "r", Row: 0, ColStart: 5, ColEnd: 5},
		{Name: "r", Row: 0, ColStart: 10, ColEnd: 5},
		{Name: "r", Row: 0, ColStart: 0, ColEnd: 99},
	}
	for _, r := range bad {
		if err := d.Validate(r); err == nil {
			t.Errorf("Validate(%+v) should fail", r)
		}
	}
}

func TestTiledRPsScaleWithGeometry(t *testing.T) {
	// A narrower part (2 rows × 4 tiles, 2-tile RPs) must yield one RP per
	// row plus one packed extra on row 0, each 2·436 = 872 frames.
	d := NewDevice(Geometry{Name: "xc7z010", IDCode: 0x03722093, Rows: 2, Tiles: 4})
	rps := TiledRPs(d, 2)
	if len(rps) != 3 {
		t.Fatalf("want 3 RPs, got %d", len(rps))
	}
	for i, rp := range rps {
		if want := "RP" + string(rune('1'+i)); rp.Name != want {
			t.Errorf("rp[%d].Name = %q, want %q", i, rp.Name, want)
		}
		if err := d.Validate(rp); err != nil {
			t.Errorf("%s: %v", rp.Name, err)
		}
		if got := d.RegionFrames(rp); got != 872 {
			t.Errorf("%s frames = %d, want 872", rp.Name, got)
		}
	}
	if rps[2].Row != 0 || rps[2].ColStart != 1+2*TileColumns {
		t.Errorf("extra RP misplaced: %+v", rps[2])
	}
}
