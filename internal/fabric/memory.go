package fabric

import (
	"fmt"
)

// Memory is the device's configuration memory: one FrameWords-word slot per
// frame. The ICAP writes it, the CRC monitor and read-back path read it.
type Memory struct {
	dev    *Device
	frames [][]uint32
	writes uint64
	reads  uint64
}

// NewMemory allocates zeroed configuration memory for the device (the
// power-up state of an unconfigured FPGA).
func NewMemory(dev *Device) *Memory {
	frames := make([][]uint32, dev.TotalFrames())
	backing := make([]uint32, dev.TotalFrames()*FrameWords)
	for i := range frames {
		frames[i], backing = backing[:FrameWords:FrameWords], backing[FrameWords:]
	}
	return &Memory{dev: dev, frames: frames}
}

// Device returns the geometry this memory belongs to.
func (m *Memory) Device() *Device { return m.dev }

// WriteFrame stores one frame at the given address.
func (m *Memory) WriteFrame(a FrameAddr, words []uint32) error {
	if len(words) != FrameWords {
		return fmt.Errorf("fabric: frame write of %d words, want %d", len(words), FrameWords)
	}
	lin, err := m.dev.Linear(a)
	if err != nil {
		return err
	}
	copy(m.frames[lin], words)
	m.writes++
	return nil
}

// ReadFrame copies one frame out of configuration memory.
func (m *Memory) ReadFrame(a FrameAddr) ([]uint32, error) {
	lin, err := m.dev.Linear(a)
	if err != nil {
		return nil, err
	}
	out := make([]uint32, FrameWords)
	copy(out, m.frames[lin])
	m.reads++
	return out, nil
}

// FrameSlice returns the live backing slice of a frame (no copy); used by
// the read-back path to avoid per-frame allocation. Callers must not hold
// the slice across writes.
func (m *Memory) FrameSlice(linear int) []uint32 { return m.frames[linear] }

// FrameView is ReadFrame without the copy: it returns the live backing slice
// and counts as a read. Callers must not retain or mutate the slice.
func (m *Memory) FrameView(a FrameAddr) ([]uint32, error) {
	lin, err := m.dev.Linear(a)
	if err != nil {
		return nil, err
	}
	m.reads++
	return m.frames[lin], nil
}

// Writes returns the number of frame writes performed.
func (m *Memory) Writes() uint64 { return m.writes }

// Reads returns the number of frame reads performed.
func (m *Memory) Reads() uint64 { return m.reads }

// RegionEqual reports whether the region's frames match the expected frame
// contents (len(expected) == RegionFrames, in configuration order). Used by
// tests as the ground-truth oracle alongside the CRC monitor.
func (m *Memory) RegionEqual(r Region, expected [][]uint32) (bool, error) {
	if err := m.dev.Validate(r); err != nil {
		return false, err
	}
	want := m.dev.RegionFrames(r)
	if len(expected) != want {
		return false, fmt.Errorf("fabric: expected %d frames for region %q, got %d", want, r.Name, len(expected))
	}
	addr := r.RegionStart()
	for i := 0; i < want; i++ {
		lin, err := m.dev.Linear(addr)
		if err != nil {
			return false, err
		}
		got := m.frames[lin]
		for w := 0; w < FrameWords; w++ {
			if got[w] != expected[i][w] {
				return false, nil
			}
		}
		if i+1 < want {
			addr, err = m.dev.Next(addr)
			if err != nil {
				return false, err
			}
		}
	}
	return true, nil
}

// RegionFrameIndices returns the linear indices of the region's frames in
// configuration order.
func (m *Memory) RegionFrameIndices(r Region) ([]int, error) {
	if err := m.dev.Validate(r); err != nil {
		return nil, err
	}
	n := m.dev.RegionFrames(r)
	out := make([]int, 0, n)
	addr := r.RegionStart()
	for i := 0; i < n; i++ {
		lin, err := m.dev.Linear(addr)
		if err != nil {
			return nil, err
		}
		out = append(out, lin)
		if i+1 < n {
			addr, err = m.dev.Next(addr)
			if err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}
