// Package fabric models the programmable-logic configuration plane of a
// 7-series-class device (the Zynq-7020's Artix-7 fabric): the frame-oriented
// configuration memory, frame addressing (FAR), reconfigurable-partition
// regions, and frame read-back. This is the substrate the ICAP writes and
// the CRC monitor reads.
package fabric

import (
	"fmt"
)

// FrameWords is the size of one configuration frame in 32-bit words
// (101 on all 7-series devices).
const FrameWords = 101

// ColumnKind categorises a fabric column by its resource type, which
// determines how many minor frames configure it.
type ColumnKind int

const (
	// CLB columns (logic slices): 36 minor frames.
	CLB ColumnKind = iota + 1
	// BRAM interconnect columns: 28 minor frames.
	BRAM
	// DSP columns: 28 minor frames.
	DSP
	// IOB/clocking columns: 42 minor frames.
	IOB
)

// Minors returns the number of minor frames for the column kind.
func (k ColumnKind) Minors() int {
	switch k {
	case CLB:
		return 36
	case BRAM, DSP:
		return 28
	case IOB:
		return 42
	default:
		panic(fmt.Sprintf("fabric: unknown column kind %d", int(k)))
	}
}

// String names the kind.
func (k ColumnKind) String() string {
	switch k {
	case CLB:
		return "CLB"
	case BRAM:
		return "BRAM"
	case DSP:
		return "DSP"
	case IOB:
		return "IOB"
	default:
		return fmt.Sprintf("ColumnKind(%d)", int(k))
	}
}

// Device describes the configuration geometry: clock-region rows, each with
// the same column layout.
type Device struct {
	// Name is the part name, e.g. "xc7z020".
	Name string
	// IDCode is the JTAG/configuration ID checked by the bitstream loader.
	IDCode uint32
	// Rows is the number of clock-region rows.
	Rows int
	// Columns is the per-row column layout.
	Columns []ColumnKind

	// frameBase[c] is the first frame index (within a row) of column c.
	frameBase []int
	// framesPerRow caches the row frame count.
	framesPerRow int
	// addrOf[linear] inverts Linear in O(1); the FAR auto-increment walks
	// it once per frame written or read back.
	addrOf []FrameAddr
}

// Geometry parameterises a 7-series-style device: clock-region rows, each
// holding Tiles repetitions of the standard 13-column tile (9 CLB + 2 BRAM +
// 2 DSP) between an IOB column at each edge. Which part has how many rows
// and tiles is calibration and lives in internal/platform; this package only
// knows how to build the frame plane from a geometry.
type Geometry struct {
	// Name is the part name, e.g. "xc7z020".
	Name string
	// IDCode is the JTAG/configuration ID checked by the bitstream loader.
	IDCode uint32
	// Rows is the number of clock-region rows.
	Rows int
	// Tiles is the number of 13-column CLB/BRAM/DSP tiles per row.
	Tiles int
}

// TileColumns is the width of one standard CLB/BRAM/DSP tile.
const TileColumns = 13

// NewDevice builds a device from its geometry. Within each tile, columns
// 3 and 9 are BRAM, 6 and 12 are DSP, the rest CLB — one tile is
// 9·36 + 2·28 + 2·28 = 436 frames.
func NewDevice(g Geometry) *Device {
	if g.Rows < 1 || g.Tiles < 1 {
		panic(fmt.Sprintf("fabric: degenerate geometry %+v", g))
	}
	cols := make([]ColumnKind, 0, g.Tiles*TileColumns+2)
	cols = append(cols, IOB)
	for i := 0; i < g.Tiles*TileColumns; i++ {
		switch i % TileColumns {
		case 3, 9:
			cols = append(cols, BRAM)
		case 6, 12:
			cols = append(cols, DSP)
		default:
			cols = append(cols, CLB)
		}
	}
	cols = append(cols, IOB)
	d := &Device{
		Name:    g.Name,
		IDCode:  g.IDCode,
		Rows:    g.Rows,
		Columns: cols,
	}
	d.index()
	return d
}

// index precomputes per-column frame offsets and the linear→address table.
func (d *Device) index() {
	d.frameBase = make([]int, len(d.Columns)+1)
	sum := 0
	for i, k := range d.Columns {
		d.frameBase[i] = sum
		sum += k.Minors()
	}
	d.frameBase[len(d.Columns)] = sum
	d.framesPerRow = sum

	d.addrOf = make([]FrameAddr, d.Rows*sum)
	i := 0
	for row := 0; row < d.Rows; row++ {
		for c, k := range d.Columns {
			for minor := 0; minor < k.Minors(); minor++ {
				d.addrOf[i] = FrameAddr{Row: row, Column: c, Minor: minor}
				i++
			}
		}
	}
}

// FramesPerRow returns the number of frames configuring one row.
func (d *Device) FramesPerRow() int { return d.framesPerRow }

// TotalFrames returns the number of frames on the device.
func (d *Device) TotalFrames() int { return d.framesPerRow * d.Rows }

// ConfigBytes returns the raw size of the full configuration data.
func (d *Device) ConfigBytes() int { return d.TotalFrames() * FrameWords * 4 }

// FrameAddr is the decomposed frame address (the FAR register fields).
type FrameAddr struct {
	Row    int
	Column int
	Minor  int
}

// FAR packs the address into the register encoding used by our bitstreams:
// [23:16] row, [15:8] column, [7:0] minor.
func (a FrameAddr) FAR() uint32 {
	return uint32(a.Row)<<16 | uint32(a.Column)<<8 | uint32(a.Minor)
}

// DecodeFAR unpacks a FAR register value.
func DecodeFAR(v uint32) FrameAddr {
	return FrameAddr{
		Row:    int(v >> 16 & 0xFF),
		Column: int(v >> 8 & 0xFF),
		Minor:  int(v & 0xFF),
	}
}

// Linear returns the flat frame index for an address, or an error for
// out-of-range fields.
func (d *Device) Linear(a FrameAddr) (int, error) {
	if a.Row < 0 || a.Row >= d.Rows {
		return 0, fmt.Errorf("fabric: row %d out of range [0,%d)", a.Row, d.Rows)
	}
	if a.Column < 0 || a.Column >= len(d.Columns) {
		return 0, fmt.Errorf("fabric: column %d out of range [0,%d)", a.Column, len(d.Columns))
	}
	if a.Minor < 0 || a.Minor >= d.Columns[a.Column].Minors() {
		return 0, fmt.Errorf("fabric: minor %d out of range for %v column", a.Minor, d.Columns[a.Column])
	}
	return a.Row*d.framesPerRow + d.frameBase[a.Column] + a.Minor, nil
}

// Addr inverts Linear via the precomputed table.
func (d *Device) Addr(linear int) (FrameAddr, error) {
	if linear < 0 || linear >= len(d.addrOf) {
		return FrameAddr{}, fmt.Errorf("fabric: frame %d out of range [0,%d)", linear, d.TotalFrames())
	}
	return d.addrOf[linear], nil
}

// Next returns the address of the frame after a in configuration order
// (minor, then column, then row), mirroring the hardware FAR auto-increment.
func (d *Device) Next(a FrameAddr) (FrameAddr, error) {
	lin, err := d.Linear(a)
	if err != nil {
		return FrameAddr{}, err
	}
	if lin+1 >= d.TotalFrames() {
		return FrameAddr{}, fmt.Errorf("fabric: FAR increment past end of device")
	}
	return d.Addr(lin + 1)
}

// Region is a rectangular reconfigurable partition: a contiguous span of
// columns within one clock-region row, the granularity 7-series partial
// reconfiguration actually supports.
type Region struct {
	Name     string
	Row      int
	ColStart int // inclusive
	ColEnd   int // exclusive
}

// Frames returns the number of frames configuring the region.
func (d *Device) RegionFrames(r Region) int {
	n := 0
	for c := r.ColStart; c < r.ColEnd; c++ {
		n += d.Columns[c].Minors()
	}
	return n
}

// RegionStart returns the first frame address of the region.
func (r Region) RegionStart() FrameAddr {
	return FrameAddr{Row: r.Row, Column: r.ColStart, Minor: 0}
}

// Validate checks the region against the device geometry.
func (d *Device) Validate(r Region) error {
	if r.Row < 0 || r.Row >= d.Rows {
		return fmt.Errorf("fabric: region %q row %d out of range", r.Name, r.Row)
	}
	if r.ColStart < 0 || r.ColEnd > len(d.Columns) || r.ColStart >= r.ColEnd {
		return fmt.Errorf("fabric: region %q columns [%d,%d) invalid", r.Name, r.ColStart, r.ColEnd)
	}
	return nil
}

// Contains reports whether the frame address lies inside the region.
func (d *Device) Contains(r Region, a FrameAddr) bool {
	return a.Row == r.Row && a.Column >= r.ColStart && a.Column < r.ColEnd
}

// TiledRPs returns the standard reconfigurable-partition plan for a tiled
// device: one RP of rpTiles tiles at the left edge of every clock-region
// row, then further RPs packed left-to-right along row 0 while whole spans
// still fit before the right IOB column. Partitions are named RP1, RP2, …
// in that order. On the paper's ZedBoard geometry (3 rows × 6 tiles,
// rpTiles = 3) this yields the four RPs of Fig. 1, each spanning 39 columns
// — 27 CLB, 6 BRAM and 6 DSP — for exactly 1308 frames, which together with
// the command overhead makes the 528,760-byte partial bitstream implied by
// Table I (see DESIGN.md §2). Tests assert the frame count.
func TiledRPs(d *Device, rpTiles int) []Region {
	width := rpTiles * TileColumns
	if rpTiles < 1 || width > len(d.Columns)-2 {
		panic(fmt.Sprintf("fabric: RP span of %d tiles does not fit device %s", rpTiles, d.Name))
	}
	var rps []Region
	name := func() string { return fmt.Sprintf("RP%d", len(rps)+1) }
	for row := 0; row < d.Rows; row++ {
		rps = append(rps, Region{Name: name(), Row: row, ColStart: 1, ColEnd: 1 + width})
	}
	for start := 1 + width; start+width <= len(d.Columns)-1; start += width {
		rps = append(rps, Region{Name: name(), Row: 0, ColStart: start, ColEnd: start + width})
	}
	return rps
}
