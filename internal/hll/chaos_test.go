package hll

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

// TestCrashDropsWorkAndRecoverServes pins the crash semantics the fleet's
// chaos layer relies on: a crash loses in-flight and queued work (counted,
// not stalled), offers are refused without admission accounting while down,
// and a recovered service admits and completes again.
func TestCrashDropsWorkAndRecoverServes(t *testing.T) {
	c := newServiceController(t)
	s := NewService(c, ServiceConfig{CacheBudgetBytes: -1, QueueCap: 8})
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	// Pile work onto one RP: one dispatches, the rest queue.
	for i := 0; i < 4; i++ {
		req := workload.Request{At: 0, RP: "RP1", ASP: "fir128", Tenant: "alpha"}
		if admitted, err := s.Offer(req); err != nil || !admitted {
			t.Fatalf("offer %d: admitted=%v err=%v", i, admitted, err)
		}
	}
	if s.Outstanding() != 4 {
		t.Fatalf("outstanding = %d, want 4", s.Outstanding())
	}

	s.Crash()
	if !s.Crashed() {
		t.Fatal("Crashed() false after Crash")
	}
	if s.Outstanding() != 0 {
		t.Errorf("outstanding = %d after crash, want 0 (all lost)", s.Outstanding())
	}
	// A crashed board refuses connections: no admission accounting at all.
	if admitted, err := s.Offer(workload.Request{RP: "RP1", ASP: "fir128"}); err != nil || admitted {
		t.Errorf("offer on crashed board: admitted=%v err=%v, want refused cleanly", admitted, err)
	}

	s.Recover()
	if s.Crashed() {
		t.Fatal("Crashed() true after Recover")
	}
	if err := s.AdvanceTo(10 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if admitted, err := s.Offer(workload.Request{At: 10 * sim.Millisecond, RP: "RP1", ASP: "fir128", Tenant: "alpha"}); err != nil || !admitted {
		t.Fatalf("offer after recovery: admitted=%v err=%v", admitted, err)
	}

	st, err := s.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if st.Lost != 4 {
		t.Errorf("lost = %d, want 4", st.Lost)
	}
	if st.Completed != 1 {
		t.Errorf("completed = %d, want 1 (the post-recovery request)", st.Completed)
	}
	// The refused offer never entered the admission counters.
	if st.Offered != 5 || st.Admitted != 5 || st.Shed != 0 {
		t.Errorf("offered/admitted/shed = %d/%d/%d, want 5/5/0", st.Offered, st.Admitted, st.Shed)
	}
	// Lost work is a tenant-visible failure.
	if ten := st.Tenants["alpha"]; ten == nil || ten.Failed != 4 {
		t.Errorf("tenant alpha failed = %+v, want 4", ten)
	}
	if st.SojournUS.N() != st.Completed {
		t.Errorf("sojourn samples %d ≠ completed %d (lost work must not be sampled)", st.SojournUS.N(), st.Completed)
	}
}

// repairRun drives one service through a CRC upset and a repairing re-
// dispatch, returning the drained stats.
func repairRun(t *testing.T, repair string) ServiceStats {
	t.Helper()
	c := newServiceController(t)
	s := NewService(c, ServiceConfig{
		CacheBudgetBytes: -1,
		Repair:           repair,
		UpsetSeed:        7,
	})
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	// Load fir128 onto RP1 and let it finish: the image is resident.
	if _, err := s.Offer(workload.Request{At: 0, RP: "RP1", ASP: "fir128"}); err != nil {
		t.Fatal(err)
	}
	if err := s.AdvanceTo(40 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if s.Outstanding() != 0 {
		t.Fatalf("first request still outstanding at 40ms")
	}
	// An SEU flips frames in the resident region and the read-back CRC
	// verdict raises the alarm.
	raised, err := s.RaiseCRCUpset(2)
	if err != nil {
		t.Fatal(err)
	}
	if !raised {
		t.Fatal("upset not raised against a resident image")
	}
	// The next hit on the alarmed RP must repair before computing.
	if _, err := s.Offer(workload.Request{At: 40 * sim.Millisecond, RP: "RP1", ASP: "fir128"}); err != nil {
		t.Fatal(err)
	}
	st, err := s.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if st.CRCAlarms != 1 {
		t.Errorf("%s: alarms = %d, want 1", repair, st.CRCAlarms)
	}
	if st.Repairs != 1 {
		t.Errorf("%s: repairs = %d, want 1", repair, st.Repairs)
	}
	if st.RepairTime <= 0 {
		t.Errorf("%s: repair time = %v, want > 0", repair, st.RepairTime)
	}
	if st.Completed != 2 {
		t.Errorf("%s: completed = %d, want 2 (repair must not drop the request)", repair, st.Completed)
	}
	return st
}

// TestScrubRepairBeatsFullReload is the paper's scrubbing argument measured
// through the service: repairing a 2-frame upset by frame-wise scrub must
// cost far less reconfiguration time than reloading the whole partition.
func TestScrubRepairBeatsFullReload(t *testing.T) {
	scrub := repairRun(t, "scrub")
	reload := repairRun(t, "reload")
	if scrub.RepairTime >= reload.RepairTime {
		t.Errorf("scrub repair %v must beat full reload %v", scrub.RepairTime, reload.RepairTime)
	}
	// A 2-frame scrub against a multi-hundred-frame partition should be at
	// least an order of magnitude cheaper.
	if 10*scrub.RepairTime >= reload.RepairTime {
		t.Errorf("scrub repair %v not ≫ cheaper than reload %v", scrub.RepairTime, reload.RepairTime)
	}
}

// TestUpsetAgainstEmptyBoard: nothing resident, nothing to corrupt.
func TestUpsetAgainstEmptyBoard(t *testing.T) {
	c := newServiceController(t)
	s := NewService(c, ServiceConfig{CacheBudgetBytes: -1})
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	raised, err := s.RaiseCRCUpset(1)
	if err != nil {
		t.Fatal(err)
	}
	if raised {
		t.Error("upset raised against a board with nothing resident")
	}
	if _, err := s.Drain(); err != nil {
		t.Fatal(err)
	}
}
