// Package hll implements the paper's acceleration framework (Fig. 1): four
// reconfigurable partitions with per-RP clocks from the Clock Manager,
// interrupt-driven status, and on-demand ASP swapping through the
// over-clocked core controller — the "dynamically loaded hardware
// routines" story of the introduction.
//
// The package has two front-ends over one engine:
//
//   - Framework replays a fixed trace closed-loop (each request waits for
//     the previous one), exactly as the paper's measurement harness did —
//     the E9 scenario runs on it and its timing is pinned by the
//     determinism suite.
//   - Service runs the framework as an open-loop reconfiguration service:
//     rate-parameterised arrival streams, per-RP queues with admission
//     control, pluggable dispatch policies arbitrating the single physical
//     ICAP, and a DRAM-resident bitstream cache with LRU eviction — the
//     layer the saturation (E11) and scheduling (E12) scenarios measure.
package hll

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Stats aggregates a run.
type Stats struct {
	// Requests served and reconfigurations performed (a request for a
	// resident ASP needs none).
	Requests  int
	Reconfigs int
	// Hits counts requests whose ASP was already resident.
	Hits int
	// ReconfigTime is total time spent in partial reconfiguration;
	// ComputeTime is total ASP execution time; Makespan is start→finish.
	ReconfigTime sim.Duration
	ComputeTime  sim.Duration
	Makespan     sim.Duration
	// Failures counts loads that did not verify.
	Failures int
	// QueueWaitUS samples each request's wait between arrival and dispatch
	// in microseconds; ServiceUS samples dispatch→completion. Percentiles
	// (p50/p95/p99) come from sim.Sample.
	QueueWaitUS sim.Sample
	ServiceUS   sim.Sample
}

// OverheadFraction is reconfiguration time / makespan — the metric that
// motivates boosting PDR throughput.
func (s Stats) OverheadFraction() float64 {
	if s.Makespan == 0 {
		return 0
	}
	return float64(s.ReconfigTime) / float64(s.Makespan)
}

// Framework is the assembled Fig.-1 system replaying a fixed trace
// closed-loop: requests are served strictly in order, each queueing behind
// the previous one as with a busy accelerator.
type Framework struct {
	eng   *engine
	stats Stats
}

// New builds the framework on a platform-backed controller. The replayer
// keeps the legacy build-once bitstream behaviour: an unlimited cache with
// free staging, so its simulated timing is a pure function of the trace.
func New(ctrl *core.Controller) *Framework {
	return &Framework{eng: newEngine(ctrl, -1, 0)}
}

// Resident returns the ASP currently configured in the RP ("" if none).
func (f *Framework) Resident(rp string) (string, error) {
	st, ok := f.eng.rps[rp]
	if !ok {
		return "", fmt.Errorf("hll: unknown RP %q", rp)
	}
	return st.resident, nil
}

// Stats returns the accumulated statistics.
func (f *Framework) Stats() Stats { return f.stats }

// serve handles one request synchronously in simulated time: reconfigure if
// needed, set the RP clock, then run the ASP's compute. target is the
// request's nominal arrival time (for queue-wait accounting).
func (f *Framework) serve(req workload.Request, target sim.Time) error {
	st, ok := f.eng.rps[req.RP]
	if !ok {
		return fmt.Errorf("hll: unknown RP %q", req.RP)
	}
	asp, err := workload.LibraryASP(req.ASP)
	if err != nil {
		return err
	}
	p := f.eng.ctrl.Platform()
	f.stats.Requests++
	dispatch := p.Kernel.Now()
	f.stats.QueueWaitUS.Add(dispatch.Sub(target).Microseconds())

	if st.resident != asp.Name {
		bs, err := f.eng.acquire(asp, st)
		if err != nil {
			return err
		}
		ok, err := f.eng.loadASP(&f.stats, st, asp, bs)
		if err != nil {
			return err
		}
		if !ok {
			return nil // request dropped; caller sees it in stats
		}
	} else {
		f.stats.Hits++
	}

	// Run the task; the ASP's data DMA loads the shared memory interface
	// for the duration.
	gen := f.eng.traffic[req.RP]
	gen.SetRate(asp.MemBandwidthMBs)
	gen.Start()
	p.Kernel.RunFor(asp.ComputeTime)
	gen.Stop()
	f.stats.ComputeTime += asp.ComputeTime
	f.stats.ServiceUS.Add(p.Kernel.Now().Sub(dispatch).Microseconds())
	return nil
}

// Run executes a whole trace, honouring request times (a request earlier
// than "now" queues behind the previous one, as with a busy accelerator).
// When a mid-trace request fails, Run returns the statistics accumulated
// up to the failure — makespan included — with the error wrapped, so a
// caller keeps the progress a partial run paid for.
func (f *Framework) Run(tr workload.Trace) (Stats, error) {
	p := f.eng.ctrl.Platform()
	start := p.Kernel.Now()
	for i, req := range tr {
		target := start.Add(req.At)
		if p.Kernel.Now() < target {
			p.Kernel.RunUntil(target)
		}
		if err := f.serve(req, target); err != nil {
			f.stats.Makespan = p.Kernel.Now().Sub(start)
			return f.stats, fmt.Errorf("hll: request %d (%s on %s): %w", i, req.ASP, req.RP, err)
		}
	}
	f.stats.Makespan = p.Kernel.Now().Sub(start)
	return f.stats, nil
}
