// Package hll implements the paper's acceleration framework (Fig. 1): four
// reconfigurable partitions with per-RP clocks from the Clock Manager,
// interrupt-driven status, and an on-demand scheduler that swaps ASPs in and
// out as requests arrive — the "dynamically loaded hardware routines" story
// of the introduction. Reconfigurations go through the over-clocked core
// controller; the framework measures how much of the wall clock they cost.
package hll

import (
	"fmt"

	"repro/internal/bitstream"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/workload"
)

// rpState tracks one partition.
type rpState struct {
	region   fabric.Region
	resident string // ASP name, "" when empty
	clock    string // Clock Manager output feeding this RP
}

// Stats aggregates a run.
type Stats struct {
	// Requests served and reconfigurations performed (a request for a
	// resident ASP needs none).
	Requests  int
	Reconfigs int
	// Hits counts requests whose ASP was already resident.
	Hits int
	// ReconfigTime is total time spent in partial reconfiguration;
	// ComputeTime is total ASP execution time; Makespan is start→finish.
	ReconfigTime sim.Duration
	ComputeTime  sim.Duration
	Makespan     sim.Duration
	// Failures counts loads that did not verify.
	Failures int
}

// OverheadFraction is reconfiguration time / makespan — the metric that
// motivates boosting PDR throughput.
func (s Stats) OverheadFraction() float64 {
	if s.Makespan == 0 {
		return 0
	}
	return float64(s.ReconfigTime) / float64(s.Makespan)
}

// Framework is the assembled Fig.-1 system.
type Framework struct {
	ctrl *core.Controller
	rps  map[string]*rpState

	// cache of built bitstreams: (asp, rp) → image
	cache map[string]*bitstream.Bitstream
	// traffic models each RP's private data DMA on the shared memory
	// interface; a computing ASP contends with the configuration path.
	traffic map[string]*dram.Traffic

	stats Stats
}

// New builds the framework on a platform-backed controller.
func New(ctrl *core.Controller) *Framework {
	f := &Framework{
		ctrl:    ctrl,
		rps:     make(map[string]*rpState),
		cache:   make(map[string]*bitstream.Bitstream),
		traffic: make(map[string]*dram.Traffic),
	}
	p := ctrl.Platform()
	clocks := p.ClockManager.Names()
	for i, rp := range p.RPs {
		f.rps[rp.Name] = &rpState{region: rp, clock: clocks[i%len(clocks)]}
		f.traffic[rp.Name] = dram.NewTraffic(p.Kernel, p.DDR, 0)
	}
	return f
}

// Resident returns the ASP currently configured in the RP ("" if none).
func (f *Framework) Resident(rp string) (string, error) {
	st, ok := f.rps[rp]
	if !ok {
		return "", fmt.Errorf("hll: unknown RP %q", rp)
	}
	return st.resident, nil
}

// Stats returns the accumulated statistics.
func (f *Framework) Stats() Stats { return f.stats }

// bitstreamFor builds (and caches) the ASP's image for the RP.
func (f *Framework) bitstreamFor(asp workload.ASP, st *rpState) (*bitstream.Bitstream, error) {
	key := asp.Name + "@" + st.region.Name
	if bs, ok := f.cache[key]; ok {
		return bs, nil
	}
	bs, err := asp.Bitstream(f.ctrl.Platform().Device, st.region)
	if err != nil {
		return nil, err
	}
	f.cache[key] = bs
	return bs, nil
}

// serve handles one request synchronously in simulated time: reconfigure if
// needed, set the RP clock, then run the ASP's compute.
func (f *Framework) serve(req workload.Request) error {
	st, ok := f.rps[req.RP]
	if !ok {
		return fmt.Errorf("hll: unknown RP %q", req.RP)
	}
	asp, err := workload.LibraryASP(req.ASP)
	if err != nil {
		return err
	}
	p := f.ctrl.Platform()
	f.stats.Requests++

	if st.resident != asp.Name {
		bs, err := f.bitstreamFor(asp, st)
		if err != nil {
			return err
		}
		t0 := p.Kernel.Now()
		res, err := f.ctrl.Load(req.RP, bs)
		if err != nil {
			return err
		}
		f.stats.Reconfigs++
		f.stats.ReconfigTime += p.Kernel.Now().Sub(t0)
		if !res.CRCValid {
			f.stats.Failures++
			st.resident = ""
			return nil // request dropped; caller sees it in stats
		}
		st.resident = asp.Name
		// Each RP gets the clock its ASP timing closure allows.
		p.ClockManager.Domain(st.clock).SetFreq(sim.Hz(asp.ClockMHz * 1e6))
	} else {
		f.stats.Hits++
	}

	// Run the task; the ASP's data DMA loads the shared memory interface
	// for the duration.
	gen := f.traffic[req.RP]
	gen.SetRate(asp.MemBandwidthMBs)
	gen.Start()
	p.Kernel.RunFor(asp.ComputeTime)
	gen.Stop()
	f.stats.ComputeTime += asp.ComputeTime
	return nil
}

// Run executes a whole trace, honouring request times (a request earlier
// than "now" queues behind the previous one, as with a busy accelerator).
func (f *Framework) Run(tr workload.Trace) (Stats, error) {
	p := f.ctrl.Platform()
	start := p.Kernel.Now()
	for _, req := range tr {
		target := start.Add(req.At)
		if p.Kernel.Now() < target {
			p.Kernel.RunUntil(target)
		}
		if err := f.serve(req); err != nil {
			return f.stats, err
		}
	}
	f.stats.Makespan = p.Kernel.Now().Sub(start)
	return f.stats, nil
}
