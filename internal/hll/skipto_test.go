package hll

import (
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

// TestSessionSkipToMatchesAdvanceTo drives the same stream twice — once
// through AdvanceTo alone, once preferring the SkipTo fast path exactly as
// the fleet's epoch loop does — and requires identical statistics. The
// low-rate trace guarantees idle gaps, so the fast path genuinely fires.
func TestSessionSkipToMatchesAdvanceTo(t *testing.T) {
	cfg := ServiceConfig{CacheBudgetBytes: -1}
	tr := mustTrace(t)(workload.OpenPoisson(5, 24, 120,
		[]string{"RP1", "RP2"}, []string{"fir128", "sha3"}))
	drive := func(skip bool) ServiceStats {
		c := newServiceController(t)
		s := NewService(c, cfg)
		if err := s.Begin(); err != nil {
			t.Fatal(err)
		}
		now := sim.Duration(-1)
		skips := 0
		for _, req := range tr {
			if req.At > now {
				now = req.At
				if skip && s.SkipTo(now) {
					skips++
				} else if err := s.AdvanceTo(now); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := s.Offer(req); err != nil {
				t.Fatal(err)
			}
		}
		st, err := s.Drain()
		if err != nil {
			t.Fatal(err)
		}
		if skip && skips == 0 {
			t.Error("low-rate trace never took the fast path — the test lost its bite")
		}
		return st
	}
	plain, fast := drive(false), drive(true)
	if !reflect.DeepEqual(plain, fast) {
		t.Errorf("SkipTo-driven stats diverge from AdvanceTo:\n%+v\nvs\n%+v", plain, fast)
	}
}

// TestSessionSkipToGuards pins the fast path's refusal conditions and the
// O(1) queue counter it relies on: no skip outside a session, no skip past
// queued work, and the clock must actually move on a successful skip.
func TestSessionSkipToGuards(t *testing.T) {
	c := newServiceController(t)
	s := NewService(c, ServiceConfig{CacheBudgetBytes: -1})
	if s.SkipTo(sim.Millisecond) {
		t.Error("SkipTo must refuse before Begin so AdvanceTo surfaces the error")
	}
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	if s.Queued() != 0 {
		t.Fatalf("fresh session queued = %d, want 0", s.Queued())
	}

	k := c.Platform().Kernel
	start := k.Now()
	if !s.SkipTo(5 * sim.Millisecond) {
		t.Fatal("idle board must take the fast path")
	}
	if got := k.Now(); got != start.Add(5*sim.Millisecond) {
		t.Errorf("skip left the clock at %v, want start+5ms", got)
	}
	if !s.SkipTo(sim.Millisecond) {
		t.Error("already-passed target must be a trivial skip")
	}
	if got := k.Now(); got != start.Add(5*sim.Millisecond) {
		t.Errorf("past-target skip moved the clock to %v", got)
	}

	if _, err := s.Offer(workload.Request{At: 5 * sim.Millisecond, RP: "RP1", ASP: "fir128"}); err != nil {
		t.Fatal(err)
	}
	if s.Queued() != 1 {
		t.Errorf("queued = %d after Offer, want 1 (dispatch waits for AdvanceTo)", s.Queued())
	}
	if s.SkipTo(20 * sim.Millisecond) {
		t.Error("SkipTo must refuse while work is queued")
	}
	if err := s.AdvanceTo(20 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if s.Queued() != 0 {
		t.Errorf("queued = %d after dispatch, want 0", s.Queued())
	}
	if st, err := s.Drain(); err != nil || st.Completed != 1 {
		t.Fatalf("drain: completed = %d, err = %v", st.Completed, err)
	}
}
