package hll

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/zynq"
)

func newServiceController(t *testing.T) *core.Controller {
	t.Helper()
	p, err := zynq.NewPlatform(zynq.Options{Seed: 9, FastThermal: true})
	if err != nil {
		t.Fatal(err)
	}
	p.ConfigureStatic()
	c := core.New(p)
	if _, err := c.SetFrequencyMHz(200); err != nil {
		t.Fatal(err)
	}
	return c
}

func mustTrace(t *testing.T) func(workload.Trace, error) workload.Trace {
	t.Helper()
	return func(tr workload.Trace, err error) workload.Trace {
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
}

func TestServeCompletesEveryAdmittedRequest(t *testing.T) {
	c := newServiceController(t)
	s := NewService(c, ServiceConfig{CacheBudgetBytes: -1})
	tr := mustTrace(t)(workload.OpenPoisson(5, 40, 300,
		[]string{"RP1", "RP2", "RP3", "RP4"}, []string{"fir128", "sha3", "aes-gcm"}))
	stats, err := s.Serve(tr)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Offered != 40 || stats.Admitted != 40 || stats.Shed != 0 {
		t.Errorf("offered/admitted/shed = %d/%d/%d", stats.Offered, stats.Admitted, stats.Shed)
	}
	if stats.Completed+stats.Failures != 40 {
		t.Errorf("completed %d + failures %d ≠ 40", stats.Completed, stats.Failures)
	}
	if stats.SojournUS.N() != stats.Completed {
		t.Errorf("sojourn samples %d ≠ completed %d", stats.SojournUS.N(), stats.Completed)
	}
	if stats.Makespan <= 0 {
		t.Error("makespan must be positive")
	}
}

func TestServeOverlapsComputeAcrossRPs(t *testing.T) {
	// Two resident-hit computes on different RPs must overlap: serve the
	// same ASP twice per RP (second requests are hits), and check the
	// makespan beats the closed-loop replayer on the same trace.
	run := func(open bool) sim.Duration {
		c := newServiceController(t)
		tr := workload.Trace{
			{At: 0, RP: "RP1", ASP: "matmul8"},
			{At: 0, RP: "RP2", ASP: "matmul8"},
			{At: 0, RP: "RP1", ASP: "matmul8"},
			{At: 0, RP: "RP2", ASP: "matmul8"},
		}
		if open {
			stats, err := NewService(c, ServiceConfig{CacheBudgetBytes: -1}).Serve(tr)
			if err != nil {
				t.Fatal(err)
			}
			return stats.Makespan
		}
		stats, err := New(c).Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		return stats.Makespan
	}
	closed, opened := run(false), run(true)
	if opened >= closed {
		t.Errorf("service makespan %v should beat closed-loop %v (concurrent compute)", opened, closed)
	}
}

func TestServeShedsUnderQueueCap(t *testing.T) {
	c := newServiceController(t)
	s := NewService(c, ServiceConfig{CacheBudgetBytes: -1, QueueCap: 2})
	// A burst of simultaneous same-RP requests: 2 queue, the rest shed
	// (minus the one dispatched immediately).
	tr := workload.Trace{}
	for i := 0; i < 8; i++ {
		tr = append(tr, workload.Request{At: 0, RP: "RP1", ASP: "fir128"})
	}
	stats, err := s.Serve(tr)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Shed == 0 {
		t.Error("queue cap 2 must shed part of an 8-deep burst")
	}
	if stats.Offered != 8 || stats.Admitted+stats.Shed != 8 {
		t.Errorf("admission accounting broken: %+v", stats)
	}
	if stats.Completed != stats.Admitted {
		t.Errorf("completed %d ≠ admitted %d", stats.Completed, stats.Admitted)
	}
}

func TestServeCountsDeadlineMissesAndTenants(t *testing.T) {
	c := newServiceController(t)
	s := NewService(c, ServiceConfig{CacheBudgetBytes: -1})
	spec := workload.ArrivalSpec{
		RatePerSec: 2000, // well past one RP's reconfig capacity
		Tenants:    []string{"alpha", "beta"},
		Deadline:   500 * sim.Microsecond,
	}
	tr := mustTrace(t)(spec.Generate(7, 30, []string{"RP1"}, []string{"fir128", "sha3"}))
	stats, err := s.Serve(tr)
	if err != nil {
		t.Fatal(err)
	}
	if stats.DeadlineMisses == 0 {
		t.Error("an overloaded RP must miss 500 µs deadlines")
	}
	if len(stats.Tenants) != 2 {
		t.Fatalf("tenants = %v", stats.TenantNames())
	}
	var offered, settled int
	for _, name := range stats.TenantNames() {
		ts := stats.Tenants[name]
		offered += ts.Offered
		settled += ts.Completed + ts.Shed + ts.Failed
	}
	if offered != 30 {
		t.Errorf("per-tenant offered sums to %d, want 30", offered)
	}
	if settled != offered {
		t.Errorf("per-tenant outcomes sum to %d, want %d (every request settles exactly once)", settled, offered)
	}
}

func TestServeCacheBudgetForcesStaging(t *testing.T) {
	// With a budget of one image and staging priced at the SD rate, every
	// swap between two ASPs on one RP re-stages; unlimited cache stages
	// each image once.
	run := func(budget int64) ServiceStats {
		c := newServiceController(t)
		s := NewService(c, ServiceConfig{
			CacheBudgetBytes: budget,
			StageBytesPerSec: 20e6,
		})
		tr := workload.Trace{}
		for i := 0; i < 6; i++ {
			asp := "fir128"
			if i%2 == 1 {
				asp = "sha3"
			}
			tr = append(tr, workload.Request{At: sim.Duration(i) * 50 * sim.Millisecond, RP: "RP1", ASP: asp})
		}
		stats, err := s.Serve(tr)
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	one := run(600_000) // holds one 528,760-byte image
	all := run(-1)
	if one.Cache.Evictions == 0 {
		t.Error("one-image budget must evict on every swap")
	}
	if all.Cache.Evictions != 0 {
		t.Errorf("unlimited cache evicted %d times", all.Cache.Evictions)
	}
	if one.StageTime <= all.StageTime {
		t.Errorf("thrashing cache should stage longer: %v vs %v", one.StageTime, all.StageTime)
	}
	if all.Cache.Hits == 0 {
		t.Error("unlimited cache must hit on repeats")
	}
}

func TestServeNoCacheAblationStagesEveryReconfig(t *testing.T) {
	c := newServiceController(t)
	s := NewService(c, ServiceConfig{CacheBudgetBytes: 0, StageBytesPerSec: 20e6})
	tr := workload.Trace{
		{At: 0, RP: "RP1", ASP: "fir128"},
		{At: 100 * sim.Millisecond, RP: "RP1", ASP: "fir128"}, // resident hit: no restage
		{At: 200 * sim.Millisecond, RP: "RP1", ASP: "sha3"},
		{At: 300 * sim.Millisecond, RP: "RP1", ASP: "fir128"},
	}
	stats, err := s.Serve(tr)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cache.Hits != 0 {
		t.Errorf("disabled cache hit %d times", stats.Cache.Hits)
	}
	if stats.Reconfigs != 3 || stats.Hits != 1 {
		t.Errorf("reconfigs/hits = %d/%d, want 3/1", stats.Reconfigs, stats.Hits)
	}
	// Every one of the 3 reconfigs staged 528,760 bytes at 20 MB/s.
	wantStage := 3 * sim.FromSeconds(528760.0/20e6)
	if stats.StageTime != wantStage {
		t.Errorf("stage time %v, want %v", stats.StageTime, wantStage)
	}
}

func TestAffinityPolicyBeatsFCFSOnHitRate(t *testing.T) {
	// One RP, alternating arrivals for two ASPs in simultaneous pairs:
	// affinity batches same-ASP requests (second of each pair is a hit),
	// FCFS alternates and reconfigures every time.
	trace := func() workload.Trace {
		tr := workload.Trace{}
		for i := 0; i < 6; i++ {
			tr = append(tr, workload.Request{At: 0, RP: "RP1", ASP: "fir128"})
			tr = append(tr, workload.Request{At: 0, RP: "RP1", ASP: "sha3"})
		}
		return tr
	}
	run := func(p sched.Policy) ServiceStats {
		c := newServiceController(t)
		s := NewService(c, ServiceConfig{Policy: p, CacheBudgetBytes: -1})
		stats, err := s.Serve(trace())
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	fcfs := run(sched.FCFS())
	aff := run(sched.Affinity())
	if aff.Hits <= fcfs.Hits {
		t.Errorf("affinity hits %d should beat FCFS %d", aff.Hits, fcfs.Hits)
	}
	if aff.ReconfigTime >= fcfs.ReconfigTime {
		t.Errorf("affinity reconfig time %v should beat FCFS %v", aff.ReconfigTime, fcfs.ReconfigTime)
	}
}

func TestServeDeterministic(t *testing.T) {
	run := func() (ServiceStats, uint64) {
		c := newServiceController(t)
		s := NewService(c, ServiceConfig{
			Policy:           sched.SBF(),
			CacheBudgetBytes: 2 * 528760,
			QueueCap:         8,
			StageBytesPerSec: 20e6,
		})
		tr := mustTrace(t)(workload.OpenBursts(21, 48, 800, 4, 6,
			[]string{"RP1", "RP2", "RP3", "RP4"}, []string{"fir128", "sha3", "aes-gcm", "fft1k"}))
		stats, err := s.Serve(tr)
		if err != nil {
			t.Fatal(err)
		}
		return stats, c.Platform().Kernel.Fired()
	}
	s1, f1 := run()
	s2, f2 := run()
	if f1 != f2 {
		t.Errorf("event counts differ: %d vs %d", f1, f2)
	}
	if s1.Completed != s2.Completed || s1.Shed != s2.Shed || s1.Reconfigs != s2.Reconfigs ||
		s1.Makespan != s2.Makespan || s1.StageTime != s2.StageTime ||
		s1.SojournUS.Percentile(99) != s2.SojournUS.Percentile(99) {
		t.Errorf("service runs diverge:\n%+v\nvs\n%+v", s1, s2)
	}
}

// TestSessionMatchesServe pins the externally driven session mode (the
// fleet front-end's path) to Serve's semantics: driving the same stream
// through Begin/Offer/AdvanceTo/Drain on an identically seeded board must
// reproduce Serve's statistics exactly — same admissions, same schedule,
// same simulated timing.
func TestSessionMatchesServe(t *testing.T) {
	cfg := ServiceConfig{
		Policy:           sched.SBF(),
		CacheBudgetBytes: 2 * 528760, // thrashes: staging and eviction on most swaps
		QueueCap:         8,
		StageBytesPerSec: 20e6,
		PrewarmASPs:      []string{"fir128"},
	}
	tr := mustTrace(t)(workload.OpenBursts(21, 48, 800, 4, 6,
		[]string{"RP1", "RP2", "RP3", "RP4"}, []string{"fir128", "sha3", "aes-gcm", "fft1k"}))

	cA := newServiceController(t)
	served, err := NewService(cA, cfg).Serve(tr)
	if err != nil {
		t.Fatal(err)
	}

	cB := newServiceController(t)
	s := NewService(cB, cfg)
	completions := 0
	s.SetOnComplete(func(rel, sojourn sim.Duration) {
		completions++
		if rel <= 0 || sojourn <= 0 {
			t.Errorf("completion hook got rel=%v sojourn=%v", rel, sojourn)
		}
	})
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	now := sim.Duration(-1)
	for _, req := range tr {
		if req.At > now {
			now = req.At
			if err := s.AdvanceTo(now); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := s.Offer(req); err != nil {
			t.Fatal(err)
		}
	}
	driven, err := s.Drain()
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(served, driven) {
		t.Errorf("session-driven stats diverge from Serve:\n%+v\nvs\n%+v", served, driven)
	}
	if fa, fb := cA.Platform().Kernel.Fired(), cB.Platform().Kernel.Fired(); fa != fb {
		t.Errorf("event counts differ: Serve %d vs session %d", fa, fb)
	}
	if completions != driven.Completed {
		t.Errorf("completion hook fired %d times, want %d", completions, driven.Completed)
	}
}

func TestSessionLifecycleErrors(t *testing.T) {
	c := newServiceController(t)
	s := NewService(c, ServiceConfig{})
	if _, err := s.Offer(workload.Request{RP: "RP1", ASP: "fir128"}); err == nil {
		t.Error("Offer before Begin must fail")
	}
	if err := s.AdvanceTo(sim.Millisecond); err == nil {
		t.Error("AdvanceTo before Begin must fail")
	}
	if _, err := s.Drain(); err == nil {
		t.Error("Drain before Begin must fail")
	}
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := s.Begin(); err == nil {
		t.Error("double Begin must fail")
	}
	if _, err := s.Offer(workload.Request{RP: "RP9", ASP: "fir128"}); err == nil {
		t.Error("unknown RP routed to the board must fail")
	}
	if _, err := s.Offer(workload.Request{RP: "RP1", ASP: "ghost"}); err == nil {
		t.Error("unknown ASP must fail")
	}

	// A service serves exactly one stream: consumed by Serve, it must
	// reject both another Serve and a session.
	used := NewService(newServiceController(t), ServiceConfig{})
	tr := workload.Trace{{RP: "RP1", ASP: "fir128"}}
	if _, err := used.Serve(tr); err != nil {
		t.Fatal(err)
	}
	if _, err := used.Serve(tr); err == nil {
		t.Error("second Serve on a consumed service must fail")
	}
	if err := used.Begin(); err == nil {
		t.Error("Begin on a service consumed by Serve must fail")
	}
	// The closed window must stay closed: a stray Drain would otherwise
	// re-apply the staging/cache deltas on top of the finished stats.
	if _, err := used.Drain(); err == nil {
		t.Error("Drain on a consumed service must fail")
	}
	if _, err := used.Offer(workload.Request{RP: "RP1", ASP: "fir128"}); err == nil {
		t.Error("Offer on a consumed service must fail")
	}
	if err := used.AdvanceTo(sim.Millisecond); err == nil {
		t.Error("AdvanceTo on a consumed service must fail")
	}
}

// TestServeZeroDeadlineNeverMisses covers the Deadline == 0 path end to
// end: a request without a latency budget must never be counted as a
// deadline miss, however long it actually queued — globally and in the
// per-tenant break-down.
func TestServeZeroDeadlineNeverMisses(t *testing.T) {
	c := newServiceController(t)
	// No cache + slow staging: every request pays tens of milliseconds, so
	// any spurious deadline accounting would trip immediately.
	s := NewService(c, ServiceConfig{StageBytesPerSec: 20e6})
	spec := workload.ArrivalSpec{RatePerSec: 400, Tenants: []string{"a", "b"}} // Deadline: 0
	tr := mustTrace(t)(spec.Generate(11, 24, []string{"RP1", "RP2"}, []string{"fir128", "sha3"}))
	stats, err := s.Serve(tr)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed == 0 {
		t.Fatal("stream must complete work")
	}
	if stats.SojournUS.Max() < 1000 {
		t.Fatalf("test premise broken: sojourns too fast (max %v us) to catch spurious misses", stats.SojournUS.Max())
	}
	if stats.DeadlineMisses != 0 {
		t.Errorf("zero-deadline stream reported %d deadline misses", stats.DeadlineMisses)
	}
	for _, name := range stats.TenantNames() {
		if n := stats.Tenants[name].DeadlineMisses; n != 0 {
			t.Errorf("tenant %s reported %d deadline misses on a zero-deadline stream", name, n)
		}
	}
}

func TestServeValidatesAtTheDoor(t *testing.T) {
	c := newServiceController(t)
	s := NewService(c, ServiceConfig{})
	if _, err := s.Serve(workload.Trace{{RP: "RP9", ASP: "fir128"}}); err == nil {
		t.Error("unknown RP must fail")
	}
	if _, err := s.Serve(workload.Trace{{RP: "RP1", ASP: "ghost"}}); err == nil {
		t.Error("unknown ASP must fail")
	}
	out := workload.Trace{
		{At: 2 * sim.Millisecond, RP: "RP1", ASP: "fir128"},
		{At: 1 * sim.Millisecond, RP: "RP1", ASP: "fir128"},
	}
	if _, err := s.Serve(out); err == nil {
		t.Error("out-of-order stream must fail")
	}
}
