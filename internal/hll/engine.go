package hll

import (
	"repro/internal/bitstream"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/fabric"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// rpState tracks one partition.
type rpState struct {
	region   fabric.Region
	resident string // ASP name, "" when empty
	clock    string // Clock Manager output feeding this RP
	// imageBytes is the partial-bitstream size for this RP (every library
	// ASP fills the full frame span, so size is a function of the region).
	imageBytes int
	// busyUntil is when the RP's current compute finishes (service mode);
	// a time at or before "now" means the partition is free.
	busyUntil sim.Time
	// inflight is the request currently computing on the partition (service
	// mode); a board crash loses it and invalidates its completion event.
	inflight *sched.Item
	// alarm records a raised CRC read-back alarm: the partition's
	// configuration memory no longer matches the golden image. The service
	// repairs (scrub or full reload) before the resident ASP runs again.
	alarm bool
	// suspect lists the linear frame indices the read-back monitor localised
	// the alarm to (SEM-style frame addressing); empty means "somewhere in
	// the region" and forces a full-region scrub.
	suspect []int
}

// engine is the machinery shared by the closed-loop trace replayer
// (Framework) and the open-loop reconfiguration service (Service): the
// per-RP states and data-DMA traffic generators, the DRAM-resident
// bitstream cache, and the load path through the over-clocked controller.
type engine struct {
	ctrl *core.Controller
	// order lists the RP names in platform order — every scan uses it, so
	// no map iteration can perturb determinism.
	order []string
	rps   map[string]*rpState
	// traffic models each RP's private data DMA on the shared memory
	// interface; a computing ASP contends with the configuration path.
	traffic map[string]*dram.Traffic

	// cache is the DRAM-resident bitstream store; stageRate is the
	// backing-store (SD card) rate paid to stage an image on a miss
	// (0 = staging is free, the legacy replayer behaviour).
	cache     *sched.Cache
	stageRate float64
	stageTime sim.Duration
}

// newEngine assembles the per-RP state exactly as the Fig.-1 framework
// wires it: one traffic generator per RP (registration order = platform RP
// order) and one Clock Manager output per partition.
func newEngine(ctrl *core.Controller, cacheBudget int64, stageRate float64) *engine {
	e := &engine{
		ctrl:      ctrl,
		rps:       make(map[string]*rpState),
		traffic:   make(map[string]*dram.Traffic),
		cache:     sched.NewCache(cacheBudget),
		stageRate: stageRate,
	}
	p := ctrl.Platform()
	clocks := p.ClockManager.Names()
	for i, rp := range p.RPs {
		e.order = append(e.order, rp.Name)
		e.rps[rp.Name] = &rpState{
			region:     rp,
			clock:      clocks[i%len(clocks)],
			imageBytes: bitstream.ExpectedSize(p.Device.RegionFrames(rp)),
		}
		e.traffic[rp.Name] = dram.NewTraffic(p.Kernel, p.DDR, 0)
	}
	return e
}

// acquire returns the ASP's image for the RP, staging it into the DRAM
// cache on a miss. Staging costs simulated time at the backing-store rate
// (the SD card the paper boots bitstreams from); a DRAM hit costs nothing
// extra — the DMA streams it straight to the ICAP.
func (e *engine) acquire(asp workload.ASP, st *rpState) (*bitstream.Bitstream, error) {
	key := asp.Name + "@" + st.region.Name
	if bs, ok := e.cache.Get(key); ok {
		return bs, nil
	}
	bs, err := asp.Bitstream(e.ctrl.Platform().Device, st.region)
	if err != nil {
		return nil, err
	}
	if e.stageRate > 0 {
		d := sim.FromSeconds(float64(bs.Size()) / e.stageRate)
		e.ctrl.Platform().Kernel.RunFor(d)
		e.stageTime += d
	}
	e.cache.Put(key, bs)
	return bs, nil
}

// loadASP performs the partial reconfiguration and the post-load clock
// retarget, accounting into stats. It reports ok=false when the CRC
// read-back rejected the load (the request is dropped, as the paper's
// framework drops requests whose image did not verify).
func (e *engine) loadASP(stats *Stats, st *rpState, asp workload.ASP, bs *bitstream.Bitstream) (bool, error) {
	p := e.ctrl.Platform()
	t0 := p.Kernel.Now()
	res, err := e.ctrl.Load(st.region.Name, bs)
	if err != nil {
		return false, err
	}
	stats.Reconfigs++
	stats.ReconfigTime += p.Kernel.Now().Sub(t0)
	// The load rewrote the whole partition, superseding any pending upset
	// alarm whether or not the new image verified.
	st.alarm = false
	st.suspect = nil
	if !res.CRCValid {
		stats.Failures++
		st.resident = ""
		return false, nil
	}
	st.resident = asp.Name
	// Each RP gets the clock its ASP timing closure allows.
	p.ClockManager.Domain(st.clock).SetFreq(sim.Hz(asp.ClockMHz * 1e6))
	return true, nil
}
