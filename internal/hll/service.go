package hll

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// ServiceConfig parameterises the reconfiguration service.
type ServiceConfig struct {
	// Policy picks the next dispatch among queued requests on free
	// partitions (nil = FCFS).
	Policy sched.Policy
	// CacheBudgetBytes bounds the DRAM-resident bitstream cache: < 0 is
	// unlimited, 0 disables caching entirely (the no-cache ablation — every
	// reconfiguration re-stages its image from the backing store).
	CacheBudgetBytes int64
	// QueueCap is the per-RP admission-control depth; ≤ 0 is unbounded.
	QueueCap int
	// StageBytesPerSec is the backing-store rate a cache miss pays to stage
	// the image into DRAM (the platform profile's SD-card rate in the
	// scenarios); 0 makes staging free.
	StageBytesPerSec float64
	// PrewarmASPs stages the listed ASPs' images for every partition into
	// the cache before the stream starts — the steady-state residency a
	// long-running deployment has. The staging time is paid before the
	// measurement window opens; a disabled cache ignores it (the no-cache
	// ablation pays full staging on every reconfiguration by design).
	PrewarmASPs []string
}

// TenantStats is one traffic source's view of a service run. Every offered
// request ends in exactly one of Completed, Shed or Failed.
type TenantStats struct {
	Offered, Completed, Shed, Failed, DeadlineMisses int
}

// ServiceStats extends the framework statistics with the open-loop service
// metrics: admission-control outcomes, sojourn tail latency, deadline
// misses, cache behaviour and staging cost.
type ServiceStats struct {
	Stats
	// Offered counts arrivals; Admitted the ones admission control let in;
	// Shed the rejected ones; Completed the ones that finished compute.
	Offered, Admitted, Shed, Completed int
	// DeadlineMisses counts completions past their request deadline.
	DeadlineMisses int
	// SojournUS samples arrival→completion latency in microseconds — the
	// end-to-end latency whose p99 the saturation sweep watches.
	SojournUS sim.Sample
	// Cache summarises the bitstream cache; StageTime is the total
	// simulated time spent staging images from the backing store.
	Cache     sched.CacheStats
	StageTime sim.Duration
	// Tenants breaks the run down per traffic source.
	Tenants map[string]*TenantStats
}

// TenantNames returns the tenants seen, sorted for stable rendering.
func (s *ServiceStats) TenantNames() []string {
	names := make([]string, 0, len(s.Tenants))
	for n := range s.Tenants {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Service is the Fig.-1 framework run as an open-loop reconfiguration
// service: arrivals are admitted into per-RP queues as simulated time
// passes, resident-hit requests compute concurrently on their partitions,
// and reconfigurations serialise on the single physical ICAP (guarded by
// Port.BusyUntil), ordered by the dispatch policy. At each dispatch
// instant every eligible resident hit starts before the ICAP is occupied;
// requests arriving while a staging or transfer is in flight wait for the
// dispatcher to come back around (the PS runs one dispatch loop).
type Service struct {
	eng    *engine
	cfg    ServiceConfig
	policy sched.Policy
	queues map[string]*sched.Queue

	stats ServiceStats
	done  int
}

// NewService builds the service on a platform-backed controller.
func NewService(ctrl *core.Controller, cfg ServiceConfig) *Service {
	policy := cfg.Policy
	if policy == nil {
		policy = sched.FCFS()
	}
	s := &Service{
		eng:    newEngine(ctrl, cfg.CacheBudgetBytes, cfg.StageBytesPerSec),
		cfg:    cfg,
		policy: policy,
		queues: make(map[string]*sched.Queue),
	}
	s.stats.Tenants = make(map[string]*TenantStats)
	for _, name := range s.eng.order {
		s.queues[name] = sched.NewQueue(cfg.QueueCap)
	}
	return s
}

// Stats returns the accumulated statistics.
func (s *Service) Stats() ServiceStats { return s.stats }

// Policy returns the active dispatch policy.
func (s *Service) Policy() sched.Policy { return s.policy }

// tenant returns the per-tenant accumulator.
func (s *Service) tenant(name string) *TenantStats {
	t, ok := s.stats.Tenants[name]
	if !ok {
		t = &TenantStats{}
		s.stats.Tenants[name] = t
	}
	return t
}

// Serve runs the whole arrival stream to completion and returns the
// accumulated statistics. The trace must be time-ordered and reference
// known RPs and ASPs (validated up front — an open-loop service checks
// requests at the door, not mid-flight).
func (s *Service) Serve(tr workload.Trace) (ServiceStats, error) {
	if err := s.validate(tr); err != nil {
		return s.stats, fmt.Errorf("hll: service: %w", err)
	}
	if err := s.prewarm(); err != nil {
		return s.stats, fmt.Errorf("hll: service: prewarm: %w", err)
	}
	// Snapshot staging/cache state so the reported statistics cover the
	// measurement window only, not the prewarm.
	stage0 := s.eng.stageTime
	cache0 := s.eng.cache.Stats()
	p := s.eng.ctrl.Platform()
	k := p.Kernel
	start := k.Now()
	s.done = 0
	n := len(tr)

	next := 0 // next arrival to admit
	for s.done < n {
		now := k.Now()
		for next < n && start.Add(tr[next].At) <= now {
			s.admit(tr[next], start)
			next++
		}
		served, err := s.dispatchOne(now)
		if err != nil {
			s.finish(start, stage0, cache0)
			return s.stats, fmt.Errorf("hll: service: %w", err)
		}
		if served {
			continue
		}
		// Nothing dispatchable: advance to the next arrival or the next
		// compute completion, whichever comes first.
		wake := sim.Never
		if next < n {
			wake = start.Add(tr[next].At)
		}
		for _, name := range s.eng.order {
			if bu := s.eng.rps[name].busyUntil; bu > now && bu < wake {
				wake = bu
			}
		}
		if wake == sim.Never {
			return s.stats, fmt.Errorf("hll: service stalled with %d/%d requests outstanding", n-s.done, n)
		}
		k.RunUntil(wake)
	}

	s.finish(start, stage0, cache0)
	return s.stats, nil
}

// finish closes the measurement window: makespan, and staging/cache deltas
// relative to the pre-stream snapshot.
func (s *Service) finish(start sim.Time, stage0 sim.Duration, cache0 sched.CacheStats) {
	k := s.eng.ctrl.Platform().Kernel
	s.stats.Makespan = k.Now().Sub(start)
	s.stats.StageTime += s.eng.stageTime - stage0
	cs := s.eng.cache.Stats()
	s.stats.Cache.Hits += cs.Hits - cache0.Hits
	s.stats.Cache.Misses += cs.Misses - cache0.Misses
	s.stats.Cache.Evictions += cs.Evictions - cache0.Evictions
	s.stats.Cache.ResidentBytes = cs.ResidentBytes
	s.stats.Cache.PeakBytes = cs.PeakBytes
}

// prewarm stages the configured working set into the cache ahead of the
// measurement window (no ICAP transfers — images land in DRAM only).
func (s *Service) prewarm() error {
	if !s.eng.cache.Enabled() {
		return nil
	}
	for _, name := range s.cfg.PrewarmASPs {
		asp, err := workload.LibraryASP(name)
		if err != nil {
			return err
		}
		for _, rp := range s.eng.order {
			if _, err := s.eng.acquire(asp, s.eng.rps[rp]); err != nil {
				return err
			}
		}
	}
	return nil
}

// validate checks the stream before any simulated time passes: the
// standard trace invariants against this platform's partitions and the
// ASP library.
func (s *Service) validate(tr workload.Trace) error {
	asps := workload.Library()
	names := make([]string, len(asps))
	for i, a := range asps {
		names[i] = a.Name
	}
	return tr.Validate(s.eng.order, names)
}

// admit runs admission control for one arrival.
func (s *Service) admit(req workload.Request, start sim.Time) {
	at := start.Add(req.At)
	it := &sched.Item{
		Seq:    s.stats.Offered,
		At:     at,
		RP:     req.RP,
		ASP:    req.ASP,
		Tenant: req.Tenant,
	}
	if req.Deadline > 0 {
		it.Deadline = at.Add(req.Deadline)
	}
	s.stats.Offered++
	t := s.tenant(req.Tenant)
	t.Offered++
	if s.queues[req.RP].Offer(it) {
		s.stats.Admitted++
	} else {
		s.stats.Shed++
		t.Shed++
		s.done++
	}
}

// rpCandidates builds the policy view of one free partition's queue.
func (s *Service) rpCandidates(name string, cands []sched.Candidate) []sched.Candidate {
	st := s.eng.rps[name]
	for _, it := range s.queues[name].Items() {
		cands = append(cands, sched.Candidate{
			Item:       it,
			Resident:   st.resident == it.ASP,
			Cached:     s.eng.cache.Contains(it.ASP + "@" + name),
			ImageBytes: st.imageBytes,
		})
	}
	return cands
}

// dispatchOne serves queued work at the current instant. Resident hits
// cost no ICAP time, so every free partition whose policy-chosen next
// request is a hit starts it immediately — they must not wait behind a
// reconfiguration's staging and transfer. Then at most one reconfiguration
// (the policy's pick across all free partitions) occupies the single
// physical ICAP; it advances simulated time synchronously. Reports whether
// anything was dispatched.
func (s *Service) dispatchOne(now sim.Time) (bool, error) {
	served := false
	var cands []sched.Candidate
	// Phase 1: each free partition whose policy-chosen next request is a
	// resident hit starts it (the hit occupies the partition's compute, so
	// at most one per RP per instant).
	for _, name := range s.eng.order {
		st := s.eng.rps[name]
		if st.busyUntil > now || s.queues[name].Len() == 0 {
			continue
		}
		cands = s.rpCandidates(name, cands[:0])
		pick := s.policy.Pick(cands)
		if !cands[pick].Resident {
			continue
		}
		if err := s.serveItem(s.queues[name].Remove(pick), st, now); err != nil {
			return served, err
		}
		served = true
	}
	// Phase 2: one reconfiguration via the global policy pick.
	type slot struct {
		rp string
		qi int
	}
	var slots []slot
	cands = cands[:0]
	for _, name := range s.eng.order {
		if s.eng.rps[name].busyUntil > now {
			continue // partition computing
		}
		base := len(cands)
		cands = s.rpCandidates(name, cands)
		for qi := 0; qi < len(cands)-base; qi++ {
			slots = append(slots, slot{rp: name, qi: qi})
		}
	}
	if len(cands) == 0 {
		return served, nil
	}
	pick := s.policy.Pick(cands)
	it := s.queues[slots[pick].rp].Remove(slots[pick].qi)
	if err := s.serveItem(it, s.eng.rps[slots[pick].rp], now); err != nil {
		return served, err
	}
	return true, nil
}

// serveItem dispatches one admitted request: reconfigure through the
// single ICAP if the ASP is not resident, then start its compute. Compute
// runs concurrently across partitions (a kernel event completes it);
// reconfigurations serialise on the configuration port.
func (s *Service) serveItem(it *sched.Item, st *rpState, now sim.Time) error {
	p := s.eng.ctrl.Platform()
	k := p.Kernel
	asp, err := workload.LibraryASP(it.ASP) // validated at the door
	if err != nil {
		return err
	}
	s.stats.Requests++
	s.stats.QueueWaitUS.Add(now.Sub(it.At).Microseconds())
	dispatch := now

	if st.resident != asp.Name {
		// The single physical ICAP arbitrates reconfigurations: wait out
		// any word-pipe occupancy before starting the next transfer.
		if bu := p.ICAP.BusyUntil(); bu > k.Now() {
			k.RunUntil(bu)
		}
		bs, err := s.eng.acquire(asp, st) // may stage from backing store
		if err != nil {
			return err
		}
		ok, err := s.eng.loadASP(&s.stats.Stats, st, asp, bs)
		if err != nil {
			return err
		}
		if !ok {
			// CRC rejected the image: the request is dropped (visible in
			// Failures and the tenant's Failed), the partition left empty.
			s.tenant(it.Tenant).Failed++
			s.done++
			return nil
		}
	} else {
		s.stats.Hits++
	}

	gen := s.eng.traffic[st.region.Name]
	gen.SetRate(asp.MemBandwidthMBs)
	gen.Start()
	end := k.Now().Add(asp.ComputeTime)
	st.busyUntil = end
	k.At(end, func() {
		gen.Stop()
		st.busyUntil = 0
		s.stats.ComputeTime += asp.ComputeTime
		s.stats.Completed++
		s.done++
		s.stats.ServiceUS.Add(end.Sub(dispatch).Microseconds())
		s.stats.SojournUS.Add(end.Sub(it.At).Microseconds())
		t := s.tenant(it.Tenant)
		t.Completed++
		if it.Deadline > 0 && end > it.Deadline {
			s.stats.DeadlineMisses++
			t.DeadlineMisses++
		}
	})
	return nil
}
