package hll

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/scrub"
	"repro/internal/sim"
	"repro/internal/workload"
)

// ServiceConfig parameterises the reconfiguration service.
type ServiceConfig struct {
	// Policy picks the next dispatch among queued requests on free
	// partitions (nil = FCFS).
	Policy sched.Policy
	// CacheBudgetBytes bounds the DRAM-resident bitstream cache: < 0 is
	// unlimited, 0 disables caching entirely (the no-cache ablation — every
	// reconfiguration re-stages its image from the backing store).
	CacheBudgetBytes int64
	// QueueCap is the per-RP admission-control depth; ≤ 0 is unbounded.
	QueueCap int
	// StageBytesPerSec is the backing-store rate a cache miss pays to stage
	// the image into DRAM (the platform profile's SD-card rate in the
	// scenarios); 0 makes staging free.
	StageBytesPerSec float64
	// PrewarmASPs stages the listed ASPs' images for every partition into
	// the cache before the stream starts — the steady-state residency a
	// long-running deployment has. The staging time is paid before the
	// measurement window opens; a disabled cache ignores it (the no-cache
	// ablation pays full staging on every reconfiguration by design).
	PrewarmASPs []string
	// Repair selects how a raised CRC alarm is cleared before the resident
	// ASP runs again: "scrub" (default) rewrites only the damaged frames
	// through the ICAP, "reload" performs a full partial reconfiguration.
	Repair string
	// UpsetSeed seeds the configuration-memory upset injector RaiseCRCUpset
	// draws from (0 keeps a fixed default stream).
	UpsetSeed uint64
	// SketchQuantiles switches the latency samples (queue wait, service,
	// sojourn) to the memory-bounded sketch backend (sim.Sample.UseSketch)
	// — O(sketch size) memory however long the stream runs, quantiles
	// within the sketch's relative error bound. The default keeps the
	// exact backend and its byte-identical historical output.
	SketchQuantiles bool
}

// TenantStats is one traffic source's view of a service run. Every offered
// request ends in exactly one of Completed, Shed or Failed.
type TenantStats struct {
	Offered, Completed, Shed, Failed, DeadlineMisses int
}

// ServiceStats extends the framework statistics with the open-loop service
// metrics: admission-control outcomes, sojourn tail latency, deadline
// misses, cache behaviour and staging cost.
type ServiceStats struct {
	Stats
	// Offered counts arrivals; Admitted the ones admission control let in;
	// Shed the rejected ones; Completed the ones that finished compute.
	Offered, Admitted, Shed, Completed int
	// DeadlineMisses counts completions past their request deadline.
	DeadlineMisses int
	// SojournUS samples arrival→completion latency in microseconds — the
	// end-to-end latency whose p99 the saturation sweep watches.
	SojournUS sim.Sample
	// Cache summarises the bitstream cache; StageTime is the total
	// simulated time spent staging images from the backing store.
	Cache     sched.CacheStats
	StageTime sim.Duration
	// Lost counts admitted requests dropped by a board crash (queued or
	// in flight when the board went down). Every offered request still ends
	// in exactly one of Completed, Shed, Failed-at-CRC or Lost.
	Lost int
	// CRCAlarms counts raised read-back alarms; Repairs counts alarms
	// cleared by scrub or reload, and RepairTime is the simulated time those
	// repairs cost.
	CRCAlarms, Repairs int
	RepairTime         sim.Duration
	// Tenants breaks the run down per traffic source.
	Tenants map[string]*TenantStats
	// Classes breaks the run down per SLO class (see workload.SLOClass).
	// Unclassed requests are not recorded here, so classless streams keep
	// the map empty.
	Classes map[string]*TenantStats
}

// TenantNames returns the tenants seen, sorted for stable rendering.
func (s *ServiceStats) TenantNames() []string {
	names := make([]string, 0, len(s.Tenants))
	for n := range s.Tenants {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ClassNames returns the SLO classes seen, sorted for stable rendering.
func (s *ServiceStats) ClassNames() []string {
	names := make([]string, 0, len(s.Classes))
	for n := range s.Classes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Service is the Fig.-1 framework run as an open-loop reconfiguration
// service: arrivals are admitted into per-RP queues as simulated time
// passes, resident-hit requests compute concurrently on their partitions,
// and reconfigurations serialise on the single physical ICAP (guarded by
// Port.BusyUntil), ordered by the dispatch policy. At each dispatch
// instant every eligible resident hit starts before the ICAP is occupied;
// requests arriving while a staging or transfer is in flight wait for the
// dispatcher to come back around (the PS runs one dispatch loop).
type Service struct {
	eng    *engine
	cfg    ServiceConfig
	policy sched.Policy
	queues map[string]*sched.Queue

	stats ServiceStats
	done  int
	// queued mirrors the summed per-RP queue depth, maintained at the
	// admission/dispatch/crash sites so Queued (a per-arrival router
	// signal) is O(1) instead of a walk over the queue map.
	queued int

	// crashed marks the board dead: it refuses offers and dispatches
	// nothing until Recover. epoch invalidates in-flight completion events
	// scheduled before a crash — work lost with the board must not complete
	// after it.
	crashed bool
	epoch   int
	// injector plants the configuration-memory upsets RaiseCRCUpset models
	// (built lazily on first use).
	injector *scrub.Injector

	// Session state (Begin/Offer/AdvanceTo/Drain — Serve drives the same
	// primitives): a fleet front-end owns the arrival stream and this board
	// only sees the requests routed to it. start anchors the session's
	// relative timeline; stage0/cache0 snapshot the prewarm so the closed
	// window reports the measurement only; finished marks the window
	// closed, after which the session rejects further driving.
	started  bool
	finished bool
	start    sim.Time
	stage0   sim.Duration
	cache0   sched.CacheStats

	// onComplete, when set, observes every completion: rel is the completion
	// instant relative to the session start, sojourn the arrival→completion
	// latency. The fleet layer uses it for windowed autoscaling metrics.
	onComplete func(rel, sojourn sim.Duration)

	// tr, when set, records this session's spans and events (session-
	// relative sim time). Every emission site is guarded by a nil check so
	// the disabled path costs one branch and zero allocations. tids maps
	// RP name → trace track.
	tr   *obs.BoardTrace
	tids map[string]int32
}

// NewService builds the service on a platform-backed controller.
func NewService(ctrl *core.Controller, cfg ServiceConfig) *Service {
	policy := cfg.Policy
	if policy == nil {
		policy = sched.FCFS()
	}
	s := &Service{
		eng:    newEngine(ctrl, cfg.CacheBudgetBytes, cfg.StageBytesPerSec),
		cfg:    cfg,
		policy: policy,
		queues: make(map[string]*sched.Queue),
	}
	s.stats.Tenants = make(map[string]*TenantStats)
	s.stats.Classes = make(map[string]*TenantStats)
	if cfg.SketchQuantiles {
		s.stats.QueueWaitUS.UseSketch()
		s.stats.ServiceUS.UseSketch()
		s.stats.SojournUS.UseSketch()
	}
	for _, name := range s.eng.order {
		s.queues[name] = sched.NewQueue(cfg.QueueCap)
	}
	return s
}

// Stats returns the accumulated statistics.
func (s *Service) Stats() ServiceStats { return s.stats }

// Policy returns the active dispatch policy.
func (s *Service) Policy() sched.Policy { return s.policy }

// class returns the per-SLO-class accumulator; nil for unclassed requests
// (callers skip the accounting entirely, keeping classless runs untouched).
func (s *Service) class(name string) *TenantStats {
	if name == "" {
		return nil
	}
	c, ok := s.stats.Classes[name]
	if !ok {
		c = &TenantStats{}
		s.stats.Classes[name] = c
	}
	return c
}

// tenant returns the per-tenant accumulator.
func (s *Service) tenant(name string) *TenantStats {
	t, ok := s.stats.Tenants[name]
	if !ok {
		t = &TenantStats{}
		s.stats.Tenants[name] = t
	}
	return t
}

// Serve runs the whole arrival stream to completion and returns the
// accumulated statistics. The trace must be time-ordered and reference
// known RPs and ASPs (validated up front — an open-loop service checks
// requests at the door, not mid-flight).
//
// Serve is a driver over the session primitives (Begin/Offer/AdvanceTo/
// Drain): the fleet front-end drives the very same loop one arrival at a
// time, so the two paths cannot diverge — there is only one dispatch
// implementation.
func (s *Service) Serve(tr workload.Trace) (ServiceStats, error) {
	if s.started {
		return s.stats, fmt.Errorf("hll: service already consumed (one stream per service)")
	}
	if err := s.validate(tr); err != nil {
		return s.stats, fmt.Errorf("hll: service: %w", err)
	}
	if err := s.Begin(); err != nil {
		return s.stats, err
	}
	now := sim.Duration(-1)
	for _, req := range tr {
		if req.At > now {
			now = req.At
			if err := s.AdvanceTo(now); err != nil {
				s.finish(s.start, s.stage0, s.cache0)
				return s.stats, err
			}
		}
		if _, err := s.Offer(req); err != nil {
			s.finish(s.start, s.stage0, s.cache0)
			return s.stats, err
		}
	}
	return s.Drain()
}

// finish closes the measurement window: makespan, and staging/cache deltas
// relative to the pre-stream snapshot. A closed session stays closed.
func (s *Service) finish(start sim.Time, stage0 sim.Duration, cache0 sched.CacheStats) {
	s.finished = true
	k := s.eng.ctrl.Platform().Kernel
	s.stats.Makespan = k.Now().Sub(start)
	s.stats.StageTime += s.eng.stageTime - stage0
	cs := s.eng.cache.Stats()
	s.stats.Cache.Hits += cs.Hits - cache0.Hits
	s.stats.Cache.Misses += cs.Misses - cache0.Misses
	s.stats.Cache.Evictions += cs.Evictions - cache0.Evictions
	s.stats.Cache.ResidentBytes = cs.ResidentBytes
	s.stats.Cache.PeakBytes = cs.PeakBytes
}

// prewarm stages the configured working set into the cache ahead of the
// measurement window (no ICAP transfers — images land in DRAM only).
func (s *Service) prewarm() error {
	if !s.eng.cache.Enabled() {
		return nil
	}
	for _, name := range s.cfg.PrewarmASPs {
		asp, err := workload.LibraryASP(name)
		if err != nil {
			return err
		}
		for _, rp := range s.eng.order {
			if _, err := s.eng.acquire(asp, s.eng.rps[rp]); err != nil {
				return err
			}
		}
	}
	return nil
}

// validate checks the stream before any simulated time passes: the
// standard trace invariants against this platform's partitions and the
// ASP library.
func (s *Service) validate(tr workload.Trace) error {
	asps := workload.Library()
	names := make([]string, len(asps))
	for i, a := range asps {
		names[i] = a.Name
	}
	return tr.Validate(s.eng.order, names)
}

// admit runs admission control for one arrival.
func (s *Service) admit(req workload.Request, start sim.Time) {
	at := start.Add(req.At)
	it := &sched.Item{
		Seq:    s.stats.Offered,
		At:     at,
		RP:     req.RP,
		ASP:    req.ASP,
		Tenant: req.Tenant,
		Class:  req.Class,
	}
	if req.Deadline > 0 {
		it.Deadline = at.Add(req.Deadline)
	}
	s.stats.Offered++
	t := s.tenant(req.Tenant)
	t.Offered++
	c := s.class(req.Class)
	if c != nil {
		c.Offered++
	}
	q := s.queues[req.RP]
	if q.Offer(it) {
		s.stats.Admitted++
		s.queued++
	} else {
		s.stats.Shed++
		t.Shed++
		if c != nil {
			c.Shed++
		}
		s.done++
		if s.tr != nil {
			s.tr.Event(obs.EvShed, obs.TIDLifecycle, int32(it.Seq), req.At,
				fmt.Sprintf("%s %s q=%d/%d", req.RP, req.ASP, q.Len(), q.Cap()))
		}
	}
}

// rpCandidates builds the policy view of one free partition's queue.
func (s *Service) rpCandidates(name string, cands []sched.Candidate) []sched.Candidate {
	st := s.eng.rps[name]
	for _, it := range s.queues[name].Items() {
		cands = append(cands, sched.Candidate{
			Item:       it,
			Resident:   st.resident == it.ASP,
			Cached:     s.eng.cache.Contains(it.ASP + "@" + name),
			ImageBytes: st.imageBytes,
		})
	}
	return cands
}

// dispatchOne serves queued work at the current instant. Resident hits
// cost no ICAP time, so every free partition whose policy-chosen next
// request is a hit starts it immediately — they must not wait behind a
// reconfiguration's staging and transfer. Then at most one reconfiguration
// (the policy's pick across all free partitions) occupies the single
// physical ICAP; it advances simulated time synchronously. Reports whether
// anything was dispatched.
func (s *Service) dispatchOne(now sim.Time) (bool, error) {
	if s.crashed {
		return false, nil // a dead board dispatches nothing
	}
	served := false
	var cands []sched.Candidate
	// Phase 1: each free partition whose policy-chosen next request is a
	// resident hit starts it (the hit occupies the partition's compute, so
	// at most one per RP per instant).
	for _, name := range s.eng.order {
		st := s.eng.rps[name]
		if st.busyUntil > now || s.queues[name].Len() == 0 {
			continue
		}
		cands = s.rpCandidates(name, cands[:0])
		pick := s.policy.Pick(cands)
		if !cands[pick].Resident {
			continue
		}
		it := s.queues[name].Remove(pick)
		s.queued--
		if err := s.serveItem(it, st, now); err != nil {
			return served, err
		}
		served = true
	}
	// Phase 2: one reconfiguration via the global policy pick.
	type slot struct {
		rp string
		qi int
	}
	var slots []slot
	cands = cands[:0]
	for _, name := range s.eng.order {
		if s.eng.rps[name].busyUntil > now {
			continue // partition computing
		}
		base := len(cands)
		cands = s.rpCandidates(name, cands)
		for qi := 0; qi < len(cands)-base; qi++ {
			slots = append(slots, slot{rp: name, qi: qi})
		}
	}
	if len(cands) == 0 {
		return served, nil
	}
	pick := s.policy.Pick(cands)
	it := s.queues[slots[pick].rp].Remove(slots[pick].qi)
	s.queued--
	if err := s.serveItem(it, s.eng.rps[slots[pick].rp], now); err != nil {
		return served, err
	}
	return true, nil
}

// serveItem dispatches one admitted request: reconfigure through the
// single ICAP if the ASP is not resident, then start its compute. Compute
// runs concurrently across partitions (a kernel event completes it);
// reconfigurations serialise on the configuration port.
func (s *Service) serveItem(it *sched.Item, st *rpState, now sim.Time) error {
	p := s.eng.ctrl.Platform()
	k := p.Kernel
	asp, err := workload.LibraryASP(it.ASP) // validated at the door
	if err != nil {
		return err
	}
	s.stats.Requests++
	s.stats.QueueWaitUS.Add(now.Sub(it.At).Microseconds())
	dispatch := now
	if s.tr != nil {
		s.tr.Span(obs.SpanQueue, s.tids[it.RP], int32(it.Seq), s.rel(it.At), now.Sub(it.At), asp.Name)
	}

	if st.resident != asp.Name {
		// The single physical ICAP arbitrates reconfigurations: wait out
		// any word-pipe occupancy before starting the next transfer.
		if bu := p.ICAP.BusyUntil(); bu > k.Now() {
			k.RunUntil(bu)
		}
		if s.tr != nil {
			kind := obs.EvCacheMiss
			if s.eng.cache.Contains(asp.Name + "@" + st.region.Name) {
				kind = obs.EvCacheHit
			}
			s.tr.Event(kind, obs.TIDICAP, int32(it.Seq), s.rel(k.Now()), asp.Name)
		}
		t0 := k.Now()
		bs, err := s.eng.acquire(asp, st) // may stage from backing store
		if err != nil {
			return err
		}
		if s.tr != nil {
			if d := k.Now().Sub(t0); d > 0 {
				s.tr.Span(obs.SpanStage, obs.TIDICAP, int32(it.Seq), s.rel(t0), d, asp.Name)
			}
		}
		x0 := k.Now()
		ok, err := s.eng.loadASP(&s.stats.Stats, st, asp, bs)
		if err != nil {
			return err
		}
		if s.tr != nil {
			s.tr.Span(obs.SpanXfer, obs.TIDICAP, int32(it.Seq), s.rel(x0), k.Now().Sub(x0), asp.Name)
		}
		if !ok {
			// CRC rejected the image: the request is dropped (visible in
			// Failures and the tenant's Failed), the partition left empty.
			if s.tr != nil {
				s.tr.Event(obs.EvCRCFail, obs.TIDICAP, int32(it.Seq), s.rel(k.Now()), asp.Name)
			}
			s.tenant(it.Tenant).Failed++
			if c := s.class(it.Class); c != nil {
				c.Failed++
			}
			s.done++
			return nil
		}
	} else {
		s.stats.Hits++
		if st.alarm {
			// The CRC monitor flagged the resident image; repair before the
			// accelerator runs on corrupted configuration.
			r0 := k.Now()
			if err := s.repair(st, asp); err != nil {
				return err
			}
			if s.tr != nil {
				mode := "scrub"
				if s.cfg.Repair == "reload" {
					mode = "reload"
				}
				s.tr.Span(obs.SpanRepair, obs.TIDICAP, int32(it.Seq), s.rel(r0), k.Now().Sub(r0), mode)
			}
			if st.resident != asp.Name {
				// A reload repair failed verification: dropped like any
				// CRC-failed load, the partition left empty.
				s.tenant(it.Tenant).Failed++
				if c := s.class(it.Class); c != nil {
					c.Failed++
				}
				s.done++
				return nil
			}
		}
	}

	gen := s.eng.traffic[st.region.Name]
	gen.SetRate(asp.MemBandwidthMBs)
	gen.Start()
	end := k.Now().Add(asp.ComputeTime)
	st.busyUntil = end
	st.inflight = it
	epoch := s.epoch
	k.At(end, func() {
		if epoch != s.epoch {
			return // the board crashed under this work; Crash accounted it
		}
		gen.Stop()
		st.busyUntil = 0
		st.inflight = nil
		s.stats.ComputeTime += asp.ComputeTime
		s.stats.Completed++
		s.done++
		s.stats.ServiceUS.Add(end.Sub(dispatch).Microseconds())
		s.stats.SojournUS.Add(end.Sub(it.At).Microseconds())
		t := s.tenant(it.Tenant)
		t.Completed++
		c := s.class(it.Class)
		if c != nil {
			c.Completed++
		}
		if s.tr != nil {
			s.tr.Span(obs.SpanCompute, s.tids[st.region.Name], int32(it.Seq),
				end.Sub(s.start)-asp.ComputeTime, asp.ComputeTime, asp.Name)
		}
		if it.Deadline > 0 && end > it.Deadline {
			s.stats.DeadlineMisses++
			t.DeadlineMisses++
			if c != nil {
				c.DeadlineMisses++
			}
			if s.tr != nil {
				s.tr.Event(obs.EvDeadlineMiss, s.tids[st.region.Name], int32(it.Seq),
					end.Sub(s.start), asp.Name)
			}
		}
		if s.onComplete != nil {
			s.onComplete(end.Sub(s.start), end.Sub(it.At))
		}
	})
	return nil
}

// repair clears a raised CRC alarm on the partition: "reload" pays a full
// partial reconfiguration of the resident image, "scrub" (the default)
// read-back-scans the region and rewrites only the damaged frames through
// the shared ICAP. Repair time is accounted separately from reconfiguration
// time so the ablation stays visible in the service statistics.
func (s *Service) repair(st *rpState, asp workload.ASP) error {
	p := s.eng.ctrl.Platform()
	k := p.Kernel
	t0 := k.Now()
	if s.cfg.Repair == "reload" {
		bs, err := s.eng.acquire(asp, st)
		if err != nil {
			return err
		}
		if _, err := s.eng.loadASP(&s.stats.Stats, st, asp, bs); err != nil {
			return err
		}
	} else {
		if bu := p.ICAP.BusyUntil(); bu > k.Now() {
			k.RunUntil(bu)
		}
		golden := asp.Frames(p.Device, st.region)
		var (
			rep  scrub.Report
			rerr error
			fin  bool
			err  error
		)
		sc := scrub.New(k, p.ICAP)
		deliver := func(r scrub.Report, err error) {
			rep, rerr, fin = r, err, true
		}
		// The monitor's frame addressing makes the repair targeted: only the
		// suspect frames are read, rewritten, and verified. Without it (a
		// hand-raised alarm) the scrubber sweeps the whole region.
		if len(st.suspect) > 0 {
			err = sc.ScrubFrames(st.region, golden, st.suspect, deliver)
		} else {
			err = sc.Scrub(st.region, golden, deliver)
		}
		if err != nil {
			return err
		}
		for !fin {
			if !k.Step() {
				return fmt.Errorf("hll: service: scrub of %s never completed", st.region.Name)
			}
		}
		if rerr != nil {
			return rerr
		}
		if !rep.Clean {
			return fmt.Errorf("hll: service: scrub left %s dirty", st.region.Name)
		}
		st.alarm = false
		st.suspect = nil
	}
	s.stats.Repairs++
	s.stats.RepairTime += k.Now().Sub(t0)
	return nil
}

// --- externally driven session (the fleet front-end's view) ---
//
// A fleet router owns the arrival stream: it advances every board to each
// arrival instant, inspects board state, and offers the request to exactly
// one board. The primitives below expose the Serve loop's phases for that
// driver. The dispatch semantics match Serve: work admitted at or before an
// instant is dispatched when the board next advances past it, and a session
// closes its measurement window exactly as Serve does.

// SetOnComplete installs a completion observer (see the field docs). It
// must be set before Begin or Serve.
func (s *Service) SetOnComplete(fn func(rel, sojourn sim.Duration)) { s.onComplete = fn }

// SetTracer installs the buffer this session's spans and events are
// recorded into (see internal/obs). It must be set before Begin or
// Serve; nil (or no call) keeps tracing disabled at zero cost. Record
// times are session-relative, anchored at Begin — prewarm staging runs
// before the anchor and is deliberately never traced.
func (s *Service) SetTracer(tr *obs.BoardTrace) {
	s.tr = tr
	if tr != nil && s.tids == nil {
		s.tids = make(map[string]int32, len(s.eng.order))
		for i, name := range s.eng.order {
			s.tids[name] = obs.TIDRPBase + int32(i)
		}
	}
}

// rel converts an absolute kernel instant to session-relative time.
func (s *Service) rel(t sim.Time) sim.Duration { return t.Sub(s.start) }

// RPNames lists this board's partitions in platform order.
func (s *Service) RPNames() []string { return append([]string(nil), s.eng.order...) }

// Outstanding reports the offered-but-unfinished request count (queued or
// computing; shed requests are finished on arrival) — the
// join-shortest-queue signal a fleet router balances on.
func (s *Service) Outstanding() int { return s.stats.Offered - s.done }

// Queued reports the total number of requests waiting in the per-RP queues
// (O(1): maintained at the admission, dispatch and crash sites — a fleet
// router reads this per board per arrival).
func (s *Service) Queued() int { return s.queued }

// Done reports the requests that reached a terminal state (completed, shed,
// CRC-failed or lost) — the progress counter a fleet health check watches.
func (s *Service) Done() int { return s.done }

// CacheResidency reports the live bitstream-cache occupancy (resident
// images and bytes) — the residency gauges the metrics layer samples.
func (s *Service) CacheResidency() (images int, bytes int64) {
	return s.eng.cache.Len(), s.eng.cache.Stats().ResidentBytes
}

// Crashed reports whether the board is down (refusing offers).
func (s *Service) Crashed() bool { return s.crashed }

// Crash takes the board down mid-session: every queued and in-flight
// request is lost (counted in Lost and the owning tenant's Failed), pending
// completion events are invalidated, the partitions forget their resident
// ASPs and the DRAM bitstream cache is wiped — warm state dies with the
// board. Until Recover, the service refuses offers and dispatches nothing;
// its kernel still advances (time passes at a dead board too).
func (s *Service) Crash() {
	if !s.started || s.finished || s.crashed {
		return
	}
	s.crashed = true
	s.epoch++ // orphan every scheduled completion
	if s.tr != nil {
		s.tr.Event(obs.EvCrash, obs.TIDLifecycle, -1,
			s.rel(s.eng.ctrl.Platform().Kernel.Now()), "")
	}
	for _, name := range s.eng.order {
		st := s.eng.rps[name]
		if st.inflight != nil {
			s.eng.traffic[name].Stop()
			s.tenant(st.inflight.Tenant).Failed++
			if c := s.class(st.inflight.Class); c != nil {
				c.Failed++
			}
			s.stats.Lost++
			s.done++
			st.inflight = nil
		}
		st.busyUntil = 0
		st.resident = ""
		st.alarm = false
		st.suspect = nil
		q := s.queues[name]
		for q.Len() > 0 {
			it := q.Remove(0)
			s.queued--
			s.tenant(it.Tenant).Failed++
			if c := s.class(it.Class); c != nil {
				c.Failed++
			}
			s.stats.Lost++
			s.done++
		}
	}
	s.eng.cache.Clear()
}

// Recover brings a crashed board back: empty partitions, cold cache — the
// reboot state. The session stays open; the board resumes serving whatever
// the front-end routes to it next.
func (s *Service) Recover() {
	if s.tr != nil && s.crashed && s.started && !s.finished {
		s.tr.Event(obs.EvRecover, obs.TIDLifecycle, -1,
			s.rel(s.eng.ctrl.Platform().Kernel.Now()), "")
	}
	s.crashed = false
}

// RaiseCRCUpset models configuration-memory corruption on a live board: it
// flips bits in n distinct frames of the first partition with a resident
// ASP and raises that partition's CRC alarm (the read-back monitor's error
// interrupt). The service repairs — scrub or reload per the configuration —
// before the resident ASP is dispatched again. Returns false when no
// partition holds an image (nothing configured, nothing to corrupt).
func (s *Service) RaiseCRCUpset(n int) (bool, error) {
	if s.crashed {
		return false, nil
	}
	for _, name := range s.eng.order {
		st := s.eng.rps[name]
		if st.resident == "" {
			continue
		}
		if s.injector == nil {
			s.injector = scrub.NewInjector(s.eng.ctrl.Platform().Memory, s.cfg.UpsetSeed)
		}
		hit, err := s.injector.UpsetRegion(st.region, n)
		if err != nil {
			return false, fmt.Errorf("hll: service: %w", err)
		}
		// The read-back monitor localises each error to a frame address (the
		// SEM flow); the repair path uses it for a targeted scrub.
		st.suspect = append(st.suspect, hit...)
		st.alarm = true
		s.stats.CRCAlarms++
		if s.tr != nil && s.started && !s.finished {
			s.tr.Event(obs.EvCRCAlarm, s.tids[name], -1,
				s.rel(s.eng.ctrl.Platform().Kernel.Now()), name)
		}
		return true, nil
	}
	return false, nil
}

// Begin opens an externally driven session: prewarm the cache, snapshot the
// staging/cache counters and anchor the relative timeline at the board's
// current instant. A service serves exactly one stream — Begin rejects a
// service already consumed by Serve or an earlier session.
func (s *Service) Begin() error {
	if s.started {
		return fmt.Errorf("hll: service already consumed (one stream per service)")
	}
	if err := s.prewarm(); err != nil {
		return fmt.Errorf("hll: service: prewarm: %w", err)
	}
	s.started = true
	s.start = s.eng.ctrl.Platform().Kernel.Now()
	s.stage0 = s.eng.stageTime
	s.cache0 = s.eng.cache.Stats()
	s.done = 0
	return nil
}

// Offer admits one routed request at time start+req.At, running the same
// admission control Serve applies, and reports whether the request was
// admitted (false = shed). The request must reference one of this board's
// RPs and a known ASP — the fleet validates the stream at its own door, so
// a violation here is a routing bug, not load.
func (s *Service) Offer(req workload.Request) (bool, error) {
	if !s.started || s.finished {
		return false, fmt.Errorf("hll: service: Offer outside an open session")
	}
	if s.crashed {
		// Connection refused: the request never reaches admission control,
		// so it is not an Offered/Shed outcome — the fleet front-end
		// classifies the refusal (and fails over) via Crashed.
		return false, nil
	}
	if _, ok := s.queues[req.RP]; !ok {
		return false, fmt.Errorf("hll: service: unknown RP %q routed to this board", req.RP)
	}
	if _, err := workload.LibraryASP(req.ASP); err != nil {
		return false, fmt.Errorf("hll: service: %w", err)
	}
	shed0 := s.stats.Shed
	s.admit(req, s.start)
	return s.stats.Shed == shed0, nil
}

// AdvanceTo drives the board's simulation to start+rel, dispatching queued
// work on the way exactly as Serve's loop does. Dispatches at the target
// instant itself are deferred to the next call, so arrivals offered at rel
// join the candidate set before anything is picked at that instant — the
// same order Serve establishes by admitting arrivals before dispatching. A
// synchronous reconfiguration may overrun the target (as in Serve, where
// arrivals during a transfer wait for the dispatcher); later calls with an
// already-passed target are no-ops.
func (s *Service) AdvanceTo(rel sim.Duration) error {
	if !s.started || s.finished {
		return fmt.Errorf("hll: service: AdvanceTo outside an open session")
	}
	k := s.eng.ctrl.Platform().Kernel
	target := s.start.Add(rel)
	for {
		now := k.Now()
		if now >= target {
			return nil
		}
		served, err := s.dispatchOne(now)
		if err != nil {
			return fmt.Errorf("hll: service: %w", err)
		}
		if served {
			continue
		}
		wake := target
		for _, name := range s.eng.order {
			if bu := s.eng.rps[name].busyUntil; bu > now && bu < wake {
				wake = bu
			}
		}
		k.RunUntil(wake)
	}
}

// SkipTo is AdvanceTo's idle fast path for the fleet's epoch loop: with
// nothing queued, dispatchOne is a pure no-op (phase 1 skips empty queues,
// phase 2 has no candidates, and nothing can enqueue mid-advance), so
// AdvanceTo's dispatch loop collapses to a single RunUntil(target). The
// kernel still fires every event on the way — meter samples, thermal steps,
// in-flight completions — exactly as AdvanceTo would; what SkipTo skips is
// the per-wake dispatch scaffolding (candidate scans, busy-slot walks), not
// simulated work. It returns true when it advanced the board (caller skips
// AdvanceTo), false when queued work needs the real loop. The clock must
// move on a skip — deferring it would leave later dispatches running at a
// stale now and change the output.
func (s *Service) SkipTo(rel sim.Duration) bool {
	if !s.started || s.finished {
		return false // let AdvanceTo surface the session error
	}
	if s.queued > 0 {
		return false
	}
	k := s.eng.ctrl.Platform().Kernel
	if target := s.start.Add(rel); k.Now() < target {
		k.RunUntil(target)
	}
	return true
}

// Drain serves everything still outstanding, closes the measurement window
// and returns the session's statistics.
func (s *Service) Drain() (ServiceStats, error) {
	if !s.started || s.finished {
		return s.stats, fmt.Errorf("hll: service: Drain outside an open session")
	}
	k := s.eng.ctrl.Platform().Kernel
	for s.done < s.stats.Offered {
		now := k.Now()
		served, err := s.dispatchOne(now)
		if err != nil {
			s.finish(s.start, s.stage0, s.cache0)
			return s.stats, fmt.Errorf("hll: service: %w", err)
		}
		if served {
			continue
		}
		wake := sim.Never
		for _, name := range s.eng.order {
			if bu := s.eng.rps[name].busyUntil; bu > now && bu < wake {
				wake = bu
			}
		}
		if wake == sim.Never {
			s.finish(s.start, s.stage0, s.cache0)
			return s.stats, fmt.Errorf("hll: service stalled with %d/%d requests outstanding",
				s.stats.Offered-s.done, s.stats.Offered)
		}
		k.RunUntil(wake)
	}
	s.finish(s.start, s.stage0, s.cache0)
	return s.stats, nil
}
