package hll

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/zynq"
)

func newFramework(t *testing.T) (*Framework, *core.Controller) {
	t.Helper()
	p, err := zynq.NewPlatform(zynq.Options{Seed: 9, FastThermal: true})
	if err != nil {
		t.Fatal(err)
	}
	p.ConfigureStatic()
	c := core.New(p)
	if _, err := c.SetFrequencyMHz(200); err != nil {
		t.Fatal(err)
	}
	return New(c), c
}

func TestServeLoadsAndRuns(t *testing.T) {
	f, _ := newFramework(t)
	tr := workload.Trace{
		{At: 0, RP: "RP1", ASP: "fir128"},
		{At: 0, RP: "RP1", ASP: "fir128"}, // resident: no reconfig
		{At: 0, RP: "RP1", ASP: "sha3"},   // swap
	}
	stats, err := f.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Requests != 3 {
		t.Errorf("requests = %d", stats.Requests)
	}
	if stats.Reconfigs != 2 {
		t.Errorf("reconfigs = %d, want 2", stats.Reconfigs)
	}
	if stats.Hits != 1 {
		t.Errorf("hits = %d, want 1", stats.Hits)
	}
	if stats.Failures != 0 {
		t.Errorf("failures = %d", stats.Failures)
	}
	res, err := f.Resident("RP1")
	if err != nil || res != "sha3" {
		t.Errorf("resident = %q %v", res, err)
	}
}

func TestPerRPClocksFollowASPs(t *testing.T) {
	f, c := newFramework(t)
	tr := workload.Trace{
		{At: 0, RP: "RP1", ASP: "aes-gcm"}, // 200 MHz ASP clock
		{At: 0, RP: "RP2", ASP: "matmul8"}, // 100 MHz ASP clock
	}
	if _, err := f.Run(tr); err != nil {
		t.Fatal(err)
	}
	cm := c.Platform().ClockManager
	got1 := f.eng.rps["RP1"].clock
	got2 := f.eng.rps["RP2"].clock
	if cm.Domain(got1).Freq() != 200*sim.MHz {
		t.Errorf("RP1 clock = %v", cm.Domain(got1).Freq())
	}
	if cm.Domain(got2).Freq() != 100*sim.MHz {
		t.Errorf("RP2 clock = %v", cm.Domain(got2).Freq())
	}
}

func TestOverheadFractionDropsWithOverclock(t *testing.T) {
	// The paper's motivation quantified: the same swap-heavy trace costs a
	// smaller fraction of wall time in reconfiguration at 200 MHz than at
	// the nominal 100 MHz.
	run := func(freq float64) float64 {
		p, err := zynq.NewPlatform(zynq.Options{Seed: 9, FastThermal: true})
		if err != nil {
			t.Fatal(err)
		}
		p.ConfigureStatic()
		c := core.New(p)
		if _, err := c.SetFrequencyMHz(freq); err != nil {
			t.Fatal(err)
		}
		f := New(c)
		tr := workload.RoundRobinTrace(12, 100*sim.Microsecond,
			[]string{"RP1", "RP2"}, []string{"fir128", "sha3", "aes-gcm"})
		stats, err := f.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Reconfigs == 0 {
			t.Fatal("trace produced no reconfigs")
		}
		return stats.OverheadFraction()
	}
	f100 := run(100)
	f200 := run(200)
	if f200 >= f100 {
		t.Errorf("overclocking should cut overhead: %v @200 vs %v @100", f200, f100)
	}
	if f100 < 0.5 {
		t.Errorf("swap-heavy trace at 100 MHz should be reconfig-dominated (got %v)", f100)
	}
}

func TestRunHonoursRequestTimes(t *testing.T) {
	f, c := newFramework(t)
	gap := 10 * sim.Millisecond
	tr := workload.Trace{
		{At: gap, RP: "RP1", ASP: "fir128"},
		{At: 2 * gap, RP: "RP1", ASP: "fir128"},
	}
	start := c.Platform().Kernel.Now()
	stats, err := f.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := c.Platform().Kernel.Now().Sub(start)
	if elapsed < 2*gap {
		t.Errorf("makespan %v shorter than trace span", elapsed)
	}
	if stats.Makespan != elapsed {
		t.Errorf("Makespan = %v, want %v", stats.Makespan, elapsed)
	}
}

func TestUnknownNamesFail(t *testing.T) {
	f, _ := newFramework(t)
	if _, err := f.Run(workload.Trace{{RP: "RP9", ASP: "fir128"}}); err == nil {
		t.Error("unknown RP must fail")
	}
	if _, err := f.Run(workload.Trace{{RP: "RP1", ASP: "ghost"}}); err == nil {
		t.Error("unknown ASP must fail")
	}
	if _, err := f.Resident("RP9"); err == nil {
		t.Error("unknown RP resident lookup must fail")
	}
}

func TestBitstreamCacheReused(t *testing.T) {
	f, _ := newFramework(t)
	tr := workload.Trace{
		{At: 0, RP: "RP1", ASP: "fir128"},
		{At: 0, RP: "RP1", ASP: "sha3"},
		{At: 0, RP: "RP1", ASP: "fir128"},
		{At: 0, RP: "RP1", ASP: "sha3"},
	}
	if _, err := f.Run(tr); err != nil {
		t.Fatal(err)
	}
	cs := f.eng.cache.Stats()
	if cs.Misses != 2 {
		t.Errorf("cache misses = %d, want 2 (one build per distinct image)", cs.Misses)
	}
	if cs.Hits != 2 {
		t.Errorf("cache hits = %d, want 2 (repeat loads reuse the image)", cs.Hits)
	}
}

func TestRunReturnsPartialStatsOnMidTraceFailure(t *testing.T) {
	f, _ := newFramework(t)
	tr := workload.Trace{
		{At: 0, RP: "RP1", ASP: "fir128"},
		{At: 100 * sim.Microsecond, RP: "RP2", ASP: "ghost"}, // fails mid-trace
		{At: 200 * sim.Microsecond, RP: "RP1", ASP: "sha3"},
	}
	stats, err := f.Run(tr)
	if err == nil {
		t.Fatal("mid-trace failure must surface an error")
	}
	if !strings.Contains(err.Error(), "request 1") || !strings.Contains(err.Error(), "ghost") {
		t.Errorf("error should locate the failing request: %v", err)
	}
	// Progress before the failure survives: the first request was served,
	// and the makespan covers the partial run instead of being discarded.
	if stats.Requests != 1 || stats.Reconfigs != 1 {
		t.Errorf("partial stats lost: requests=%d reconfigs=%d, want 1/1", stats.Requests, stats.Reconfigs)
	}
	if stats.Makespan <= 0 {
		t.Errorf("partial Makespan = %v, want > 0", stats.Makespan)
	}
	if stats.ReconfigTime <= 0 {
		t.Errorf("partial ReconfigTime = %v, want > 0", stats.ReconfigTime)
	}
}

func TestRunRecordsWaitAndServiceSamples(t *testing.T) {
	f, _ := newFramework(t)
	// Two same-RP requests at time 0: the second queues behind the first's
	// reconfiguration + compute, so its wait must be positive.
	tr := workload.Trace{
		{At: 0, RP: "RP1", ASP: "fir128"},
		{At: 0, RP: "RP1", ASP: "sha3"},
	}
	stats, err := f.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if stats.QueueWaitUS.N() != 2 || stats.ServiceUS.N() != 2 {
		t.Fatalf("sample counts = %d/%d, want 2/2", stats.QueueWaitUS.N(), stats.ServiceUS.N())
	}
	if stats.QueueWaitUS.Max() <= 0 {
		t.Error("second request should have waited behind the first")
	}
	if stats.ServiceUS.Min() <= 0 {
		t.Error("service time must be positive")
	}
	if p99 := stats.ServiceUS.Percentile(99); p99 < stats.ServiceUS.Percentile(50) {
		t.Errorf("p99 %v below p50 %v", p99, stats.ServiceUS.Percentile(50))
	}
}
