package pdr

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Re-exported fleet types.
type (
	// FleetStats is the merged outcome of a fleet run: per-board break-down,
	// aggregate service statistics and the autoscaler trajectory.
	FleetStats = cluster.FleetStats
	// BoardStats is one board's view of a fleet run.
	BoardStats = cluster.BoardStats
	// ScaleEvent is one autoscaler decision.
	ScaleEvent = cluster.ScaleEvent
	// AutoscalePolicy bounds, thresholds and decision rule for the
	// autoscaler (reactive thresholds or the predictive forecast).
	AutoscalePolicy = cluster.AutoscalerConfig
	// ScalerPolicy names an autoscaler decision rule (see ScalerReactive,
	// ScalerPredictive).
	ScalerPolicy = cluster.ScalerPolicy
	// WindowStat is one decided window of the scaler's trajectory
	// (offered/shed counts, observed and forecast rates, active boards).
	WindowStat = cluster.WindowStat
	// ChaosPolicy attaches a fault schedule and the fleet's self-healing
	// machinery (health probes, failover, outlier ejection, hedging) to a
	// run. Nil keeps the historical fault-free semantics bit for bit.
	ChaosPolicy = cluster.ChaosConfig
	// FaultStorm shapes a seeded fault storm; its Schedule method draws the
	// deterministic event list a ChaosPolicy replays.
	FaultStorm = chaos.Config
	// FaultEvent is one scheduled fault (crash, recovery, thermal excursion,
	// CRC glitch).
	FaultEvent = chaos.Event
)

// The autoscaler decision rules an AutoscalePolicy selects between.
const (
	// ScalerReactive steps the active set by one board on the decided
	// window's own shed/p99 signals (the "" default).
	ScalerReactive = cluster.ScalerReactive
	// ScalerPredictive forecasts the next window's arrival rate (Holt
	// smoothing over the observed windows) and retargets to the board
	// count that rate needs, pre-provisioning ahead of building load.
	ScalerPredictive = cluster.ScalerPredictive
)

// ScalerPolicies lists the recognised autoscaler policy names.
func ScalerPolicies() []string { return cluster.ScalerPolicies() }

// Routers lists the fleet routing policies Serve accepts, in presentation
// order: round-robin, least-outstanding (join-shortest-queue), weighted
// (by platform capacity) and affinity (consistent hashing on the requested
// bitstream image, so the same image keeps hitting the same board's cache).
func Routers() []string { return cluster.RouterNames() }

// FleetOptions configures NewFleet. The zero value is a usable two-board
// ZedBoard fleet with round-robin routing.
type FleetOptions struct {
	// Boards lists the platform profile of each board in index order
	// (see Platforms; "" entries mean the default zedboard). Empty means
	// two zedboards.
	Boards []string
	// Seed fixes the fleet's deterministic seed (default 1); each board's
	// RNG stream derives from it and the board index.
	Seed uint64
	// FreqMHz is the ICAP over-clock applied to every board (default 200,
	// the paper's recommended operating point; < 0 keeps the nominal 100).
	FreqMHz float64
	// Router is the routing policy name ("" = round-robin; see Routers).
	Router string
	// Policy is the per-board dispatch policy name ("" = fcfs; see
	// Policies).
	Policy string
	// CacheBudgetBytes bounds each board's DRAM bitstream cache with the
	// System.Serve semantics: 0 uses the board profile's derived budget,
	// < 0 disables the cache entirely.
	CacheBudgetBytes int64
	// QueueCap is the per-RP admission-control depth (0 = 32).
	QueueCap int
	// Prewarm stages the listed ASPs into every board's cache before each
	// stream (steady-state residency).
	Prewarm []string
	// Autoscale, when non-nil, starts each run at Min active boards and
	// reacts to windowed shed-rate and p99 signals. Nil keeps the whole
	// fleet active.
	Autoscale *AutoscalePolicy
	// Chaos, when non-nil, replays a fault schedule against each run and
	// turns on the self-healing machinery. Build the schedule with a
	// FaultStorm (seeded, deterministic) or hand-write the events.
	Chaos *ChaosPolicy
	// Repair selects how a board clears a CRC read-back alarm: "scrub"
	// (default, frame-addressed rewrite) or "reload" (full partial
	// reconfiguration).
	Repair string
	// Workers bounds the goroutines the fleet's per-epoch board advance
	// (and final drain) fans out over: 0 or 1 runs the historical
	// sequential loop, < 0 means one worker per available CPU. Purely a
	// wall-clock knob — Serve's output is byte-identical at every setting.
	Workers int
	// SketchQuantiles switches every board's latency samples to the
	// memory-bounded sketch backend: O(sketch size) memory however long
	// the horizon, at the cost of quantiles becoming estimates within the
	// sketch's ~1.6 % relative error bound (moments and min/max stay
	// exact). Default false keeps the exact backend bit for bit.
	SketchQuantiles bool
	// Tracer, when non-nil, records each Serve call's request spans,
	// control-plane events and sim-time metrics under the key
	// "fleet/NN" (NN = the fleet's Serve ordinal). Tracing never
	// perturbs a run — FleetStats stay byte-identical with or without
	// it — and the tracer's exports are byte-identical at every
	// Workers setting. Nil (the default) costs nothing.
	Tracer *Tracer
}

// Fleet is the multi-board counterpart of System: N simulated boards
// behind a request router. Serve is System.Serve one level up — the same
// Trace in, service statistics out — with each call serving on freshly
// booted boards, so a Fleet value is reusable and every run is a pure
// function of (options, trace).
type Fleet struct {
	opts   FleetOptions
	common []string // the boards' shared RP set, computed at NewFleet
	serves int32    // Serve ordinal, keys the tracer's per-run fleets
}

// NewFleet validates the options and returns a fleet handle. Board
// construction happens per Serve call (fresh boards per run, exactly like
// System.Serve's fresh service); validation — platforms, the RP-plan
// intersection, router, dispatch policy, autoscaler bounds — happens here
// without booting anything, so a misconfigured fleet fails fast.
func NewFleet(o FleetOptions) (*Fleet, error) {
	f := &Fleet{opts: o}
	specs := f.specs()
	common, err := cluster.CommonRPs(specs)
	if err != nil {
		return nil, fmt.Errorf("pdr: %w", err)
	}
	f.common = common
	if o.Router != "" {
		if _, err := cluster.RouterByName(o.Router); err != nil {
			return nil, fmt.Errorf("pdr: %w", err)
		}
	}
	if o.Policy != "" {
		if _, err := sched.PolicyByName(o.Policy); err != nil {
			return nil, fmt.Errorf("pdr: %w", err)
		}
	}
	if o.Autoscale != nil {
		if err := o.Autoscale.Validate(len(specs)); err != nil {
			return nil, fmt.Errorf("pdr: %w", err)
		}
	}
	if o.Chaos != nil {
		if err := o.Chaos.Validate(len(specs)); err != nil {
			return nil, fmt.Errorf("pdr: %w", err)
		}
	}
	return f, nil
}

// specs resolves the board list (the zero value means two zedboards).
func (f *Fleet) specs() []cluster.BoardSpec {
	boards := f.opts.Boards
	if len(boards) == 0 {
		boards = []string{"", ""}
	}
	specs := make([]cluster.BoardSpec, len(boards))
	for i, p := range boards {
		specs[i] = cluster.BoardSpec{Platform: p}
	}
	return specs
}

// build assembles a fresh cluster fleet from the options.
func (f *Fleet) build(ft *obs.FleetTrace) (*cluster.Fleet, error) {
	o := f.opts
	specs := f.specs()
	seed := o.Seed
	if seed == 0 {
		seed = 1
	}
	freq := o.FreqMHz
	switch {
	case freq == 0:
		freq = 200
	case freq < 0:
		freq = 0
	}
	var router cluster.Router
	if o.Router != "" {
		var err error
		if router, err = cluster.RouterByName(o.Router); err != nil {
			return nil, fmt.Errorf("pdr: %w", err)
		}
	}
	workers := o.Workers
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	budget := o.CacheBudgetBytes // cluster shares the System.Serve semantics
	cf, err := cluster.New(cluster.FleetConfig{
		Boards:     specs,
		Seed:       seed,
		FreqMHz:    freq,
		Router:     router,
		Autoscaler: o.Autoscale,
		Chaos:      o.Chaos,
		Workers:    workers,
		Trace:      ft,
		Service: cluster.ServiceTemplate{
			Policy:           o.Policy,
			CacheBudgetBytes: budget,
			QueueCap:         o.QueueCap,
			Prewarm:          o.Prewarm,
			Repair:           o.Repair,
			SketchQuantiles:  o.SketchQuantiles,
		},
	})
	if err != nil {
		return nil, fmt.Errorf("pdr: %w", err)
	}
	return cf, nil
}

// Size returns the fleet's board count.
func (f *Fleet) Size() int { return len(f.specs()) }

// RPNames lists the partitions every fleet board serves — the servable RP
// set a fleet trace must stay within (mixed fleets intersect their boards'
// RP plans).
func (f *Fleet) RPNames() []string { return append([]string(nil), f.common...) }

// OpenTrace generates an open-loop arrival stream over the fleet's common
// RPs from the spec — the fleet counterpart of System.OpenTrace.
func (f *Fleet) OpenTrace(spec ArrivalSpec, seed uint64, n int, asps []string) (Trace, error) {
	return spec.Generate(seed, n, f.RPNames(), asps)
}

// OpenTraceUntil generates an open-loop arrival stream covering the time
// horizon instead of a fixed request count — the natural form when the
// spec carries a RateCurve whose shape (not a count) defines the run.
func (f *Fleet) OpenTraceUntil(spec ArrivalSpec, seed uint64, horizon sim.Duration, asps []string) (Trace, error) {
	return spec.GenerateUntil(seed, horizon, f.RPNames(), asps)
}

// Serve routes an open-loop request stream across freshly booted boards:
// the router assigns each arrival to a board before it enters that board's
// per-RP queues, boards serve independently (each with its own queues,
// dispatch policy and bitstream cache), and the merged statistics come
// back. Repeated calls with the same trace produce byte-identical results.
func (f *Fleet) Serve(tr Trace) (*FleetStats, error) {
	var ft *obs.FleetTrace
	if f.opts.Tracer != nil {
		router := f.opts.Router
		if router == "" {
			router = "round-robin"
		}
		n := atomic.AddInt32(&f.serves, 1) - 1
		ft = f.opts.Tracer.Fleet(fmt.Sprintf("fleet/%02d", n),
			fmt.Sprintf("%d boards, %s", f.Size(), router))
	}
	cf, err := f.build(ft)
	if err != nil {
		return nil, err
	}
	st, err := cf.Serve(tr)
	if err != nil {
		return nil, fmt.Errorf("pdr: %w", err)
	}
	return st, nil
}
