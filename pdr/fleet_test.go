package pdr_test

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/pdr"
)

var fleetASPs = []string{"fir128", "sha3", "aes-gcm", "fft1k"}

func TestFleetServeEndToEnd(t *testing.T) {
	f, err := pdr.NewFleet(pdr.FleetOptions{
		Boards:  []string{"zedboard", "zedboard", "zedboard"},
		Seed:    42,
		Router:  "least-outstanding",
		Prewarm: fleetASPs,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := f.OpenTrace(pdr.ArrivalSpec{
		RatePerSec: 900,
		Tenants:    []string{"video", "crypto"},
		Deadline:   20 * sim.Millisecond,
	}, 7, 96, fleetASPs)
	if err != nil {
		t.Fatal(err)
	}
	st, err := f.Serve(tr)
	if err != nil {
		t.Fatal(err)
	}
	if st.Aggregate.Offered != 96 {
		t.Errorf("offered = %d, want 96", st.Aggregate.Offered)
	}
	if got := st.Aggregate.Completed + st.Aggregate.Shed + st.Aggregate.Failures; got != 96 {
		t.Errorf("accounted = %d, want 96", got)
	}
	if len(st.Boards) != 3 {
		t.Errorf("boards = %d, want 3", len(st.Boards))
	}
	// Tenant accounting merges across boards.
	total := 0
	for _, name := range st.Aggregate.TenantNames() {
		total += st.Aggregate.Tenants[name].Offered
	}
	if total != 96 {
		t.Errorf("tenant offered sum = %d, want 96", total)
	}
	// A Fleet is reusable: each Serve runs on fresh boards, so a repeat is
	// byte-identical.
	st2, err := f.Serve(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st, st2) {
		t.Error("repeated Fleet.Serve diverged — runs must be pure functions of (options, trace)")
	}
}

func TestFleetDefaultsAndMixedRPs(t *testing.T) {
	f, err := pdr.NewFleet(pdr.FleetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 2 {
		t.Errorf("default fleet size = %d, want 2", f.Size())
	}
	if got := f.RPNames(); len(got) != 4 {
		t.Errorf("default (zedboard) fleet RPs = %v, want 4 partitions", got)
	}
	mixed, err := pdr.NewFleet(pdr.FleetOptions{Boards: []string{"zc706", "zybo-z7-10"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := mixed.RPNames(); len(got) != 3 {
		t.Errorf("mixed fleet common RPs = %v, want the 3-partition intersection", got)
	}
}

func TestFleetAutoscaleOption(t *testing.T) {
	f, err := pdr.NewFleet(pdr.FleetOptions{
		Boards: []string{"", "", "", ""},
		Seed:   42,
		Router: "least-outstanding",
		Autoscale: &pdr.AutoscalePolicy{
			Window:  20 * sim.Millisecond,
			Min:     1,
			Max:     4,
			ShedHi:  0.01,
			P99HiUS: 10_000,
		},
		Prewarm: fleetASPs,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := f.OpenTrace(pdr.ArrivalSpec{RatePerSec: 2000, Deadline: 20 * sim.Millisecond}, 7, 160, fleetASPs)
	if err != nil {
		t.Fatal(err)
	}
	st, err := f.Serve(tr)
	if err != nil {
		t.Fatal(err)
	}
	if st.PeakActive <= 1 || len(st.ScaleEvents) == 0 {
		t.Errorf("autoscaler never reacted: peak %d, %d events", st.PeakActive, len(st.ScaleEvents))
	}
}

func TestFleetOptionErrors(t *testing.T) {
	if _, err := pdr.NewFleet(pdr.FleetOptions{Boards: []string{"nope"}}); err == nil || !strings.Contains(err.Error(), "unknown platform") {
		t.Errorf("unknown platform accepted (err = %v)", err)
	}
	if _, err := pdr.NewFleet(pdr.FleetOptions{Router: "nope"}); err == nil || !strings.Contains(err.Error(), "unknown router") {
		t.Errorf("unknown router accepted (err = %v)", err)
	}
	if _, err := pdr.NewFleet(pdr.FleetOptions{Policy: "nope"}); err == nil {
		t.Error("unknown dispatch policy accepted")
	}
	if _, err := pdr.NewFleet(pdr.FleetOptions{
		Autoscale: &pdr.AutoscalePolicy{Window: sim.Millisecond, Min: 1, Max: 9},
	}); err == nil {
		t.Error("autoscaler bounds beyond the fleet accepted")
	}
}

func TestRoutersListing(t *testing.T) {
	names := pdr.Routers()
	want := []string{"round-robin", "least-outstanding", "weighted", "affinity"}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("Routers() = %v, want %v", names, want)
	}
}
