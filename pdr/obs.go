package pdr

import (
	"repro/internal/obs"
	"repro/internal/workpool"
)

// Tracer is the deterministic tracing and metrics collector. One tracer
// can watch many fleets (and many campaign shards): each run records
// request spans, control-plane events and sim-time gauge series under a
// schedule-independent key, and the exports — Chrome trace-event JSON
// via Chrome, canonical time-series JSON/CSV via MetricsJSON/MetricsCSV —
// are byte-identical at every worker count because every timestamp is
// simulated picoseconds, never wall clock, and buffers merge in board
// index order.
//
// A nil *Tracer is valid everywhere one is accepted and costs nothing:
// the instrumented code paths compile down to nil checks (zero
// allocations, ≤1 % overhead — see BenchmarkTraceOverhead).
type Tracer = obs.Tracer

// WorkerCount is one pool worker's tally (tasks claimed, busy wall
// clock) — see CampaignResult.Pool.
type WorkerCount = workpool.WorkerCount

// NewTracer returns an enabled tracer sampling metrics every simulated
// millisecond (adjust via the SampleEvery field before the first run).
func NewTracer() *Tracer { return obs.New() }

// ReexportTraceEvents parses a Chrome trace-event document written by
// Tracer.Chrome and renders it back to canonical bytes. A Chrome export
// round-trips exactly: ReexportTraceEvents(t.Chrome()) == t.Chrome().
func ReexportTraceEvents(data []byte) ([]byte, error) { return obs.ReexportChrome(data) }

// ReexportMetrics parses a metrics document written by Tracer.MetricsJSON
// and renders it back to canonical bytes; like the trace export it
// round-trips exactly.
func ReexportMetrics(data []byte) ([]byte, error) { return obs.ReexportMetrics(data) }
