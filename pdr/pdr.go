// Package pdr is the public API of the reproduction: a simulated
// ZedBoard/Zynq-7000 with the paper's over-clocked dynamic partial
// reconfiguration system, ready for experiments.
//
// The quickest path:
//
//	sys, err := pdr.NewSystem()
//	…
//	sys.SetFrequencyMHz(200)
//	res, err := sys.LoadASP("RP1", "fir128")
//	fmt.Println(res.LatencyUS, res.ThroughputMBs, res.CRCValid)
//
// Everything the paper's evaluation does is reachable from System:
// frequency sweeps (Table I / Fig. 5), heat-gun stress (Sec. IV-A), power
// profiling (Fig. 6 / Table II), the power-efficiency optimizer, robust
// loading with automatic fallback, and the Sec.-VI SRAM pipeline.
//
// The package re-exports the domain types a downstream user touches; the
// heavy machinery stays in internal packages.
package pdr

import (
	"fmt"

	"repro/internal/bitstream"
	"repro/internal/board"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/fabric"
	"repro/internal/hll"
	"repro/internal/platform"
	"repro/internal/power"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/srampdr"
	"repro/internal/workload"
	"repro/internal/zynq"
)

// Re-exported domain types (aliases so values flow freely between the
// public surface and the internals).
type (
	// Result of a single partial reconfiguration.
	Result = core.Result
	// SweepPoint is one frequency-sweep measurement.
	SweepPoint = core.SweepPoint
	// StressCell is one temperature-stress measurement.
	StressCell = core.StressCell
	// PowerPoint is one power-grid measurement.
	PowerPoint = core.PowerPoint
	// Recommendation is the optimizer's chosen operating point.
	Recommendation = core.Recommendation
	// Recovery describes a robust-load episode.
	Recovery = core.Recovery
	// Bitstream is a partial configuration image.
	Bitstream = bitstream.Bitstream
	// ASP is an accelerator personality from the workload library.
	ASP = workload.ASP
	// Trace is a reconfiguration request sequence.
	Trace = workload.Trace
	// ArrivalSpec describes an open-loop arrival process (rate, bursts,
	// tenants, deadlines).
	ArrivalSpec = workload.ArrivalSpec
	// RateCurve is a time-varying arrival-rate profile: piecewise-linear
	// diurnal anchors plus flash-crowd spikes, attached to an ArrivalSpec
	// via its Curve field.
	RateCurve = workload.RateCurve
	// RatePoint is one (time, rate) anchor of a RateCurve.
	RatePoint = workload.RatePoint
	// Flash is a flash-crowd spike (ramp/hold/decay) stacked on a
	// RateCurve's base profile.
	Flash = workload.Flash
	// SLOClass is a service-level class requests are drawn into (its own
	// deadline and traffic share).
	SLOClass = workload.SLOClass
	// FrameworkStats summarises a multi-RP accelerator run.
	FrameworkStats = hll.Stats
	// ServiceStats summarises an open-loop reconfiguration-service run
	// (admission control, sojourn tail latency, cache behaviour).
	ServiceStats = hll.ServiceStats
	// TenantStats is one traffic source's view of a service run.
	TenantStats = hll.TenantStats
)

// Option configures NewSystem.
type Option func(*options)

type options struct {
	seed        uint64
	platform    string
	ambientC    float64
	fastThermal bool
}

// WithSeed fixes the deterministic seed (default 1).
func WithSeed(seed uint64) Option { return func(o *options) { o.seed = seed } }

// WithPlatform selects the registered platform profile the system simulates
// (default "zedboard", the paper's calibrated board; see Platforms for the
// registry).
func WithPlatform(name string) Option { return func(o *options) { o.platform = name } }

// WithAmbient sets the room temperature in °C (default: the platform
// profile's boot ambient, 25 on the ZedBoard).
func WithAmbient(c float64) Option { return func(o *options) { o.ambientC = c } }

// WithSlowThermal uses the physical thermal time constant instead of the
// fast test-friendly one.
func WithSlowThermal() Option { return func(o *options) { o.fastThermal = false } }

// PlatformInfo summarises one registered platform profile.
type PlatformInfo struct {
	// Name is the registry key accepted by WithPlatform / BoardVariant.
	Name string
	// Board and Part name the hardware.
	Board, Part string
	// Summary is a one-line description.
	Summary string
	// Variant reports whether the profile is a preset of another board
	// rather than distinct silicon.
	Variant bool
}

// Platforms lists the registered platform profiles in registry order.
func Platforms() []PlatformInfo {
	profs := platform.All()
	out := make([]PlatformInfo, len(profs))
	for i, p := range profs {
		out[i] = PlatformInfo{
			Name:    p.Name,
			Board:   p.Board,
			Part:    p.Part,
			Summary: p.Summary,
			Variant: p.VariantOf != "",
		}
	}
	return out
}

// System is a booted board plus the paper's controller stack.
type System struct {
	Board      *board.Board
	Controller *core.Controller

	meter    *power.Meter
	bsCache  map[string]*bitstream.Bitstream
	sramInit bool
	serves   int // Serve ordinal, keys ServeOptions.Tracer's fleets
}

// NewSystem builds and boots a simulated board with the PDR design (the
// paper's ZedBoard unless WithPlatform selects another registered profile).
func NewSystem(opts ...Option) (*System, error) {
	o := options{seed: 1, fastThermal: true}
	for _, fn := range opts {
		fn(&o)
	}
	prof, ok := platform.Lookup(o.platform)
	if !ok {
		return nil, fmt.Errorf("pdr: unknown platform %q (registered: %s)", o.platform, platform.NameList())
	}
	p, err := zynq.NewPlatform(zynq.Options{
		Seed:        o.seed,
		Profile:     prof,
		AmbientC:    o.ambientC,
		FastThermal: o.fastThermal,
	})
	if err != nil {
		return nil, err
	}
	b := board.New(p)
	b.SD.Store("boot.bin", []byte("pdr-app"))
	if err := b.Boot(); err != nil {
		return nil, err
	}
	return &System{
		Board:      b,
		Controller: core.New(p),
		meter:      b.Meter,
		bsCache:    make(map[string]*bitstream.Bitstream),
	}, nil
}

// Platform exposes the underlying SoC model.
func (s *System) Platform() *zynq.Platform { return s.Controller.Platform() }

// ASPs lists the workload library.
func (s *System) ASPs() []ASP { return workload.Library() }

// BuildBitstream synthesises the ASP's partial bitstream for an RP.
func (s *System) BuildBitstream(rp, asp string) (*Bitstream, error) {
	key := asp + "@" + rp
	if bs, ok := s.bsCache[key]; ok {
		return bs, nil
	}
	region, err := s.Platform().RP(rp)
	if err != nil {
		return nil, err
	}
	a, err := workload.LibraryASP(asp)
	if err != nil {
		return nil, err
	}
	bs, err := a.Bitstream(s.Platform().Device, region)
	if err != nil {
		return nil, err
	}
	s.bsCache[key] = bs
	return bs, nil
}

// SetFrequencyMHz re-programs the over-clock domain (costs the MMCM lock
// time in simulated time) and returns the exact achieved frequency.
func (s *System) SetFrequencyMHz(f float64) (float64, error) {
	return s.Controller.SetFrequencyMHz(f)
}

// LoadASP builds (or reuses) the ASP's bitstream and performs one partial
// reconfiguration at the current frequency.
func (s *System) LoadASP(rp, asp string) (Result, error) {
	bs, err := s.BuildBitstream(rp, asp)
	if err != nil {
		return Result{}, err
	}
	return s.Controller.Load(rp, bs)
}

// Load performs one partial reconfiguration with a caller-supplied image.
func (s *System) Load(rp string, bs *Bitstream) (Result, error) {
	return s.Controller.Load(rp, bs)
}

// RobustLoad wraps Load with CRC-verified fallback to the nominal clock.
func (s *System) RobustLoad(rp, asp string) (Recovery, error) {
	bs, err := s.BuildBitstream(rp, asp)
	if err != nil {
		return Recovery{}, err
	}
	guard := &core.RobustGuard{C: s.Controller}
	return guard.Load(rp, bs)
}

// Sweep measures throughput at each frequency (Table I / Fig. 5).
func (s *System) Sweep(rp, asp string, freqsMHz []float64) ([]SweepPoint, error) {
	bs, err := s.BuildBitstream(rp, asp)
	if err != nil {
		return nil, err
	}
	cal := &core.Calibrator{C: s.Controller, RP: rp, Bitstream: bs}
	return cal.Sweep(freqsMHz)
}

// StressMatrix reruns the sweep across die temperatures with the heat gun
// (Sec. IV-A).
func (s *System) StressMatrix(rp, asp string, freqsMHz, tempsC []float64) ([]StressCell, error) {
	bs, err := s.BuildBitstream(rp, asp)
	if err != nil {
		return nil, err
	}
	cal := &core.Calibrator{C: s.Controller, RP: rp, Bitstream: bs}
	return cal.StressMatrix(freqsMHz, tempsC)
}

// PowerGrid measures P_PDR over frequency × temperature (Fig. 6/Table II).
func (s *System) PowerGrid(rp, asp string, freqsMHz, tempsC []float64) ([]PowerPoint, error) {
	bs, err := s.BuildBitstream(rp, asp)
	if err != nil {
		return nil, err
	}
	pp := &core.PowerProfiler{C: s.Controller, Meter: s.meter, RP: rp, Bitstream: bs}
	return pp.Grid(freqsMHz, tempsC)
}

// Optimize runs the paper's methodology: find the most power-efficient
// frequency that stays robust up to worstTempC with the given margin.
func (s *System) Optimize(rp, asp string, freqsMHz []float64, worstTempC, margin float64) (Recommendation, error) {
	bs, err := s.BuildBitstream(rp, asp)
	if err != nil {
		return Recommendation{}, err
	}
	pp := &core.PowerProfiler{C: s.Controller, Meter: s.meter, RP: rp, Bitstream: bs}
	opt := &core.Optimizer{Profiler: pp, WorstTempC: worstTempC, Margin: margin}
	return opt.Choose(freqsMHz)
}

// HeatTo servos the heat gun until the die reaches tempC.
func (s *System) HeatTo(tempC float64) error {
	if _, ok := s.Platform().Gun.StabilizeAt(tempC, 0.5, 10*sim.Minute); !ok {
		return fmt.Errorf("pdr: heat gun failed to reach %v°C", tempC)
	}
	return nil
}

// HeatOff turns the gun off.
func (s *System) HeatOff() { s.Platform().Gun.Off() }

// DieTempC reads the XADC temperature sensor.
func (s *System) DieTempC() float64 { return s.Platform().Die.Sensor() }

// BoardPowerW reads the current-sense headers (whole board).
func (s *System) BoardPowerW() float64 { return s.meter.ReadBoard() }

// PDRPowerW reads the baseline-subtracted P_PDR.
func (s *System) PDRPowerW() float64 { return s.meter.ReadPDR() }

// Framework builds the Fig.-1 multi-RP acceleration framework.
func (s *System) Framework() *hll.Framework { return hll.New(s.Controller) }

// rpNames lists the system's partition names in platform order.
func (s *System) rpNames() []string {
	rps := make([]string, 0, len(s.Platform().RPs))
	for _, rp := range s.Platform().RPs {
		rps = append(rps, rp.Name)
	}
	return rps
}

// PoissonTrace generates a random request trace over the standard RPs and
// the named ASPs.
func (s *System) PoissonTrace(seed uint64, n int, meanGapUS float64, asps []string) Trace {
	return workload.PoissonTrace(seed, n, sim.FromMicroseconds(meanGapUS), s.rpNames(), asps)
}

// OpenTrace generates an open-loop arrival stream over the system's RPs
// from the spec (rate, burstiness, tenants, deadlines) — the input Serve
// consumes.
func (s *System) OpenTrace(spec ArrivalSpec, seed uint64, n int, asps []string) (Trace, error) {
	return spec.Generate(seed, n, s.rpNames(), asps)
}

// OpenTraceUntil generates an open-loop arrival stream covering the time
// horizon instead of a fixed request count — the natural form when the
// spec carries a RateCurve whose shape (not a count) defines the run.
func (s *System) OpenTraceUntil(spec ArrivalSpec, seed uint64, horizon sim.Duration, asps []string) (Trace, error) {
	return spec.GenerateUntil(seed, horizon, s.rpNames(), asps)
}

// TraceFileVersion is the schema version ExportTrace writes and the newest
// ImportTrace accepts.
const TraceFileVersion = workload.TraceFileVersion

// ExportTrace encodes a trace as a canonical versioned JSON document:
// exporting, importing and re-exporting reproduces the bytes exactly.
func ExportTrace(tr Trace) ([]byte, error) { return workload.ExportTrace(tr) }

// ImportTrace decodes a trace file, rejecting unknown future schema
// versions and malformed streams with descriptive errors.
func ImportTrace(data []byte) (Trace, error) { return workload.ImportTrace(data) }

// Policies lists the dispatch policies Serve accepts.
func Policies() []string { return sched.PolicyNames() }

// ServeOptions configures System.Serve.
type ServeOptions struct {
	// Policy is the dispatch policy name ("fcfs" when empty; see Policies).
	Policy string
	// CacheBudgetBytes bounds the DRAM bitstream cache: 0 uses the platform
	// profile's derived budget, < 0 disables the cache entirely (the
	// no-cache ablation), > 0 is an explicit budget.
	CacheBudgetBytes int64
	// QueueCap is the per-RP admission-control depth (0 = 32).
	QueueCap int
	// Prewarm stages the listed ASPs' images for every RP before serving
	// (steady-state residency). Ignored when the cache is disabled.
	Prewarm []string
	// Tracer, when non-nil, records the run's request spans (queue wait,
	// cache staging, ICAP transfer, compute) and service events under the
	// key "serve/NN" (NN = this system's Serve ordinal). Tracing never
	// changes ServiceStats. Nil (the default) costs nothing.
	Tracer *Tracer
}

// Serve runs an open-loop request stream through the reconfiguration
// service: per-RP queues with admission control, the chosen dispatch
// policy arbitrating the single ICAP, and a DRAM bitstream cache staged
// from the board's SD card at the profile rate. Each call serves on a
// fresh service (empty queues, cold or prewarmed cache).
func (s *System) Serve(tr Trace, o ServeOptions) (ServiceStats, error) {
	policyName := o.Policy
	if policyName == "" {
		policyName = "fcfs"
	}
	policy, err := sched.PolicyByName(policyName)
	if err != nil {
		return ServiceStats{}, fmt.Errorf("pdr: %w", err)
	}
	prof := s.Platform().Profile
	budget := o.CacheBudgetBytes
	switch {
	case budget == 0:
		budget = prof.BitstreamCacheBytes()
	case budget < 0:
		budget = 0 // hll semantics: 0 disables
	}
	queueCap := o.QueueCap
	if queueCap == 0 {
		queueCap = 32
	}
	svc := hll.NewService(s.Controller, hll.ServiceConfig{
		Policy:           policy,
		CacheBudgetBytes: budget,
		QueueCap:         queueCap,
		StageBytesPerSec: prof.IO.SDBytesPerSec,
		PrewarmASPs:      o.Prewarm,
	})
	if o.Tracer != nil {
		ft := o.Tracer.Fleet(fmt.Sprintf("serve/%02d", s.serves),
			fmt.Sprintf("%s, %s", prof.Name, policyName))
		s.serves++
		svc.SetTracer(ft.Board(0))
		ft.Bind(0, prof.Name, svc.RPNames())
	}
	return svc.Serve(tr)
}

// SRAMPipeline builds the Sec.-VI proposed reconfiguration environment
// sharing this system's fabric (its own DDR port, hard-macro ICAP at
// 550 MHz). A system supports one pipeline: a second call would register a
// duplicate DDR master contending for the same port, so it is rejected.
func (s *System) SRAMPipeline() (*srampdr.System, error) {
	if s.sramInit {
		return nil, fmt.Errorf("pdr: SRAM pipeline already initialised for this system")
	}
	p := s.Platform()
	sys, err := srampdr.New(srampdr.Config{
		Kernel: p.Kernel,
		Device: p.Device,
		Memory: p.Memory,
		DDR:    dram.NewController(p.Kernel, p.Profile.DRAM),
		TempC:  func() float64 { return p.Die.TempC() },
		Seed:   99,
	})
	if err != nil {
		return nil, err
	}
	s.sramInit = true
	return sys, nil
}

// RunFor advances simulated time (e.g. to let temperature settle).
func (s *System) RunFor(d sim.Duration) { s.Platform().Kernel.RunFor(d) }

// Regions lists the reconfigurable partitions.
func (s *System) Regions() []fabric.Region { return s.Platform().RPs }
