package pdr_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/pdr"
)

// TestCampaignParallelBitIdentical is the API-level determinism contract:
// the same campaign on 1 and on 3 workers must render, encode and note
// byte-identically. A cheap scenario subset keeps the unit fast; the root
// determinism test covers the full suite.
func TestCampaignParallelBitIdentical(t *testing.T) {
	run := func(workers int) *pdr.CampaignResult {
		res, err := pdr.NewCampaign(
			pdr.WithCampaignSeed(42),
			pdr.WithWorkers(workers),
			pdr.WithScenarios("E1", "E8", "A3"),
		).Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq, par := run(1), run(3)
	if seq.Render() != par.Render() {
		t.Errorf("parallel render differs from sequential:\n%s\nvs\n%s", seq.Render(), par.Render())
	}
	j1, err := seq.JSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := par.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j2) {
		t.Error("parallel JSON differs from sequential")
	}
}

func TestCampaignShardedScenario(t *testing.T) {
	res, err := pdr.NewCampaign(
		pdr.WithCampaignSeed(42),
		pdr.WithWorkers(4),
		pdr.WithScenarios("E2"),
	).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Units != 3 {
		t.Errorf("E2 shard plan = %d units, want 3", res.Units)
	}
	rep := res.Reports[0]
	if len(rep.Rows) != 21 {
		t.Errorf("fig5 rows = %d, want 21", len(rep.Rows))
	}
	if len(rep.Series) != 1 || len(rep.Series[0].Points) != 21 {
		t.Errorf("fig5 series malformed: %+v", rep.Series)
	}
	// The merged curve must stay monotone in frequency: shard boundaries
	// may not reorder points.
	pts := rep.Series[0].Points
	for i := 1; i < len(pts); i++ {
		if pts[i].X <= pts[i-1].X {
			t.Errorf("series X not increasing at %d: %v then %v", i, pts[i-1].X, pts[i].X)
		}
	}
}

func TestCampaignUnknownScenario(t *testing.T) {
	_, err := pdr.NewCampaign(pdr.WithScenarios("E42")).Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "unknown scenario") {
		t.Errorf("err = %v", err)
	}
}

func TestCampaignUnknownBoardVariant(t *testing.T) {
	_, err := pdr.NewCampaign(
		pdr.WithScenarios("E8"),
		pdr.WithBoardVariant("zedboard-quantum"),
	).Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "unknown board variant") {
		t.Errorf("err = %v", err)
	}
}

func TestCampaignBoardVariantHot(t *testing.T) {
	// The hot-chamber variant boots at 45 °C ambient; E8 is analytic and
	// cheap, so this just proves the variant plumbs through to the Env.
	res, err := pdr.NewCampaign(
		pdr.WithScenarios("E8"),
		pdr.WithBoardVariant(pdr.ZedBoardHot),
	).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 1 || res.Reports[0].ID != "E8" {
		t.Errorf("reports = %+v", res.Reports)
	}
}

// TestCampaignBoardVariantSlowThermal proves the slow-thermal preset plumbs
// all the way through: the variant resolves to the registered profile, the
// Env is built from it, and the die really carries the physical 2 s time
// constant (the fast test-friendly shortcut must NOT win).
func TestCampaignBoardVariantSlowThermal(t *testing.T) {
	var cfg experiments.Config
	if err := pdr.ApplyBoardVariant(pdr.ZedBoardSlowThermal, &cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.Platform != string(pdr.ZedBoardSlowThermal) {
		t.Fatalf("variant set Platform = %q", cfg.Platform)
	}
	env, err := experiments.NewEnvWith(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := env.Platform.Profile.Name; got != "zedboard-slow-thermal" {
		t.Errorf("env profile = %q", got)
	}
	if got := env.Platform.Die.TimeConstant(); got != 2*sim.Second {
		t.Errorf("die time constant = %v, want the physical 2s", got)
	}
	// The default build keeps the fast thermal shortcut.
	base, err := experiments.NewEnvWith(experiments.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := base.Platform.Die.TimeConstant(); got != 50*sim.Millisecond {
		t.Errorf("default die time constant = %v, want the fast 50ms", got)
	}
	// End to end: a campaign on the preset runs (E8 is analytic and cheap).
	res, err := pdr.NewCampaign(
		pdr.WithScenarios("E8"),
		pdr.WithBoardVariant(pdr.ZedBoardSlowThermal),
	).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 1 || res.Reports[0].ID != "E8" {
		t.Errorf("reports = %+v", res.Reports)
	}
}

// TestCampaignOnOtherSilicon runs a real (non-analytic) scenario on the two
// new boards through the public campaign API.
func TestCampaignOnOtherSilicon(t *testing.T) {
	for _, v := range []pdr.BoardVariant{pdr.ZyboZ710, pdr.ZC706} {
		res, err := pdr.NewCampaign(
			pdr.WithCampaignSeed(42),
			pdr.WithScenarios("E1"),
			pdr.WithBoardVariant(v),
		).Run(context.Background())
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if len(res.Reports) != 1 || len(res.Reports[0].Rows) == 0 {
			t.Errorf("%s: empty E1 report", v)
		}
	}
}

func TestCampaignGridOverride(t *testing.T) {
	res, err := pdr.NewCampaign(
		pdr.WithCampaignSeed(42),
		pdr.WithWorkers(2),
		pdr.WithScenarios("E3"),
		pdr.WithFrequencyGrid(100, 200),
		pdr.WithTemperatureGrid(40, 100),
	).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Units != 2 {
		t.Errorf("override shard plan = %d units, want one per temperature (2)", res.Units)
	}
	rep := res.Reports[0]
	if len(rep.Rows) != 2 || len(rep.Rows[0]) != 3 {
		t.Errorf("stress table shape = %dx%d, want 2x3", len(rep.Rows), len(rep.Rows[0]))
	}
}

func TestCampaignCancelledBeforeRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := pdr.NewCampaign(pdr.WithScenarios("E1")).Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

// TestCampaignCancelledMidRun cancels while workers are inside the stress
// matrix; the campaign must stop between measurement points and surface the
// cancellation rather than a partial result.
func TestCampaignCancelledMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(10*time.Millisecond, cancel)
	defer timer.Stop()
	defer cancel()
	res, err := pdr.NewCampaign(
		pdr.WithCampaignSeed(42),
		pdr.WithWorkers(2),
	).Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v (res = %v), want context.Canceled", err, res != nil)
	}
}

func TestScenariosListing(t *testing.T) {
	ids := map[string]bool{}
	for _, s := range pdr.Scenarios() {
		ids[s.ID] = true
	}
	for _, want := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "A1", "A2", "A3", "A4", "A5"} {
		if !ids[want] {
			t.Errorf("registry missing %s", want)
		}
	}
}

func TestCampaignFleetGridOverride(t *testing.T) {
	res, err := pdr.NewCampaign(
		pdr.WithCampaignSeed(42),
		pdr.WithScenarios("E13"),
		pdr.WithFleetGrid(1, 2),
		pdr.WithFleetRouter("affinity"),
	).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// 2 compositions × (2 sizes + the autoscaled point).
	if res.Units != 6 {
		t.Errorf("units = %d, want 6", res.Units)
	}
	rep := res.Reports[0]
	if rep.ID != "E13" || len(rep.Rows) != 6 {
		t.Errorf("report %s has %d rows, want 6", rep.ID, len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if row[2] != "affinity" {
			t.Errorf("router column = %q, want the WithFleetRouter override", row[2])
		}
	}
	// An unknown router surfaces through the shard error path, and a
	// non-positive fleet size errors instead of panicking a worker.
	if _, err := pdr.NewCampaign(
		pdr.WithScenarios("E13"),
		pdr.WithFleetGrid(1),
		pdr.WithFleetRouter("nope"),
	).Run(context.Background()); err == nil || !strings.Contains(err.Error(), "unknown router") {
		t.Errorf("unknown router accepted (err = %v)", err)
	}
	if _, err := pdr.NewCampaign(
		pdr.WithScenarios("E13"),
		pdr.WithFleetGrid(-1),
	).Run(context.Background()); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("negative fleet size accepted (err = %v)", err)
	}
}

func TestCampaignRateGridOverride(t *testing.T) {
	res, err := pdr.NewCampaign(
		pdr.WithCampaignSeed(42),
		pdr.WithScenarios("E11"),
		pdr.WithRateGrid(50, 400),
	).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// 2 rates → 1 segment × 3 boards.
	if res.Units != 3 {
		t.Errorf("units = %d, want 3", res.Units)
	}
	rep := res.Reports[0]
	if rep.ID != "E11" || len(rep.Rows) != 12 {
		t.Errorf("report %s has %d rows, want 12 (3 boards × 2 rates × 2 modes)", rep.ID, len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if row[1] != "50" && row[1] != "400" {
			t.Errorf("unexpected rate in row: %v", row)
		}
	}
}
