package pdr_test

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/pdr"
)

// TestSystemServeWithTracer: the single-board service path records spans
// under "serve/NN", does not perturb ServiceStats, and the public
// re-export helpers round-trip the files byte for byte.
func TestSystemServeWithTracer(t *testing.T) {
	serve := func(tracer *pdr.Tracer) pdr.ServiceStats {
		sys, err := pdr.NewSystem(pdr.WithSeed(42))
		if err != nil {
			t.Fatal(err)
		}
		stream, err := sys.OpenTrace(pdr.ArrivalSpec{
			RatePerSec: 700,
			Deadline:   20 * sim.Millisecond,
		}, 7, 48, fleetASPs)
		if err != nil {
			t.Fatal(err)
		}
		st, err := sys.Serve(stream, pdr.ServeOptions{Prewarm: fleetASPs[:2], Tracer: tracer})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	plain := serve(nil)
	tracer := pdr.NewTracer()
	traced := serve(tracer)
	if !reflect.DeepEqual(plain, traced) {
		t.Error("tracer changed ServiceStats")
	}
	chrome := tracer.Chrome()
	s := string(chrome)
	for _, want := range []string{"serve/00", `"name":"queue"`, `"name":"compute"`} {
		if !strings.Contains(s, want) {
			t.Errorf("serve trace missing %s", want)
		}
	}
	again, err := pdr.ReexportTraceEvents(chrome)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(chrome, again) {
		t.Error("trace-events export does not round-trip through the public API")
	}
	mj, err := tracer.MetricsJSON()
	if err != nil {
		t.Fatal(err)
	}
	againM, err := pdr.ReexportMetrics(mj)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mj, againM) {
		t.Error("metrics export does not round-trip through the public API")
	}
}

// TestFleetServeWithTracer: each Fleet.Serve registers its own keyed
// trace, stats stay byte-identical to the untraced run, and board gauges
// (watts, queue depth) appear in the metrics.
func TestFleetServeWithTracer(t *testing.T) {
	build := func(tracer *pdr.Tracer) (*pdr.Fleet, pdr.Trace) {
		f, err := pdr.NewFleet(pdr.FleetOptions{
			Boards:  []string{"zedboard", "zedboard"},
			Seed:    42,
			Router:  "least-outstanding",
			Prewarm: fleetASPs,
			Tracer:  tracer,
		})
		if err != nil {
			t.Fatal(err)
		}
		stream, err := f.OpenTrace(pdr.ArrivalSpec{
			RatePerSec: 700,
			Deadline:   20 * sim.Millisecond,
		}, 7, 64, fleetASPs)
		if err != nil {
			t.Fatal(err)
		}
		return f, stream
	}
	fPlain, stream := build(nil)
	plain, err := fPlain.Serve(stream)
	if err != nil {
		t.Fatal(err)
	}
	tracer := pdr.NewTracer()
	fTraced, stream2 := build(tracer)
	traced, err := fTraced.Serve(stream2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, traced) {
		t.Error("tracer changed FleetStats")
	}
	// A second Serve registers the next key.
	if _, err := fTraced.Serve(stream2); err != nil {
		t.Fatal(err)
	}
	s := string(tracer.Chrome())
	for _, want := range []string{"fleet/00", "fleet/01", "2 boards, least-outstanding"} {
		if !strings.Contains(s, want) {
			t.Errorf("fleet trace missing %s", want)
		}
	}
	mj, err := tracer.MetricsJSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"board00.watts", "board01.queued", "fleet.active_boards"} {
		if !strings.Contains(string(mj), want) {
			t.Errorf("fleet metrics missing %s", want)
		}
	}
}

// TestCampaignWithTracer: the campaign option threads the tracer through
// to the fleet scenarios, reports stay byte-identical, and the pool /
// elapsed profiling fields are populated.
func TestCampaignWithTracer(t *testing.T) {
	run := func(tracer *pdr.Tracer) *pdr.CampaignResult {
		opts := []pdr.CampaignOption{
			pdr.WithCampaignSeed(42),
			pdr.WithScenarios("E14"),
			pdr.WithWorkers(2),
		}
		if tracer != nil {
			opts = append(opts, pdr.WithTracer(tracer))
		}
		res, err := pdr.NewCampaign(opts...).Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(nil)
	tracer := pdr.NewTracer()
	traced := run(tracer)
	pj, err := plain.JSON()
	if err != nil {
		t.Fatal(err)
	}
	tj, err := traced.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pj, tj) {
		t.Error("tracer changed the campaign's report JSON")
	}
	s := string(tracer.Chrome())
	// E14 runs one shard per router; each registers its own keyed fleet.
	for _, want := range []string{"E14/00", "E14/03"} {
		if !strings.Contains(s, want) {
			t.Errorf("campaign trace missing %s", want)
		}
	}
	if traced.Elapsed <= 0 {
		t.Error("campaign elapsed time not recorded")
	}
	if len(traced.Pool) == 0 {
		t.Error("campaign pool utilization not recorded")
	}
	var tasks int64
	for _, wc := range traced.Pool {
		tasks += wc.Tasks
	}
	if int(tasks) != traced.Units {
		t.Errorf("pool task tally %d ≠ campaign units %d", tasks, traced.Units)
	}
	if traced.Reports[0].SimEvents == 0 {
		t.Error("campaign report missing sim-event tally")
	}
}
