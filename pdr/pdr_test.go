package pdr_test

import (
	"math"
	"testing"

	"repro/internal/sim"
	"repro/internal/srampdr"
	"repro/pdr"
)

func newSys(t *testing.T) *pdr.System {
	t.Helper()
	sys, err := pdr.NewSystem(pdr.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestQuickstartFlow(t *testing.T) {
	sys := newSys(t)
	if got, err := sys.SetFrequencyMHz(200); err != nil || math.Abs(got-200) > 1 {
		t.Fatalf("SetFrequencyMHz: %v %v", got, err)
	}
	res, err := sys.LoadASP("RP1", "fir128")
	if err != nil {
		t.Fatal(err)
	}
	if !res.IRQReceived || !res.CRCValid {
		t.Fatalf("load not clean: %+v", res)
	}
	if math.Abs(res.ThroughputMBs-781.84)/781.84 > 0.01 {
		t.Errorf("throughput = %v, want ≈782", res.ThroughputMBs)
	}
}

func TestLoadASPUnknownNames(t *testing.T) {
	sys := newSys(t)
	if _, err := sys.LoadASP("RP9", "fir128"); err == nil {
		t.Error("unknown RP must fail")
	}
	if _, err := sys.LoadASP("RP1", "ghost"); err == nil {
		t.Error("unknown ASP must fail")
	}
}

// TestMeasurementUnknownNames covers the BuildBitstream error path of every
// measurement entry point: each must reject unknown RP and ASP names rather
// than measure garbage.
func TestMeasurementUnknownNames(t *testing.T) {
	sys := newSys(t)
	freqs := []float64{100}
	temps := []float64{40}
	if _, err := sys.Sweep("RP9", "fir128", freqs); err == nil {
		t.Error("Sweep with unknown RP must fail")
	}
	if _, err := sys.Sweep("RP1", "ghost", freqs); err == nil {
		t.Error("Sweep with unknown ASP must fail")
	}
	if _, err := sys.StressMatrix("RP9", "fir128", freqs, temps); err == nil {
		t.Error("StressMatrix with unknown RP must fail")
	}
	if _, err := sys.PowerGrid("RP1", "ghost", freqs, temps); err == nil {
		t.Error("PowerGrid with unknown ASP must fail")
	}
	if _, err := sys.Optimize("RP9", "fir128", freqs, 100, 0.1); err == nil {
		t.Error("Optimize with unknown RP must fail")
	}
	if _, err := sys.RobustLoad("RP1", "ghost"); err == nil {
		t.Error("RobustLoad with unknown ASP must fail")
	}
}

// TestOutOfRangeFrequency exercises the MMCM feasibility check: targets the
// Clock Wizard cannot synthesise must be rejected, leaving the previous
// frequency programmed.
func TestOutOfRangeFrequency(t *testing.T) {
	sys := newSys(t)
	before, err := sys.SetFrequencyMHz(200)
	if err != nil {
		t.Fatal(err)
	}
	// 4 MHz is below the MMCM floor (VCO 600 MHz / max outdiv 128 ≈ 4.7);
	// 20 GHz is above the VCO ceiling.
	for _, f := range []float64{0, -100, 4, 20000} {
		if _, err := sys.SetFrequencyMHz(f); err == nil {
			t.Errorf("SetFrequencyMHz(%v) accepted", f)
		}
	}
	res, err := sys.LoadASP("RP1", "fir128")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.FreqMHz-before) > 1 {
		t.Errorf("frequency after rejected retune = %v, want %v", res.FreqMHz, before)
	}
}

// TestSRAMPipelineDoubleInit: a system owns at most one Sec.-VI pipeline —
// a second init would register a duplicate DDR master on the same port.
func TestSRAMPipelineDoubleInit(t *testing.T) {
	sys := newSys(t)
	if _, err := sys.SRAMPipeline(); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.SRAMPipeline(); err == nil {
		t.Error("second SRAMPipeline init must fail")
	}
}

func TestBitstreamCacheReuse(t *testing.T) {
	sys := newSys(t)
	a, err := sys.BuildBitstream("RP1", "sha3")
	if err != nil {
		t.Fatal(err)
	}
	b, err := sys.BuildBitstream("RP1", "sha3")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("cache miss on identical request")
	}
}

func TestSweepMatchesDirectLoad(t *testing.T) {
	sys := newSys(t)
	pts, err := sys.Sweep("RP1", "fir128", []float64{100, 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	if math.Abs(pts[0].Result.ThroughputMBs-399)/399 > 0.01 {
		t.Errorf("100 MHz point = %v", pts[0].Result.ThroughputMBs)
	}
}

func TestRobustLoadAtHangFrequency(t *testing.T) {
	sys := newSys(t)
	if _, err := sys.SetFrequencyMHz(310); err != nil {
		t.Fatal(err)
	}
	rec, err := sys.RobustLoad("RP2", "aes-gcm")
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Recovered {
		t.Error("robust load must recover")
	}
}

func TestSensorsAndPower(t *testing.T) {
	sys := newSys(t)
	if temp := sys.DieTempC(); temp < 25 || temp > 60 {
		t.Errorf("die temp = %v", temp)
	}
	if p := sys.BoardPowerW(); p < 2.2 || p > 5 {
		t.Errorf("board power = %v", p)
	}
	if p := sys.PDRPowerW(); p < 0.8 || p > 2.5 {
		t.Errorf("P_PDR = %v", p)
	}
}

func TestHeatToAndOff(t *testing.T) {
	sys := newSys(t)
	if err := sys.HeatTo(80); err != nil {
		t.Fatal(err)
	}
	if got := sys.DieTempC(); math.Abs(got-80) > 1 {
		t.Errorf("die = %v, want ≈80", got)
	}
	sys.HeatOff()
}

func TestOptimizeEndToEnd(t *testing.T) {
	sys := newSys(t)
	rec, err := sys.Optimize("RP1", "fir128", []float64{100, 140, 180, 200, 240, 280}, 100, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if rec.FreqMHz != 200 {
		t.Errorf("recommendation = %v MHz, want 200", rec.FreqMHz)
	}
}

func TestFrameworkAndTrace(t *testing.T) {
	sys := newSys(t)
	if _, err := sys.SetFrequencyMHz(200); err != nil {
		t.Fatal(err)
	}
	fw := sys.Framework()
	tr := sys.PoissonTrace(3, 10, 500, []string{"fir128", "sha3"})
	stats, err := fw.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Requests != 10 {
		t.Errorf("requests = %d", stats.Requests)
	}
	if stats.Failures != 0 {
		t.Errorf("failures = %d", stats.Failures)
	}
}

func TestSRAMPipelineEndToEnd(t *testing.T) {
	sys := newSys(t)
	pipe, err := sys.SRAMPipeline()
	if err != nil {
		t.Fatal(err)
	}
	bs, err := sys.BuildBitstream("RP3", "fft1k")
	if err != nil {
		t.Fatal(err)
	}
	if err := pipe.Register(bs, true); err != nil {
		t.Fatal(err)
	}
	loaded := false
	if err := pipe.Preload("fft1k", func(srampdr.Preloaded) { loaded = true }); err != nil {
		t.Fatal(err)
	}
	sys.RunFor(5 * sim.Millisecond)
	if !loaded {
		t.Fatal("preload incomplete")
	}
	var tput float64
	if err := pipe.Reconfigure(func(r srampdr.ReconfigResult) { tput = r.ThroughputMBs }); err != nil {
		t.Fatal(err)
	}
	sys.RunFor(5 * sim.Millisecond)
	if tput < 1237 {
		t.Errorf("Sec.-VI throughput = %v, want >1237 (compressed)", tput)
	}
}

func TestRegionsExposed(t *testing.T) {
	sys := newSys(t)
	if len(sys.Regions()) != 4 {
		t.Errorf("regions = %d", len(sys.Regions()))
	}
	if len(sys.ASPs()) < 5 {
		t.Errorf("ASPs = %d", len(sys.ASPs()))
	}
}

func TestNewSystemWithPlatform(t *testing.T) {
	sys, err := pdr.NewSystem(pdr.WithSeed(7), pdr.WithPlatform("zybo-z7-10"))
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.Platform().Profile.Name; got != "zybo-z7-10" {
		t.Errorf("profile = %q", got)
	}
	if got := len(sys.Regions()); got != 3 {
		t.Errorf("zybo RPs = %d, want 3", got)
	}
	if _, err := sys.SetFrequencyMHz(140); err != nil {
		t.Fatal(err)
	}
	res, err := sys.LoadASP("RP1", "fir128")
	if err != nil {
		t.Fatal(err)
	}
	if !res.IRQReceived || !res.CRCValid || !res.DataIntact {
		t.Errorf("zybo 140 MHz load should succeed cleanly: %+v", res)
	}
	if _, err := pdr.NewSystem(pdr.WithPlatform("martian-fpga")); err == nil {
		t.Error("unknown platform accepted")
	}
}

func TestPlatformsListing(t *testing.T) {
	infos := pdr.Platforms()
	if len(infos) < 5 {
		t.Fatalf("Platforms = %d entries", len(infos))
	}
	byName := map[string]pdr.PlatformInfo{}
	for _, p := range infos {
		byName[p.Name] = p
	}
	if p := byName["zedboard"]; p.Variant || p.Part != "xc7z020" {
		t.Errorf("zedboard info = %+v", p)
	}
	if p := byName["zedboard-hot"]; !p.Variant {
		t.Errorf("zedboard-hot should be a variant: %+v", p)
	}
}

func TestServeOpenLoop(t *testing.T) {
	sys, err := pdr.NewSystem(pdr.WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.SetFrequencyMHz(200); err != nil {
		t.Fatal(err)
	}
	asps := []string{"fir128", "sha3"}
	tr, err := sys.OpenTrace(pdr.ArrivalSpec{RatePerSec: 200, Tenants: []string{"a", "b"}}, 7, 24, asps)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := sys.Serve(tr, pdr.ServeOptions{Policy: "affinity", Prewarm: asps})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Offered != 24 || stats.Completed+stats.Failures+stats.Shed != 24 {
		t.Errorf("service accounting broken: %+v", stats)
	}
	if stats.SojournUS.N() == 0 || stats.SojournUS.Percentile(99) <= 0 {
		t.Error("sojourn tail latency missing")
	}
	if len(stats.Tenants) != 2 {
		t.Errorf("tenants = %v", stats.TenantNames())
	}
	if _, err := sys.Serve(tr, pdr.ServeOptions{Policy: "lifo"}); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestServeNoCacheAblationIsSlower(t *testing.T) {
	run := func(budget int64) pdr.ServiceStats {
		sys, err := pdr.NewSystem(pdr.WithSeed(42))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.SetFrequencyMHz(200); err != nil {
			t.Fatal(err)
		}
		asps := []string{"fir128", "sha3", "aes-gcm"}
		tr, err := sys.OpenTrace(pdr.ArrivalSpec{RatePerSec: 100}, 11, 24, asps)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := sys.Serve(tr, pdr.ServeOptions{CacheBudgetBytes: budget, Prewarm: asps})
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	warm := run(0)     // profile budget
	ablated := run(-1) // cache disabled
	if ablated.SojournUS.Percentile(99) <= warm.SojournUS.Percentile(99) {
		t.Errorf("no-cache p99 %.0f µs should exceed cached %.0f µs",
			ablated.SojournUS.Percentile(99), warm.SojournUS.Percentile(99))
	}
	if ablated.StageTime <= warm.StageTime {
		t.Errorf("ablation should stage more: %v vs %v", ablated.StageTime, warm.StageTime)
	}
}

func TestPoliciesListing(t *testing.T) {
	got := pdr.Policies()
	if len(got) != 3 || got[0] != "fcfs" {
		t.Errorf("Policies() = %v", got)
	}
}
